// Benchmarks and the BENCH_adaptive.json emitter for the adaptive
// early-stopping engine. BenchmarkCampaignAdaptive times a whole
// campaign cell fixed-n vs adaptive; TestWriteAdaptiveBench runs the
// same study both ways, writes the JSON artifact, and gates the
// engine's cost contract: the adaptive study must not spend more
// attempts than the fixed-n design on the same cells.
//
//	go test -bench=BenchmarkCampaignAdaptive -benchtime=5x
//	HLFI_BENCH_ADAPTIVE=BENCH_adaptive.json go test -run '^TestWriteAdaptiveBench$'
package hlfi_test

import (
	"encoding/json"
	"os"
	"testing"
	"time"

	"hlfi/internal/adaptive"
	"hlfi/internal/bench"
	"hlfi/internal/core"
	"hlfi/internal/fault"
)

// adaptiveBenchConfig is the precision target the artifact measures:
// the defaults a real adaptive campaign would start from, scaled to the
// bench's per-cell budget.
func adaptiveBenchConfig() *adaptive.Config {
	return &adaptive.Config{Eps: 0.05, MinN: 50, Check: 64}
}

// BenchmarkCampaignAdaptive runs a whole campaign cell with the
// stopping rule off ("fixed") and on ("adaptive"). The adaptive arm
// uses a slightly looser eps than the study-level artifact so the
// benched cell actually crosses the precision target early, and reports
// how many of the fixed-n injections the rule left unspent via
// attempts/op.
func BenchmarkCampaignAdaptive(b *testing.B) {
	p := replayBenchProgram(b)
	n := injectionsPerCell()
	arm := func(cfg *adaptive.Config) func(*testing.B) {
		return func(b *testing.B) {
			attempts := 0
			for i := 0; i < b.N; i++ {
				c := &core.Campaign{
					Prog: p, Level: fault.LevelIR, Category: fault.CatAll,
					N: n, Seed: int64(i) + 1, Adaptive: cfg,
				}
				res, err := c.Run()
				if err != nil {
					b.Fatal(err)
				}
				attempts += res.Attempts
			}
			b.ReportMetric(float64(n), "injections/op")
			b.ReportMetric(float64(attempts)/float64(b.N), "attempts/op")
		}
	}
	b.Run("fixed", arm(nil))
	b.Run("adaptive", arm(&adaptive.Config{Eps: 0.08, MinN: 50, Check: 64}))
}

// adaptiveBenchJSON is the BENCH_adaptive.json shape: the fixed-n
// baseline versus the adaptive run of the identical study, in attempts,
// activated injections, and wall-clock.
type adaptiveBenchJSON struct {
	Benchmark string  `json:"benchmark"`
	N         int     `json:"n"`
	Eps       float64 `json:"eps"`
	MinN      int     `json:"min"`
	Check     int     `json:"check"`

	FixedAttempts    int     `json:"fixedAttempts"`
	AdaptiveAttempts int     `json:"adaptiveAttempts"`
	SavedAttemptsPct float64 `json:"savedAttemptsPct"`
	ConvergedCells   int     `json:"convergedCells"`
	ExtendedCells    int     `json:"extendedCells"`
	Cells            int     `json:"cells"`

	FixedSeconds    float64 `json:"fixedSeconds"`
	AdaptiveSeconds float64 `json:"adaptiveSeconds"`
}

// TestWriteAdaptiveBench emits BENCH_adaptive.json: set
// HLFI_BENCH_ADAPTIVE to the output path (as `make bench` does) or the
// test skips. It gates the cost contract — with reallocation bounded by
// the donated pool, the adaptive study can never spend more attempts
// than the fixed-n design it replaces.
func TestWriteAdaptiveBench(t *testing.T) {
	path := os.Getenv("HLFI_BENCH_ADAPTIVE")
	if path == "" {
		t.Skip("set HLFI_BENCH_ADAPTIVE=<path> to write the adaptive benchmark JSON")
	}
	const benchmark = "quantumm"
	p, err := bench.Build(benchmark)
	if err != nil {
		t.Fatal(err)
	}
	n := injectionsPerCell()
	acfg := adaptiveBenchConfig()

	run := func(cfg *adaptive.Config) (*core.Study, float64) {
		t.Helper()
		start := time.Now()
		st, err := core.RunStudy(core.StudyConfig{
			Programs: []*core.Program{p}, N: n, Seed: 1, Adaptive: cfg,
		})
		if err != nil {
			t.Fatal(err)
		}
		return st, time.Since(start).Seconds()
	}
	fixedSt, fixedSec := run(nil)
	adaptSt, adaptSec := run(acfg)

	out := adaptiveBenchJSON{
		Benchmark: benchmark, N: n,
		Eps: acfg.Eps, MinN: acfg.MinN, Check: acfg.Check,
		FixedSeconds: fixedSec, AdaptiveSeconds: adaptSec,
		Cells: len(adaptSt.Cells),
	}
	for _, c := range fixedSt.Cells {
		out.FixedAttempts += c.Attempts
	}
	for _, c := range adaptSt.Cells {
		out.AdaptiveAttempts += c.Attempts
		if c.Adaptive.Converged && !c.Adaptive.Extended {
			out.ConvergedCells++
		}
		if c.Adaptive.Extended {
			out.ExtendedCells++
		}
	}
	if out.FixedAttempts > 0 {
		out.SavedAttemptsPct = 100 * float64(out.FixedAttempts-out.AdaptiveAttempts) / float64(out.FixedAttempts)
	}

	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		t.Fatal(err)
	}
	t.Logf("adaptive bench: fixed %d attempts, adaptive %d attempts (%.1f%% saved), %d/%d cells converged, %d extended",
		out.FixedAttempts, out.AdaptiveAttempts, out.SavedAttemptsPct, out.ConvergedCells, out.Cells, out.ExtendedCells)
	if out.AdaptiveAttempts > out.FixedAttempts {
		t.Errorf("adaptive study spent %d attempts, more than the fixed-n %d: the reallocation pool leaked",
			out.AdaptiveAttempts, out.FixedAttempts)
	}
}

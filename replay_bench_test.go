// Benchmarks and the BENCH_replay.json emitter for the golden-run
// snapshot fast-forward replay engine. BenchmarkInjectionAttempt times
// a single injection attempt with and without snapshots on identical
// seeded triggers; BenchmarkCampaignReplay does the same at campaign
// granularity (including the one-time snapshot capture, amortized over
// the campaign's attempts).
//
//	go test -bench=BenchmarkInjectionAttempt -benchtime=200x
//	HLFI_BENCH_REPLAY=BENCH_replay.json go test -run '^TestWriteReplayBench$'
package hlfi_test

import (
	"math/rand"
	"os"
	"testing"

	"hlfi/internal/bench"
	"hlfi/internal/compile/irc"
	"hlfi/internal/core"
	"hlfi/internal/fault"
	"hlfi/internal/llfi"
	"hlfi/internal/telemetry"
)

// replayBenchProgram picks the workload for the attempt benchmarks:
// quantumm has the longest golden run of the six, so it is where replay
// matters most — and where a correctness bug would be loudest.
func replayBenchProgram(b *testing.B) *core.Program {
	b.Helper()
	for _, p := range allPrograms(b) {
		if p.Name == "quantumm" {
			return p
		}
	}
	b.Fatal("quantumm missing from benchmark set")
	return nil
}

// BenchmarkInjectionAttempt compares one LLFI injection attempt under
// full re-execution (sub-bench "full") against snapshot fast-forward
// replay ("replay") and the compile-to-closure engine ("compiled").
// All arms draw triggers from identically seeded rngs, so per-op times
// are directly comparable; the snapshot capture and the engine compile
// happen once in setup, mirroring a campaign where they are amortized
// over N attempts.
func BenchmarkInjectionAttempt(b *testing.B) {
	p := replayBenchProgram(b)
	full, err := llfi.New(p.Prep, fault.CatAll)
	if err != nil {
		b.Fatal(err)
	}
	replay, err := llfi.New(p.Prep, fault.CatAll)
	if err != nil {
		b.Fatal(err)
	}
	compiled, err := llfi.New(p.Prep, fault.CatAll)
	if err != nil {
		b.Fatal(err)
	}
	cp, err := irc.Compile(p.Prep)
	if err != nil {
		b.Fatal(err)
	}
	compiled.UseCompiled(cp)
	stride := full.GoldenInstrs / 64
	if stride < 512 {
		stride = 512
	}
	snaps, err := llfi.CaptureSnapshots(p.Prep, stride)
	if err != nil {
		b.Fatal(err)
	}
	stats := &telemetry.ReplayStats{}
	replay.UseSnapshots(snaps, stats)

	arm := func(inj *llfi.Injector) func(*testing.B) {
		return func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rng := rand.New(rand.NewSource(int64(i) + 1))
				inj.InjectOne(rng)
			}
		}
	}
	b.Run("full", arm(full))
	b.Run("replay", arm(replay))
	b.Run("compiled", arm(compiled))
	if stats.Hits() == 0 {
		b.Fatal("replay arm never hit a snapshot")
	}
}

// BenchmarkCampaignReplay runs a whole campaign cell with snapshots off
// ("off") and on ("on"). Unlike BenchmarkInjectionAttempt this includes
// the golden capture run, so it reports the net campaign-level win.
func BenchmarkCampaignReplay(b *testing.B) {
	p := replayBenchProgram(b)
	n := injectionsPerCell()
	arm := func(replay *core.ReplayConfig) func(*testing.B) {
		return func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c := &core.Campaign{
					Prog: p, Level: fault.LevelIR, Category: fault.CatAll,
					N: n, Seed: int64(i) + 1, Replay: replay,
				}
				if _, err := c.Run(); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(n), "injections/op")
		}
	}
	b.Run("off", arm(nil))
	b.Run("on", arm(&core.ReplayConfig{Stats: &telemetry.ReplayStats{}}))
}

// TestWriteReplayBench emits BENCH_replay.json: set HLFI_BENCH_REPLAY
// to the output path (as `make bench` does) or the test skips. It also
// gates the engine's performance contract: replay must be at least 2x
// faster per attempt than full re-execution.
func TestWriteReplayBench(t *testing.T) {
	path := os.Getenv("HLFI_BENCH_REPLAY")
	if path == "" {
		t.Skip("set HLFI_BENCH_REPLAY=<path> to write the replay benchmark JSON")
	}
	m, err := bench.MeasureReplay("quantumm", injectionsPerCell(), 1)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := m.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	t.Log(m.String())
	if m.Speedup < 2 {
		t.Errorf("replay speedup %.2fx is below the 2x contract", m.Speedup)
	}
}

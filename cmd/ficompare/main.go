// Command ficompare reproduces the paper's full LLFI-vs-PINFI study: it
// compiles the six benchmark workloads for both execution levels, runs
// seeded fault-injection campaigns for every (benchmark, level, category)
// cell, and regenerates the evaluation artifacts:
//
//	-experiment fig3    aggregate crash/SDC/benign breakdown (Figure 3)
//	-experiment table4  dynamic candidate-instruction counts (Table IV)
//	-experiment fig4    SDC rates with 95% CIs per category (Figure 4)
//	-experiment table5  crash rates per category (Table V)
//	-experiment table2  benchmark characteristics (Table II)
//	-experiment calibration  the §VII future-work heuristics, three-way
//	-experiment all     everything plus the headline summary
//
// The paper uses N=1000 injections per cell; that is the default here and
// takes a few minutes. Use -n to trade precision for speed, -parallel to
// run campaign cells concurrently (output stays byte-identical),
// -cell-workers to parallelize attempts within a cell (per-attempt
// seeding: a different deterministic sample), and -events to capture the
// campaign telemetry stream as JSONL.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"hlfi/internal/bench"
	"hlfi/internal/core"
	"hlfi/internal/fault"
	"hlfi/internal/obs"
	"hlfi/internal/telemetry"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := runCtx(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ficompare:", err)
		os.Exit(1)
	}
}

// run keeps the uncancellable entry point used by the in-process tests.
func run(args []string) error {
	return runCtx(context.Background(), args)
}

func runCtx(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("ficompare", flag.ContinueOnError)
	var (
		experiment  = fs.String("experiment", "all", "fig3|table4|fig4|table5|table2|calibration|all")
		n           = fs.Int("n", 1000, "activated injections per cell")
		seed        = fs.Int64("seed", 1, "study seed")
		benches     = fs.String("benchmarks", "", "comma-separated subset (default: all six)")
		quiet       = fs.Bool("q", false, "suppress per-cell progress and the telemetry summary")
		parallel    = fs.Int("parallel", 1, "campaign cells in flight (study-level scheduler; output is identical for any value)")
		cellWorkers = fs.Int("cell-workers", 1, "worker goroutines per campaign cell (>1 uses per-attempt seeding: deterministic, but a different sample)")
		events      = fs.String("events", "", "write the campaign telemetry event stream (JSONL) to this file")
		jsonOut     = fs.Bool("json", false, "emit machine-readable JSON scoped to the experiment (fig3/fig4/table5/all)")
		checkpoint  = fs.String("checkpoint", "", "append completed cells to this JSONL checkpoint as they finish")
		resume      = fs.String("resume", "", "resume from this checkpoint: recorded cells are not re-run and keep checkpointing into the same file (output is byte-identical to an uninterrupted run)")
		simFaults   = fs.Int("sim-fault-limit", 0, "contained simulator panics tolerated per cell (0 = fail fast, -1 = unlimited)")
		deadline    = fs.Duration("cell-deadline", 0, "per-cell wall-clock watchdog; an over-deadline cell is skipped as degraded (0 = off)")
		snapStride  = fs.Uint64("snapshot-stride", 0, "dynamic instructions between golden-run snapshots (0 = auto); results are byte-identical for any value")
		snapBudget  = fs.Int64("snapshot-mem-budget", 0, "snapshot cache budget in MiB (0 = 256); least-recently-used programs are evicted over budget")
		noSnapshots = fs.Bool("no-snapshots", false, "disable snapshot fast-forward replay and re-execute every attempt from instruction zero")
		status      = fs.String("status", "", "serve live observability on this address (/metrics, /statusz, /debug/pprof/); results are byte-identical with or without it")
		linger      = fs.Duration("status-linger", 0, "keep the status endpoint serving this long after the study finishes (useful for scraping short runs)")
		traceAtt    = fs.Int("trace-attempts", 0, "record fault-propagation traces for the first N attempts of every cell as attempt_trace events (results stay byte-identical)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch *experiment {
	case "fig3", "table4", "fig4", "table5", "table2", "calibration", "all":
	default:
		return fmt.Errorf("unknown experiment %q", *experiment)
	}

	if *experiment == "table2" {
		printTable2()
		return nil
	}

	progs, err := buildPrograms(*benches)
	if err != nil {
		return err
	}

	if *experiment == "calibration" {
		var progress func(string)
		if !*quiet {
			progress = func(s string) { fmt.Fprintln(os.Stderr, s) }
		}
		st, err := core.RunCalibrationStudy(progs, *n, *seed, progress)
		if err != nil {
			return err
		}
		fmt.Print(st.Render())
		return nil
	}

	// Table IV needs only profiling runs; skip the campaigns.
	if *experiment == "table4" {
		st, err := core.RunStudy(core.StudyConfig{Programs: progs, N: 1, Seed: *seed,
			Categories: []fault.Category{fault.CatAll}})
		if err != nil {
			return err
		}
		fmt.Print(st.RenderTableIV())
		return nil
	}

	// Telemetry: an in-memory aggregator always, a JSONL sink on request.
	// Both write off the stdout path, so the rendered tables stay
	// byte-identical whatever the scheduling or telemetry flags.
	agg := telemetry.NewAggregator()
	rec := telemetry.Recorder(agg)
	if *events != "" {
		f, err := os.Create(*events)
		if err != nil {
			return err
		}
		defer f.Close()
		rec = telemetry.Multi(agg, telemetry.NewJSONLSink(f))
	}

	// Live observability: a metrics registry plus the HTTP endpoint, both
	// off the stdout path. Everything rendered and checkpointed stays
	// byte-identical with or without -status.
	var om *obs.Metrics
	if *status != "" {
		om = obs.New()
		srv, serr := obs.StartServer(*status, om.Registry(), func() any { return agg.Status() })
		if serr != nil {
			return serr
		}
		fmt.Fprintf(os.Stderr, "status endpoint listening on %s (/metrics /statusz /debug/pprof/)\n", srv.Addr())
		// LIFO defers: the linger sleep runs before the server closes, so
		// a short study remains scrapeable for a moment after finishing.
		defer srv.Close()
		if *linger > 0 {
			defer time.Sleep(*linger)
		}
	}

	// Snapshot fast-forward replay: on by default, disarmed by
	// -no-snapshots. Results are byte-identical either way; only speed
	// and the replay telemetry differ.
	var replay *core.ReplayConfig
	if !*noSnapshots {
		replay = &core.ReplayConfig{
			Stride:    *snapStride,
			MemBudget: uint64(*snapBudget) << 20,
			Stats:     &telemetry.ReplayStats{},
		}
	}

	// Fault tolerance: an optional resume state (cells already completed
	// by an interrupted run) and an optional checkpoint writer for this
	// run's cells. -resume alone keeps appending to the same file. The
	// header pins the replay signature alongside n/seed, so a resumed
	// run cannot silently mix replay configs.
	var resumeState *core.CheckpointState
	if *resume != "" {
		resumeState, err = core.LoadCheckpoint(*resume, *n, *seed, replay.Signature())
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "resuming: %d completed and %d skipped cells restored from %s\n",
			len(resumeState.Cells), len(resumeState.Skips), *resume)
	}
	var ckpt *core.CheckpointWriter
	switch {
	case *checkpoint != "" && *checkpoint == *resume:
		ckpt, err = core.OpenCheckpointAppend(*checkpoint)
	case *checkpoint != "":
		ckpt, err = core.NewCheckpointWriter(*checkpoint, *n, *seed, replay.Signature())
	case *resume != "":
		ckpt, err = core.OpenCheckpointAppend(*resume)
	}
	if err != nil {
		return err
	}
	defer ckpt.Close()

	start := time.Now()
	cfg := core.StudyConfig{Programs: progs, N: *n, Seed: *seed,
		Workers: *cellWorkers, Parallel: *parallel, Events: rec,
		SimFaultLimit: *simFaults, CellDeadline: *deadline,
		Checkpoint: ckpt, Resume: resumeState, Replay: replay,
		Obs: om, TraceAttempts: *traceAtt}
	if !*quiet {
		cfg.Progress = func(s string) { fmt.Fprintln(os.Stderr, s) }
	}
	st, err := core.RunStudyContext(ctx, cfg)
	aborted := errors.Is(err, core.ErrAborted)
	if err != nil && !aborted {
		return err
	}
	if aborted {
		fmt.Fprintf(os.Stderr, "study aborted after %v with %d cells completed; rendering partial results\n",
			time.Since(start).Round(time.Second), len(st.Cells))
		if ckpt != nil {
			fmt.Fprintf(os.Stderr, "checkpoint flushed; resume with -resume to finish the study\n")
		}
	} else {
		fmt.Fprintf(os.Stderr, "study completed in %v\n\n", time.Since(start).Round(time.Second))
	}
	if !*quiet {
		fmt.Fprintln(os.Stderr, agg.RenderTelemetry())
	}

	if *jsonOut {
		if jerr := st.WriteExperimentJSON(os.Stdout, *experiment); jerr != nil {
			return jerr
		}
		return err
	}

	switch *experiment {
	case "fig3":
		fmt.Print(st.RenderFigure3())
	case "fig4":
		fmt.Print(st.RenderFigure4())
	case "table5":
		fmt.Print(st.RenderTableV())
	case "all":
		fmt.Println(st.RenderFigure3())
		fmt.Println(st.RenderTableIV())
		fmt.Println(st.RenderFigure4())
		fmt.Println(st.RenderTableV())
		fmt.Println(st.RenderSummary())
	}
	return err
}

func buildPrograms(subset string) ([]*core.Program, error) {
	var names []string
	if subset == "" {
		for _, b := range bench.All() {
			names = append(names, b.Name)
		}
	} else {
		names = strings.Split(subset, ",")
	}
	var progs []*core.Program
	for _, name := range names {
		fmt.Fprintf(os.Stderr, "building %s...\n", name)
		p, err := bench.Build(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		progs = append(progs, p)
	}
	return progs, nil
}

func printTable2() {
	fmt.Println("Table II: characteristics of benchmark programs")
	fmt.Printf("%-12s %-22s %6s  %s\n", "benchmark", "stands in for", "LoC", "description")
	for _, b := range bench.All() {
		fmt.Printf("%-12s %-22s %6d  %s\n", b.Name, b.Suite, b.LoC(), b.Description)
	}
}

// Command ficompare reproduces the paper's full LLFI-vs-PINFI study: it
// compiles the six benchmark workloads for both execution levels, runs
// seeded fault-injection campaigns for every (benchmark, level, category)
// cell, and regenerates the evaluation artifacts:
//
//	-experiment fig3    aggregate crash/SDC/benign breakdown (Figure 3)
//	-experiment table4  dynamic candidate-instruction counts (Table IV)
//	-experiment fig4    SDC rates with 95% CIs per category (Figure 4)
//	-experiment table5  crash rates per category (Table V)
//	-experiment table2  benchmark characteristics (Table II)
//	-experiment calibration  the §VII future-work heuristics, three-way
//	-experiment all     everything plus the headline summary
//
// The paper uses N=1000 injections per cell; that is the default here and
// takes a few minutes. Use -n to trade precision for speed, -parallel to
// run campaign cells concurrently (output stays byte-identical),
// -cell-workers to parallelize attempts within a cell (per-attempt
// seeding: a different deterministic sample), and -events to capture the
// campaign telemetry stream as JSONL.
//
// For scale-out beyond one process, -shard i/N runs the deterministic
// subset of cells one worker owns (checkpointing them with a
// shard-tagged header), -merge reassembles a complete shard set into
// the byte-identical single-process report, and -shard-workers N is a
// local supervisor that spawns N worker subprocesses and merges on
// completion. See docs/distributed.md.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"runtime"
	"strings"
	"syscall"
	"time"

	"hlfi/internal/adaptive"
	"hlfi/internal/bench"
	"hlfi/internal/cli"
	"hlfi/internal/core"
	"hlfi/internal/fault"
	"hlfi/internal/obs"
	"hlfi/internal/obs/trace"
	"hlfi/internal/telemetry"
	"hlfi/internal/warehouse"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := runCtx(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ficompare:", err)
		os.Exit(1)
	}
}

// run keeps the uncancellable entry point used by the in-process tests.
func run(args []string) error {
	return runCtx(context.Background(), args)
}

func runCtx(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("ficompare", flag.ContinueOnError)
	var (
		experiment  = fs.String("experiment", "all", "fig3|table4|fig4|table5|table2|calibration|all")
		n           = fs.Int("n", 1000, "activated injections per cell")
		seed        = fs.Int64("seed", 1, "study seed")
		benches     = fs.String("benchmarks", "", "comma-separated subset (default: all six)")
		quiet       = fs.Bool("q", false, "suppress per-cell progress and the telemetry summary")
		parallel    = fs.Int("parallel", 1, "campaign cells in flight (study-level scheduler; output is identical for any value)")
		cellWorkers = fs.Int("cell-workers", 1, "worker goroutines per campaign cell (>1 uses per-attempt seeding: deterministic, but a different sample)")
		events      = fs.String("events", "", "write the campaign telemetry event stream (JSONL) to this file")
		jsonOut     = fs.Bool("json", false, "emit machine-readable JSON scoped to the experiment (fig3/fig4/table5/all)")
		checkpoint  = fs.String("checkpoint", "", "append completed cells to this JSONL checkpoint as they finish")
		resume      = fs.String("resume", "", "resume from this checkpoint: recorded cells are not re-run and keep checkpointing into the same file (output is byte-identical to an uninterrupted run)")
		simFaults   = fs.Int("sim-fault-limit", 0, "contained simulator panics tolerated per cell (0 = fail fast, -1 = unlimited)")
		deadline    = fs.Duration("cell-deadline", 0, "per-cell wall-clock watchdog; an over-deadline cell is skipped as degraded (0 = off)")
		snapStride  = fs.Uint64("snapshot-stride", 0, "dynamic instructions between golden-run snapshots (0 = auto); results are byte-identical for any value")
		snapBudget  = fs.Int64("snapshot-mem-budget", 0, "snapshot cache budget in MiB (0 = 256); least-recently-used programs are evicted over budget")
		noSnapshots = fs.Bool("no-snapshots", false, "disable snapshot fast-forward replay and re-execute every attempt from instruction zero")
		compiled    = fs.Bool("compiled", true, "run untraced injection attempts on the compiled execution engines (results are byte-identical to the interpreters)")
		noCompiled  = fs.Bool("no-compiled", false, "force every attempt onto the interpreters (escape hatch; overrides -compiled)")
		status      = fs.String("status", "", "serve live observability on this address (/metrics, /statusz, /tracez, /debug/pprof/); results are byte-identical with or without it")
		linger      = fs.Duration("status-linger", 0, "keep the status endpoint serving this long after the study finishes (useful for scraping short runs)")
		traceAtt    = fs.Int("trace-attempts", 0, "record fault-propagation traces for the first N attempts of every cell as attempt_trace events (results stay byte-identical)")
		shard       = fs.String("shard", "", "run one shard of the study: \"i/N\" owns the canonical cells with index%N == i; pair with -checkpoint (fresh) or -resume (restart), then reassemble with -merge")
		mergeGlob   = fs.String("merge", "", "merge mode: glob of shard checkpoints to validate and reassemble into the byte-identical single-process report (study shape comes from the headers; no campaigns run)")
		shardProcs  = fs.Int("shard-workers", 0, "local supervisor: spawn this many worker subprocesses (one per shard), then merge their checkpoints; re-running the same command resumes only incomplete shards")
		shardDir    = fs.String("shard-dir", "", "directory for supervisor shard checkpoints (default: a temp dir, removed once merged; name one to keep checkpoints resumable across supervisor runs)")
		adaptFlag   = fs.String("adaptive", "off", "adaptive sampling: off|on|eps=E,min=M,check=C — stop each cell once every outcome-rate Wilson 95% CI is narrower than eps, then reallocate the saved budget to the widest cells (off = the paper's fixed-n design)")
		traceOut    = fs.String("trace-out", "", "record the study timeline and write it to this file as a Chrome trace-event export (open in Perfetto); results are byte-identical with or without it")
		warehouseD  = fs.String("warehouse", "", "content-addressed result warehouse directory: completed cells are stored under the hash of everything that determines their outcome (program bytes, fault model, n, seed, engine and adaptive signatures) and later runs resolve matching cells from the store without executing a single injection; output stays byte-identical to a cold run")
		warehouseQ  = fs.Bool("warehouse-query", false, "query mode: print the warehouse hit/skip/miss status of every study cell under the current flags and exit without running campaigns (answers \"which cells changed since this store was populated\")")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch *experiment {
	case "fig3", "table4", "fig4", "table5", "table2", "calibration", "all":
	default:
		return fmt.Errorf("unknown experiment %q", *experiment)
	}
	adaptCfg, err := adaptive.Parse(*adaptFlag)
	if err != nil {
		return fmt.Errorf("-adaptive %q: %w", *adaptFlag, err)
	}

	// Scale-out modes are mutually exclusive and only make sense for the
	// campaign experiments (profiling-only and table2 runs have no cells
	// to shard).
	sharded := 0
	for _, on := range []bool{*shard != "", *mergeGlob != "", *shardProcs != 0} {
		if on {
			sharded++
		}
	}
	if sharded > 1 {
		return fmt.Errorf("-shard, -merge, and -shard-workers are mutually exclusive")
	}
	if sharded == 1 {
		switch *experiment {
		case "fig3", "fig4", "table5", "all":
		default:
			return fmt.Errorf("-shard/-merge/-shard-workers require a campaign experiment (fig3|fig4|table5|all), not %q", *experiment)
		}
	}
	if *shardProcs != 0 && *shardProcs < 2 {
		return fmt.Errorf("-shard-workers %d: want 2 or more worker processes (a single process needs no supervisor)", *shardProcs)
	}
	if *mergeGlob != "" && (*checkpoint != "" || *resume != "") {
		return fmt.Errorf("-merge reassembles existing shard checkpoints; it cannot be combined with -checkpoint or -resume")
	}
	if *warehouseQ {
		if *warehouseD == "" {
			return fmt.Errorf("-warehouse-query needs -warehouse to name the store")
		}
		if sharded != 0 {
			return fmt.Errorf("-warehouse-query inspects the store for this process's study shape; it cannot be combined with -shard, -merge, or -shard-workers")
		}
		switch *experiment {
		case "fig3", "fig4", "table5", "all":
		default:
			return fmt.Errorf("-warehouse-query requires a campaign experiment (fig3|fig4|table5|all), not %q", *experiment)
		}
	}

	// Supervisor: spawn the shard workers, then fall through into merge
	// mode over the checkpoints they wrote. Worker failure loses one
	// shard, never the campaign: the merge below names incomplete
	// shards, and re-running the same supervisor command resumes only
	// those (complete shards restore instantly from their checkpoints).
	var tmpShardDir string
	if *shardProcs != 0 {
		dir, glob, isTmp, err := superviseShards(ctx, *shardProcs, *shardDir, args)
		if err != nil {
			return err
		}
		*mergeGlob = glob
		if isTmp {
			tmpShardDir = dir
		}
	}

	if *experiment == "table2" {
		printTable2()
		return nil
	}

	progs, err := cli.BuildPrograms(*benches)
	if err != nil {
		return err
	}

	if *experiment == "calibration" {
		var progress func(string)
		if !*quiet {
			progress = func(s string) { fmt.Fprintln(os.Stderr, s) }
		}
		st, err := core.RunCalibrationStudy(progs, *n, *seed, progress)
		if err != nil {
			return err
		}
		fmt.Print(st.Render())
		return nil
	}

	// Table IV needs only profiling runs; skip the campaigns.
	if *experiment == "table4" {
		st, err := core.RunStudy(core.StudyConfig{Programs: progs, N: 1, Seed: *seed,
			Categories: []fault.Category{fault.CatAll}})
		if err != nil {
			return err
		}
		cli.RenderExperiment(os.Stdout, st, "table4")
		return nil
	}

	// Shard mode: this process owns the canonical cells with
	// index%Count == Index. Everything downstream is the ordinary study
	// path — cellSeed makes each cell self-contained, so the shard's
	// checkpoint is merge-ready without coordination.
	var shardSpec *core.ShardSpec
	if *shard != "" {
		spec, err := core.ParseShardSpec(*shard)
		if err != nil {
			return err
		}
		shardSpec = &spec
	}

	// Merge mode: validate the shard checkpoints for mutual consistency
	// and completeness, adopt the study shape their headers pin, and
	// resume the study from the combined state — every cell restores, no
	// campaign re-runs, and the report is byte-identical to the
	// single-process run.
	var mergedState *core.CheckpointState
	if *mergeGlob != "" {
		// Comma-separated patterns concatenate; overlapping patterns (or
		// symlinked paths) that name the same shard file twice are caught
		// by the merge's same-file duplicate check and reported, never
		// silently deduplicated.
		var paths []string
		for _, pat := range strings.Split(*mergeGlob, ",") {
			pat = strings.TrimSpace(pat)
			if pat == "" {
				continue
			}
			matched, err := filepath.Glob(pat)
			if err != nil {
				return fmt.Errorf("-merge %q: %w", pat, err)
			}
			paths = append(paths, matched...)
		}
		if len(paths) == 0 {
			return fmt.Errorf("-merge %q matched no shard checkpoints", *mergeGlob)
		}
		merged, err := core.MergeShardCheckpoints(paths)
		if err != nil {
			return err
		}
		if err := merged.VerifyComplete(core.CanonicalCells(progs, nil)); err != nil {
			return err
		}
		*n, *seed = merged.Shape.N, merged.Shape.Seed
		// The merged headers also pin the adaptive signature; adopt it so
		// the reallocation round replans from the shard round-1 records
		// exactly as the single-process run would.
		adaptCfg, err = adaptive.ParseSignature(merged.Shape.Adaptive)
		if err != nil {
			return fmt.Errorf("merged checkpoint adaptive signature %q: %w", merged.Shape.Adaptive, err)
		}
		mergedState = merged.State
		fmt.Fprintf(os.Stderr, "merged %d shard checkpoints: %d cells, %d skips (n=%d seed=%d)\n",
			merged.Count, len(merged.State.Cells), len(merged.State.Skips), *n, *seed)
		if tmpShardDir != "" {
			// The supervisor's temp checkpoints are fully absorbed into
			// memory; a named -shard-dir is kept for later resume.
			defer os.RemoveAll(tmpShardDir)
		}
	}

	// Telemetry: an in-memory aggregator always, a JSONL sink on request.
	// Both write off the stdout path, so the rendered tables stay
	// byte-identical whatever the scheduling or telemetry flags.
	agg := telemetry.NewAggregator()
	rec := telemetry.Recorder(agg)
	if *events != "" {
		f, err := os.Create(*events)
		if err != nil {
			return err
		}
		defer f.Close()
		rec = telemetry.Multi(agg, telemetry.NewJSONLSink(f))
	}

	// Snapshot fast-forward replay: on by default, disarmed by
	// -no-snapshots. Results are byte-identical either way; only speed
	// and the replay telemetry differ.
	var replay *core.ReplayConfig
	if !*noSnapshots {
		replay = &core.ReplayConfig{
			Stride:    *snapStride,
			MemBudget: uint64(*snapBudget) << 20,
			Stats:     &telemetry.ReplayStats{},
		}
	}

	// Compiled execution engines: on by default, forced off by
	// -no-compiled (or -compiled=false). Byte-identical either way.
	var compiledCfg *core.CompiledConfig
	if *compiled && !*noCompiled {
		compiledCfg = &core.CompiledConfig{}
	}

	// Campaign flight recorder: -trace-out arms an in-memory span
	// recorder over the study (campaign, cell, scan/run phases, adaptive
	// extensions) and writes the timeline as a Chrome trace-event file
	// when the run ends. Entirely off the stdout path: reports and
	// checkpoints are byte-identical with or without it.
	var tracer *trace.Recorder
	if *traceOut != "" {
		tracer, err = trace.New(trace.Options{
			Capacity: 1 << 16,
			Head: trace.Header{
				Go:       runtime.Version(),
				Engine:   compiledCfg.Signature(),
				Adaptive: adaptCfg.Signature(),
				N:        *n,
				Seed:     *seed,
			},
		})
		if err != nil {
			return err
		}
	}

	// Live observability: a metrics registry plus the HTTP endpoint, both
	// off the stdout path. Everything rendered and checkpointed stays
	// byte-identical with or without -status.
	var om *obs.Metrics
	if *status != "" {
		om = obs.New()
		obs.RegisterBuildInfo(om.Registry(), compiledCfg.Signature(), adaptCfg.Signature())
		srv, serr := obs.StartServerTrace(*status, om.Registry(), func() any { return agg.Status() }, tracer)
		if serr != nil {
			return serr
		}
		fmt.Fprintf(os.Stderr, "status endpoint listening on %s (/metrics /statusz /tracez /debug/pprof/)\n", srv.Addr())
		// LIFO defers: the linger sleep runs before the server closes, so
		// a short study remains scrapeable for a moment after finishing.
		defer srv.Close()
		if *linger > 0 {
			defer time.Sleep(*linger)
		}
	}

	// Fault tolerance: an optional resume state (cells already completed
	// by an interrupted run) and an optional checkpoint writer for this
	// run's cells. -resume alone keeps appending to the same file. The
	// header pins the replay and compiled-engine signatures and the shard
	// spec alongside n/seed, so a resumed run cannot silently mix engine
	// configs or shards; a -merge run resumes from the reassembled shard
	// state instead.
	shape := core.CheckpointShape{N: *n, Seed: *seed,
		Replay: replay.Signature(), Compiled: compiledCfg.Signature(),
		Adaptive: adaptCfg.Signature()}
	if shardSpec != nil {
		shape.Shard = shardSpec.String()
	}

	// Result warehouse: cells whose content-addressed record already
	// exists resolve from the store without executing an injection, and
	// every freshly completed cell is stored back. The key covers the
	// program bytes and the whole study shape, so a hit can only replay
	// the byte-identical outcome; shard workers share one store safely
	// (atomic per-record files, idempotent writes).
	var wcache *warehouse.StudyCache
	if *warehouseD != "" {
		wstore, werr := warehouse.Open(*warehouseD)
		if werr != nil {
			return werr
		}
		if om != nil {
			wstore.Hits, wstore.Misses, wstore.Stores = om.WarehouseHits, om.WarehouseMisses, om.WarehouseStores
		}
		wcache = wstore.ForStudy(shape, progs)
		if *cellWorkers > 1 {
			// Per-attempt seeding draws a different (deterministic) sample
			// than the sequential stream; the key space must not mix them.
			wcache.SetPerAttemptSeeding()
		}
		if *warehouseQ {
			return queryWarehouse(os.Stdout, wcache, progs, *n)
		}
	}
	resumeState := mergedState
	if *resume != "" {
		resumeState, err = core.LoadCheckpointShape(*resume, shape)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "resuming: %d completed and %d skipped cells restored from %s\n",
			len(resumeState.Cells), len(resumeState.Skips), *resume)
	}
	var ckpt *core.CheckpointWriter
	switch {
	case *checkpoint != "" && *checkpoint == *resume:
		ckpt, err = core.OpenCheckpointAppend(*checkpoint)
	case *checkpoint != "":
		ckpt, err = core.NewCheckpointWriterShape(*checkpoint, shape)
	case *resume != "":
		ckpt, err = core.OpenCheckpointAppend(*resume)
	}
	if err != nil {
		return err
	}
	defer ckpt.Close()

	start := time.Now()
	cfg := core.StudyConfig{Programs: progs, N: *n, Seed: *seed,
		Workers: *cellWorkers, Parallel: *parallel, Events: rec,
		SimFaultLimit: *simFaults, CellDeadline: *deadline,
		Checkpoint: ckpt, Resume: resumeState, Replay: replay,
		Compiled: compiledCfg, Obs: om, TraceAttempts: *traceAtt,
		Adaptive: adaptCfg, Shard: shardSpec, Trace: tracer}
	if wcache != nil {
		// Assign only when armed: StudyConfig.Warehouse is an interface and
		// a typed-nil *StudyCache would defeat its nil check.
		cfg.Warehouse = wcache
	}
	if !*quiet {
		cfg.Progress = func(s string) { fmt.Fprintln(os.Stderr, s) }
	}
	st, err := core.RunStudyContext(ctx, cfg)
	aborted := errors.Is(err, core.ErrAborted)
	if err != nil && !aborted {
		return err
	}
	if aborted {
		fmt.Fprintf(os.Stderr, "study aborted after %v with %d cells completed; rendering partial results\n",
			time.Since(start).Round(time.Second), len(st.Cells))
		if ckpt != nil {
			fmt.Fprintf(os.Stderr, "checkpoint flushed; resume with -resume to finish the study\n")
		}
	} else {
		fmt.Fprintf(os.Stderr, "study completed in %v\n\n", time.Since(start).Round(time.Second))
	}
	if !*quiet {
		fmt.Fprintln(os.Stderr, agg.RenderTelemetry())
	}

	// Write the flight-recorder export once the study (and all its spans)
	// has settled. A partial (aborted) timeline is still worth keeping.
	if *traceOut != "" {
		f, werr := os.Create(*traceOut)
		if werr != nil {
			return werr
		}
		werr = tracer.WriteChrome(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return fmt.Errorf("-trace-out %s: %w", *traceOut, werr)
		}
		fmt.Fprintf(os.Stderr, "trace written to %s (open in Perfetto or chrome://tracing)\n", *traceOut)
	}

	if *jsonOut {
		if jerr := st.WriteExperimentJSON(os.Stdout, *experiment); jerr != nil {
			return jerr
		}
		return err
	}

	cli.RenderExperiment(os.Stdout, st, *experiment)
	return err
}

// superviseShards runs the local supervisor: one ficompare worker
// subprocess per shard, each owning its deterministic cell subset and
// checkpointing into dir. Workers are fault-isolated — a crashed or
// killed worker loses only its shard, and its checkpoint (if any) is
// resumed on the next supervisor run. Returns the checkpoint directory,
// the glob the merge phase should consume, and whether dir was a
// supervisor-created temp dir.
func superviseShards(ctx context.Context, workers int, dir string, args []string) (string, string, bool, error) {
	exe, err := os.Executable()
	if err != nil {
		return "", "", false, fmt.Errorf("supervisor: cannot locate own binary: %w", err)
	}
	isTmp := dir == ""
	if isTmp {
		dir, err = os.MkdirTemp("", "ficompare-shards-")
		if err != nil {
			return "", "", false, err
		}
	} else if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", "", false, err
	}

	// Workers inherit the study flags but never the supervisor,
	// durability, or endpoint flags: each owns its private checkpoint,
	// and N workers cannot share one -status port or -events file.
	base := cli.StripFlags(args, map[string]bool{
		"shard-workers": true, "shard-dir": true, "shard": true, "merge": true,
		"checkpoint": true, "resume": true,
		"status": true, "status-linger": true, "events": true,
		"trace-out": true,
		"q":         false,
	})

	cmds := make([]*exec.Cmd, workers)
	for i := 0; i < workers; i++ {
		spec := fmt.Sprintf("%d/%d", i, workers)
		path := filepath.Join(dir, fmt.Sprintf("shard-%d-of-%d.jsonl", i, workers))
		wargs := append(append([]string(nil), base...), "-q", "-shard", spec)
		if st, err := os.Stat(path); err == nil && st.Size() > 0 {
			fmt.Fprintf(os.Stderr, "supervisor: shard %s resuming from %s\n", spec, path)
			wargs = append(wargs, "-resume", path)
		} else {
			wargs = append(wargs, "-checkpoint", path)
		}
		cmds[i] = cli.WorkerCommand(ctx, exe, wargs...)
	}
	failures := cli.RunWorkerPool(cmds, func(i int) string {
		return fmt.Sprintf("shard %d/%d", i, workers)
	})
	if err := ctx.Err(); err != nil {
		return dir, "", isTmp, fmt.Errorf("supervisor cancelled (shard checkpoints kept in %s; re-run with -shard-dir %s to resume): %w", dir, dir, err)
	}
	for _, f := range failures {
		fmt.Fprintf(os.Stderr, "supervisor: %s\n", f)
	}
	if len(failures) > 0 {
		fmt.Fprintf(os.Stderr, "supervisor: %d of %d shards failed; merging what completed (an incomplete merge names the shards to resume)\n",
			len(failures), workers)
	}
	return dir, filepath.Join(dir, fmt.Sprintf("shard-*-of-%d.jsonl", workers)), isTmp, nil
}

// queryWarehouse prints the warehouse status of every study cell at its
// base identity — hit (a completed record), skip (a cached deterministic
// skip), or miss (the cell would execute). Adaptive extension records
// live under raised targets the reallocation plan derives at run time,
// so the base-identity answer is the conservative one: a listed hit is
// guaranteed to resolve without execution.
func queryWarehouse(w io.Writer, cache *warehouse.StudyCache, progs []*core.Program, n int) error {
	counts := map[string]int{}
	keys := core.CanonicalCells(progs, nil)
	fmt.Fprintf(w, "%-10s %-5s %-10s %-6s %s\n", "BENCHMARK", "LEVEL", "CATEGORY", "STATUS", "KEY")
	for _, key := range keys {
		status := cache.Probe(key, n, n)
		kh, ok := cache.KeyHex(key, n, n)
		if !ok {
			kh = "-"
		}
		fmt.Fprintf(w, "%-10s %-5s %-10s %-6s %s\n",
			key.Prog, key.Level, key.Category, status, kh)
		counts[status]++
	}
	fmt.Fprintf(w, "\n%d hit, %d skip, %d miss of %d cells in %s\n",
		counts[warehouse.StatusHit], counts[warehouse.StatusSkip], counts[warehouse.StatusMiss],
		len(keys), cache.Store().Dir())
	return nil
}

func printTable2() {
	fmt.Println("Table II: characteristics of benchmark programs")
	fmt.Printf("%-12s %-22s %6s  %s\n", "benchmark", "stands in for", "LoC", "description")
	for _, b := range bench.All() {
		fmt.Printf("%-12s %-22s %6d  %s\n", b.Name, b.Suite, b.LoC(), b.Description)
	}
}

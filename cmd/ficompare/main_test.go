package main

import "testing"

// TestRunExperiments smoke-tests the CLI surface in-process with tiny
// sample sizes.
func TestRunExperiments(t *testing.T) {
	cases := [][]string{
		{"-experiment", "table2"},
		{"-experiment", "table4", "-benchmarks", "quantumm", "-q"},
		{"-experiment", "fig3", "-benchmarks", "quantumm", "-n", "10", "-q"},
		{"-experiment", "fig3", "-benchmarks", "quantumm", "-n", "10", "-q", "-json"},
		{"-experiment", "fig3", "-benchmarks", "quantumm", "-n", "10", "-q", "-parallel", "3"},
		{"-experiment", "calibration", "-benchmarks", "quantumm", "-n", "10", "-q"},
	}
	for _, args := range cases {
		if err := run(args); err != nil {
			t.Errorf("run(%v): %v", args, err)
		}
	}
	if err := run([]string{"-experiment", "nope", "-benchmarks", "quantumm", "-n", "5", "-q"}); err == nil {
		t.Error("unknown experiment accepted")
	}
	if err := run([]string{"-experiment", "fig3", "-benchmarks", "nosuch", "-n", "5", "-q"}); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

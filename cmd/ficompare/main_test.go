package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunExperiments smoke-tests the CLI surface in-process with tiny
// sample sizes.
func TestRunExperiments(t *testing.T) {
	cases := [][]string{
		{"-experiment", "table2"},
		{"-experiment", "table4", "-benchmarks", "quantumm", "-q"},
		{"-experiment", "fig3", "-benchmarks", "quantumm", "-n", "10", "-q"},
		{"-experiment", "fig3", "-benchmarks", "quantumm", "-n", "10", "-q", "-json"},
		{"-experiment", "fig3", "-benchmarks", "quantumm", "-n", "10", "-q", "-parallel", "3"},
		{"-experiment", "fig3", "-benchmarks", "quantumm", "-n", "10", "-q", "-cell-workers", "3"},
		{"-experiment", "table5", "-benchmarks", "quantumm", "-n", "10", "-q", "-json"},
		{"-experiment", "all", "-benchmarks", "quantumm", "-n", "10", "-q", "-parallel", "2", "-cell-workers", "2"},
		{"-experiment", "calibration", "-benchmarks", "quantumm", "-n", "10", "-q"},
	}
	for _, args := range cases {
		if err := run(args); err != nil {
			t.Errorf("run(%v): %v", args, err)
		}
	}
	if err := run([]string{"-experiment", "nope", "-benchmarks", "quantumm", "-n", "5", "-q"}); err == nil {
		t.Error("unknown experiment accepted")
	}
	if err := run([]string{"-experiment", "fig3", "-benchmarks", "nosuch", "-n", "5", "-q"}); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

// TestRunEventsSink: -events writes a JSONL stream bracketed by
// study_start/study_done with one cell event per cell.
func TestRunEventsSink(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.jsonl")
	args := []string{"-experiment", "fig3", "-benchmarks", "quantumm", "-n", "8", "-q",
		"-parallel", "2", "-events", path}
	if err := run(args); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var types []string
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var e struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		types = append(types, e.Type)
	}
	// quantumm alone: 10 cells (2 levels x 5 categories) + the brackets.
	if len(types) != 12 {
		t.Fatalf("got %d events, want 12: %v", len(types), types)
	}
	if types[0] != "study_start" || types[len(types)-1] != "study_done" {
		t.Fatalf("stream not bracketed: %v", types)
	}
}

// TestRunCheckpointResume: -checkpoint writes a loadable JSONL file and
// -resume accepts it (restoring cells instead of re-running); the
// fault-tolerance flags parse.
func TestRunCheckpointResume(t *testing.T) {
	dir := t.TempDir()
	ck := filepath.Join(dir, "ck.jsonl")
	base := []string{"-experiment", "fig3", "-benchmarks", "quantumm", "-n", "8", "-q"}
	if err := run(append(base, "-checkpoint", ck)); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(ck)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	var types []string
	for sc.Scan() {
		var line struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad checkpoint line %q: %v", sc.Text(), err)
		}
		types = append(types, line.Type)
	}
	// quantumm: header + 10 cells (2 levels x 5 categories).
	if len(types) != 11 || types[0] != "study" {
		t.Fatalf("checkpoint types = %v, want study header + 10 cells", types)
	}

	if err := run(append(base, "-resume", ck)); err != nil {
		t.Fatalf("resume: %v", err)
	}
	// The resume run appended its (resumed-run) cells? No: resumed cells
	// are not rewritten, so the file must be unchanged in line count.
	f2, _ := os.Open(ck)
	defer f2.Close()
	n := 0
	for sc2 := bufio.NewScanner(f2); sc2.Scan(); {
		n++
	}
	if n != 11 {
		t.Errorf("resume rewrote resumed cells: %d lines, want 11", n)
	}

	// Shape mismatch is refused.
	if err := run([]string{"-experiment", "fig3", "-benchmarks", "quantumm", "-n", "9", "-q", "-resume", ck}); err == nil {
		t.Error("resume with mismatched -n accepted")
	}

	// Fault-tolerance flags parse and run.
	if err := run(append(base, "-sim-fault-limit", "-1", "-cell-deadline", "1m")); err != nil {
		t.Fatal(err)
	}
}

// captureStdout runs fn with os.Stdout redirected into a buffer.
func captureStdout(t *testing.T, fn func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	runErr := fn()
	w.Close()
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if runErr != nil {
		t.Fatalf("run failed: %v\noutput so far:\n%s", runErr, out)
	}
	return string(out)
}

// TestRunShardMerge: three -shard workers plus a -merge render the
// byte-identical report of the single-process run, end to end through
// the CLI.
func TestRunShardMerge(t *testing.T) {
	base := []string{"-experiment", "fig3", "-benchmarks", "quantumm", "-n", "8", "-q"}
	golden := captureStdout(t, func() error { return run(base) })

	dir := t.TempDir()
	for i := 0; i < 3; i++ {
		ck := filepath.Join(dir, fmt.Sprintf("shard-%d-of-3.jsonl", i))
		if err := run(append(base, "-shard", fmt.Sprintf("%d/3", i), "-checkpoint", ck)); err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
	}
	glob := filepath.Join(dir, "shard-*-of-3.jsonl")
	merged := captureStdout(t, func() error { return run(append(base, "-merge", glob)) })
	if merged != golden {
		t.Errorf("merged report differs from single-process run:\n--- single ---\n%s\n--- merged ---\n%s", golden, merged)
	}

	// A shard worker restarted with -resume on its own checkpoint is a
	// no-op (all its cells restore) and keeps the file mergeable.
	ck0 := filepath.Join(dir, "shard-0-of-3.jsonl")
	if err := run(append(base, "-shard", "0/3", "-resume", ck0)); err != nil {
		t.Fatalf("shard resume: %v", err)
	}
	remerged := captureStdout(t, func() error { return run(append(base, "-merge", glob)) })
	if remerged != golden {
		t.Error("merge after shard resume no longer byte-identical")
	}

	// With one shard checkpoint gone, the merge names the missing index.
	if err := os.Remove(filepath.Join(dir, "shard-1-of-3.jsonl")); err != nil {
		t.Fatal(err)
	}
	err := run(append(base, "-merge", glob))
	if err == nil || !strings.Contains(err.Error(), "missing shard(s) 1") {
		t.Errorf("merge with absent shard: %v, want missing-shard error naming index 1", err)
	}
}

// TestRunScaleOutFlagValidation: the scale-out modes reject nonsensical
// combinations up front.
func TestRunScaleOutFlagValidation(t *testing.T) {
	reject := [][]string{
		{"-experiment", "fig3", "-benchmarks", "quantumm", "-shard", "0/2", "-merge", "x*.jsonl"},
		{"-experiment", "fig3", "-benchmarks", "quantumm", "-shard", "0/2", "-shard-workers", "2"},
		{"-experiment", "table4", "-benchmarks", "quantumm", "-shard", "0/2"},
		{"-experiment", "table2", "-merge", "x*.jsonl"},
		{"-experiment", "fig3", "-benchmarks", "quantumm", "-shard-workers", "1"},
		{"-experiment", "fig3", "-benchmarks", "quantumm", "-merge", "x*.jsonl", "-checkpoint", "ck.jsonl"},
		{"-experiment", "fig3", "-benchmarks", "quantumm", "-merge", "x*.jsonl", "-resume", "ck.jsonl"},
		{"-experiment", "fig3", "-benchmarks", "quantumm", "-n", "5", "-q", "-shard", "2/2"},
		{"-experiment", "fig3", "-benchmarks", "quantumm", "-n", "5", "-q", "-shard", "junk"},
	}
	for _, args := range reject {
		if err := run(args); err == nil {
			t.Errorf("run(%v) accepted, want rejection", args)
		}
	}
}

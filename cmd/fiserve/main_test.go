package main

import (
	"bytes"
	"context"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"hlfi/internal/bench"
	"hlfi/internal/cli"
	"hlfi/internal/core"
)

func TestRunFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"worker needs join", []string{"-worker"}, "-join"},
		{"join without worker", []string{"-join", "http://x"}, "-worker"},
		{"unknown experiment", []string{"-experiment", "table2"}, "unknown experiment"},
		{"negative spawn", []string{"-spawn-workers", "-1"}, "spawn-workers"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := run(tc.args)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("run(%v) = %v, want error mentioning %q", tc.args, err, tc.want)
			}
		})
	}
}

func TestJitterSeedFor(t *testing.T) {
	if jitterSeedFor("w1") == jitterSeedFor("w2") {
		t.Fatal("distinct worker names should get distinct jitter seeds")
	}
	if jitterSeedFor("w1") != jitterSeedFor("w1") {
		t.Fatal("jitter seed must be stable for a name")
	}
	if jitterSeedFor("") == 0 {
		t.Fatal("jitter seed must never be zero")
	}
}

// TestFiserveFleetMatchesSingleProcess is the end-to-end differential
// oracle of the binary: an in-process coordinator with two in-process
// workers must render the report byte-identical to the single-process
// study, and a coordinator restarted on the finished checkpoint must
// re-render it from durable state alone (no workers at all).
func TestFiserveFleetMatchesSingleProcess(t *testing.T) {
	prog, err := bench.Build("quantumm")
	if err != nil {
		t.Fatal(err)
	}
	goldenSt, err := core.RunStudy(core.StudyConfig{Programs: []*core.Program{prog}, N: 6, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var goldenBuf bytes.Buffer
	cli.RenderExperiment(&goldenBuf, goldenSt, "all")
	golden := goldenBuf.String()

	ckpt := filepath.Join(t.TempDir(), "fleet.jsonl")
	coordArgs := []string{
		"-listen", "127.0.0.1:0", "-once", "-q",
		"-benchmarks", "quantumm", "-n", "6", "-seed", "3",
		"-experiment", "all", "-checkpoint", ckpt,
		"-lease-ttl", "2s", "-retry-after", "20ms",
	}

	out := captureStdout(t, func() error {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
		defer cancel()
		addrCh := make(chan string, 1)
		coordErr := make(chan error, 1)
		go func() {
			coordErr <- runCtx(ctx, coordArgs, func(addr string) { addrCh <- addr })
		}()
		var addr string
		select {
		case addr = <-addrCh:
		case err := <-coordErr:
			return err
		}
		var wg sync.WaitGroup
		for _, name := range []string{"wA", "wB"} {
			wg.Add(1)
			go func(name string) {
				defer wg.Done()
				if err := runCtx(ctx, []string{"-worker", "-join", "http://" + addr, "-name", name, "-q"}, nil); err != nil {
					t.Errorf("worker %s: %v", name, err)
				}
			}(name)
		}
		err := <-coordErr
		wg.Wait()
		return err
	})
	if out != golden {
		t.Errorf("fleet report differs from single-process run:\n--- golden ---\n%s\n--- fleet ---\n%s", golden, out)
	}

	// Restart on the finished checkpoint: every cell restores from the
	// durable record, the study converges instantly with no workers, and
	// the rendered report is identical again.
	out2 := captureStdout(t, func() error { return run(coordArgs) })
	if out2 != golden {
		t.Errorf("resumed coordinator report differs:\n--- golden ---\n%s\n--- resumed ---\n%s", golden, out2)
	}
}

func captureStdout(t *testing.T, fn func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	runErr := fn()
	w.Close()
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if runErr != nil {
		t.Fatalf("run failed: %v\noutput so far:\n%s", runErr, out)
	}
	return string(out)
}

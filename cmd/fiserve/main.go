// Command fiserve runs the fault-injection study as a service: a
// network coordinator that expands one study submission into its
// canonical cell list and hands cells out as leases over HTTP, plus a
// worker mode that joins a coordinator, executes leased cells, and
// streams their results back.
//
//	fiserve -n 1000 -once                     # coordinator, render on convergence
//	fiserve -worker -join http://host:8344    # worker (run anywhere)
//	fiserve -n 1000 -once -spawn-workers 3    # single-machine fleet
//
// The coordinator owns durability and fault tolerance: leases expire
// when a worker stops heartbeating (crash, hang, partition), expired or
// failed cells are retried with exponential backoff, duplicate
// completions are deduped, and a cell that exhausts its retry budget
// degrades to a typed skip instead of wedging the study. Every resolved
// cell is appended to a durable checkpoint, and the final report is
// rendered by loading that checkpoint back through the typed checkpoint
// validation — byte-identical to the single-process ficompare run, no
// matter how much worker churn the campaign survived. Restarting the
// coordinator with the same -checkpoint resumes the remainder.
//
// /metrics and /statusz on the same listener serve the live fleet
// dashboard (leases, per-worker liveness, retry counts, queue depth);
// POST /drain stops granting leases for a graceful shutdown. See
// docs/fleet.md for the protocol and the failure matrix.
package main

import (
	"context"
	"flag"
	"fmt"
	"hash/fnv"
	"net"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"runtime"
	"strings"
	"syscall"
	"time"

	"hlfi/internal/adaptive"
	"hlfi/internal/cli"
	"hlfi/internal/core"
	"hlfi/internal/fleet"
	"hlfi/internal/obs"
	"hlfi/internal/obs/trace"
	"hlfi/internal/telemetry"
	"hlfi/internal/warehouse"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := runCtx(ctx, os.Args[1:], nil); err != nil {
		fmt.Fprintln(os.Stderr, "fiserve:", err)
		os.Exit(1)
	}
}

// run keeps the uncancellable entry point used by the in-process tests.
func run(args []string) error {
	return runCtx(context.Background(), args, nil)
}

// runCtx is the real entry point. onReady, when non-nil, receives the
// coordinator's bound listen address once it is serving (the in-process
// tests bind :0 and need the resolved port).
func runCtx(ctx context.Context, args []string, onReady func(addr string)) error {
	fs := flag.NewFlagSet("fiserve", flag.ContinueOnError)
	var (
		worker = fs.Bool("worker", false, "run as a fleet worker instead of the coordinator")
		join   = fs.String("join", "", "worker: coordinator base URL (http://host:port)")
		name   = fs.String("name", "", "worker: stable name reported to the coordinator (default: hostname-pid)")

		listen     = fs.String("listen", "127.0.0.1:8344", "coordinator listen address (fleet protocol + /metrics + /statusz)")
		experiment = fs.String("experiment", "all", "fig3|fig4|table5|all — report rendered once the study converges")
		n          = fs.Int("n", 1000, "activated injections per cell")
		seed       = fs.Int64("seed", 1, "study seed")
		benches    = fs.String("benchmarks", "", "comma-separated subset (default: all six)")
		quiet      = fs.Bool("q", false, "suppress operational log lines")
		simFaults  = fs.Int("sim-fault-limit", 0, "contained simulator panics tolerated per cell (0 = fail fast, -1 = unlimited)")
		deadline   = fs.Duration("cell-deadline", 0, "per-cell wall-clock watchdog on the workers (0 = off)")
		leaseTTL   = fs.Duration("lease-ttl", 30*time.Second, "heartbeat deadline: a lease not extended within this long is expired and its cell requeued")
		maxRetries = fs.Int("max-retries", 3, "re-grants per cell before it degrades to a typed fleet-failed skip")
		backoff    = fs.Duration("backoff", 250*time.Millisecond, "base requeue delay, doubled per retry up to -backoff-cap (with jitter)")
		backoffCap = fs.Duration("backoff-cap", 5*time.Second, "requeue delay ceiling")
		retryAfter = fs.Duration("retry-after", 200*time.Millisecond, "poll delay handed to workers when no cell is grantable")
		jitterSeed = fs.Int64("jitter-seed", 1, "requeue jitter seed (shapes scheduling only; results never depend on it)")
		checkpoint = fs.String("checkpoint", "", "durable cell checkpoint (JSONL); an existing non-empty file resumes the study (default: a temp file, removed after a rendered run)")
		events     = fs.String("events", "", "write the coordinator's fleet telemetry event stream (JSONL) to this file")
		once       = fs.Bool("once", false, "exit once the study converges, rendering the report to stdout (default: keep serving dashboards until interrupted)")
		spawn      = fs.Int("spawn-workers", 0, "spawn this many local worker subprocesses joined to this coordinator")
		drainGrace = fs.Duration("drain-grace", 30*time.Second, "on SIGTERM, wait this long for in-flight leases to complete before exiting")
		adaptFlag  = fs.String("adaptive", "off", "adaptive sampling: off|on|eps=E,min=M,check=C — workers stop cells once every outcome-rate Wilson 95% CI is narrower than eps; the coordinator reallocates the saved budget as extension leases")
		traceOn    = fs.Bool("trace", false, "arm fleet-wide distributed tracing: lease grants propagate trace context to workers, worker spans merge back over heartbeats and completions, and /tracez serves the live timeline (results are byte-identical with or without it)")
		flightRec  = fs.String("flight-recorder", "", "also append every finished span to this durable JSONL flight-recorder file (implies -trace; fail-stop: a write failure detaches the file and the in-memory timeline continues)")
		warehouseD = fs.String("warehouse", "", "content-addressed result warehouse directory: warehoused cells resolve at submission without ever granting a lease, every leased resolution is stored back, and GET /warehouse reports per-cell hit/miss status")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	adaptCfg, err := adaptive.Parse(*adaptFlag)
	if err != nil {
		return fmt.Errorf("-adaptive %q: %w", *adaptFlag, err)
	}
	if *worker {
		return runWorker(ctx, *join, *name, *quiet)
	}
	switch *experiment {
	case "fig3", "fig4", "table5", "all":
	default:
		return fmt.Errorf("unknown experiment %q (the fleet runs campaign experiments: fig3|fig4|table5|all)", *experiment)
	}
	if *spawn < 0 {
		return fmt.Errorf("-spawn-workers %d: want zero or more", *spawn)
	}
	if *join != "" || *name != "" {
		return fmt.Errorf("-join and -name are worker flags; add -worker")
	}

	logf := func(format string, a ...any) { fmt.Fprintf(os.Stderr, format+"\n", a...) }
	if *quiet {
		logf = func(string, ...any) {}
	}

	progs, err := cli.BuildPrograms(*benches)
	if err != nil {
		return err
	}

	// Durability: the coordinator always checkpoints. A named -checkpoint
	// survives restarts (and resumes when the file already has records);
	// the default is a temp file removed only after a fully rendered run,
	// so an interrupted study is never left without its state. Workers
	// always run the compiled engines without replay, which pins the
	// checkpoint shape.
	shape := core.CheckpointShape{N: *n, Seed: *seed, Replay: "off", Compiled: "on",
		Adaptive: adaptCfg.Signature()}
	ckptPath := *checkpoint
	var tmpCkptDir string
	if ckptPath == "" {
		dir, err := os.MkdirTemp("", "fiserve-")
		if err != nil {
			return err
		}
		tmpCkptDir = dir
		ckptPath = filepath.Join(dir, "fleet-checkpoint.jsonl")
	}
	var resumeState *core.CheckpointState
	var writer *core.CheckpointWriter
	if st, statErr := os.Stat(ckptPath); statErr == nil && st.Size() > 0 {
		resumeState, err = core.LoadCheckpointShape(ckptPath, shape)
		if err != nil {
			return err
		}
		logf("fiserve: resuming: %d completed and %d skipped cells restored from %s",
			len(resumeState.Cells), len(resumeState.Skips), ckptPath)
		writer, err = core.OpenCheckpointAppend(ckptPath)
	} else {
		writer, err = core.NewCheckpointWriterShape(ckptPath, shape)
	}
	if err != nil {
		return err
	}
	defer writer.Close()

	var rec telemetry.Recorder
	if *events != "" {
		f, err := os.Create(*events)
		if err != nil {
			return err
		}
		defer f.Close()
		rec = telemetry.NewJSONLSink(f)
	}

	// Fleet tracing: one recorder on the coordinator owns the merged
	// timeline (its trace ID rides every lease grant; worker span batches
	// merge back through /heartbeat and /complete). -flight-recorder adds
	// the durable JSONL file under fail-stop discipline. Scheduling-only:
	// the report and checkpoint are byte-identical with or without it.
	var tracer *trace.Recorder
	if *traceOn || *flightRec != "" {
		tracer, err = trace.New(trace.Options{
			Capacity: 1 << 16,
			File:     *flightRec,
			Head: trace.Header{
				Go:       runtime.Version(),
				Engine:   "on",
				Adaptive: adaptCfg.Signature(),
				N:        *n,
				Seed:     *seed,
			},
		})
		if err != nil {
			return err
		}
		defer func() {
			if cerr := tracer.Close(); cerr != nil {
				logf("fiserve: flight recorder: %v", cerr)
			}
		}()
		if *flightRec != "" {
			logf("fiserve: flight recorder appending to %s", *flightRec)
		}
	}

	metrics := fleet.NewMetrics()
	obs.RegisterBuildInfo(metrics.Registry(), "on", adaptCfg.Signature())

	// Result warehouse: warehoused cells resolve at submission without a
	// lease, leased resolutions are stored back, and GET /warehouse
	// reports per-cell status. The cache key covers the same shape the
	// checkpoint header pins, so fleet and local ficompare runs share one
	// store.
	var wcache *warehouse.StudyCache
	if *warehouseD != "" {
		wstore, werr := warehouse.Open(*warehouseD)
		if werr != nil {
			return werr
		}
		wstore.Hits, wstore.Misses, wstore.Stores =
			metrics.WarehouseHits, metrics.WarehouseMisses, metrics.WarehouseStores
		wcache = wstore.ForStudy(shape, progs)
		logf("fiserve: result warehouse at %s", wstore.Dir())
	}

	c, err := fleet.New(fleet.Config{
		Programs:      progs,
		N:             *n,
		Seed:          *seed,
		SimFaultLimit: *simFaults,
		CellDeadline:  *deadline,
		LeaseTTL:      *leaseTTL,
		MaxRetries:    *maxRetries,
		Backoff:       *backoff,
		BackoffCap:    *backoffCap,
		RetryAfter:    *retryAfter,
		JitterSeed:    *jitterSeed,
		Adaptive:      adaptCfg,
		Checkpoint:    writer,
		Resume:        resumeState,
		Warehouse:     wcache,
		Events:        rec,
		Metrics:       metrics,
		Trace:         tracer,
		Logf:          logf,
	})
	if err != nil {
		return err
	}
	c.Start()
	defer c.Stop()

	// One listener serves the fleet protocol and the obs dashboard: the
	// protocol endpoints take their paths, everything else (/metrics,
	// /statusz, /debug/pprof/) falls through to the obs mux with the
	// coordinator's Status as the /statusz payload.
	mux := c.Handler()
	mux.Handle("/", obs.MuxTrace(metrics.Registry(), c.Status, tracer))
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	defer srv.Close()
	addr := ln.Addr().String()
	logf("fiserve: coordinating on http://%s (POST /lease /heartbeat /complete /drain; GET /metrics /statusz /tracez)", addr)
	if onReady != nil {
		onReady(addr)
	}

	// Optional single-machine fleet: local worker subprocesses joined to
	// this coordinator. They exit on their own once the study converges
	// (or drains); a SIGTERM-ed coordinator forwards the signal so they
	// drain too.
	var poolDone chan []string
	if *spawn > 0 {
		exe, err := os.Executable()
		if err != nil {
			return fmt.Errorf("cannot locate own binary to spawn workers: %w", err)
		}
		cmds := make([]*exec.Cmd, *spawn)
		for i := range cmds {
			wargs := []string{"-worker", "-join", "http://" + addr, "-name", fmt.Sprintf("w%d", i+1)}
			if *quiet {
				wargs = append(wargs, "-q")
			}
			cmds[i] = cli.WorkerCommand(ctx, exe, wargs...)
		}
		poolDone = make(chan []string, 1)
		go func() {
			poolDone <- cli.RunWorkerPool(cmds, func(i int) string { return fmt.Sprintf("worker w%d", i+1) })
		}()
	}

	// Wait for convergence or a shutdown signal. Without -once a
	// converged coordinator keeps the dashboards up until interrupted.
	converged := false
	select {
	case <-c.Done():
		converged = true
	case <-ctx.Done():
	}
	if converged && !*once {
		logf("fiserve: study converged; dashboards stay up until interrupted (use -once to exit on convergence)")
		<-ctx.Done()
	}
	if !converged {
		unresolved := c.Drain()
		logf("fiserve: interrupted; draining (%d cells unresolved, waiting up to %v for in-flight leases)", unresolved, *drainGrace)
		select {
		case <-c.Done():
			converged = true
		case <-time.After(*drainGrace):
		}
	}
	if converged {
		// Let waiting workers observe the done status before the listener
		// goes away: a poller re-polls within -retry-after, so two periods
		// of linger turn a would-be "connection refused" into the clean
		// worker exit the protocol promises.
		time.Sleep(2 * *retryAfter)
	}
	if poolDone != nil {
		for _, f := range <-poolDone {
			fmt.Fprintf(os.Stderr, "fiserve: %s\n", f)
		}
	}

	if !converged {
		st := c.State()
		logf("fiserve: study incomplete (%d of %d cells resolved); checkpoint kept at %s — restart with -checkpoint %s to resume",
			len(st.Cells)+len(st.Skips), len(core.CanonicalCells(progs, nil)), ckptPath, ckptPath)
		return nil
	}

	// Render through the durable path: close the writer, load the
	// checkpoint back through the typed validation, and resume the study
	// from it — only the profiling runs execute locally, every campaign
	// cell comes from the fleet. If a write failure detached the writer
	// mid-run, the in-memory state (same typed CheckpointState) stands in.
	if err := writer.Close(); err != nil {
		logf("fiserve: checkpoint close: %v (rendering from in-memory state)", err)
	}
	state := c.State()
	if c.CheckpointIntact() {
		loaded, err := core.LoadCheckpointShape(ckptPath, shape)
		if err != nil {
			return fmt.Errorf("re-loading own checkpoint %s: %w", ckptPath, err)
		}
		state = loaded
	} else {
		logf("fiserve: durable checkpoint was detached by a write failure; rendering from in-memory state")
	}
	// Adaptive fleets finish their extension leases before convergence,
	// so every resumed record already carries its final target; the
	// render study recomputes the same plan from the persisted round-1
	// counts and re-runs nothing.
	st, err := core.RunStudy(core.StudyConfig{
		Programs: progs, N: *n, Seed: *seed,
		SimFaultLimit: *simFaults, CellDeadline: *deadline,
		Adaptive: adaptCfg, Resume: state,
	})
	if err != nil {
		return err
	}
	cli.RenderExperiment(os.Stdout, st, *experiment)
	if tmpCkptDir != "" {
		os.RemoveAll(tmpCkptDir)
	}
	return nil
}

// runWorker is worker mode: join a coordinator and execute leases until
// it reports the study done (or we are SIGTERM-ed, which drains: the
// cell in flight finishes and its completion is delivered first).
func runWorker(ctx context.Context, join, name string, quiet bool) error {
	if join == "" {
		return fmt.Errorf("-worker requires -join http://host:port")
	}
	if name == "" {
		host, err := os.Hostname()
		if err != nil || host == "" {
			host = "worker"
		}
		name = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	logf := func(format string, a ...any) { fmt.Fprintf(os.Stderr, format+"\n", a...) }
	if quiet {
		logf = func(string, ...any) {}
	}
	client := &fleet.Client{
		Base: strings.TrimRight(join, "/"),
		// Per-worker jitter streams: derived from the name so a fleet
		// reconnecting after a coordinator restart spreads out, yet every
		// run of the same fleet is reproducible.
		JitterSeed: jitterSeedFor(name),
		Logf:       logf,
	}
	return fleet.RunWorker(ctx, fleet.WorkerConfig{Name: name, Client: client, Logf: logf})
}

// jitterSeedFor hashes a worker name into a non-zero jitter seed.
func jitterSeedFor(name string) int64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	seed := int64(h.Sum64())
	if seed == 0 {
		return 1
	}
	return seed
}

package main

import "testing"

func TestRunFlags(t *testing.T) {
	if err := run([]string{"-bench", "quantumm", "-category", "cmp", "-n", "15", "-seed", "2"}); err != nil {
		t.Fatalf("basic campaign: %v", err)
	}
	if err := run([]string{"-bench", "quantumm", "-ir"}); err != nil {
		t.Fatalf("-ir dump: %v", err)
	}
	if err := run([]string{"-category", "cmp"}); err == nil {
		t.Error("missing -bench/-src accepted")
	}
	if err := run([]string{"-bench", "quantumm", "-category", "bogus"}); err == nil {
		t.Error("bad category accepted")
	}
}

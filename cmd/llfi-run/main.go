// Command llfi-run performs an LLFI-style fault-injection campaign at the
// IR level against one benchmark (or a minic source file), mirroring the
// paper's §III workflow: select candidates, profile, inject at runtime,
// classify outcomes against the golden run.
//
// Usage:
//
//	llfi-run -bench bzip2m -category arithmetic -n 1000 -seed 1
//	llfi-run -src prog.c -category all -n 200
package main

import (
	"flag"
	"fmt"
	"os"

	"hlfi/internal/adaptive"
	"hlfi/internal/cli"
	"hlfi/internal/fault"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "llfi-run:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("llfi-run", flag.ContinueOnError)
	var (
		benchName = fs.String("bench", "", "benchmark name (bzip2m|mcfm|hmmerm|quantumm|oceanm|raytracem)")
		srcPath   = fs.String("src", "", "minic source file to inject into (alternative to -bench)")
		catName   = fs.String("category", "all", "instruction category: all|arithmetic|cast|cmp|load")
		n         = fs.Int("n", 1000, "activated injections to collect")
		seed      = fs.Int64("seed", 1, "campaign seed")
		verbose   = fs.Bool("v", false, "print activation accounting")
		dumpIR    = fs.Bool("ir", false, "print the optimized IR and exit")
		events    = fs.String("events", "", "write the campaign telemetry event stream (JSONL) to this file")
		status    = fs.String("status", "", "serve live observability on this address (/metrics, /statusz, /debug/pprof/)")
		traceAtt  = fs.Int("trace-attempts", 0, "record fault-propagation traces for the first N attempts as attempt_trace events")
		noComp    = fs.Bool("no-compiled", false, "force every attempt onto the interpreter instead of the compiled engine (results are byte-identical)")
		adaptFlag = fs.String("adaptive", "off", "adaptive early stopping: off|on|eps=E,min=M,check=C (stop once every outcome-rate Wilson CI is narrower than eps)")
		warehouse = fs.String("warehouse", "", "content-addressed result warehouse directory: a cached record for this exact cell replays the summary without executing an injection, and a fresh result is stored back (records are keyed by the effective campaign seed, so they interoperate with ficompare/fleet stores exactly when the samples match)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	adaptCfg, err := adaptive.Parse(*adaptFlag)
	if err != nil {
		return err
	}
	prog, err := cli.LoadProgram(*benchName, *srcPath)
	if err != nil {
		return err
	}
	if *dumpIR {
		fmt.Print(prog.Prep.Mod.String())
		return nil
	}
	cat, err := fault.ParseCategory(*catName)
	if err != nil {
		return err
	}
	return cli.RunCampaign(os.Stdout, prog, fault.LevelIR, cat,
		cli.CampaignOptions{N: *n, Seed: *seed, Verbose: *verbose, EventsPath: *events,
			StatusAddr: *status, TraceAttempts: *traceAtt, NoCompiled: *noComp,
			Adaptive: adaptCfg, Warehouse: *warehouse})
}

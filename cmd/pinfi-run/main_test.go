package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunFlags(t *testing.T) {
	if err := run([]string{"-bench", "quantumm", "-category", "cmp", "-n", "15", "-seed", "2"}); err != nil {
		t.Fatalf("basic campaign: %v", err)
	}
	if err := run([]string{"-bench", "quantumm", "-category", "load", "-disasm"}); err != nil {
		t.Fatalf("-disasm: %v", err)
	}
	if err := run([]string{"-bench", "quantumm", "-category", "bogus"}); err == nil {
		t.Error("bad category accepted")
	}
}

// TestRunEvents: -events captures the single-cell campaign as a JSONL
// stream bracketed by study_start/study_done (flag parity with
// ficompare).
func TestRunEvents(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.jsonl")
	if err := run([]string{"-bench", "quantumm", "-category", "load", "-n", "10", "-events", path}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d events, want study_start + cell_done + study_done:\n%s", len(lines), raw)
	}
	var first, mid, last struct {
		Type string `json:"type"`
	}
	for i, dst := range []any{&first, &mid, &last} {
		if err := json.Unmarshal([]byte(lines[i]), dst); err != nil {
			t.Fatalf("bad JSONL line %q: %v", lines[i], err)
		}
	}
	if first.Type != "study_start" || mid.Type != "cell_done" || last.Type != "study_done" {
		t.Fatalf("stream = %s/%s/%s", first.Type, mid.Type, last.Type)
	}
}

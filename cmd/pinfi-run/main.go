// Command pinfi-run performs a PINFI-style fault-injection campaign at
// the assembly level against one benchmark (or a minic source file),
// mirroring the paper's §IV workflow, including the flag-dependent-bit
// and XMM-pruning activation heuristics.
//
// Usage:
//
//	pinfi-run -bench bzip2m -category arithmetic -n 1000 -seed 1
//	pinfi-run -src prog.c -category load -n 200 -disasm
package main

import (
	"flag"
	"fmt"
	"os"

	"hlfi/internal/adaptive"
	"hlfi/internal/cli"
	"hlfi/internal/fault"
	"hlfi/internal/pinfi"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "pinfi-run:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("pinfi-run", flag.ContinueOnError)
	var (
		benchName = fs.String("bench", "", "benchmark name (bzip2m|mcfm|hmmerm|quantumm|oceanm|raytracem)")
		srcPath   = fs.String("src", "", "minic source file to inject into (alternative to -bench)")
		catName   = fs.String("category", "all", "instruction category: all|arithmetic|cast|cmp|load")
		n         = fs.Int("n", 1000, "activated injections to collect")
		seed      = fs.Int64("seed", 1, "campaign seed")
		verbose   = fs.Bool("v", false, "print activation accounting")
		disasm    = fs.Bool("disasm", false, "print the lowered assembly, marking the category's injection candidates, and exit")
		events    = fs.String("events", "", "write the campaign telemetry event stream (JSONL) to this file")
		status    = fs.String("status", "", "serve live observability on this address (/metrics, /statusz, /debug/pprof/)")
		traceAtt  = fs.Int("trace-attempts", 0, "record fault-propagation traces for the first N attempts as attempt_trace events")
		noComp    = fs.Bool("no-compiled", false, "force every attempt onto the simulator instead of the pre-decoded engine (results are byte-identical)")
		adaptFlag = fs.String("adaptive", "off", "adaptive early stopping: off|on|eps=E,min=M,check=C (stop once every outcome-rate Wilson CI is narrower than eps)")
		warehouse = fs.String("warehouse", "", "content-addressed result warehouse directory: a cached record for this exact cell replays the summary without executing an injection, and a fresh result is stored back (records are keyed by the effective campaign seed, so they interoperate with ficompare/fleet stores exactly when the samples match)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	adaptCfg, err := adaptive.Parse(*adaptFlag)
	if err != nil {
		return err
	}
	prog, err := cli.LoadProgram(*benchName, *srcPath)
	if err != nil {
		return err
	}
	cat, err := fault.ParseCategory(*catName)
	if err != nil {
		return err
	}
	if *disasm {
		// Annotate each instruction with a '*' when it is an injection
		// candidate for the selected category.
		cands := pinfi.Candidates(prog.Asm, cat)
		for i := range prog.Asm.Instrs {
			in := &prog.Asm.Instrs[i]
			if in.Fn != "" {
				fmt.Printf("\n%s:\n", in.Fn)
			}
			mark := " "
			if cands[i] {
				mark = "*"
			}
			fmt.Printf("%s %4d: %s\n", mark, i, in.String())
		}
		return nil
	}
	return cli.RunCampaign(os.Stdout, prog, fault.LevelASM, cat,
		cli.CampaignOptions{N: *n, Seed: *seed, Verbose: *verbose, EventsPath: *events,
			StatusAddr: *status, TraceAttempts: *traceAtt, NoCompiled: *noComp,
			Adaptive: adaptCfg, Warehouse: *warehouse})
}

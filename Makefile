# Convenience targets; everything is plain `go` underneath.

.PHONY: test bench study calibration examples cover fmt race smoke ci

test:
	go build ./... && go vet ./... && go test ./...

# Race coverage for the concurrency-bearing packages (mirrors the CI
# race job).
race:
	go test -race ./internal/core/... ./internal/sched/... ./internal/telemetry/...

# Study-binary smoke + determinism gate: the cell scheduler must produce
# byte-identical tables to the serial path (mirrors the CI smoke job).
smoke:
	go run ./cmd/ficompare -experiment all -n 20 -benchmarks bzip2m,mcfm -q > .smoke-serial.txt
	go run ./cmd/ficompare -experiment all -n 20 -benchmarks bzip2m,mcfm -q -parallel 4 > .smoke-parallel.txt
	cmp .smoke-serial.txt .smoke-parallel.txt
	rm -f .smoke-serial.txt .smoke-parallel.txt

# The exact CI pipeline (.github/workflows/ci.yml), runnable locally.
ci:
	go build ./...
	go vet ./...
	@unformatted="$$(gofmt -l .)"; \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi
	go test ./...
	$(MAKE) race
	$(MAKE) smoke

# All tables/figures + ablations. HLFI_N controls injections per cell.
bench:
	go test -bench=. -benchmem -benchtime=1x

# Paper-scale reproduction (the committed study_n1000.txt).
study:
	go run ./cmd/ficompare -experiment all -n 1000 > study_n1000.txt

# The §VII future-work experiment (the committed calibration_n500.txt).
calibration:
	go run ./cmd/ficompare -experiment calibration -n 500 > calibration_n500.txt

examples:
	go run ./examples/quickstart
	go run ./examples/resilience
	go run ./examples/tracing
	go run ./examples/customir
	go run ./examples/srcmap

cover:
	go test -cover ./internal/...

fmt:
	gofmt -w .

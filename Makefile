# Convenience targets; everything is plain `go` underneath.

.PHONY: test bench study calibration examples cover fmt race smoke resume-smoke fuzz-smoke replay-determinism compiled-smoke obs-smoke shard-smoke fleet-smoke adaptive-smoke trace-smoke warehouse-smoke ci

test:
	go build ./... && go vet ./... && go test ./...

# Race coverage for the concurrency-bearing packages (mirrors the CI
# race job).
race:
	go test -race ./internal/core/... ./internal/sched/... ./internal/telemetry/... ./internal/fleet/... ./internal/cli/... ./internal/adaptive/... ./internal/warehouse/...

# Study-binary smoke + determinism gate: the cell scheduler must produce
# byte-identical tables to the serial path (mirrors the CI smoke job).
smoke:
	go run ./cmd/ficompare -experiment all -n 20 -benchmarks bzip2m,mcfm -q > .smoke-serial.txt
	go run ./cmd/ficompare -experiment all -n 20 -benchmarks bzip2m,mcfm -q -parallel 4 > .smoke-parallel.txt
	cmp .smoke-serial.txt .smoke-parallel.txt
	rm -f .smoke-serial.txt .smoke-parallel.txt

# Kill-and-resume smoke: start a checkpointed study, SIGTERM it
# mid-run, resume from the checkpoint, and byte-compare the resumed
# output against an uninterrupted run (mirrors the CI resume-smoke job).
resume-smoke:
	go build -o .resume-smoke-bin ./cmd/ficompare
	./.resume-smoke-bin -experiment all -n 200 -benchmarks bzip2m,mcfm -q > .resume-full.txt
	./.resume-smoke-bin -experiment all -n 200 -benchmarks bzip2m,mcfm -q \
		-checkpoint .resume-ck.jsonl > /dev/null 2>&1 & \
	pid=$$!; sleep 1; kill -TERM $$pid 2>/dev/null; wait $$pid; true
	test -s .resume-ck.jsonl
	./.resume-smoke-bin -experiment all -n 200 -benchmarks bzip2m,mcfm -q \
		-resume .resume-ck.jsonl > .resume-resumed.txt
	cmp .resume-full.txt .resume-resumed.txt
	rm -f .resume-smoke-bin .resume-full.txt .resume-resumed.txt .resume-ck.jsonl

# Replay determinism gate: the snapshot fast-forward engine must be
# observationally invisible — a study with snapshots (the default) is
# byte-compared against -no-snapshots (mirrors the CI job).
replay-determinism:
	go run ./cmd/ficompare -experiment all -n 20 -benchmarks bzip2m,mcfm -q -no-snapshots > .replay-off.txt
	go run ./cmd/ficompare -experiment all -n 20 -benchmarks bzip2m,mcfm -q > .replay-on.txt
	cmp .replay-off.txt .replay-on.txt
	go run ./cmd/ficompare -experiment all -n 20 -benchmarks bzip2m,mcfm -q -parallel 4 -snapshot-stride 777 > .replay-stride.txt
	cmp .replay-off.txt .replay-stride.txt
	rm -f .replay-off.txt .replay-on.txt .replay-stride.txt

# Compiled-engine determinism gate: the compiled execution engines must
# be observationally invisible — a study with them (the default) is
# byte-compared against -no-compiled, sequentially and under the
# parallel scheduler (mirrors the CI compiled-determinism job).
compiled-smoke:
	go run ./cmd/ficompare -experiment all -n 20 -benchmarks bzip2m,mcfm -q -no-compiled > .compiled-off.txt
	go run ./cmd/ficompare -experiment all -n 20 -benchmarks bzip2m,mcfm -q > .compiled-on.txt
	cmp .compiled-off.txt .compiled-on.txt
	go run ./cmd/ficompare -experiment all -n 20 -benchmarks bzip2m,mcfm -q -parallel 4 > .compiled-parallel.txt
	cmp .compiled-off.txt .compiled-parallel.txt
	go run ./cmd/ficompare -experiment all -n 20 -benchmarks bzip2m,mcfm -q -no-compiled -no-snapshots > .compiled-neither.txt
	cmp .compiled-off.txt .compiled-neither.txt
	rm -f .compiled-off.txt .compiled-on.txt .compiled-parallel.txt .compiled-neither.txt

# Observability smoke + determinism gate: a tiny campaign with the live
# status endpoint and attempt tracing armed must serve /metrics and
# /statusz while running, and render byte-identical tables to an
# unobserved run (mirrors the CI obs-smoke job).
obs-smoke:
	go build -o .obs-smoke-bin ./cmd/ficompare
	./.obs-smoke-bin -experiment all -n 20 -benchmarks bzip2m,mcfm -q > .obs-off.txt
	./.obs-smoke-bin -experiment all -n 20 -benchmarks bzip2m,mcfm -q \
		-status 127.0.0.1:8791 -status-linger 5s -trace-attempts 2 > .obs-on.txt 2>/dev/null & \
	pid=$$!; up=""; \
	for i in $$(seq 1 150); do \
		if curl -fs http://127.0.0.1:8791/metrics > .obs-metrics.txt 2>/dev/null; then up=1; break; fi; \
		sleep 0.2; \
	done; \
	test -n "$$up"; \
	curl -fs http://127.0.0.1:8791/metrics > .obs-metrics.txt; \
	curl -fs http://127.0.0.1:8791/statusz > .obs-statusz.json; \
	wait $$pid
	grep -q '^hlfi_attempts_total ' .obs-metrics.txt
	grep -q '^hlfi_outcomes_total{outcome="sdc"}' .obs-metrics.txt
	grep -q '^hlfi_trace_attempts_total ' .obs-metrics.txt
	grep -q '^hlfi_attempt_seconds_bucket' .obs-metrics.txt
	grep -q '^hlfi_snapshot_cache_bytes ' .obs-metrics.txt
	grep -q '"cellsPlanned"' .obs-statusz.json
	cmp .obs-off.txt .obs-on.txt
	rm -f .obs-smoke-bin .obs-off.txt .obs-on.txt .obs-metrics.txt .obs-statusz.json

# Shard-and-merge smoke: run the study as three shard processes, kill
# one mid-run, resume only that shard, merge the checkpoints, and
# byte-compare the merged report against a single-process run; then the
# same study through the -shard-workers supervisor (mirrors the CI
# shard-smoke job).
shard-smoke:
	go build -o .shard-smoke-bin ./cmd/ficompare
	./.shard-smoke-bin -experiment all -n 200 -benchmarks bzip2m,mcfm -q > .shard-full.txt
	./.shard-smoke-bin -experiment all -n 200 -benchmarks bzip2m,mcfm -q \
		-shard 0/3 -checkpoint .shard-0.jsonl > /dev/null
	./.shard-smoke-bin -experiment all -n 200 -benchmarks bzip2m,mcfm -q \
		-shard 1/3 -checkpoint .shard-1.jsonl > /dev/null 2>&1 & \
	pid=$$!; sleep 1; kill -TERM $$pid 2>/dev/null; wait $$pid; true
	test -s .shard-1.jsonl
	./.shard-smoke-bin -experiment all -n 200 -benchmarks bzip2m,mcfm -q \
		-shard 2/3 -checkpoint .shard-2.jsonl > /dev/null
	./.shard-smoke-bin -experiment all -n 200 -benchmarks bzip2m,mcfm -q \
		-shard 1/3 -resume .shard-1.jsonl > /dev/null
	./.shard-smoke-bin -experiment all -n 200 -benchmarks bzip2m,mcfm -q \
		-merge '.shard-*.jsonl' > .shard-merged.txt
	cmp .shard-full.txt .shard-merged.txt
	./.shard-smoke-bin -experiment all -n 200 -benchmarks bzip2m,mcfm -q \
		-shard-workers 3 -shard-dir .shard-sup > .shard-supervised.txt
	cmp .shard-full.txt .shard-supervised.txt
	rm -rf .shard-smoke-bin .shard-full.txt .shard-merged.txt .shard-supervised.txt .shard-[0-9].jsonl .shard-sup

# Campaign-fleet smoke: run the study as a service — a fiserve
# coordinator plus three worker processes, SIGKILL one worker while it
# holds a lease so the lease expires and its cell is retried — then
# byte-compare the coordinator's report against the single-process run
# (already gated sequential-vs-parallel) and assert the fleet counters
# recorded the churn (mirrors the CI fleet-smoke job).
fleet-smoke:
	go build -o .fleet-ficompare ./cmd/ficompare
	go build -o .fleet-fiserve ./cmd/fiserve
	./.fleet-ficompare -experiment all -n 200 -benchmarks bzip2m,mcfm -q > .fleet-golden.txt
	./.fleet-ficompare -experiment all -n 200 -benchmarks bzip2m,mcfm -q -parallel 4 > .fleet-parallel.txt
	cmp .fleet-golden.txt .fleet-parallel.txt
	./.fleet-fiserve -listen 127.0.0.1:8792 -once -q -experiment all -n 200 \
		-benchmarks bzip2m,mcfm -lease-ttl 2s -retry-after 50ms -backoff 100ms \
		-checkpoint .fleet-ck.jsonl > .fleet-report.txt & \
	cpid=$$!; \
	for i in $$(seq 1 150); do \
		curl -fs http://127.0.0.1:8792/statusz > /dev/null 2>&1 && break; sleep 0.2; \
	done; \
	./.fleet-fiserve -worker -join http://127.0.0.1:8792 -name w1 -q & w1=$$!; \
	./.fleet-fiserve -worker -join http://127.0.0.1:8792 -name w2 -q & w2=$$!; \
	./.fleet-fiserve -worker -join http://127.0.0.1:8792 -name w3 -q & w3=$$!; \
	for i in $$(seq 1 300); do \
		curl -fs http://127.0.0.1:8792/statusz 2>/dev/null | grep -q '"worker": "w3"' && break; sleep 0.1; \
	done; \
	kill -9 $$w3 2>/dev/null; \
	i=0; while kill -0 $$cpid 2>/dev/null && [ $$i -lt 900 ]; do \
		curl -fs http://127.0.0.1:8792/metrics > .fleet-metrics.tmp 2>/dev/null && mv .fleet-metrics.tmp .fleet-metrics.txt; \
		i=$$((i+1)); sleep 0.2; \
	done; \
	if kill -0 $$cpid 2>/dev/null; then \
		echo "fleet-smoke: coordinator did not converge"; kill $$cpid $$w1 $$w2 2>/dev/null; exit 1; \
	fi; \
	wait $$cpid; rc=$$?; wait $$w1 2>/dev/null; wait $$w2 2>/dev/null; exit $$rc
	cmp .fleet-golden.txt .fleet-report.txt
	grep -q '^hlfi_fleet_leases_total ' .fleet-metrics.txt
	awk '$$1=="hlfi_fleet_lease_expiries_total" && $$2+0>=1 {ok=1} END {exit !ok}' .fleet-metrics.txt
	awk '$$1=="hlfi_fleet_retries_total" && $$2+0>=1 {ok=1} END {exit !ok}' .fleet-metrics.txt
	grep -q '^hlfi_fleet_workers_live ' .fleet-metrics.txt
	rm -f .fleet-ficompare .fleet-fiserve .fleet-golden.txt .fleet-parallel.txt \
		.fleet-report.txt .fleet-ck.jsonl .fleet-metrics.txt .fleet-metrics.tmp

# Adaptive-sampling smoke + determinism gate: an adaptive study must
# render identically under the parallel scheduler and through a
# three-shard merge (which adopts the adaptive signature from the shard
# headers), and a fixed-n study must show no adaptive section at all
# (mirrors the CI adaptive-smoke job).
adaptive-smoke:
	go build -o .adaptive-bin ./cmd/ficompare
	./.adaptive-bin -experiment all -n 200 -benchmarks bzip2m,mcfm -q > .adaptive-off.txt
	! grep -q 'Adaptive sampling' .adaptive-off.txt
	./.adaptive-bin -experiment all -n 200 -benchmarks bzip2m,mcfm -q \
		-adaptive eps=0.05,min=50,check=64 > .adaptive-seq.txt
	grep -q 'Adaptive sampling' .adaptive-seq.txt
	grep -q 'converged' .adaptive-seq.txt
	./.adaptive-bin -experiment all -n 200 -benchmarks bzip2m,mcfm -q \
		-adaptive eps=0.05,min=50,check=64 -parallel 4 > .adaptive-par.txt
	cmp .adaptive-seq.txt .adaptive-par.txt
	./.adaptive-bin -experiment all -n 200 -benchmarks bzip2m,mcfm -q \
		-adaptive eps=0.05,min=50,check=64 -shard 0/3 -checkpoint .adaptive-0.jsonl > /dev/null
	./.adaptive-bin -experiment all -n 200 -benchmarks bzip2m,mcfm -q \
		-adaptive eps=0.05,min=50,check=64 -shard 1/3 -checkpoint .adaptive-1.jsonl > /dev/null
	./.adaptive-bin -experiment all -n 200 -benchmarks bzip2m,mcfm -q \
		-adaptive eps=0.05,min=50,check=64 -shard 2/3 -checkpoint .adaptive-2.jsonl > /dev/null
	./.adaptive-bin -experiment all -n 200 -benchmarks bzip2m,mcfm -q \
		-merge '.adaptive-[0-9].jsonl' > .adaptive-merged.txt
	cmp .adaptive-seq.txt .adaptive-merged.txt
	rm -f .adaptive-bin .adaptive-off.txt .adaptive-seq.txt .adaptive-par.txt \
		.adaptive-merged.txt .adaptive-[0-9].jsonl

# Flight-recorder smoke + determinism gate: a single-process study with
# -trace-out must render byte-identically to the untraced golden and
# write a well-formed Chrome trace; then a traced fiserve fleet with one
# worker SIGKILLed mid-lease must also match the golden, leave a durable
# flight-recorder file, and serve a /tracez Chrome export whose timeline
# shows the retry and the worker-attributed exec spans (mirrors the CI
# trace-smoke job).
trace-smoke:
	go build -o .trace-ficompare ./cmd/ficompare
	go build -o .trace-fiserve ./cmd/fiserve
	./.trace-ficompare -experiment all -n 200 -benchmarks bzip2m,mcfm -q > .trace-golden.txt
	./.trace-ficompare -experiment all -n 200 -benchmarks bzip2m,mcfm -q \
		-trace-out .trace-solo.json > .trace-on.txt
	cmp .trace-golden.txt .trace-on.txt
	jq -e '.traceEvents | length > 0' .trace-solo.json > /dev/null
	jq -e '[.traceEvents[] | select(.cat=="cell")] | length > 0' .trace-solo.json > /dev/null
	./.trace-fiserve -listen 127.0.0.1:8793 -once -q -experiment all -n 200 \
		-benchmarks bzip2m,mcfm -lease-ttl 2s -retry-after 50ms -backoff 100ms \
		-trace -flight-recorder .trace-flight.jsonl > .trace-fleet.txt & \
	cpid=$$!; \
	for i in $$(seq 1 150); do \
		curl -fs http://127.0.0.1:8793/statusz > /dev/null 2>&1 && break; sleep 0.2; \
	done; \
	./.trace-fiserve -worker -join http://127.0.0.1:8793 -name w1 -q & w1=$$!; \
	./.trace-fiserve -worker -join http://127.0.0.1:8793 -name w2 -q & w2=$$!; \
	./.trace-fiserve -worker -join http://127.0.0.1:8793 -name w3 -q & w3=$$!; \
	for i in $$(seq 1 300); do \
		curl -fs http://127.0.0.1:8793/statusz 2>/dev/null | grep -q '"worker": "w3"' && break; sleep 0.1; \
	done; \
	kill -9 $$w3 2>/dev/null; \
	i=0; while kill -0 $$cpid 2>/dev/null && [ $$i -lt 900 ]; do \
		curl -fs 'http://127.0.0.1:8793/tracez?format=chrome' > .trace-chrome.tmp 2>/dev/null \
			&& mv .trace-chrome.tmp .trace-chrome.json; \
		i=$$((i+1)); sleep 0.2; \
	done; \
	if kill -0 $$cpid 2>/dev/null; then \
		echo "trace-smoke: coordinator did not converge"; kill $$cpid $$w1 $$w2 2>/dev/null; exit 1; \
	fi; \
	wait $$cpid; rc=$$?; wait $$w1 2>/dev/null; wait $$w2 2>/dev/null; exit $$rc
	cmp .trace-golden.txt .trace-fleet.txt
	test -s .trace-flight.jsonl
	head -1 .trace-flight.jsonl | jq -e '.type == "flight-recorder"' > /dev/null
	grep -q '"kind":"retry"' .trace-flight.jsonl
	grep -q '"kind":"exec"' .trace-flight.jsonl
	jq -e '.traceEvents | length > 0' .trace-chrome.json > /dev/null
	jq -e '[.traceEvents[] | select(.cat=="retry")] | length >= 1' .trace-chrome.json > /dev/null
	jq -e '[.traceEvents[] | select(.cat=="exec") | .args.worker] | length >= 1 and all(. != null and . != "")' \
		.trace-chrome.json > /dev/null
	rm -f .trace-ficompare .trace-fiserve .trace-golden.txt .trace-on.txt .trace-fleet.txt \
		.trace-solo.json .trace-flight.jsonl .trace-chrome.json .trace-chrome.tmp

# Result-warehouse smoke + determinism gate: a cold run with -warehouse
# must render byte-identically to an uncached run while populating the
# store, the warm replay must hit every cell (zero misses in the query,
# warehouse_hit events and no cell_done events in the stream) and still
# render byte-identically — sequentially and under -parallel — and
# corrupting a stored record must degrade to a silent re-execution, not
# a wrong report (mirrors the CI warehouse-smoke job).
warehouse-smoke:
	go build -o .wh-bin ./cmd/ficompare
	./.wh-bin -experiment all -n 200 -benchmarks bzip2m,mcfm -q > .wh-golden.txt
	./.wh-bin -experiment all -n 200 -benchmarks bzip2m,mcfm -q \
		-warehouse .wh-store > .wh-cold.txt
	cmp .wh-golden.txt .wh-cold.txt
	./.wh-bin -experiment all -n 200 -benchmarks bzip2m,mcfm -q \
		-warehouse .wh-store -warehouse-query > .wh-query.txt
	grep -q ' 0 miss of ' .wh-query.txt
	./.wh-bin -experiment all -n 200 -benchmarks bzip2m,mcfm -q \
		-warehouse .wh-store -events .wh-events.jsonl > .wh-warm.txt
	cmp .wh-golden.txt .wh-warm.txt
	grep -q '"type":"warehouse_hit"' .wh-events.jsonl
	! grep -q '"type":"cell_done"' .wh-events.jsonl
	./.wh-bin -experiment all -n 200 -benchmarks bzip2m,mcfm -q \
		-warehouse .wh-store -parallel 4 > .wh-warm-par.txt
	cmp .wh-golden.txt .wh-warm-par.txt
	f="$$(find .wh-store/objects -name '*.json' | head -1)"; \
	test -n "$$f" && printf 'corrupted' > "$$f"
	./.wh-bin -experiment all -n 200 -benchmarks bzip2m,mcfm -q \
		-warehouse .wh-store > .wh-corrupt.txt
	cmp .wh-golden.txt .wh-corrupt.txt
	rm -rf .wh-bin .wh-golden.txt .wh-cold.txt .wh-query.txt .wh-warm.txt \
		.wh-warm-par.txt .wh-corrupt.txt .wh-events.jsonl .wh-store

# Fuzz smoke: each native fuzz target for 30s (mirrors the CI job).
fuzz-smoke:
	go test -run '^$$' -fuzz '^FuzzMiniCParse$$' -fuzztime 30s ./internal/minic
	go test -run '^$$' -fuzz '^FuzzSnapshotRestore$$' -fuzztime 30s ./internal/interp
	go test -run '^$$' -fuzz '^FuzzSnapshotRestore$$' -fuzztime 30s ./internal/machine
	go test -run '^$$' -fuzz '^FuzzCompiledVsInterp$$' -fuzztime 30s ./internal/compile/irc
	go test -run '^$$' -fuzz '^FuzzAdaptiveDecision$$' -fuzztime 30s ./internal/adaptive

# The exact CI pipeline (.github/workflows/ci.yml), runnable locally.
ci:
	go build ./...
	go vet ./...
	@unformatted="$$(gofmt -l .)"; \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi
	go test ./...
	$(MAKE) race
	$(MAKE) smoke
	$(MAKE) resume-smoke
	$(MAKE) replay-determinism
	$(MAKE) compiled-smoke
	$(MAKE) obs-smoke
	$(MAKE) shard-smoke
	$(MAKE) fleet-smoke
	$(MAKE) adaptive-smoke
	$(MAKE) trace-smoke
	$(MAKE) warehouse-smoke
	$(MAKE) fuzz-smoke

# All tables/figures + ablations. HLFI_N controls injections per cell.
# Also times single injection attempts against snapshot replay
# (BENCH_replay.json), against the compiled execution engines
# (BENCH_compiled.json), and fixed-n against adaptive early-stopping
# campaigns (BENCH_adaptive.json). Each emitter writes to a temp file that is
# moved into place only after its gate passes, so a failed run never
# clobbers the previous good BENCH_*.json artifacts.
bench:
	go test -bench=. -benchmem -benchtime=1x
	HLFI_BENCH_REPLAY=BENCH_replay.json.tmp go test -run '^TestWriteReplayBench$$' -count=1 .
	mv BENCH_replay.json.tmp BENCH_replay.json
	HLFI_BENCH_COMPILED=BENCH_compiled.json.tmp go test -run '^TestWriteCompiledBench$$' -count=1 .
	mv BENCH_compiled.json.tmp BENCH_compiled.json
	HLFI_BENCH_ADAPTIVE=BENCH_adaptive.json.tmp go test -run '^TestWriteAdaptiveBench$$' -count=1 .
	mv BENCH_adaptive.json.tmp BENCH_adaptive.json
	@cat BENCH_replay.json BENCH_compiled.json BENCH_adaptive.json

# Paper-scale reproduction (the committed study_n1000.txt).
study:
	go run ./cmd/ficompare -experiment all -n 1000 > study_n1000.txt

# The §VII future-work experiment (the committed calibration_n500.txt).
calibration:
	go run ./cmd/ficompare -experiment calibration -n 500 > calibration_n500.txt

examples:
	go run ./examples/quickstart
	go run ./examples/resilience
	go run ./examples/tracing
	go run ./examples/customir
	go run ./examples/srcmap

cover:
	go test -cover ./internal/...

fmt:
	gofmt -w .

# Convenience targets; everything is plain `go` underneath.

.PHONY: test bench study calibration examples cover fmt race smoke resume-smoke ci

test:
	go build ./... && go vet ./... && go test ./...

# Race coverage for the concurrency-bearing packages (mirrors the CI
# race job).
race:
	go test -race ./internal/core/... ./internal/sched/... ./internal/telemetry/...

# Study-binary smoke + determinism gate: the cell scheduler must produce
# byte-identical tables to the serial path (mirrors the CI smoke job).
smoke:
	go run ./cmd/ficompare -experiment all -n 20 -benchmarks bzip2m,mcfm -q > .smoke-serial.txt
	go run ./cmd/ficompare -experiment all -n 20 -benchmarks bzip2m,mcfm -q -parallel 4 > .smoke-parallel.txt
	cmp .smoke-serial.txt .smoke-parallel.txt
	rm -f .smoke-serial.txt .smoke-parallel.txt

# Kill-and-resume smoke: start a checkpointed study, SIGTERM it
# mid-run, resume from the checkpoint, and byte-compare the resumed
# output against an uninterrupted run (mirrors the CI resume-smoke job).
resume-smoke:
	go build -o .resume-smoke-bin ./cmd/ficompare
	./.resume-smoke-bin -experiment all -n 200 -benchmarks bzip2m,mcfm -q > .resume-full.txt
	./.resume-smoke-bin -experiment all -n 200 -benchmarks bzip2m,mcfm -q \
		-checkpoint .resume-ck.jsonl > /dev/null 2>&1 & \
	pid=$$!; sleep 1; kill -TERM $$pid 2>/dev/null; wait $$pid; true
	test -s .resume-ck.jsonl
	./.resume-smoke-bin -experiment all -n 200 -benchmarks bzip2m,mcfm -q \
		-resume .resume-ck.jsonl > .resume-resumed.txt
	cmp .resume-full.txt .resume-resumed.txt
	rm -f .resume-smoke-bin .resume-full.txt .resume-resumed.txt .resume-ck.jsonl

# The exact CI pipeline (.github/workflows/ci.yml), runnable locally.
ci:
	go build ./...
	go vet ./...
	@unformatted="$$(gofmt -l .)"; \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi
	go test ./...
	$(MAKE) race
	$(MAKE) smoke
	$(MAKE) resume-smoke

# All tables/figures + ablations. HLFI_N controls injections per cell.
bench:
	go test -bench=. -benchmem -benchtime=1x

# Paper-scale reproduction (the committed study_n1000.txt).
study:
	go run ./cmd/ficompare -experiment all -n 1000 > study_n1000.txt

# The §VII future-work experiment (the committed calibration_n500.txt).
calibration:
	go run ./cmd/ficompare -experiment calibration -n 500 > calibration_n500.txt

examples:
	go run ./examples/quickstart
	go run ./examples/resilience
	go run ./examples/tracing
	go run ./examples/customir
	go run ./examples/srcmap

cover:
	go test -cover ./internal/...

fmt:
	gofmt -w .

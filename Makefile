# Convenience targets; everything is plain `go` underneath.

.PHONY: test bench study calibration examples cover fmt

test:
	go build ./... && go vet ./... && go test ./...

# All tables/figures + ablations. HLFI_N controls injections per cell.
bench:
	go test -bench=. -benchmem -benchtime=1x

# Paper-scale reproduction (the committed study_n1000.txt).
study:
	go run ./cmd/ficompare -experiment all -n 1000 > study_n1000.txt

# The §VII future-work experiment (the committed calibration_n500.txt).
calibration:
	go run ./cmd/ficompare -experiment calibration -n 500 > calibration_n500.txt

examples:
	go run ./examples/quickstart
	go run ./examples/resilience
	go run ./examples/tracing
	go run ./examples/customir
	go run ./examples/srcmap

cover:
	go test -cover ./internal/...

fmt:
	gofmt -w .

// Quickstart: compile a small C program for both execution levels,
// inject one bit-flip fault with each injector, and classify the
// outcomes. This is the minimal end-to-end tour of the library.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"hlfi/internal/core"
	"hlfi/internal/fault"
	"hlfi/internal/llfi"
	"hlfi/internal/machine"
	"hlfi/internal/pinfi"
)

const src = `
int squares[32];

int main() {
    for (int i = 0; i < 32; i++) {
        squares[i] = i * i;
    }
    long sum = 0;
    for (int i = 0; i < 32; i++) {
        sum += squares[i];
    }
    print_str("sum=");
    print_long(sum);
    print_str("\n");
    return 0;
}
`

func main() {
	// BuildProgram compiles the source to IR, lowers it to the synthetic
	// x86 ISA, and verifies that both levels produce identical fault-free
	// output.
	prog, err := core.BuildProgram("quickstart", src)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("golden output : %s", prog.GoldenOutput)
	fmt.Printf("dynamic instructions: %d (IR) vs %d (assembly)\n\n", prog.IRInstrs, prog.AsmInstrs)

	// One LLFI injection: flip a random bit of a random dynamic IR
	// instruction result.
	irInj, err := llfi.New(prog.Prep, fault.CatAll)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	res := irInj.InjectOne(rng)
	for res.Outcome == fault.OutcomeNotActivated {
		// Non-activated faults are excluded and redrawn (paper §II-B).
		res = irInj.InjectOne(rng)
	}
	fmt.Printf("LLFI : injected bit %d of %%%d (%s) -> %s\n",
		res.Injection.Bit, res.Injection.Target.ID, res.Injection.Target.Op, res.Outcome)
	if res.Outcome == fault.OutcomeSDC {
		fmt.Printf("       corrupted output: %s", res.Output)
	}

	// One PINFI injection: flip a random bit of a random dynamic machine
	// instruction's destination register.
	asmInj, err := pinfi.New(prog.Asm, prog.Prep.Layout.Image, prog.Prep.Layout.Base, fault.CatAll)
	if err != nil {
		log.Fatal(err)
	}
	res2 := asmInj.InjectOne(rng)
	fmt.Printf("PINFI: %s -> %s\n", machine.DescribeInjection(res2.Injection), res2.Outcome)
	if res2.Outcome == fault.OutcomeSDC {
		fmt.Printf("       corrupted output: %s", res2.Output)
	}

	// A tiny campaign at each level: how often does a random fault
	// corrupt the output silently?
	fmt.Println("\n40-injection campaigns ('all' category):")
	for _, level := range []fault.Level{fault.LevelIR, fault.LevelASM} {
		c := &core.Campaign{Prog: prog, Level: level, Category: fault.CatAll, N: 40, Seed: 7}
		cell, err := c.Run()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-5s crash=%4.0f%%  sdc=%4.0f%%  benign=%4.0f%%\n",
			level, 100*cell.CrashRate().Rate(), 100*cell.SDCRate().Rate(), 100*cell.BenignRate().Rate())
	}
}

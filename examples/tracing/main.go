// Tracing: LLFI's error-propagation analysis (paper §III,
// "Customizability and Analysis"). After injecting a fault, the tracer
// records every IR instruction the corrupted value flows into — through
// operands and through memory — showing how a single bit flip spreads.
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"

	"hlfi/internal/fault"
	"hlfi/internal/interp"
	"hlfi/internal/llfi"
	"hlfi/internal/minic"
)

const src = `
int data[16];

int transform(int x) {
    return x * 7 + 3;
}

int main() {
    for (int i = 0; i < 16; i++) {
        data[i] = transform(i);
    }
    int sum = 0;
    for (int i = 0; i < 16; i++) {
        sum += data[i];
    }
    print_str("sum=");
    print_int(sum);
    print_str("\n");
    return 0;
}
`

func main() {
	mod, err := minic.Compile("tracing", src)
	if err != nil {
		log.Fatal(err)
	}
	prep, err := interp.Prepare(mod)
	if err != nil {
		log.Fatal(err)
	}

	// Inject into an arithmetic instruction mid-run and trace the
	// propagation of the corrupted value.
	cands := llfi.Candidates(prep, fault.CatArith)
	var out bytes.Buffer
	r := interp.NewRunner(prep, &out)
	r.Inject = &interp.Injection{
		Candidates:   cands,
		TriggerIndex: 20, // the 21st dynamic arithmetic instruction
		Rng:          rand.New(rand.NewSource(5)),
	}
	tr := interp.NewTracer(25)
	r.Trace = tr
	if _, err := r.Run(); err != nil {
		fmt.Printf("run crashed: %v\n", err)
	}

	inj := r.Inject
	fmt.Printf("injected: bit %d of %%%d (%s), 0x%x -> 0x%x, activated=%v\n\n",
		inj.Bit, inj.Target.ID, inj.Target.Op, inj.OrigVal, inj.FaultyVal, inj.Activated)
	fmt.Println("propagation trace (first events):")
	for i, ev := range tr.Events {
		fmt.Printf("  %2d. %s\n", i, ev)
	}
	fmt.Printf("\nfinal output: %s", out.String())
}

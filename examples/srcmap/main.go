// Source mapping: the paper's §I motivation for high-level injection is
// that "the mapping from the fault injection results to the code is
// straightforward". This example injects 600 faults into the bzip2m
// benchmark and reports which *source lines* produce silent data
// corruptions and which produce crashes — the per-line susceptibility
// profile a developer would use to place selective protection.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"hlfi/internal/bench"
	"hlfi/internal/fault"
	"hlfi/internal/interp"
	"hlfi/internal/llfi"
	"hlfi/internal/minic"
)

func main() {
	bm, err := bench.ByName("bzip2m")
	if err != nil {
		log.Fatal(err)
	}
	mod, err := minic.Compile(bm.Name, bm.Source)
	if err != nil {
		log.Fatal(err)
	}
	prep, err := interp.Prepare(mod)
	if err != nil {
		log.Fatal(err)
	}
	inj, err := llfi.New(prep, fault.CatAll)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("bzip2m fault-susceptibility by source line (600 activated injections)")
	prof := inj.ProfileByLine(600, rand.New(rand.NewSource(2)))
	fmt.Print(prof.Render(bm.Source, 8))
	fmt.Printf("\n(unattributed: %d injections into compiler-generated code)\n", prof.Unattributed)
}

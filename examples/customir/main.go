// Custom IR: drive the injector from hand-written IR instead of C source.
// The textual IR parser accepts the same format the printer emits, so you
// can craft precise instruction streams — here, a multiply-accumulate
// kernel — and measure how each instruction category responds to faults.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"hlfi/internal/fault"
	"hlfi/internal/interp"
	"hlfi/internal/ir"
	"hlfi/internal/llfi"
)

const src = `
@weights = global [16 x i32] init "0100000002000000030000000400000005000000060000000700000008000000"
@inputs  = global [16 x i32]

define i32 @main() {
entry:
  br label %initcond
initcond:
  %0 = phi i32 [ 0, %entry ], [ %3, %initbody ]
  %1 = icmp slt i32 %0, 16
  br i1 %1, label %initbody, label %maccond
initbody:
  %2 = sext i32 %0 to i64
  %4 = getelementptr [16 x i32]* @inputs, i64 0, i64 %2
  %5 = mul i32 %0, 7
  store i32 %5, i32* %4
  %3 = add i32 %0, 1
  br label %initcond
maccond:
  %6 = phi i32 [ 0, %initcond ], [ %13, %macbody ]
  %7 = phi i32 [ 0, %initcond ], [ %12, %macbody ]
  %8 = icmp slt i32 %6, 16
  br i1 %8, label %macbody, label %done
macbody:
  %9 = sext i32 %6 to i64
  %14 = getelementptr [16 x i32]* @weights, i64 0, i64 %9
  %15 = getelementptr [16 x i32]* @inputs, i64 0, i64 %9
  %10 = load i32, i32* %14
  %16 = load i32, i32* %15
  %11 = mul i32 %10, %16
  %12 = add i32 %7, %11
  %13 = add i32 %6, 1
  br label %maccond
done:
  call void @print_int(i32 %7)
  ret i32 0
}
`

func main() {
	mod, err := ir.Parse(src)
	if err != nil {
		log.Fatal(err)
	}
	prep, err := interp.Prepare(mod)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("hand-written MAC kernel, per-category LLFI campaign (n=200):")
	fmt.Printf("%-12s %10s %8s %8s %8s\n", "category", "dyn.sites", "crash", "sdc", "benign")
	rng := rand.New(rand.NewSource(1))
	for _, cat := range fault.Categories {
		inj, err := llfi.New(prep, cat)
		if err != nil {
			fmt.Printf("%-12s %10s\n", cat, "(none)")
			continue
		}
		counts := map[fault.Outcome]int{}
		activated := 0
		for activated < 200 {
			res := inj.InjectOne(rng)
			if res.Outcome == fault.OutcomeNotActivated {
				continue
			}
			counts[res.Outcome]++
			activated++
		}
		fmt.Printf("%-12s %10d %7.1f%% %7.1f%% %7.1f%%\n",
			cat, inj.DynTotal,
			pct(counts[fault.OutcomeCrash], activated),
			pct(counts[fault.OutcomeSDC], activated),
			pct(counts[fault.OutcomeBenign], activated))
	}
	fmt.Println("\nthe accumulator chain (mul/add) is SDC-prone; the address")
	fmt.Println("chain (sext/getelementptr) is crash-prone — the paper's")
	fmt.Println("category-level story in one synthetic kernel.")
}

func pct(n, total int) float64 { return 100 * float64(n) / float64(total) }

// Resilience comparison: the use case the paper attributes to KULFI and
// to selective-protection work — using a high-level injector to compare
// the error resilience of two program variants. Since the paper shows
// LLFI is accurate for SDCs, the IR-level injector is the right tool for
// exactly this question.
//
// The two variants compute the same dot products; the protected one adds
// an algorithm-level acceptance check (recompute-and-compare on a
// checksum) and corrects silent corruptions by recomputation.
package main

import (
	"fmt"
	"log"

	"hlfi/internal/core"
	"hlfi/internal/fault"
)

const baseline = `
int a[64];
int b[64];

long dot() {
    long s = 0;
    for (int i = 0; i < 64; i++) s += (long)(a[i] * b[i]);
    return s;
}

int main() {
    for (int i = 0; i < 64; i++) {
        a[i] = i * 3 + 1;
        b[i] = 97 - i;
    }
    long r = 0;
    for (int round = 0; round < 24; round++) {
        r += dot();
    }
    print_str("dot="); print_long(r); print_str("\n");
    return 0;
}
`

const protected = `
int a[64];
int b[64];

long dot() {
    long s = 0;
    for (int i = 0; i < 64; i++) s += (long)(a[i] * b[i]);
    return s;
}

/* Recompute-and-compare: run the kernel twice; on mismatch, a third run
 * arbitrates (time redundancy against transient faults). */
long dotChecked() {
    long r1 = dot();
    long r2 = dot();
    if (r1 == r2) return r1;
    long r3 = dot();
    if (r3 == r1) return r1;
    return r2;
}

int main() {
    for (int i = 0; i < 64; i++) {
        a[i] = i * 3 + 1;
        b[i] = 97 - i;
    }
    long r = 0;
    for (int round = 0; round < 12; round++) {
        r += dotChecked();
    }
    r *= 2;
    print_str("dot="); print_long(r); print_str("\n");
    return 0;
}
`

func main() {
	const n = 250
	fmt.Println("SDC resilience comparison via IR-level (LLFI) injection")
	fmt.Printf("%-12s %8s %8s %8s %8s\n", "variant", "sdc", "crash", "benign", "hang")
	for _, v := range []struct {
		name string
		src  string
	}{
		{"baseline", baseline},
		{"protected", protected},
	} {
		prog, err := core.BuildProgram(v.name, v.src)
		if err != nil {
			log.Fatal(err)
		}
		c := &core.Campaign{Prog: prog, Level: fault.LevelIR, Category: fault.CatAll, N: n, Seed: 11}
		cell, err := c.Run()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s %7.1f%% %7.1f%% %7.1f%% %7.1f%%\n", v.name,
			100*cell.SDCRate().Rate(), 100*cell.CrashRate().Rate(),
			100*cell.BenignRate().Rate(), 100*cell.HangRate().Rate())
	}
	fmt.Println("\nTime redundancy converts most silent data corruptions into")
	fmt.Println("benign outcomes; crashes are unaffected (they need recovery,")
	fmt.Println("not detection) — which is why the paper evaluates SDC and")
	fmt.Println("crash fidelity separately.")
}

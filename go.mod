module hlfi

go 1.22

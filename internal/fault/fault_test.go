package fault

import "testing"

func TestParseCategory(t *testing.T) {
	for _, c := range Categories {
		got, err := ParseCategory(c.String())
		if err != nil || got != c {
			t.Errorf("ParseCategory(%q) = %v, %v", c.String(), got, err)
		}
	}
	if _, err := ParseCategory("bogus"); err == nil {
		t.Error("ParseCategory(bogus) should fail")
	}
}

func TestStringers(t *testing.T) {
	if CatAll.String() != "all" || CatArith.String() != "arithmetic" ||
		CatCast.String() != "cast" || CatCmp.String() != "cmp" || CatLoad.String() != "load" {
		t.Error("category names drifted from the paper's Table III")
	}
	for _, o := range []Outcome{OutcomeBenign, OutcomeSDC, OutcomeCrash, OutcomeHang, OutcomeNotActivated} {
		if o.String() == "" {
			t.Errorf("outcome %d has no name", o)
		}
	}
	if LevelIR.String() != "LLFI" || LevelASM.String() != "PINFI" {
		t.Error("level names must match the paper's tool names")
	}
}

func TestCategoriesOrder(t *testing.T) {
	if len(Categories) != 5 || Categories[0] != CatAll {
		t.Fatalf("Categories = %v", Categories)
	}
}

// Package fault defines the shared fault model of the study (paper §II-A):
// transient single-bit flips in the result of one dynamic instruction,
// classified into the instruction categories of Table III and the outcome
// taxonomy of §V.
package fault

import "fmt"

// Category is an injection-target instruction category (paper Table III).
type Category int

// Categories.
const (
	CatAll Category = iota + 1
	CatArith
	CatCast
	CatCmp
	CatLoad
)

// Categories lists all categories in the paper's presentation order.
var Categories = []Category{CatAll, CatArith, CatCast, CatCmp, CatLoad}

func (c Category) String() string {
	switch c {
	case CatAll:
		return "all"
	case CatArith:
		return "arithmetic"
	case CatCast:
		return "cast"
	case CatCmp:
		return "cmp"
	case CatLoad:
		return "load"
	default:
		return fmt.Sprintf("category(%d)", int(c))
	}
}

// ParseCategory converts a name to a Category.
func ParseCategory(s string) (Category, error) {
	for _, c := range Categories {
		if c.String() == s {
			return c, nil
		}
	}
	return 0, fmt.Errorf("unknown category %q (want all|arithmetic|cast|cmp|load)", s)
}

// Outcome classifies one injection run (paper §V, "Failure
// categorization").
type Outcome int

// Outcomes. NotActivated runs are excluded from percentages and redrawn,
// per the paper's activated-faults-only accounting.
const (
	OutcomeBenign Outcome = iota + 1
	OutcomeSDC
	OutcomeCrash
	OutcomeHang
	OutcomeNotActivated
)

func (o Outcome) String() string {
	switch o {
	case OutcomeBenign:
		return "benign"
	case OutcomeSDC:
		return "sdc"
	case OutcomeCrash:
		return "crash"
	case OutcomeHang:
		return "hang"
	case OutcomeNotActivated:
		return "not-activated"
	default:
		return fmt.Sprintf("outcome(%d)", int(o))
	}
}

// Level identifies the injection level.
type Level int

// Levels: LLFI injects at the IR level, PINFI at the assembly level.
const (
	LevelIR Level = iota + 1
	LevelASM
)

// Levels lists both injection levels in presentation order.
var Levels = []Level{LevelIR, LevelASM}

// ParseLevel converts a level name (as produced by Level.String) back to
// a Level — the checkpoint codec round-trips levels as strings so the
// files stay human-readable.
func ParseLevel(s string) (Level, error) {
	for _, l := range Levels {
		if l.String() == s {
			return l, nil
		}
	}
	return 0, fmt.Errorf("unknown level %q (want LLFI|PINFI)", s)
}

func (l Level) String() string {
	switch l {
	case LevelIR:
		return "LLFI"
	case LevelASM:
		return "PINFI"
	default:
		return fmt.Sprintf("level(%d)", int(l))
	}
}

package warehouse

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"hlfi/internal/core"
	"hlfi/internal/fault"
)

const tinySrc = `
int main() {
    int s = 0;
    for (int i = 0; i < 8; i++) s += i * i;
    print_int(s);
    print_str("\n");
    return 0;
}
`

const otherSrc = `
int main() {
    int s = 1;
    for (int i = 1; i < 6; i++) s *= i;
    print_int(s);
    print_str("\n");
    return 0;
}
`

func testCache(t *testing.T, srcs ...string) (*StudyCache, []*core.Program) {
	t.Helper()
	if len(srcs) == 0 {
		srcs = []string{tinySrc}
	}
	var progs []*core.Program
	for i, src := range srcs {
		name := "tiny.c"
		if i > 0 {
			name = "other.c"
		}
		p, err := core.BuildProgram(name, src)
		if err != nil {
			t.Fatal(err)
		}
		progs = append(progs, p)
	}
	s, err := Open(filepath.Join(t.TempDir(), "wh"))
	if err != nil {
		t.Fatal(err)
	}
	shape := core.CheckpointShape{N: 10, Seed: 5, Compiled: "on", Adaptive: "off"}
	return s.ForStudy(shape, progs), progs
}

func sampleResult() *core.CellResult {
	return &core.CellResult{
		Prog: "tiny.c", Level: fault.LevelIR, Category: fault.CatAll,
		Benign: 4, SDC: 3, Crash: 2, Hang: 1,
		NotActivated: 7, Attempts: 17, SimFaults: 1, DynCandidates: 99,
	}
}

// TestRoundTrip: a stored cell (and a stored deterministic skip) read
// back exactly, and Probe classifies each without touching counters.
func TestRoundTrip(t *testing.T) {
	c, _ := testCache(t)
	key := core.CellKey{Prog: "tiny.c", Level: fault.LevelIR, Category: fault.CatAll}
	skipKey := core.CellKey{Prog: "tiny.c", Level: fault.LevelASM, Category: fault.CatLoad}

	if _, _, ok := c.Lookup(key, 10, 10); ok {
		t.Fatal("empty warehouse reported a hit")
	}

	want := sampleResult()
	c.StoreCell(key, 10, 10, want)
	c.StoreSkip(skipKey, 10, 10, core.CheckpointSkip{Kind: core.SkipNoCandidates, Err: "no candidates"})
	if err := c.Store().Err(); err != nil {
		t.Fatalf("store failed: %v", err)
	}

	res, skip, ok := c.Lookup(key, 10, 10)
	if !ok || skip != nil || res == nil {
		t.Fatalf("Lookup = (%v, %v, %v), want a result hit", res, skip, ok)
	}
	if *res != *want {
		t.Errorf("result does not round-trip:\nwant %+v\ngot  %+v", want, res)
	}
	res, skip, ok = c.Lookup(skipKey, 10, 10)
	if !ok || res != nil || skip == nil || skip.Kind != core.SkipNoCandidates || skip.Err != "no candidates" {
		t.Fatalf("skip Lookup = (%v, %+v, %v), want the cached skip", res, skip, ok)
	}

	if got := c.Probe(key, 10, 10); got != StatusHit {
		t.Errorf("Probe(cell) = %q, want %q", got, StatusHit)
	}
	if got := c.Probe(skipKey, 10, 10); got != StatusSkip {
		t.Errorf("Probe(skip) = %q, want %q", got, StatusSkip)
	}
	if got := c.Probe(core.CellKey{Prog: "tiny.c", Level: fault.LevelIR, Category: fault.CatArith}, 10, 10); got != StatusMiss {
		t.Errorf("Probe(absent) = %q, want %q", got, StatusMiss)
	}
}

// TestAdaptiveRoundTrip: the adaptive fields (target, convergence, the
// round-1 sub-record of an extended cell) survive the store.
func TestAdaptiveRoundTrip(t *testing.T) {
	c, _ := testCache(t)
	key := core.CellKey{Prog: "tiny.c", Level: fault.LevelIR, Category: fault.CatAll}
	want := sampleResult()
	want.Adaptive.Target = 14
	want.Adaptive.Converged = true
	want.Adaptive.Extended = true
	want.Adaptive.Round1 = core.AdaptiveCounts{Benign: 2, SDC: 1, Crash: 1, Hang: 0, NotActivated: 3, Attempts: 7}
	c.StoreCell(key, 14, 10, want)

	res, _, ok := c.Lookup(key, 14, 10)
	if !ok || res == nil {
		t.Fatal("extended record did not hit at its (target, base) identity")
	}
	if *res != *want {
		t.Errorf("adaptive result does not round-trip:\nwant %+v\ngot  %+v", want, res)
	}
	// The same cell at the base identity is a different record.
	if _, _, ok := c.Lookup(key, 10, 10); ok {
		t.Error("extension record leaked into the base (10, 10) identity")
	}
}

// TestKeyIdentity: every input that can change a cell's outcome changes
// the key; pure scheduling inputs (shard spec, replay signature) do not.
func TestKeyIdentity(t *testing.T) {
	_, progs := testCache(t, tinySrc, otherSrc)
	s, err := Open(filepath.Join(t.TempDir(), "wh"))
	if err != nil {
		t.Fatal(err)
	}
	base := core.CheckpointShape{N: 10, Seed: 5, Compiled: "on", Adaptive: "off"}
	key := core.CellKey{Prog: "tiny.c", Level: fault.LevelIR, Category: fault.CatAll}
	kh := func(shape core.CheckpointShape, k core.CellKey, target, bn int) string {
		h, ok := s.ForStudy(shape, progs).KeyHex(k, target, bn)
		if !ok {
			t.Fatalf("no key for %v", k)
		}
		return h
	}

	ref := kh(base, key, 10, 10)
	distinct := map[string]string{
		"n":        kh(core.CheckpointShape{N: 20, Seed: 5, Compiled: "on", Adaptive: "off"}, key, 20, 20),
		"seed":     kh(core.CheckpointShape{N: 10, Seed: 6, Compiled: "on", Adaptive: "off"}, key, 10, 10),
		"compiled": kh(core.CheckpointShape{N: 10, Seed: 5, Compiled: "off", Adaptive: "off"}, key, 10, 10),
		"adaptive": kh(core.CheckpointShape{N: 10, Seed: 5, Compiled: "on", Adaptive: "eps=0.05,min=5,check=5"}, key, 10, 10),
		"level":    kh(base, core.CellKey{Prog: "tiny.c", Level: fault.LevelASM, Category: fault.CatAll}, 10, 10),
		"category": kh(base, core.CellKey{Prog: "tiny.c", Level: fault.LevelIR, Category: fault.CatArith}, 10, 10),
		"program":  kh(base, core.CellKey{Prog: "other.c", Level: fault.LevelIR, Category: fault.CatAll}, 10, 10),
		"target":   kh(base, key, 14, 10),
	}
	for what, h := range distinct {
		if h == ref {
			t.Errorf("changing %s did not change the key", what)
		}
	}

	sharded := base
	sharded.Shard = "1/3"
	if kh(sharded, key, 10, 10) != ref {
		t.Error("shard spec fragments the key space (cells are relocatable)")
	}
	replayed := base
	replayed.Replay = "stride=4096;budget=268435456"
	if kh(replayed, key, 10, 10) != ref {
		t.Error("replay signature fragments the key space (pure execution policy)")
	}
	perAttempt := s.ForStudy(base, progs)
	perAttempt.SetPerAttemptSeeding()
	if h, _ := perAttempt.KeyHex(key, 10, 10); h == ref {
		t.Error("per-attempt seeding shares keys with the sequential stream (different sample)")
	}

	// The single-cell CLIs stream straight from their -seed flag; the key
	// is the effective campaign seed, so a raw-seed cache matches a study
	// cache exactly when the raw seed IS the study's derived cell seed —
	// the one case where the two samples are byte-identical.
	raw := s.ForStudy(base, progs)
	raw.SetRawCampaignSeed()
	if h, _ := raw.KeyHex(key, 10, 10); h == ref {
		t.Error("raw seed 5 shares a key with the study's derived cell seed (different sample)")
	}
	derived := core.CheckpointShape{N: 10, Seed: core.CellSeed(5, key), Compiled: "on", Adaptive: "off"}
	rawDerived := s.ForStudy(derived, progs)
	rawDerived.SetRawCampaignSeed()
	if h, _ := rawDerived.KeyHex(key, 10, 10); h != ref {
		t.Error("a single-cell run on the derived cell seed does not share the study's record (same sample)")
	}
}

// TestNonDeterministicSkipsNotCached: deadline and fleet skips describe
// one run's scheduling, not the cell — never stored, and a record that
// somehow carries such a kind is never served.
func TestNonDeterministicSkipsNotCached(t *testing.T) {
	c, _ := testCache(t)
	key := core.CellKey{Prog: "tiny.c", Level: fault.LevelIR, Category: fault.CatAll}
	c.StoreSkip(key, 10, 10, core.CheckpointSkip{Kind: core.SkipDeadline, Err: "cell deadline exceeded"})
	c.StoreSkip(key, 10, 10, core.CheckpointSkip{Kind: core.SkipFleet, Err: "retry budget exhausted"})
	if got := c.Probe(key, 10, 10); got != StatusMiss {
		t.Errorf("non-deterministic skip was cached: Probe = %q", got)
	}
}

// TestCorruptionMatrix is the satellite-4 regression: every way a record
// can rot on disk — truncation, a flipped bit, an empty or garbage file,
// a record filed under another cell's key — must degrade to a miss (the
// cell re-executes) and never panic, error, or serve a stale answer. A
// fresh store over the corrupt path must repair it.
func TestCorruptionMatrix(t *testing.T) {
	keyA := core.CellKey{Prog: "tiny.c", Level: fault.LevelIR, Category: fault.CatAll}
	keyB := core.CellKey{Prog: "tiny.c", Level: fault.LevelASM, Category: fault.CatAll}

	corruptions := []struct {
		name    string
		corrupt func(t *testing.T, c *StudyCache, pathA, pathB string)
	}{
		{"truncated record", func(t *testing.T, c *StudyCache, pathA, _ string) {
			data, err := os.ReadFile(pathA)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(pathA, data[:len(data)/2], 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"zero-byte record", func(t *testing.T, c *StudyCache, pathA, _ string) {
			if err := os.WriteFile(pathA, nil, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"bit-flipped payload", func(t *testing.T, c *StudyCache, pathA, _ string) {
			data, err := os.ReadFile(pathA)
			if err != nil {
				t.Fatal(err)
			}
			// Flip a digit inside the stored counts, past the envelope
			// framing, so the JSON stays well-formed and only the checksum
			// can catch it.
			i := strings.Index(string(data), `\"attempts\":`)
			if i < 0 {
				if i = strings.Index(string(data), `"attempts":`); i < 0 {
					t.Fatal("no attempts field to corrupt")
				}
			}
			for ; i < len(data); i++ {
				if data[i] >= '0' && data[i] <= '9' {
					data[i] = '0' + ('9'-data[i])%10
					break
				}
			}
			if err := os.WriteFile(pathA, data, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"garbage JSON", func(t *testing.T, c *StudyCache, pathA, _ string) {
			if err := os.WriteFile(pathA, []byte("{not json"), 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"wrong-key collision", func(t *testing.T, c *StudyCache, pathA, pathB string) {
			// File B's (valid, checksummed) record under A's key: the
			// restated key inside the payload must reject it.
			data, err := os.ReadFile(pathB)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(pathA, data, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
	}

	for _, tc := range corruptions {
		t.Run(tc.name, func(t *testing.T) {
			c, _ := testCache(t)
			want := sampleResult()
			c.StoreCell(keyA, 10, 10, want)
			c.StoreCell(keyB, 10, 10, sampleResult())
			khA, _ := c.KeyHex(keyA, 10, 10)
			khB, _ := c.KeyHex(keyB, 10, 10)
			pathA, pathB := c.Store().objectPath(khA), c.Store().objectPath(khB)

			tc.corrupt(t, c, pathA, pathB)

			if res, skip, ok := c.Lookup(keyA, 10, 10); ok {
				t.Fatalf("corrupt record served as an answer: (%+v, %+v)", res, skip)
			}
			if got := c.Probe(keyA, 10, 10); got != StatusMiss {
				t.Fatalf("corrupt record probes as %q, want %q", got, StatusMiss)
			}
			// The re-executed cell stores over the corpse and hits again.
			c.StoreCell(keyA, 10, 10, want)
			res, _, ok := c.Lookup(keyA, 10, 10)
			if !ok || res == nil || *res != *want {
				t.Fatalf("re-store over a corrupt record did not repair it: (%+v, %v)", res, ok)
			}
		})
	}
}

// TestConcurrentReaderDuringStore: readers racing a writer on the same
// key observe either a miss or the complete record — never a torn one
// (temp-file+rename) and never a panic.
func TestConcurrentReaderDuringStore(t *testing.T) {
	c, _ := testCache(t)
	key := core.CellKey{Prog: "tiny.c", Level: fault.LevelIR, Category: fault.CatAll}
	want := sampleResult()

	const readers = 4
	stop := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan string, readers)
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, skip, ok := c.Lookup(key, 10, 10)
				if !ok {
					continue // miss: the writer has not renamed yet
				}
				if skip != nil || res == nil || *res != *want {
					select {
					case errs <- "reader observed a record that is neither a miss nor the stored result":
					default:
					}
					return
				}
			}
		}()
	}
	for i := 0; i < 50; i++ {
		c.StoreCell(key, 10, 10, want)
	}
	close(stop)
	wg.Wait()
	select {
	case msg := <-errs:
		t.Fatal(msg)
	default:
	}
	if err := c.Store().Err(); err != nil {
		t.Fatalf("store failed under concurrency: %v", err)
	}
}

// TestStickyStoreFailure: the first write failure disables further
// stores (an accelerator must not turn into a crash loop) while lookups
// keep serving what was already persisted.
func TestStickyStoreFailure(t *testing.T) {
	c, _ := testCache(t)
	keyA := core.CellKey{Prog: "tiny.c", Level: fault.LevelIR, Category: fault.CatAll}
	keyB := core.CellKey{Prog: "tiny.c", Level: fault.LevelASM, Category: fault.CatAll}
	want := sampleResult()
	c.StoreCell(keyA, 10, 10, want)

	// Replace the objects tree with a regular file: every further write
	// fails at MkdirAll with ENOTDIR, even running as root (permission
	// bits would not stop a root test).
	objects := filepath.Join(c.Store().Dir(), "objects")
	if err := os.RemoveAll(objects); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(objects, []byte("not a directory"), 0o644); err != nil {
		t.Fatal(err)
	}

	c.StoreCell(keyB, 10, 10, want)
	if err := c.Store().Err(); err == nil {
		t.Fatal("write onto a broken store did not go sticky")
	}
	// Sticky means silent drops, not retries: another store is a no-op.
	c.StoreCell(keyB, 10, 10, want)

	// Reads degrade to misses (the tree is gone), never errors.
	if _, _, ok := c.Lookup(keyA, 10, 10); ok {
		t.Error("lookup hit through a destroyed objects tree")
	}
}

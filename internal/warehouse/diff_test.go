package warehouse

import (
	"path/filepath"
	"sync"
	"testing"

	"hlfi/internal/adaptive"
	"hlfi/internal/core"
	"hlfi/internal/fault"
	"hlfi/internal/obs"
	"hlfi/internal/telemetry"
)

// capture is a minimal telemetry.Recorder for counting event types.
type capture struct {
	mu     sync.Mutex
	events []telemetry.Event
}

func (c *capture) Record(e telemetry.Event) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.events = append(c.events, e)
}

func (c *capture) count(typ string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, e := range c.events {
		if e.Type == typ {
			n++
		}
	}
	return n
}

// diffStudy runs the tiny two-category study against the real store.
func diffStudy(t *testing.T, cache *StudyCache, mutate func(*core.StudyConfig)) *core.Study {
	t.Helper()
	p, err := core.BuildProgram("tiny.c", tinySrc)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.StudyConfig{
		Programs:   []*core.Program{p},
		N:          10,
		Seed:       5,
		Categories: []fault.Category{fault.CatAll, fault.CatArith},
	}
	if mutate != nil {
		mutate(&cfg)
	}
	if cache != nil {
		cfg.Warehouse = cache
	}
	st, err := core.RunStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func openDiffCache(t *testing.T, adaptiveSig string) *StudyCache {
	t.Helper()
	p, err := core.BuildProgram("tiny.c", tinySrc)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Open(filepath.Join(t.TempDir(), "wh"))
	if err != nil {
		t.Fatal(err)
	}
	s.Hits, s.Misses, s.Stores = &obs.Counter{}, &obs.Counter{}, &obs.Counter{}
	if adaptiveSig == "" {
		adaptiveSig = "off"
	}
	return s.ForStudy(core.CheckpointShape{
		N: 10, Seed: 5, Compiled: "on", Adaptive: adaptiveSig,
	}, []*core.Program{p})
}

// TestWarehouseDifferentialOracle is the end-to-end oracle against the
// real store: an uncached run, a cold populating run, and a warm run
// must produce identical cells, and the warm run must resolve every
// cell from disk — zero misses, zero executions — sequentially and on
// the parallel scheduler.
func TestWarehouseDifferentialOracle(t *testing.T) {
	plain := diffStudy(t, nil, nil)
	cache := openDiffCache(t, "")
	store := cache.Store()

	cold := diffStudy(t, cache, nil)
	if got := store.Misses.Value(); got != uint64(len(cold.Cells)) {
		t.Errorf("cold run: %d misses, want %d", got, len(cold.Cells))
	}
	if got := store.Stores.Value(); got != uint64(len(cold.Cells)) {
		t.Errorf("cold run: %d stores, want %d", got, len(cold.Cells))
	}
	for key, want := range plain.Cells {
		if got := cold.Cells[key]; got == nil || *got != *want {
			t.Errorf("cell %v differs with the warehouse attached:\nplain %+v\ncold  %+v", key, want, got)
		}
	}

	for _, parallel := range []int{1, 4} {
		var cap capture
		hits0, misses0 := store.Hits.Value(), store.Misses.Value()
		warm := diffStudy(t, cache, func(cfg *core.StudyConfig) {
			cfg.Parallel = parallel
			cfg.Events = &cap
		})
		if got := store.Misses.Value() - misses0; got != 0 {
			t.Errorf("warm run (parallel=%d): %d misses, want 0", parallel, got)
		}
		if got := store.Hits.Value() - hits0; got != uint64(len(cold.Cells)) {
			t.Errorf("warm run (parallel=%d): %d hits, want %d", parallel, got, len(cold.Cells))
		}
		if got := cap.count(telemetry.EventCellDone); got != 0 {
			t.Errorf("warm run (parallel=%d): %d cell_done events, want 0 executions", parallel, got)
		}
		if got := cap.count(telemetry.EventWarehouseHit); got != len(cold.Cells) {
			t.Errorf("warm run (parallel=%d): %d warehouse_hit events, want %d", parallel, got, len(cold.Cells))
		}
		for key, want := range cold.Cells {
			if got := warm.Cells[key]; got == nil || *got != *want {
				t.Errorf("cell %v differs on the warm run (parallel=%d):\ncold %+v\nwarm %+v", key, parallel, want, got)
			}
		}
	}
}

// TestWarehouseDifferentialOracleAdaptive: with adaptive early stopping,
// round-1 records live at (N, N) and extensions at (target, N); a warm
// run recomputes the plan from the cached round-1 states and resolves
// the extensions from the warehouse too — still zero misses.
func TestWarehouseDifferentialOracleAdaptive(t *testing.T) {
	acfg, err := adaptive.Parse("eps=0.05,min=5,check=5")
	if err != nil {
		t.Fatal(err)
	}
	withAdaptive := func(cfg *core.StudyConfig) { cfg.Adaptive = acfg }

	cache := openDiffCache(t, acfg.Signature())
	store := cache.Store()
	cold := diffStudy(t, cache, withAdaptive)

	var cap capture
	misses0 := store.Misses.Value()
	warm := diffStudy(t, cache, func(cfg *core.StudyConfig) {
		withAdaptive(cfg)
		cfg.Events = &cap
	})
	if got := store.Misses.Value() - misses0; got != 0 {
		t.Errorf("adaptive warm run: %d misses, want 0", got)
	}
	if got := cap.count(telemetry.EventCellDone); got != 0 {
		t.Errorf("adaptive warm run: %d cell_done events, want 0 executions", got)
	}
	for key, want := range cold.Cells {
		if got := warm.Cells[key]; got == nil || *got != *want {
			t.Errorf("cell %v differs on the adaptive warm run:\ncold %+v\nwarm %+v", key, want, got)
		}
	}
}

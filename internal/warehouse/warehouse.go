// Package warehouse implements the content-addressed result store of
// ROADMAP item 5: a durable cache of campaign cell results keyed by the
// canonical hash of everything that determines a cell's outcome — the
// program's IR and machine code, the fault model coordinates (level,
// category), the study shape a checkpoint header already pins (n, seed,
// compiled/adaptive signatures), the attempt-seeding discipline, and
// the cell's derived seed and activated-injection target. Two campaigns
// that would provably produce the same record share one warehouse
// entry; any input change produces a different key, so a lookup can
// never return a result the current configuration would not recompute.
//
// The key derivation deliberately reuses core.CheckpointShape instead of
// inventing a second study identity. The shard spec is excluded: cells
// are relocatable (CellSeed is a pure function of cell identity), so
// shard layout is scheduling, not identity. The replay signature is
// excluded too: snapshot fast-forward is proven byte-identical by its
// differential oracle and its signature encodes cache-sizing knobs, so
// it is pure execution policy. Other policies that cannot change a
// successfully completed record — deadlines, the sim-fault containment
// limit, attempt tracing — are likewise excluded; records that exist
// only under a particular policy (deadline skips, hard failures) are
// never stored. Per-attempt seeding (cell workers > 1) draws a
// deterministic but different sample than the sequential stream, so the
// discipline is part of the key.
//
// Storage is fail-stop in the house style: one fsynced JSON record per
// cell under a two-level hash-prefix directory, written to a temp file
// and renamed into place, carrying a checksum over its payload bytes.
// Every corruption mode — truncation, bit flips, a wrong-key collision,
// a reader racing a writer — is detected and degrades to a miss (the
// cell re-executes); a store-side write error disables further stores
// (sticky, like CheckpointWriter) but never aborts the study: the
// warehouse is an accelerator, not the durability path.
package warehouse

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"hlfi/internal/core"
	"hlfi/internal/obs"
)

// recordVersion guards both the key derivation and the on-disk record
// schema: bumping it invalidates every existing entry.
const recordVersion = 1

// Store is an open warehouse directory. Safe for concurrent use; safe
// to share between unrelated studies (keys are self-describing).
type Store struct {
	dir string

	mu   sync.Mutex
	werr error // sticky first store failure: later stores are dropped

	// Optional metric hooks (nil-safe): lookup hits and misses, and
	// completed stores. Wired by the CLIs to the hlfi_warehouse_*_total
	// counters.
	Hits   *obs.Counter
	Misses *obs.Counter
	Stores *obs.Counter
}

// Open opens (creating if needed) a warehouse directory.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(filepath.Join(dir, "objects"), 0o755); err != nil {
		return nil, fmt.Errorf("warehouse %s: %w", dir, err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the warehouse root directory.
func (s *Store) Dir() string { return s.dir }

// Err returns the sticky store-side failure, if any: the first write
// error after which the warehouse stopped persisting new records (reads
// continue). Callers surface it as a warning, never a study failure.
func (s *Store) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.werr
}

func (s *Store) disable(err error) {
	s.mu.Lock()
	if s.werr == nil {
		s.werr = err
	}
	s.mu.Unlock()
}

func (s *Store) disabled() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.werr != nil
}

// objectPath maps a key hash to its record file: a two-level hash-prefix
// fan-out keeps directory sizes bounded on large stores.
func (s *Store) objectPath(kh string) string {
	return filepath.Join(s.dir, "objects", kh[:2], kh[2:4], kh+".json")
}

// envelope is the on-disk record frame: the payload's bytes, verbatim,
// plus a SHA-256 over exactly those bytes. Keeping the payload as raw
// JSON makes the checksum byte-exact (no re-marshal ambiguity).
type envelope struct {
	Sum     string          `json:"sum"`
	Payload json.RawMessage `json:"payload"`
}

// payload is one cell record. It restates the full key hash and the
// cell identity so a collision (a record filed under a key it was not
// written for — bug, tamper, or copy mistake) is detected and treated
// as a miss instead of served as an answer.
type payload struct {
	V         int    `json:"v"`
	Key       string `json:"key"`
	Type      string `json:"type"` // "cell" | "skip"
	Benchmark string `json:"benchmark"`
	Level     string `json:"level"`
	Category  string `json:"category"`
	Target    int    `json:"target"`
	Base      int    `json:"base"`

	Result *resultRecord `json:"result,omitempty"` // type "cell"

	Kind string `json:"kind,omitempty"` // type "skip"
	Err  string `json:"err,omitempty"`
}

// resultRecord mirrors the checkpoint's cell payload (stable lower-case
// JSON, adaptive fields only when present).
type resultRecord struct {
	Benign        int    `json:"benign"`
	SDC           int    `json:"sdc"`
	Crash         int    `json:"crash"`
	Hang          int    `json:"hang"`
	NotActivated  int    `json:"notActivated"`
	Attempts      int    `json:"attempts"`
	SimFaults     int    `json:"simFaults,omitempty"`
	DynCandidates uint64 `json:"dynCandidates"`

	AdaptiveTarget int           `json:"target,omitempty"`
	Converged      bool          `json:"converged,omitempty"`
	Round1         *round1Record `json:"round1,omitempty"`
}

type round1Record struct {
	Benign       int `json:"benign"`
	SDC          int `json:"sdc"`
	Crash        int `json:"crash"`
	Hang         int `json:"hang"`
	NotActivated int `json:"notActivated"`
	Attempts     int `json:"attempts"`
	SimFaults    int `json:"simFaults,omitempty"`
}

// read loads and fully validates one record. Any failure — missing
// file, torn or truncated JSON, checksum mismatch, version or key
// mismatch — returns ok=false: a miss, never an error.
func (s *Store) read(kh string) (*payload, bool) {
	data, err := os.ReadFile(s.objectPath(kh))
	if err != nil {
		return nil, false
	}
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, false
	}
	sum := sha256.Sum256(env.Payload)
	if env.Sum != hex.EncodeToString(sum[:]) {
		return nil, false
	}
	var p payload
	if err := json.Unmarshal(env.Payload, &p); err != nil {
		return nil, false
	}
	if p.V != recordVersion || p.Key != kh {
		return nil, false
	}
	return &p, true
}

// write persists one record with temp-file+rename atomicity and a fsync
// before the rename, so a concurrent reader only ever observes either
// no file or a complete record, and a crash mid-store leaves at most an
// orphaned temp file (never a torn record under the final name). The
// first failure goes sticky: the warehouse stops storing, keeps
// serving lookups, and the study proceeds unharmed.
func (s *Store) write(kh string, p *payload) {
	if s.disabled() {
		return
	}
	pb, err := json.Marshal(p)
	if err != nil {
		s.disable(err)
		return
	}
	sum := sha256.Sum256(pb)
	data, err := json.Marshal(envelope{Sum: hex.EncodeToString(sum[:]), Payload: pb})
	if err != nil {
		s.disable(err)
		return
	}
	data = append(data, '\n')
	if err := writeAtomic(s.objectPath(kh), data); err != nil {
		s.disable(err)
		return
	}
	s.Stores.Inc()
}

func writeAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	// Sync the directory so the rename itself survives a crash.
	if d, derr := os.Open(dir); derr == nil {
		_ = d.Sync()
		d.Close()
	}
	return nil
}

// deterministicSkip reports whether a skip kind is a pure function of
// the cell's inputs and therefore cacheable. Deadline and fleet skips
// are execution accidents — a faster machine would have completed the
// cell — so they are neither stored nor served.
func deterministicSkip(kind string) bool {
	return kind == core.SkipNoCandidates || kind == core.SkipNotActivated
}

// StudyCache binds a Store to one study's shape and program set,
// implementing core.CellStore. Program content digests are computed
// once here, so per-cell key derivation on the hot path is a short
// hash over precomputed material.
type StudyCache struct {
	store   *Store
	shape   core.CheckpointShape
	seeding string
	rawSeed bool
	progs   map[string]string // program name -> content digest
}

// ForStudy derives the per-study key context. The shard spec and the
// replay signature are dropped from the shape (cells are relocatable
// across shard layouts; replay is pure execution policy) and the
// compiled/adaptive signatures are normalized exactly like checkpoint
// headers, so a warehouse shared by sharded, fleet, and single-process
// runs of the same study resolves to the same keys.
func (s *Store) ForStudy(shape core.CheckpointShape, programs []*core.Program) *StudyCache {
	shape.Shard = ""
	shape.Replay = ""
	shape.Compiled = normalizeSig(shape.Compiled)
	shape.Adaptive = normalizeSig(shape.Adaptive)
	progs := make(map[string]string, len(programs))
	for _, p := range programs {
		progs[p.Name] = programDigest(p)
	}
	return &StudyCache{store: s, shape: shape, seeding: "sequential", progs: progs}
}

// SetPerAttemptSeeding marks the study as using per-attempt seeding
// (cell workers > 1), which draws a deterministic but different sample
// than the sequential single-worker stream — a different outcome, so a
// different key space.
func (c *StudyCache) SetPerAttemptSeeding() { c.seeding = "per-attempt" }

// SetRawCampaignSeed marks the cache as keying on shape.Seed directly
// as the campaign seed. The study scheduler derives each cell's seed
// via core.CellSeed(studySeed, key); the single-cell CLIs (llfi-run,
// pinfi-run) run their one campaign straight on the -seed flag. The key
// hashes the effective campaign seed, so the two entry points share a
// record exactly when they truly ran the same sample — and never serve
// each other a different one.
func (c *StudyCache) SetRawCampaignSeed() { c.rawSeed = true }

// Store returns the underlying warehouse store.
func (c *StudyCache) Store() *Store { return c.store }

func normalizeSig(sig string) string {
	if sig == "" {
		return "off"
	}
	return sig
}

// programDigest hashes everything about a built program that can reach
// a campaign outcome: the IR module text, the disassembled machine
// code with its entry point and constant pool, and the golden output
// the outcome classifier compares against. Length-prefixed sections
// keep the encoding unambiguous.
func programDigest(p *core.Program) string {
	h := sha256.New()
	sec := func(tag string, data []byte) {
		fmt.Fprintf(h, "%s %d\n", tag, len(data))
		h.Write(data)
	}
	fmt.Fprintf(h, "hlfi-program-v%d\n", recordVersion)
	sec("name", []byte(p.Name))
	sec("ir", []byte(p.Prep.Mod.String()))
	sec("asm", []byte(p.Asm.Disassemble()))
	fmt.Fprintf(h, "entry %d\n", p.Asm.Entry)
	sec("rodata", p.Asm.Rodata)
	sec("golden", p.GoldenOutput)
	fmt.Fprintf(h, "exit %d\n", p.GoldenExit)
	return hex.EncodeToString(h.Sum(nil))
}

// KeyHex derives the content-addressed key of one cell record at the
// given (activated-target, adaptive-base) identity. ok=false means the
// program is not part of this study (no key exists).
//
// The seed component is the cell's EFFECTIVE campaign seed — the value
// the injection RNG actually streams from — not the study-level seed it
// was derived from. Study cells run on core.CellSeed(studySeed, key)
// (which is what makes them relocatable across shards and fleets); the
// single-cell CLIs run straight on their -seed flag. Keying on the
// effective seed means any two runs share a record exactly when their
// samples are byte-identical, whatever entry point produced them.
func (c *StudyCache) KeyHex(key core.CellKey, target, base int) (string, bool) {
	pd, ok := c.progs[key.Prog]
	if !ok {
		return "", false
	}
	seed := core.CellSeed(c.shape.Seed, key)
	if c.rawSeed {
		seed = c.shape.Seed
	}
	h := sha256.New()
	fmt.Fprintf(h, "hlfi-warehouse-v%d\n", recordVersion)
	fmt.Fprintf(h, "program %s\n", pd)
	fmt.Fprintf(h, "level %s\ncategory %s\n", key.Level, key.Category)
	fmt.Fprintf(h, "n %d\ncellseed %d\n", c.shape.N, seed)
	fmt.Fprintf(h, "target %d\nbase %d\n", target, base)
	fmt.Fprintf(h, "compiled %s\nadaptive %s\nseeding %s\n",
		c.shape.Compiled, c.shape.Adaptive, c.seeding)
	return hex.EncodeToString(h.Sum(nil)), true
}

// lookup is the shared validated read behind Lookup and Probe.
func (c *StudyCache) lookup(key core.CellKey, target, base int) (*payload, bool) {
	kh, ok := c.KeyHex(key, target, base)
	if !ok {
		return nil, false
	}
	p, ok := c.store.read(kh)
	if !ok {
		return nil, false
	}
	// The record restates its identity; a mismatch is a filed-wrong
	// record and must read as a miss, never as an answer.
	if p.Benchmark != key.Prog || p.Level != key.Level.String() ||
		p.Category != key.Category.String() || p.Target != target || p.Base != base {
		return nil, false
	}
	switch p.Type {
	case "cell":
		if p.Result == nil {
			return nil, false
		}
	case "skip":
		if !deterministicSkip(p.Kind) {
			return nil, false
		}
	default:
		return nil, false
	}
	return p, true
}

// Lookup resolves one cell from the warehouse: a cached result, a
// cached deterministic skip, or a miss. Implements core.CellStore.
func (c *StudyCache) Lookup(key core.CellKey, target, base int) (*core.CellResult, *core.CheckpointSkip, bool) {
	p, ok := c.lookup(key, target, base)
	if !ok {
		c.store.Misses.Inc()
		return nil, nil, false
	}
	c.store.Hits.Inc()
	if p.Type == "skip" {
		return nil, &core.CheckpointSkip{Kind: p.Kind, Err: p.Err}, true
	}
	r := p.Result
	res := &core.CellResult{
		Prog: key.Prog, Level: key.Level, Category: key.Category,
		Benign: r.Benign, SDC: r.SDC, Crash: r.Crash, Hang: r.Hang,
		NotActivated: r.NotActivated, Attempts: r.Attempts,
		SimFaults: r.SimFaults, DynCandidates: r.DynCandidates,
	}
	if r.AdaptiveTarget > 0 {
		res.Adaptive.Target = r.AdaptiveTarget
		res.Adaptive.Converged = r.Converged
		if r.Round1 != nil {
			res.Adaptive.Extended = true
			res.Adaptive.Round1 = core.AdaptiveCounts{
				Benign: r.Round1.Benign, SDC: r.Round1.SDC,
				Crash: r.Round1.Crash, Hang: r.Round1.Hang,
				NotActivated: r.Round1.NotActivated,
				Attempts:     r.Round1.Attempts, SimFaults: r.Round1.SimFaults,
			}
		}
	}
	return res, nil, true
}

// CellStatus classifies one cell's warehouse state for the query
// surfaces (-warehouse-query, the coordinator's /warehouse endpoint).
const (
	StatusHit  = "hit"
	StatusSkip = "skip"
	StatusMiss = "miss"
)

// Probe reports one cell's warehouse status without touching the
// hit/miss counters (queries are observational, not resolutions).
func (c *StudyCache) Probe(key core.CellKey, target, base int) string {
	p, ok := c.lookup(key, target, base)
	if !ok {
		return StatusMiss
	}
	if p.Type == "skip" {
		return StatusSkip
	}
	return StatusHit
}

// StoreCell persists one completed cell. Implements core.CellStore
// (method name Store is taken by the accessor, so the interface method
// is StoreCell/StoreSkip).
func (c *StudyCache) StoreCell(key core.CellKey, target, base int, res *core.CellResult) {
	kh, ok := c.KeyHex(key, target, base)
	if !ok {
		return
	}
	r := &resultRecord{
		Benign: res.Benign, SDC: res.SDC, Crash: res.Crash, Hang: res.Hang,
		NotActivated: res.NotActivated, Attempts: res.Attempts,
		SimFaults: res.SimFaults, DynCandidates: res.DynCandidates,
	}
	if a := res.Adaptive; a.Target > 0 {
		r.AdaptiveTarget = a.Target
		r.Converged = a.Converged
		if a.Extended {
			r.Round1 = &round1Record{
				Benign: a.Round1.Benign, SDC: a.Round1.SDC,
				Crash: a.Round1.Crash, Hang: a.Round1.Hang,
				NotActivated: a.Round1.NotActivated,
				Attempts:     a.Round1.Attempts, SimFaults: a.Round1.SimFaults,
			}
		}
	}
	c.store.write(kh, &payload{
		V: recordVersion, Key: kh, Type: "cell",
		Benchmark: key.Prog, Level: key.Level.String(), Category: key.Category.String(),
		Target: target, Base: base, Result: r,
	})
}

// StoreSkip persists one soft-skipped cell. Only deterministic kinds
// (no-candidates, not-activated) are stored: a deadline or fleet skip
// describes this run's scheduling, not the cell.
func (c *StudyCache) StoreSkip(key core.CellKey, target, base int, skip core.CheckpointSkip) {
	if !deterministicSkip(skip.Kind) {
		return
	}
	kh, ok := c.KeyHex(key, target, base)
	if !ok {
		return
	}
	c.store.write(kh, &payload{
		V: recordVersion, Key: kh, Type: "skip",
		Benchmark: key.Prog, Level: key.Level.String(), Category: key.Category.String(),
		Target: target, Base: base, Kind: skip.Kind, Err: skip.Err,
	})
}

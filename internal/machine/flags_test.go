package machine

import (
	"strings"
	"testing"

	"hlfi/internal/x86"
)

// TestLogicFlags pins the TEST flag recipe: ZF on zero, SF on the sign
// bit at the operand width, PF on the low byte's parity. OF/CF are never
// set by TEST.
func TestLogicFlags(t *testing.T) {
	cases := []struct {
		name string
		r    uint64
		size uint64
		want uint64
	}{
		{"zero", 0, 8, x86.FlagZF | x86.FlagPF},          // parity of 0x00 is even
		{"one", 1, 8, 0},                                 // odd parity, positive
		{"three", 3, 8, x86.FlagPF},                      // 0b11: even parity
		{"neg64", 1 << 63, 8, x86.FlagSF | x86.FlagPF},   // low byte 0 -> PF
		{"neg32", 1 << 31, 4, x86.FlagSF | x86.FlagPF},   // sign at 32-bit width
		{"trunc32", 1 << 63, 4, x86.FlagZF | x86.FlagPF}, // canonicalized away
		{"byte-sign", 0x80, 1, x86.FlagSF},               // 0x80: one bit -> odd parity
	}
	for _, c := range cases {
		if got := logicFlags(c.r, c.size); got != c.want {
			t.Errorf("%s: logicFlags(%#x, %d) = %#x, want %#x", c.name, c.r, c.size, got, c.want)
		}
	}
}

// TestCondTable checks every Jcc condition against hand-picked flag
// states, including the signed conditions' SF!=OF overflow handling.
func TestCondTable(t *testing.T) {
	const (
		zf = x86.FlagZF
		sf = x86.FlagSF
		of = x86.FlagOF
		cf = x86.FlagCF
	)
	cases := []struct {
		op    x86.Opcode
		flags uint64
		want  bool
	}{
		{x86.JE, zf, true}, {x86.JE, 0, false},
		{x86.JNE, zf, false}, {x86.JNE, 0, true},
		// Signed less-than is SF != OF: true both for a plain negative
		// result and for a positive result that overflowed.
		{x86.JL, sf, true}, {x86.JL, of, true}, {x86.JL, sf | of, false}, {x86.JL, 0, false},
		{x86.JLE, zf, true}, {x86.JLE, sf, true}, {x86.JLE, sf | of, false},
		{x86.JG, 0, true}, {x86.JG, zf, false}, {x86.JG, sf | of, true}, {x86.JG, sf, false},
		{x86.JGE, 0, true}, {x86.JGE, sf | of, true}, {x86.JGE, sf, false}, {x86.JGE, of, false},
		// Unsigned conditions read CF (UCOMISD encodes < as CF).
		{x86.JB, cf, true}, {x86.JB, 0, false},
		{x86.JBE, cf, true}, {x86.JBE, zf, true}, {x86.JBE, 0, false},
		{x86.JA, 0, true}, {x86.JA, cf, false}, {x86.JA, zf, false},
		{x86.JAE, 0, true}, {x86.JAE, cf, false}, {x86.JAE, zf, true},
		// SETcc shares the table.
		{x86.SETL, sf, true}, {x86.SETGE, sf, false}, {x86.SETE, zf, true},
		{x86.SETA, 0, true}, {x86.SETBE, zf, true},
	}
	m := &Machine{}
	for _, c := range cases {
		m.flags = c.flags
		if got := m.cond(c.op); got != c.want {
			t.Errorf("cond(%v) with flags %#x = %v, want %v", c.op, c.flags, got, c.want)
		}
	}
}

// TestReadWriteSets pins the activation tracker's per-opcode read/write
// sets — the machinery deciding whether a corrupted register was consumed
// (fault activated) or clobbered (fault excluded).
func TestReadWriteSets(t *testing.T) {
	r := func(reg x86.Reg) x86.Operand { return x86.R(reg) }
	mem := func(base x86.Reg) x86.Operand { return x86.Mem(base, x86.RegNone, 1, 0) }

	readCases := []struct {
		name string
		in   x86.Instr
		reg  x86.Reg
		want bool
	}{
		{"mov-src", x86.Instr{Op: x86.MOV, Dst: r(x86.RAX), Src: r(x86.RCX), Size: 8}, x86.RCX, true},
		{"mov-dst-not-read", x86.Instr{Op: x86.MOV, Dst: r(x86.RAX), Src: r(x86.RCX), Size: 8}, x86.RAX, false},
		{"add-dst-read", x86.Instr{Op: x86.ADD, Dst: r(x86.RAX), Src: x86.Imm(1), Size: 8}, x86.RAX, true},
		{"store-addr-read", x86.Instr{Op: x86.MOV, Dst: mem(x86.RDI), Src: r(x86.RAX), Size: 8}, x86.RDI, true},
		{"load-addr-read", x86.Instr{Op: x86.MOV, Dst: r(x86.RAX), Src: mem(x86.RSI), Size: 8}, x86.RSI, true},
		{"cmp-both", x86.Instr{Op: x86.CMP, Dst: r(x86.RBX), Src: r(x86.RDX), Size: 8}, x86.RBX, true},
		{"push-rsp", x86.Instr{Op: x86.PUSH, Dst: r(x86.RBX)}, x86.RSP, true},
		{"push-val", x86.Instr{Op: x86.PUSH, Dst: r(x86.RBX)}, x86.RBX, true},
		{"pop-rsp", x86.Instr{Op: x86.POP, Dst: r(x86.RBX)}, x86.RSP, true},
		{"pop-dst-not-read", x86.Instr{Op: x86.POP, Dst: r(x86.RBX)}, x86.RBX, false},
		{"ret-rsp", x86.Instr{Op: x86.RET}, x86.RSP, true},
		{"cqo-rax", x86.Instr{Op: x86.CQO}, x86.RAX, true},
		{"cqo-not-rdx", x86.Instr{Op: x86.CQO}, x86.RDX, false},
		// IDIV is emitted as Dst=RAX, Src=divisor (isel convention).
		{"idiv-rax", x86.Instr{Op: x86.IDIV, Dst: r(x86.RAX), Src: r(x86.RCX), Size: 8}, x86.RAX, true},
		{"idiv-rdx", x86.Instr{Op: x86.IDIV, Dst: r(x86.RAX), Src: r(x86.RCX), Size: 8}, x86.RDX, true},
		{"idiv-divisor", x86.Instr{Op: x86.IDIV, Dst: r(x86.RAX), Src: r(x86.RCX), Size: 8}, x86.RCX, true},
		{"lea-components", x86.Instr{Op: x86.LEA, Dst: r(x86.RAX),
			Src: x86.Operand{Kind: x86.OpMem, Base: x86.RBX, Index: x86.RCX, Scale: 4}}, x86.RCX, true},
	}
	for _, c := range readCases {
		if got := readsReg(&c.in, c.reg); got != c.want {
			t.Errorf("readsReg %s (%v): got %v, want %v", c.name, c.reg, got, c.want)
		}
	}

	writeCases := []struct {
		name string
		in   x86.Instr
		reg  x86.Reg
		want bool
	}{
		{"mov-dst", x86.Instr{Op: x86.MOV, Dst: r(x86.RAX), Src: x86.Imm(1), Size: 8}, x86.RAX, true},
		{"store-no-write", x86.Instr{Op: x86.MOV, Dst: mem(x86.RDI), Src: r(x86.RAX), Size: 8}, x86.RDI, false},
		{"cmp-no-write", x86.Instr{Op: x86.CMP, Dst: r(x86.RBX), Src: x86.Imm(0), Size: 8}, x86.RBX, false},
		{"push-rsp", x86.Instr{Op: x86.PUSH, Dst: r(x86.RBX)}, x86.RSP, true},
		{"pop-dst", x86.Instr{Op: x86.POP, Dst: r(x86.RBX)}, x86.RBX, true},
		{"cqo-rdx", x86.Instr{Op: x86.CQO}, x86.RDX, true},
		{"idiv-rax", x86.Instr{Op: x86.IDIV, Dst: r(x86.RAX), Src: r(x86.RCX), Size: 8}, x86.RAX, true},
		{"idiv-rdx", x86.Instr{Op: x86.IDIV, Dst: r(x86.RAX), Src: r(x86.RCX), Size: 8}, x86.RDX, true},
		{"idiv-not-divisor", x86.Instr{Op: x86.IDIV, Dst: r(x86.RAX), Src: r(x86.RCX), Size: 8}, x86.RCX, false},
	}
	for _, c := range writeCases {
		if got := writesReg(&c.in, c.reg); got != c.want {
			t.Errorf("writesReg %s (%v): got %v, want %v", c.name, c.reg, got, c.want)
		}
	}

	x := func(xr x86.XReg) x86.Operand { return x86.X(xr) }
	xmmReads := []struct {
		name string
		in   x86.Instr
		xr   x86.XReg
		want bool
	}{
		{"movsd-src", x86.Instr{Op: x86.MOVSD, Dst: x(x86.XMM0), Src: x(x86.XMM1)}, x86.XMM1, true},
		{"movsd-dst-not-read", x86.Instr{Op: x86.MOVSD, Dst: x(x86.XMM0), Src: x(x86.XMM1)}, x86.XMM0, false},
		{"addsd-dst-read", x86.Instr{Op: x86.ADDSD, Dst: x(x86.XMM0), Src: x(x86.XMM1)}, x86.XMM0, true},
		{"ucomisd-both", x86.Instr{Op: x86.UCOMISD, Dst: x(x86.XMM2), Src: x(x86.XMM3)}, x86.XMM2, true},
		// xorpd x, x zeroes regardless of the old value, but the register
		// still appears as a source; the tracker counts that as a read
		// (conservative: over-activating is safer than missing a read).
		{"xorpd-self-zeroing", x86.Instr{Op: x86.XORPD, Dst: x(x86.XMM4), Src: x(x86.XMM4)}, x86.XMM4, true},
		{"xorpd-other", x86.Instr{Op: x86.XORPD, Dst: x(x86.XMM4), Src: x(x86.XMM5)}, x86.XMM4, true},
	}
	for _, c := range xmmReads {
		if got := readsXmm(&c.in, c.xr); got != c.want {
			t.Errorf("readsXmm %s: got %v, want %v", c.name, got, c.want)
		}
	}
	if !writesXmm(&x86.Instr{Op: x86.XORPD, Dst: x(x86.XMM4), Src: x(x86.XMM4)}, x86.XMM4) {
		t.Error("xorpd self must write its destination")
	}
	if writesXmm(&x86.Instr{Op: x86.ADDSD, Dst: x(x86.XMM0), Src: x(x86.XMM1)}, x86.XMM0) {
		t.Error("addsd reads-modifies-writes; tracker treats it as a read, not a blind write")
	}
}

// TestBuiltinCallArgTracking: a builtin CALL reads exactly the argument
// registers its signature names, honoring the int/float split.
func TestBuiltinCallArgTracking(t *testing.T) {
	// print_double(d): one float arg -> reads XMM0, no int args.
	pd := x86.Instr{Op: x86.CALL, Builtin: "print_double", ArgClasses: "d"}
	if readsReg(&pd, x86.RDI) {
		t.Error("print_double should not read RDI")
	}
	if !readsXmm(&pd, x86.XMM0) {
		t.Error("print_double must read XMM0")
	}
	// malloc(n): one int arg -> reads RDI, writes RAX.
	ml := x86.Instr{Op: x86.CALL, Builtin: "malloc", ArgClasses: "l"}
	if !readsReg(&ml, x86.RDI) {
		t.Error("malloc must read RDI")
	}
	if !writesReg(&ml, x86.RAX) {
		t.Error("malloc must write RAX")
	}
	// pow(x, y) returns a double: writes XMM0, not RAX.
	pw := x86.Instr{Op: x86.CALL, Builtin: "pow", ArgClasses: "dd", RetFloat: true}
	if !writesXmm(&pw, x86.XMM0) {
		t.Error("pow must write XMM0")
	}
	if writesReg(&pw, x86.RAX) {
		t.Error("float-returning builtin must not clobber-track RAX")
	}
}

func TestDescribeInjection(t *testing.T) {
	inj := &Injection{InstrIdx: 42, TargetDesc: "rbx", Bit: 17,
		OrigVal: 0x1000, FaultyVal: 0x21000, Activated: true}
	s := DescribeInjection(inj)
	for _, want := range []string{"instr 42", "rbx", "bit 17", "0x1000", "0x21000", "activated=true"} {
		if !strings.Contains(s, want) {
			t.Errorf("DescribeInjection missing %q: %s", want, s)
		}
	}
}

func TestMemoryAccessor(t *testing.T) {
	m := New(asm(x86.Instr{Op: x86.RET}), nil, 0, nil)
	if m.Memory() == nil {
		t.Fatal("Memory() returned nil")
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if m.Executed() != 1 {
		t.Fatalf("executed = %d", m.Executed())
	}
}

package machine

import (
	"fmt"

	"hlfi/internal/x86"
)

// Span is one edge of an attempt's fault-propagation skeleton at the
// assembly level: the inject site, then the first tainted load, store,
// and conditional branch observed afterwards. Kind is "inject", "load",
// "store", or "branch"; Site identifies the static instruction; At is
// the dynamic instruction index.
type Span struct {
	Kind string
	Site string
	At   uint64
}

// Tracer is a best-effort architectural taint tracker, the ASM-level
// counterpart of the interpreter's IR tracer. It tracks taint through
// general-purpose registers, XMM registers, the flags word, and 8-byte
// memory granules, recording at most one span per edge kind. Precision
// is deliberately modest (implicitly-read registers such as RSP and the
// IDIV pair are not tracked); the point is the propagation skeleton,
// not a sound information-flow analysis.
type Tracer struct {
	// Spans is the bounded propagation skeleton (at most four entries:
	// inject, load, store, branch; the caller appends the outcome edge).
	Spans []Span

	taintedRegs  [x86.NumRegs]bool
	taintedXmm   [x86.NumXRegs]bool
	taintedFlags uint64
	taintedMem   map[uint64]bool // 8-byte granules

	rooted                          bool
	seenLoad, seenStore, seenBranch bool
}

// NewTracer returns an empty tracer; attach it to Machine.Trace before
// Run.
func NewTracer() *Tracer {
	return &Tracer{taintedMem: make(map[uint64]bool)}
}

// markRoot seeds taint from a fired injection. Called by fireInjection
// with the corruption target it just chose.
func (t *Tracer) markRoot(m *Machine, idx int, in *x86.Instr) {
	switch m.watch {
	case watchReg:
		t.taintedRegs[m.watchReg_] = true
	case watchXmm:
		t.taintedXmm[m.watchXmm_] = true
	case watchFlags:
		t.taintedFlags = m.watchMask
	default:
		return
	}
	t.rooted = true
	t.Spans = append(t.Spans, Span{Kind: "inject", Site: asmSite(idx, in), At: m.executed})
}

// observe inspects the instruction about to execute and propagates
// taint through it. Called from step() before exec, so memory operand
// addresses resolve against pre-execution register state.
func (t *Tracer) observe(m *Machine, idx int, in *x86.Instr) {
	if !t.rooted {
		return
	}
	at := m.executed

	if in.Op.IsCondJump() && t.taintedFlags&CondFlagMask(in.Op) != 0 && !t.seenBranch {
		t.seenBranch = true
		t.Spans = append(t.Spans, Span{Kind: "branch", Site: asmSite(idx, in), At: at})
	}

	srcTainted := t.operandTainted(m, in.Src)
	// RMW shapes and memory destinations read Dst too; a tainted base or
	// index register also means the access itself is corrupted.
	if in.Dst.Kind != x86.OpNone && t.operandTainted(m, in.Dst) {
		srcTainted = true
	}
	if in.Op.IsSet() && t.taintedFlags&CondFlagMask(in.Op) != 0 {
		srcTainted = true
	}

	if srcTainted && !t.seenLoad && in.Src.Kind == x86.OpMem &&
		t.taintedMem[m.effAddr(in.Src)&^7] {
		t.seenLoad = true
		t.Spans = append(t.Spans, Span{Kind: "load", Site: asmSite(idx, in), At: at})
	}

	if !writesDst(in) {
		if in.Op.IsFlagSetter() {
			if srcTainted {
				t.taintedFlags = x86.FlagZF | x86.FlagSF | x86.FlagOF | x86.FlagCF
			} else {
				t.taintedFlags = 0
			}
		}
		return
	}
	switch in.Dst.Kind {
	case x86.OpReg:
		t.taintedRegs[in.Dst.Reg] = srcTainted
	case x86.OpXmm:
		t.taintedXmm[in.Dst.Xmm] = srcTainted
	case x86.OpMem:
		g := m.effAddr(in.Dst) &^ 7
		if srcTainted {
			t.taintedMem[g] = true
			if !t.seenStore {
				t.seenStore = true
				t.Spans = append(t.Spans, Span{Kind: "store", Site: asmSite(idx, in), At: at})
			}
		} else {
			delete(t.taintedMem, g)
		}
	}
}

// operandTainted reports whether reading o observes tainted state.
func (t *Tracer) operandTainted(m *Machine, o x86.Operand) bool {
	switch o.Kind {
	case x86.OpReg:
		return t.taintedRegs[o.Reg]
	case x86.OpXmm:
		return t.taintedXmm[o.Xmm]
	case x86.OpMem:
		if o.Base != x86.RegNone && t.taintedRegs[o.Base] {
			return true
		}
		if o.Index != x86.RegNone && t.taintedRegs[o.Index] {
			return true
		}
		return t.taintedMem[m.effAddr(o)&^7]
	}
	return false
}

// writesDst reports whether the instruction overwrites its Dst operand
// (as opposed to reading it, like CMP or PUSH, or writing implicit
// registers, like CQO/IDIV).
func writesDst(in *x86.Instr) bool {
	switch in.Op {
	case x86.CMP, x86.TEST, x86.UCOMISD, x86.PUSH, x86.CALL, x86.RET,
		x86.JMP, x86.CQO, x86.IDIV:
		return false
	}
	if in.Op.IsCondJump() {
		return false
	}
	return in.Dst.Kind != x86.OpNone
}

// asmSite identifies a static instruction for span display.
func asmSite(idx int, in *x86.Instr) string {
	return fmt.Sprintf("#%d %s", idx, in.String())
}

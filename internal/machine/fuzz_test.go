package machine_test

import (
	"bytes"
	"fmt"
	"testing"

	"hlfi/internal/codegen"
	"hlfi/internal/interp"
	"hlfi/internal/machine"
	"hlfi/internal/minic"
)

const fuzzBudget = 50_000

// FuzzSnapshotRestore checks the machine-level snapshot invariant on
// arbitrary lowered programs: capture must not perturb execution, and
// resuming from any snapshot must reach exactly the state of a
// straight-line run — output bytes, exit code, error, instruction count.
func FuzzSnapshotRestore(f *testing.F) {
	f.Add("int main(){int s=0;for(int i=0;i<50;i++)s+=i;print_long(s);return 0;}", uint64(37))
	f.Add(`int arr[8];
int main() {
    double acc = 0.0;
    for (int i = 0; i < 8; i++) { arr[i] = i * 3; acc = acc + (double)arr[i]; }
    long sum = 0;
    for (int i = 0; i < 8; i++) sum += arr[i];
    print_long(sum); print_str(" "); print_double(acc); print_str("\n");
    return 0;
}`, uint64(111))
	f.Add("int f(int n){ if (n < 2) return n; return f(n-1)+f(n-2); } int main(){ print_long(f(12)); return 0; }", uint64(500))
	f.Add("int main(){ int *p = 0; return *p; }", uint64(3))
	f.Add("int main(){ for(;;){} return 0; }", uint64(64))

	f.Fuzz(func(t *testing.T, src string, strideSeed uint64) {
		mod, err := minic.Compile("fuzz", src)
		if err != nil {
			t.Skip()
		}
		prep, err := interp.Prepare(mod)
		if err != nil {
			t.Skip()
		}
		prog, err := codegen.Lower(mod, prep.Layout, codegen.DefaultOptions())
		if err != nil {
			t.Skip()
		}
		img, base := prep.Layout.Image, prep.Layout.Base

		var out1 bytes.Buffer
		m1 := machine.New(prog, img, base, &out1)
		m1.MaxInstrs = fuzzBudget
		exit1, err1 := m1.Run()

		stride := strideSeed%2048 + 16
		var out2 bytes.Buffer
		var snaps []*machine.Snapshot
		m2 := machine.New(prog, img, base, &out2)
		m2.MaxInstrs = fuzzBudget
		m2.SnapshotEvery = stride
		m2.SnapshotSink = func(s *machine.Snapshot) { snaps = append(snaps, s) }
		exit2, err2 := m2.Run()

		if exit1 != exit2 || fmt.Sprint(err1) != fmt.Sprint(err2) ||
			!bytes.Equal(out1.Bytes(), out2.Bytes()) || m1.Executed() != m2.Executed() {
			t.Fatalf("snapshot capture perturbed execution: (%d,%v,%q,%d) != (%d,%v,%q,%d)",
				exit1, err1, out1.Bytes(), m1.Executed(), exit2, err2, out2.Bytes(), m2.Executed())
		}

		step := 1
		if len(snaps) > 8 {
			step = len(snaps) / 8
		}
		for i := 0; i < len(snaps); i += step {
			s := snaps[i]
			var out3 bytes.Buffer
			out3.Write(out1.Bytes()[:s.OutLen])
			m3 := machine.NewFromSnapshot(prog, s, &out3)
			m3.MaxInstrs = fuzzBudget
			exit3, err3 := m3.Resume()
			if exit1 != exit3 || fmt.Sprint(err1) != fmt.Sprint(err3) ||
				!bytes.Equal(out1.Bytes(), out3.Bytes()) || m1.Executed() != m3.Executed() {
				t.Fatalf("resume from snapshot %d (at %d instrs) diverged: (%d,%v,%q,%d) != (%d,%v,%q,%d)",
					i, s.Executed, exit1, err1, out1.Bytes(), m1.Executed(),
					exit3, err3, out3.Bytes(), m3.Executed())
			}
		}
	})
}

package machine

import (
	"hlfi/internal/mem"
	"hlfi/internal/x86"
)

// This file is the read-only surface the pre-decoded dispatch engine
// (internal/compile/mc) builds on: the simulator's exact ALU, flag, and
// condition semantics, the activation predicates, and the snapshot
// state. The compiled engine re-executes the ISA itself but defers to
// these helpers for every semantic the interpreter defines, so the two
// can only diverge where the dispatch structure itself is wrong — which
// the differential oracle and fuzz target cover.

// AluOp applies an integer ALU operation at the given width, exactly as
// the simulator's dispatch does.
func AluOp(op x86.Opcode, a, b, size uint64) uint64 { return aluOp(op, a, b, size) }

// SubFlagsFor computes RFLAGS for CMP (a - b) at the given width.
func SubFlagsFor(a, b, size uint64) uint64 { return subFlags(a, b, size) }

// LogicFlagsFor computes RFLAGS for TEST.
func LogicFlagsFor(r, size uint64) uint64 { return logicFlags(r, size) }

// UcomisdFlagsFor computes RFLAGS for UCOMISD.
func UcomisdFlagsFor(x, y float64) uint64 { return ucomisdFlags(x, y) }

// CondHolds evaluates a Jcc/SETcc condition against a flags value.
func CondHolds(op x86.Opcode, flags uint64) bool { return condHolds(op, flags) }

// CanonicalVal zero-extends a value of the given width to the canonical
// register form.
func CanonicalVal(v, size uint64) uint64 { return canonical(v, size) }

// SignExtendVal sign-extends a canonical value of the given width.
func SignExtendVal(v, size uint64) int64 { return signExtend(v, size) }

// InjectWidthOf is the register width PINFI flips within for in.
func InjectWidthOf(in *x86.Instr) int { return injectWidth(in) }

// FlagMaskBits expands a flag mask into its architectural bit positions
// in x86.FlagBits order.
func FlagMaskBits(mask uint64) []int { return maskBits(mask) }

// InstrReadsReg reports whether in reads general-purpose register r
// (the activation predicate of checkActivation).
func InstrReadsReg(in *x86.Instr, r x86.Reg) bool { return readsReg(in, r) }

// InstrWritesReg reports whether in overwrites general-purpose
// register r.
func InstrWritesReg(in *x86.Instr, r x86.Reg) bool { return writesReg(in, r) }

// InstrReadsXmm reports whether in reads XMM register x.
func InstrReadsXmm(in *x86.Instr, x x86.XReg) bool { return readsXmm(in, x) }

// InstrWritesXmm reports whether in overwrites XMM register x.
func InstrWritesXmm(in *x86.Instr, x x86.XReg) bool { return writesXmm(in, x) }

// CloneState materializes a writable copy of the snapshot's
// architectural state: a copy-on-write memory clone plus registers,
// XMM registers, flags, and the instruction pointer. Safe to call
// concurrently on one snapshot, like NewFromSnapshot.
func (s *Snapshot) CloneState() (m *mem.Memory, regs [x86.NumRegs]uint64, xmm [x86.NumXRegs][2]uint64, flags uint64, rip int) {
	return s.mem.Clone(), s.regs, s.xmm, s.flags, s.rip
}

package machine

import (
	"fmt"

	"hlfi/internal/x86"
)

// fireInjection corrupts the destination of the instruction that just
// executed: one random bit of the destination register, or — for a
// compare feeding a conditional jump — one of the flag bits the jump
// actually reads (PINFI's activation heuristics, paper §IV).
func (m *Machine) fireInjection(idx int, in *x86.Instr) {
	inj := m.Inject
	switch {
	case in.Op.IsFlagSetter():
		mask := m.depFlags[idx]
		if mask == 0 {
			return // not a candidate shape; selector should prevent this
		}
		bits := maskBits(mask)
		bit := bits[inj.Rng.Intn(len(bits))]
		inj.OrigVal = m.flags
		m.flags ^= 1 << uint(bit)
		inj.FaultyVal = m.flags
		inj.Bit = bit
		inj.TargetDesc = "rflags"
		m.watch = watchFlags
		m.watchMask = 1 << uint(bit)

	case in.Dst.Kind == x86.OpXmm:
		// Double-precision SSE ops use only the low 64 of the 128-bit
		// register; prune the injection space accordingly (Figure 2(b)).
		bit := inj.Rng.Intn(64)
		inj.OrigVal = m.xmm[in.Dst.Xmm][0]
		m.xmm[in.Dst.Xmm][0] ^= 1 << uint(bit)
		inj.FaultyVal = m.xmm[in.Dst.Xmm][0]
		inj.Bit = bit
		inj.TargetDesc = in.Dst.Xmm.String()
		m.watch = watchXmm
		m.watchXmm_ = in.Dst.Xmm

	case in.Dst.Kind == x86.OpReg:
		width := injectWidth(in)
		bit := inj.Rng.Intn(width)
		inj.OrigVal = m.regs[in.Dst.Reg]
		m.regs[in.Dst.Reg] ^= 1 << uint(bit)
		inj.FaultyVal = m.regs[in.Dst.Reg]
		inj.Bit = bit
		inj.TargetDesc = in.Dst.Reg.String()
		m.watch = watchReg
		m.watchReg_ = in.Dst.Reg

	default:
		return
	}
	inj.Happened = true
	inj.InstrIdx = idx
	if m.Trace != nil {
		m.Trace.markRoot(m, idx, in)
	}
}

// injectWidth is the register width PINFI would flip within: the operand
// width of the operation, except for instructions that architecturally
// write the full 64-bit register.
func injectWidth(in *x86.Instr) int {
	switch in.Op {
	case x86.MOVZX, x86.MOVSX, x86.LEA, x86.POP:
		return 64
	default:
		return int(in.OpSize()) * 8
	}
}

func maskBits(mask uint64) []int {
	var out []int
	for _, b := range x86.FlagBits {
		if mask&(1<<uint(b)) != 0 {
			out = append(out, b)
		}
	}
	return out
}

// checkActivation inspects the instruction about to execute: a read of
// the corrupted location activates the fault; an overwrite without a read
// kills it (the run is then excluded and redrawn by the campaign).
func (m *Machine) checkActivation(in *x86.Instr) {
	switch m.watch {
	case watchReg:
		if readsReg(in, m.watchReg_) {
			m.Inject.Activated = true
			m.watch = watchNone
		} else if writesReg(in, m.watchReg_) {
			m.watch = watchNone
		}
	case watchXmm:
		if readsXmm(in, m.watchXmm_) {
			m.Inject.Activated = true
			m.watch = watchNone
		} else if writesXmm(in, m.watchXmm_) {
			m.watch = watchNone
		}
	case watchFlags:
		if in.Op.IsCondJump() || in.Op.IsSet() {
			if CondFlagMask(in.Op)&m.watchMask != 0 {
				m.Inject.Activated = true
				m.watch = watchNone
			}
			return
		}
		if in.Op.IsFlagSetter() {
			m.watch = watchNone
		}
	}
}

func operandReadsReg(o x86.Operand, r x86.Reg) bool {
	switch o.Kind {
	case x86.OpReg:
		return o.Reg == r
	case x86.OpMem:
		return o.Base == r || o.Index == r
	default:
		return false
	}
}

// readsReg reports whether in reads general-purpose register r.
func readsReg(in *x86.Instr, r x86.Reg) bool {
	if operandReadsReg(in.Src, r) {
		return true
	}
	if in.Dst.Kind == x86.OpMem && operandReadsReg(in.Dst, r) {
		return true
	}
	switch in.Op {
	case x86.ADD, x86.SUB, x86.IMUL, x86.NEG, x86.AND, x86.OR, x86.XOR,
		x86.SHL, x86.SHR, x86.SAR, x86.CMP, x86.TEST:
		if in.Dst.Kind == x86.OpReg && in.Dst.Reg == r {
			return true
		}
	case x86.PUSH:
		if operandReadsReg(in.Dst, r) || r == x86.RSP {
			return true
		}
	case x86.POP, x86.RET:
		if r == x86.RSP {
			return true
		}
	case x86.CALL:
		if r == x86.RSP {
			return true
		}
		// Builtin calls read their argument registers directly.
		if in.Builtin != "" {
			ii := 0
			for k := 0; k < len(in.ArgClasses); k++ {
				if in.ArgClasses[k] != 'd' {
					if intArgRegs[ii] == r {
						return true
					}
					ii++
				}
			}
		}
	case x86.CQO, x86.IDIV:
		if r == x86.RAX {
			return true
		}
		if in.Op == x86.IDIV && r == x86.RDX {
			return true
		}
	}
	return false
}

// writesReg reports whether in overwrites general-purpose register r.
func writesReg(in *x86.Instr, r x86.Reg) bool {
	if in.HasRegDest() && in.Dst.Kind == x86.OpReg && in.Dst.Reg == r {
		return true
	}
	switch in.Op {
	case x86.PUSH, x86.POP, x86.CALL, x86.RET:
		if r == x86.RSP {
			return true
		}
	case x86.CQO:
		if r == x86.RDX {
			return true
		}
	case x86.IDIV:
		if r == x86.RAX || r == x86.RDX {
			return true
		}
	}
	if in.Op == x86.CALL && in.Builtin != "" && r == x86.RAX && !in.RetFloat {
		return true
	}
	return false
}

func readsXmm(in *x86.Instr, x xr) bool {
	if in.Src.Kind == x86.OpXmm && in.Src.Xmm == x {
		return true
	}
	switch in.Op {
	case x86.ADDSD, x86.SUBSD, x86.MULSD, x86.DIVSD, x86.UCOMISD:
		if in.Dst.Kind == x86.OpXmm && in.Dst.Xmm == x {
			return true
		}
	case x86.XORPD:
		if in.Dst.Xmm == x && in.Src.Xmm != x {
			return true
		}
	case x86.CALL:
		if in.Builtin != "" {
			fi := 0
			for k := 0; k < len(in.ArgClasses); k++ {
				if in.ArgClasses[k] == 'd' {
					if fltArgRegs[fi] == x {
						return true
					}
					fi++
				}
			}
		}
	}
	return false
}

func writesXmm(in *x86.Instr, x xr) bool {
	switch in.Op {
	case x86.MOVSD, x86.CVTSI2SD:
		return in.Dst.Kind == x86.OpXmm && in.Dst.Xmm == x
	case x86.XORPD:
		return in.Dst.Xmm == x
	case x86.CALL:
		return in.Builtin != "" && in.RetFloat && x == x86.XMM0
	}
	return false
}

type xr = x86.XReg

// DescribeInjection renders the injection record for logs and tests.
func DescribeInjection(inj *Injection) string {
	return fmt.Sprintf("instr %d, %s bit %d: 0x%x -> 0x%x (activated=%v)",
		inj.InstrIdx, inj.TargetDesc, inj.Bit, inj.OrigVal, inj.FaultyVal, inj.Activated)
}

// Package machine simulates the synthetic x86-like processor. It is the
// low-level execution substrate of the study — the level at which the
// PINFI-style injector observes and corrupts architectural state, standing
// in for a native CPU run under Intel PIN.
//
// The simulator executes the backend's lowered instruction stream against
// the same virtual memory model as the IR interpreter, with architectural
// registers, an RFLAGS register, a real call stack holding return
// addresses in simulated memory (so corrupted pointers can smash them),
// and fake code addresses for call/ret so that a corrupted return address
// is detectable as a crash.
package machine

import (
	"errors"
	"fmt"
	"io"
	"math/rand"

	"hlfi/internal/mem"
	"hlfi/internal/rt"
	"hlfi/internal/x86"
)

// ErrHang is returned when execution exceeds the instruction budget.
var ErrHang = errors.New("instruction budget exceeded (hang)")

// DefaultMaxInstrs is the fallback dynamic-instruction budget.
const DefaultMaxInstrs = 400_000_000

// Injection describes a single-bit flip into the destination register (or
// the dependent flag bits, for compare instructions) of one dynamic
// instruction, and records what happened.
type Injection struct {
	// Candidates marks injectable static instructions by index.
	Candidates []bool
	// TriggerIndex selects the dynamic candidate execution to corrupt.
	TriggerIndex uint64
	Rng          *rand.Rand

	// Results.
	Happened   bool
	Activated  bool
	InstrIdx   int // static instruction index hit
	Bit        int
	OrigVal    uint64
	FaultyVal  uint64
	TargetDesc string
}

// watch tracks the corrupted location until it is read (activated) or
// overwritten (not activated).
type watchKind int

const (
	watchNone watchKind = iota
	watchReg
	watchXmm
	watchFlags
)

// Machine executes one run of a lowered program.
type Machine struct {
	prog *x86.Program
	mem  *mem.Memory
	env  *rt.Env

	regs  [x86.NumRegs]uint64
	xmm   [x86.NumXRegs][2]uint64
	flags uint64
	rip   int

	// MaxInstrs bounds dynamic instructions; exceeded => ErrHang.
	MaxInstrs uint64
	// Profile, when non-nil (length = len(prog.Instrs)), counts executions
	// of each static instruction.
	Profile []uint64
	// Inject, when non-nil, arms a single fault injection.
	Inject *Injection
	// SnapshotEvery, when > 0 together with SnapshotSink, captures a
	// state snapshot roughly every SnapshotEvery retired instructions
	// during Run. Capture is for golden runs only: it is skipped while
	// an injection is armed.
	SnapshotEvery uint64
	// SnapshotSink receives each captured snapshot.
	SnapshotSink func(*Snapshot)
	// Trace, when non-nil, records the fault-propagation skeleton of an
	// injected run (inject site, first tainted load/store/branch).
	Trace *Tracer

	// depFlags[i] is the flag mask the Jcc following instruction i reads,
	// when instruction i is a flag setter followed by a conditional jump
	// (PINFI's Figure 2(a) heuristic); 0 otherwise.
	depFlags []uint64

	executed  uint64
	candCount uint64
	nextSnap  uint64
	haltAddr  uint64
	out       io.Writer

	watch     watchKind
	watchReg_ x86.Reg
	watchXmm_ x86.XReg
	watchMask uint64 // for watchFlags: the corrupted bit
}

// New creates a machine with fresh memory, the globals image installed,
// and the constant pool mapped.
func New(p *x86.Program, layoutImage []byte, layoutBase uint64, out io.Writer) *Machine {
	m := mem.New()
	if len(layoutImage) > 0 {
		m.Map(layoutBase, uint64(len(layoutImage)))
		if err := m.WriteBytes(layoutBase, layoutImage); err != nil {
			panic("machine: install globals: " + err.Error())
		}
	} else {
		m.Map(layoutBase, mem.PageSize)
	}
	if len(p.Rodata) > 0 {
		m.Map(x86.RodataBase, uint64(len(p.Rodata)))
		if err := m.WriteBytes(x86.RodataBase, p.Rodata); err != nil {
			panic("machine: install rodata: " + err.Error())
		}
	}
	mc := &Machine{
		prog:      p,
		mem:       m,
		env:       &rt.Env{Mem: m, Out: out},
		out:       out,
		MaxInstrs: DefaultMaxInstrs,
		depFlags:  DependentFlagMasks(p),
		haltAddr:  mem.CodeBase + uint64(len(p.Instrs))*mem.CodeStride,
	}
	return mc
}

// DependentFlagMasks computes, for each instruction, the mask of flag bits
// read by an immediately following conditional jump — the bits PINFI's
// compare heuristic restricts injection to.
func DependentFlagMasks(p *x86.Program) []uint64 {
	masks := make([]uint64, len(p.Instrs))
	for i, in := range p.Instrs {
		if !in.Op.IsFlagSetter() || i+1 >= len(p.Instrs) {
			continue
		}
		next := p.Instrs[i+1].Op
		if next.IsCondJump() {
			masks[i] = CondFlagMask(next)
		}
	}
	return masks
}

// CondFlagMask returns the flag bits a conditional jump (or SETcc) reads.
func CondFlagMask(op x86.Opcode) uint64 {
	switch op {
	case x86.JE, x86.JNE, x86.SETE, x86.SETNE:
		return x86.FlagZF
	case x86.JL, x86.JGE, x86.SETL, x86.SETGE:
		return x86.FlagSF | x86.FlagOF
	case x86.JLE, x86.JG, x86.SETLE, x86.SETG:
		return x86.FlagZF | x86.FlagSF | x86.FlagOF
	case x86.JB, x86.JAE, x86.SETB, x86.SETAE:
		return x86.FlagCF
	case x86.JBE, x86.JA, x86.SETBE, x86.SETA:
		return x86.FlagCF | x86.FlagZF
	default:
		return 0
	}
}

// Memory exposes the simulated address space (tests, builtins).
func (m *Machine) Memory() *mem.Memory { return m.mem }

// Executed reports retired dynamic instructions.
func (m *Machine) Executed() uint64 { return m.executed }

// Reg reads a general-purpose register (tests).
func (m *Machine) Reg(r x86.Reg) uint64 { return m.regs[r] }

// Run executes the program from its entry point until main returns. The
// exit value is main's i32 result. A *mem.Fault error is a simulated
// crash; ErrHang is a timeout.
func (m *Machine) Run() (int64, error) {
	m.regs[x86.RSP] = mem.StackTop
	if err := m.push(m.haltAddr); err != nil {
		return 0, err
	}
	m.rip = m.prog.Entry
	if m.SnapshotEvery > 0 {
		m.nextSnap = m.SnapshotEvery
	}
	return m.loop()
}

// loop drives execution until main returns; every top-of-loop point is
// a consistent snapshot boundary.
func (m *Machine) loop() (int64, error) {
	for {
		if m.nextSnap > 0 && m.executed >= m.nextSnap && m.SnapshotSink != nil {
			m.captureSnapshot()
		}
		done, err := m.step()
		if err != nil {
			return 0, err
		}
		if done {
			return int64(int32(m.regs[x86.RAX])), nil
		}
	}
}

func (m *Machine) push(v uint64) error {
	m.regs[x86.RSP] -= 8
	return m.mem.Write(m.regs[x86.RSP], 8, v)
}

func (m *Machine) pop() (uint64, error) {
	v, err := m.mem.Read(m.regs[x86.RSP], 8)
	if err != nil {
		return 0, err
	}
	m.regs[x86.RSP] += 8
	return v, nil
}

// effAddr computes a memory operand's effective address.
func (m *Machine) effAddr(o x86.Operand) uint64 {
	addr := uint64(o.Disp)
	if o.Base != x86.RegNone {
		addr += m.regs[o.Base]
	}
	if o.Index != x86.RegNone {
		addr += m.regs[o.Index] * uint64(o.Scale)
	}
	return addr
}

// readOp reads an integer-class source operand at the given width,
// returning the canonical (zero-extended) value.
func (m *Machine) readOp(o x86.Operand, size uint64) (uint64, error) {
	switch o.Kind {
	case x86.OpReg:
		return canonical(m.regs[o.Reg], size), nil
	case x86.OpImm:
		return canonical(uint64(o.Imm), size), nil
	case x86.OpMem:
		return m.mem.Read(m.effAddr(o), size)
	case x86.OpXmm:
		return m.xmm[o.Xmm][0], nil
	default:
		return 0, fmt.Errorf("machine: bad source operand kind %d", o.Kind)
	}
}

// writeIntDst writes an integer result to a register or memory operand.
// Register writes store the canonical zero-extended value (all widths
// zero the upper bits, mirroring the IR's canonical value form).
func (m *Machine) writeIntDst(o x86.Operand, size, v uint64) error {
	switch o.Kind {
	case x86.OpReg:
		m.regs[o.Reg] = canonical(v, size)
		return nil
	case x86.OpMem:
		return m.mem.Write(m.effAddr(o), size, v)
	default:
		return fmt.Errorf("machine: bad int destination kind %d", o.Kind)
	}
}

func canonical(v, size uint64) uint64 {
	if size >= 8 {
		return v
	}
	return v & (1<<(8*size) - 1)
}

func signExtend(v, size uint64) int64 {
	shift := uint(64 - 8*size)
	return int64(v<<shift) >> shift
}

package machine

import (
	"bytes"
	"io"

	"hlfi/internal/mem"
	"hlfi/internal/rt"
	"hlfi/internal/x86"
)

// Snapshot is a resumable copy of a Machine's complete architectural
// state, captured between two instructions of a golden run. It is
// immutable once captured: any number of replay machines can be built
// from it concurrently with NewFromSnapshot.
type Snapshot struct {
	// Executed is the dynamic instruction count at the capture point.
	Executed uint64
	// OutLen is how many bytes the program had written to its output
	// stream at the capture point (captured when the sink is a
	// bytes.Buffer, as in the injectors' golden runs).
	OutLen int
	// Profile is a copy of the per-static-instruction execution counts
	// at the capture point, used to seed candCount for any candidate
	// set — so one snapshot serves every fault category.
	Profile []uint64

	mem   *mem.Memory
	regs  [x86.NumRegs]uint64
	xmm   [x86.NumXRegs][2]uint64
	flags uint64
	rip   int
}

// captureSnapshot records the machine's state at the current loop
// boundary and hands it to the sink. Golden runs only: capture is
// skipped while an injection is armed.
func (m *Machine) captureSnapshot() {
	m.nextSnap = m.executed + m.SnapshotEvery
	if m.Inject != nil {
		return
	}
	s := &Snapshot{
		Executed: m.executed,
		mem:      m.mem.Snapshot(),
		regs:     m.regs,
		xmm:      m.xmm,
		flags:    m.flags,
		rip:      m.rip,
	}
	if m.Profile != nil {
		s.Profile = append([]uint64(nil), m.Profile...)
	}
	if b, ok := m.out.(*bytes.Buffer); ok {
		s.OutLen = b.Len()
	}
	m.SnapshotSink(s)
}

// CandCount reports how many executions of candidate instructions
// precede this snapshot, i.e. the candCount a full run would have
// reached at the capture point. Candidates is indexed by static
// instruction index.
func (s *Snapshot) CandCount(candidates []bool) uint64 {
	var n uint64
	for idx, c := range candidates {
		if c && idx < len(s.Profile) {
			n += s.Profile[idx]
		}
	}
	return n
}

// Bytes is an upper bound on the snapshot's retained memory, used for
// cache budgeting.
func (s *Snapshot) Bytes() uint64 {
	return s.mem.FootprintBytes() + uint64(len(s.Profile))*8 +
		uint64(x86.NumRegs)*8 + uint64(x86.NumXRegs)*16
}

// NewFromSnapshot builds a machine that resumes execution from s,
// writing subsequent program output to out. The caller prefills out
// with the golden output prefix (s.OutLen bytes) when byte-identical
// streams are required. Safe to call concurrently on one snapshot.
func NewFromSnapshot(p *x86.Program, s *Snapshot, out io.Writer) *Machine {
	m := s.mem.Clone()
	mc := &Machine{
		prog:      p,
		mem:       m,
		env:       &rt.Env{Mem: m, Out: out},
		out:       out,
		MaxInstrs: DefaultMaxInstrs,
		depFlags:  DependentFlagMasks(p),
		haltAddr:  mem.CodeBase + uint64(len(p.Instrs))*mem.CodeStride,
		regs:      s.regs,
		xmm:       s.xmm,
		flags:     s.flags,
		rip:       s.rip,
		executed:  s.Executed,
	}
	return mc
}

// SetCandCount seeds the machine's candidate-execution counter, so an
// armed Injection's TriggerIndex means the same dynamic instruction it
// would in a full run. Use Snapshot.CandCount for the baseline.
func (m *Machine) SetCandCount(n uint64) { m.candCount = n }

// Resume continues execution from a snapshot-restored state to
// completion, exactly as the remainder of Run would.
func (m *Machine) Resume() (int64, error) {
	return m.loop()
}

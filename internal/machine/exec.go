package machine

import (
	"fmt"
	"math"

	"hlfi/internal/mem"
	"hlfi/internal/rt"
	"hlfi/internal/x86"
)

// step executes one instruction. It returns done=true when main returns
// to the halt address.
func (m *Machine) step() (bool, error) {
	if m.rip < 0 || m.rip >= len(m.prog.Instrs) {
		return false, &mem.Fault{Kind: mem.FaultBadCodeAddr, Addr: mem.CodeBase + uint64(m.rip)*mem.CodeStride}
	}
	if m.executed >= m.MaxInstrs {
		return false, ErrHang
	}
	idx := m.rip
	in := &m.prog.Instrs[idx]
	m.executed++
	if m.Profile != nil {
		m.Profile[idx]++
	}
	if m.watch != watchNone {
		m.checkActivation(in)
	}
	if m.Trace != nil {
		m.Trace.observe(m, idx, in)
	}

	done, err := m.exec(idx, in)
	if err != nil || done {
		return done, err
	}

	if inj := m.Inject; inj != nil && !inj.Happened && inj.Candidates[idx] {
		if inj.TriggerIndex == m.candCount {
			m.fireInjection(idx, in)
		}
		m.candCount++
	}
	return false, nil
}

// exec dispatches one instruction; m.rip is advanced here.
func (m *Machine) exec(idx int, in *x86.Instr) (bool, error) {
	size := in.OpSize()
	next := m.rip + 1
	switch in.Op {
	case x86.MOV:
		v, err := m.readOp(in.Src, size)
		if err != nil {
			return false, err
		}
		if err := m.writeIntDst(in.Dst, size, v); err != nil {
			return false, err
		}

	case x86.MOVZX:
		v, err := m.readOp(in.Src, size)
		if err != nil {
			return false, err
		}
		m.regs[in.Dst.Reg] = v // already zero-extended

	case x86.MOVSX:
		v, err := m.readOp(in.Src, size)
		if err != nil {
			return false, err
		}
		m.regs[in.Dst.Reg] = uint64(signExtend(v, size))

	case x86.LEA:
		m.regs[in.Dst.Reg] = m.effAddr(in.Src)

	case x86.ADD, x86.SUB, x86.IMUL, x86.AND, x86.OR, x86.XOR,
		x86.SHL, x86.SHR, x86.SAR:
		a, err := m.readOp(in.Dst, size)
		if err != nil {
			return false, err
		}
		b, err := m.readOp(in.Src, size)
		if err != nil {
			return false, err
		}
		v := aluOp(in.Op, a, b, size)
		if err := m.writeIntDst(in.Dst, size, v); err != nil {
			return false, err
		}

	case x86.NEG:
		a, err := m.readOp(in.Dst, size)
		if err != nil {
			return false, err
		}
		if err := m.writeIntDst(in.Dst, size, -a); err != nil {
			return false, err
		}

	case x86.CQO:
		m.regs[x86.RDX] = uint64(int64(m.regs[x86.RAX]) >> 63)

	case x86.IDIV:
		b, err := m.readOp(in.Src, 8)
		if err != nil {
			return false, err
		}
		den := int64(b)
		num := int64(m.regs[x86.RAX])
		// The dividend is RDX:RAX. The backend always emits CQO first, so
		// in fault-free runs RDX is the sign extension of RAX; a corrupted
		// RDX makes the 128-bit dividend exceed the 64-bit quotient range,
		// which raises #DE on real hardware.
		if m.regs[x86.RDX] != uint64(num>>63) {
			return false, &mem.Fault{Kind: mem.FaultDivideByZero}
		}
		if den == 0 || (num == math.MinInt64 && den == -1) {
			return false, &mem.Fault{Kind: mem.FaultDivideByZero}
		}
		m.regs[x86.RAX] = uint64(num / den)
		m.regs[x86.RDX] = uint64(num % den)

	case x86.CMP:
		a, err := m.readOp(in.Dst, size)
		if err != nil {
			return false, err
		}
		b, err := m.readOp(in.Src, size)
		if err != nil {
			return false, err
		}
		m.flags = subFlags(a, b, size)

	case x86.TEST:
		a, err := m.readOp(in.Dst, size)
		if err != nil {
			return false, err
		}
		b, err := m.readOp(in.Src, size)
		if err != nil {
			return false, err
		}
		m.flags = logicFlags(a&b, size)

	case x86.SETE, x86.SETNE, x86.SETL, x86.SETLE, x86.SETG, x86.SETGE,
		x86.SETB, x86.SETBE, x86.SETA, x86.SETAE:
		var v uint64
		if m.cond(in.Op) {
			v = 1
		}
		m.regs[in.Dst.Reg] = v

	case x86.JMP:
		next = in.Dst.Label

	case x86.JE, x86.JNE, x86.JL, x86.JLE, x86.JG, x86.JGE,
		x86.JB, x86.JBE, x86.JA, x86.JAE:
		if m.cond(in.Op) {
			next = in.Dst.Label
		}

	case x86.PUSH:
		v, err := m.readOp(in.Dst, 8)
		if err != nil {
			return false, err
		}
		if err := m.push(v); err != nil {
			return false, err
		}

	case x86.POP:
		v, err := m.pop()
		if err != nil {
			return false, err
		}
		m.regs[in.Dst.Reg] = v

	case x86.CALL:
		if in.Builtin != "" {
			if err := m.callBuiltin(in); err != nil {
				return false, err
			}
			break
		}
		retAddr := mem.CodeBase + uint64(next)*mem.CodeStride
		if err := m.push(retAddr); err != nil {
			return false, err
		}
		next = in.Dst.Label

	case x86.RET:
		addr, err := m.pop()
		if err != nil {
			return false, err
		}
		if addr == m.haltAddr {
			m.rip = len(m.prog.Instrs)
			return true, nil
		}
		if addr < mem.CodeBase || (addr-mem.CodeBase)%mem.CodeStride != 0 {
			return false, &mem.Fault{Kind: mem.FaultBadCodeAddr, Addr: addr}
		}
		target := int((addr - mem.CodeBase) / mem.CodeStride)
		if target >= len(m.prog.Instrs) {
			return false, &mem.Fault{Kind: mem.FaultBadCodeAddr, Addr: addr}
		}
		next = target

	case x86.MOVSD:
		// xmm<-xmm, xmm<-mem, mem<-xmm (low 64 bits).
		if in.Dst.Kind == x86.OpXmm {
			v, err := m.readOp(in.Src, 8)
			if err != nil {
				return false, err
			}
			m.xmm[in.Dst.Xmm][0] = v
		} else {
			if err := m.mem.Write(m.effAddr(in.Dst), 8, m.xmm[in.Src.Xmm][0]); err != nil {
				return false, err
			}
		}

	case x86.ADDSD, x86.SUBSD, x86.MULSD, x86.DIVSD:
		b, err := m.readOp(in.Src, 8)
		if err != nil {
			return false, err
		}
		x := math.Float64frombits(m.xmm[in.Dst.Xmm][0])
		y := math.Float64frombits(b)
		var z float64
		switch in.Op {
		case x86.ADDSD:
			z = x + y
		case x86.SUBSD:
			z = x - y
		case x86.MULSD:
			z = x * y
		case x86.DIVSD:
			z = x / y
		}
		m.xmm[in.Dst.Xmm][0] = math.Float64bits(z)

	case x86.XORPD:
		if in.Dst.Xmm == in.Src.Xmm {
			m.xmm[in.Dst.Xmm] = [2]uint64{}
		} else {
			m.xmm[in.Dst.Xmm][0] ^= m.xmm[in.Src.Xmm][0]
			m.xmm[in.Dst.Xmm][1] ^= m.xmm[in.Src.Xmm][1]
		}

	case x86.UCOMISD:
		b, err := m.readOp(in.Src, 8)
		if err != nil {
			return false, err
		}
		x := math.Float64frombits(m.xmm[in.Dst.Xmm][0])
		y := math.Float64frombits(b)
		m.flags = ucomisdFlags(x, y)

	case x86.CVTSI2SD:
		v, err := m.readOp(in.Src, size)
		if err != nil {
			return false, err
		}
		m.xmm[in.Dst.Xmm][0] = math.Float64bits(float64(signExtend(v, size)))

	case x86.CVTTSD2SI:
		v, err := m.readOp(in.Src, 8)
		if err != nil {
			return false, err
		}
		f := math.Float64frombits(v)
		var iv int64
		if !math.IsNaN(f) {
			iv = int64(f)
		}
		m.regs[in.Dst.Reg] = canonical(uint64(iv), size)

	default:
		return false, fmt.Errorf("machine: unimplemented opcode %s", in.Op)
	}
	m.rip = next
	return false, nil
}

func aluOp(op x86.Opcode, a, b, size uint64) uint64 {
	switch op {
	case x86.ADD:
		return a + b
	case x86.SUB:
		return a - b
	case x86.IMUL:
		return uint64(signExtend(a, size) * signExtend(b, size))
	case x86.AND:
		return a & b
	case x86.OR:
		return a | b
	case x86.XOR:
		return a ^ b
	case x86.SHL:
		return a << (b & 63)
	case x86.SHR:
		return a >> (b & 63)
	case x86.SAR:
		return uint64(signExtend(a, size) >> (b & 63))
	default:
		return 0
	}
}

// subFlags computes RFLAGS for CMP (a - b) at the given width.
func subFlags(a, b, size uint64) uint64 {
	r := canonical(a-b, size)
	var f uint64
	if r == 0 {
		f |= x86.FlagZF
	}
	signBit := uint64(1) << (8*size - 1)
	if r&signBit != 0 {
		f |= x86.FlagSF
	}
	if a < b { // operands canonical => unsigned borrow
		f |= x86.FlagCF
	}
	if (a^b)&(a^r)&signBit != 0 {
		f |= x86.FlagOF
	}
	if parity(byte(r)) {
		f |= x86.FlagPF
	}
	return f
}

// logicFlags computes RFLAGS for TEST.
func logicFlags(r, size uint64) uint64 {
	r = canonical(r, size)
	var f uint64
	if r == 0 {
		f |= x86.FlagZF
	}
	if r&(1<<(8*size-1)) != 0 {
		f |= x86.FlagSF
	}
	if parity(byte(r)) {
		f |= x86.FlagPF
	}
	return f
}

// ucomisdFlags implements the x86 unordered double compare flag recipe.
func ucomisdFlags(x, y float64) uint64 {
	switch {
	case math.IsNaN(x) || math.IsNaN(y):
		return x86.FlagZF | x86.FlagPF | x86.FlagCF
	case x > y:
		return 0
	case x < y:
		return x86.FlagCF
	default:
		return x86.FlagZF
	}
}

func parity(b byte) bool {
	b ^= b >> 4
	b ^= b >> 2
	b ^= b >> 1
	return b&1 == 0
}

// cond evaluates a Jcc/SETcc condition against RFLAGS.
func (m *Machine) cond(op x86.Opcode) bool {
	return condHolds(op, m.flags)
}

func condHolds(op x86.Opcode, flags uint64) bool {
	zf := flags&x86.FlagZF != 0
	sf := flags&x86.FlagSF != 0
	of := flags&x86.FlagOF != 0
	cf := flags&x86.FlagCF != 0
	switch op {
	case x86.JE, x86.SETE:
		return zf
	case x86.JNE, x86.SETNE:
		return !zf
	case x86.JL, x86.SETL:
		return sf != of
	case x86.JLE, x86.SETLE:
		return zf || sf != of
	case x86.JG, x86.SETG:
		return !zf && sf == of
	case x86.JGE, x86.SETGE:
		return sf == of
	case x86.JB, x86.SETB:
		return cf
	case x86.JBE, x86.SETBE:
		return cf || zf
	case x86.JA, x86.SETA:
		return !cf && !zf
	case x86.JAE, x86.SETAE:
		return !cf
	default:
		return false
	}
}

// builtin argument registers per SysV.
var (
	intArgRegs = x86.IntArgRegs
	fltArgRegs = x86.FloatArgRegs
)

func (m *Machine) callBuiltin(in *x86.Instr) error {
	args := make([]uint64, len(in.ArgClasses))
	ii, fi := 0, 0
	for k := 0; k < len(in.ArgClasses); k++ {
		if in.ArgClasses[k] == 'd' {
			args[k] = m.xmm[fltArgRegs[fi]][0]
			fi++
		} else {
			args[k] = m.regs[intArgRegs[ii]]
			ii++
		}
	}
	ret, err := rt.Call(m.env, in.Builtin, args)
	if err != nil {
		return err
	}
	if in.RetFloat {
		m.xmm[x86.XMM0][0] = ret
	} else {
		m.regs[x86.RAX] = ret
	}
	return nil
}

package machine

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"testing"

	"hlfi/internal/mem"
	"hlfi/internal/x86"
)

// asm assembles a hand-written program whose entry is instruction 0.
func asm(instrs ...x86.Instr) *x86.Program {
	return &x86.Program{Instrs: instrs, Entry: 0, FuncAt: map[string]int{"main": 0}}
}

// runProg runs a program to completion and returns the machine.
func runProg(t *testing.T, p *x86.Program) (*Machine, int64) {
	t.Helper()
	var out bytes.Buffer
	m := New(p, nil, mem.GlobalsBase, &out)
	rc, err := m.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return m, rc
}

func TestALUSemantics(t *testing.T) {
	cases := []struct {
		name string
		op   x86.Opcode
		a, b int64
		size uint8
		want uint64
	}{
		{"add64", x86.ADD, 7, 3, 8, 10},
		{"sub32-wrap", x86.SUB, 0, 1, 4, 0xFFFFFFFF},
		{"imul32", x86.IMUL, -3, 7, 4, uint64(uint32(0xFFFFFFEB))}, // -21 canonical
		{"and", x86.AND, 6, 3, 8, 2},
		{"or", x86.OR, 6, 3, 8, 7},
		{"xor", x86.XOR, 6, 3, 8, 5},
		{"shl", x86.SHL, 1, 10, 8, 1024},
		{"shr32", x86.SHR, -8, 1, 4, 0x7FFFFFFC},
		{"sar32", x86.SAR, -8, 1, 4, uint64(uint32(0xFFFFFFFC))},
	}
	for _, c := range cases {
		p := asm(
			x86.Instr{Op: x86.MOV, Dst: x86.R(x86.RCX), Src: x86.Imm(c.a), Size: c.size},
			x86.Instr{Op: c.op, Dst: x86.R(x86.RCX), Src: x86.Imm(c.b), Size: c.size},
			x86.Instr{Op: x86.MOV, Dst: x86.R(x86.RAX), Src: x86.R(x86.RCX), Size: 8},
			x86.Instr{Op: x86.RET},
		)
		m, _ := runProg(t, p)
		if got := m.Reg(x86.RAX); got != c.want {
			t.Errorf("%s: got %x want %x", c.name, got, c.want)
		}
	}
}

func TestDivide(t *testing.T) {
	p := asm(
		x86.Instr{Op: x86.MOV, Dst: x86.R(x86.RAX), Src: x86.Imm(-17), Size: 8},
		x86.Instr{Op: x86.MOV, Dst: x86.R(x86.R11), Src: x86.Imm(5), Size: 8},
		x86.Instr{Op: x86.CQO, Dst: x86.R(x86.RDX)},
		x86.Instr{Op: x86.IDIV, Dst: x86.R(x86.RAX), Src: x86.R(x86.R11), Size: 8},
		x86.Instr{Op: x86.RET},
	)
	m, _ := runProg(t, p)
	if int64(m.Reg(x86.RAX)) != -3 || int64(m.Reg(x86.RDX)) != -2 {
		t.Fatalf("idiv: q=%d r=%d", int64(m.Reg(x86.RAX)), int64(m.Reg(x86.RDX)))
	}

	bad := asm(
		x86.Instr{Op: x86.MOV, Dst: x86.R(x86.RAX), Src: x86.Imm(1), Size: 8},
		x86.Instr{Op: x86.MOV, Dst: x86.R(x86.R11), Src: x86.Imm(0), Size: 8},
		x86.Instr{Op: x86.CQO, Dst: x86.R(x86.RDX)},
		x86.Instr{Op: x86.IDIV, Dst: x86.R(x86.RAX), Src: x86.R(x86.R11), Size: 8},
		x86.Instr{Op: x86.RET},
	)
	var out bytes.Buffer
	m2 := New(bad, nil, mem.GlobalsBase, &out)
	_, err := m2.Run()
	var f *mem.Fault
	if !errors.As(err, &f) || f.Kind != mem.FaultDivideByZero {
		t.Fatalf("want divide fault, got %v", err)
	}
}

func TestFlagsAndJcc(t *testing.T) {
	// if (3 < 5) rax = 1 else rax = 2
	p := asm(
		x86.Instr{Op: x86.MOV, Dst: x86.R(x86.RCX), Src: x86.Imm(3), Size: 8},
		x86.Instr{Op: x86.CMP, Dst: x86.R(x86.RCX), Src: x86.Imm(5), Size: 8},
		x86.Instr{Op: x86.JL, Dst: x86.Label(5)},
		x86.Instr{Op: x86.MOV, Dst: x86.R(x86.RAX), Src: x86.Imm(2), Size: 8},
		x86.Instr{Op: x86.RET},
		x86.Instr{Op: x86.MOV, Dst: x86.R(x86.RAX), Src: x86.Imm(1), Size: 8},
		x86.Instr{Op: x86.RET},
	)
	_, rc := runProg(t, p)
	if rc != 1 {
		t.Fatalf("jl taken branch: rc=%d", rc)
	}
}

func TestSignedVsUnsignedCompare(t *testing.T) {
	// -1 vs 1: signed less (JL taken), unsigned greater (JA taken).
	build := func(jcc x86.Opcode) *x86.Program {
		return asm(
			x86.Instr{Op: x86.MOV, Dst: x86.R(x86.RCX), Src: x86.Imm(-1), Size: 8},
			x86.Instr{Op: x86.CMP, Dst: x86.R(x86.RCX), Src: x86.Imm(1), Size: 8},
			x86.Instr{Op: jcc, Dst: x86.Label(5)},
			x86.Instr{Op: x86.MOV, Dst: x86.R(x86.RAX), Src: x86.Imm(0), Size: 8},
			x86.Instr{Op: x86.RET},
			x86.Instr{Op: x86.MOV, Dst: x86.R(x86.RAX), Src: x86.Imm(1), Size: 8},
			x86.Instr{Op: x86.RET},
		)
	}
	if _, rc := runProg(t, build(x86.JL)); rc != 1 {
		t.Error("JL on -1 vs 1 must be taken")
	}
	if _, rc := runProg(t, build(x86.JA)); rc != 1 {
		t.Error("JA on -1 vs 1 must be taken (unsigned)")
	}
	if _, rc := runProg(t, build(x86.JE)); rc != 0 {
		t.Error("JE on -1 vs 1 must not be taken")
	}
}

func TestSETcc(t *testing.T) {
	p := asm(
		x86.Instr{Op: x86.MOV, Dst: x86.R(x86.RCX), Src: x86.Imm(9), Size: 8},
		x86.Instr{Op: x86.CMP, Dst: x86.R(x86.RCX), Src: x86.Imm(9), Size: 8},
		x86.Instr{Op: x86.SETE, Dst: x86.R(x86.RAX), Size: 1},
		x86.Instr{Op: x86.RET},
	)
	if _, rc := runProg(t, p); rc != 1 {
		t.Fatalf("sete: %d", rc)
	}
}

func TestPushPopCallRet(t *testing.T) {
	// main: mov rcx,5; call f(7); rax += rcx restored? Use push/pop of rcx
	// around a call to verify the stack and return address machinery.
	p := asm(
		/*0*/ x86.Instr{Op: x86.MOV, Dst: x86.R(x86.RCX), Src: x86.Imm(5), Size: 8},
		/*1*/ x86.Instr{Op: x86.PUSH, Dst: x86.R(x86.RCX)},
		/*2*/ x86.Instr{Op: x86.CALL, Dst: x86.Label(7)},
		/*3*/ x86.Instr{Op: x86.POP, Dst: x86.R(x86.RCX)},
		/*4*/ x86.Instr{Op: x86.ADD, Dst: x86.R(x86.RAX), Src: x86.R(x86.RCX), Size: 8},
		/*5*/ x86.Instr{Op: x86.RET},
		/*6*/ x86.Instr{Op: x86.MOV, Dst: x86.R(x86.RAX), Src: x86.Imm(-99), Size: 8}, // dead
		/*7*/ x86.Instr{Op: x86.MOV, Dst: x86.R(x86.RAX), Src: x86.Imm(37), Size: 8}, // f:
		/*8*/ x86.Instr{Op: x86.MOV, Dst: x86.R(x86.RCX), Src: x86.Imm(0), Size: 8}, // clobber rcx
		/*9*/ x86.Instr{Op: x86.RET},
	)
	if _, rc := runProg(t, p); rc != 42 {
		t.Fatalf("call/ret: rc=%d", rc)
	}
}

func TestCorruptedReturnAddressCrashes(t *testing.T) {
	// Smash the saved return address, then RET.
	p := asm(
		x86.Instr{Op: x86.PUSH, Dst: x86.Imm(0x12345)},
		x86.Instr{Op: x86.RET},
	)
	var out bytes.Buffer
	m := New(p, nil, mem.GlobalsBase, &out)
	_, err := m.Run()
	var f *mem.Fault
	if !errors.As(err, &f) || f.Kind != mem.FaultBadCodeAddr {
		t.Fatalf("want bad code address, got %v", err)
	}
}

func TestSSEDoubleOps(t *testing.T) {
	rod := func(v float64) int64 { return int64(x86.RodataBase) }
	_ = rod
	p := asm(
		x86.Instr{Op: x86.MOVSD, Dst: x86.X(x86.XMM1), Src: x86.Abs(int64(x86.RodataBase))},
		x86.Instr{Op: x86.MOVSD, Dst: x86.X(x86.XMM2), Src: x86.Abs(int64(x86.RodataBase) + 8)},
		x86.Instr{Op: x86.MULSD, Dst: x86.X(x86.XMM1), Src: x86.X(x86.XMM2)},
		x86.Instr{Op: x86.ADDSD, Dst: x86.X(x86.XMM1), Src: x86.X(x86.XMM2)},
		x86.Instr{Op: x86.CVTTSD2SI, Dst: x86.R(x86.RAX), Src: x86.X(x86.XMM1), Size: 8},
		x86.Instr{Op: x86.RET},
	)
	var rodata [16]byte
	writeF64 := func(off int, v float64) {
		bits := math.Float64bits(v)
		for i := 0; i < 8; i++ {
			rodata[off+i] = byte(bits >> (8 * i))
		}
	}
	writeF64(0, 2.5)
	writeF64(8, 4.0)
	p.Rodata = rodata[:]
	if _, rc := runProg(t, p); rc != 14 { // 2.5*4 + 4 = 14
		t.Fatalf("sse: rc=%d", rc)
	}
}

func TestUCOMISDFlagRecipe(t *testing.T) {
	if f := ucomisdFlags(1, 2); f != x86.FlagCF {
		t.Errorf("1<2 flags: %x", f)
	}
	if f := ucomisdFlags(2, 1); f != 0 {
		t.Errorf("2>1 flags: %x", f)
	}
	if f := ucomisdFlags(2, 2); f != x86.FlagZF {
		t.Errorf("eq flags: %x", f)
	}
	nan := math.NaN()
	if f := ucomisdFlags(nan, 1); f != x86.FlagZF|x86.FlagPF|x86.FlagCF {
		t.Errorf("nan flags: %x", f)
	}
}

func TestDependentFlagMasks(t *testing.T) {
	p := asm(
		x86.Instr{Op: x86.CMP, Dst: x86.R(x86.RCX), Src: x86.Imm(0), Size: 8},
		x86.Instr{Op: x86.JL, Dst: x86.Label(3)},
		x86.Instr{Op: x86.CMP, Dst: x86.R(x86.RCX), Src: x86.Imm(1), Size: 8}, // no Jcc after
		x86.Instr{Op: x86.RET},
	)
	masks := DependentFlagMasks(p)
	if masks[0] != x86.FlagSF|x86.FlagOF {
		t.Errorf("jl deps: %x (the paper's Figure 2a example reads SF/OF)", masks[0])
	}
	if masks[2] != 0 {
		t.Errorf("cmp without jcc must have no mask: %x", masks[2])
	}
}

func TestCondFlagMaskTable(t *testing.T) {
	cases := map[x86.Opcode]uint64{
		x86.JE:  x86.FlagZF,
		x86.JNE: x86.FlagZF,
		x86.JL:  x86.FlagSF | x86.FlagOF,
		x86.JLE: x86.FlagZF | x86.FlagSF | x86.FlagOF,
		x86.JB:  x86.FlagCF,
		x86.JA:  x86.FlagCF | x86.FlagZF,
	}
	for op, want := range cases {
		if got := CondFlagMask(op); got != want {
			t.Errorf("%s mask = %x, want %x", op, got, want)
		}
	}
}

// TestFlagInjectionFlipsBranch verifies PINFI's compare heuristic: a flip
// of a dependent flag bit inverts the branch decision.
func TestFlagInjectionFlipsBranch(t *testing.T) {
	p := asm(
		/*0*/ x86.Instr{Op: x86.MOV, Dst: x86.R(x86.RCX), Src: x86.Imm(3), Size: 8},
		/*1*/ x86.Instr{Op: x86.CMP, Dst: x86.R(x86.RCX), Src: x86.Imm(3), Size: 8},
		/*2*/ x86.Instr{Op: x86.JE, Dst: x86.Label(5)},
		/*3*/ x86.Instr{Op: x86.MOV, Dst: x86.R(x86.RAX), Src: x86.Imm(0), Size: 8},
		/*4*/ x86.Instr{Op: x86.RET},
		/*5*/ x86.Instr{Op: x86.MOV, Dst: x86.R(x86.RAX), Src: x86.Imm(1), Size: 8},
		/*6*/ x86.Instr{Op: x86.RET},
	)
	cands := make([]bool, len(p.Instrs))
	cands[1] = true // the CMP
	var out bytes.Buffer
	m := New(p, nil, mem.GlobalsBase, &out)
	inj := &Injection{Candidates: cands, TriggerIndex: 0, Rng: rand.New(rand.NewSource(4))}
	m.Inject = inj
	rc, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !inj.Happened || inj.TargetDesc != "rflags" {
		t.Fatalf("flag injection did not fire: %+v", inj)
	}
	if inj.Bit != 6 { // JE depends only on ZF (bit 6)
		t.Fatalf("flipped bit %d, want ZF(6)", inj.Bit)
	}
	if rc != 0 {
		t.Fatalf("ZF flip must invert JE: rc=%d", rc)
	}
	if !inj.Activated {
		t.Fatal("flag read by JE must count as activated")
	}
}

// TestRegisterInjectionActivation: overwrite-before-read is not activated;
// read is.
func TestRegisterInjectionActivation(t *testing.T) {
	build := func() *x86.Program {
		return asm(
			/*0*/ x86.Instr{Op: x86.MOV, Dst: x86.R(x86.RCX), Src: x86.Imm(7), Size: 8},
			/*1*/ x86.Instr{Op: x86.MOV, Dst: x86.R(x86.RCX), Src: x86.Imm(9), Size: 8}, // overwrite
			/*2*/ x86.Instr{Op: x86.MOV, Dst: x86.R(x86.RAX), Src: x86.R(x86.RCX), Size: 8},
			/*3*/ x86.Instr{Op: x86.RET},
		)
	}
	p := build()
	cands := make([]bool, len(p.Instrs))
	cands[0] = true
	var out bytes.Buffer
	m := New(p, nil, mem.GlobalsBase, &out)
	inj := &Injection{Candidates: cands, TriggerIndex: 0, Rng: rand.New(rand.NewSource(1))}
	m.Inject = inj
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if inj.Activated {
		t.Fatal("overwritten-before-read must not be activated")
	}

	p2 := build()
	cands2 := make([]bool, len(p2.Instrs))
	cands2[1] = true // corrupt the second MOV; instruction 2 reads it
	m2 := New(p2, nil, mem.GlobalsBase, &out)
	inj2 := &Injection{Candidates: cands2, TriggerIndex: 0, Rng: rand.New(rand.NewSource(1))}
	m2.Inject = inj2
	if _, err := m2.Run(); err != nil {
		t.Fatal(err)
	}
	if !inj2.Activated {
		t.Fatal("read register must be activated")
	}
}

// TestXMMInjectionLow64 verifies the double-precision pruning heuristic
// (paper Figure 2b): XMM injections stay in the low 64 bits.
func TestXMMInjectionLow64(t *testing.T) {
	var rodata [8]byte
	bits := math.Float64bits(1.0)
	for i := 0; i < 8; i++ {
		rodata[i] = byte(bits >> (8 * i))
	}
	for seed := int64(0); seed < 20; seed++ {
		p := asm(
			x86.Instr{Op: x86.MOVSD, Dst: x86.X(x86.XMM3), Src: x86.Abs(int64(x86.RodataBase))},
			x86.Instr{Op: x86.ADDSD, Dst: x86.X(x86.XMM3), Src: x86.X(x86.XMM3)},
			x86.Instr{Op: x86.CVTTSD2SI, Dst: x86.R(x86.RAX), Src: x86.X(x86.XMM3), Size: 8},
			x86.Instr{Op: x86.RET},
		)
		p.Rodata = rodata[:]
		cands := make([]bool, len(p.Instrs))
		cands[1] = true
		var out bytes.Buffer
		m := New(p, nil, mem.GlobalsBase, &out)
		inj := &Injection{Candidates: cands, TriggerIndex: 0, Rng: rand.New(rand.NewSource(seed))}
		m.Inject = inj
		_, _ = m.Run()
		if !inj.Happened {
			t.Fatal("no injection")
		}
		if inj.Bit >= 64 {
			t.Fatalf("XMM injection outside low 64 bits: %d", inj.Bit)
		}
	}
}

func TestHang(t *testing.T) {
	p := asm(x86.Instr{Op: x86.JMP, Dst: x86.Label(0)})
	var out bytes.Buffer
	m := New(p, nil, mem.GlobalsBase, &out)
	m.MaxInstrs = 5000
	if _, err := m.Run(); err != ErrHang {
		t.Fatalf("want ErrHang, got %v", err)
	}
}

func TestBuiltinCall(t *testing.T) {
	p := asm(
		x86.Instr{Op: x86.MOV, Dst: x86.R(x86.RDI), Src: x86.Imm(-123), Size: 8},
		x86.Instr{Op: x86.CALL, Builtin: "print_int", ArgClasses: "i"},
		x86.Instr{Op: x86.MOV, Dst: x86.R(x86.RAX), Src: x86.Imm(0), Size: 8},
		x86.Instr{Op: x86.RET},
	)
	var out bytes.Buffer
	m := New(p, nil, mem.GlobalsBase, &out)
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if out.String() != "-123" {
		t.Fatalf("builtin output: %q", out.String())
	}
}

func TestMemoryOperandAddressing(t *testing.T) {
	// Write 0x55 to globals+8*3 via [base + index*8 + disp].
	p := asm(
		x86.Instr{Op: x86.MOV, Dst: x86.R(x86.RCX), Src: x86.Imm(int64(mem.GlobalsBase)), Size: 8},
		x86.Instr{Op: x86.MOV, Dst: x86.R(x86.RSI), Src: x86.Imm(2), Size: 8},
		x86.Instr{Op: x86.MOV, Dst: x86.Mem(x86.RCX, x86.RSI, 8, 8), Src: x86.Imm(0x55), Size: 8},
		x86.Instr{Op: x86.MOV, Dst: x86.R(x86.RAX), Src: x86.Mem(x86.RCX, x86.RegNone, 1, 24), Size: 8},
		x86.Instr{Op: x86.RET},
	)
	var out bytes.Buffer
	m := New(p, nil, mem.GlobalsBase, &out)
	rc, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rc != 0x55 {
		t.Fatalf("addressing: rc=%x", rc)
	}
}

func TestWideningMovs(t *testing.T) {
	// MOVZX/MOVSX at each width, against a byte pattern in memory.
	var rodata [8]byte
	rodata[0] = 0xFE // -2 as i8
	rodata[1] = 0xFF
	rodata[2] = 0x80 // with byte 3 forms 0xFF80 = -128 as i16
	rodata[3] = 0xFF
	rodata[4] = 0x00
	p := asm(
		x86.Instr{Op: x86.MOVZX, Dst: x86.R(x86.RCX), Src: x86.Abs(int64(x86.RodataBase)), Size: 1},
		x86.Instr{Op: x86.MOVSX, Dst: x86.R(x86.RSI), Src: x86.Abs(int64(x86.RodataBase)), Size: 1},
		x86.Instr{Op: x86.MOVZX, Dst: x86.R(x86.RDI), Src: x86.Abs(int64(x86.RodataBase) + 2), Size: 2},
		x86.Instr{Op: x86.MOVSX, Dst: x86.R(x86.R8), Src: x86.Abs(int64(x86.RodataBase) + 2), Size: 2},
		x86.Instr{Op: x86.RET},
	)
	p.Rodata = rodata[:]
	m, _ := runProg(t, p)
	if m.Reg(x86.RCX) != 0xFE {
		t.Errorf("movzx8: %x", m.Reg(x86.RCX))
	}
	if int64(m.Reg(x86.RSI)) != -2 {
		t.Errorf("movsx8: %d", int64(m.Reg(x86.RSI)))
	}
	if m.Reg(x86.RDI) != 0xFF80 {
		t.Errorf("movzx16: %x", m.Reg(x86.RDI))
	}
	if int64(m.Reg(x86.R8)) != -128 {
		t.Errorf("movsx16: %d", int64(m.Reg(x86.R8)))
	}
}

func TestNegAndXorpd(t *testing.T) {
	p := asm(
		x86.Instr{Op: x86.MOV, Dst: x86.R(x86.RAX), Src: x86.Imm(42), Size: 8},
		x86.Instr{Op: x86.NEG, Dst: x86.R(x86.RAX), Size: 8},
		x86.Instr{Op: x86.XORPD, Dst: x86.X(x86.XMM5), Src: x86.X(x86.XMM5)},
		x86.Instr{Op: x86.CVTTSD2SI, Dst: x86.R(x86.RCX), Src: x86.X(x86.XMM5), Size: 8},
		x86.Instr{Op: x86.ADD, Dst: x86.R(x86.RAX), Src: x86.R(x86.RCX), Size: 8},
		x86.Instr{Op: x86.RET},
	)
	if _, rc := runProg(t, p); rc != -42 {
		t.Fatalf("neg/xorpd: %d", rc)
	}
}

func TestRIPOutOfRangeCrashes(t *testing.T) {
	p := asm(
		x86.Instr{Op: x86.JMP, Dst: x86.Label(99)},
	)
	var out bytes.Buffer
	m := New(p, nil, mem.GlobalsBase, &out)
	_, err := m.Run()
	var f *mem.Fault
	if !errors.As(err, &f) || f.Kind != mem.FaultBadCodeAddr {
		t.Fatalf("jump out of code: %v", err)
	}
}

func TestProfileCountsMachine(t *testing.T) {
	p := asm(
		x86.Instr{Op: x86.MOV, Dst: x86.R(x86.RCX), Src: x86.Imm(0), Size: 8},
		x86.Instr{Op: x86.ADD, Dst: x86.R(x86.RCX), Src: x86.Imm(1), Size: 8},
		x86.Instr{Op: x86.CMP, Dst: x86.R(x86.RCX), Src: x86.Imm(5), Size: 8},
		x86.Instr{Op: x86.JL, Dst: x86.Label(1)},
		x86.Instr{Op: x86.RET},
	)
	var out bytes.Buffer
	m := New(p, nil, mem.GlobalsBase, &out)
	prof := make([]uint64, len(p.Instrs))
	m.Profile = prof
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if prof[0] != 1 || prof[1] != 5 || prof[2] != 5 || prof[3] != 5 || prof[4] != 1 {
		t.Fatalf("profile: %v", prof)
	}
	var sum uint64
	for _, c := range prof {
		sum += c
	}
	if sum != m.Executed() {
		t.Fatalf("profile sum %d != executed %d", sum, m.Executed())
	}
}

// TestCorruptedCQOResultCrashes: a fault in RDX between CQO and IDIV makes
// the 128-bit dividend exceed the quotient range — #DE on real hardware.
func TestCorruptedCQOResultCrashes(t *testing.T) {
	p := asm(
		/*0*/ x86.Instr{Op: x86.MOV, Dst: x86.R(x86.RAX), Src: x86.Imm(100), Size: 8},
		/*1*/ x86.Instr{Op: x86.MOV, Dst: x86.R(x86.R11), Src: x86.Imm(7), Size: 8},
		/*2*/ x86.Instr{Op: x86.CQO, Dst: x86.R(x86.RDX)},
		/*3*/ x86.Instr{Op: x86.IDIV, Dst: x86.R(x86.RAX), Src: x86.R(x86.R11), Size: 8},
		/*4*/ x86.Instr{Op: x86.RET},
	)
	// Inject into the CQO result (RDX).
	cands := make([]bool, len(p.Instrs))
	cands[2] = true
	var out bytes.Buffer
	m := New(p, nil, mem.GlobalsBase, &out)
	inj := &Injection{Candidates: cands, TriggerIndex: 0, Rng: rand.New(rand.NewSource(2))}
	m.Inject = inj
	_, err := m.Run()
	var f *mem.Fault
	if !errors.As(err, &f) || f.Kind != mem.FaultDivideByZero {
		t.Fatalf("corrupted CQO dividend should raise #DE, got %v", err)
	}
	if !inj.Activated {
		t.Fatal("IDIV reads RDX: the fault is activated")
	}
}

// TestBuiltinFloatCall marshals a double argument into XMM0 and reads the
// double result back from XMM0.
func TestBuiltinFloatCall(t *testing.T) {
	var rodata [8]byte
	bits := math.Float64bits(9.0)
	for i := 0; i < 8; i++ {
		rodata[i] = byte(bits >> (8 * i))
	}
	p := asm(
		x86.Instr{Op: x86.MOVSD, Dst: x86.X(x86.XMM0), Src: x86.Abs(int64(x86.RodataBase))},
		x86.Instr{Op: x86.CALL, Builtin: "sqrt", ArgClasses: "d", RetFloat: true},
		x86.Instr{Op: x86.CVTTSD2SI, Dst: x86.R(x86.RAX), Src: x86.X(x86.XMM0), Size: 8},
		x86.Instr{Op: x86.RET},
	)
	p.Rodata = rodata[:]
	if _, rc := runProg(t, p); rc != 3 {
		t.Fatalf("sqrt(9): %d", rc)
	}
}

// TestBuiltinMixedArgs checks pow(double,double) and malloc(int-class).
func TestBuiltinMixedArgs(t *testing.T) {
	var rodata [16]byte
	put := func(off int, v float64) {
		b := math.Float64bits(v)
		for i := 0; i < 8; i++ {
			rodata[off+i] = byte(b >> (8 * i))
		}
	}
	put(0, 2.0)
	put(8, 10.0)
	p := asm(
		x86.Instr{Op: x86.MOVSD, Dst: x86.X(x86.XMM0), Src: x86.Abs(int64(x86.RodataBase))},
		x86.Instr{Op: x86.MOVSD, Dst: x86.X(x86.XMM1), Src: x86.Abs(int64(x86.RodataBase) + 8)},
		x86.Instr{Op: x86.CALL, Builtin: "pow", ArgClasses: "dd", RetFloat: true},
		x86.Instr{Op: x86.CVTTSD2SI, Dst: x86.R(x86.RCX), Src: x86.X(x86.XMM0), Size: 8},
		// malloc(64): integer arg in RDI, pointer result in RAX.
		x86.Instr{Op: x86.MOV, Dst: x86.R(x86.RDI), Src: x86.Imm(64), Size: 8},
		x86.Instr{Op: x86.CALL, Builtin: "malloc", ArgClasses: "i"},
		// Store through the fresh allocation to prove it is mapped.
		x86.Instr{Op: x86.MOV, Dst: x86.Mem(x86.RAX, x86.RegNone, 1, 0), Src: x86.R(x86.RCX), Size: 8},
		x86.Instr{Op: x86.MOV, Dst: x86.R(x86.RAX), Src: x86.Mem(x86.RAX, x86.RegNone, 1, 0), Size: 8},
		x86.Instr{Op: x86.RET},
	)
	p.Rodata = rodata[:]
	if _, rc := runProg(t, p); rc != 1024 {
		t.Fatalf("pow/malloc chain: %d", rc)
	}
}

// TestInjectionWidthRespectsOperandSize: faults in a 32-bit operation's
// destination register stay within the low 32 bits; full-register writers
// (LEA/POP/MOVZX) use all 64.
func TestInjectionWidthRespectsOperandSize(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		p := asm(
			x86.Instr{Op: x86.MOV, Dst: x86.R(x86.RCX), Src: x86.Imm(5), Size: 8},
			x86.Instr{Op: x86.ADD, Dst: x86.R(x86.RCX), Src: x86.Imm(1), Size: 4}, // 32-bit op
			x86.Instr{Op: x86.MOV, Dst: x86.R(x86.RAX), Src: x86.R(x86.RCX), Size: 8},
			x86.Instr{Op: x86.RET},
		)
		cands := make([]bool, len(p.Instrs))
		cands[1] = true
		var out bytes.Buffer
		m := New(p, nil, mem.GlobalsBase, &out)
		inj := &Injection{Candidates: cands, TriggerIndex: 0, Rng: rand.New(rand.NewSource(seed))}
		m.Inject = inj
		if _, err := m.Run(); err != nil {
			t.Fatal(err)
		}
		if !inj.Happened || inj.Bit >= 32 {
			t.Fatalf("32-bit op injected bit %d (happened=%v)", inj.Bit, inj.Happened)
		}
	}
	// LEA writes the full register: bits up to 63 are possible. Find one.
	seen64 := false
	for seed := int64(0); seed < 60 && !seen64; seed++ {
		p := asm(
			x86.Instr{Op: x86.MOV, Dst: x86.R(x86.RCX), Src: x86.Imm(int64(mem.GlobalsBase)), Size: 8},
			x86.Instr{Op: x86.LEA, Dst: x86.R(x86.RSI), Src: x86.Mem(x86.RCX, x86.RegNone, 1, 8)},
			x86.Instr{Op: x86.MOV, Dst: x86.R(x86.RAX), Src: x86.R(x86.RSI), Size: 8},
			x86.Instr{Op: x86.RET},
		)
		cands := make([]bool, len(p.Instrs))
		cands[1] = true
		var out bytes.Buffer
		m := New(p, nil, mem.GlobalsBase, &out)
		inj := &Injection{Candidates: cands, TriggerIndex: 0, Rng: rand.New(rand.NewSource(seed))}
		m.Inject = inj
		_, _ = m.Run()
		if inj.Happened && inj.Bit >= 32 {
			seen64 = true
		}
	}
	if !seen64 {
		t.Fatal("LEA injections never touched the high 32 bits")
	}
}

package ir

import "testing"

// buildMaxProgram creates:
//
//	max(a,b) { if a > b return a; return b; }   (tiny leaf, inlinable)
//	big(n)   { 20+ instructions }               (too big)
//	caller() { return max(3, 4) + big(2); }
func buildMaxProgram(t *testing.T) *Module {
	t.Helper()
	m := NewModule("inl")

	maxFn := m.NewFunc("max", FuncType(I32, I32, I32))
	entry := maxFn.NewBlock("entry")
	aBlk := maxFn.NewBlock("a")
	bBlk := maxFn.NewBlock("b")
	bu := NewBuilder(entry)
	c := bu.ICmp(PredGT, maxFn.Params[0], maxFn.Params[1])
	bu.CondBr(c, aBlk, bBlk)
	bu.SetBlock(aBlk)
	bu.Ret(maxFn.Params[0])
	bu.SetBlock(bBlk)
	bu.Ret(maxFn.Params[1])

	big := m.NewFunc("big", FuncType(I32, I32))
	bb := big.NewBlock("entry")
	bu = NewBuilder(bb)
	v := Value(big.Params[0])
	for i := 0; i < 20; i++ {
		v = bu.Binary(OpAdd, v, ConstInt(I32, int64(i)))
	}
	bu.Ret(v)

	caller := m.NewFunc("caller", FuncType(I32))
	cb := caller.NewBlock("entry")
	bu = NewBuilder(cb)
	mx := bu.Call(maxFn, ConstInt(I32, 3), ConstInt(I32, 4))
	bg := bu.Call(big, ConstInt(I32, 2))
	sum := bu.Binary(OpAdd, mx, bg)
	bu.Ret(sum)

	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
	return m
}

func callCount(f *Function) int {
	n := 0
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == OpCall {
				n++
			}
		}
	}
	return n
}

func TestInlineTinyFunctions(t *testing.T) {
	m := buildMaxProgram(t)
	InlineTinyFunctions(m)
	if err := m.Verify(); err != nil {
		t.Fatalf("post-inline IR invalid: %v\n%s", err, m)
	}
	caller := m.Func("caller")
	if n := callCount(caller); n != 1 {
		t.Fatalf("caller should keep only the call to big, has %d calls:\n%s", n, caller)
	}
	// The multi-return callee must have produced a merge phi.
	phis := countOps(caller, OpPhi)
	if phis != 1 {
		t.Fatalf("inlined two-return callee needs one phi, got %d:\n%s", phis, caller)
	}
}

func TestInlineSemanticsPreserved(t *testing.T) {
	m := buildMaxProgram(t)
	InlineTinyFunctions(m)
	// Constant folding over the inlined body must reduce max(3,4) to 4.
	caller := m.Func("caller")
	RemoveUnreachable(caller)
	FoldConstants(caller)
	EliminateDeadCode(caller)
	// After folding, the phi collapses on the constant branch; look for
	// the literal 4 flowing into the add.
	found := false
	for _, b := range caller.Blocks {
		for _, in := range b.Instrs {
			if in.Op == OpAdd {
				for _, a := range in.Args {
					if cst, ok := a.(*Const); ok && cst.Int() == 4 {
						found = true
					}
				}
			}
		}
	}
	if !found {
		t.Fatalf("inlined max(3,4) did not fold to 4:\n%s", caller)
	}
}

func TestInlineSkipsRecursionShapedAndMain(t *testing.T) {
	m := NewModule("norec")
	// A function that calls something is never inlined (leaf-only rule),
	// which also rules out recursion.
	f := m.NewFunc("f", FuncType(I32, I32))
	fb := f.NewBlock("entry")
	bu := NewBuilder(fb)
	r := bu.Call(f, f.Params[0]) // self call
	bu.Ret(r)

	mainFn := m.NewFunc("main", FuncType(I32))
	mb := mainFn.NewBlock("entry")
	bu = NewBuilder(mb)
	v := bu.Call(f, ConstInt(I32, 1))
	bu.Ret(v)

	InlineTinyFunctions(m)
	if callCount(mainFn) != 1 || callCount(f) != 1 {
		t.Fatal("recursive function must not be inlined")
	}
}

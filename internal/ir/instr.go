package ir

import "strconv"

// Op is an IR opcode.
type Op int

// Opcodes. The grouping mirrors the paper's Table III categories.
const (
	// Integer arithmetic / logic.
	OpAdd Op = iota + 1
	OpSub
	OpMul
	OpSDiv
	OpSRem
	OpUDiv
	OpURem
	OpAnd
	OpOr
	OpXor
	OpShl
	OpLShr
	OpAShr
	// Floating-point arithmetic.
	OpFAdd
	OpFSub
	OpFMul
	OpFDiv
	// Comparisons.
	OpICmp
	OpFCmp
	// Casts. The strict typing of the IR makes these plentiful compared
	// to assembly (paper Table I, row 5).
	OpTrunc
	OpZExt
	OpSExt
	OpFPToSI
	OpSIToFP
	OpPtrToInt
	OpIntToPtr
	OpBitcast
	// Memory.
	OpAlloca
	OpLoad
	OpStore
	OpGEP
	// Control flow.
	OpPhi
	OpBr
	OpCondBr
	OpCall
	OpRet
	opMax
)

var opNames = map[Op]string{
	OpAdd: "add", OpSub: "sub", OpMul: "mul", OpSDiv: "sdiv", OpSRem: "srem",
	OpUDiv: "udiv", OpURem: "urem",
	OpAnd: "and", OpOr: "or", OpXor: "xor", OpShl: "shl", OpLShr: "lshr", OpAShr: "ashr",
	OpFAdd: "fadd", OpFSub: "fsub", OpFMul: "fmul", OpFDiv: "fdiv",
	OpICmp: "icmp", OpFCmp: "fcmp",
	OpTrunc: "trunc", OpZExt: "zext", OpSExt: "sext", OpFPToSI: "fptosi",
	OpSIToFP: "sitofp", OpPtrToInt: "ptrtoint", OpIntToPtr: "inttoptr", OpBitcast: "bitcast",
	OpAlloca: "alloca", OpLoad: "load", OpStore: "store", OpGEP: "getelementptr",
	OpPhi: "phi", OpBr: "br", OpCondBr: "br", OpCall: "call", OpRet: "ret",
}

func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return "op" + strconv.Itoa(int(o))
}

// IsIntArith reports whether o is an integer arithmetic/logic op.
func (o Op) IsIntArith() bool { return o >= OpAdd && o <= OpAShr }

// IsFloatArith reports whether o is a floating-point arithmetic op.
func (o Op) IsFloatArith() bool { return o >= OpFAdd && o <= OpFDiv }

// IsArith reports whether o belongs to the paper's "arithmetic" category
// (arithmetic and logic operations — explicitly not GEP).
func (o Op) IsArith() bool { return o.IsIntArith() || o.IsFloatArith() }

// IsCast reports whether o is any cast.
func (o Op) IsCast() bool { return o >= OpTrunc && o <= OpBitcast }

// IsConvCast reports whether o is an integer/floating-point *conversion*
// cast. Per the paper (Table I row 5), only these are injection candidates
// in the "cast" category; pointer-ish casts (bitcast, ptrtoint, inttoptr)
// have no assembly counterpart and are excluded.
func (o Op) IsConvCast() bool { return o >= OpTrunc && o <= OpSIToFP }

// IsCmp reports whether o is a comparison.
func (o Op) IsCmp() bool { return o == OpICmp || o == OpFCmp }

// IsTerminator reports whether o ends a basic block.
func (o Op) IsTerminator() bool { return o == OpBr || o == OpCondBr || o == OpRet }

// Pred is a comparison predicate shared by icmp and fcmp (fcmp treats it
// as the ordered variant).
type Pred int

// Comparison predicates.
const (
	PredEQ Pred = iota + 1
	PredNE
	PredLT
	PredLE
	PredGT
	PredGE
	PredULT
	PredULE
	PredUGT
	PredUGE
)

func (p Pred) String() string {
	switch p {
	case PredEQ:
		return "eq"
	case PredNE:
		return "ne"
	case PredLT:
		return "slt"
	case PredLE:
		return "sle"
	case PredGT:
		return "sgt"
	case PredGE:
		return "sge"
	case PredULT:
		return "ult"
	case PredULE:
		return "ule"
	case PredUGT:
		return "ugt"
	case PredUGE:
		return "uge"
	default:
		return "?"
	}
}

// Instr is one IR instruction. Instructions producing a value implement
// Value themselves (SSA).
//
// Operand conventions:
//
//	binary ops   Args = [lhs, rhs]
//	icmp/fcmp    Args = [lhs, rhs], Pred set
//	casts        Args = [src]
//	load         Args = [ptr]
//	store        Args = [val, ptr]
//	gep          Args = [base, idx0, idx1, ...]
//	phi          Args[i] is the incoming value from Blocks[i]
//	br           Blocks = [target]
//	condbr       Args = [cond], Blocks = [then, else]
//	call         Args = args, Callee or Builtin set
//	ret          Args = [val] or empty
type Instr struct {
	Op     Op
	Ty     *Type // result type; Void for store/br/ret
	Args   []Value
	Blocks []*Block
	Pred   Pred

	Callee  *Function // direct call target
	Builtin string    // runtime builtin name (exclusive with Callee)

	AllocTy *Type // alloca: allocated type

	Parent *Block
	ID     int // dense per-function numbering for printing and selection
	Seq    int // dense module-wide numbering, assigned by Module.AssignSeq
	// Line is the 1-based source line this instruction was generated
	// from (0 when unknown). It is what lets high-level injection map
	// outcomes back to source code — the property the paper names as the
	// main advantage of IR-level injectors.
	Line int
}

var _ Value = (*Instr)(nil)

// Type implements Value.
func (in *Instr) Type() *Type { return in.Ty }

// Ident implements Value.
func (in *Instr) Ident() string { return "%" + strconv.Itoa(in.ID) }

// HasResult reports whether the instruction produces an SSA value.
func (in *Instr) HasResult() bool { return in.Ty != nil && in.Ty.Kind != KindVoid }

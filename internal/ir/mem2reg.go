package ir

// PromoteAllocas rewrites scalar stack slots (allocas whose address never
// escapes) into SSA values, inserting phi nodes at dominance frontiers —
// the classic mem2reg pass. Running it matters for fidelity to the paper,
// which compiles benchmarks "with the same standard optimizations": it is
// what produces phi nodes (Table I row 2) and removes the -O0 load/store
// chatter that would otherwise dominate the instruction mix.
func PromoteAllocas(f *Function) {
	if len(f.Blocks) == 0 {
		return
	}
	RemoveUnreachable(f)
	dom := BuildDomTree(f)

	allocas := promotableAllocas(f)
	if len(allocas) == 0 {
		return
	}
	idx := make(map[*Instr]int, len(allocas))
	for i, a := range allocas {
		idx[a] = i
	}

	// Phi placement at iterated dominance frontiers of the store blocks.
	phiFor := make(map[*Instr]int) // inserted phi -> alloca index
	for i, a := range allocas {
		work := storeBlocks(f, a)
		placed := make(map[*Block]bool)
		inWork := make(map[*Block]bool)
		for _, b := range work {
			inWork[b] = true
		}
		for len(work) > 0 {
			b := work[len(work)-1]
			work = work[:len(work)-1]
			for _, df := range dom.Frontier(b) {
				if placed[df] {
					continue
				}
				placed[df] = true
				phi := &Instr{Op: OpPhi, Ty: a.AllocTy, Parent: df}
				df.Instrs = append([]*Instr{phi}, df.Instrs...)
				phiFor[phi] = i
				if !inWork[df] {
					inWork[df] = true
					work = append(work, df)
				}
			}
		}
	}

	// Renaming over the dominator tree.
	stacks := make([][]Value, len(allocas))
	replace := make(map[Value]Value)
	dead := make(map[*Instr]bool)
	var resolve func(v Value) Value
	resolve = func(v Value) Value {
		for {
			r, ok := replace[v]
			if !ok {
				return v
			}
			v = r
		}
	}
	current := func(i int) Value {
		st := stacks[i]
		if len(st) == 0 {
			return zeroValue(allocas[i].AllocTy)
		}
		return st[len(st)-1]
	}

	var rename func(b *Block)
	rename = func(b *Block) {
		var pushed []int
		for _, in := range b.Instrs {
			if ai, ok := phiFor[in]; ok {
				stacks[ai] = append(stacks[ai], in)
				pushed = append(pushed, ai)
				continue
			}
			for k, a := range in.Args {
				in.Args[k] = resolve(a)
			}
			switch in.Op {
			case OpLoad:
				if src, ok := in.Args[0].(*Instr); ok {
					if ai, isAlloca := idx[src]; isAlloca {
						replace[in] = current(ai)
						dead[in] = true
					}
				}
			case OpStore:
				if dst, ok := in.Args[1].(*Instr); ok {
					if ai, isAlloca := idx[dst]; isAlloca {
						stacks[ai] = append(stacks[ai], in.Args[0])
						pushed = append(pushed, ai)
						dead[in] = true
					}
				}
			}
		}
		for _, s := range b.Succs() {
			for _, in := range s.Instrs {
				if in.Op != OpPhi {
					break
				}
				if ai, ok := phiFor[in]; ok {
					in.Args = append(in.Args, current(ai))
					in.Blocks = append(in.Blocks, b)
				}
			}
		}
		for _, c := range dom.Children(b) {
			rename(c)
		}
		for _, ai := range pushed {
			stacks[ai] = stacks[ai][:len(stacks[ai])-1]
		}
	}
	rename(f.Entry())

	for _, a := range allocas {
		dead[a] = true
	}
	removeDead(f, dead, resolve)
	f.Renumber()
}

// promotableAllocas returns allocas of scalar type whose only uses are
// direct loads and stores-through (the address never escapes).
func promotableAllocas(f *Function) []*Instr {
	uses := ComputeUses(f)
	var out []*Instr
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op != OpAlloca {
				continue
			}
			k := in.AllocTy.Kind
			if k != KindInt && k != KindFloat && k != KindPtr {
				continue
			}
			ok := true
			for _, u := range uses.Uses(in) {
				switch {
				case u.Op == OpLoad:
				case u.Op == OpStore && u.Args[1] == in && u.Args[0] != in:
				default:
					ok = false
				}
				if !ok {
					break
				}
			}
			if ok {
				out = append(out, in)
			}
		}
	}
	return out
}

func storeBlocks(f *Function, a *Instr) []*Block {
	seen := make(map[*Block]bool)
	var out []*Block
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == OpStore && in.Args[1] == a && !seen[b] {
				seen[b] = true
				out = append(out, b)
			}
		}
	}
	return out
}

func zeroValue(ty *Type) Value {
	switch ty.Kind {
	case KindFloat:
		return ConstFloat(0)
	case KindPtr:
		return ConstNull(ty)
	default:
		return ConstInt(ty, 0)
	}
}

// removeDead drops instructions marked dead and rewrites remaining
// operands through resolve.
func removeDead(f *Function, dead map[*Instr]bool, resolve func(Value) Value) {
	for _, b := range f.Blocks {
		kept := b.Instrs[:0]
		for _, in := range b.Instrs {
			if dead[in] {
				continue
			}
			for k, a := range in.Args {
				in.Args[k] = resolve(a)
			}
			kept = append(kept, in)
		}
		b.Instrs = kept
	}
}

// RemoveUnreachable deletes blocks not reachable from the entry and prunes
// phi edges from deleted predecessors. Single-incoming phis collapse to
// their value.
func RemoveUnreachable(f *Function) {
	if len(f.Blocks) == 0 {
		return
	}
	reach := make(map[*Block]bool)
	var dfs func(*Block)
	dfs = func(b *Block) {
		reach[b] = true
		for _, s := range b.Succs() {
			if !reach[s] {
				dfs(s)
			}
		}
	}
	dfs(f.Entry())

	kept := f.Blocks[:0]
	for _, b := range f.Blocks {
		if reach[b] {
			kept = append(kept, b)
		}
	}
	f.Blocks = kept

	replace := make(map[Value]Value)
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op != OpPhi {
				continue
			}
			args := in.Args[:0]
			blocks := in.Blocks[:0]
			for i, pb := range in.Blocks {
				if reach[pb] {
					args = append(args, in.Args[i])
					blocks = append(blocks, pb)
				}
			}
			in.Args, in.Blocks = args, blocks
			if len(in.Args) == 1 {
				replace[in] = in.Args[0]
			}
		}
	}
	if len(replace) > 0 {
		resolve := func(v Value) Value {
			for {
				r, ok := replace[v]
				if !ok {
					return v
				}
				v = r
			}
		}
		dead := make(map[*Instr]bool)
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op == OpPhi {
					if _, ok := replace[in]; ok {
						dead[in] = true
					}
				}
			}
		}
		removeDead(f, dead, resolve)
	}
	f.Renumber()
}

package ir

import (
	"strings"
	"testing"
)

func TestParseRoundTripDiamond(t *testing.T) {
	m, _ := buildDiamond(t)
	text := m.String()
	m2, err := Parse(text)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, text)
	}
	text2 := m2.String()
	// The module name line differs; compare everything after it.
	strip := func(s string) string {
		idx := strings.Index(s, "\n")
		return s[idx:]
	}
	if strip(text) != strip(text2) {
		t.Fatalf("round trip not stable:\n--- first ---\n%s\n--- second ---\n%s", text, text2)
	}
}

func TestParseHandWritten(t *testing.T) {
	m := MustParse(`
; a tiny counting loop
@acc = global i64

define i32 @main() {
entry:
  br label %cond
cond:
  %0 = phi i32 [ 0, %entry ], [ %3, %body ]
  %1 = icmp slt i32 %0, 10
  br i1 %1, label %body, label %done
body:
  %2 = load i64, i64* @acc
  %4 = sext i32 %0 to i64
  %5 = add i64 %2, %4
  store i64 %5, i64* @acc
  %3 = add i32 %0, 1
  br label %cond
done:
  %6 = load i64, i64* @acc
  %7 = trunc i64 %6 to i32
  ret i32 %7
}
`)
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
	f := m.Func("main")
	if f == nil || len(f.Blocks) != 4 {
		t.Fatalf("main shape wrong")
	}
}

func TestParseStructsAndGEP(t *testing.T) {
	m := MustParse(`
%struct.node = type { i32, %struct.node* }
@head = global %struct.node

define i32 @val() {
entry:
  %0 = getelementptr %struct.node* @head, i64 0, i32 0
  %1 = load i32, i32* %0
  ret i32 %1
}
`)
	st := m.Global("head").Elem
	if st.Kind != KindStruct || st.TagName != "node" || len(st.Fields) != 2 {
		t.Fatalf("struct parse: %s", st)
	}
	if !st.Fields[1].IsPtr() || st.Fields[1].Elem.TagName != "node" {
		t.Fatal("self-referential field lost")
	}
}

func TestParseGlobalInitBlob(t *testing.T) {
	m := MustParse(`
@tab = global [4 x i32] init "01000000020000000300000004000000"
define i32 @main() {
entry:
  ret i32 0
}
`)
	g := m.Global("tab")
	if g.Init[0] != 1 || g.Init[4] != 2 || g.Init[12] != 4 {
		t.Fatalf("init blob: %v", g.Init)
	}
}

func TestParseCallsAndBuiltins(t *testing.T) {
	m := MustParse(`
define i32 @helper(i32 %x) {
entry:
  %0 = mul i32 %x, 3
  ret i32 %0
}

define i32 @main() {
entry:
  %0 = call i32 @helper(i32 14)
  call void @print_int(i32 %0)
  ret i32 0
}
`)
	var call, builtin *Instr
	for _, b := range m.Func("main").Blocks {
		for _, in := range b.Instrs {
			if in.Op == OpCall {
				if in.Callee != nil {
					call = in
				} else {
					builtin = in
				}
			}
		}
	}
	if call == nil || call.Callee.Name != "helper" {
		t.Fatal("direct call not resolved")
	}
	if builtin == nil || builtin.Builtin != "print_int" {
		t.Fatal("builtin call not resolved")
	}
}

func TestParseFloatsAndDoubleOps(t *testing.T) {
	m := MustParse(`
define double @f(double %x) {
entry:
  %0 = fmul double %x, 2.5
  %1 = fadd double %0, -0.125
  %2 = fcmp sgt double %1, 0
  br i1 %2, label %pos, label %neg
pos:
  ret double %1
neg:
  %3 = fsub double 0, %1
  ret double %3
}
`)
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"define i32 @f() {", // unterminated
		"@g = global",       // missing type
		"bogus",             // unknown top level
		"define i32 @f() {\nentry:\n  frobnicate\n}", // unknown op
		"define i32 @f() {\nentry:\n  ret i32 %9\n}", // unknown value
		"define i32 @f() {\nentry:\n  br label %nope\n}",
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("accepted:\n%s", src)
		}
	}
}

// TestParseRoundTripAllBenchShapes round-trips a module containing the
// full instruction vocabulary through print -> parse -> print.
func TestParseRoundTripVocabulary(t *testing.T) {
	src := `
%struct.pair = type { i32, double }
@gp = global %struct.pair
@arr = global [8 x i64]

define i64 @vocab(i32 %n, double %d, i8* %p) {
entry:
  %0 = alloca i32
  store i32 %n, i32* %0
  %1 = load i32, i32* %0
  %2 = add i32 %1, 7
  %3 = sub i32 %2, 1
  %4 = mul i32 %3, 3
  %5 = sdiv i32 %4, 2
  %6 = srem i32 %5, 5
  %7 = and i32 %6, 15
  %8 = or i32 %7, 1
  %9 = xor i32 %8, 2
  %10 = shl i32 %9, 1
  %11 = lshr i32 %10, 1
  %12 = ashr i32 %11, 1
  %13 = sext i32 %12 to i64
  %14 = trunc i64 %13 to i8
  %15 = zext i8 %14 to i64
  %16 = sitofp i64 %15 to double
  %17 = fadd double %16, %d
  %18 = fsub double %17, 0.5
  %19 = fmul double %18, 2
  %20 = fdiv double %19, 4
  %21 = fptosi double %20 to i64
  %22 = getelementptr [8 x i64]* @arr, i64 0, i64 3
  store i64 %21, i64* %22
  %23 = getelementptr %struct.pair* @gp, i64 0, i32 1
  store double %20, double* %23
  %24 = ptrtoint i8* %p to i64
  %25 = inttoptr i64 %24 to i64*
  %26 = bitcast i64* %25 to i8*
  %27 = icmp eq i8* %26, %p
  br i1 %27, label %yes, label %no
yes:
  %28 = load i64, i64* %22
  ret i64 %28
no:
  ret i64 0
}
`
	m := MustParse(src)
	text := m.String()
	m2, err := Parse(text)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, text)
	}
	if m2.String() != text {
		t.Fatalf("unstable round trip:\n%s\nvs\n%s", text, m2.String())
	}
}

package ir

import (
	"fmt"
	"strings"
)

// LocalCSE performs common-subexpression elimination within each basic
// block: pure value computations (arithmetic, comparisons, casts, and
// getelementptr address computations) with identical operands collapse to
// a single instance. Loads are not touched (that would need alias
// analysis). Like mem2reg, this is part of the "standard optimizations"
// both injectors see; without it, repeated struct-field address
// computations would inflate the assembly-level arithmetic counts far
// beyond what a production compiler emits.
func LocalCSE(f *Function) {
	replace := make(map[Value]Value)
	resolve := func(v Value) Value {
		for {
			r, ok := replace[v]
			if !ok {
				return v
			}
			v = r
		}
	}
	for _, b := range f.Blocks {
		seen := make(map[string]*Instr)
		for _, in := range b.Instrs {
			for k, a := range in.Args {
				in.Args[k] = resolve(a)
			}
			if !cseable(in) {
				continue
			}
			key := cseKey(in)
			if prev, ok := seen[key]; ok {
				replace[in] = prev
				continue
			}
			seen[key] = in
		}
	}
	if len(replace) == 0 {
		return
	}
	dead := make(map[*Instr]bool, len(replace))
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if _, ok := replace[in]; ok {
				dead[in] = true
			}
		}
	}
	removeDead(f, dead, resolve)
	f.Renumber()
}

func cseable(in *Instr) bool {
	switch {
	case in.Op.IsArith(), in.Op.IsCmp(), in.Op.IsCast():
		return true
	case in.Op == OpGEP:
		return true
	default:
		return false
	}
}

// cseKey builds an identity key for a pure instruction: opcode, predicate,
// result type, and operand identities.
func cseKey(in *Instr) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d|%d|%s", in.Op, in.Pred, in.Ty)
	for _, a := range in.Args {
		switch v := a.(type) {
		case *Const:
			fmt.Fprintf(&sb, "|c%d:%d:%d", v.Ty.Kind, v.Ty.Bits, v.Val)
		default:
			fmt.Fprintf(&sb, "|%p", a)
		}
	}
	return sb.String()
}

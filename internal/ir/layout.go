package ir

import "hlfi/internal/mem"

// Layout assigns addresses to a module's globals and builds the initial
// data image that both execution levels load at mem.GlobalsBase. Sharing
// one layout guarantees the IR interpreter and the machine simulator see
// bit-identical global state.
type Layout struct {
	Base  uint64
	Addr  map[*Global]uint64
	Image []byte
}

// ComputeLayout lays out the module's globals in declaration order.
func ComputeLayout(m *Module) *Layout {
	l := &Layout{Base: mem.GlobalsBase, Addr: make(map[*Global]uint64, len(m.Globals))}
	off := uint64(0)
	for _, g := range m.Globals {
		a := g.Elem.Align()
		if a < 8 {
			a = 8
		}
		off = alignUp(off, a)
		l.Addr[g] = l.Base + off
		size := g.Elem.Size()
		end := off + size
		if uint64(len(l.Image)) < end {
			l.Image = append(l.Image, make([]byte, end-uint64(len(l.Image)))...)
		}
		copy(l.Image[off:end], g.Init)
		off = end
	}
	return l
}

// Install maps the globals segment into memory and copies the image.
func (l *Layout) Install(m *mem.Memory) {
	if len(l.Image) == 0 {
		// Keep at least one mapped globals page so the segment exists.
		m.Map(l.Base, mem.PageSize)
		return
	}
	m.Map(l.Base, uint64(len(l.Image)))
	if err := m.WriteBytes(l.Base, l.Image); err != nil {
		// Cannot happen: the range was just mapped.
		panic("ir: install globals: " + err.Error())
	}
}

func alignUp(n, a uint64) uint64 { return (n + a - 1) / a * a }

package ir

import "testing"

func TestTypeSizes(t *testing.T) {
	cases := []struct {
		ty    *Type
		size  uint64
		align uint64
	}{
		{I1, 1, 1},
		{I8, 1, 1},
		{I16, 2, 2},
		{I32, 4, 4},
		{I64, 8, 8},
		{F64, 8, 8},
		{PointerTo(I32), 8, 8},
		{ArrayOf(10, I32), 40, 4},
		{ArrayOf(3, ArrayOf(4, I64)), 96, 8},
		{StructOf("", I32, I64), 16, 8},   // 4 pad 4, then 8
		{StructOf("", I8, I8, I32), 8, 4}, // 1,1,pad2,4
		{StructOf("", I64, I8), 16, 8},    // trailing pad
		{Void, 0, 1},
	}
	for _, c := range cases {
		if got := c.ty.Size(); got != c.size {
			t.Errorf("%s size = %d, want %d", c.ty, got, c.size)
		}
		if got := c.ty.Align(); got != c.align {
			t.Errorf("%s align = %d, want %d", c.ty, got, c.align)
		}
	}
}

func TestFieldOffsets(t *testing.T) {
	st := StructOf("node", I32, I64, I8, PointerTo(I8))
	wants := []uint64{0, 8, 16, 24}
	for i, w := range wants {
		if got := st.FieldOffset(i); got != w {
			t.Errorf("field %d offset = %d, want %d", i, got, w)
		}
	}
	if st.Size() != 32 {
		t.Errorf("struct size = %d", st.Size())
	}
}

func TestTypeEqual(t *testing.T) {
	if !PointerTo(I32).Equal(PointerTo(I32)) {
		t.Error("structurally equal pointers")
	}
	if PointerTo(I32).Equal(PointerTo(I64)) {
		t.Error("different pointees must differ")
	}
	if !ArrayOf(4, I8).Equal(ArrayOf(4, I8)) || ArrayOf(4, I8).Equal(ArrayOf(5, I8)) {
		t.Error("array equality")
	}
	// Named structs are nominal, which keeps Equal total on recursive
	// types.
	n1 := StructOf("node", I32)
	n1.Fields = append(n1.Fields, PointerTo(n1)) // self-reference
	n2 := StructOf("node", I32)
	if !n1.Equal(n2) {
		t.Error("same-tag structs must be equal")
	}
	if n1.Equal(StructOf("other", I32)) {
		t.Error("different tags must differ")
	}
	if !n1.Equal(n1) {
		t.Error("self equality on recursive type")
	}
	if I32.Equal(nil) {
		t.Error("nil comparison")
	}
}

func TestTypeString(t *testing.T) {
	cases := map[string]*Type{
		"i32":        I32,
		"double":     F64,
		"i8*":        PointerTo(I8),
		"[4 x i32]":  ArrayOf(4, I32),
		"%struct.tq": StructOf("tq", I32),
		"void":       Void,
	}
	for want, ty := range cases {
		if got := ty.String(); got != want {
			t.Errorf("String = %q, want %q", got, want)
		}
	}
}

func TestCanonicalSignExtend(t *testing.T) {
	if Canonical(0x1FF, I8) != 0xFF {
		t.Error("canonical i8")
	}
	if Canonical(0xFFFFFFFFFFFFFFFF, I32) != 0xFFFFFFFF {
		t.Error("canonical i32")
	}
	if SignExtend(0xFF, I8) != -1 {
		t.Error("sign extend i8")
	}
	if SignExtend(0x7F, I8) != 127 {
		t.Error("positive i8")
	}
	if SignExtend(0x80000000, I32) != -2147483648 {
		t.Error("sign extend i32")
	}
	if SignExtend(5, I64) != 5 {
		t.Error("i64 passthrough")
	}
}

func TestConsts(t *testing.T) {
	c := ConstInt(I32, -1)
	if c.Val != 0xFFFFFFFF || c.Int() != -1 {
		t.Errorf("ConstInt(-1): val=%x int=%d", c.Val, c.Int())
	}
	if c.Ident() != "-1" {
		t.Errorf("ident %q", c.Ident())
	}
	f := ConstFloat(2.5)
	if f.Float() != 2.5 || f.Ident() != "2.5" {
		t.Errorf("float const: %v %q", f.Float(), f.Ident())
	}
	n := ConstNull(PointerTo(I8))
	if n.Ident() != "null" || n.Val != 0 {
		t.Error("null const")
	}
}

package ir

import (
	"strings"
	"testing"
)

// buildDiamond creates:
//
//	entry: cond = icmp slt a, b; br cond, left, right
//	left:  x1 = add a, 1; br join
//	right: x2 = mul a, 2; br join
//	join:  p = phi [x1,left],[x2,right]; ret p
func buildDiamond(t *testing.T) (*Module, *Function) {
	t.Helper()
	m := NewModule("diamond")
	f := m.NewFunc("f", FuncType(I32, I32, I32))
	entry := f.NewBlock("entry")
	left := f.NewBlock("left")
	right := f.NewBlock("right")
	join := f.NewBlock("join")

	a, b := f.Params[0], f.Params[1]
	bu := NewBuilder(entry)
	cond := bu.ICmp(PredLT, a, b)
	bu.CondBr(cond, left, right)

	bu.SetBlock(left)
	x1 := bu.Binary(OpAdd, a, ConstInt(I32, 1))
	bu.Br(join)

	bu.SetBlock(right)
	x2 := bu.Binary(OpMul, a, ConstInt(I32, 2))
	bu.Br(join)

	bu.SetBlock(join)
	p := bu.Phi(I32)
	AddIncoming(p, x1, left)
	AddIncoming(p, x2, right)
	bu.Ret(p)

	if err := m.Verify(); err != nil {
		t.Fatalf("diamond should verify: %v", err)
	}
	return m, f
}

func TestVerifyAcceptsDiamond(t *testing.T) { buildDiamond(t) }

func TestVerifyRejections(t *testing.T) {
	build := func(mut func(m *Module, f *Function, bu *Builder)) error {
		m := NewModule("bad")
		f := m.NewFunc("f", FuncType(I32, I32))
		entry := f.NewBlock("entry")
		bu := NewBuilder(entry)
		mut(m, f, bu)
		return m.Verify()
	}

	if err := build(func(m *Module, f *Function, bu *Builder) {
		bu.Binary(OpAdd, f.Params[0], f.Params[0]) // no terminator
	}); err == nil {
		t.Error("missing terminator accepted")
	}

	if err := build(func(m *Module, f *Function, bu *Builder) {
		bu.emit(&Instr{Op: OpAdd, Ty: I32, Args: []Value{f.Params[0], ConstInt(I64, 1)}})
		bu.Ret(ConstInt(I32, 0))
	}); err == nil {
		t.Error("type-mismatched add accepted")
	}

	if err := build(func(m *Module, f *Function, bu *Builder) {
		bu.Ret(ConstInt(I64, 0)) // wrong return type
	}); err == nil {
		t.Error("wrong ret type accepted")
	}

	if err := build(func(m *Module, f *Function, bu *Builder) {
		g := m.AddGlobal(&Global{Name: "g", Elem: I32})
		bu.emit(&Instr{Op: OpLoad, Ty: I64, Args: []Value{g}}) // load type mismatch
		bu.Ret(ConstInt(I32, 0))
	}); err == nil {
		t.Error("mistyped load accepted")
	}

	if err := build(func(m *Module, f *Function, bu *Builder) {
		bu.emit(&Instr{Op: OpStore, Ty: Void, Args: []Value{ConstInt(I64, 1),
			m.AddGlobal(&Global{Name: "h", Elem: I32})}})
		bu.Ret(ConstInt(I32, 0))
	}); err == nil {
		t.Error("mistyped store accepted")
	}

	if err := build(func(m *Module, f *Function, bu *Builder) {
		bu.Ret(ConstInt(I32, 0))
		// phi after non-phi in a new block with wrong incoming count
		b2 := f.NewBlock("b2")
		bu.SetBlock(b2)
		bu.Binary(OpAdd, f.Params[0], f.Params[0])
		p := bu.Phi(I32)
		AddIncoming(p, ConstInt(I32, 0), b2)
		bu.Ret(ConstInt(I32, 0))
	}); err == nil {
		t.Error("phi after non-phi accepted")
	}
}

func TestComputeUses(t *testing.T) {
	_, f := buildDiamond(t)
	uses := ComputeUses(f)
	a := f.Params[0]
	if uses.NumUses(a) != 3 { // icmp, add, mul
		t.Errorf("param a uses = %d, want 3", uses.NumUses(a))
	}
	var phi *Instr
	for _, in := range f.Blocks[3].Instrs {
		if in.Op == OpPhi {
			phi = in
		}
	}
	if uses.NumUses(phi) != 1 {
		t.Errorf("phi uses = %d", uses.NumUses(phi))
	}
}

func TestSuccsPreds(t *testing.T) {
	_, f := buildDiamond(t)
	entry, left, right, join := f.Blocks[0], f.Blocks[1], f.Blocks[2], f.Blocks[3]
	if len(entry.Succs()) != 2 || entry.Succs()[0] != left || entry.Succs()[1] != right {
		t.Error("entry successors")
	}
	preds := join.Preds()
	if len(preds) != 2 {
		t.Errorf("join preds = %d", len(preds))
	}
}

func TestPrinterOutput(t *testing.T) {
	m, _ := buildDiamond(t)
	out := m.String()
	for _, want := range []string{"define i32 @f", "icmp slt", "phi i32", "br i1", "ret i32"} {
		if !strings.Contains(out, want) {
			t.Errorf("printed IR missing %q:\n%s", want, out)
		}
	}
}

func TestAssignSeq(t *testing.T) {
	m, f := buildDiamond(t)
	total := m.AssignSeq()
	count := 0
	seen := make(map[int]bool)
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if seen[in.Seq] {
				t.Fatalf("duplicate seq %d", in.Seq)
			}
			seen[in.Seq] = true
			count++
		}
	}
	if total != count {
		t.Errorf("AssignSeq = %d, instrs = %d", total, count)
	}
}

func TestLayout(t *testing.T) {
	m := NewModule("lay")
	g1 := m.AddGlobal(&Global{Name: "a", Elem: I32, Init: []byte{1, 2, 3, 4}})
	g2 := m.AddGlobal(&Global{Name: "b", Elem: ArrayOf(3, I64)})
	l := ComputeLayout(m)
	if l.Addr[g1]%8 != 0 || l.Addr[g2]%8 != 0 {
		t.Error("globals must be 8-aligned")
	}
	if l.Addr[g2] < l.Addr[g1]+4 {
		t.Error("globals overlap")
	}
	if len(l.Image) < 8+24 {
		t.Errorf("image too small: %d", len(l.Image))
	}
	if l.Image[0] != 1 || l.Image[3] != 4 {
		t.Error("init data not copied")
	}
}

// TestBuilderLineStamping: instructions inherit the builder's current
// source line unless explicitly set.
func TestBuilderLineStamping(t *testing.T) {
	m := NewModule("lines")
	f := m.NewFunc("f", FuncType(I32, I32))
	bu := NewBuilder(f.NewBlock("entry"))
	bu.Line = 7
	a := bu.Binary(OpAdd, f.Params[0], ConstInt(I32, 1))
	bu.Line = 9
	b := bu.Binary(OpMul, a, ConstInt(I32, 2))
	bu.Ret(b)
	if a.Line != 7 || b.Line != 9 {
		t.Fatalf("lines: add=%d mul=%d", a.Line, b.Line)
	}
}

// TestFuncValueOperand covers the FuncValue wrapper.
func TestFuncValueOperand(t *testing.T) {
	m := NewModule("fv")
	f := m.NewFunc("callee", FuncType(I32))
	fv := &FuncValue{Fn: f}
	if !fv.Type().IsPtr() || fv.Ident() != "@callee" {
		t.Fatalf("FuncValue: %s %s", fv.Type(), fv.Ident())
	}
}

package ir_test

import (
	"fmt"

	"hlfi/internal/ir"
)

// ExampleParse shows the textual IR workflow: write IR by hand, parse,
// and print it back.
func ExampleParse() {
	m := ir.MustParse(`
define i32 @double(i32 %x) {
entry:
  %0 = add i32 %x, %x
  ret i32 %0
}
`)
	f := m.Func("double")
	fmt.Print(f.String())
	// Output:
	// define i32 @double(i32 %x) {
	// entry:
	//   %0 = add i32 %x, %x
	//   ret i32 %0
	// }
}

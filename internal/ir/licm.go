package ir

// HoistLoopInvariants performs loop-invariant code motion over natural
// loops: pure, non-trapping computations (arithmetic except division,
// comparisons, casts, and getelementptr address computation) whose
// operands are defined outside the loop move to the loop preheader.
// Row-base addresses of nested-array accesses are the classic
// beneficiary; without LICM the assembly level recomputes them every
// iteration, inflating its arithmetic counts beyond anything a production
// compiler emits.
func HoistLoopInvariants(f *Function) {
	if len(f.Blocks) < 2 {
		return
	}
	// Iterate to a fixpoint over rounds: hoisting into an inner preheader
	// may expose outer-loop invariance, and each round handles one loop
	// before re-deriving the CFG analyses.
	for round := 0; round < 64; round++ {
		if !hoistOnce(f) {
			return
		}
	}
}

type natLoop struct {
	header *Block
	body   map[*Block]bool
	depth  int
}

func hoistOnce(f *Function) bool {
	dom := BuildDomTree(f)
	loops := findLoops(f, dom)
	if len(loops) == 0 {
		return false
	}
	// Innermost first.
	for i := 0; i < len(loops); i++ {
		for j := i + 1; j < len(loops); j++ {
			if loops[j].depth > loops[i].depth {
				loops[i], loops[j] = loops[j], loops[i]
			}
		}
	}
	changed := false
	for _, lp := range loops {
		if hoistLoop(f, dom, lp) {
			changed = true
			// CFG and dominators changed (a preheader may have been
			// inserted); restart with fresh analyses.
			return true
		}
	}
	return changed
}

// findLoops collects natural loops by back edge, merging loops that share
// a header. Depth is the nesting level of the header.
func findLoops(f *Function, dom *DomTree) []*natLoop {
	depths := LoopDepths(f)
	byHeader := make(map[*Block]*natLoop)
	var out []*natLoop
	for _, u := range f.Blocks {
		if !dom.Reachable(u) {
			continue
		}
		for _, h := range u.Succs() {
			if !dom.Dominates(h, u) {
				continue
			}
			lp := byHeader[h]
			if lp == nil {
				lp = &natLoop{header: h, body: map[*Block]bool{h: true}, depth: depths[h]}
				byHeader[h] = lp
				out = append(out, lp)
			}
			// Body: blocks reaching u without passing through h.
			stack := []*Block{u}
			for len(stack) > 0 {
				b := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if lp.body[b] {
					continue
				}
				lp.body[b] = true
				for _, p := range dom.Preds(b) {
					stack = append(stack, p)
				}
			}
		}
	}
	return out
}

// hoistLoop hoists invariants of one loop; reports whether it changed
// anything.
func hoistLoop(f *Function, dom *DomTree, lp *natLoop) bool {
	// Find the unique entry predecessor.
	var outside []*Block
	for _, p := range dom.Preds(lp.header) {
		if !lp.body[p] {
			outside = append(outside, p)
		}
	}
	if len(outside) != 1 {
		return false // irreducible or multi-entry shape: skip
	}

	// Collect invariant instructions, in order, to a fixpoint.
	invariant := make(map[*Instr]bool)
	var hoisted []*Instr
	isInvariantOperand := func(v Value) bool {
		in, ok := v.(*Instr)
		if !ok {
			return true // consts, params, globals
		}
		if invariant[in] {
			return true
		}
		return !lp.body[in.Parent]
	}
	// Iterate blocks in function order (not map order) so the hoisted
	// set — and therefore the emitted preheader — is deterministic.
	for {
		grew := false
		for _, b := range f.Blocks {
			if !lp.body[b] {
				continue
			}
			for _, in := range b.Instrs {
				if invariant[in] || !hoistable(in) {
					continue
				}
				ok := true
				for _, a := range in.Args {
					if !isInvariantOperand(a) {
						ok = false
						break
					}
				}
				if ok {
					invariant[in] = true
					hoisted = append(hoisted, in)
					grew = true
				}
			}
		}
		if !grew {
			break
		}
	}
	if len(hoisted) == 0 {
		return false
	}

	pre := ensurePreheader(f, lp.header, outside[0])

	// Emit in dependency order, derived from the deterministic block
	// walk.
	ordered := orderHoisted(f, lp, invariant)
	for _, b := range f.Blocks {
		if !lp.body[b] {
			continue
		}
		kept := b.Instrs[:0]
		for _, in := range b.Instrs {
			if invariant[in] {
				continue
			}
			kept = append(kept, in)
		}
		b.Instrs = kept
	}
	// Insert before the preheader's terminator.
	term := pre.Instrs[len(pre.Instrs)-1]
	pre.Instrs = pre.Instrs[:len(pre.Instrs)-1]
	for _, in := range ordered {
		in.Parent = pre
		pre.Instrs = append(pre.Instrs, in)
	}
	pre.Instrs = append(pre.Instrs, term)
	f.Renumber()
	return true
}

// orderHoisted returns the invariant instructions in dependency order
// (operands first), walking blocks in function order for determinism.
func orderHoisted(f *Function, lp *natLoop, invariant map[*Instr]bool) []*Instr {
	var ordered []*Instr
	emitted := make(map[*Instr]bool)
	var emit func(in *Instr)
	emit = func(in *Instr) {
		if emitted[in] {
			return
		}
		emitted[in] = true
		for _, a := range in.Args {
			if ai, ok := a.(*Instr); ok && invariant[ai] {
				emit(ai)
			}
		}
		ordered = append(ordered, in)
	}
	for _, b := range f.Blocks {
		if !lp.body[b] {
			continue
		}
		for _, in := range b.Instrs {
			if invariant[in] {
				emit(in)
			}
		}
	}
	return ordered
}

// hoistable reports whether an instruction is pure and non-trapping.
func hoistable(in *Instr) bool {
	switch in.Op {
	case OpSDiv, OpSRem, OpUDiv, OpURem:
		return false // may trap; the loop body might never execute
	}
	switch {
	case in.Op.IsArith(), in.Op.IsCmp(), in.Op.IsCast():
		return true
	case in.Op == OpGEP:
		return true
	default:
		return false
	}
}

// ensurePreheader returns a block whose only successor is the header and
// that is the header's only non-loop predecessor, creating one if the
// entry edge comes from a multi-successor block.
func ensurePreheader(f *Function, header, entry *Block) *Block {
	if t := entry.Terminator(); t != nil && t.Op == OpBr {
		return entry
	}
	pre := f.NewBlock(header.Name + ".pre")
	pre.Append(&Instr{Op: OpBr, Ty: Void, Blocks: []*Block{header}})
	t := entry.Terminator()
	for i, s := range t.Blocks {
		if s == header {
			t.Blocks[i] = pre
		}
	}
	for _, in := range header.Instrs {
		if in.Op != OpPhi {
			break
		}
		for i, pb := range in.Blocks {
			if pb == entry {
				in.Blocks[i] = pre
			}
		}
	}
	return pre
}

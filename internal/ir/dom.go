package ir

// DomTree holds immediate dominators and dominance frontiers for a
// function's CFG. It backs SSA construction (mem2reg), which is what makes
// phi nodes — one of the paper's IR-vs-assembly discrepancy sources —
// appear in compiled code at all.
type DomTree struct {
	fn       *Function
	rpo      []*Block       // reverse postorder, entry first
	rpoIndex map[*Block]int // block -> position in rpo
	idom     map[*Block]*Block
	children map[*Block][]*Block
	frontier map[*Block][]*Block
	preds    map[*Block][]*Block
}

// BuildDomTree computes dominators with the Cooper–Harvey–Kennedy
// iterative algorithm and dominance frontiers in the standard way.
func BuildDomTree(f *Function) *DomTree {
	d := &DomTree{
		fn:       f,
		rpoIndex: make(map[*Block]int),
		idom:     make(map[*Block]*Block),
		children: make(map[*Block][]*Block),
		frontier: make(map[*Block][]*Block),
		preds:    make(map[*Block][]*Block),
	}
	d.computeRPO()
	for _, b := range d.rpo {
		for _, s := range b.Succs() {
			d.preds[s] = append(d.preds[s], b)
		}
	}
	d.computeIdoms()
	d.computeFrontiers()
	for _, b := range d.rpo {
		if p := d.idom[b]; p != nil && p != b {
			d.children[p] = append(d.children[p], b)
		}
	}
	return d
}

func (d *DomTree) computeRPO() {
	entry := d.fn.Entry()
	visited := make(map[*Block]bool)
	var post []*Block
	var dfs func(*Block)
	dfs = func(b *Block) {
		visited[b] = true
		for _, s := range b.Succs() {
			if !visited[s] {
				dfs(s)
			}
		}
		post = append(post, b)
	}
	dfs(entry)
	for i := len(post) - 1; i >= 0; i-- {
		d.rpoIndex[post[i]] = len(d.rpo)
		d.rpo = append(d.rpo, post[i])
	}
}

func (d *DomTree) computeIdoms() {
	entry := d.rpo[0]
	d.idom[entry] = entry
	changed := true
	for changed {
		changed = false
		for _, b := range d.rpo[1:] {
			var newIdom *Block
			for _, p := range d.preds[b] {
				if d.idom[p] == nil {
					continue // unreached or not yet processed
				}
				if newIdom == nil {
					newIdom = p
				} else {
					newIdom = d.intersect(p, newIdom)
				}
			}
			if newIdom != nil && d.idom[b] != newIdom {
				d.idom[b] = newIdom
				changed = true
			}
		}
	}
}

func (d *DomTree) intersect(a, b *Block) *Block {
	for a != b {
		for d.rpoIndex[a] > d.rpoIndex[b] {
			a = d.idom[a]
		}
		for d.rpoIndex[b] > d.rpoIndex[a] {
			b = d.idom[b]
		}
	}
	return a
}

func (d *DomTree) computeFrontiers() {
	for _, b := range d.rpo {
		preds := d.preds[b]
		if len(preds) < 2 {
			continue
		}
		for _, p := range preds {
			runner := p
			for runner != nil && runner != d.idom[b] {
				d.frontier[runner] = append(d.frontier[runner], b)
				runner = d.idom[runner]
			}
		}
	}
}

// Reachable reports whether b is reachable from the entry.
func (d *DomTree) Reachable(b *Block) bool {
	_, ok := d.rpoIndex[b]
	return ok
}

// Idom returns the immediate dominator of b (entry's idom is itself).
func (d *DomTree) Idom(b *Block) *Block { return d.idom[b] }

// Children returns the dominator-tree children of b.
func (d *DomTree) Children(b *Block) []*Block { return d.children[b] }

// Frontier returns the dominance frontier of b.
func (d *DomTree) Frontier(b *Block) []*Block { return d.frontier[b] }

// Preds returns the CFG predecessors of b (reachable ones only).
func (d *DomTree) Preds(b *Block) []*Block { return d.preds[b] }

// Dominates reports whether a dominates b.
func (d *DomTree) Dominates(a, b *Block) bool {
	for {
		if a == b {
			return true
		}
		p := d.idom[b]
		if p == nil || p == b {
			return false
		}
		b = p
	}
}

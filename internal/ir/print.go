package ir

import (
	"fmt"
	"strings"
)

// String renders the module in an LLVM-like textual form that Parse can
// read back (modulo global initializer data, which prints as a hex blob).
func (m *Module) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "; module %s\n", m.Name)
	for _, st := range m.collectStructs() {
		fields := make([]string, len(st.Fields))
		for i, f := range st.Fields {
			fields[i] = f.String()
		}
		fmt.Fprintf(&sb, "%%struct.%s = type { %s }\n", st.TagName, strings.Join(fields, ", "))
	}
	for _, g := range m.Globals {
		fmt.Fprintf(&sb, "@%s = global %s", g.Name, g.Elem)
		if hasNonZero(g.Init) {
			fmt.Fprintf(&sb, " init \"%x\"", g.Init)
		}
		sb.WriteString("\n")
	}
	for _, f := range m.Funcs {
		sb.WriteString("\n")
		sb.WriteString(f.String())
	}
	return sb.String()
}

func hasNonZero(b []byte) bool {
	for _, v := range b {
		if v != 0 {
			return true
		}
	}
	return false
}

// collectStructs gathers the named struct types referenced by the module,
// in first-appearance order.
func (m *Module) collectStructs() []*Type {
	var out []*Type
	seen := make(map[string]bool)
	var visit func(t *Type)
	visit = func(t *Type) {
		if t == nil {
			return
		}
		switch t.Kind {
		case KindStruct:
			if t.TagName == "" || seen[t.TagName] {
				return
			}
			seen[t.TagName] = true
			// Fields first would break self-reference ordering; emit the
			// struct, then visit fields for nested tags.
			out = append(out, t)
			for _, f := range t.Fields {
				visit(f)
			}
		case KindPtr, KindArray:
			visit(t.Elem)
		case KindFunc:
			visit(t.Return)
			for _, p := range t.Params {
				visit(p)
			}
		}
	}
	for _, g := range m.Globals {
		visit(g.Elem)
	}
	for _, f := range m.Funcs {
		visit(f.Sig)
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				visit(in.Ty)
				if in.AllocTy != nil {
					visit(in.AllocTy)
				}
				for _, a := range in.Args {
					visit(a.Type())
				}
			}
		}
	}
	return out
}

// String renders the function.
func (f *Function) String() string {
	f.Renumber()
	var sb strings.Builder
	params := make([]string, len(f.Params))
	for i, p := range f.Params {
		params[i] = fmt.Sprintf("%s %%%s", p.Ty, p.Name)
	}
	if len(f.Blocks) == 0 {
		fmt.Fprintf(&sb, "declare %s @%s(%s)\n", f.Sig.Return, f.Name, strings.Join(params, ", "))
		return sb.String()
	}
	fmt.Fprintf(&sb, "define %s @%s(%s) {\n", f.Sig.Return, f.Name, strings.Join(params, ", "))
	for _, b := range f.Blocks {
		fmt.Fprintf(&sb, "%s:\n", b.Name)
		for _, in := range b.Instrs {
			sb.WriteString("  ")
			sb.WriteString(in.String())
			sb.WriteString("\n")
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}

// String renders one instruction.
func (in *Instr) String() string {
	var sb strings.Builder
	if in.HasResult() {
		fmt.Fprintf(&sb, "%s = ", in.Ident())
	}
	switch {
	case in.Op.IsArith():
		fmt.Fprintf(&sb, "%s %s %s, %s", in.Op, in.Ty, in.Args[0].Ident(), in.Args[1].Ident())
	case in.Op == OpICmp || in.Op == OpFCmp:
		fmt.Fprintf(&sb, "%s %s %s %s, %s", in.Op, in.Pred, in.Args[0].Type(), in.Args[0].Ident(), in.Args[1].Ident())
	case in.Op.IsCast():
		fmt.Fprintf(&sb, "%s %s %s to %s", in.Op, in.Args[0].Type(), in.Args[0].Ident(), in.Ty)
	case in.Op == OpAlloca:
		fmt.Fprintf(&sb, "alloca %s", in.AllocTy)
	case in.Op == OpLoad:
		fmt.Fprintf(&sb, "load %s, %s %s", in.Ty, in.Args[0].Type(), in.Args[0].Ident())
	case in.Op == OpStore:
		fmt.Fprintf(&sb, "store %s %s, %s %s", in.Args[0].Type(), in.Args[0].Ident(), in.Args[1].Type(), in.Args[1].Ident())
	case in.Op == OpGEP:
		fmt.Fprintf(&sb, "getelementptr %s %s", in.Args[0].Type(), in.Args[0].Ident())
		for _, idx := range in.Args[1:] {
			fmt.Fprintf(&sb, ", %s %s", idx.Type(), idx.Ident())
		}
	case in.Op == OpPhi:
		fmt.Fprintf(&sb, "phi %s ", in.Ty)
		for i := range in.Args {
			if i > 0 {
				sb.WriteString(", ")
			}
			fmt.Fprintf(&sb, "[ %s, %%%s ]", in.Args[i].Ident(), in.Blocks[i].Name)
		}
	case in.Op == OpBr:
		fmt.Fprintf(&sb, "br label %%%s", in.Blocks[0].Name)
	case in.Op == OpCondBr:
		fmt.Fprintf(&sb, "br i1 %s, label %%%s, label %%%s", in.Args[0].Ident(), in.Blocks[0].Name, in.Blocks[1].Name)
	case in.Op == OpCall:
		name := in.Builtin
		if in.Callee != nil {
			name = in.Callee.Name
		}
		args := make([]string, len(in.Args))
		for i, a := range in.Args {
			args[i] = fmt.Sprintf("%s %s", a.Type(), a.Ident())
		}
		fmt.Fprintf(&sb, "call %s @%s(%s)", in.Ty, name, strings.Join(args, ", "))
	case in.Op == OpRet:
		if len(in.Args) == 0 {
			sb.WriteString("ret void")
		} else {
			fmt.Fprintf(&sb, "ret %s %s", in.Args[0].Type(), in.Args[0].Ident())
		}
	default:
		fmt.Fprintf(&sb, "%s ???", in.Op)
	}
	return sb.String()
}

package ir

// LoopDepths computes the natural-loop nesting depth of every reachable
// block, via dominator-tree back edges. The backend uses it to rank
// values for register allocation.
func LoopDepths(f *Function) map[*Block]int {
	depth := make(map[*Block]int, len(f.Blocks))
	if len(f.Blocks) == 0 {
		return depth
	}
	dom := BuildDomTree(f)
	for _, b := range f.Blocks {
		depth[b] = 0
	}
	// A back edge u->h (h dominates u) defines a natural loop: h plus all
	// blocks that reach u without passing through h.
	for _, u := range f.Blocks {
		if !dom.Reachable(u) {
			continue
		}
		for _, h := range u.Succs() {
			if !dom.Dominates(h, u) {
				continue
			}
			body := map[*Block]bool{h: true}
			stack := []*Block{u}
			for len(stack) > 0 {
				b := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if body[b] {
					continue
				}
				body[b] = true
				for _, p := range dom.Preds(b) {
					if !body[p] {
						stack = append(stack, p)
					}
				}
			}
			for b := range body {
				depth[b]++
			}
		}
	}
	return depth
}

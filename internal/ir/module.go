package ir

import (
	"fmt"
	"strconv"
)

// Module is a translation unit: globals plus functions.
type Module struct {
	Name    string
	Globals []*Global
	Funcs   []*Function

	funcByName   map[string]*Function
	globalByName map[string]*Global
}

// NewModule returns an empty module.
func NewModule(name string) *Module {
	return &Module{
		Name:         name,
		funcByName:   make(map[string]*Function),
		globalByName: make(map[string]*Global),
	}
}

// AddGlobal registers a global variable.
func (m *Module) AddGlobal(g *Global) *Global {
	m.Globals = append(m.Globals, g)
	m.globalByName[g.Name] = g
	return g
}

// Global looks up a global by name.
func (m *Module) Global(name string) *Global { return m.globalByName[name] }

// NewFunc creates and registers a function with the given signature.
func (m *Module) NewFunc(name string, sig *Type) *Function {
	f := &Function{Name: name, Sig: sig, Module: m}
	for i, pt := range sig.Params {
		f.Params = append(f.Params, &Param{Name: "arg" + strconv.Itoa(i), Ty: pt, Index: i})
	}
	m.Funcs = append(m.Funcs, f)
	m.funcByName[name] = f
	return f
}

// Func looks up a function by name.
func (m *Module) Func(name string) *Function { return m.funcByName[name] }

// AssignSeq numbers every instruction in the module densely and returns
// the total. The sequence index keys profiling counters and injection
// candidate sets. Call after all passes have run.
func (m *Module) AssignSeq() int {
	seq := 0
	for _, f := range m.Funcs {
		f.Renumber()
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				in.Seq = seq
				seq++
			}
		}
	}
	return seq
}

// Function is an IR function: a CFG of basic blocks.
type Function struct {
	Name   string
	Sig    *Type
	Params []*Param
	Blocks []*Block
	Module *Module

	nextID int
}

// Entry returns the entry block.
func (f *Function) Entry() *Block {
	if len(f.Blocks) == 0 {
		return nil
	}
	return f.Blocks[0]
}

// NewBlock appends a new basic block.
func (f *Function) NewBlock(name string) *Block {
	b := &Block{Name: name + strconv.Itoa(len(f.Blocks)), Parent: f, Index: len(f.Blocks)}
	f.Blocks = append(f.Blocks, b)
	return b
}

// Renumber reassigns dense instruction IDs and block indices; call after
// structural changes (passes) and before printing or selection.
func (f *Function) Renumber() {
	id := 0
	for i, b := range f.Blocks {
		b.Index = i
		for _, in := range b.Instrs {
			in.Parent = b
			if in.HasResult() {
				in.ID = id
				id++
			} else {
				in.ID = -1
			}
		}
	}
	f.nextID = id
}

// NumValues returns the number of value-producing instructions after the
// last Renumber.
func (f *Function) NumValues() int { return f.nextID }

// Block is a basic block: a straight-line instruction list ending in a
// terminator.
type Block struct {
	Name   string
	Instrs []*Instr
	Parent *Function
	Index  int
}

// Append adds an instruction to the block.
func (b *Block) Append(in *Instr) *Instr {
	in.Parent = b
	b.Instrs = append(b.Instrs, in)
	return in
}

// Terminator returns the block's final instruction, or nil.
func (b *Block) Terminator() *Instr {
	if len(b.Instrs) == 0 {
		return nil
	}
	last := b.Instrs[len(b.Instrs)-1]
	if !last.Op.IsTerminator() {
		return nil
	}
	return last
}

// Succs returns the block's CFG successors.
func (b *Block) Succs() []*Block {
	t := b.Terminator()
	if t == nil {
		return nil
	}
	return t.Blocks
}

// Preds computes the block's CFG predecessors (O(function size)).
func (b *Block) Preds() []*Block {
	var preds []*Block
	for _, other := range b.Parent.Blocks {
		for _, s := range other.Succs() {
			if s == b {
				preds = append(preds, other)
				break
			}
		}
	}
	return preds
}

// UseInfo records, for each value in a function, the instructions that
// read it. The def-use view is what lets the high-level injector restrict
// itself to faults that will be activated (paper §IV).
type UseInfo struct {
	uses map[Value][]*Instr
}

// ComputeUses builds use information for f.
func ComputeUses(f *Function) *UseInfo {
	u := &UseInfo{uses: make(map[Value][]*Instr)}
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			for _, a := range in.Args {
				u.uses[a] = append(u.uses[a], in)
			}
		}
	}
	return u
}

// Uses returns the instructions reading v.
func (u *UseInfo) Uses(v Value) []*Instr { return u.uses[v] }

// NumUses returns len(Uses(v)).
func (u *UseInfo) NumUses(v Value) int { return len(u.uses[v]) }

// Verify checks structural invariants of the module and returns the first
// violation found.
func (m *Module) Verify() error {
	for _, f := range m.Funcs {
		if err := verifyFunc(f); err != nil {
			return fmt.Errorf("func @%s: %w", f.Name, err)
		}
	}
	return nil
}

func verifyFunc(f *Function) error {
	if len(f.Blocks) == 0 {
		return nil // declaration
	}
	blockSet := make(map[*Block]bool, len(f.Blocks))
	for _, b := range f.Blocks {
		blockSet[b] = true
	}
	for _, b := range f.Blocks {
		if len(b.Instrs) == 0 {
			return fmt.Errorf("block %s: empty", b.Name)
		}
		if b.Terminator() == nil {
			return fmt.Errorf("block %s: missing terminator", b.Name)
		}
		for i, in := range b.Instrs {
			if in.Op.IsTerminator() && i != len(b.Instrs)-1 {
				return fmt.Errorf("block %s: terminator %s not last", b.Name, in.Op)
			}
			if in.Op == OpPhi && !isLeadingPhi(b, i) {
				return fmt.Errorf("block %s: phi after non-phi", b.Name)
			}
			if err := verifyInstr(f, b, in, blockSet); err != nil {
				return fmt.Errorf("block %s, %s: %w", b.Name, in.Op, err)
			}
		}
	}
	return nil
}

func isLeadingPhi(b *Block, idx int) bool {
	for i := 0; i < idx; i++ {
		if b.Instrs[i].Op != OpPhi {
			return false
		}
	}
	return true
}

func verifyInstr(f *Function, b *Block, in *Instr, blocks map[*Block]bool) error {
	for _, t := range in.Blocks {
		if !blocks[t] {
			return fmt.Errorf("references block outside function")
		}
	}
	for _, a := range in.Args {
		if a == nil {
			return fmt.Errorf("nil operand")
		}
	}
	switch in.Op {
	case OpAdd, OpSub, OpMul, OpSDiv, OpSRem, OpUDiv, OpURem,
		OpAnd, OpOr, OpXor, OpShl, OpLShr, OpAShr:
		if len(in.Args) != 2 {
			return fmt.Errorf("want 2 operands, have %d", len(in.Args))
		}
		if !in.Ty.IsInt() || !in.Args[0].Type().Equal(in.Ty) || !in.Args[1].Type().Equal(in.Ty) {
			return fmt.Errorf("operand/result type mismatch: %s %s %s",
				in.Args[0].Type(), in.Args[1].Type(), in.Ty)
		}
	case OpFAdd, OpFSub, OpFMul, OpFDiv:
		if len(in.Args) != 2 || !in.Ty.IsFloat() {
			return fmt.Errorf("bad float arith")
		}
	case OpICmp:
		if len(in.Args) != 2 || !in.Ty.Equal(I1) {
			return fmt.Errorf("icmp must yield i1")
		}
		if !in.Args[0].Type().Equal(in.Args[1].Type()) {
			return fmt.Errorf("icmp operand mismatch: %s vs %s", in.Args[0].Type(), in.Args[1].Type())
		}
	case OpFCmp:
		if len(in.Args) != 2 || !in.Ty.Equal(I1) || !in.Args[0].Type().IsFloat() {
			return fmt.Errorf("bad fcmp")
		}
	case OpTrunc:
		if in.Args[0].Type().Bits <= in.Ty.Bits {
			return fmt.Errorf("trunc must narrow")
		}
	case OpZExt, OpSExt:
		if in.Args[0].Type().Bits >= in.Ty.Bits {
			return fmt.Errorf("ext must widen (%s -> %s)", in.Args[0].Type(), in.Ty)
		}
	case OpFPToSI:
		if !in.Args[0].Type().IsFloat() || !in.Ty.IsInt() {
			return fmt.Errorf("bad fptosi")
		}
	case OpSIToFP:
		if !in.Args[0].Type().IsInt() || !in.Ty.IsFloat() {
			return fmt.Errorf("bad sitofp")
		}
	case OpPtrToInt:
		if !in.Args[0].Type().IsPtr() || !in.Ty.IsInt() {
			return fmt.Errorf("bad ptrtoint")
		}
	case OpIntToPtr:
		if !in.Args[0].Type().IsInt() || !in.Ty.IsPtr() {
			return fmt.Errorf("bad inttoptr")
		}
	case OpBitcast:
		if !in.Args[0].Type().IsPtr() || !in.Ty.IsPtr() {
			return fmt.Errorf("bitcast restricted to pointers")
		}
	case OpLoad:
		if len(in.Args) != 1 || !in.Args[0].Type().IsPtr() {
			return fmt.Errorf("load wants pointer operand")
		}
		if !in.Args[0].Type().Elem.Equal(in.Ty) {
			return fmt.Errorf("load type mismatch: *%s vs %s", in.Args[0].Type().Elem, in.Ty)
		}
	case OpStore:
		if len(in.Args) != 2 || !in.Args[1].Type().IsPtr() {
			return fmt.Errorf("store wants [val, ptr]")
		}
		if !in.Args[1].Type().Elem.Equal(in.Args[0].Type()) {
			return fmt.Errorf("store type mismatch: %s into *%s", in.Args[0].Type(), in.Args[1].Type().Elem)
		}
	case OpGEP:
		if len(in.Args) < 2 || !in.Args[0].Type().IsPtr() || !in.Ty.IsPtr() {
			return fmt.Errorf("bad gep")
		}
	case OpAlloca:
		if in.AllocTy == nil || !in.Ty.IsPtr() {
			return fmt.Errorf("bad alloca")
		}
	case OpPhi:
		if len(in.Args) != len(in.Blocks) || len(in.Args) == 0 {
			return fmt.Errorf("phi args/blocks mismatch")
		}
		preds := b.Preds()
		if len(preds) != len(in.Blocks) {
			return fmt.Errorf("phi has %d incoming, block has %d preds", len(in.Blocks), len(preds))
		}
	case OpBr:
		if len(in.Blocks) != 1 {
			return fmt.Errorf("br wants 1 target")
		}
	case OpCondBr:
		if len(in.Args) != 1 || len(in.Blocks) != 2 || !in.Args[0].Type().Equal(I1) {
			return fmt.Errorf("bad condbr")
		}
	case OpCall:
		if in.Callee == nil && in.Builtin == "" {
			return fmt.Errorf("call without target")
		}
		if in.Callee != nil {
			sig := in.Callee.Sig
			if !sig.Variadic && len(in.Args) != len(sig.Params) {
				return fmt.Errorf("call @%s: want %d args, have %d", in.Callee.Name, len(sig.Params), len(in.Args))
			}
			for i := range sig.Params {
				if !in.Args[i].Type().Equal(sig.Params[i]) {
					return fmt.Errorf("call @%s arg %d: %s vs %s", in.Callee.Name, i, in.Args[i].Type(), sig.Params[i])
				}
			}
			if !in.Ty.Equal(sig.Return) {
				return fmt.Errorf("call @%s: result %s vs %s", in.Callee.Name, in.Ty, sig.Return)
			}
		}
	case OpRet:
		ret := f.Sig.Return
		if ret.Kind == KindVoid && len(in.Args) != 0 {
			return fmt.Errorf("ret value in void function")
		}
		if ret.Kind != KindVoid && (len(in.Args) != 1 || !in.Args[0].Type().Equal(ret)) {
			return fmt.Errorf("bad ret type")
		}
	default:
		return fmt.Errorf("unknown op %d", in.Op)
	}
	return nil
}

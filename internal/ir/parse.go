package ir

import (
	"encoding/hex"
	"fmt"
	"strconv"
	"strings"
)

// Parse reads the textual IR form produced by Module.String back into a
// module. It accepts exactly the printer's grammar:
//
//	; comments
//	%struct.tag = type { i32, %struct.tag* }
//	@g = global [4 x i32] init "0100000002000000"
//	define i32 @f(i32 %n) { ... }
//	declare void @ext(i64 %x)
//
// Having a parser makes IR-level tests and tools first-class: passes can
// be exercised on hand-written IR instead of going through the C
// frontend.
func Parse(src string) (*Module, error) {
	p := &irParser{
		mod:     NewModule("parsed"),
		structs: make(map[string]*Type),
	}
	if err := p.run(src); err != nil {
		return nil, err
	}
	return p.mod, nil
}

// MustParse is Parse for tests and examples; it panics on error.
func MustParse(src string) *Module {
	m, err := Parse(src)
	if err != nil {
		panic("ir.MustParse: " + err.Error())
	}
	return m
}

type irParser struct {
	mod     *Module
	structs map[string]*Type
}

type irLine struct {
	no   int
	text string
}

func (p *irParser) run(src string) error {
	var lines []irLine
	for i, raw := range strings.Split(src, "\n") {
		text := raw
		// Strip comments; the only quoted strings are hex init blobs,
		// which never contain ';'.
		if idx := strings.Index(text, ";"); idx >= 0 {
			text = text[:idx]
		}
		text = strings.TrimSpace(text)
		if text == "" {
			continue
		}
		lines = append(lines, irLine{no: i + 1, text: text})
	}

	// Pass 0: struct shells, so self-referential fields resolve.
	for _, ln := range lines {
		if name, ok := structDeclName(ln.text); ok {
			p.structs[name] = &Type{Kind: KindStruct, TagName: name}
		}
	}
	// Pass 0b: struct fields.
	for _, ln := range lines {
		if name, ok := structDeclName(ln.text); ok {
			if err := p.parseStructFields(name, ln); err != nil {
				return err
			}
		}
	}

	// Pass 1: globals and function signatures (so calls resolve).
	type fnBody struct {
		fn    *Function
		lines []irLine
	}
	var bodies []fnBody
	i := 0
	for i < len(lines) {
		ln := lines[i]
		switch {
		case strings.HasPrefix(ln.text, "%struct."):
			i++
		case strings.HasPrefix(ln.text, "@"):
			if err := p.parseGlobal(ln); err != nil {
				return err
			}
			i++
		case strings.HasPrefix(ln.text, "declare "):
			if _, err := p.parseSignature(strings.TrimPrefix(ln.text, "declare "), ln); err != nil {
				return err
			}
			i++
		case strings.HasPrefix(ln.text, "define "):
			header := strings.TrimSuffix(strings.TrimPrefix(ln.text, "define "), "{")
			fn, err := p.parseSignature(strings.TrimSpace(header), ln)
			if err != nil {
				return err
			}
			if !strings.HasSuffix(ln.text, "{") {
				return fmt.Errorf("line %d: define must end with '{'", ln.no)
			}
			body := fnBody{fn: fn}
			i++
			for i < len(lines) && lines[i].text != "}" {
				body.lines = append(body.lines, lines[i])
				i++
			}
			if i == len(lines) {
				return fmt.Errorf("line %d: unterminated function body", ln.no)
			}
			i++ // consume }
			bodies = append(bodies, body)
		default:
			return fmt.Errorf("line %d: unrecognized top-level %q", ln.no, ln.text)
		}
	}

	// Pass 2: function bodies.
	for _, b := range bodies {
		if err := p.parseBody(b.fn, b.lines); err != nil {
			return err
		}
	}
	if err := p.mod.Verify(); err != nil {
		return fmt.Errorf("parsed module invalid: %w", err)
	}
	return nil
}

func structDeclName(text string) (string, bool) {
	if !strings.HasPrefix(text, "%struct.") {
		return "", false
	}
	rest := strings.TrimPrefix(text, "%struct.")
	idx := strings.Index(rest, " ")
	if idx < 0 {
		return "", false
	}
	return rest[:idx], strings.Contains(rest[idx:], "= type")
}

func (p *irParser) parseStructFields(name string, ln irLine) error {
	open := strings.Index(ln.text, "{")
	closeIdx := strings.LastIndex(ln.text, "}")
	if open < 0 || closeIdx < open {
		return fmt.Errorf("line %d: malformed struct", ln.no)
	}
	body := strings.TrimSpace(ln.text[open+1 : closeIdx])
	st := p.structs[name]
	if body == "" {
		return nil
	}
	for _, fieldSrc := range splitTopLevel(body) {
		c := newCursor(fieldSrc, ln.no)
		ft, err := p.parseType(c)
		if err != nil {
			return err
		}
		st.Fields = append(st.Fields, ft)
	}
	return nil
}

func (p *irParser) parseGlobal(ln irLine) error {
	c := newCursor(ln.text, ln.no)
	name, err := c.expectSigil('@')
	if err != nil {
		return err
	}
	if err := c.expectWord("="); err != nil {
		return err
	}
	if err := c.expectWord("global"); err != nil {
		return err
	}
	ty, err := p.parseType(c)
	if err != nil {
		return err
	}
	g := &Global{Name: name, Elem: ty, Init: make([]byte, ty.Size())}
	c.skipSpace()
	if c.hasWord("init") {
		_ = c.expectWord("init")
		blob, err := c.quoted()
		if err != nil {
			return err
		}
		data, err := hex.DecodeString(blob)
		if err != nil {
			return fmt.Errorf("line %d: bad init blob: %v", ln.no, err)
		}
		if len(data) > len(g.Init) {
			return fmt.Errorf("line %d: init blob larger than global", ln.no)
		}
		copy(g.Init, data)
	}
	p.mod.AddGlobal(g)
	return nil
}

// parseSignature parses "RET @name(T %a, T %b)" and registers (or
// returns the existing) function.
func (p *irParser) parseSignature(text string, ln irLine) (*Function, error) {
	c := newCursor(text, ln.no)
	ret, err := p.parseType(c)
	if err != nil {
		return nil, err
	}
	name, err := c.expectSigil('@')
	if err != nil {
		return nil, err
	}
	if err := c.expectRune('('); err != nil {
		return nil, err
	}
	var paramTypes []*Type
	var paramNames []string
	c.skipSpace()
	if !c.tryRune(')') {
		for {
			pt, err := p.parseType(c)
			if err != nil {
				return nil, err
			}
			pn, err := c.expectSigil('%')
			if err != nil {
				return nil, err
			}
			paramTypes = append(paramTypes, pt)
			paramNames = append(paramNames, pn)
			c.skipSpace()
			if c.tryRune(')') {
				break
			}
			if err := c.expectRune(','); err != nil {
				return nil, err
			}
		}
	}
	if existing := p.mod.Func(name); existing != nil {
		return existing, nil
	}
	fn := p.mod.NewFunc(name, FuncType(ret, paramTypes...))
	for i, n := range paramNames {
		fn.Params[i].Name = n
	}
	return fn, nil
}

// parseBody fills a function from its body lines in two passes: first the
// blocks and result placeholders, then full instructions.
func (p *irParser) parseBody(fn *Function, lines []irLine) error {
	blocks := make(map[string]*Block)
	instrByID := make(map[int]*Instr)
	params := make(map[string]*Param, len(fn.Params))
	for _, pr := range fn.Params {
		params[pr.Name] = pr
	}

	// Pass A: blocks and instruction shells.
	var cur *Block
	type pending struct {
		in   *Instr
		line irLine
		body string // after "%N = " if any
	}
	var work []pending
	for _, ln := range lines {
		if strings.HasSuffix(ln.text, ":") && !strings.Contains(ln.text, " ") {
			name := strings.TrimSuffix(ln.text, ":")
			b := fn.NewBlock("")
			b.Name = name
			blocks[name] = b
			cur = b
			continue
		}
		if cur == nil {
			return fmt.Errorf("line %d: instruction before first block label", ln.no)
		}
		in := &Instr{}
		body := ln.text
		if strings.HasPrefix(body, "%") && strings.Contains(body, " = ") {
			eq := strings.Index(body, " = ")
			idText := strings.TrimPrefix(body[:eq], "%")
			id, err := strconv.Atoi(idText)
			if err != nil {
				return fmt.Errorf("line %d: bad result id %q", ln.no, idText)
			}
			in.ID = id
			instrByID[id] = in
			body = body[eq+3:]
		}
		cur.Append(in)
		work = append(work, pending{in: in, line: ln, body: body})
	}

	env := &bodyEnv{p: p, fn: fn, blocks: blocks, instrs: instrByID, params: params}
	for _, w := range work {
		if err := env.parseInstr(w.in, w.body, w.line); err != nil {
			return err
		}
	}
	fn.Renumber()
	return nil
}

type bodyEnv struct {
	p      *irParser
	fn     *Function
	blocks map[string]*Block
	instrs map[int]*Instr
	params map[string]*Param
}

var parsePreds = map[string]Pred{
	"eq": PredEQ, "ne": PredNE, "slt": PredLT, "sle": PredLE,
	"sgt": PredGT, "sge": PredGE, "ult": PredULT, "ule": PredULE,
	"ugt": PredUGT, "uge": PredUGE,
}

var parseOps = map[string]Op{
	"add": OpAdd, "sub": OpSub, "mul": OpMul, "sdiv": OpSDiv, "srem": OpSRem,
	"udiv": OpUDiv, "urem": OpURem, "and": OpAnd, "or": OpOr, "xor": OpXor,
	"shl": OpShl, "lshr": OpLShr, "ashr": OpAShr,
	"fadd": OpFAdd, "fsub": OpFSub, "fmul": OpFMul, "fdiv": OpFDiv,
	"trunc": OpTrunc, "zext": OpZExt, "sext": OpSExt, "fptosi": OpFPToSI,
	"sitofp": OpSIToFP, "ptrtoint": OpPtrToInt, "inttoptr": OpIntToPtr,
	"bitcast": OpBitcast,
}

func (e *bodyEnv) parseInstr(in *Instr, body string, ln irLine) error {
	c := newCursor(body, ln.no)
	op, err := c.word()
	if err != nil {
		return err
	}
	if o, isBin := parseOps[op]; isBin && o.IsArith() {
		in.Op = o
		ty, err := e.p.parseType(c)
		if err != nil {
			return err
		}
		in.Ty = ty
		a, err := e.value(c, ty)
		if err != nil {
			return err
		}
		if err := c.expectRune(','); err != nil {
			return err
		}
		b, err := e.value(c, ty)
		if err != nil {
			return err
		}
		in.Args = []Value{a, b}
		return nil
	}
	if o, isCast := parseOps[op]; isCast && o.IsCast() {
		in.Op = o
		srcTy, err := e.p.parseType(c)
		if err != nil {
			return err
		}
		v, err := e.value(c, srcTy)
		if err != nil {
			return err
		}
		if err := c.expectWord("to"); err != nil {
			return err
		}
		dstTy, err := e.p.parseType(c)
		if err != nil {
			return err
		}
		in.Ty = dstTy
		in.Args = []Value{v}
		return nil
	}
	switch op {
	case "icmp", "fcmp":
		in.Op = OpICmp
		if op == "fcmp" {
			in.Op = OpFCmp
		}
		predName, err := c.word()
		if err != nil {
			return err
		}
		pred, ok := parsePreds[predName]
		if !ok {
			return fmt.Errorf("line %d: unknown predicate %q", ln.no, predName)
		}
		in.Pred = pred
		in.Ty = I1
		ty, err := e.p.parseType(c)
		if err != nil {
			return err
		}
		a, err := e.value(c, ty)
		if err != nil {
			return err
		}
		if err := c.expectRune(','); err != nil {
			return err
		}
		b, err := e.value(c, ty)
		if err != nil {
			return err
		}
		in.Args = []Value{a, b}
		return nil

	case "alloca":
		in.Op = OpAlloca
		ty, err := e.p.parseType(c)
		if err != nil {
			return err
		}
		in.AllocTy = ty
		in.Ty = PointerTo(ty)
		return nil

	case "load":
		in.Op = OpLoad
		ty, err := e.p.parseType(c)
		if err != nil {
			return err
		}
		in.Ty = ty
		if err := c.expectRune(','); err != nil {
			return err
		}
		pty, err := e.p.parseType(c)
		if err != nil {
			return err
		}
		ptr, err := e.value(c, pty)
		if err != nil {
			return err
		}
		in.Args = []Value{ptr}
		return nil

	case "store":
		in.Op = OpStore
		in.Ty = Void
		vt, err := e.p.parseType(c)
		if err != nil {
			return err
		}
		v, err := e.value(c, vt)
		if err != nil {
			return err
		}
		if err := c.expectRune(','); err != nil {
			return err
		}
		pt, err := e.p.parseType(c)
		if err != nil {
			return err
		}
		ptr, err := e.value(c, pt)
		if err != nil {
			return err
		}
		in.Args = []Value{v, ptr}
		return nil

	case "getelementptr":
		in.Op = OpGEP
		bt, err := e.p.parseType(c)
		if err != nil {
			return err
		}
		base, err := e.value(c, bt)
		if err != nil {
			return err
		}
		in.Args = []Value{base}
		var steps []Value
		for {
			c.skipSpace()
			if !c.tryRune(',') {
				break
			}
			it, err := e.p.parseType(c)
			if err != nil {
				return err
			}
			iv, err := e.value(c, it)
			if err != nil {
				return err
			}
			in.Args = append(in.Args, iv)
			steps = append(steps, iv)
		}
		if len(steps) == 0 {
			return fmt.Errorf("line %d: gep needs indices", ln.no)
		}
		res := GEPResultType(bt, steps[1:])
		if res == nil {
			return fmt.Errorf("line %d: cannot type gep", ln.no)
		}
		in.Ty = res
		return nil

	case "phi":
		in.Op = OpPhi
		ty, err := e.p.parseType(c)
		if err != nil {
			return err
		}
		in.Ty = ty
		for {
			c.skipSpace()
			if !c.tryRune('[') {
				break
			}
			v, err := e.value(c, ty)
			if err != nil {
				return err
			}
			if err := c.expectRune(','); err != nil {
				return err
			}
			bName, err := c.expectSigil('%')
			if err != nil {
				return err
			}
			blk, ok := e.blocks[bName]
			if !ok {
				return fmt.Errorf("line %d: unknown block %%%s", ln.no, bName)
			}
			if err := c.expectRune(']'); err != nil {
				return err
			}
			in.Args = append(in.Args, v)
			in.Blocks = append(in.Blocks, blk)
			c.skipSpace()
			if !c.tryRune(',') {
				break
			}
		}
		return nil

	case "br":
		in.Ty = Void
		c.skipSpace()
		if c.hasWord("label") {
			in.Op = OpBr
			blk, err := e.labelRef(c)
			if err != nil {
				return err
			}
			in.Blocks = []*Block{blk}
			return nil
		}
		in.Op = OpCondBr
		if err := c.expectWord("i1"); err != nil {
			return err
		}
		cond, err := e.value(c, I1)
		if err != nil {
			return err
		}
		if err := c.expectRune(','); err != nil {
			return err
		}
		t1, err := e.labelRef(c)
		if err != nil {
			return err
		}
		if err := c.expectRune(','); err != nil {
			return err
		}
		t2, err := e.labelRef(c)
		if err != nil {
			return err
		}
		in.Args = []Value{cond}
		in.Blocks = []*Block{t1, t2}
		return nil

	case "call":
		in.Op = OpCall
		ret, err := e.p.parseType(c)
		if err != nil {
			return err
		}
		in.Ty = ret
		name, err := c.expectSigil('@')
		if err != nil {
			return err
		}
		if err := c.expectRune('('); err != nil {
			return err
		}
		c.skipSpace()
		if !c.tryRune(')') {
			for {
				at, err := e.p.parseType(c)
				if err != nil {
					return err
				}
				av, err := e.value(c, at)
				if err != nil {
					return err
				}
				in.Args = append(in.Args, av)
				c.skipSpace()
				if c.tryRune(')') {
					break
				}
				if err := c.expectRune(','); err != nil {
					return err
				}
			}
		}
		if callee := e.p.mod.Func(name); callee != nil {
			in.Callee = callee
		} else {
			in.Builtin = name
		}
		return nil

	case "ret":
		in.Op = OpRet
		in.Ty = Void
		c.skipSpace()
		if c.hasWord("void") {
			return nil
		}
		ty, err := e.p.parseType(c)
		if err != nil {
			return err
		}
		v, err := e.value(c, ty)
		if err != nil {
			return err
		}
		in.Args = []Value{v}
		return nil
	}
	return fmt.Errorf("line %d: unknown instruction %q", ln.no, op)
}

func (e *bodyEnv) labelRef(c *cursor) (*Block, error) {
	if err := c.expectWord("label"); err != nil {
		return nil, err
	}
	name, err := c.expectSigil('%')
	if err != nil {
		return nil, err
	}
	blk, ok := e.blocks[name]
	if !ok {
		return nil, fmt.Errorf("line %d: unknown block %%%s", c.line, name)
	}
	return blk, nil
}

// value parses one operand of the given type.
func (e *bodyEnv) value(c *cursor, ty *Type) (Value, error) {
	c.skipSpace()
	switch {
	case c.peek() == '%':
		name, _ := c.expectSigil('%')
		if id, err := strconv.Atoi(name); err == nil {
			in, ok := e.instrs[id]
			if !ok {
				return nil, fmt.Errorf("line %d: unknown value %%%d", c.line, id)
			}
			return in, nil
		}
		if p, ok := e.params[name]; ok {
			return p, nil
		}
		return nil, fmt.Errorf("line %d: unknown value %%%s", c.line, name)
	case c.peek() == '@':
		name, _ := c.expectSigil('@')
		if g := e.p.mod.Global(name); g != nil {
			return g, nil
		}
		if f := e.p.mod.Func(name); f != nil {
			return &FuncValue{Fn: f}, nil
		}
		return nil, fmt.Errorf("line %d: unknown symbol @%s", c.line, name)
	case c.hasWord("null"):
		_ = c.expectWord("null")
		return ConstNull(ty), nil
	default:
		lit, err := c.word()
		if err != nil {
			return nil, err
		}
		if ty.IsFloat() {
			f, err := strconv.ParseFloat(lit, 64)
			if err != nil {
				return nil, fmt.Errorf("line %d: bad float %q", c.line, lit)
			}
			return ConstFloat(f), nil
		}
		v, err := strconv.ParseInt(lit, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("line %d: bad literal %q", c.line, lit)
		}
		return ConstInt(ty, v), nil
	}
}

// parseType reads a type expression: base (iN, double, void, %struct.tag,
// [N x T]) followed by '*' suffixes.
func (p *irParser) parseType(c *cursor) (*Type, error) {
	c.skipSpace()
	var base *Type
	switch {
	case c.tryRune('['):
		lenTok, err := c.word()
		if err != nil {
			return nil, err
		}
		n, err := strconv.Atoi(lenTok)
		if err != nil {
			return nil, fmt.Errorf("line %d: bad array length %q", c.line, lenTok)
		}
		if err := c.expectWord("x"); err != nil {
			return nil, err
		}
		elem, err := p.parseType(c)
		if err != nil {
			return nil, err
		}
		if err := c.expectRune(']'); err != nil {
			return nil, err
		}
		base = ArrayOf(n, elem)
	case c.peek() == '%':
		name, _ := c.expectSigil('%')
		if !strings.HasPrefix(name, "struct.") {
			return nil, fmt.Errorf("line %d: unknown type %%%s", c.line, name)
		}
		tag := strings.TrimPrefix(name, "struct.")
		st, ok := p.structs[tag]
		if !ok {
			return nil, fmt.Errorf("line %d: undeclared struct %q", c.line, tag)
		}
		base = st
	default:
		w, err := c.word()
		if err != nil {
			return nil, err
		}
		switch w {
		case "void":
			base = Void
		case "double":
			base = F64
		default:
			if !strings.HasPrefix(w, "i") {
				return nil, fmt.Errorf("line %d: unknown type %q", c.line, w)
			}
			bits, err := strconv.Atoi(w[1:])
			if err != nil {
				return nil, fmt.Errorf("line %d: unknown type %q", c.line, w)
			}
			base = IntType(bits)
		}
	}
	for c.tryRune('*') {
		base = PointerTo(base)
	}
	return base, nil
}

// splitTopLevel splits on commas not nested in brackets.
func splitTopLevel(s string) []string {
	var out []string
	depth := 0
	start := 0
	for i, r := range s {
		switch r {
		case '[', '{', '(':
			depth++
		case ']', '}', ')':
			depth--
		case ',':
			if depth == 0 {
				out = append(out, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	out = append(out, strings.TrimSpace(s[start:]))
	return out
}

// cursor is a tiny scanner over one line.
type cursor struct {
	s    string
	pos  int
	line int
}

func newCursor(s string, line int) *cursor { return &cursor{s: s, line: line} }

func (c *cursor) skipSpace() {
	for c.pos < len(c.s) && (c.s[c.pos] == ' ' || c.s[c.pos] == '\t') {
		c.pos++
	}
}

func (c *cursor) peek() byte {
	c.skipSpace()
	if c.pos >= len(c.s) {
		return 0
	}
	return c.s[c.pos]
}

func isWordByte(b byte) bool {
	switch {
	case b >= 'a' && b <= 'z', b >= 'A' && b <= 'Z', b >= '0' && b <= '9':
		return true
	case b == '_' || b == '.' || b == '-' || b == '+':
		return true
	default:
		return false
	}
}

// word reads a bare token (identifier, number, or '=' style punctuation
// word).
func (c *cursor) word() (string, error) {
	c.skipSpace()
	if c.pos >= len(c.s) {
		return "", fmt.Errorf("line %d: unexpected end of line", c.line)
	}
	if c.s[c.pos] == '=' {
		c.pos++
		return "=", nil
	}
	start := c.pos
	for c.pos < len(c.s) && isWordByte(c.s[c.pos]) {
		c.pos++
	}
	if c.pos == start {
		return "", fmt.Errorf("line %d: unexpected %q", c.line, string(c.s[c.pos]))
	}
	return c.s[start:c.pos], nil
}

func (c *cursor) hasWord(w string) bool {
	c.skipSpace()
	if !strings.HasPrefix(c.s[c.pos:], w) {
		return false
	}
	end := c.pos + len(w)
	return end >= len(c.s) || !isWordByte(c.s[end])
}

func (c *cursor) expectWord(w string) error {
	got, err := c.word()
	if err != nil {
		return err
	}
	if got != w {
		return fmt.Errorf("line %d: expected %q, found %q", c.line, w, got)
	}
	return nil
}

func (c *cursor) expectRune(r byte) error {
	c.skipSpace()
	if c.pos >= len(c.s) || c.s[c.pos] != r {
		return fmt.Errorf("line %d: expected %q", c.line, string(r))
	}
	c.pos++
	return nil
}

func (c *cursor) tryRune(r byte) bool {
	c.skipSpace()
	if c.pos < len(c.s) && c.s[c.pos] == r {
		c.pos++
		return true
	}
	return false
}

// expectSigil reads %name or @name.
func (c *cursor) expectSigil(sigil byte) (string, error) {
	if err := c.expectRune(sigil); err != nil {
		return "", err
	}
	start := c.pos
	for c.pos < len(c.s) && isWordByte(c.s[c.pos]) {
		c.pos++
	}
	if c.pos == start {
		return "", fmt.Errorf("line %d: empty name after %q", c.line, string(sigil))
	}
	return c.s[start:c.pos], nil
}

// quoted reads a "..." token.
func (c *cursor) quoted() (string, error) {
	if err := c.expectRune('"'); err != nil {
		return "", err
	}
	start := c.pos
	for c.pos < len(c.s) && c.s[c.pos] != '"' {
		c.pos++
	}
	if c.pos >= len(c.s) {
		return "", fmt.Errorf("line %d: unterminated string", c.line)
	}
	out := c.s[start:c.pos]
	c.pos++
	return out, nil
}

package ir

// Builder appends instructions to a current block, mirroring LLVM's
// IRBuilder. It is the construction API used by the minic code generator
// and by tests.
type Builder struct {
	blk *Block
	// Line stamps emitted instructions with a source line (0 = unknown).
	Line int
}

// NewBuilder returns a builder positioned at the end of b.
func NewBuilder(b *Block) *Builder { return &Builder{blk: b} }

// SetBlock repositions the builder.
func (bu *Builder) SetBlock(b *Block) { bu.blk = b }

// Block returns the current insertion block.
func (bu *Builder) Block() *Block { return bu.blk }

func (bu *Builder) emit(in *Instr) *Instr {
	if in.Line == 0 {
		in.Line = bu.Line
	}
	return bu.blk.Append(in)
}

// Binary emits a two-operand arithmetic/logic instruction.
func (bu *Builder) Binary(op Op, lhs, rhs Value) *Instr {
	ty := lhs.Type()
	if op.IsFloatArith() {
		ty = F64
	}
	return bu.emit(&Instr{Op: op, Ty: ty, Args: []Value{lhs, rhs}})
}

// ICmp emits an integer/pointer comparison yielding i1.
func (bu *Builder) ICmp(p Pred, lhs, rhs Value) *Instr {
	return bu.emit(&Instr{Op: OpICmp, Ty: I1, Pred: p, Args: []Value{lhs, rhs}})
}

// FCmp emits a floating comparison yielding i1.
func (bu *Builder) FCmp(p Pred, lhs, rhs Value) *Instr {
	return bu.emit(&Instr{Op: OpFCmp, Ty: I1, Pred: p, Args: []Value{lhs, rhs}})
}

// Cast emits a cast of v to ty with the given cast opcode.
func (bu *Builder) Cast(op Op, v Value, ty *Type) *Instr {
	return bu.emit(&Instr{Op: op, Ty: ty, Args: []Value{v}})
}

// Alloca emits a stack allocation of ty, yielding *ty.
func (bu *Builder) Alloca(ty *Type) *Instr {
	return bu.emit(&Instr{Op: OpAlloca, Ty: PointerTo(ty), AllocTy: ty})
}

// Load emits a load through ptr.
func (bu *Builder) Load(ptr Value) *Instr {
	return bu.emit(&Instr{Op: OpLoad, Ty: ptr.Type().Elem, Args: []Value{ptr}})
}

// Store emits a store of val through ptr.
func (bu *Builder) Store(val, ptr Value) *Instr {
	return bu.emit(&Instr{Op: OpStore, Ty: Void, Args: []Value{val, ptr}})
}

// GEP emits a getelementptr with LLVM semantics: the first index scales by
// the pointee size; later indices step into arrays/structs. resTy is the
// resulting pointer type.
func (bu *Builder) GEP(resTy *Type, base Value, indices ...Value) *Instr {
	args := make([]Value, 0, 1+len(indices))
	args = append(args, base)
	args = append(args, indices...)
	return bu.emit(&Instr{Op: OpGEP, Ty: resTy, Args: args})
}

// Phi emits an (initially empty) phi of type ty; fill with AddIncoming.
func (bu *Builder) Phi(ty *Type) *Instr {
	return bu.emit(&Instr{Op: OpPhi, Ty: ty})
}

// AddIncoming appends an incoming edge to a phi.
func AddIncoming(phi *Instr, v Value, from *Block) {
	phi.Args = append(phi.Args, v)
	phi.Blocks = append(phi.Blocks, from)
}

// Br emits an unconditional branch.
func (bu *Builder) Br(target *Block) *Instr {
	return bu.emit(&Instr{Op: OpBr, Ty: Void, Blocks: []*Block{target}})
}

// CondBr emits a conditional branch.
func (bu *Builder) CondBr(cond Value, then, els *Block) *Instr {
	return bu.emit(&Instr{Op: OpCondBr, Ty: Void, Args: []Value{cond}, Blocks: []*Block{then, els}})
}

// Call emits a direct call.
func (bu *Builder) Call(fn *Function, args ...Value) *Instr {
	return bu.emit(&Instr{Op: OpCall, Ty: fn.Sig.Return, Callee: fn, Args: args})
}

// CallBuiltin emits a call to a named runtime builtin with result type ret.
func (bu *Builder) CallBuiltin(name string, ret *Type, args ...Value) *Instr {
	return bu.emit(&Instr{Op: OpCall, Ty: ret, Builtin: name, Args: args})
}

// Ret emits a return; v may be nil for void.
func (bu *Builder) Ret(v Value) *Instr {
	in := &Instr{Op: OpRet, Ty: Void}
	if v != nil {
		in.Args = []Value{v}
	}
	return bu.emit(in)
}

// GEPResultType walks the pointee type of base through the given number of
// trailing indices (after the initial scaling index) using the provided
// struct field indices, and returns the pointer type the GEP yields.
// Struct steps must be constant; stepFields supplies them in order.
func GEPResultType(base *Type, steps []Value) *Type {
	cur := base.Elem
	for _, s := range steps {
		switch cur.Kind {
		case KindArray:
			cur = cur.Elem
		case KindStruct:
			c, ok := s.(*Const)
			if !ok {
				return nil
			}
			idx := int(c.Int())
			if idx < 0 || idx >= len(cur.Fields) {
				return nil
			}
			cur = cur.Fields[idx]
		default:
			return nil
		}
	}
	return PointerTo(cur)
}

package ir

import "testing"

// buildNestedLoop creates the 2D-array pattern LICM targets:
//
//	for i { for j { use gep(g, 0, i) } }   — the row address is invariant
//	in the j loop.
func buildNestedLoop(t *testing.T) (*Module, *Function) {
	t.Helper()
	m := NewModule("licm")
	g := m.AddGlobal(&Global{Name: "grid", Elem: ArrayOf(8, ArrayOf(8, I32))})
	f := m.NewFunc("f", FuncType(I32, I32))
	entry := f.NewBlock("entry")
	oCond := f.NewBlock("ocond")
	oBody := f.NewBlock("obody")
	iCond := f.NewBlock("icond")
	iBody := f.NewBlock("ibody")
	iEnd := f.NewBlock("iend")
	exit := f.NewBlock("exit")

	n := f.Params[0]
	bu := NewBuilder(entry)
	bu.Br(oCond)

	bu.SetBlock(oCond)
	iPhi := bu.Phi(I32)
	sPhi := bu.Phi(I32)
	oc := bu.ICmp(PredLT, iPhi, n)
	bu.CondBr(oc, oBody, exit)

	bu.SetBlock(oBody)
	// Row address: invariant within the inner loop.
	iExt := bu.Cast(OpSExt, iPhi, I64)
	row := bu.GEP(PointerTo(ArrayOf(8, I32)), g, ConstInt(I64, 0), iExt)
	bu.Br(iCond)

	bu.SetBlock(iCond)
	jPhi := bu.Phi(I32)
	s2Phi := bu.Phi(I32)
	ic := bu.ICmp(PredLT, jPhi, n)
	bu.CondBr(ic, iBody, iEnd)

	bu.SetBlock(iBody)
	jExt := bu.Cast(OpSExt, jPhi, I64)
	cell := bu.GEP(PointerTo(I32), row, ConstInt(I64, 0), jExt)
	v := bu.Load(cell)
	s3 := bu.Binary(OpAdd, s2Phi, v)
	j1 := bu.Binary(OpAdd, jPhi, ConstInt(I32, 1))
	bu.Br(iCond)

	bu.SetBlock(iEnd)
	i1 := bu.Binary(OpAdd, iPhi, ConstInt(I32, 1))
	bu.Br(oCond)

	bu.SetBlock(exit)
	bu.Ret(sPhi)

	AddIncoming(iPhi, ConstInt(I32, 0), entry)
	AddIncoming(iPhi, i1, iEnd)
	AddIncoming(sPhi, ConstInt(I32, 0), entry)
	AddIncoming(sPhi, s2Phi, iEnd)
	AddIncoming(jPhi, ConstInt(I32, 0), oBody)
	AddIncoming(jPhi, j1, iBody)
	AddIncoming(s2Phi, sPhi, oBody)
	AddIncoming(s2Phi, s3, iBody)

	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
	return m, f
}

func blockOf(f *Function, in *Instr) *Block { return in.Parent }

func TestLICMHoistsRowAddress(t *testing.T) {
	m, f := buildNestedLoop(t)
	depthsBefore := LoopDepths(f)
	// The row GEP starts at depth 1 (outer body).
	var rowGEP *Instr
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == OpGEP && in.Ty.Elem.Kind == KindArray {
				rowGEP = in
			}
		}
	}
	if rowGEP == nil {
		t.Fatal("no row GEP")
	}
	if depthsBefore[blockOf(f, rowGEP)] != 1 {
		t.Fatalf("row GEP starts at depth %d", depthsBefore[blockOf(f, rowGEP)])
	}

	HoistLoopInvariants(f)
	if err := m.Verify(); err != nil {
		t.Fatalf("post-LICM invalid: %v\n%s", err, f)
	}
	// Nothing loop-varying may have moved: the inner cell GEP (depends on
	// jPhi) must remain at depth 2.
	depths := LoopDepths(f)
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == OpGEP && in.Ty.Elem == I32 {
				if depths[b] != 2 {
					t.Errorf("cell GEP moved to depth %d", depths[b])
				}
			}
			if in.Op == OpLoad && depths[b] != 2 {
				t.Error("load must never be hoisted")
			}
		}
	}
	// Loads must not move; the row GEP itself is j-loop invariant but
	// i-loop varying, so it belongs at depth exactly 1 after LICM.
	if d := depths[blockOf(f, rowGEP)]; d != 1 {
		t.Errorf("row GEP at depth %d after LICM, want 1", d)
	}
}

func TestLICMPreservesExecution(t *testing.T) {
	// Semantic check is covered exhaustively by the differential tests in
	// codegen; here we just confirm the pass leaves the CFG verifiable
	// and idempotent.
	m, f := buildNestedLoop(t)
	HoistLoopInvariants(f)
	before := f.String()
	HoistLoopInvariants(f)
	if f.String() != before {
		t.Error("LICM is not idempotent")
	}
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestLICMSkipsDivision(t *testing.T) {
	m := NewModule("div")
	g := m.AddGlobal(&Global{Name: "d", Elem: I32})
	f := m.NewFunc("f", FuncType(I32, I32))
	entry := f.NewBlock("entry")
	cond := f.NewBlock("cond")
	body := f.NewBlock("body")
	exit := f.NewBlock("exit")
	bu := NewBuilder(entry)
	dv := bu.Load(g)
	bu.Br(cond)
	bu.SetBlock(cond)
	iPhi := bu.Phi(I32)
	c := bu.ICmp(PredLT, iPhi, f.Params[0])
	bu.CondBr(c, body, exit)
	bu.SetBlock(body)
	// 100 / dv would trap if dv == 0 and the loop never runs: not
	// hoistable.
	q := bu.Binary(OpSDiv, ConstInt(I32, 100), dv)
	i1 := bu.Binary(OpAdd, iPhi, q)
	bu.Br(cond)
	bu.SetBlock(exit)
	bu.Ret(iPhi)
	AddIncoming(iPhi, ConstInt(I32, 0), entry)
	AddIncoming(iPhi, i1, body)
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
	HoistLoopInvariants(f)
	depths := LoopDepths(f)
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == OpSDiv && depths[b] != 1 {
				t.Fatal("division was hoisted out of the loop")
			}
		}
	}
}

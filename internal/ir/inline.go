package ir

// InlineTinyFunctions inlines calls to small leaf functions (no calls of
// their own, at most a handful of instructions), mirroring what any
// production compiler does at -O1 and above. Without it, helpers like
// max(a,b) impose call barriers that force every live value into memory
// at the assembly level — distorting the very instruction mixes the
// study measures.
func InlineTinyFunctions(m *Module) {
	const (
		maxInstrs = 14
		maxBlocks = 4
	)
	eligible := make(map[*Function]bool)
	for _, f := range m.Funcs {
		if len(f.Blocks) == 0 || len(f.Blocks) > maxBlocks || f.Name == "main" {
			continue
		}
		n := 0
		leaf := true
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				n++
				if in.Op == OpCall {
					leaf = false
				}
			}
		}
		if leaf && n <= maxInstrs {
			eligible[f] = true
		}
	}
	if len(eligible) == 0 {
		return
	}
	for _, f := range m.Funcs {
		if len(f.Blocks) == 0 || eligible[f] {
			continue
		}
		inlineInto(f, eligible)
	}
}

// inlineInto expands every eligible call site in f.
func inlineInto(f *Function, eligible map[*Function]bool) {
	for {
		site := findCallSite(f, eligible)
		if site == nil {
			return
		}
		expandCall(f, site.block, site.index)
	}
}

type callSite struct {
	block *Block
	index int
}

func findCallSite(f *Function, eligible map[*Function]bool) *callSite {
	for _, b := range f.Blocks {
		for i, in := range b.Instrs {
			if in.Op == OpCall && in.Callee != nil && eligible[in.Callee] {
				return &callSite{block: b, index: i}
			}
		}
	}
	return nil
}

// expandCall splices a clone of the callee's body in place of the call.
func expandCall(f *Function, b *Block, idx int) {
	call := b.Instrs[idx]
	callee := call.Callee

	// Continuation block receives everything after the call.
	cont := f.NewBlock(b.Name + ".cont")
	cont.Instrs = append(cont.Instrs, b.Instrs[idx+1:]...)
	for _, in := range cont.Instrs {
		in.Parent = cont
	}
	b.Instrs = b.Instrs[:idx]

	// Successor phis that named b as a predecessor now arrive from cont
	// (the terminator moved there).
	for _, sb := range f.Blocks {
		for _, in := range sb.Instrs {
			if in.Op != OpPhi {
				continue
			}
			for k, pb := range in.Blocks {
				if pb == b {
					in.Blocks[k] = cont
				}
			}
		}
	}

	// Clone the callee body.
	valueMap := make(map[Value]Value)
	for i, p := range callee.Params {
		valueMap[p] = call.Args[i]
	}
	blockMap := make(map[*Block]*Block, len(callee.Blocks))
	for _, cb := range callee.Blocks {
		nb := f.NewBlock(callee.Name + ".in." + cb.Name)
		blockMap[cb] = nb
	}
	remapVal := func(v Value) Value {
		if nv, ok := valueMap[v]; ok {
			return nv
		}
		return v
	}
	type retEdge struct {
		block *Block
		val   Value
	}
	var rets []retEdge
	// Clone in two passes: phis on loop back-edges reference values
	// defined later in the callee, so every clone must exist in valueMap
	// before any operand is remapped.
	type clonePair struct{ orig, clone *Instr }
	var pairs []clonePair
	for _, cb := range callee.Blocks {
		nb := blockMap[cb]
		for _, in := range cb.Instrs {
			if in.Op == OpRet {
				var rv Value
				if len(in.Args) == 1 {
					rv = in.Args[0] // remapped below, after all clones exist
				}
				rets = append(rets, retEdge{block: nb, val: rv})
				nb.Append(&Instr{Op: OpBr, Ty: Void, Blocks: []*Block{cont}})
				continue
			}
			clone := &Instr{
				Op: in.Op, Ty: in.Ty, Pred: in.Pred,
				Callee: in.Callee, Builtin: in.Builtin, AllocTy: in.AllocTy,
				Parent: nb, Line: in.Line,
			}
			valueMap[in] = clone
			nb.Append(clone)
			pairs = append(pairs, clonePair{orig: in, clone: clone})
		}
	}
	for _, p := range pairs {
		p.clone.Args = make([]Value, len(p.orig.Args))
		for k, a := range p.orig.Args {
			p.clone.Args[k] = remapVal(a)
		}
		p.clone.Blocks = make([]*Block, len(p.orig.Blocks))
		for k, tb := range p.orig.Blocks {
			p.clone.Blocks[k] = blockMap[tb]
		}
	}
	for i := range rets {
		rets[i].val = remapVal(rets[i].val)
	}

	// Jump into the inlined entry.
	b.Append(&Instr{Op: OpBr, Ty: Void, Blocks: []*Block{blockMap[callee.Entry()]}})

	// Wire the result: a single return substitutes directly; multiple
	// returns merge through a phi at the continuation head.
	if call.HasResult() {
		var result Value
		if len(rets) == 1 {
			result = rets[0].val
		} else {
			phi := &Instr{Op: OpPhi, Ty: call.Ty, Parent: cont}
			for _, re := range rets {
				phi.Args = append(phi.Args, re.val)
				phi.Blocks = append(phi.Blocks, re.block)
			}
			cont.Instrs = append([]*Instr{phi}, cont.Instrs...)
			result = phi
		}
		replaceUses(f, call, result)
	}
	f.Renumber()
}

// replaceUses rewrites every read of old to new.
func replaceUses(f *Function, old *Instr, newVal Value) {
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			for k, a := range in.Args {
				if a == Value(old) {
					in.Args[k] = newVal
				}
			}
		}
	}
}

package ir

import (
	"strings"
	"testing"
)

// buildLoopWithAlloca builds the classic mem2reg shape:
//
//	int f(int n) { int s = 0; for (int i = 0; i < n; i++) s += i; return s; }
//
// using allocas for s and i.
func buildLoopWithAlloca(t *testing.T) (*Module, *Function) {
	t.Helper()
	m := NewModule("loop")
	f := m.NewFunc("f", FuncType(I32, I32))
	entry := f.NewBlock("entry")
	cond := f.NewBlock("cond")
	body := f.NewBlock("body")
	exit := f.NewBlock("exit")

	n := f.Params[0]
	bu := NewBuilder(entry)
	s := bu.Alloca(I32)
	i := bu.Alloca(I32)
	bu.Store(ConstInt(I32, 0), s)
	bu.Store(ConstInt(I32, 0), i)
	bu.Br(cond)

	bu.SetBlock(cond)
	iv := bu.Load(i)
	c := bu.ICmp(PredLT, iv, n)
	bu.CondBr(c, body, exit)

	bu.SetBlock(body)
	sv := bu.Load(s)
	iv2 := bu.Load(i)
	sum := bu.Binary(OpAdd, sv, iv2)
	bu.Store(sum, s)
	inc := bu.Binary(OpAdd, iv2, ConstInt(I32, 1))
	bu.Store(inc, i)
	bu.Br(cond)

	bu.SetBlock(exit)
	res := bu.Load(s)
	bu.Ret(res)

	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
	return m, f
}

func countOps(f *Function, op Op) int {
	n := 0
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == op {
				n++
			}
		}
	}
	return n
}

func TestMem2RegPromotesLoop(t *testing.T) {
	m, f := buildLoopWithAlloca(t)
	PromoteAllocas(f)
	if err := m.Verify(); err != nil {
		t.Fatalf("post-mem2reg IR invalid: %v\n%s", err, m)
	}
	if n := countOps(f, OpAlloca); n != 0 {
		t.Errorf("allocas remain: %d", n)
	}
	if n := countOps(f, OpLoad); n != 0 {
		t.Errorf("loads remain: %d", n)
	}
	if n := countOps(f, OpStore); n != 0 {
		t.Errorf("stores remain: %d", n)
	}
	// s and i each need a phi at the loop header.
	if n := countOps(f, OpPhi); n != 2 {
		t.Errorf("phis = %d, want 2\n%s", n, m)
	}
}

func TestMem2RegSkipsEscapingAlloca(t *testing.T) {
	m := NewModule("esc")
	f := m.NewFunc("f", FuncType(I64))
	entry := f.NewBlock("entry")
	bu := NewBuilder(entry)
	arr := bu.Alloca(ArrayOf(4, I32)) // aggregate: not promotable
	scalarEsc := bu.Alloca(I64)
	// Address escapes into a ptrtoint.
	bu.Cast(OpPtrToInt, scalarEsc, I64)
	p := bu.GEP(PointerTo(I32), arr, ConstInt(I64, 0), ConstInt(I64, 0))
	bu.Store(ConstInt(I32, 7), p)
	v := bu.Load(p)
	ext := bu.Cast(OpSExt, v, I64)
	bu.Ret(ext)
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
	PromoteAllocas(f)
	if n := countOps(f, OpAlloca); n != 2 {
		t.Errorf("escaping/aggregate allocas removed: %d left, want 2", n)
	}
}

func TestFoldConstants(t *testing.T) {
	m := NewModule("fold")
	f := m.NewFunc("f", FuncType(I32))
	bu := NewBuilder(f.NewBlock("entry"))
	a := bu.Binary(OpAdd, ConstInt(I32, 2), ConstInt(I32, 3))
	b := bu.Binary(OpMul, a, ConstInt(I32, 4))
	bu.Ret(b)
	FoldConstants(f)
	ret := f.Blocks[0].Terminator()
	c, ok := ret.Args[0].(*Const)
	if !ok || c.Int() != 20 {
		t.Fatalf("constant folding failed: %s", f)
	}
	// Division by zero must not fold (it traps at runtime).
	f2 := m.NewFunc("g", FuncType(I32))
	bu = NewBuilder(f2.NewBlock("entry"))
	d := bu.Binary(OpSDiv, ConstInt(I32, 1), ConstInt(I32, 0))
	bu.Ret(d)
	FoldConstants(f2)
	if countOps(f2, OpSDiv) != 1 {
		t.Error("div-by-zero folded away")
	}
}

func TestDeadCodeElimination(t *testing.T) {
	m := NewModule("dce")
	f := m.NewFunc("f", FuncType(I32, I32))
	bu := NewBuilder(f.NewBlock("entry"))
	bu.Binary(OpAdd, f.Params[0], ConstInt(I32, 1)) // dead
	dead2 := bu.Binary(OpMul, f.Params[0], ConstInt(I32, 3))
	bu.Binary(OpSub, dead2, ConstInt(I32, 2)) // dead chain
	live := bu.Binary(OpXor, f.Params[0], ConstInt(I32, 5))
	bu.Ret(live)
	EliminateDeadCode(f)
	total := len(f.Blocks[0].Instrs)
	if total != 2 { // xor + ret
		t.Errorf("instrs after DCE = %d, want 2:\n%s", total, f)
	}
}

func TestLocalCSE(t *testing.T) {
	m := NewModule("cse")
	g := m.AddGlobal(&Global{Name: "arr", Elem: ArrayOf(8, I32)})
	f := m.NewFunc("f", FuncType(I32, I64))
	bu := NewBuilder(f.NewBlock("entry"))
	idx := f.Params[0]
	p1 := bu.GEP(PointerTo(I32), g, ConstInt(I64, 0), idx)
	v1 := bu.Load(p1)
	p2 := bu.GEP(PointerTo(I32), g, ConstInt(I64, 0), idx) // duplicate address
	v2 := bu.Load(p2)
	sum := bu.Binary(OpAdd, v1, v2)
	bu.Ret(sum)
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
	LocalCSE(f)
	if n := countOps(f, OpGEP); n != 1 {
		t.Errorf("duplicate GEP not merged: %d", n)
	}
	// Loads must NOT merge (no alias analysis).
	if n := countOps(f, OpLoad); n != 2 {
		t.Errorf("loads merged unsafely: %d", n)
	}
	if err := m.Verify(); err != nil {
		t.Fatalf("post-CSE invalid: %v", err)
	}
}

func TestRemoveUnreachable(t *testing.T) {
	m := NewModule("unreach")
	f := m.NewFunc("f", FuncType(I32))
	entry := f.NewBlock("entry")
	dead := f.NewBlock("dead")
	bu := NewBuilder(entry)
	bu.Ret(ConstInt(I32, 1))
	bu.SetBlock(dead)
	bu.Ret(ConstInt(I32, 2))
	RemoveUnreachable(f)
	if len(f.Blocks) != 1 {
		t.Errorf("unreachable block kept: %d blocks", len(f.Blocks))
	}
}

func TestSplitCriticalEdges(t *testing.T) {
	// entry condbr to (header, exit); header phi with preds entry,header
	// — wait, build the classic: condbr to join from a 2-succ block where
	// join has 2 preds.
	m := NewModule("crit")
	f := m.NewFunc("f", FuncType(I32, I32))
	entry := f.NewBlock("entry")
	other := f.NewBlock("other")
	join := f.NewBlock("join")
	bu := NewBuilder(entry)
	c := bu.ICmp(PredGT, f.Params[0], ConstInt(I32, 0))
	bu.CondBr(c, join, other) // entry->join is critical (entry 2 succs, join 2 preds)
	bu.SetBlock(other)
	bu.Br(join)
	bu.SetBlock(join)
	p := bu.Phi(I32)
	AddIncoming(p, ConstInt(I32, 1), entry)
	AddIncoming(p, ConstInt(I32, 2), other)
	bu.Ret(p)
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
	SplitCriticalEdges(f)
	if err := m.Verify(); err != nil {
		t.Fatalf("post-split invalid: %v\n%s", err, m)
	}
	// Every predecessor of the phi block must now have one successor.
	for _, pb := range join.Preds() {
		if len(pb.Succs()) != 1 {
			t.Errorf("pred %s still has %d successors", pb.Name, len(pb.Succs()))
		}
	}
}

func TestLoopDepths(t *testing.T) {
	_, f := buildLoopWithAlloca(t)
	depth := LoopDepths(f)
	byName := func(prefix string) *Block {
		for _, b := range f.Blocks {
			if strings.HasPrefix(b.Name, prefix) {
				return b
			}
		}
		t.Fatalf("no block %s", prefix)
		return nil
	}
	if depth[byName("entry")] != 0 {
		t.Errorf("entry depth %d", depth[byName("entry")])
	}
	if depth[byName("cond")] != 1 || depth[byName("body")] != 1 {
		t.Errorf("loop blocks depth: cond=%d body=%d", depth[byName("cond")], depth[byName("body")])
	}
	if depth[byName("exit")] != 0 {
		t.Errorf("exit depth %d", depth[byName("exit")])
	}
}

func TestDominators(t *testing.T) {
	_, f := buildLoopWithAlloca(t)
	dom := BuildDomTree(f)
	entry, cond, body, exit := f.Blocks[0], f.Blocks[1], f.Blocks[2], f.Blocks[3]
	if !dom.Dominates(entry, exit) || !dom.Dominates(cond, body) {
		t.Error("basic dominance relations")
	}
	if dom.Dominates(body, exit) {
		t.Error("body must not dominate exit")
	}
	if dom.Idom(body) != cond || dom.Idom(exit) != cond {
		t.Error("immediate dominators")
	}
	// The loop header is in its own dominance frontier (back edge).
	found := false
	for _, fr := range dom.Frontier(body) {
		if fr == cond {
			found = true
		}
	}
	if !found {
		t.Error("body's frontier should contain the loop header")
	}
}

package ir

import (
	"fmt"
	"math"
	"strconv"
)

// Value is anything that can appear as an instruction operand: constants,
// globals, function parameters, and instruction results.
type Value interface {
	Type() *Type
	// Ident renders the operand the way it appears in printed IR
	// (e.g. "%3", "@buf", "42", "3.5").
	Ident() string
}

// Const is a compile-time constant of integer, float, or pointer type
// (the only pointer constant is null).
type Const struct {
	Ty  *Type
	Val uint64 // raw bit pattern, canonicalized to Ty's width
}

var _ Value = (*Const)(nil)

// ConstInt returns an integer constant of type ty holding v (truncated to
// the type's width).
func ConstInt(ty *Type, v int64) *Const {
	return &Const{Ty: ty, Val: Canonical(uint64(v), ty)}
}

// ConstFloat returns a double constant.
func ConstFloat(v float64) *Const {
	return &Const{Ty: F64, Val: math.Float64bits(v)}
}

// ConstNull returns the null pointer constant of type ty.
func ConstNull(ty *Type) *Const { return &Const{Ty: ty, Val: 0} }

// Type implements Value.
func (c *Const) Type() *Type { return c.Ty }

// Ident implements Value.
func (c *Const) Ident() string {
	switch c.Ty.Kind {
	case KindFloat:
		return strconv.FormatFloat(math.Float64frombits(c.Val), 'g', -1, 64)
	case KindPtr:
		if c.Val == 0 {
			return "null"
		}
		return fmt.Sprintf("inttoptr(0x%x)", c.Val)
	default:
		if c.Ty.Bits == 1 {
			// Booleans print unsigned (0/1), not as sign-extended -1.
			return strconv.FormatUint(c.Val&1, 10)
		}
		return strconv.FormatInt(SignExtend(c.Val, c.Ty), 10)
	}
}

// Int returns the constant's value sign-extended to 64 bits.
func (c *Const) Int() int64 { return SignExtend(c.Val, c.Ty) }

// Float returns the constant's value as a float64.
func (c *Const) Float() float64 { return math.Float64frombits(c.Val) }

// Canonical masks a raw 64-bit value down to ty's bit width (ints) or
// returns it unchanged (pointers, floats).
func Canonical(v uint64, ty *Type) uint64 {
	if ty.Kind == KindInt && ty.Bits < 64 {
		return v & (1<<uint(ty.Bits) - 1)
	}
	return v
}

// SignExtend interprets the canonical value v of integer type ty as a
// signed number, extended to 64 bits.
func SignExtend(v uint64, ty *Type) int64 {
	if ty.Kind != KindInt || ty.Bits >= 64 {
		return int64(v)
	}
	shift := uint(64 - ty.Bits)
	return int64(v<<shift) >> shift
}

// Global is a module-level variable. Its address is assigned by Layout.
type Global struct {
	Name string
	Elem *Type  // pointee type
	Init []byte // initial image, len == Elem.Size(); nil means zeroed
}

var _ Value = (*Global)(nil)

// Type implements Value: a global evaluates to a pointer to its storage.
func (g *Global) Type() *Type { return PointerTo(g.Elem) }

// Ident implements Value.
func (g *Global) Ident() string { return "@" + g.Name }

// Param is a function parameter.
type Param struct {
	Name  string
	Ty    *Type
	Index int
}

var _ Value = (*Param)(nil)

// Type implements Value.
func (p *Param) Type() *Type { return p.Ty }

// Ident implements Value.
func (p *Param) Ident() string { return "%" + p.Name }

// FuncValue lets a Function appear as a call operand.
type FuncValue struct{ Fn *Function }

var _ Value = (*FuncValue)(nil)

// Type implements Value.
func (f *FuncValue) Type() *Type { return PointerTo(f.Fn.Sig) }

// Ident implements Value.
func (f *FuncValue) Ident() string { return "@" + f.Fn.Name }

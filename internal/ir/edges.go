package ir

// SplitCriticalEdges inserts empty blocks on edges whose source has
// multiple successors and whose destination has multiple predecessors.
// The backend requires this so that phi-resolution moves can always be
// placed at the end of a predecessor that has a single successor.
func SplitCriticalEdges(f *Function) {
	if len(f.Blocks) == 0 {
		return
	}
	predCount := make(map[*Block]int)
	for _, b := range f.Blocks {
		for _, s := range b.Succs() {
			predCount[s]++
		}
	}
	// Collect first: we mutate the block list while iterating otherwise.
	type edge struct {
		from *Block
		si   int // successor index in the terminator
	}
	var critical []edge
	for _, b := range f.Blocks {
		t := b.Terminator()
		if t == nil || len(t.Blocks) < 2 {
			continue
		}
		for si, s := range t.Blocks {
			if predCount[s] >= 2 && hasPhi(s) {
				critical = append(critical, edge{from: b, si: si})
			}
		}
	}
	for _, e := range critical {
		t := e.from.Terminator()
		dst := t.Blocks[e.si]
		mid := f.NewBlock("split")
		mid.Append(&Instr{Op: OpBr, Ty: Void, Blocks: []*Block{dst}})
		t.Blocks[e.si] = mid
		// Retarget phi incoming edges from e.from to mid. A conditional
		// branch with both targets equal would be ambiguous, but such
		// branches never carry phis on both edges in generated code; we
		// retarget exactly one incoming entry.
		for _, in := range dst.Instrs {
			if in.Op != OpPhi {
				break
			}
			for i, pb := range in.Blocks {
				if pb == e.from {
					in.Blocks[i] = mid
					break
				}
			}
		}
	}
	f.Renumber()
}

func hasPhi(b *Block) bool {
	return len(b.Instrs) > 0 && b.Instrs[0].Op == OpPhi
}

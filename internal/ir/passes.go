package ir

import "math"

// Optimize runs the standard pipeline used for all compiled programs:
// SSA promotion, constant folding, and dead-code elimination. This mirrors
// the paper's setup, which compiles every benchmark "with the same
// standard optimizations enabled" for both injectors.
func Optimize(m *Module) {
	for _, f := range m.Funcs {
		if len(f.Blocks) == 0 {
			continue
		}
		PromoteAllocas(f)
		FoldConstants(f)
		LocalCSE(f)
		EliminateDeadCode(f)
	}
	// Inline tiny leaf helpers, then clean up the spliced bodies and
	// hoist loop invariants out of the merged loops.
	InlineTinyFunctions(m)
	for _, f := range m.Funcs {
		if len(f.Blocks) == 0 {
			continue
		}
		RemoveUnreachable(f)
		FoldConstants(f)
		LocalCSE(f)
		HoistLoopInvariants(f)
		LocalCSE(f)
		EliminateDeadCode(f)
		SplitCriticalEdges(f)
		f.Renumber()
	}
}

// EliminateDeadCode removes value-producing instructions without uses or
// side effects, iterating to a fixpoint.
func EliminateDeadCode(f *Function) {
	for {
		uses := ComputeUses(f)
		dead := make(map[*Instr]bool)
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if !in.HasResult() || in.Op == OpCall {
					continue
				}
				if uses.NumUses(in) == 0 {
					dead[in] = true
				}
			}
		}
		if len(dead) == 0 {
			return
		}
		removeDead(f, dead, func(v Value) Value { return v })
	}
}

// FoldConstants replaces instructions whose operands are all constants
// with the computed constant and collapses conditional branches on
// constant conditions.
func FoldConstants(f *Function) {
	replace := make(map[Value]Value)
	resolve := func(v Value) Value {
		for {
			r, ok := replace[v]
			if !ok {
				return v
			}
			v = r
		}
	}
	changed := true
	for changed {
		changed = false
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				for k, a := range in.Args {
					in.Args[k] = resolve(a)
				}
				if _, done := replace[in]; done {
					continue
				}
				if c := foldInstr(in); c != nil {
					replace[in] = c
					changed = true
				}
			}
		}
	}
	if len(replace) == 0 {
		return
	}
	dead := make(map[*Instr]bool)
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if _, ok := replace[in]; ok {
				dead[in] = true
			}
		}
	}
	removeDead(f, dead, resolve)
	if foldConstantBranches(f) {
		RemoveUnreachable(f)
	}
	f.Renumber()
}

// foldConstantBranches rewrites conditional branches on constants into
// unconditional ones, pruning the dead edge from the not-taken
// successor's phis. Reports whether anything changed.
func foldConstantBranches(f *Function) bool {
	changed := false
	for _, b := range f.Blocks {
		t := b.Terminator()
		if t == nil || t.Op != OpCondBr {
			continue
		}
		cst, ok := t.Args[0].(*Const)
		if !ok {
			continue
		}
		taken, dead := t.Blocks[0], t.Blocks[1]
		if cst.Val&1 == 0 {
			taken, dead = dead, taken
		}
		if dead != taken {
			for _, in := range dead.Instrs {
				if in.Op != OpPhi {
					break
				}
				for i, pb := range in.Blocks {
					if pb == b {
						in.Args = append(in.Args[:i], in.Args[i+1:]...)
						in.Blocks = append(in.Blocks[:i], in.Blocks[i+1:]...)
						break
					}
				}
			}
		}
		t.Op = OpBr
		t.Args = nil
		t.Blocks = []*Block{taken}
		changed = true
	}
	return changed
}

func foldInstr(in *Instr) *Const {
	consts := make([]*Const, len(in.Args))
	for i, a := range in.Args {
		c, ok := a.(*Const)
		if !ok {
			return nil
		}
		consts[i] = c
	}
	switch {
	case in.Op.IsIntArith():
		l, r := consts[0].Int(), consts[1].Int()
		lu, ru := consts[0].Val, consts[1].Val
		var v int64
		switch in.Op {
		case OpAdd:
			v = l + r
		case OpSub:
			v = l - r
		case OpMul:
			v = l * r
		case OpSDiv:
			if r == 0 || (l == math.MinInt64 && r == -1) {
				return nil
			}
			v = l / r
		case OpSRem:
			if r == 0 || (l == math.MinInt64 && r == -1) {
				return nil
			}
			v = l % r
		case OpUDiv:
			if ru == 0 {
				return nil
			}
			v = int64(lu / ru)
		case OpURem:
			if ru == 0 {
				return nil
			}
			v = int64(lu % ru)
		case OpAnd:
			v = l & r
		case OpOr:
			v = l | r
		case OpXor:
			v = l ^ r
		case OpShl:
			v = int64(lu << (ru & 63))
		case OpLShr:
			v = int64(lu >> (ru & 63))
		case OpAShr:
			v = SignExtend(lu, consts[0].Ty) >> (ru & 63)
		default:
			return nil
		}
		return ConstInt(in.Ty, v)
	case in.Op.IsFloatArith():
		l, r := consts[0].Float(), consts[1].Float()
		var v float64
		switch in.Op {
		case OpFAdd:
			v = l + r
		case OpFSub:
			v = l - r
		case OpFMul:
			v = l * r
		case OpFDiv:
			v = l / r
		default:
			return nil
		}
		return ConstFloat(v)
	case in.Op == OpICmp:
		if !consts[0].Ty.IsInt() && !consts[0].Ty.IsPtr() {
			return nil
		}
		l, r := consts[0].Int(), consts[1].Int()
		lu, ru := consts[0].Val, consts[1].Val
		var t bool
		switch in.Pred {
		case PredEQ:
			t = l == r
		case PredNE:
			t = l != r
		case PredLT:
			t = l < r
		case PredLE:
			t = l <= r
		case PredGT:
			t = l > r
		case PredGE:
			t = l >= r
		case PredULT:
			t = lu < ru
		case PredULE:
			t = lu <= ru
		case PredUGT:
			t = lu > ru
		case PredUGE:
			t = lu >= ru
		}
		return boolConst(t)
	case in.Op == OpFCmp:
		l, r := consts[0].Float(), consts[1].Float()
		var t bool
		switch in.Pred {
		case PredEQ:
			t = l == r
		case PredNE:
			t = l != r
		case PredLT:
			t = l < r
		case PredLE:
			t = l <= r
		case PredGT:
			t = l > r
		case PredGE:
			t = l >= r
		}
		return boolConst(t)
	case in.Op == OpTrunc, in.Op == OpZExt:
		return &Const{Ty: in.Ty, Val: Canonical(consts[0].Val, in.Ty)}
	case in.Op == OpSExt:
		return ConstInt(in.Ty, consts[0].Int())
	case in.Op == OpSIToFP:
		return ConstFloat(float64(consts[0].Int()))
	case in.Op == OpFPToSI:
		fv := consts[0].Float()
		if math.IsNaN(fv) || fv > math.MaxInt64 || fv < math.MinInt64 {
			return nil
		}
		return ConstInt(in.Ty, int64(fv))
	}
	return nil
}

func boolConst(t bool) *Const {
	if t {
		return ConstInt(I1, 1)
	}
	return ConstInt(I1, 0)
}

// Package ir defines a typed SSA intermediate representation modelled on
// LLVM IR. It carries the constructs whose assembly-level lowering the
// DSN'14 study identifies as accuracy-relevant for fault injection:
// getelementptr address computation, phi nodes, a strict cast taxonomy,
// explicit load/store, compare and branch instructions, and direct calls.
package ir

import (
	"fmt"
	"strings"
)

// Kind discriminates Type.
type Kind int

// Type kinds.
const (
	KindVoid Kind = iota + 1
	KindInt
	KindFloat
	KindPtr
	KindArray
	KindStruct
	KindFunc
)

// Type is an IR type. Types are structural; use the package constructors
// and singletons to build them.
type Type struct {
	Kind    Kind
	Bits    int     // KindInt: 1, 8, 16, 32, 64; KindFloat: 64
	Elem    *Type   // KindPtr, KindArray
	Len     int     // KindArray
	Fields  []*Type // KindStruct
	TagName string  // KindStruct: source-level tag, for printing only

	Params   []*Type // KindFunc
	Return   *Type   // KindFunc
	Variadic bool    // KindFunc
}

// Singleton primitive types.
var (
	Void = &Type{Kind: KindVoid}
	I1   = &Type{Kind: KindInt, Bits: 1}
	I8   = &Type{Kind: KindInt, Bits: 8}
	I16  = &Type{Kind: KindInt, Bits: 16}
	I32  = &Type{Kind: KindInt, Bits: 32}
	I64  = &Type{Kind: KindInt, Bits: 64}
	F64  = &Type{Kind: KindFloat, Bits: 64}
)

// IntType returns the integer type with the given bit width.
func IntType(bits int) *Type {
	switch bits {
	case 1:
		return I1
	case 8:
		return I8
	case 16:
		return I16
	case 32:
		return I32
	case 64:
		return I64
	default:
		return &Type{Kind: KindInt, Bits: bits}
	}
}

// PointerTo returns a pointer type to elem.
func PointerTo(elem *Type) *Type { return &Type{Kind: KindPtr, Elem: elem} }

// ArrayOf returns an array type of n elems.
func ArrayOf(n int, elem *Type) *Type {
	return &Type{Kind: KindArray, Len: n, Elem: elem}
}

// StructOf returns a struct type with the given field types.
func StructOf(tag string, fields ...*Type) *Type {
	return &Type{Kind: KindStruct, TagName: tag, Fields: fields}
}

// FuncType returns a function type.
func FuncType(ret *Type, params ...*Type) *Type {
	return &Type{Kind: KindFunc, Return: ret, Params: params}
}

// IsInt reports whether t is an integer type.
func (t *Type) IsInt() bool { return t.Kind == KindInt }

// IsFloat reports whether t is a floating-point type.
func (t *Type) IsFloat() bool { return t.Kind == KindFloat }

// IsPtr reports whether t is a pointer type.
func (t *Type) IsPtr() bool { return t.Kind == KindPtr }

// Size returns the in-memory size of t in bytes.
func (t *Type) Size() uint64 {
	switch t.Kind {
	case KindVoid:
		return 0
	case KindInt:
		switch {
		case t.Bits <= 8:
			return 1
		case t.Bits <= 16:
			return 2
		case t.Bits <= 32:
			return 4
		default:
			return 8
		}
	case KindFloat, KindPtr:
		return 8
	case KindArray:
		return uint64(t.Len) * t.Elem.Size()
	case KindStruct:
		size := uint64(0)
		for _, f := range t.Fields {
			size = align(size, f.Align()) + f.Size()
		}
		return align(size, t.Align())
	default:
		return 0
	}
}

// Align returns the alignment of t in bytes.
func (t *Type) Align() uint64 {
	switch t.Kind {
	case KindArray:
		return t.Elem.Align()
	case KindStruct:
		a := uint64(1)
		for _, f := range t.Fields {
			if fa := f.Align(); fa > a {
				a = fa
			}
		}
		return a
	case KindVoid:
		return 1
	default:
		return t.Size()
	}
}

// FieldOffset returns the byte offset of struct field i.
func (t *Type) FieldOffset(i int) uint64 {
	off := uint64(0)
	for j, f := range t.Fields {
		off = align(off, f.Align())
		if j == i {
			return off
		}
		off += f.Size()
	}
	return off
}

func align(n, a uint64) uint64 {
	if a == 0 {
		return n
	}
	return (n + a - 1) / a * a
}

// Equal reports structural type equality.
func (t *Type) Equal(o *Type) bool {
	if t == o {
		return true
	}
	if t == nil || o == nil || t.Kind != o.Kind {
		return false
	}
	switch t.Kind {
	case KindVoid:
		return true
	case KindInt, KindFloat:
		return t.Bits == o.Bits
	case KindPtr:
		return t.Elem.Equal(o.Elem)
	case KindArray:
		return t.Len == o.Len && t.Elem.Equal(o.Elem)
	case KindStruct:
		// Named structs compare nominally; this also keeps Equal total on
		// self-referential types (e.g. linked-list nodes).
		if t.TagName != "" || o.TagName != "" {
			return t.TagName == o.TagName
		}
		if len(t.Fields) != len(o.Fields) {
			return false
		}
		for i := range t.Fields {
			if !t.Fields[i].Equal(o.Fields[i]) {
				return false
			}
		}
		return true
	case KindFunc:
		if !t.Return.Equal(o.Return) || len(t.Params) != len(o.Params) || t.Variadic != o.Variadic {
			return false
		}
		for i := range t.Params {
			if !t.Params[i].Equal(o.Params[i]) {
				return false
			}
		}
		return true
	}
	return false
}

// String renders t in LLVM-like syntax.
func (t *Type) String() string {
	if t == nil {
		return "<nil>"
	}
	switch t.Kind {
	case KindVoid:
		return "void"
	case KindInt:
		return fmt.Sprintf("i%d", t.Bits)
	case KindFloat:
		return "double"
	case KindPtr:
		return t.Elem.String() + "*"
	case KindArray:
		return fmt.Sprintf("[%d x %s]", t.Len, t.Elem)
	case KindStruct:
		if t.TagName != "" {
			return "%struct." + t.TagName
		}
		parts := make([]string, len(t.Fields))
		for i, f := range t.Fields {
			parts[i] = f.String()
		}
		return "{ " + strings.Join(parts, ", ") + " }"
	case KindFunc:
		parts := make([]string, len(t.Params))
		for i, p := range t.Params {
			parts[i] = p.String()
		}
		return fmt.Sprintf("%s (%s)", t.Return, strings.Join(parts, ", "))
	default:
		return "?"
	}
}

package ir_test

import (
	"bytes"
	"strings"
	"testing"

	"hlfi/internal/interp"
	"hlfi/internal/ir"
)

// hoistSrc puts a chain of loop-invariant arithmetic INSIDE the loop
// body: %5 and %6 depend only on the parameter, so both must move to a
// freshly created preheader, %5 before %6. The entry ends in a
// conditional branch, so LICM cannot reuse it and must synthesize the
// preheader block.
const hoistSrc = `
@acc = global i64

define i64 @f(i64 %n) {
entry:
  %7 = icmp slt i64 0, %n
  br i1 %7, label %cond, label %early
early:
  ret i64 0
cond:
  %0 = phi i64 [ 0, %entry ], [ %3, %body ]
  %1 = phi i64 [ 0, %entry ], [ %2, %body ]
  %4 = icmp slt i64 %0, %n
  br i1 %4, label %body, label %done
body:
  %5 = mul i64 %n, 3
  %6 = add i64 %5, 7
  %2 = add i64 %1, %6
  %3 = add i64 %0, 1
  br label %cond
done:
  store i64 %1, i64* @acc
  ret i64 %1
}

define i32 @main() {
entry:
  %0 = call i64 @f(i64 10)
  call void @print_long(i64 %0)
  ret i32 0
}
`

func runMain(t *testing.T, m *ir.Module) string {
	t.Helper()
	prep, err := interp.Prepare(m)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if _, err := interp.NewRunner(prep, &out).Run(); err != nil {
		t.Fatal(err)
	}
	return out.String()
}

// TestLICMCreatesPreheader: invariants inside the loop body must land in
// a new preheader block, in dependency order, without changing what the
// program computes.
func TestLICMCreatesPreheader(t *testing.T) {
	m := ir.MustParse(hoistSrc)
	f := m.Func("f")
	before := runMain(t, ir.MustParse(hoistSrc))

	nBlocks := len(f.Blocks)
	ir.HoistLoopInvariants(f)
	if err := m.Verify(); err != nil {
		t.Fatalf("post-LICM: %v\n%s", err, f)
	}
	if len(f.Blocks) != nBlocks+1 {
		t.Fatalf("expected a new preheader block: %d -> %d blocks", nBlocks, len(f.Blocks))
	}

	// Find mul and add-7: both must now live outside the loop, mul first.
	var mulBlk, addBlk *ir.Block
	var mulPos, addPos int
	for _, b := range f.Blocks {
		for i, in := range b.Instrs {
			switch {
			case in.Op == ir.OpMul:
				mulBlk, mulPos = b, i
			case in.Op == ir.OpAdd && len(in.Args) == 2 && isConst7(in.Args[1]):
				addBlk, addPos = b, i
			}
		}
	}
	if mulBlk == nil || addBlk == nil {
		t.Fatal("hoisted instructions not found")
	}
	depths := ir.LoopDepths(f)
	if depths[mulBlk] != 0 || depths[addBlk] != 0 {
		t.Fatalf("invariants still inside the loop: mul depth %d, add depth %d",
			depths[mulBlk], depths[addBlk])
	}
	if mulBlk == addBlk && addPos < mulPos {
		t.Fatal("dependency order violated: add emitted before its mul operand")
	}

	if after := runMain(t, m); after != before {
		t.Fatalf("LICM changed program output: %q -> %q", before, after)
	}
}

func isConst7(v ir.Value) bool {
	c, ok := v.(*ir.Const)
	return ok && c.Int() == 7
}

// TestLICMDeterministicOrder re-parses and hoists the same function many
// times: the printed result must be identical on every trial. (Guards
// the map-iteration-order bug in hoist collection.)
func TestLICMDeterministicOrder(t *testing.T) {
	var golden string
	for trial := 0; trial < 8; trial++ {
		m := ir.MustParse(hoistSrc)
		ir.HoistLoopInvariants(m.Func("f"))
		s := m.String()
		if trial == 0 {
			golden = s
		} else if s != golden {
			t.Fatalf("trial %d: LICM output differs:\n%s\n---\n%s", trial, s, golden)
		}
	}
}

// TestOptimizePipeline: the full Optimize pipeline must verify, be
// idempotent on its own output, and preserve execution.
func TestOptimizePipeline(t *testing.T) {
	m := ir.MustParse(hoistSrc)
	before := runMain(t, ir.MustParse(hoistSrc))
	ir.Optimize(m)
	if err := m.Verify(); err != nil {
		t.Fatalf("post-Optimize: %v", err)
	}
	if got := runMain(t, m); got != before {
		t.Fatalf("Optimize changed output: %q -> %q", before, got)
	}
	once := m.String()
	ir.Optimize(m)
	if m.String() != once {
		t.Errorf("Optimize not idempotent:\n%s\n---\n%s", once, m.String())
	}
}

// TestOptimizeFoldsConstantBranch: a branch on a constant condition must
// collapse to the taken side and drop the dead block.
func TestOptimizeFoldsConstantBranch(t *testing.T) {
	m := ir.MustParse(`
define i32 @main() {
entry:
  %0 = icmp slt i32 2, 5
  br i1 %0, label %yes, label %no
yes:
  call void @print_int(i32 1)
  ret i32 0
no:
  call void @print_int(i32 9)
  ret i32 1
}
`)
	ir.Optimize(m)
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
	s := m.Func("main").String()
	if strings.Contains(s, "icmp") || strings.Contains(s, "br i1") {
		t.Errorf("constant branch not folded:\n%s", s)
	}
	if strings.Contains(s, "i32 9") {
		t.Errorf("dead branch survived:\n%s", s)
	}
	if got := runMain(t, m); got != "1" {
		t.Fatalf("folded program output %q", got)
	}
}

package fleet

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"hlfi/internal/adaptive"
	"hlfi/internal/bench"
	"hlfi/internal/core"
	"hlfi/internal/fault"
	"hlfi/internal/obs/trace"
)

// WorkerConfig configures one fleet worker loop.
type WorkerConfig struct {
	// Name identifies the worker to the coordinator (dashboard and
	// lease accounting).
	Name string
	// Client talks to the coordinator.
	Client *Client
	// BuildProgram loads a benchmark by name; bench.Build when nil.
	// Built programs are cached for the worker's lifetime, so a worker
	// leasing ten cells of one benchmark compiles it once.
	BuildProgram func(name string) (*core.Program, error)
	// Logf, when non-nil, receives per-lease log lines.
	Logf func(format string, args ...any)

	// testAcquireHook, when non-nil, runs after a lease is acquired and
	// before the cell executes; returning false abandons the lease
	// silently (simulating a worker killed mid-cell) and ends the
	// worker loop.
	testAcquireHook func(*Lease) bool
}

// RunWorker runs the worker loop: lease, execute, heartbeat, complete,
// repeat — until the coordinator reports the study done (or drains), or
// ctx is cancelled. Cancellation is a graceful drain: the cell in
// flight finishes and its completion is reported (with a short grace
// context) before the loop exits, so a SIGTERM-ed worker wastes no
// work; the coordinator's lease expiry covers the SIGKILL case.
func RunWorker(ctx context.Context, cfg WorkerConfig) error {
	if cfg.Name == "" {
		cfg.Name = "worker"
	}
	if cfg.Client == nil {
		return fmt.Errorf("fleet worker %s: no client", cfg.Name)
	}
	if cfg.BuildProgram == nil {
		cfg.BuildProgram = bench.Build
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	w := &workerState{
		progs: make(map[string]*core.Program),
		// One compiled-engine config for the worker's lifetime, so its
		// compiled-program cache spans leases (results are byte-identical
		// with or without it).
		compiled: &core.CompiledConfig{},
	}

	for {
		if ctx.Err() != nil {
			logf("fleet worker %s: drained, exiting", cfg.Name)
			return nil
		}
		resp, err := cfg.Client.Lease(ctx, cfg.Name)
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			return fmt.Errorf("fleet worker %s: %w", cfg.Name, err)
		}
		switch resp.Status {
		case StatusDone:
			logf("fleet worker %s: coordinator reports study done, exiting", cfg.Name)
			return nil
		case StatusWait:
			wait := time.Duration(resp.RetryAfterMS) * time.Millisecond
			if wait <= 0 {
				wait = 200 * time.Millisecond
			}
			select {
			case <-time.After(wait):
			case <-ctx.Done():
			}
			continue
		case StatusLease:
			if resp.Lease == nil {
				return fmt.Errorf("fleet worker %s: lease response without lease", cfg.Name)
			}
			if cfg.testAcquireHook != nil && !cfg.testAcquireHook(resp.Lease) {
				return nil // simulated mid-cell death
			}
			if err := executeLease(ctx, cfg, w, resp.Lease, logf); err != nil {
				return fmt.Errorf("fleet worker %s: %w", cfg.Name, err)
			}
		default:
			return fmt.Errorf("fleet worker %s: unknown lease status %q", cfg.Name, resp.Status)
		}
	}
}

// workerState is the cross-lease cache of one worker: built programs,
// the compiled-engine config (with its program cache), and the
// observability side — a lazily armed trace recorder (first traced
// lease arms it) plus cumulative counters piggybacked to the
// coordinator on every heartbeat and completion.
type workerState struct {
	progs    map[string]*core.Program
	compiled *core.CompiledConfig
	tracer   *trace.Recorder

	// Cumulative since worker start; atomics because the heartbeat
	// goroutine snapshots them while the lease loop updates them.
	cells     atomic.Uint64
	attempts  atomic.Uint64
	activated atomic.Uint64
	simFaults atomic.Uint64
	builds    atomic.Uint64
}

// snapshot is the worker's current cumulative metrics payload.
func (w *workerState) snapshot() *WorkerSnapshot {
	return &WorkerSnapshot{
		Cells:     w.cells.Load(),
		Attempts:  w.attempts.Load(),
		Activated: w.activated.Load(),
		SimFaults: w.simFaults.Load(),
		Builds:    w.builds.Load(),
	}
}

// executeLease runs one leased cell and reports its outcome. Only
// transport-level trouble (completion undeliverable after retries)
// fails the worker; campaign errors travel inside the completion.
func executeLease(ctx context.Context, cfg WorkerConfig, w *workerState, lease *Lease, logf func(string, ...any)) error {
	retryNote := ""
	if lease.Grant > 1 {
		retryNote = fmt.Sprintf(" (grant %d: retry of an expired or failed lease)", lease.Grant)
	}
	logf("fleet worker %s: lease %d: %s/%s/%s n=%d seed=%d%s",
		cfg.Name, lease.ID, lease.Benchmark, lease.Level, lease.Category, lease.N, lease.Seed, retryNote)

	// A traced lease (Trace set in the grant) arms the worker's recorder
	// once; the exec span parents under the coordinator's lease span via
	// the propagated context, so the merged timeline connects grant to
	// execution.
	if lease.Trace != 0 && w.tracer == nil {
		w.tracer, _ = trace.New(trace.Options{Worker: cfg.Name})
	}
	span := w.tracer.StartRemote(trace.KindExec,
		lease.Benchmark+"/"+lease.Level+"/"+lease.Category, lease.Trace, lease.Span)
	span.Worker, span.Grant = cfg.Name, lease.Grant

	req := CompleteRequest{
		Worker: cfg.Name, Lease: lease.ID,
		Benchmark: lease.Benchmark, Level: lease.Level, Category: lease.Category,
	}
	res, runErr := runLeasedCell(ctx, cfg, w, lease, span)
	switch {
	case runErr == nil:
		req.Result = &Result{
			Benign: res.Benign, SDC: res.SDC, Crash: res.Crash, Hang: res.Hang,
			NotActivated: res.NotActivated, Attempts: res.Attempts,
			SimFaults: res.SimFaults, DynCandidates: res.DynCandidates,
			Target: res.Adaptive.Target, Converged: res.Adaptive.Converged,
		}
		if res.Adaptive.Extended {
			r1 := res.Adaptive.Round1
			req.Result.Round1 = &ResultRound1{
				Benign: r1.Benign, SDC: r1.SDC, Crash: r1.Crash, Hang: r1.Hang,
				NotActivated: r1.NotActivated, Attempts: r1.Attempts,
				SimFaults: r1.SimFaults,
			}
		}
	case core.IsSoftSkip(runErr):
		req.Skip = &Skip{Kind: core.SkipKindOf(runErr), Err: runErr.Error()}
	default:
		req.Failure = runErr.Error()
	}
	switch {
	case runErr == nil:
		span.Outcome = "done"
		w.cells.Add(1)
		w.attempts.Add(uint64(res.Attempts))
		w.activated.Add(uint64(res.Benign + res.SDC + res.Crash + res.Hang))
		w.simFaults.Add(uint64(res.SimFaults))
	case core.IsSoftSkip(runErr):
		span.Outcome, span.Err = "skipped", runErr.Error()
		w.cells.Add(1)
	default:
		span.Outcome, span.Err = "failure", runErr.Error()
	}
	span.Finish()
	req.Spans = w.tracer.TakeBatch()
	req.Metrics = w.snapshot()

	// Deliver the completion even when the worker is draining: the cell
	// is done, losing the report would force a pointless retry. A short
	// grace context covers the post-cancellation send.
	sendCtx := ctx
	if ctx.Err() != nil {
		var cancel context.CancelFunc
		sendCtx, cancel = context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
	}
	cresp, err := cfg.Client.Complete(sendCtx, req)
	if err != nil {
		return err
	}
	if cresp.Duplicate {
		logf("fleet worker %s: lease %d: completion was a duplicate (cell already resolved elsewhere)", cfg.Name, lease.ID)
	}
	return nil
}

// runLeasedCell executes the campaign behind one lease, heartbeating
// while it runs. The campaign itself is uncancellable mid-cell (cells
// are the atomic unit of work); heartbeats stop when it finishes.
func runLeasedCell(ctx context.Context, cfg WorkerConfig, w *workerState, lease *Lease, parent trace.Span) (*core.CellResult, error) {
	level, err := fault.ParseLevel(lease.Level)
	if err != nil {
		return nil, err
	}
	cat, err := fault.ParseCategory(lease.Category)
	if err != nil {
		return nil, err
	}
	prog, ok := w.progs[lease.Benchmark]
	if !ok {
		bs := w.tracer.StartChild(trace.KindBuild, lease.Benchmark, parent)
		bs.Worker = cfg.Name
		prog, err = cfg.BuildProgram(lease.Benchmark)
		if err != nil {
			bs.Outcome, bs.Err = "failure", err.Error()
			bs.Finish()
			return nil, err
		}
		bs.Outcome = "done"
		bs.Finish()
		w.builds.Add(1)
		w.progs[lease.Benchmark] = prog
	}

	// Heartbeat at a third of the lease TTL: two missed beats of slack
	// before the coordinator declares the worker dead.
	interval := time.Duration(lease.TTLMS) * time.Millisecond / 3
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	hbStop := make(chan struct{})
	hbDone := make(chan struct{})
	go func() {
		defer close(hbDone)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				// Heartbeats are best-effort: delivery failures fall to the
				// client's own retry, and a lost lease is discovered at
				// completion time (the coordinator dedupes). Finished spans
				// and the cumulative metrics snapshot ride along.
				hb := HeartbeatRequest{Worker: cfg.Name, Lease: lease.ID,
					Spans: w.tracer.TakeBatch(), Metrics: w.snapshot()}
				if ok, err := cfg.Client.Heartbeat(ctx, hb); err == nil && !ok {
					if cfg.Logf != nil {
						cfg.Logf("fleet worker %s: lease %d no longer live (expired or resolved elsewhere); finishing the cell anyway",
							cfg.Name, lease.ID)
					}
				}
			case <-hbStop:
				return
			}
		}
	}()
	defer func() { close(hbStop); <-hbDone }()

	adaptCfg, err := adaptive.ParseSignature(lease.Adaptive)
	if err != nil {
		return nil, fmt.Errorf("lease %d: bad adaptive signature %q: %w", lease.ID, lease.Adaptive, err)
	}
	c := &core.Campaign{
		Prog:          prog,
		Level:         level,
		Category:      cat,
		N:             lease.N,
		Seed:          lease.Seed,
		SimFaultLimit: lease.SimFaultLimit,
		Deadline:      time.Duration(lease.CellDeadlineMS) * time.Millisecond,
		Compiled:      w.compiled,
		Adaptive:      adaptCfg,
		AdaptiveBase:  lease.AdaptiveBase,
	}
	return c.Run()
}

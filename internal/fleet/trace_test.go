package fleet

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"hlfi/internal/core"
	"hlfi/internal/obs"
	"hlfi/internal/obs/trace"
)

// TestFleetTracingDeterminism is the differential oracle for fleet-wide
// tracing: a three-worker fleet with one worker killed mid-cell runs
// with the flight recorder armed, and the rendered report must still be
// byte-identical to the untraced single-process golden. Along the way
// the merged timeline must actually tell the churn story: a campaign
// root, a retry span for the abandoned lease, and every exec span
// attributed to a surviving named worker.
func TestFleetTracingDeterminism(t *testing.T) {
	prog := testProgram(t)

	goldenSt, err := core.RunStudy(core.StudyConfig{Programs: []*core.Program{prog}, N: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	golden := renderAll(goldenSt)

	flight := filepath.Join(t.TempDir(), "flight.jsonl")
	tracer, err := trace.New(trace.Options{
		File: flight,
		Head: trace.Header{Go: "test", Engine: "on", Adaptive: "off", N: 8, Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := churnyConfig(t, prog)
	cfg.Trace = tracer
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Stop()
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()
	client := func(seed int64) *Client {
		return &Client{Base: srv.URL, JitterSeed: seed, Logf: t.Logf}
	}

	// w3 takes one lease and vanishes: its lease span must close with
	// the expiry, and the cell must come back as a retry span.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		err := RunWorker(context.Background(), WorkerConfig{
			Name: "w3", Client: client(3), Logf: t.Logf,
			BuildProgram:    func(string) (*core.Program, error) { return prog, nil },
			testAcquireHook: func(*Lease) bool { return false },
		})
		if err != nil {
			t.Errorf("w3: %v", err)
		}
	}()
	wg.Wait()

	for _, name := range []string{"w1", "w2"} {
		name := name
		wg.Add(1)
		go func() {
			defer wg.Done()
			err := RunWorker(context.Background(), WorkerConfig{
				Name: name, Client: client(int64(len(name))), Logf: t.Logf,
				BuildProgram: func(string) (*core.Program, error) { return prog, nil },
			})
			if err != nil {
				t.Errorf("%s: %v", name, err)
			}
		}()
	}
	select {
	case <-c.Done():
	case <-time.After(120 * time.Second):
		t.Fatalf("fleet did not converge; status: %+v", c.Status())
	}
	wg.Wait()

	// Byte-identity first: tracing must never touch the results.
	fleetSt, err := core.RunStudy(core.StudyConfig{
		Programs: []*core.Program{prog}, N: 8, Seed: 1, Resume: c.State(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := renderAll(fleetSt); got != golden {
		t.Errorf("traced fleet report differs from untraced golden:\n--- golden ---\n%s\n--- traced ---\n%s", golden, got)
	}
	for key, res := range goldenSt.Cells {
		if !reflect.DeepEqual(fleetSt.Cells[key], res) {
			t.Errorf("cell %v: traced fleet %+v, golden %+v", key, fleetSt.Cells[key], res)
		}
	}

	// The merged timeline must tell the story of the run.
	spans := tracer.Snapshot()
	byKind := map[string][]trace.Record{}
	byID := map[uint64]trace.Record{}
	for _, s := range spans {
		byKind[s.Kind] = append(byKind[s.Kind], s)
		byID[s.ID] = s
		if s.End == 0 {
			t.Errorf("unfinished span in final timeline: %+v", s)
		}
		if s.Trace != tracer.TraceID() {
			t.Errorf("span %d carries trace %d, want the campaign trace %d", s.ID, s.Trace, tracer.TraceID())
		}
	}
	if n := len(byKind[trace.KindCampaign]); n != 1 {
		t.Fatalf("campaign root spans = %d, want 1", n)
	}
	if root := byKind[trace.KindCampaign][0]; root.Outcome != "done" {
		t.Errorf("campaign root outcome = %q, want done", root.Outcome)
	}
	cells := len(goldenSt.Cells)
	if n := len(byKind[trace.KindCell]); n != cells {
		t.Errorf("cell spans = %d, want %d", n, cells)
	}
	if len(byKind[trace.KindRetry]) < 1 {
		t.Errorf("no retry span recorded for w3's abandoned lease; kinds: %v", kindCounts(spans))
	}
	execs := byKind[trace.KindExec]
	if len(execs) != cells {
		t.Errorf("exec spans = %d, want one per cell (%d)", len(execs), cells)
	}
	for _, e := range execs {
		if e.Worker != "w1" && e.Worker != "w2" {
			t.Errorf("exec span attributed to %q, want a surviving worker: %+v", e.Worker, e)
		}
		// Remote context propagation: each exec span must parent under
		// the coordinator-side lease span of the same worker.
		parent, ok := byID[e.Parent]
		if !ok || parent.Kind != trace.KindLease {
			t.Errorf("exec span %d parent %d is %+v, want the granting lease span", e.ID, e.Parent, parent)
			continue
		}
		if parent.Worker != e.Worker {
			t.Errorf("exec span worker %q != lease span worker %q", e.Worker, parent.Worker)
		}
	}

	// The durable flight recorder must hold the same timeline: a header
	// line plus one JSONL record per span.
	if !tracer.FileIntact() {
		t.Fatal("flight-recorder file was detached")
	}
	if err := tracer.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(flight)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(raw), "\n"), "\n")
	if got, want := len(lines), len(spans)+1; got != want {
		t.Errorf("flight recorder holds %d lines, want header + %d spans", got, len(spans))
	}
	var head struct {
		Type string `json:"type"`
		N    int    `json:"n"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &head); err != nil {
		t.Fatalf("flight-recorder header: %v", err)
	}
	if head.Type != "flight-recorder" || head.N != 8 {
		t.Errorf("flight-recorder header = %+v, want type=flight-recorder n=8", head)
	}
}

func kindCounts(spans []trace.Record) map[string]int {
	out := map[string]int{}
	for _, s := range spans {
		out[s.Kind]++
	}
	return out
}

// TestFleetWorkerFederation drives the heartbeat piggyback path by hand:
// a heartbeat carrying a span batch and a cumulative metrics snapshot
// must land the spans in the coordinator's timeline verbatim and publish
// per-worker series on /metrics — without disturbing the unlabeled
// aggregate counters the existing dashboards scrape.
func TestFleetWorkerFederation(t *testing.T) {
	prog := testProgram(t)
	tracer, err := trace.New(trace.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := churnyConfig(t, prog)
	cfg.Trace = tracer
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mux := c.Handler()
	mux.Handle("/", obs.MuxTrace(cfg.Metrics.Registry(), c.Status, tracer))
	srv := httptest.NewServer(mux)
	defer srv.Close()
	cl := &Client{Base: srv.URL, Logf: t.Logf}
	ctx := context.Background()

	lease, err := cl.Lease(ctx, "hb")
	if err != nil || lease.Status != StatusLease {
		t.Fatalf("lease = %+v, %v", lease, err)
	}
	if lease.Lease.Trace != tracer.TraceID() || lease.Lease.Span == 0 {
		t.Fatalf("lease grant carries trace=%d span=%d, want propagated context", lease.Lease.Trace, lease.Lease.Span)
	}

	workerSpan := trace.Record{
		Trace: lease.Lease.Trace, ID: 1<<63 | 7, Parent: lease.Lease.Span,
		Kind: trace.KindExec, Name: "quantumm/LLFI/all", Worker: "hb",
		Start: 100, End: 200, Outcome: "done",
	}
	ok, err := cl.Heartbeat(ctx, HeartbeatRequest{
		Worker: "hb", Lease: lease.Lease.ID,
		Spans:   []trace.Record{workerSpan},
		Metrics: &WorkerSnapshot{Cells: 3, Attempts: 41, Activated: 24, SimFaults: 1, Builds: 2},
	})
	if err != nil || !ok {
		t.Fatalf("heartbeat = %v, %v", ok, err)
	}

	found := false
	for _, s := range tracer.Snapshot() {
		if s == workerSpan {
			found = true
		}
	}
	if !found {
		t.Errorf("heartbeat-carried span not ingested verbatim; timeline: %+v", tracer.Snapshot())
	}

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	text := string(body)
	for _, want := range []string{
		`hlfi_fleet_worker_cells_total{worker="hb"} 3`,
		`hlfi_fleet_worker_attempts_total{worker="hb"} 41`,
		`hlfi_fleet_worker_activated_total{worker="hb"} 24`,
		`hlfi_fleet_worker_sim_faults_total{worker="hb"} 1`,
		`hlfi_fleet_worker_builds_total{worker="hb"} 2`,
		`hlfi_fleet_leases_total{worker="hb"} 1`,
		`hlfi_fleet_heartbeats_total{worker="hb"} 1`,
	} {
		if !strings.Contains(text, want+"\n") {
			t.Errorf("/metrics missing per-worker series %q", want)
		}
	}
	// The unlabeled aggregates the existing dashboards scrape stay put.
	for _, want := range []string{"hlfi_fleet_leases_total 1\n", "hlfi_fleet_heartbeats_total 1\n"} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing aggregate series %q", strings.TrimSpace(want))
		}
	}

	// A snapshot is an absolute restatement, not a delta: re-applying a
	// newer one replaces the old values.
	ok, err = cl.Heartbeat(ctx, HeartbeatRequest{
		Worker: "hb", Lease: lease.Lease.ID,
		Metrics: &WorkerSnapshot{Cells: 5, Attempts: 70, Activated: 40, SimFaults: 1, Builds: 2},
	})
	if err != nil || !ok {
		t.Fatalf("second heartbeat = %v, %v", ok, err)
	}
	resp, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), `hlfi_fleet_worker_cells_total{worker="hb"} 5`+"\n") {
		t.Error("snapshot re-apply did not store the absolute value")
	}
}

// TestFleetScrapeDuringDrain: a draining coordinator keeps /statusz and
// /metrics serving clean 200s the whole way down, and once the fleet
// resolves, consecutive scrapes agree on one final snapshot.
func TestFleetScrapeDuringDrain(t *testing.T) {
	prog := testProgram(t)
	cfg := churnyConfig(t, prog)
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Stop()
	mux := c.Handler()
	mux.Handle("/", obs.MuxTrace(cfg.Metrics.Registry(), c.Status, nil))
	srv := httptest.NewServer(mux)
	defer srv.Close()
	cl := &Client{Base: srv.URL, Logf: t.Logf}
	ctx := context.Background()

	scrape := func(path string) string {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %d %s, want 200", path, resp.StatusCode, strings.TrimSpace(string(body)))
		}
		return string(body)
	}

	// Take one lease so the drain happens with work in flight, then
	// drain and hammer both endpoints while the cell completes.
	lease, err := cl.Lease(ctx, "w")
	if err != nil || lease.Status != StatusLease {
		t.Fatalf("lease = %+v, %v", lease, err)
	}
	if dr, err := cl.Drain(ctx); err != nil || !dr.OK {
		t.Fatalf("drain = %+v, %v", dr, err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			var status map[string]any
			if err := json.Unmarshal([]byte(scrape("/statusz")), &status); err != nil {
				t.Errorf("/statusz under drain is not JSON: %v", err)
				return
			}
			scrape("/metrics")
		}
	}()

	req := CompleteRequest{
		Worker: "w", Lease: lease.Lease.ID,
		Benchmark: lease.Lease.Benchmark, Level: lease.Lease.Level, Category: lease.Lease.Category,
		Result: &Result{Benign: 8, Attempts: 8},
	}
	if resp, err := cl.Complete(ctx, req); err != nil || !resp.OK {
		t.Fatalf("completion under drain = %+v, %v", resp, err)
	}
	// A drained coordinator answers pollers with done, not an error.
	if resp, err := cl.Lease(ctx, "w"); err != nil || resp.Status != StatusDone {
		t.Fatalf("lease under drain = %+v, %v (want %q)", resp, err, StatusDone)
	}
	close(stop)
	wg.Wait()

	// The final snapshot is settled: two scrapes in a row agree on both
	// endpoints — byte for byte on /metrics, and on /statusz once the
	// one deliberately clock-relative field (worker lastSeenSecAgo) is
	// factored out.
	if a, b := scrubClock(t, scrape("/statusz")), scrubClock(t, scrape("/statusz")); a != b {
		t.Errorf("final /statusz snapshot unstable:\n--- first ---\n%s\n--- second ---\n%s", a, b)
	}
	if a, b := scrape("/metrics"), scrape("/metrics"); a != b {
		t.Errorf("final /metrics snapshot unstable:\n--- first ---\n%s\n--- second ---\n%s", a, b)
	}
}

// scrubClock normalizes a /statusz payload by deleting every
// lastSeenSecAgo field — the one value that tracks the wall clock.
func scrubClock(t *testing.T, payload string) string {
	t.Helper()
	var v any
	if err := json.Unmarshal([]byte(payload), &v); err != nil {
		t.Fatalf("/statusz is not JSON: %v", err)
	}
	var scrub func(any)
	scrub = func(node any) {
		switch n := node.(type) {
		case map[string]any:
			delete(n, "lastSeenSecAgo")
			for _, c := range n {
				scrub(c)
			}
		case []any:
			for _, c := range n {
				scrub(c)
			}
		}
	}
	scrub(v)
	out, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

package fleet

import "hlfi/internal/obs"

// Metrics are the coordinator's fleet instruments, registered on an
// internal/obs registry so the standard /metrics endpoint scrapes them
// in Prometheus text format alongside nothing else — the coordinator
// runs no campaigns itself, so fleet counters are its whole story.
type Metrics struct {
	reg *obs.Registry

	// Leases counts granted leases; Expiries leases whose worker went
	// silent past the deadline; Retries cells put back in the queue
	// (after an expiry or a reported failure); Duplicates completions
	// dropped because their cell was already resolved; Heartbeats
	// accepted lease extensions.
	Leases     *obs.Counter
	Expiries   *obs.Counter
	Retries    *obs.Counter
	Duplicates *obs.Counter
	Heartbeats *obs.Counter

	// CellsDone / CellsSkipped / CellsDegraded partition resolved cells:
	// completed results, worker-reported soft skips, and cells that ran
	// out of retry budget (degraded to a fleet-failed skip record).
	CellsDone     *obs.Counter
	CellsSkipped  *obs.Counter
	CellsDegraded *obs.Counter

	// AdaptiveExtensions counts cells the adaptive reallocation plan
	// reopened as extension leases.
	AdaptiveExtensions *obs.Counter

	// Warehouse accounting: cells resolved from the content-addressed
	// result warehouse without granting a lease (hits), lookups that
	// missed (the cell was leased and executed), and records persisted
	// after resolution. Wired into the warehouse store by the serving
	// CLI.
	WarehouseHits   *obs.Counter
	WarehouseMisses *obs.Counter
	WarehouseStores *obs.Counter

	// QueueDepth is the number of unleased, unresolved cells;
	// ActiveLeases the leases currently live; WorkersLive the workers
	// seen (lease, heartbeat, or completion) within the liveness
	// window.
	QueueDepth   *obs.Gauge
	ActiveLeases *obs.Gauge
	WorkersLive  *obs.Gauge

	// StudyDone is 1 once every cell is resolved.
	StudyDone *obs.Gauge
}

// NewMetrics builds the fleet instrument set on a fresh registry.
func NewMetrics() *Metrics {
	reg := obs.NewRegistry()
	return &Metrics{
		reg: reg,
		Leases: reg.Counter("hlfi_fleet_leases_total",
			"Cell leases granted to workers."),
		Expiries: reg.Counter("hlfi_fleet_lease_expiries_total",
			"Leases expired after their worker went silent past the deadline."),
		Retries: reg.Counter("hlfi_fleet_retries_total",
			"Cells requeued after a lease expiry or a reported worker failure."),
		Duplicates: reg.Counter("hlfi_fleet_duplicate_completions_total",
			"Completions dropped because the cell was already resolved (deterministic cells make duplicates benign)."),
		Heartbeats: reg.Counter("hlfi_fleet_heartbeats_total",
			"Accepted lease heartbeat extensions."),
		CellsDone: reg.Counter("hlfi_fleet_cells_done_total",
			"Cells resolved with a completed result."),
		CellsSkipped: reg.Counter("hlfi_fleet_cells_skipped_total",
			"Cells resolved with a worker-reported soft skip."),
		CellsDegraded: reg.Counter("hlfi_fleet_cells_degraded_total",
			"Cells degraded to a fleet-failed skip after exhausting their retry budget."),
		AdaptiveExtensions: reg.Counter("hlfi_fleet_adaptive_extensions_total",
			"Cells the adaptive reallocation plan reopened as extension leases."),
		WarehouseHits: reg.Counter("hlfi_warehouse_hits_total",
			"Cells resolved from the content-addressed result warehouse without a lease."),
		WarehouseMisses: reg.Counter("hlfi_warehouse_misses_total",
			"Warehouse lookups that missed (cell leased and executed)."),
		WarehouseStores: reg.Counter("hlfi_warehouse_stores_total",
			"Cell records persisted to the result warehouse."),
		QueueDepth: reg.Gauge("hlfi_fleet_queue_depth",
			"Unresolved cells not currently leased."),
		ActiveLeases: reg.Gauge("hlfi_fleet_active_leases",
			"Leases currently live."),
		WorkersLive: reg.Gauge("hlfi_fleet_workers_live",
			"Workers seen within the liveness window."),
		StudyDone: reg.Gauge("hlfi_fleet_study_done",
			"1 once every cell of the study is resolved."),
	}
}

// Registry exposes the underlying registry for the /metrics endpoint.
func (m *Metrics) Registry() *obs.Registry { return m.reg }

// LeaseFor returns the per-worker grant counter — the labeled
// companion of Leases (hlfi_fleet_leases_total{worker="w1"}), created
// on first grant. Label values are escaped by obs.Label, so hostile
// worker names cannot corrupt the exposition. The unlabeled aggregate
// series keeps its exact name: '{' sorts after every identifier byte,
// so labeled children render directly below it in the same family.
func (m *Metrics) LeaseFor(worker string) *obs.Counter {
	if m == nil {
		return nil
	}
	return m.reg.Counter(obs.Label("hlfi_fleet_leases_total", "worker", worker),
		"Cell leases granted to workers.")
}

// HeartbeatFor returns the per-worker heartbeat counter, the labeled
// companion of Heartbeats.
func (m *Metrics) HeartbeatFor(worker string) *obs.Counter {
	if m == nil {
		return nil
	}
	return m.reg.Counter(obs.Label("hlfi_fleet_heartbeats_total", "worker", worker),
		"Accepted lease heartbeat extensions.")
}

// ApplySnapshot republishes one worker's cumulative metrics snapshot as
// the federated hlfi_fleet_worker_* series. Snapshots carry absolute
// totals, so each value is stored, not added — a dropped heartbeat
// costs staleness, never drift.
func (m *Metrics) ApplySnapshot(worker string, s *WorkerSnapshot) {
	if m == nil || s == nil {
		return
	}
	store := func(name, help string, v uint64) {
		m.reg.Counter(obs.Label(name, "worker", worker), help).Store(v)
	}
	store("hlfi_fleet_worker_cells_total",
		"Cells executed, as last reported by each worker.", s.Cells)
	store("hlfi_fleet_worker_attempts_total",
		"Injection attempts drawn, as last reported by each worker.", s.Attempts)
	store("hlfi_fleet_worker_activated_total",
		"Activated injections, as last reported by each worker.", s.Activated)
	store("hlfi_fleet_worker_sim_faults_total",
		"Contained simulator panics, as last reported by each worker.", s.SimFaults)
	store("hlfi_fleet_worker_builds_total",
		"Benchmark program builds, as last reported by each worker.", s.Builds)
}

// Package fleet turns the shard-and-merge campaign machinery into a
// long-running, fault-tolerant campaign service: an HTTP coordinator
// that expands one study into its canonical cell list and hands cells
// out as leases, plus a worker loop that executes leased cells and
// streams their checkpoint records back.
//
// The protocol leans entirely on the determinism the core already
// guarantees: every cell derives its seed via core.CellSeed from the
// study seed and its own identity, never from scheduling, so a cell
// produces identical records no matter which worker runs it, how often
// it is retried after a lease expires, or how many duplicate
// completions arrive. That is what makes the fault-tolerance cheap —
// expiry, retry, and dedupe are pure bookkeeping, and the rendered
// report stays byte-identical to the single-process run.
//
// Wire format: JSON request/response bodies over plain HTTP.
//
//	POST /lease      LeaseRequest     -> LeaseResponse
//	POST /heartbeat  HeartbeatRequest -> HeartbeatResponse
//	POST /complete   CompleteRequest  -> CompleteResponse
//	POST /drain      (empty)          -> DrainResponse
//	GET  /metrics, /statusz, /tracez, /debug/pprof/   (internal/obs)
package fleet

import "hlfi/internal/obs/trace"

// StatusLease, StatusWait, and StatusDone are the LeaseResponse states.
const (
	// StatusLease: a cell lease was granted; execute it and report back.
	StatusLease = "lease"
	// StatusWait: no cell is currently grantable (all leased, or backing
	// off before a retry). Poll again after RetryAfterMS.
	StatusWait = "wait"
	// StatusDone: the study is complete or the coordinator is draining;
	// the worker should exit.
	StatusDone = "done"
)

// LeaseRequest asks the coordinator for one cell lease.
type LeaseRequest struct {
	// Worker is the worker's self-chosen stable name, used for the
	// fleet dashboard and lease accounting.
	Worker string `json:"worker"`
}

// Lease is one granted campaign cell: everything a worker needs to
// reproduce the exact records the single-process study would have
// produced for this cell.
type Lease struct {
	// ID is the lease identity. Heartbeats and completions quote it; a
	// requeued cell gets a fresh lease with a fresh ID.
	ID uint64 `json:"id"`

	// Cell identity, in the same string forms the checkpoint schema
	// uses.
	Benchmark string `json:"benchmark"`
	Level     string `json:"level"`
	Category  string `json:"category"`

	// N and Seed pin the cell's work: N activated injections, seeded
	// with the position-independent per-cell seed (core.CellSeed), so
	// the coordinator remains the single place seed derivation happens.
	N    int   `json:"n"`
	Seed int64 `json:"seed"`

	// Campaign fault-tolerance knobs, inherited from the study.
	SimFaultLimit  int   `json:"simFaultLimit,omitempty"`
	CellDeadlineMS int64 `json:"cellDeadlineMs,omitempty"`

	// Adaptive, when non-empty, is the study's adaptive-sampling
	// signature (adaptive.Config.Signature); the worker arms the same
	// early-stopping rule so its records match the single-process run.
	// AdaptiveBase carries the round-1 baseline for extension leases
	// (N > AdaptiveBase): the worker re-runs the cell to the extended
	// target, capturing the round-1 snapshot at the baseline crossing.
	Adaptive     string `json:"adaptive,omitempty"`
	AdaptiveBase int    `json:"adaptiveBase,omitempty"`

	// TTLMS is the lease deadline interval: the worker must heartbeat
	// (or complete) within this long or the coordinator expires the
	// lease and requeues the cell.
	TTLMS int64 `json:"ttlMs"`

	// Grant counts how many times this cell has been leased (1 on the
	// first grant), so workers can log retries distinctly.
	Grant int `json:"grant"`

	// Trace and Span propagate the coordinator's trace context: Trace is
	// the study's trace ID, Span the coordinator-side lease span this
	// grant opened. The worker parents its execution spans under them so
	// the merged timeline connects grants to the work they caused. Both
	// are zero when tracing is off.
	Trace uint64 `json:"trace,omitempty"`
	Span  uint64 `json:"span,omitempty"`
}

// LeaseResponse answers a lease request.
type LeaseResponse struct {
	Status string `json:"status"` // StatusLease | StatusWait | StatusDone
	// RetryAfterMS accompanies StatusWait: how long to wait before
	// polling again.
	RetryAfterMS int64 `json:"retryAfterMs,omitempty"`
	// Lease accompanies StatusLease.
	Lease *Lease `json:"lease,omitempty"`
}

// HeartbeatRequest extends a lease's deadline while its cell runs.
// Observability piggybacks on it: Spans carries the worker's finished
// span batch since the last report, Metrics its cumulative counter
// snapshot. Both are optional and never influence lease bookkeeping.
type HeartbeatRequest struct {
	Worker string `json:"worker"`
	Lease  uint64 `json:"lease"`

	Spans   []trace.Record  `json:"spans,omitempty"`
	Metrics *WorkerSnapshot `json:"metrics,omitempty"`
}

// WorkerSnapshot is a worker's compact cumulative metrics snapshot,
// piggybacked on heartbeats and completions. Values are totals since
// the worker started, so the coordinator republishes them absolutely
// (obs.Counter.Store) — lost or reordered snapshots cannot double-count.
type WorkerSnapshot struct {
	Cells     uint64 `json:"cells,omitempty"`
	Attempts  uint64 `json:"attempts,omitempty"`
	Activated uint64 `json:"activated,omitempty"`
	SimFaults uint64 `json:"simFaults,omitempty"`
	Builds    uint64 `json:"builds,omitempty"`
}

// HeartbeatResponse acknowledges a heartbeat. OK is false when the
// lease is no longer live (expired and requeued, or already completed):
// the worker's in-flight result is not wasted — a completion for a
// still-unresolved cell is accepted from any lease, and a resolved
// cell's duplicate is deduped — but the worker learns it lost the race.
type HeartbeatResponse struct {
	OK bool `json:"ok"`
}

// Result carries one completed cell's outcome counts — the same payload
// a checkpoint cell record stores, so streaming a completion is
// streaming a checkpoint line.
type Result struct {
	Benign        int    `json:"benign"`
	SDC           int    `json:"sdc"`
	Crash         int    `json:"crash"`
	Hang          int    `json:"hang"`
	NotActivated  int    `json:"notActivated"`
	Attempts      int    `json:"attempts"`
	SimFaults     int    `json:"simFaults,omitempty"`
	DynCandidates uint64 `json:"dynCandidates"`

	// Adaptive-sampling payload, mirroring the checkpoint cell record:
	// Target is the activation target the cell ran to, Converged marks
	// an early stop, and Round1 carries the baseline-crossing snapshot
	// of an extension (the coordinator replans from it after a restart).
	Target    int           `json:"target,omitempty"`
	Converged bool          `json:"converged,omitempty"`
	Round1    *ResultRound1 `json:"round1,omitempty"`
}

// ResultRound1 is the round-1 snapshot of an extended cell (the counts
// at the moment the attempt stream crossed the study baseline).
type ResultRound1 struct {
	Benign       int `json:"benign"`
	SDC          int `json:"sdc"`
	Crash        int `json:"crash"`
	Hang         int `json:"hang"`
	NotActivated int `json:"notActivated"`
	Attempts     int `json:"attempts"`
	SimFaults    int `json:"simFaults,omitempty"`
}

// Skip reports a cell soft-skipped for the same reasons the local study
// path skips cells (no candidates, activation budget exhausted,
// wall-clock deadline), classified worker-side with core.SkipKindOf.
type Skip struct {
	Kind string `json:"kind"`
	Err  string `json:"err"`
}

// CompleteRequest reports the outcome of one leased cell. Exactly one
// of Result, Skip, or Failure is set: Result and Skip resolve the cell,
// Failure is a hard worker-side error that fails the lease so the
// coordinator requeues the cell.
type CompleteRequest struct {
	Worker string `json:"worker"`
	Lease  uint64 `json:"lease"`

	// Cell identity, repeated so completions from expired leases (whose
	// lease record the coordinator already dropped) can still resolve
	// their cell.
	Benchmark string `json:"benchmark"`
	Level     string `json:"level"`
	Category  string `json:"category"`

	Result  *Result `json:"result,omitempty"`
	Skip    *Skip   `json:"skip,omitempty"`
	Failure string  `json:"failure,omitempty"`

	// Observability piggyback, same contract as HeartbeatRequest.
	Spans   []trace.Record  `json:"spans,omitempty"`
	Metrics *WorkerSnapshot `json:"metrics,omitempty"`
}

// CompleteResponse acknowledges a completion. Duplicate marks a
// completion for a cell that already had a result; determinism makes
// the duplicate byte-identical, so it is dropped without error.
type CompleteResponse struct {
	OK        bool `json:"ok"`
	Duplicate bool `json:"duplicate,omitempty"`
}

// DrainResponse acknowledges a drain request: the coordinator stops
// granting leases (in-flight leases may still complete) and reports how
// many cells were still unresolved when the drain began.
type DrainResponse struct {
	OK         bool `json:"ok"`
	Unresolved int  `json:"unresolved"`
}

package fleet

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"hlfi/internal/core"
	"hlfi/internal/telemetry"
	"hlfi/internal/warehouse"
)

// whCapture counts fleet telemetry events by type.
type whCapture struct {
	mu     sync.Mutex
	counts map[string]int
}

func (c *whCapture) Record(e telemetry.Event) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.counts == nil {
		c.counts = make(map[string]int)
	}
	c.counts[e.Type]++
}

func (c *whCapture) count(typ string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.counts[typ]
}

// TestFleetWarehousePreResolution is the fleet half of the warehouse
// differential oracle: a cold fleet populates the store through its
// workers' completions, and a second coordinator over the same store
// resolves every cell at construction — done before any worker exists,
// zero leases granted, and the rendered report byte-identical to the
// single-process golden.
func TestFleetWarehousePreResolution(t *testing.T) {
	prog := testProgram(t)
	goldenSt, err := core.RunStudy(core.StudyConfig{Programs: []*core.Program{prog}, N: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	golden := renderAll(goldenSt)

	store, err := warehouse.Open(filepath.Join(t.TempDir(), "wh"))
	if err != nil {
		t.Fatal(err)
	}
	shape := core.CheckpointShape{N: 8, Seed: 1, Replay: "off", Compiled: "on"}
	cache := store.ForStudy(shape, []*core.Program{prog})

	// Cold fleet: one worker executes everything; completions store back.
	ckptCold := filepath.Join(t.TempDir(), "cold.jsonl")
	writerCold, err := core.NewCheckpointWriterShape(ckptCold, shape)
	if err != nil {
		t.Fatal(err)
	}
	cfg := churnyConfig(t, prog)
	cfg.Checkpoint = writerCold
	cfg.Warehouse = cache
	store.Hits, store.Misses, store.Stores = cfg.Metrics.WarehouseHits, cfg.Metrics.WarehouseMisses, cfg.Metrics.WarehouseStores
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Stop()
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()
	if err := RunWorker(context.Background(), WorkerConfig{
		Name: "w1", Client: &Client{Base: srv.URL, JitterSeed: 1, Logf: t.Logf}, Logf: t.Logf,
		BuildProgram: func(string) (*core.Program, error) { return prog, nil },
	}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-c.Done():
	case <-time.After(120 * time.Second):
		t.Fatalf("cold fleet did not converge; status: %+v", c.Status())
	}
	if err := writerCold.Close(); err != nil {
		t.Fatal(err)
	}
	totalCells := len(c.State().Cells) + len(c.State().Skips)
	if got := cfg.Metrics.WarehouseMisses.Value(); got != uint64(totalCells) {
		t.Errorf("cold fleet: %d warehouse misses, want %d (every cell)", got, totalCells)
	}
	if got := cfg.Metrics.WarehouseStores.Value(); got == 0 {
		t.Error("cold fleet stored nothing back")
	}

	// Warm fleet: a fresh coordinator over the populated store must be
	// done at construction, with no worker and no lease.
	ckptWarm := filepath.Join(t.TempDir(), "warm.jsonl")
	writerWarm, err := core.NewCheckpointWriterShape(ckptWarm, shape)
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := churnyConfig(t, prog)
	cfg2.Checkpoint = writerWarm
	cfg2.Warehouse = cache
	var cap whCapture
	cfg2.Events = &cap
	store.Hits, store.Misses, store.Stores = cfg2.Metrics.WarehouseHits, cfg2.Metrics.WarehouseMisses, cfg2.Metrics.WarehouseStores
	c2, err := New(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-c2.Done():
	default:
		t.Fatalf("warm coordinator is not done at construction; status: %+v", c2.Status())
	}
	if got := cfg2.Metrics.WarehouseHits.Value(); got != uint64(totalCells) {
		t.Errorf("warm fleet: %d warehouse hits, want %d", got, totalCells)
	}
	if got := cfg2.Metrics.WarehouseMisses.Value(); got != 0 {
		t.Errorf("warm fleet: %d warehouse misses, want 0", got)
	}
	if got := cap.count(telemetry.EventWarehouseHit); got != totalCells {
		t.Errorf("warm fleet emitted %d warehouse_hit events, want %d", got, totalCells)
	}
	if !reflect.DeepEqual(c2.State().Cells, c.State().Cells) {
		t.Error("warm coordinator state differs from the cold fleet's")
	}
	if err := writerWarm.Close(); err != nil {
		t.Fatal(err)
	}

	// The warm checkpoint renders byte-identical to the single-process
	// golden without re-running anything.
	loaded, err := core.LoadCheckpointShape(ckptWarm, shape)
	if err != nil {
		t.Fatal(err)
	}
	warmSt, err := core.RunStudy(core.StudyConfig{
		Programs: []*core.Program{prog}, N: 8, Seed: 1, Resume: loaded,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := renderAll(warmSt); got != golden {
		t.Errorf("warehouse-resolved fleet report differs from golden:\n--- golden ---\n%s\n--- warm ---\n%s", golden, got)
	}

	// GET /warehouse on the warm coordinator classifies every cell as
	// cached; a coordinator without a warehouse answers 404.
	srv2 := httptest.NewServer(c2.Handler())
	defer srv2.Close()
	resp, err := http.Get(srv2.URL + "/warehouse")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /warehouse = %d, want 200", resp.StatusCode)
	}
	var report struct {
		Dir    string         `json:"dir"`
		Counts map[string]int `json:"counts"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&report); err != nil {
		t.Fatal(err)
	}
	if report.Dir != store.Dir() {
		t.Errorf("/warehouse dir = %q, want %q", report.Dir, store.Dir())
	}
	if cached := report.Counts[warehouse.StatusHit] + report.Counts[warehouse.StatusSkip]; cached != totalCells {
		t.Errorf("/warehouse classifies %d cells as cached (%+v), want %d", cached, report.Counts, totalCells)
	}

	cfg3 := churnyConfig(t, prog)
	c3, err := New(cfg3)
	if err != nil {
		t.Fatal(err)
	}
	srv3 := httptest.NewServer(c3.Handler())
	defer srv3.Close()
	resp3, err := http.Get(srv3.URL + "/warehouse")
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusNotFound {
		t.Errorf("GET /warehouse without a store = %d, want 404", resp3.StatusCode)
	}
}

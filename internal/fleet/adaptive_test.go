package fleet

import (
	"context"
	"fmt"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"hlfi/internal/adaptive"
	"hlfi/internal/core"
)

// The fleet adaptive oracle: quantumm at this shape stops four cells
// early and extends two, so the reallocation round is exercised end to
// end on every execution path below.
const (
	fleetAdaptiveN    = 24
	fleetAdaptiveSeed = 1
)

func fleetAdaptiveConfig() *adaptive.Config {
	return &adaptive.Config{Eps: 0.15, MinN: 8, Check: 4}
}

// TestAdaptiveStopDeterminism is the differential oracle of the
// adaptive engine: the same adaptive study run four ways — sequential,
// cell-parallel, as three shards merged, and as a fleet of three
// workers with one abandoned lease — must agree on every per-cell stop
// point and render byte-identical reports. The stopping decision and
// the reallocation plan are pure functions of the attempt-record
// stream, so scheduling, sharding, and churn must not move them.
func TestAdaptiveStopDeterminism(t *testing.T) {
	prog := testProgram(t)
	acfg := fleetAdaptiveConfig()
	study := func(mutate func(*core.StudyConfig)) *core.Study {
		t.Helper()
		cfg := core.StudyConfig{Programs: []*core.Program{prog},
			N: fleetAdaptiveN, Seed: fleetAdaptiveSeed, Adaptive: acfg}
		if mutate != nil {
			mutate(&cfg)
		}
		st, err := core.RunStudy(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}

	goldenSt := study(nil)
	golden := renderAll(goldenSt)
	converged, extended := 0, 0
	for _, c := range goldenSt.Cells {
		if c.Adaptive.Converged && !c.Adaptive.Extended {
			converged++
		}
		if c.Adaptive.Extended {
			extended++
		}
	}
	if converged == 0 || extended == 0 {
		t.Fatalf("oracle fixture degenerate: %d converged, %d extended (want both nonzero)", converged, extended)
	}

	// Way 2: cell-level parallelism.
	if par := renderAll(study(func(cfg *core.StudyConfig) { cfg.Parallel = 4 })); par != golden {
		t.Fatalf("parallel adaptive run differs from sequential:\n--- seq ---\n%s\n--- par ---\n%s", golden, par)
	}

	// Way 3: three shard checkpoints merged and rendered. Shards run
	// round 1 only; the merge render recomputes the identical plan from
	// the persisted round-1 records and runs the extensions itself.
	dir := t.TempDir()
	var paths []string
	for i := 0; i < 3; i++ {
		spec := core.ShardSpec{Index: i, Count: 3}
		path := filepath.Join(dir, fmt.Sprintf("shard-%d.jsonl", i))
		w, err := core.NewCheckpointWriterShape(path, core.CheckpointShape{
			N: fleetAdaptiveN, Seed: fleetAdaptiveSeed, Replay: "off",
			Adaptive: acfg.Signature(), Shard: spec.String()})
		if err != nil {
			t.Fatal(err)
		}
		shard := spec
		study(func(cfg *core.StudyConfig) { cfg.Checkpoint = w; cfg.Shard = &shard })
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		paths = append(paths, path)
	}
	merged, err := core.MergeShardCheckpoints(paths)
	if err != nil {
		t.Fatal(err)
	}
	if merged.Shape.Adaptive != acfg.Signature() {
		t.Fatalf("merged shape adaptive = %q, want %q", merged.Shape.Adaptive, acfg.Signature())
	}
	for key, res := range merged.State.Cells {
		if res.Adaptive.Extended {
			t.Fatalf("shard worker extended cell %v; extensions belong to the merge render", key)
		}
	}
	if mergedReport := renderAll(study(func(cfg *core.StudyConfig) { cfg.Resume = merged.State })); mergedReport != golden {
		t.Fatalf("shard-merge adaptive report differs:\n--- golden ---\n%s\n--- merged ---\n%s", golden, mergedReport)
	}

	// Way 4: a fleet of three workers, one of which takes a lease and
	// dies without completing it. The coordinator expires the lease,
	// retries the cell, computes the reallocation plan once all round-1
	// cells resolve, and reopens granted cells as extension leases.
	ckpt := filepath.Join(t.TempDir(), "fleet-adaptive.jsonl")
	shape := core.CheckpointShape{N: fleetAdaptiveN, Seed: fleetAdaptiveSeed,
		Replay: "off", Adaptive: acfg.Signature()}
	writer, err := core.NewCheckpointWriterShape(ckpt, shape)
	if err != nil {
		t.Fatal(err)
	}
	cfg := churnyConfig(t, prog)
	cfg.N = fleetAdaptiveN
	cfg.Seed = fleetAdaptiveSeed
	cfg.Adaptive = acfg
	cfg.Checkpoint = writer
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Stop()
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()
	client := func(seed int64) *Client {
		return &Client{Base: srv.URL, JitterSeed: seed, Logf: t.Logf}
	}

	// w3 abandons its first lease and exits: the cell must be retried by
	// a survivor with the identical seed and stop point.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		err := RunWorker(context.Background(), WorkerConfig{
			Name: "w3", Client: client(3), Logf: t.Logf,
			BuildProgram:    func(string) (*core.Program, error) { return prog, nil },
			testAcquireHook: func(*Lease) bool { return false },
		})
		if err != nil {
			t.Errorf("w3: %v", err)
		}
	}()
	wg.Wait()

	for _, name := range []string{"w1", "w2"} {
		name := name
		wg.Add(1)
		go func() {
			defer wg.Done()
			err := RunWorker(context.Background(), WorkerConfig{
				Name: name, Client: client(int64(len(name))), Logf: t.Logf,
				BuildProgram: func(string) (*core.Program, error) { return prog, nil },
			})
			if err != nil {
				t.Errorf("%s: %v", name, err)
			}
		}()
	}
	select {
	case <-c.Done():
	case <-time.After(120 * time.Second):
		t.Fatalf("adaptive fleet did not converge; status: %+v", c.Status())
	}
	wg.Wait()

	m := cfg.Metrics
	if m.Expiries.Value() < 1 {
		t.Errorf("lease expiries = %d, want >= 1 (w3's abandoned lease)", m.Expiries.Value())
	}
	if got := m.AdaptiveExtensions.Value(); got != uint64(extended) {
		t.Errorf("adaptive extension leases = %d, want %d", got, extended)
	}
	if m.CellsDegraded.Value() != 0 {
		t.Errorf("cells degraded = %d, want 0", m.CellsDegraded.Value())
	}
	if err := writer.Close(); err != nil {
		t.Fatal(err)
	}

	// The coordinator's in-memory state and the durable checkpoint agree,
	// and both reproduce the single-process adaptive study byte for byte.
	loaded, err := core.LoadCheckpointShape(ckpt, shape)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := loaded.Cells, c.State().Cells; !reflect.DeepEqual(got, want) {
		t.Errorf("checkpoint cells differ from in-memory state:\nfile: %+v\nmem:  %+v", got, want)
	}
	fleetSt := study(func(cfg *core.StudyConfig) { cfg.Resume = loaded })
	for key, want := range goldenSt.Cells {
		got := fleetSt.Cells[key]
		if got == nil || *got != *want {
			t.Errorf("cell %v: fleet stop point differs:\ngolden %+v\nfleet  %+v", key, want, got)
		}
	}
	if got := renderAll(fleetSt); got != golden {
		t.Errorf("fleet adaptive report differs from single-process golden:\n--- golden ---\n%s\n--- fleet ---\n%s", golden, got)
	}
}

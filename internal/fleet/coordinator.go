package fleet

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"time"

	"hlfi/internal/adaptive"
	"hlfi/internal/core"
	"hlfi/internal/fault"
	"hlfi/internal/obs/trace"
	"hlfi/internal/telemetry"
	"hlfi/internal/warehouse"
)

// Config configures a Coordinator for one study submission.
type Config struct {
	// Programs, N, Seed, and Categories define the study exactly as
	// core.StudyConfig does; the canonical cell list they expand to is
	// the work queue.
	Programs   []*core.Program
	N          int
	Seed       int64
	Categories []fault.Category

	// SimFaultLimit and CellDeadline are forwarded to workers inside
	// each lease (per-cell campaign fault tolerance, same as the local
	// study path).
	SimFaultLimit int
	CellDeadline  time.Duration

	// LeaseTTL is the heartbeat deadline: a lease not extended within
	// this long is expired and its cell requeued (default 30s).
	LeaseTTL time.Duration
	// MaxRetries bounds re-grants per cell: after 1+MaxRetries grants
	// all end in expiry or failure, the cell degrades to a typed
	// fleet-failed skip record instead of blocking the study forever
	// (default 3).
	MaxRetries int
	// Backoff is the base requeue delay, doubled per retry up to
	// BackoffCap, with jitter (defaults 250ms / 5s).
	Backoff    time.Duration
	BackoffCap time.Duration
	// SweepInterval is the expiry scan period (default LeaseTTL/4,
	// floored at 10ms).
	SweepInterval time.Duration
	// LivenessWindow bounds the workers-live gauge: a worker silent
	// longer than this is no longer counted (default 2*LeaseTTL).
	LivenessWindow time.Duration
	// RetryAfter is the poll delay handed to workers when no cell is
	// grantable (default 200ms).
	RetryAfter time.Duration
	// JitterSeed seeds requeue jitter (0: fixed default). Jitter shapes
	// scheduling only — determinism of results never depends on it.
	JitterSeed int64

	// Adaptive, when non-nil, arms adaptive sampling: workers stop cells
	// early once converged, and when every cell has its round-1 record
	// the coordinator computes the reallocation plan (a pure function of
	// the round-1 records in canonical order — identical to the
	// single-process plan) and reopens the widest cells as extension
	// leases before declaring the study done.
	Adaptive *adaptive.Config

	// Checkpoint, when non-nil, receives every resolved cell as a
	// durable checkpoint record, making the coordinator's assembled
	// state a real checkpoint file: the render path loads it back
	// through the existing typed checkpoint validation. A failed append
	// detaches the writer (it is sticky-failed) and fails the lease so
	// the cell is requeued and re-resolved in memory.
	Checkpoint *core.CheckpointWriter
	// Resume, when non-nil, pre-resolves the recorded cells so a
	// restarted coordinator re-leases only the remainder.
	Resume *core.CheckpointState
	// Warehouse, when non-nil, is the content-addressed result cache:
	// warehoused cells are resolved at construction (and at plan time,
	// for adaptive extensions) without ever granting a lease, announced
	// by a warehouse_hit telemetry event, and every leased resolution is
	// stored back. Hits are appended to the checkpoint like any other
	// resolution — the render path loads the coordinator's own
	// checkpoint, so a warehouse-resolved cell must be in it.
	Warehouse *warehouse.StudyCache

	// Events, when non-nil, receives fleet_* telemetry events in
	// coordinator decision order.
	Events telemetry.Recorder
	// Metrics receives fleet instruments (a fresh set is created when
	// nil).
	Metrics *Metrics
	// Trace, when non-nil, records the study timeline: a campaign root
	// span, per-cell cell/wait/lease/retry/extension spans, and the
	// worker exec spans ingested from heartbeat and completion
	// piggybacks. Spans consume no randomness and touch no campaign
	// state, so results are byte-identical with tracing on or off; nil
	// is the zero-cost disabled path.
	Trace *trace.Recorder
	// Logf, when non-nil, receives operational log lines.
	Logf func(format string, args ...any)
}

// Cell lifecycle states.
const (
	cellPending  = iota // waiting in the queue (possibly backing off)
	cellLeased          // granted to a worker, lease live
	cellDone            // resolved with a result
	cellSkipped         // resolved with a worker-reported soft skip
	cellDegraded        // resolved with a fleet-failed skip (retry budget exhausted)
)

// cellState is the coordinator's bookkeeping for one canonical cell.
type cellState struct {
	key        core.CellKey
	seed       int64
	status     int
	grants     int       // leases granted so far
	eligibleAt time.Time // backoff gate while pending
	lease      uint64    // live lease ID while leased
	result     *core.CellResult
	skip       *core.CheckpointSkip
	// target is the activation target the next lease carries (the study
	// baseline, raised by the adaptive plan for extension leases).
	target int
	// prior keeps the round-1 result while an extension lease is in
	// flight: an extension whose retry budget runs out degrades back to
	// it instead of losing the cell.
	prior *core.CellResult

	// Trace spans (all zero-value no-ops when tracing is off): cellSpan
	// covers the cell's whole life (re-pointed at an extension span when
	// the adaptive plan reopens it), gapSpan the current queue wait or
	// retry backoff, leaseSpan the live grant.
	cellSpan  trace.Span
	gapSpan   trace.Span
	leaseSpan trace.Span
}

// leaseInfo is one live lease.
type leaseInfo struct {
	cell     *cellState
	worker   string
	deadline time.Time
}

// Coordinator owns one study's cell queue, lease table, and resolved
// state. All HTTP handlers and the expiry sweep share one mutex; every
// critical section is bookkeeping-only (no campaign ever runs under
// it).
type Coordinator struct {
	cfg Config

	mu        sync.Mutex
	cells     []*cellState
	byKey     map[core.CellKey]*cellState
	leases    map[uint64]*leaseInfo
	nextLease uint64
	draining  bool
	resolved  int
	workers   map[string]time.Time // last contact
	rng       *rand.Rand
	ckptLost  bool
	planDone  bool // adaptive reallocation plan already applied

	root trace.Span // study root span (no-op when tracing is off)

	done      chan struct{} // closed once every cell is resolved
	stop      chan struct{}
	sweeperWG sync.WaitGroup
}

// cellName is the span (and timeline lane) name of one cell.
func cellName(key core.CellKey) string {
	return key.Prog + "/" + key.Level.String() + "/" + key.Category.String()
}

// New builds a coordinator for one study: the canonical cell list
// becomes the queue, each cell carrying its position-independent seed.
func New(cfg Config) (*Coordinator, error) {
	if len(cfg.Programs) == 0 {
		return nil, fmt.Errorf("fleet: no programs")
	}
	if cfg.N <= 0 {
		return nil, fmt.Errorf("fleet: n must be positive")
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 30 * time.Second
	}
	if cfg.MaxRetries == 0 {
		cfg.MaxRetries = 3
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = 250 * time.Millisecond
	}
	if cfg.BackoffCap <= 0 {
		cfg.BackoffCap = 5 * time.Second
	}
	if cfg.SweepInterval <= 0 {
		cfg.SweepInterval = cfg.LeaseTTL / 4
		if cfg.SweepInterval < 10*time.Millisecond {
			cfg.SweepInterval = 10 * time.Millisecond
		}
	}
	if cfg.LivenessWindow <= 0 {
		cfg.LivenessWindow = 2 * cfg.LeaseTTL
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = 200 * time.Millisecond
	}
	if cfg.Metrics == nil {
		cfg.Metrics = NewMetrics()
	}
	seed := cfg.JitterSeed
	if seed == 0 {
		seed = 1
	}

	keys := core.CanonicalCells(cfg.Programs, cfg.Categories)
	c := &Coordinator{
		cfg:     cfg,
		byKey:   make(map[core.CellKey]*cellState, len(keys)),
		leases:  make(map[uint64]*leaseInfo),
		workers: make(map[string]time.Time),
		rng:     rand.New(rand.NewSource(seed)),
		done:    make(chan struct{}),
		stop:    make(chan struct{}),
	}
	c.root = cfg.Trace.Start(trace.KindCampaign, "study")
	for _, key := range keys {
		cs := &cellState{key: key, seed: core.CellSeed(cfg.Seed, key), target: cfg.N}
		if cfg.Resume != nil {
			if res, ok := cfg.Resume.Cells[key]; ok {
				cs.status, cs.result = cellDone, res
				if res.Adaptive.Target > 0 {
					// An adaptive record pins the target it actually ran to
					// (the baseline, or an extension target from the plan).
					cs.target = res.Adaptive.Target
				}
				c.resolved++
			} else if skip, ok := cfg.Resume.Skips[key]; ok {
				skip := skip
				cs.skip = &skip
				cs.status = cellSkipped
				if skip.Kind == core.SkipFleet {
					cs.status = cellDegraded
				}
				c.resolved++
			}
		}
		// Warehouse pre-resolution: a cell whose record is already in the
		// content-addressed store never enters the queue — its result is
		// checkpoint-appended (the render path loads this coordinator's own
		// checkpoint) and the cell resolves without a lease. A corrupt or
		// absent record is just a miss; the cell is leased normally.
		if cs.status == cellPending && cfg.Warehouse != nil {
			if res, skip, ok := cfg.Warehouse.Lookup(key, cfg.N, cfg.N); ok {
				if res != nil {
					if c.cfg.Checkpoint != nil {
						if err := c.cfg.Checkpoint.Cell(key, res); err != nil {
							c.detachCheckpointLocked(err)
						}
					}
					cs.status, cs.result = cellDone, res
					if res.Adaptive.Target > 0 {
						cs.target = res.Adaptive.Target
					}
					c.cfg.Metrics.CellsDone.Inc()
					c.resolved++
					c.emitWarehouseHit(cs)
				} else if skip != nil {
					if c.cfg.Checkpoint != nil {
						if err := c.appendSkipLocked(key, *skip); err != nil {
							c.detachCheckpointLocked(err)
						}
					}
					cs.skip, cs.status = skip, cellSkipped
					c.cfg.Metrics.CellsSkipped.Inc()
					c.resolved++
					c.emit(telemetry.Event{Type: telemetry.EventWarehouseHit,
						Benchmark: key.Prog, Level: key.Level.String(), Category: key.Category.String(),
						Err: skip.Err})
				}
			}
		}
		if cs.status == cellPending {
			cs.cellSpan = cfg.Trace.StartChild(trace.KindCell, cellName(key), c.root)
			cs.gapSpan = cfg.Trace.StartChild(trace.KindWait, cellName(key), cs.cellSpan)
		}
		c.cells = append(c.cells, cs)
		c.byKey[key] = cs
	}
	c.cfg.Metrics.QueueDepth.Set(int64(len(c.cells) - c.resolved))
	c.maybeFinishLocked()
	return c, nil
}

// Start launches the expiry sweeper. Stop releases it.
func (c *Coordinator) Start() {
	c.sweeperWG.Add(1)
	go func() {
		defer c.sweeperWG.Done()
		t := time.NewTicker(c.cfg.SweepInterval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				c.sweep(time.Now())
			case <-c.stop:
				return
			}
		}
	}()
}

// Stop halts the sweeper (idempotent is not needed: call once).
func (c *Coordinator) Stop() {
	close(c.stop)
	c.sweeperWG.Wait()
}

// Done is closed once every cell is resolved (done, skipped, or
// degraded).
func (c *Coordinator) Done() <-chan struct{} { return c.done }

// Drain stops granting leases; in-flight leases may still complete.
// Returns the number of unresolved cells at the moment of the drain.
func (c *Coordinator) Drain() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.draining = true
	return len(c.cells) - c.resolved
}

// logf logs through the configured sink.
func (c *Coordinator) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

func (c *Coordinator) emit(e telemetry.Event) {
	if c.cfg.Events != nil {
		c.cfg.Events.Record(e)
	}
}

// emitWarehouseHit announces a cell resolved from the result warehouse,
// carrying the cached counts so dashboards render it like any completed
// cell while the aggregator keeps it out of this run's attempt totals.
func (c *Coordinator) emitWarehouseHit(cs *cellState) {
	res := cs.result
	c.emit(telemetry.Event{Type: telemetry.EventWarehouseHit,
		Benchmark: cs.key.Prog, Level: cs.key.Level.String(), Category: cs.key.Category.String(),
		Benign: int(res.Benign), SDC: int(res.SDC), Crash: int(res.Crash), Hang: int(res.Hang),
		NotActivated: int(res.NotActivated), Attempts: int(res.Attempts), SimFaults: int(res.SimFaults),
		AdaptiveTarget: res.Adaptive.Target, AdaptiveConverged: res.Adaptive.Converged})
}

// noteWorker records worker contact (mutex held).
func (c *Coordinator) noteWorker(name string, now time.Time) {
	if name != "" {
		c.workers[name] = now
	}
}

// grantLocked finds the first grantable cell in canonical order and
// leases it (mutex held). Returns nil when nothing is grantable.
func (c *Coordinator) grantLocked(worker string, now time.Time) *Lease {
	for _, cs := range c.cells {
		if cs.status != cellPending || now.Before(cs.eligibleAt) {
			continue
		}
		c.nextLease++
		id := c.nextLease
		cs.status, cs.lease = cellLeased, id
		cs.grants++
		if cs.gapSpan.Open() {
			cs.gapSpan.Outcome = "granted"
			cs.gapSpan.Finish()
		}
		cs.leaseSpan = c.cfg.Trace.StartChild(trace.KindLease, cellName(cs.key), cs.cellSpan)
		cs.leaseSpan.Worker, cs.leaseSpan.Grant = worker, cs.grants
		c.leases[id] = &leaseInfo{cell: cs, worker: worker, deadline: now.Add(c.cfg.LeaseTTL)}
		c.cfg.Metrics.Leases.Inc()
		c.cfg.Metrics.ActiveLeases.Set(int64(len(c.leases)))
		c.updateQueueDepthLocked()
		c.emit(telemetry.Event{Type: telemetry.EventFleetLease,
			Benchmark: cs.key.Prog, Level: cs.key.Level.String(), Category: cs.key.Category.String(),
			Worker: worker, Lease: id, Retries: cs.grants - 1})
		lease := &Lease{
			ID:             id,
			Benchmark:      cs.key.Prog,
			Level:          cs.key.Level.String(),
			Category:       cs.key.Category.String(),
			N:              cs.target,
			Seed:           cs.seed,
			SimFaultLimit:  c.cfg.SimFaultLimit,
			CellDeadlineMS: c.cfg.CellDeadline.Milliseconds(),
			TTLMS:          c.cfg.LeaseTTL.Milliseconds(),
			Grant:          cs.grants,
			Trace:          cs.leaseSpan.TraceID(),
			Span:           cs.leaseSpan.ID(),
		}
		if c.cfg.Adaptive != nil {
			lease.Adaptive = c.cfg.Adaptive.Signature()
			lease.AdaptiveBase = c.cfg.N
		}
		return lease
	}
	return nil
}

// updateQueueDepthLocked refreshes the queue-depth gauge (mutex held).
func (c *Coordinator) updateQueueDepthLocked() {
	depth := 0
	for _, cs := range c.cells {
		if cs.status == cellPending {
			depth++
		}
	}
	c.cfg.Metrics.QueueDepth.Set(int64(depth))
}

// requeueLocked puts a leased cell back in the queue after an expiry or
// failure, or degrades it once the retry budget is exhausted (mutex
// held). reason describes what went wrong; kind is "expiry" or
// "failure" for the log line.
func (c *Coordinator) requeueLocked(cs *cellState, now time.Time, kind, reason string) {
	cs.lease = 0
	if cs.leaseSpan.Open() {
		cs.leaseSpan.Outcome, cs.leaseSpan.Err = kind, reason
		cs.leaseSpan.Finish()
	}
	if cs.grants > c.cfg.MaxRetries {
		if cs.prior != nil {
			// A failed extension degrades back to its round-1 record (the
			// checkpoint's last record for the key already is that record),
			// mirroring the single-process soft-skip path: the study keeps
			// the narrower cell instead of losing it.
			cs.result, cs.status, cs.prior = cs.prior, cellDone, nil
			c.finishCellSpanLocked(cs, "degraded")
			c.cfg.Metrics.CellsDegraded.Inc()
			c.logf("fleet: extension of cell %s/%s/%s abandoned after %d grants (%s: %s); keeping round-1 record",
				cs.key.Prog, cs.key.Level, cs.key.Category, cs.grants, kind, reason)
			c.emit(telemetry.Event{Type: telemetry.EventCellExtend,
				Benchmark: cs.key.Prog, Level: cs.key.Level.String(), Category: cs.key.Category.String(),
				Retries: cs.grants - 1, Err: reason})
			c.resolveLocked()
			return
		}
		// 1+MaxRetries grants all came to nothing: degrade the cell to a
		// typed skip record, the fleet analogue of the cell_deadline
		// path, so the study converges instead of retrying forever.
		skip := core.CheckpointSkip{Kind: core.SkipFleet,
			Err: fmt.Sprintf("fleet: cell failed %d lease(s), retry budget exhausted; last: %s", cs.grants, reason)}
		cs.skip, cs.status = &skip, cellDegraded
		c.finishCellSpanLocked(cs, "degraded")
		c.cfg.Metrics.CellsDegraded.Inc()
		c.appendCheckpointSkipLocked(cs.key, skip)
		c.logf("fleet: cell %s/%s/%s degraded after %d grants (%s: %s)",
			cs.key.Prog, cs.key.Level, cs.key.Category, cs.grants, kind, reason)
		c.emit(telemetry.Event{Type: telemetry.EventCellDeadline,
			Benchmark: cs.key.Prog, Level: cs.key.Level.String(), Category: cs.key.Category.String(),
			Retries: cs.grants - 1, Err: skip.Err})
		c.resolveLocked()
		return
	}
	retry := cs.grants // retry number: 1 after the first failed grant
	delay := c.cfg.Backoff << (retry - 1)
	if delay > c.cfg.BackoffCap || delay <= 0 {
		delay = c.cfg.BackoffCap
	}
	if delay > 1 {
		delay = delay/2 + time.Duration(c.rng.Int63n(int64(delay/2)))
	}
	cs.status, cs.eligibleAt = cellPending, now.Add(delay)
	cs.gapSpan = c.cfg.Trace.StartChild(trace.KindRetry, cellName(cs.key), cs.cellSpan)
	cs.gapSpan.Retry, cs.gapSpan.Err = retry, reason
	c.cfg.Metrics.Retries.Inc()
	c.updateQueueDepthLocked()
	c.logf("fleet: cell %s/%s/%s requeued after %s (%s); retry %d/%d in %v",
		cs.key.Prog, cs.key.Level, cs.key.Category, kind, reason, retry, c.cfg.MaxRetries, delay.Round(time.Millisecond))
	c.emit(telemetry.Event{Type: telemetry.EventFleetRequeue,
		Benchmark: cs.key.Prog, Level: cs.key.Level.String(), Category: cs.key.Category.String(),
		Retries: retry, Err: reason})
}

// finishCellSpanLocked closes a resolved cell's open spans with the
// final outcome — the live lease or gap span first, then the cell span
// itself (mutex held; every span op is a no-op when tracing is off).
func (c *Coordinator) finishCellSpanLocked(cs *cellState, outcome string) {
	if cs.leaseSpan.Open() {
		cs.leaseSpan.Outcome = outcome
		cs.leaseSpan.Finish()
	}
	if cs.gapSpan.Open() {
		cs.gapSpan.Outcome = outcome
		cs.gapSpan.Finish()
	}
	cs.cellSpan.Outcome = outcome
	cs.cellSpan.Finish()
}

// resolveLocked accounts one newly resolved cell and closes Done when
// the study converges (mutex held).
func (c *Coordinator) resolveLocked() {
	c.resolved++
	c.updateQueueDepthLocked()
	c.maybeFinishLocked()
}

// maybeFinishLocked closes Done once every cell is resolved — unless an
// adaptive study still owes its reallocation round, in which case the
// plan is applied first and the study finishes only when the reopened
// extension cells resolve too (mutex held).
func (c *Coordinator) maybeFinishLocked() {
	if c.resolved != len(c.cells) {
		return
	}
	if c.cfg.Adaptive != nil && !c.planDone {
		c.planDone = true
		if c.applyAdaptivePlanLocked() {
			return
		}
	}
	c.cfg.Metrics.StudyDone.Set(1)
	c.root.Outcome = "done"
	c.root.Finish()
	close(c.done)
}

// applyAdaptivePlanLocked computes the budget-reallocation plan from the
// round-1 records — the identical pure function of the identical inputs
// the single-process study evaluates, in the same canonical cell order —
// and reopens each granted cell as a pending extension with its raised
// target. Cells whose resumed record already carries the extension
// target (a restarted coordinator replanning) stay resolved. Reports
// whether any cell was reopened (mutex held).
func (c *Coordinator) applyAdaptivePlanLocked() bool {
	base := c.cfg.N
	states := make([]adaptive.CellState, len(c.cells))
	for i, cs := range c.cells {
		if cs.result == nil {
			continue // skipped or degraded: not part of the plan
		}
		counts, converged := cs.result.Round1State()
		states[i] = adaptive.CellState{Counts: counts, Converged: converged, Present: true}
	}
	plan := c.cfg.Adaptive.Reallocate(base, states)
	convergedCells := 0
	for _, s := range states {
		if s.Present && s.Converged {
			convergedCells++
		}
	}
	reopened, warehoused := 0, 0
	for i, g := range plan.Grants {
		cs := c.cells[i]
		if g <= 0 || cs.result == nil {
			continue
		}
		target := base + g
		if cs.result.Adaptive.Target == target {
			continue // resumed record already extended to this target
		}
		// The warehouse may already hold the extended record from an
		// earlier campaign — the grant is a pure function of the round-1
		// records, so the (target, base) identity matches exactly. A hit
		// resolves the extension in place: no reopening, no lease.
		if c.cfg.Warehouse != nil {
			if wres, _, ok := c.cfg.Warehouse.Lookup(cs.key, target, base); ok && wres != nil {
				if c.cfg.Checkpoint != nil {
					if err := c.cfg.Checkpoint.Cell(cs.key, wres); err != nil {
						c.detachCheckpointLocked(err)
					}
				}
				cs.result, cs.target = wres, target
				warehoused++
				c.emitWarehouseHit(cs)
				continue
			}
		}
		cs.target, cs.prior, cs.result = target, cs.result, nil
		cs.status, cs.grants, cs.lease = cellPending, 0, 0
		cs.eligibleAt = time.Time{}
		// The reopened cell's life continues under an extension span,
		// parented on the (finished) round-1 cell span so the timeline
		// shows the plan's lineage.
		cs.cellSpan = c.cfg.Trace.StartChild(trace.KindExtension, cellName(cs.key), cs.cellSpan)
		cs.cellSpan.Grant = target
		cs.gapSpan = c.cfg.Trace.StartChild(trace.KindWait, cellName(cs.key), cs.cellSpan)
		c.resolved--
		reopened++
	}
	c.cfg.Metrics.AdaptiveExtensions.Add(uint64(reopened))
	c.updateQueueDepthLocked()
	c.logf("fleet: adaptive plan: %d activations saved by early-stopped cells; %d cell(s) reopened as extensions, %d resolved from the warehouse (+%d granted, %d leftover)",
		plan.Saved, reopened, warehoused, plan.Granted, plan.Leftover)
	c.emit(telemetry.Event{Type: telemetry.EventAdaptivePlan,
		AdaptiveSaved: plan.Saved, AdaptiveGranted: plan.Granted,
		AdaptiveLeftover: plan.Leftover, AdaptiveConvergedCells: convergedCells,
		AdaptiveExtendedCells: reopened + warehoused})
	return reopened > 0
}

// appendCheckpointSkipLocked records a degraded-cell skip in the
// checkpoint (mutex held). Degradation is a coordinator decision, not a
// lease completion, so a write failure here just detaches the writer.
func (c *Coordinator) appendCheckpointSkipLocked(key core.CellKey, skip core.CheckpointSkip) {
	if c.cfg.Checkpoint == nil {
		return
	}
	if err := c.cfg.Checkpoint.Skip(key, fmt.Errorf("%s", skip.Err)); err != nil {
		c.detachCheckpointLocked(err)
	}
}

// detachCheckpointLocked drops the (sticky-failed) checkpoint writer so
// the study can still converge in memory; the durable file keeps its
// valid fully-synced prefix (mutex held).
func (c *Coordinator) detachCheckpointLocked(err error) {
	if c.ckptLost {
		return
	}
	c.ckptLost = true
	c.cfg.Checkpoint = nil
	c.logf("fleet: checkpoint detached after write failure (state continues in memory): %v", err)
}

// sweep expires overdue leases and refreshes liveness gauges.
func (c *Coordinator) sweep(now time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for id, li := range c.leases {
		if now.Before(li.deadline) {
			continue
		}
		delete(c.leases, id)
		if li.cell.status != cellLeased || li.cell.lease != id {
			// Stale entry: the cell was resolved (by a completion from an
			// earlier expired lease) or re-granted while this lease aged
			// out. Nothing to requeue.
			continue
		}
		c.cfg.Metrics.Expiries.Inc()
		c.emit(telemetry.Event{Type: telemetry.EventFleetLeaseExpire,
			Benchmark: li.cell.key.Prog, Level: li.cell.key.Level.String(), Category: li.cell.key.Category.String(),
			Worker: li.worker, Lease: id, Retries: li.cell.grants - 1})
		c.requeueLocked(li.cell, now,
			"lease expiry", fmt.Sprintf("worker %s silent past lease deadline", li.worker))
	}
	c.cfg.Metrics.ActiveLeases.Set(int64(len(c.leases)))
	live := 0
	for name, seen := range c.workers {
		if now.Sub(seen) <= c.cfg.LivenessWindow {
			live++
		} else {
			delete(c.workers, name)
		}
	}
	c.cfg.Metrics.WorkersLive.Set(int64(live))
}

// complete resolves (or requeues) a cell from one completion report.
func (c *Coordinator) complete(req CompleteRequest, now time.Time) (CompleteResponse, error) {
	level, err := fault.ParseLevel(req.Level)
	if err != nil {
		return CompleteResponse{}, err
	}
	cat, err := fault.ParseCategory(req.Category)
	if err != nil {
		return CompleteResponse{}, err
	}
	key := core.CellKey{Prog: req.Benchmark, Level: level, Category: cat}

	c.mu.Lock()
	defer c.mu.Unlock()
	c.noteWorker(req.Worker, now)
	cs, ok := c.byKey[key]
	if !ok {
		return CompleteResponse{}, fmt.Errorf("cell %s/%s/%s is not part of this study", req.Benchmark, req.Level, req.Category)
	}
	// The lease may be gone (expired and swept) — the completion is still
	// good: determinism means any execution of the cell produced the
	// records the study needs.
	if li, live := c.leases[req.Lease]; live && li.cell == cs {
		delete(c.leases, req.Lease)
		c.cfg.Metrics.ActiveLeases.Set(int64(len(c.leases)))
	}
	if cs.status == cellDone || cs.status == cellSkipped || cs.status == cellDegraded {
		c.cfg.Metrics.Duplicates.Inc()
		c.emit(telemetry.Event{Type: telemetry.EventFleetDuplicate,
			Benchmark: key.Prog, Level: req.Level, Category: req.Category,
			Worker: req.Worker, Lease: req.Lease})
		c.logf("fleet: duplicate completion for %s/%s/%s from %s dropped (cell already resolved)",
			key.Prog, req.Level, req.Category, req.Worker)
		return CompleteResponse{OK: true, Duplicate: true}, nil
	}

	// dropCellLease removes any other live lease on this cell (a re-grant
	// that raced this completion) so the sweep never expires a lease onto
	// a resolved cell.
	dropCellLease := func() {
		if cs.status == cellLeased && cs.lease != 0 && cs.lease != req.Lease {
			if li, live := c.leases[cs.lease]; live && li.cell == cs {
				delete(c.leases, cs.lease)
				c.cfg.Metrics.ActiveLeases.Set(int64(len(c.leases)))
			}
		}
	}

	switch {
	case req.Failure != "":
		if cs.status != cellLeased || cs.lease != req.Lease {
			// Stale failure from a lease the sweep already expired and
			// requeued (or whose cell another worker resolved meanwhile):
			// the requeue bookkeeping already happened.
			return CompleteResponse{OK: true}, nil
		}
		c.requeueLocked(cs, now, "worker failure", fmt.Sprintf("worker %s: %s", req.Worker, req.Failure))
		return CompleteResponse{OK: true}, nil
	case req.Result != nil:
		r := req.Result
		if c.cfg.Adaptive != nil && r.Target != cs.target {
			// A stale round-1 completion racing the reallocation plan: the
			// cell was reopened with a raised target, so this result is for
			// work the plan superseded. Drop it like any duplicate —
			// determinism makes the extension's round-1 prefix identical.
			c.cfg.Metrics.Duplicates.Inc()
			c.emit(telemetry.Event{Type: telemetry.EventFleetDuplicate,
				Benchmark: key.Prog, Level: req.Level, Category: req.Category,
				Worker: req.Worker, Lease: req.Lease})
			c.logf("fleet: completion for %s/%s/%s at superseded target %d dropped (cell now targets %d)",
				key.Prog, req.Level, req.Category, r.Target, cs.target)
			return CompleteResponse{OK: true, Duplicate: true}, nil
		}
		dropCellLease()
		res := &core.CellResult{
			Prog: key.Prog, Level: key.Level, Category: key.Category,
			Benign: r.Benign, SDC: r.SDC, Crash: r.Crash, Hang: r.Hang,
			NotActivated: r.NotActivated, Attempts: r.Attempts,
			SimFaults: r.SimFaults, DynCandidates: r.DynCandidates,
		}
		res.Adaptive.Target, res.Adaptive.Converged = r.Target, r.Converged
		if r.Round1 != nil {
			res.Adaptive.Extended = true
			res.Adaptive.Round1 = core.AdaptiveCounts{
				Benign: r.Round1.Benign, SDC: r.Round1.SDC, Crash: r.Round1.Crash,
				Hang: r.Round1.Hang, NotActivated: r.Round1.NotActivated,
				Attempts: r.Round1.Attempts, SimFaults: r.Round1.SimFaults,
			}
		}
		// Durability first: a failed checkpoint append fails the lease
		// (satellite of the fail-stop writer), the sticky writer is
		// detached, and the cell is requeued to be re-resolved — next
		// time in memory only.
		if c.cfg.Checkpoint != nil {
			if err := c.cfg.Checkpoint.Cell(key, res); err != nil {
				c.detachCheckpointLocked(err)
				c.requeueLocked(cs, now, "checkpoint failure", err.Error())
				return CompleteResponse{OK: false}, nil
			}
		}
		cs.result, cs.status, cs.lease, cs.prior = res, cellDone, 0, nil
		if c.cfg.Warehouse != nil {
			// Store back at this resolution's exact identity: (target, base)
			// for an extension, (N, N) otherwise — the same key the local
			// study path derives, so caches interoperate across both modes.
			c.cfg.Warehouse.StoreCell(key, cs.target, c.cfg.N, res)
		}
		c.finishCellSpanLocked(cs, "done")
		c.cfg.Metrics.CellsDone.Inc()
		c.resolveLocked()
		return CompleteResponse{OK: true}, nil
	case req.Skip != nil:
		dropCellLease()
		skip := core.CheckpointSkip{Kind: req.Skip.Kind, Err: req.Skip.Err}
		if c.cfg.Checkpoint != nil {
			if err := c.appendSkipLocked(key, skip); err != nil {
				c.detachCheckpointLocked(err)
				c.requeueLocked(cs, now, "checkpoint failure", err.Error())
				return CompleteResponse{OK: false}, nil
			}
		}
		cs.skip, cs.status, cs.lease = &skip, cellSkipped, 0
		if c.cfg.Warehouse != nil {
			// StoreSkip keeps only deterministic kinds (no-candidates,
			// not-activated); deadline and fleet-failed skips are run
			// conditions, not properties of the cell, and are never cached.
			c.cfg.Warehouse.StoreSkip(key, cs.target, c.cfg.N, skip)
		}
		c.finishCellSpanLocked(cs, "skipped")
		c.cfg.Metrics.CellsSkipped.Inc()
		c.resolveLocked()
		return CompleteResponse{OK: true}, nil
	default:
		return CompleteResponse{}, fmt.Errorf("completion carries neither result, skip, nor failure")
	}
}

// appendSkipLocked writes one worker-reported skip record with its
// original kind preserved (mutex held).
func (c *Coordinator) appendSkipLocked(key core.CellKey, skip core.CheckpointSkip) error {
	return c.cfg.Checkpoint.Skip(key, &skipError{kind: skip.Kind, msg: skip.Err})
}

// skipError carries a worker-classified skip across the wire into
// CheckpointWriter.Skip, which re-derives the kind via SkipKindOf.
type skipError struct {
	kind string
	msg  string
}

func (e *skipError) Error() string { return e.msg }

// Unwrap maps the wire kind back onto the sentinel the checkpoint
// writer classifies with.
func (e *skipError) Unwrap() error {
	switch e.kind {
	case core.SkipNoCandidates:
		return core.ErrNoCandidates
	case core.SkipNotActivated:
		return core.ErrNotActivated
	case core.SkipDeadline:
		return core.ErrDeadline
	default:
		return nil
	}
}

// State assembles the resolved cells into the same CheckpointState a
// checkpoint load or shard merge produces; the study render path
// resumes from it without re-running any campaign.
func (c *Coordinator) State() *core.CheckpointState {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := &core.CheckpointState{
		N:     c.cfg.N,
		Seed:  c.cfg.Seed,
		Cells: make(map[core.CellKey]*core.CellResult),
		Skips: make(map[core.CellKey]core.CheckpointSkip),
	}
	for _, cs := range c.cells {
		switch {
		case cs.result != nil:
			st.Cells[cs.key] = cs.result
		case cs.skip != nil:
			st.Skips[cs.key] = *cs.skip
		}
	}
	return st
}

// CheckpointIntact reports whether the durable checkpoint is still
// attached (no write failure detached it).
func (c *Coordinator) CheckpointIntact() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return !c.ckptLost && c.cfg.Checkpoint != nil
}

// Status is the /statusz payload: the fleet dashboard.
func (c *Coordinator) Status() any {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := time.Now()
	type leaseView struct {
		Lease     uint64  `json:"lease"`
		Worker    string  `json:"worker"`
		Benchmark string  `json:"benchmark"`
		Level     string  `json:"level"`
		Category  string  `json:"category"`
		Grant     int     `json:"grant"`
		ExpiresIn float64 `json:"expiresInSec"`
	}
	type workerView struct {
		Name     string  `json:"name"`
		LastSeen float64 `json:"lastSeenSecAgo"`
		Leases   int     `json:"activeLeases"`
	}
	var leases []leaseView
	perWorker := make(map[string]int)
	for id, li := range c.leases {
		leases = append(leases, leaseView{
			Lease: id, Worker: li.worker,
			Benchmark: li.cell.key.Prog, Level: li.cell.key.Level.String(),
			Category:  li.cell.key.Category.String(),
			Grant:     li.cell.grants,
			ExpiresIn: li.deadline.Sub(now).Seconds(),
		})
		perWorker[li.worker]++
	}
	sort.Slice(leases, func(i, j int) bool { return leases[i].Lease < leases[j].Lease })
	var workers []workerView
	for name, seen := range c.workers {
		workers = append(workers, workerView{Name: name,
			LastSeen: now.Sub(seen).Seconds(), Leases: perWorker[name]})
	}
	sort.Slice(workers, func(i, j int) bool { return workers[i].Name < workers[j].Name })

	counts := map[string]int{}
	for _, cs := range c.cells {
		switch cs.status {
		case cellPending:
			counts["pending"]++
		case cellLeased:
			counts["leased"]++
		case cellDone:
			counts["done"]++
		case cellSkipped:
			counts["skipped"]++
		case cellDegraded:
			counts["degraded"]++
		}
	}
	return map[string]any{
		"study": map[string]any{
			"n": c.cfg.N, "seed": c.cfg.Seed,
			"cells": len(c.cells), "resolved": c.resolved,
		},
		"cells":    counts,
		"leases":   leases,
		"workers":  workers,
		"draining": c.draining,
	}
}

// Handler builds the coordinator's HTTP mux: the fleet protocol
// endpoints, with extra (e.g. the internal/obs mux) mountable by the
// caller on the same server.
func (c *Coordinator) Handler() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/lease", func(w http.ResponseWriter, r *http.Request) {
		var req LeaseRequest
		if !decodeJSON(w, r, &req) {
			return
		}
		now := time.Now()
		c.mu.Lock()
		c.noteWorker(req.Worker, now)
		var resp LeaseResponse
		switch {
		case c.draining || c.resolved == len(c.cells):
			resp = LeaseResponse{Status: StatusDone}
		default:
			if lease := c.grantLocked(req.Worker, now); lease != nil {
				resp = LeaseResponse{Status: StatusLease, Lease: lease}
			} else {
				resp = LeaseResponse{Status: StatusWait, RetryAfterMS: c.cfg.RetryAfter.Milliseconds()}
			}
		}
		c.mu.Unlock()
		if resp.Status == StatusLease {
			c.cfg.Metrics.LeaseFor(req.Worker).Inc()
		}
		writeJSON(w, resp)
	})
	mux.HandleFunc("/heartbeat", func(w http.ResponseWriter, r *http.Request) {
		var req HeartbeatRequest
		if !decodeJSON(w, r, &req) {
			return
		}
		now := time.Now()
		c.mu.Lock()
		c.noteWorker(req.Worker, now)
		li, ok := c.leases[req.Lease]
		if ok {
			li.deadline = now.Add(c.cfg.LeaseTTL)
			c.cfg.Metrics.Heartbeats.Inc()
		}
		c.mu.Unlock()
		// Observability piggybacks land outside the lease mutex: span
		// batches and metrics snapshots touch only their own locks.
		c.cfg.Trace.Ingest(req.Spans)
		c.cfg.Metrics.ApplySnapshot(req.Worker, req.Metrics)
		if ok {
			c.cfg.Metrics.HeartbeatFor(req.Worker).Inc()
		}
		writeJSON(w, HeartbeatResponse{OK: ok})
	})
	mux.HandleFunc("/complete", func(w http.ResponseWriter, r *http.Request) {
		var req CompleteRequest
		if !decodeJSON(w, r, &req) {
			return
		}
		c.cfg.Trace.Ingest(req.Spans)
		c.cfg.Metrics.ApplySnapshot(req.Worker, req.Metrics)
		resp, err := c.complete(req, time.Now())
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		writeJSON(w, resp)
	})
	mux.HandleFunc("/drain", func(w http.ResponseWriter, r *http.Request) {
		unresolved := c.Drain()
		c.logf("fleet: draining (%d cells unresolved); no further leases will be granted", unresolved)
		writeJSON(w, DrainResponse{OK: true, Unresolved: unresolved})
	})
	mux.HandleFunc("/warehouse", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		if c.cfg.Warehouse == nil {
			http.Error(w, "no warehouse configured (start the coordinator with -warehouse)", http.StatusNotFound)
			return
		}
		// Snapshot the cell identities under the mutex, probe the store
		// outside it — probes touch the disk and must not stall the lease
		// protocol.
		type probeSpec struct {
			key    core.CellKey
			target int
		}
		c.mu.Lock()
		specs := make([]probeSpec, 0, len(c.cells))
		for _, cs := range c.cells {
			specs = append(specs, probeSpec{key: cs.key, target: cs.target})
		}
		c.mu.Unlock()
		type cellView struct {
			Benchmark string `json:"benchmark"`
			Level     string `json:"level"`
			Category  string `json:"category"`
			Target    int    `json:"target"`
			Key       string `json:"key,omitempty"`
			Status    string `json:"status"`
		}
		out := struct {
			Dir    string         `json:"dir"`
			Cells  []cellView     `json:"cells"`
			Counts map[string]int `json:"counts"`
		}{Dir: c.cfg.Warehouse.Store().Dir(), Counts: map[string]int{}}
		for _, s := range specs {
			kh, _ := c.cfg.Warehouse.KeyHex(s.key, s.target, c.cfg.N)
			status := c.cfg.Warehouse.Probe(s.key, s.target, c.cfg.N)
			out.Cells = append(out.Cells, cellView{
				Benchmark: s.key.Prog, Level: s.key.Level.String(), Category: s.key.Category.String(),
				Target: s.target, Key: kh, Status: status,
			})
			out.Counts[status]++
		}
		writeJSON(w, out)
	})
	return mux
}

func decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return false
	}
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(v); err != nil {
		http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	_ = json.NewEncoder(w).Encode(v)
}

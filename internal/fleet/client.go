package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"time"
)

// Client is the worker side's resilient coordinator client: every call
// retries transient failures (connection errors, 5xx responses) with
// exponential backoff and jitter, so a coordinator restart or a brief
// network partition stalls a worker instead of killing it. Permanent
// failures (4xx responses, a cancelled context, retry budget exhausted)
// surface as errors.
type Client struct {
	// Base is the coordinator URL ("http://127.0.0.1:8080").
	Base string
	// HTTP is the transport; a default with sane timeouts is used when
	// nil.
	HTTP *http.Client
	// Attempts bounds retries per call (default 8).
	Attempts int
	// Backoff is the initial retry delay (default 100ms), doubled per
	// attempt up to BackoffCap (default 3s), with jitter on top so a
	// fleet of workers reconnecting after a coordinator restart does not
	// stampede in lockstep.
	Backoff    time.Duration
	BackoffCap time.Duration
	// JitterSeed seeds the jitter stream (0: a fixed default). Jitter
	// only shapes retry timing — never results — so a deterministic
	// stream keeps smoke runs reproducible without weakening the
	// de-synchronization it exists for.
	JitterSeed int64
	// Logf, when non-nil, receives retry diagnostics.
	Logf func(format string, args ...any)

	once sync.Once
	mu   sync.Mutex
	rng  *rand.Rand
}

func (c *Client) init() {
	c.once.Do(func() {
		if c.HTTP == nil {
			c.HTTP = &http.Client{Timeout: 30 * time.Second}
		}
		if c.Attempts <= 0 {
			c.Attempts = 8
		}
		if c.Backoff <= 0 {
			c.Backoff = 100 * time.Millisecond
		}
		if c.BackoffCap <= 0 {
			c.BackoffCap = 3 * time.Second
		}
		seed := c.JitterSeed
		if seed == 0 {
			seed = 1
		}
		c.rng = rand.New(rand.NewSource(seed))
	})
}

// transientError marks a failed attempt worth retrying.
type transientError struct{ err error }

func (e *transientError) Error() string { return e.err.Error() }
func (e *transientError) Unwrap() error { return e.err }

// Jitter spreads a base delay over [base/2, base): enough spread to
// de-synchronize a reconnecting fleet, never more than the base.
func (c *Client) jitter(d time.Duration) time.Duration {
	if d <= 1 {
		return d
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return d/2 + time.Duration(c.rng.Int63n(int64(d/2)))
}

// post sends one JSON request with retry/backoff and decodes the JSON
// response into out.
func (c *Client) post(ctx context.Context, path string, in, out any) error {
	c.init()
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	delay := c.Backoff
	var last error
	for attempt := 1; attempt <= c.Attempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		last = c.postOnce(ctx, path, body, out)
		if last == nil {
			return nil
		}
		var tr *transientError
		if !errors.As(last, &tr) {
			return last
		}
		if attempt == c.Attempts {
			break
		}
		wait := c.jitter(delay)
		if c.Logf != nil {
			c.Logf("fleet client: %s attempt %d/%d failed (%v); retrying in %v",
				path, attempt, c.Attempts, last, wait)
		}
		select {
		case <-time.After(wait):
		case <-ctx.Done():
			return ctx.Err()
		}
		if delay *= 2; delay > c.BackoffCap {
			delay = c.BackoffCap
		}
	}
	return fmt.Errorf("fleet client: %s failed after %d attempts: %w", path, c.Attempts, last)
}

func (c *Client) postOnce(ctx context.Context, path string, body []byte, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.Base+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return &transientError{err}
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return &transientError{err}
	}
	if resp.StatusCode >= 500 {
		return &transientError{fmt.Errorf("%s: %s", resp.Status, bytes.TrimSpace(data))}
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s", resp.Status, bytes.TrimSpace(data))
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(data, out); err != nil {
		return fmt.Errorf("%s: bad response body: %w", path, err)
	}
	return nil
}

// Lease requests one cell lease.
func (c *Client) Lease(ctx context.Context, worker string) (*LeaseResponse, error) {
	var resp LeaseResponse
	if err := c.post(ctx, "/lease", LeaseRequest{Worker: worker}, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Heartbeat extends a lease (the request may piggyback span batches
// and a metrics snapshot); ok=false means the lease is no longer live.
func (c *Client) Heartbeat(ctx context.Context, req HeartbeatRequest) (bool, error) {
	var resp HeartbeatResponse
	if err := c.post(ctx, "/heartbeat", req, &resp); err != nil {
		return false, err
	}
	return resp.OK, nil
}

// Complete reports a cell outcome.
func (c *Client) Complete(ctx context.Context, req CompleteRequest) (*CompleteResponse, error) {
	var resp CompleteResponse
	if err := c.post(ctx, "/complete", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Drain asks the coordinator to stop granting leases.
func (c *Client) Drain(ctx context.Context) (*DrainResponse, error) {
	var resp DrainResponse
	if err := c.post(ctx, "/drain", struct{}{}, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

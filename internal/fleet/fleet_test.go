package fleet

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"hlfi/internal/bench"
	"hlfi/internal/cli"
	"hlfi/internal/core"
	"hlfi/internal/fault"
	"hlfi/internal/telemetry"
)

// testProgram builds the cheapest benchmark once for the whole package.
var (
	progOnce sync.Once
	progVal  *core.Program
	progErr  error
)

func testProgram(t *testing.T) *core.Program {
	t.Helper()
	progOnce.Do(func() { progVal, progErr = bench.Build("quantumm") })
	if progErr != nil {
		t.Fatalf("build quantumm: %v", progErr)
	}
	return progVal
}

// churnyConfig is a coordinator config tuned for tests: short lease
// TTL and sweep so expiry/retry churn happens in milliseconds.
func churnyConfig(t *testing.T, prog *core.Program) Config {
	t.Helper()
	return Config{
		Programs:      []*core.Program{prog},
		N:             8,
		Seed:          1,
		Metrics:       NewMetrics(),
		LeaseTTL:      300 * time.Millisecond,
		SweepInterval: 20 * time.Millisecond,
		Backoff:       10 * time.Millisecond,
		BackoffCap:    50 * time.Millisecond,
		RetryAfter:    20 * time.Millisecond,
		Logf:          t.Logf,
	}
}

// renderAll renders the full report set for a study the way ficompare
// and fiserve do.
func renderAll(st *core.Study) string {
	var buf bytes.Buffer
	cli.RenderExperiment(&buf, st, "all")
	return buf.String()
}

// TestFleetLeaseRequeueDeterminism is the differential oracle of the
// fleet path: three workers, one killed mid-cell (its lease expires and
// the cell is retried by a surviving worker), and the rendered report
// must be byte-identical to the single-process run — sequential AND
// parallel — with the merged state routed through the durable
// checkpoint's typed validation.
func TestFleetLeaseRequeueDeterminism(t *testing.T) {
	prog := testProgram(t)

	// Single-process goldens: the sequential study and a parallel one
	// must already agree; the fleet must match both.
	goldenSt, err := core.RunStudy(core.StudyConfig{Programs: []*core.Program{prog}, N: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	golden := renderAll(goldenSt)
	parSt, err := core.RunStudy(core.StudyConfig{Programs: []*core.Program{prog}, N: 8, Seed: 1, Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if par := renderAll(parSt); par != golden {
		t.Fatalf("parallel single-process run differs from sequential:\n--- seq ---\n%s\n--- par ---\n%s", golden, par)
	}

	// Coordinator with a durable checkpoint: the render below must load
	// it back through the typed checkpoint validation.
	ckpt := filepath.Join(t.TempDir(), "fleet.jsonl")
	shape := core.CheckpointShape{N: 8, Seed: 1, Replay: "off", Compiled: "on"}
	writer, err := core.NewCheckpointWriterShape(ckpt, shape)
	if err != nil {
		t.Fatal(err)
	}
	cfg := churnyConfig(t, prog)
	cfg.Checkpoint = writer
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Stop()
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	client := func(seed int64) *Client {
		return &Client{Base: srv.URL, JitterSeed: seed, Logf: t.Logf}
	}

	// Worker w3 dies mid-cell: it takes one lease, then vanishes without
	// heartbeating or completing. The coordinator must expire that lease
	// and a surviving worker must re-execute the cell.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		err := RunWorker(context.Background(), WorkerConfig{
			Name: "w3", Client: client(3), Logf: t.Logf,
			BuildProgram:    func(string) (*core.Program, error) { return prog, nil },
			testAcquireHook: func(*Lease) bool { return false },
		})
		if err != nil {
			t.Errorf("w3: %v", err)
		}
	}()
	wg.Wait() // w3 is dead (holding one granted lease) before the survivors start

	for _, name := range []string{"w1", "w2"} {
		name := name
		wg.Add(1)
		go func() {
			defer wg.Done()
			err := RunWorker(context.Background(), WorkerConfig{
				Name: name, Client: client(int64(len(name))), Logf: t.Logf,
				BuildProgram: func(string) (*core.Program, error) { return prog, nil },
			})
			if err != nil {
				t.Errorf("%s: %v", name, err)
			}
		}()
	}

	select {
	case <-c.Done():
	case <-time.After(120 * time.Second):
		t.Fatalf("fleet did not converge; status: %+v", c.Status())
	}
	wg.Wait()

	// The churn must have actually happened: at least one expiry and one
	// requeue, and no cell degraded (the retry succeeded).
	m := cfg.Metrics
	if m.Expiries.Value() < 1 {
		t.Errorf("lease expiries = %d, want >= 1 (w3's abandoned lease)", m.Expiries.Value())
	}
	if m.Retries.Value() < 1 {
		t.Errorf("retries = %d, want >= 1", m.Retries.Value())
	}
	if m.CellsDegraded.Value() != 0 {
		t.Errorf("cells degraded = %d, want 0", m.CellsDegraded.Value())
	}
	if !c.CheckpointIntact() {
		t.Fatal("checkpoint writer was detached")
	}
	if err := writer.Close(); err != nil {
		t.Fatal(err)
	}

	// Merged state through the existing typed checkpoint validation: the
	// durable file and the in-memory state must agree exactly.
	loaded, err := core.LoadCheckpointShape(ckpt, shape)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := loaded.Cells, c.State().Cells; !reflect.DeepEqual(got, want) {
		t.Errorf("checkpoint cells differ from in-memory state:\nfile: %+v\nmem:  %+v", got, want)
	}
	if got, want := loaded.Skips, c.State().Skips; !reflect.DeepEqual(got, want) {
		t.Errorf("checkpoint skips differ from in-memory state:\nfile: %+v\nmem:  %+v", got, want)
	}

	// Render from the loaded checkpoint: no campaign re-runs, and the
	// report is byte-identical to both single-process goldens.
	fleetSt, err := core.RunStudy(core.StudyConfig{
		Programs: []*core.Program{prog}, N: 8, Seed: 1, Resume: loaded,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := renderAll(fleetSt); got != golden {
		t.Errorf("fleet report differs from single-process golden:\n--- golden ---\n%s\n--- fleet ---\n%s", golden, got)
	}
	// Every cell must have been restored, not re-run: the resumed study
	// and the coordinator agree cell by cell.
	for key, res := range goldenSt.Cells {
		if !reflect.DeepEqual(fleetSt.Cells[key], res) {
			t.Errorf("cell %v: fleet %+v, golden %+v", key, fleetSt.Cells[key], res)
		}
	}
}

// TestFleetDuplicateCompletion: two workers complete the same cell (one
// from an expired lease); the second completion is deduped, the first
// wins, and the cell's stored result is untouched.
func TestFleetDuplicateCompletion(t *testing.T) {
	prog := testProgram(t)
	cfg := churnyConfig(t, prog)
	cfg.Categories = []fault.Category{fault.CatAll}
	events := telemetry.NewAggregator()
	cfg.Events = events
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// No sweeper: this test drives completions directly.
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()
	cl := &Client{Base: srv.URL, Logf: t.Logf}
	ctx := context.Background()

	lease1, err := cl.Lease(ctx, "a")
	if err != nil || lease1.Status != StatusLease {
		t.Fatalf("lease1 = %+v, %v", lease1, err)
	}
	req := CompleteRequest{
		Worker: "a", Lease: lease1.Lease.ID,
		Benchmark: lease1.Lease.Benchmark, Level: lease1.Lease.Level, Category: lease1.Lease.Category,
		Result: &Result{Benign: 3, SDC: 2, Crash: 2, Hang: 1, Attempts: 8, DynCandidates: 42},
	}
	resp, err := cl.Complete(ctx, req)
	if err != nil || !resp.OK || resp.Duplicate {
		t.Fatalf("first completion = %+v, %v", resp, err)
	}

	// Worker b reports the same cell from a stale lease ID.
	dup := req
	dup.Worker, dup.Lease = "b", 9999
	dup.Result = &Result{Benign: 999} // would corrupt the study if accepted
	resp, err = cl.Complete(ctx, dup)
	if err != nil || !resp.OK || !resp.Duplicate {
		t.Fatalf("duplicate completion = %+v, %v (want OK+Duplicate)", resp, err)
	}
	if got := cfg.Metrics.Duplicates.Value(); got != 1 {
		t.Errorf("duplicates counter = %d, want 1", got)
	}

	key := core.CellKey{Prog: prog.Name, Level: fault.LevelIR, Category: fault.CatAll}
	if res := c.State().Cells[key]; res == nil || res.Benign != 3 {
		t.Errorf("stored result = %+v, want the first completion (benign=3)", res)
	}
}

// TestFleetRetryBudgetDegrades: a cell whose every lease expires
// degrades to a typed fleet-failed skip instead of blocking the study.
func TestFleetRetryBudgetDegrades(t *testing.T) {
	prog := testProgram(t)
	cfg := churnyConfig(t, prog)
	cfg.Categories = []fault.Category{fault.CatAll} // 2 cells: IR + ASM
	cfg.LeaseTTL = 40 * time.Millisecond
	cfg.SweepInterval = 10 * time.Millisecond
	cfg.MaxRetries = 2
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Stop()
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()
	cl := &Client{Base: srv.URL, Logf: t.Logf}
	ctx := context.Background()

	// Lease greedily and always abandon: every lease expires.
	deadline := time.After(60 * time.Second)
	for {
		resp, err := cl.Lease(ctx, "ghost")
		if err != nil {
			t.Fatal(err)
		}
		if resp.Status == StatusDone {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("study did not degrade; status: %+v", c.Status())
		case <-time.After(10 * time.Millisecond):
		}
	}
	<-c.Done()

	if got := cfg.Metrics.CellsDegraded.Value(); got != 2 {
		t.Errorf("cells degraded = %d, want 2", got)
	}
	st := c.State()
	if len(st.Skips) != 2 {
		t.Fatalf("skips = %+v, want 2 fleet-failed records", st.Skips)
	}
	for key, skip := range st.Skips {
		if skip.Kind != core.SkipFleet {
			t.Errorf("cell %v skip kind = %q, want %q", key, skip.Kind, core.SkipFleet)
		}
	}
	// Each cell burned its full budget: 1 + MaxRetries grants.
	if got, want := cfg.Metrics.Leases.Value(), uint64(2*(1+cfg.MaxRetries)); got != want {
		t.Errorf("leases = %d, want %d", got, want)
	}
}

// TestFleetCheckpointFailureRequeues: a checkpoint append failure fails
// the lease (the completion is not accepted), detaches the sticky
// writer, and the requeued cell re-resolves in memory.
func TestFleetCheckpointFailureRequeues(t *testing.T) {
	prog := testProgram(t)
	ckpt := filepath.Join(t.TempDir(), "broken.jsonl")
	writer, err := core.NewCheckpointWriterShape(ckpt, core.CheckpointShape{N: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Close the underlying file: the header is durable, but the next
	// append fails like a dying disk would.
	if err := writer.Close(); err != nil {
		t.Fatal(err)
	}

	cfg := churnyConfig(t, prog)
	cfg.Categories = []fault.Category{fault.CatAll}
	cfg.Checkpoint = writer
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()
	cl := &Client{Base: srv.URL, Logf: t.Logf}
	ctx := context.Background()

	lease1, err := cl.Lease(ctx, "a")
	if err != nil || lease1.Status != StatusLease {
		t.Fatalf("lease = %+v, %v", lease1, err)
	}
	req := CompleteRequest{
		Worker: "a", Lease: lease1.Lease.ID,
		Benchmark: lease1.Lease.Benchmark, Level: lease1.Lease.Level, Category: lease1.Lease.Category,
		Result: &Result{Benign: 8, Attempts: 8},
	}
	resp, err := cl.Complete(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.OK {
		t.Fatal("completion accepted despite checkpoint write failure")
	}
	if c.CheckpointIntact() {
		t.Fatal("failed checkpoint writer still attached")
	}
	if got := cfg.Metrics.Retries.Value(); got != 1 {
		t.Errorf("retries = %d, want 1 (checkpoint failure requeues the cell)", got)
	}

	// The failed cell comes back (after backoff) and now resolves in
	// memory. The queue may hand out the study's other cell first;
	// complete those inline until the requeued one reappears.
	var lease2 *LeaseResponse
	for i := 0; i < 200; i++ {
		lease2, err = cl.Lease(ctx, "a")
		if err != nil {
			t.Fatal(err)
		}
		if lease2.Status == StatusLease && lease2.Lease.Level == req.Level {
			break
		}
		if lease2.Status == StatusLease {
			other := CompleteRequest{
				Worker: "a", Lease: lease2.Lease.ID,
				Benchmark: lease2.Lease.Benchmark, Level: lease2.Lease.Level, Category: lease2.Lease.Category,
				Result: &Result{Benign: 8, Attempts: 8},
			}
			if oresp, oerr := cl.Complete(ctx, other); oerr != nil || !oresp.OK {
				t.Fatalf("other cell completion = %+v, %v", oresp, oerr)
			}
			continue
		}
		time.Sleep(10 * time.Millisecond)
	}
	if lease2.Status != StatusLease || lease2.Lease.Level != req.Level {
		t.Fatalf("requeued cell never re-leased: %+v", lease2)
	}
	if lease2.Lease.Seed != lease1.Lease.Seed {
		t.Errorf("retry seed %d != original seed %d: retries must replay the identical stream",
			lease2.Lease.Seed, lease1.Lease.Seed)
	}
	req.Lease = lease2.Lease.ID
	resp, err = cl.Complete(ctx, req)
	if err != nil || !resp.OK {
		t.Fatalf("in-memory completion = %+v, %v", resp, err)
	}
	key := core.CellKey{Prog: prog.Name, Level: fault.LevelIR, Category: fault.CatAll}
	if res := c.State().Cells[key]; res == nil || res.Benign != 8 {
		t.Errorf("cell not resolved in memory after checkpoint detach: %+v", res)
	}
}

// TestClientRetriesTransient: the worker client retries 5xx and
// connection failures with backoff, and fails fast on 4xx.
func TestClientRetriesTransient(t *testing.T) {
	var calls int
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls++
		if calls < 3 {
			http.Error(w, "not yet", http.StatusServiceUnavailable)
			return
		}
		writeJSON(w, LeaseResponse{Status: StatusDone})
	}))
	defer srv.Close()

	cl := &Client{Base: srv.URL, Backoff: time.Millisecond, BackoffCap: 5 * time.Millisecond, Logf: t.Logf}
	resp, err := cl.Lease(context.Background(), "w")
	if err != nil {
		t.Fatalf("lease after transient failures: %v", err)
	}
	if resp.Status != StatusDone || calls != 3 {
		t.Errorf("status=%q calls=%d, want done after exactly 3 calls", resp.Status, calls)
	}

	// 4xx is permanent: no retry loop.
	calls = 0
	srv2 := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls++
		http.Error(w, "bad cell", http.StatusBadRequest)
	}))
	defer srv2.Close()
	cl2 := &Client{Base: srv2.URL, Backoff: time.Millisecond, Logf: t.Logf}
	if _, err := cl2.Lease(context.Background(), "w"); err == nil {
		t.Fatal("4xx did not surface as an error")
	}
	if calls != 1 {
		t.Errorf("4xx retried %d times, want fail-fast single call", calls)
	}
}

// TestFleetDrain: draining stops lease grants; workers observe done.
func TestFleetDrain(t *testing.T) {
	prog := testProgram(t)
	cfg := churnyConfig(t, prog)
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()
	cl := &Client{Base: srv.URL, Logf: t.Logf}
	ctx := context.Background()

	dr, err := cl.Drain(ctx)
	if err != nil || !dr.OK {
		t.Fatalf("drain = %+v, %v", dr, err)
	}
	if dr.Unresolved != 10 { // quantumm: 2 levels x 5 categories
		t.Errorf("unresolved = %d, want 10", dr.Unresolved)
	}
	resp, err := cl.Lease(ctx, "w")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != StatusDone {
		t.Errorf("lease after drain = %q, want %q", resp.Status, StatusDone)
	}
}

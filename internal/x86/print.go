package x86

import (
	"fmt"
	"strings"
)

// String renders the operand in AT&T-free Intel-ish syntax.
func (o Operand) String() string {
	switch o.Kind {
	case OpNone:
		return ""
	case OpReg:
		return o.Reg.String()
	case OpXmm:
		return o.Xmm.String()
	case OpImm:
		return fmt.Sprintf("$%d", o.Imm)
	case OpLabel:
		return fmt.Sprintf("L%d", o.Label)
	case OpMem:
		var sb strings.Builder
		sb.WriteString("[")
		parts := make([]string, 0, 3)
		if o.Base != RegNone {
			parts = append(parts, o.Base.String())
		}
		if o.Index != RegNone {
			parts = append(parts, fmt.Sprintf("%s*%d", o.Index, o.Scale))
		}
		if o.Disp != 0 || len(parts) == 0 {
			parts = append(parts, fmt.Sprintf("0x%x", uint64(o.Disp)))
		}
		sb.WriteString(strings.Join(parts, "+"))
		sb.WriteString("]")
		return sb.String()
	}
	return "?"
}

// String renders one instruction.
func (in Instr) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-10s", in.Op)
	if in.Dst.Kind != OpNone {
		sb.WriteString(" ")
		sb.WriteString(in.Dst.String())
	}
	if in.Src.Kind != OpNone {
		sb.WriteString(", ")
		sb.WriteString(in.Src.String())
	}
	if in.Builtin != "" {
		fmt.Fprintf(&sb, " @%s", in.Builtin)
	}
	if in.Size != 0 && in.Size != 8 {
		fmt.Fprintf(&sb, "  ; size=%d", in.Size)
	}
	return sb.String()
}

// Disassemble renders the whole program with function labels and indices.
func (p *Program) Disassemble() string {
	var sb strings.Builder
	for i, in := range p.Instrs {
		if in.Fn != "" {
			fmt.Fprintf(&sb, "\n%s:\n", in.Fn)
		}
		fmt.Fprintf(&sb, "  %4d: %s", i, in.String())
		if in.Comment != "" {
			fmt.Fprintf(&sb, "   ; %s", in.Comment)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

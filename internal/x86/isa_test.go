package x86

import (
	"strings"
	"testing"
)

func TestOpcodeClassification(t *testing.T) {
	arith := []Opcode{ADD, SUB, IMUL, NEG, AND, OR, XOR, SHL, SHR, SAR, CQO, IDIV,
		ADDSD, SUBSD, MULSD, DIVSD, LEA}
	for _, op := range arith {
		if !op.IsArith() {
			t.Errorf("%s should be arithmetic", op)
		}
	}
	notArith := []Opcode{MOV, MOVZX, MOVSX, MOVSD, CMP, TEST, JMP, JE, PUSH, POP,
		CALL, RET, CVTSI2SD, CVTTSD2SI, SETE}
	for _, op := range notArith {
		if op.IsArith() {
			t.Errorf("%s should not be arithmetic", op)
		}
	}
	if !CVTSI2SD.IsConvert() || !CVTTSD2SI.IsConvert() || MOVZX.IsConvert() {
		t.Error("convert category must contain exactly the CVT instructions")
	}
	for _, op := range []Opcode{JE, JNE, JL, JLE, JG, JGE, JB, JBE, JA, JAE} {
		if !op.IsCondJump() {
			t.Errorf("%s is a conditional jump", op)
		}
	}
	if JMP.IsCondJump() {
		t.Error("JMP is unconditional")
	}
	if !CMP.IsFlagSetter() || !TEST.IsFlagSetter() || !UCOMISD.IsFlagSetter() || ADD.IsFlagSetter() {
		t.Error("flag setters are CMP/TEST/UCOMISD only in this ISA")
	}
}

func TestHasRegDest(t *testing.T) {
	cases := []struct {
		in   Instr
		want bool
	}{
		{Instr{Op: MOV, Dst: R(RAX), Src: Imm(1)}, true},
		{Instr{Op: MOV, Dst: Mem(RAX, RegNone, 1, 0), Src: R(RCX)}, false}, // store
		{Instr{Op: CMP, Dst: R(RAX), Src: Imm(1)}, false},                  // flags only
		{Instr{Op: PUSH, Dst: R(RAX)}, false},
		{Instr{Op: POP, Dst: R(RAX)}, true},
		{Instr{Op: JE, Dst: Label(3)}, false},
		{Instr{Op: CALL, Dst: Label(3)}, false},
		{Instr{Op: RET}, false},
		{Instr{Op: MOVSD, Dst: X(XMM1), Src: X(XMM2)}, true},
		{Instr{Op: MOVSD, Dst: Mem(RAX, RegNone, 1, 0), Src: X(XMM2)}, false},
		{Instr{Op: LEA, Dst: R(RCX), Src: Mem(RAX, RDX, 8, 4)}, true},
		{Instr{Op: SETE, Dst: R(RAX)}, true},
	}
	for _, c := range cases {
		if got := c.in.HasRegDest(); got != c.want {
			t.Errorf("HasRegDest(%s) = %v, want %v", c.in.String(), got, c.want)
		}
	}
}

func TestCalleeSaved(t *testing.T) {
	saved := []Reg{RBX, RBP, R12, R13, R14, R15}
	for _, r := range saved {
		if !r.IsCalleeSaved() {
			t.Errorf("%s is callee-saved", r)
		}
	}
	for _, r := range []Reg{RAX, RCX, RDX, RSI, RDI, R8, R9, R10, R11} {
		if r.IsCalleeSaved() {
			t.Errorf("%s is caller-saved", r)
		}
	}
}

func TestFlagBitPositions(t *testing.T) {
	// The paper's Figure 2(a) example calls OF "bit 11".
	if FlagOF != 1<<11 {
		t.Error("OF must be bit 11")
	}
	if FlagCF != 1<<0 || FlagZF != 1<<6 || FlagSF != 1<<7 || FlagPF != 1<<2 {
		t.Error("flag bit positions must match x86 encoding")
	}
}

func TestOperandPrinting(t *testing.T) {
	cases := map[string]Operand{
		"rax":                      R(RAX),
		"xmm4":                     X(XMM4),
		"$-7":                      Imm(-7),
		"[rbp+0xfffffffffffffff8]": Mem(RBP, RegNone, 1, -8),
		"[rax+rcx*4+0x10]":         Mem(RAX, RCX, 4, 16),
		"[0x100000]":               Abs(0x100000),
	}
	for want, op := range cases {
		if got := op.String(); got != want {
			t.Errorf("operand = %q, want %q", got, want)
		}
	}
}

func TestDisassembleLabelsFunctions(t *testing.T) {
	p := &Program{
		Instrs: []Instr{
			{Op: PUSH, Dst: R(RBP), Fn: "main"},
			{Op: MOV, Dst: R(RAX), Src: Imm(0), Size: 8},
			{Op: RET},
		},
		FuncAt: map[string]int{"main": 0},
	}
	dis := p.Disassemble()
	if !strings.Contains(dis, "main:") || !strings.Contains(dis, "push") {
		t.Errorf("disassembly:\n%s", dis)
	}
}

func TestArgRegOrders(t *testing.T) {
	if len(IntArgRegs) != 6 || IntArgRegs[0] != RDI || IntArgRegs[1] != RSI {
		t.Error("SysV integer argument order")
	}
	if len(FloatArgRegs) != 8 || FloatArgRegs[0] != XMM0 {
		t.Error("SysV float argument order")
	}
}

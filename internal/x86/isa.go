// Package x86 defines the synthetic x86-64-like instruction set targeted
// by the backend and executed by the machine simulator. It carries every
// architectural feature the DSN'14 study's assembly-level analysis relies
// on: 16 general-purpose registers, XMM registers for double-precision
// SSE arithmetic, an RFLAGS register with CF/PF/ZF/SF/OF set by compare
// instructions and read by conditional jumps, [base + index*scale + disp]
// addressing, and push/pop/call/ret stack discipline.
package x86

import "strconv"

// Reg is a general-purpose 64-bit register. RegNone marks "no register"
// in operands.
type Reg int

// General-purpose registers.
const (
	RegNone Reg = iota
	RAX
	RCX
	RDX
	RBX
	RSP
	RBP
	RSI
	RDI
	R8
	R9
	R10
	R11
	R12
	R13
	R14
	R15
	NumRegs
)

var regNames = [...]string{
	"none", "rax", "rcx", "rdx", "rbx", "rsp", "rbp", "rsi", "rdi",
	"r8", "r9", "r10", "r11", "r12", "r13", "r14", "r15",
}

func (r Reg) String() string {
	if r >= 0 && int(r) < len(regNames) {
		return regNames[r]
	}
	return "reg" + strconv.Itoa(int(r))
}

// IsCalleeSaved reports whether the SysV convention requires the callee to
// preserve r.
func (r Reg) IsCalleeSaved() bool {
	switch r {
	case RBX, RBP, R12, R13, R14, R15:
		return true
	default:
		return false
	}
}

// XReg is an XMM register (128 bits; double-precision ops use the low 64).
type XReg int

// XNone marks "no XMM register".
const (
	XNone XReg = iota
	XMM0
	XMM1
	XMM2
	XMM3
	XMM4
	XMM5
	XMM6
	XMM7
	XMM8
	XMM9
	XMM10
	XMM11
	XMM12
	XMM13
	XMM14
	XMM15
	NumXRegs
)

func (x XReg) String() string {
	if x == XNone {
		return "xnone"
	}
	return "xmm" + strconv.Itoa(int(x)-1)
}

// RFLAGS bit positions (matching x86 encoding; the paper's Figure 2(a)
// example injects OF = bit 11).
const (
	FlagCF uint64 = 1 << 0
	FlagPF uint64 = 1 << 2
	FlagZF uint64 = 1 << 6
	FlagSF uint64 = 1 << 7
	FlagOF uint64 = 1 << 11
)

// FlagBits are the architecturally meaningful flag bit positions.
var FlagBits = []int{0, 2, 6, 7, 11}

// Opcode enumerates the ISA.
type Opcode int

// Opcodes, grouped the way the selector categorizes them.
const (
	// Data transfer.
	MOV Opcode = iota + 1
	MOVZX
	MOVSX
	// Address arithmetic.
	LEA
	// Integer ALU.
	ADD
	SUB
	IMUL
	NEG
	AND
	OR
	XOR
	SHL
	SHR
	SAR
	// Widening divide: CQO sign-extends RAX into RDX; IDIV divides
	// RDX:RAX by the operand leaving quotient in RAX, remainder in RDX.
	CQO
	IDIV
	// Flag-setting comparisons.
	CMP
	TEST
	// Conditional set (materializes a flag into a byte register).
	SETE
	SETNE
	SETL
	SETLE
	SETG
	SETGE
	SETB
	SETBE
	SETA
	SETAE
	// Branches.
	JMP
	JE
	JNE
	JL
	JLE
	JG
	JGE
	JB
	JBE
	JA
	JAE
	// Stack and calls.
	PUSH
	POP
	CALL
	RET
	// SSE double-precision.
	MOVSD
	ADDSD
	SUBSD
	MULSD
	DIVSD
	UCOMISD
	XORPD
	CVTSI2SD
	CVTTSD2SI
	NumOpcodes
)

var opcodeNames = map[Opcode]string{
	MOV: "mov", MOVZX: "movzx", MOVSX: "movsx", LEA: "lea",
	ADD: "add", SUB: "sub", IMUL: "imul", NEG: "neg",
	AND: "and", OR: "or", XOR: "xor", SHL: "shl", SHR: "shr", SAR: "sar",
	CQO: "cqo", IDIV: "idiv", CMP: "cmp", TEST: "test",
	SETE: "sete", SETNE: "setne", SETL: "setl", SETLE: "setle",
	SETG: "setg", SETGE: "setge", SETB: "setb", SETBE: "setbe",
	SETA: "seta", SETAE: "setae",
	JMP: "jmp", JE: "je", JNE: "jne", JL: "jl", JLE: "jle",
	JG: "jg", JGE: "jge", JB: "jb", JBE: "jbe", JA: "ja", JAE: "jae",
	PUSH: "push", POP: "pop", CALL: "call", RET: "ret",
	MOVSD: "movsd", ADDSD: "addsd", SUBSD: "subsd", MULSD: "mulsd",
	DIVSD: "divsd", UCOMISD: "ucomisd", XORPD: "xorpd",
	CVTSI2SD: "cvtsi2sd", CVTTSD2SI: "cvttsd2si",
}

func (o Opcode) String() string {
	if s, ok := opcodeNames[o]; ok {
		return s
	}
	return "op" + strconv.Itoa(int(o))
}

// IsCondJump reports whether o is a conditional jump.
func (o Opcode) IsCondJump() bool { return o >= JE && o <= JAE }

// IsSet reports whether o is a SETcc.
func (o Opcode) IsSet() bool { return o >= SETE && o <= SETAE }

// IsFlagSetter reports whether o writes the flags for a following Jcc or
// SETcc (the instructions PINFI's cmp heuristic targets).
func (o Opcode) IsFlagSetter() bool { return o == CMP || o == TEST || o == UCOMISD }

// IsIntALU reports whether o is integer arithmetic/logic.
func (o Opcode) IsIntALU() bool { return (o >= ADD && o <= SAR) || o == CQO || o == IDIV }

// IsSSEALU reports whether o is double-precision SSE arithmetic.
func (o Opcode) IsSSEALU() bool { return o >= ADDSD && o <= DIVSD }

// IsArith reports whether o belongs to PINFI's "arithmetic" category:
// integer ALU ops, SSE arithmetic, and LEA (which performs the address
// arithmetic that getelementptr lowers to).
func (o Opcode) IsArith() bool { return o.IsIntALU() || o.IsSSEALU() || o == LEA }

// IsConvert reports whether o is in the "convert" category (the assembly
// counterpart of IR int/fp conversion casts).
func (o Opcode) IsConvert() bool { return o == CVTSI2SD || o == CVTTSD2SI }

// OperandKind discriminates Operand.
type OperandKind int

// Operand kinds.
const (
	OpNone OperandKind = iota
	OpReg
	OpXmm
	OpImm
	OpMem
	OpLabel
)

// Operand is one instruction operand. Memory operands use the full x86
// addressing form [Base + Index*Scale + Disp]; an absolute address is
// expressed with Base == RegNone.
type Operand struct {
	Kind  OperandKind
	Reg   Reg
	Xmm   XReg
	Imm   int64
	Base  Reg
	Index Reg
	Scale uint8
	Disp  int64
	// Label is a resolved instruction index for branch/call targets.
	Label int
}

// R makes a register operand.
func R(r Reg) Operand { return Operand{Kind: OpReg, Reg: r} }

// X makes an XMM operand.
func X(x XReg) Operand { return Operand{Kind: OpXmm, Xmm: x} }

// Imm makes an immediate operand.
func Imm(v int64) Operand { return Operand{Kind: OpImm, Imm: v} }

// Mem makes a memory operand.
func Mem(base Reg, index Reg, scale uint8, disp int64) Operand {
	if scale == 0 {
		scale = 1
	}
	return Operand{Kind: OpMem, Base: base, Index: index, Scale: scale, Disp: disp}
}

// Abs makes an absolute-address memory operand.
func Abs(addr int64) Operand { return Operand{Kind: OpMem, Base: RegNone, Scale: 1, Disp: addr} }

// Label makes a branch-target operand (index into the program).
func Label(idx int) Operand { return Operand{Kind: OpLabel, Label: idx} }

// Instr is one machine instruction.
type Instr struct {
	Op   Opcode
	Dst  Operand
	Src  Operand
	Size uint8 // operation width in bytes (1, 2, 4, 8); 0 means 8

	// Builtin names a runtime builtin for CALL (empty for user calls).
	Builtin string
	// ArgClasses records the argument-class layout of a builtin call for
	// the machine's marshalling: one byte per argument, 'i' (integer or
	// pointer, in RDI/RSI/...) or 'd' (double, in XMM0/XMM1/...).
	ArgClasses string
	// RetFloat marks a builtin call returning a double.
	RetFloat bool

	// Fn labels the first instruction of each function (for disassembly).
	Fn string
	// Comment carries provenance for disassembly (e.g. the IR op).
	Comment string
}

// OpSize returns the effective operation width in bytes.
func (in *Instr) OpSize() uint64 {
	if in.Size == 0 {
		return 8
	}
	return uint64(in.Size)
}

// HasRegDest reports whether the instruction writes a general-purpose or
// XMM destination register — PINFI's precondition for an injection
// candidate ("we compare LLFI and PINFI through fault injection into
// destination registers of instructions").
func (in *Instr) HasRegDest() bool {
	switch in.Op {
	case CMP, TEST, UCOMISD, JMP, JE, JNE, JL, JLE, JG, JGE, JB, JBE, JA, JAE,
		PUSH, CALL, RET:
		return false
	}
	return in.Dst.Kind == OpReg || in.Dst.Kind == OpXmm
}

// Program is a fully lowered and linked machine program.
type Program struct {
	Instrs []Instr
	// Entry is the instruction index of main's first instruction.
	Entry int
	// FuncAt maps function names to entry indices.
	FuncAt map[string]int
	// Rodata is the constant pool (float literals), mapped at RodataBase.
	Rodata []byte
}

// RodataBase is where the constant pool is mapped. It sits between the
// globals segment and the code segment.
const RodataBase uint64 = 0x30_0000

// IntArgRegs is the SysV-style integer/pointer argument register order.
var IntArgRegs = []Reg{RDI, RSI, RDX, RCX, R8, R9}

// FloatArgRegs is the SysV-style double argument register order.
var FloatArgRegs = []XReg{XMM0, XMM1, XMM2, XMM3, XMM4, XMM5, XMM6, XMM7}

package codegen

import (
	"testing"

	"hlfi/internal/interp"
	"hlfi/internal/minic"
	"hlfi/internal/x86"
)

// lower compiles minic source and returns the machine program.
func lower(t *testing.T, src string) *x86.Program {
	t.Helper()
	mod, err := minic.Compile("t", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	prep, err := interp.Prepare(mod)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Lower(mod, prep.Layout, DefaultOptions())
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	return prog
}

func countOpcode(p *x86.Program, op x86.Opcode) int {
	n := 0
	for i := range p.Instrs {
		if p.Instrs[i].Op == op {
			n++
		}
	}
	return n
}

// TableIRow1a: a getelementptr whose single use is a same-block memory
// access folds into the addressing mode ("...cannot be mapped to an
// assembly instruction if they are translated to offset memory access").
func TestTableIRow1GEPFoldsIntoAddressing(t *testing.T) {
	p := lower(t, `
int arr[16];
int get(int i) { return arr[i]; }
int main() { return get(3); }
`)
	// get() must contain a scaled-index load and no LEA.
	start, end := funcRange(p, "get")
	sawScaledLoad := false
	for i := start; i < end; i++ {
		in := p.Instrs[i]
		if in.Op == x86.LEA {
			t.Errorf("foldable GEP produced LEA: %s", in.String())
		}
		if (in.Op == x86.MOV || in.Op == x86.MOVZX || in.Op == x86.MOVSX) &&
			in.Src.Kind == x86.OpMem && in.Src.Index != x86.RegNone && in.Src.Scale == 4 {
			sawScaledLoad = true
		}
	}
	if !sawScaledLoad {
		t.Errorf("no [base+index*4] load found:\n%s", p.Disassemble())
	}
}

// TableIRow1b: a GEP whose address is reused or does not fit the
// addressing form lowers to explicit address arithmetic ("a set of add
// and multiply instructions that computes the address").
func TestTableIRow1GEPBecomesArithmetic(t *testing.T) {
	p := lower(t, `
struct rec { int a; int pad1; int pad2; int pad3; int pad4; int b; };
struct rec recs[8];
int *escape(int i) { return &recs[i].b; }
int main() { return *escape(2); }
`)
	start, end := funcRange(p, "escape")
	arith := 0
	for i := start; i < end; i++ {
		if p.Instrs[i].Op.IsArith() {
			arith++
		}
	}
	if arith == 0 {
		t.Errorf("escaping GEP produced no address arithmetic:\n%s", p.Disassemble())
	}
}

// TableIRow2: phi value merges produce data-movement instructions (the
// register-spilling analogue). We force more phis than there are global
// registers so some spill to the stack.
func TestTableIRow2PhiDataMovement(t *testing.T) {
	p := lower(t, `
int f(int n) {
    int a = 0; int b = 1; int c = 2; int d = 3; int e = 4;
    int g = 5; int h = 6; int k = 7;
    for (int i = 0; i < n; i++) {
        a += i; b ^= a; c += b; d |= c; e += d; g ^= e; h += g; k ^= h;
    }
    return a + b + c + d + e + g + h + k;
}
int main() { return f(3); }
`)
	start, end := funcRange(p, "f")
	phiMoves, stackPhi := 0, 0
	for i := start; i < end; i++ {
		in := p.Instrs[i]
		if in.Comment == "phi" {
			phiMoves++
			if in.Dst.Kind == x86.OpMem && in.Dst.Base == x86.RBP {
				stackPhi++
			}
		}
	}
	if phiMoves == 0 {
		t.Errorf("no phi data movement emitted:\n%s", p.Disassemble())
	}
	if stackPhi == 0 {
		t.Errorf("with 9 loop-carried values, some phi must spill to the stack:\n%s", p.Disassemble())
	}
}

// TableIRow3: function calls produce PUSH/POP frame instructions and a
// CALL/RET pair that have no counterpart in the IR.
func TestTableIRow3CallFrames(t *testing.T) {
	// helper is large enough that the inliner leaves it alone.
	p := lower(t, `
int helper(int x) {
    int s = x;
    for (int i = 0; i < x; i++) {
        s = s * 3 + i;
        s = s ^ (s >> 2);
        s = s + (i * 5) % 7;
    }
    return s + 1;
}
int main() { return helper(41); }
`)
	if countOpcode(p, x86.PUSH) == 0 || countOpcode(p, x86.POP) == 0 {
		t.Error("no PUSH/POP frame instructions")
	}
	if countOpcode(p, x86.CALL) != 1 || countOpcode(p, x86.RET) != 2 {
		t.Errorf("call/ret counts: call=%d ret=%d", countOpcode(p, x86.CALL), countOpcode(p, x86.RET))
	}
	// Prologue shape: PUSH RBP; MOV RBP, RSP.
	start, _ := funcRange(p, "helper")
	if p.Instrs[start].Op != x86.PUSH || p.Instrs[start].Dst.Reg != x86.RBP {
		t.Errorf("prologue does not start with push rbp: %s", p.Instrs[start].String())
	}
	if p.Instrs[start+1].Op != x86.MOV || p.Instrs[start+1].Dst.Reg != x86.RBP {
		t.Errorf("prologue second instr: %s", p.Instrs[start+1].String())
	}
}

// TableIRow4: compare-and-branch fuses into a flag-setting instruction
// immediately followed by a conditional jump — the shape PINFI's cmp
// heuristic requires.
func TestTableIRow4CmpJccFusion(t *testing.T) {
	p := lower(t, `
int main() {
    int s = 0;
    for (int i = 0; i < 10; i++) {
        if (i != 3) s += i;
    }
    return s;
}
`)
	fused := 0
	for i := 0; i+1 < len(p.Instrs); i++ {
		if p.Instrs[i].Op.IsFlagSetter() && p.Instrs[i+1].Op.IsCondJump() {
			fused++
		}
	}
	if fused < 2 {
		t.Errorf("expected fused cmp+jcc pairs, found %d:\n%s", fused, p.Disassemble())
	}
	if countOpcode(p, x86.SETE)+countOpcode(p, x86.SETNE)+countOpcode(p, x86.SETL) != 0 {
		t.Error("branch-only compares must not materialize SETcc")
	}
}

// TableIRow5: integer-resize casts lower to data transfers; only int<->fp
// conversions become convert-category instructions.
func TestTableIRow5CastAsymmetry(t *testing.T) {
	intCasts := lower(t, `
long widen(int x) { return (long)x; }
char narrow(int x) { return (char)x; }
int main() { return (int)widen(3) + narrow(300); }
`)
	for i := range intCasts.Instrs {
		if intCasts.Instrs[i].Op.IsConvert() {
			t.Errorf("integer casts produced convert instruction: %s", intCasts.Instrs[i].String())
		}
	}
	fpCasts := lower(t, `
int n = 7;
int main() {
    double d = (double)n;
    int back = (int)(d * 2.0);
    return back;
}
`)
	if countOpcode(fpCasts, x86.CVTSI2SD) == 0 || countOpcode(fpCasts, x86.CVTTSD2SI) == 0 {
		t.Errorf("fp conversions missing CVT instructions:\n%s", fpCasts.Disassemble())
	}
}

func funcRange(p *x86.Program, name string) (int, int) {
	start, ok := p.FuncAt[name]
	if !ok {
		return 0, len(p.Instrs)
	}
	end := len(p.Instrs)
	for _, s := range p.FuncAt {
		if s > start && s < end {
			end = s
		}
	}
	return start, end
}

// TestAblationOptions verifies the folding switches actually change the
// lowered code (the ablation benchmarks depend on this).
func TestAblationOptions(t *testing.T) {
	src := `
int arr[16];
int main() {
    int s = 0;
    for (int i = 0; i < 16; i++) s += arr[i];
    return s;
}
`
	mod, err := minic.Compile("t", src)
	if err != nil {
		t.Fatal(err)
	}
	prep, err := interp.Prepare(mod)
	if err != nil {
		t.Fatal(err)
	}
	withFold, err := Lower(mod, prep.Layout, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	noFold, err := Lower(mod, prep.Layout, Options{FoldGEP: false, FoldLoad: false, FuseCmpBranch: true})
	if err != nil {
		t.Fatal(err)
	}
	if countOpcode(noFold, x86.LEA) <= countOpcode(withFold, x86.LEA) {
		t.Errorf("disabling GEP folding must add LEAs: %d vs %d",
			countOpcode(noFold, x86.LEA), countOpcode(withFold, x86.LEA))
	}
	noFuse, err := Lower(mod, prep.Layout, Options{FoldGEP: true, FoldLoad: true, FuseCmpBranch: false})
	if err != nil {
		t.Fatal(err)
	}
	setccs := 0
	for _, op := range []x86.Opcode{x86.SETE, x86.SETNE, x86.SETL, x86.SETLE, x86.SETG, x86.SETGE, x86.SETB, x86.SETA} {
		setccs += countOpcode(noFuse, op)
	}
	if setccs == 0 {
		t.Error("disabling cmp fusion must materialize SETcc")
	}
}

// TestDivisionLoweringShape pins the sdiv/srem sequence: sign-extension
// into RAX, CQO, IDIV, result copy — the multi-instruction expansion a
// single IR sdiv acquires at the assembly level.
func TestDivisionLoweringShape(t *testing.T) {
	p := lower(t, `
int num = 100;
int den = 7;
int main() { return num / den + num % den; }
`)
	if countOpcode(p, x86.CQO) != 2 || countOpcode(p, x86.IDIV) != 2 {
		t.Fatalf("division expansion: cqo=%d idiv=%d", countOpcode(p, x86.CQO), countOpcode(p, x86.IDIV))
	}
	// Every IDIV is immediately preceded by CQO.
	for i := range p.Instrs {
		if p.Instrs[i].Op == x86.IDIV {
			if i == 0 || p.Instrs[i-1].Op != x86.CQO {
				t.Fatalf("IDIV at %d not preceded by CQO", i)
			}
		}
	}
}

// TestNarrowStoresUseOperandWidth: char/int stores must write 1/4 bytes,
// never clobbering neighbours.
func TestNarrowStoresUseOperandWidth(t *testing.T) {
	out, _ := runBoth(t, `
char bytes[8] = "AAAAAAA";
int main() {
    bytes[2] = 'z';
    for (int i = 0; i < 7; i++) print_char(bytes[i]);
    print_str("\n");
    return 0;
}
`)
	if out != "AAzAAAA\n" {
		t.Fatalf("narrow store clobbered neighbours: %q", out)
	}
}

package codegen_test

import (
	"testing"

	"hlfi/internal/bench"
	"hlfi/internal/codegen"
	"hlfi/internal/interp"
	"hlfi/internal/minic"
)

// TestLoweringDeterministic guards the bit-reproducibility promise: the
// same source must lower to the identical instruction stream on every
// compile. Go randomizes map iteration order per range statement, so
// lowering each benchmark several times in one process catches any pass
// whose output order leaks from a map walk (the LICM hoist-order bug
// was exactly this shape).
func TestLoweringDeterministic(t *testing.T) {
	for _, b := range bench.All() {
		name, src := b.Name, b.Source
		var golden string
		for trial := 0; trial < 4; trial++ {
			mod, err := minic.Compile(name, src)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			prep, err := interp.Prepare(mod)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			prog, err := codegen.Lower(mod, prep.Layout, codegen.DefaultOptions())
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			d := prog.Disassemble()
			if trial == 0 {
				golden = d
			} else if d != golden {
				t.Fatalf("%s: lowering differs between compiles (trial %d)", name, trial)
			}
		}
	}
}

package codegen

import (
	"testing"

	"hlfi/internal/ir"
	"hlfi/internal/minic"
	"hlfi/internal/x86"
)

// classifyFn compiles src and returns the classification of its named
// function.
func classifyFn(t *testing.T, src, fn string) (*ir.Function, *classification) {
	t.Helper()
	mod, err := minic.Compile("t", src)
	if err != nil {
		t.Fatal(err)
	}
	f := mod.Func(fn)
	if f == nil {
		t.Fatalf("no function %s", fn)
	}
	f.Renumber()
	return f, classify(f, DefaultOptions())
}

func findOp(f *ir.Function, op ir.Op) []*ir.Instr {
	var out []*ir.Instr
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == op {
				out = append(out, in)
			}
		}
	}
	return out
}

func TestClassifyFoldsSingleUseGEP(t *testing.T) {
	f, cls := classifyFn(t, `
int arr[8];
int get(int i) { return arr[i]; }
int main() { return get(1); }
`, "get")
	geps := findOp(f, ir.OpGEP)
	if len(geps) == 0 {
		t.Skip("GEP folded earlier")
	}
	for _, g := range geps {
		if cls.class[g] != classFolded {
			t.Errorf("single-use GEP not folded: class %d", cls.class[g])
		}
	}
}

func TestClassifyEscapingGEPNotFolded(t *testing.T) {
	f, cls := classifyFn(t, `
int arr[8];
int *addr(int i) { return &arr[i]; }
int main() { return *addr(1); }
`, "addr")
	for _, g := range findOp(f, ir.OpGEP) {
		if cls.class[g] == classFolded {
			t.Error("escaping GEP must not fold")
		}
	}
}

func TestClassifyLoadAcrossStoreNotFolded(t *testing.T) {
	// The load's value is used after an intervening store that may
	// alias; folding would read stale memory.
	f, cls := classifyFn(t, `
int a[4];
int f(int i, int v) {
    int x = a[i];
    a[0] = v;       /* potential alias */
    return x + v;
}
int main() { return f(1, 2); }
`, "f")
	for _, ld := range findOp(f, ir.OpLoad) {
		if cls.class[ld] == classFolded {
			t.Error("load folded across a potentially-aliasing store")
		}
	}
}

func TestClassifyPhiGetsRegisterOrSlot(t *testing.T) {
	f, cls := classifyFn(t, `
int f(int n) {
    int s = 0;
    for (int i = 0; i < n; i++) s += i;
    return s;
}
int main() { return f(5); }
`, "f")
	phis := findOp(f, ir.OpPhi)
	if len(phis) == 0 {
		t.Fatal("loop lost its phis")
	}
	for _, p := range phis {
		switch cls.class[p] {
		case classSlot:
			// acceptable under pressure
		case classGReg:
			if _, ok := cls.globalReg[ir.Value(p)]; !ok {
				t.Error("classGReg phi without an assigned register")
			}
		default:
			t.Errorf("phi has class %d", cls.class[p])
		}
	}
	// Hot loop phis should win global registers.
	got := 0
	for _, p := range phis {
		if cls.class[p] == classGReg {
			got++
		}
	}
	if got == 0 {
		t.Error("no loop phi received a global register")
	}
}

func TestClassifyCallCrossingDemotion(t *testing.T) {
	// v is live across the call to ext(): it cannot stay in a
	// caller-saved local register.
	f, cls := classifyFn(t, `
int acc;
int ext(int x) {
    int r = x;
    for (int i = 0; i < x; i++) { r = r * 3 + i; r ^= r >> 2; r += acc; }
    return r;
}
int f(int n) {
    int v = n * 17;
    int w = ext(n);
    return v + w;
}
int main() { return f(3); }
`, "f")
	for _, m := range findOp(f, ir.OpMul) {
		c := cls.class[m]
		if c != classSlot && c != classGReg {
			t.Errorf("call-crossing value class %d; must live in a slot or callee-saved register", c)
		}
	}
}

func TestClassifyBitcastIsAlias(t *testing.T) {
	f, cls := classifyFn(t, `
int main() {
    long *p = (long*)malloc(16L);
    *p = 42;
    char *c = (char*)p;
    return (int)*c;
}
`, "main")
	for _, bc := range findOp(f, ir.OpBitcast) {
		if cls.class[bc] != classAlias {
			t.Errorf("bitcast class %d, want alias", cls.class[bc])
		}
	}
}

func TestClassifyUseCountsNonNegativeAndConsistent(t *testing.T) {
	for _, b := range []string{"bzip2m-src", "loop-src"} {
		_ = b
	}
	f, cls := classifyFn(t, `
int arr[16];
int main() {
    long s = 0;
    for (int i = 0; i < 16; i++) {
        s += arr[i] * arr[(i + 1) & 15];
    }
    print_long(s);
    return 0;
}
`, "main")
	for v, n := range cls.useCount {
		if n < 0 {
			t.Errorf("negative use count for %s", v.Ident())
		}
	}
	// Every folded value must have at least one user charging it.
	uses := ir.ComputeUses(f)
	for _, blk := range f.Blocks {
		for _, in := range blk.Instrs {
			if cls.class[in] == classFolded && uses.NumUses(in) == 0 {
				t.Errorf("folded %s has no users", in.Op)
			}
		}
	}
}

func TestGlobalRegisterFilesRespectConvention(t *testing.T) {
	// In a function with calls, only callee-saved GPRs may host global
	// values, and no XMM registers at all.
	f, cls := classifyFn(t, `
int ext(int x) {
    int r = x;
    for (int i = 0; i < x; i++) { r = r * 3 + i; r ^= r >> 2; r += i * 7; }
    return r;
}
double f(int n) {
    double acc = 0.0;
    for (int i = 0; i < n; i++) {
        acc = acc + (double)ext(i);
    }
    return acc;
}
int main() { return (int)f(4); }
`, "f")
	_ = f
	for v, r := range cls.globalReg {
		if !r.IsCalleeSaved() {
			t.Errorf("value %s in caller-saved global register %s of a calling function", v.Ident(), r)
		}
	}
	if len(cls.globalXmm) != 0 {
		t.Error("calling function must not place floats in global XMM registers (no callee-saved XMMs in SysV)")
	}
}

func TestLeafFunctionGetsFloatGlobals(t *testing.T) {
	_, cls := classifyFn(t, `
double leaf(double x, int n) {
    double acc = x;
    for (int i = 0; i < n; i++) {
        acc = acc * 1.5 + 0.25;
    }
    return acc;
}
int main() { return (int)leaf(1.0, 6); }
`, "leaf")
	if len(cls.globalXmm) == 0 {
		t.Error("call-free function should keep its hot double in an XMM register")
	}
}

func TestAddressPlanForms(t *testing.T) {
	mod, err := minic.Compile("t", `
struct s { int a; int b; };
struct s recs[8];
int arr[8];
long larr[8];
int main() {
    int i = arr[3];
    return i;
}
`)
	if err != nil {
		t.Fatal(err)
	}
	// Synthesize GEPs directly to probe addressPlan.
	f := mod.NewFunc("probe", ir.FuncType(ir.Void))
	b := f.NewBlock("entry")
	bu := ir.NewBuilder(b)
	g := mod.Global("arr")
	idx := ir.ConstInt(ir.I64, 2)

	constGEP := bu.GEP(ir.PointerTo(ir.I32), g, ir.ConstInt(ir.I64, 0), idx)
	plan, ok := addressPlan(constGEP)
	if !ok || plan.index != nil || plan.disp != 8 {
		t.Errorf("const GEP plan: %+v ok=%v", plan, ok)
	}

	varIdx := bu.Cast(ir.OpSExt, ir.ConstInt(ir.I32, 1), ir.I64)
	varGEP := bu.GEP(ir.PointerTo(ir.I32), g, ir.ConstInt(ir.I64, 0), varIdx)
	plan, ok = addressPlan(varGEP)
	if !ok || plan.index == nil || plan.scale != 4 {
		t.Errorf("var GEP plan: %+v ok=%v", plan, ok)
	}

	// struct stride 8 with field offset: [base + i*8 + 4]
	rs := mod.Global("recs")
	fieldGEP := bu.GEP(ir.PointerTo(ir.I32), rs, ir.ConstInt(ir.I64, 0), varIdx, ir.ConstInt(ir.I32, 1))
	plan, ok = addressPlan(fieldGEP)
	if !ok || plan.scale != 8 || plan.disp != 4 {
		t.Errorf("field GEP plan: %+v ok=%v", plan, ok)
	}

	// two variable indexes cannot fold
	m2 := bu.GEP(ir.PointerTo(ir.I32), rs, varIdx, ir.ConstInt(ir.I32, 0))
	_ = m2
	twoVar := bu.GEP(ir.PointerTo(ir.I64), mod.Global("larr"), varIdx, varIdx)
	if _, ok := addressPlan(twoVar); ok {
		t.Error("GEP with stride-64 first index must not fold")
	}
	_ = x86.RAX
}

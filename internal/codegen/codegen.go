package codegen

import (
	"encoding/binary"
	"fmt"
	"math"

	"hlfi/internal/ir"
	"hlfi/internal/rt"
	"hlfi/internal/x86"
)

// moduleLowerer holds module-wide lowering state.
type moduleLowerer struct {
	mod    *ir.Module
	layout *ir.Layout
	opts   Options

	rodata   []byte
	floatOff map[uint64]uint64

	instrs     []x86.Instr
	funcAt     map[string]int
	callFixups []callFixup
}

type callFixup struct {
	index int
	name  string
}

// Lower compiles an IR module to a linked machine program. The module's
// optimization pipeline (including critical-edge splitting) must already
// have run; Lower never mutates the IR.
func Lower(m *ir.Module, layout *ir.Layout, opts Options) (*x86.Program, error) {
	ml := &moduleLowerer{
		mod:      m,
		layout:   layout,
		opts:     opts,
		floatOff: make(map[uint64]uint64),
		funcAt:   make(map[string]int),
	}
	for _, f := range m.Funcs {
		if len(f.Blocks) == 0 {
			continue
		}
		if err := checkNoCriticalPhiEdges(f); err != nil {
			return nil, err
		}
		if err := ml.lowerFunc(f); err != nil {
			return nil, fmt.Errorf("lower @%s: %w", f.Name, err)
		}
	}
	// Resolve cross-function calls.
	for _, fix := range ml.callFixups {
		target, ok := ml.funcAt[fix.name]
		if !ok {
			return nil, fmt.Errorf("codegen: call to unlowered function %s", fix.name)
		}
		ml.instrs[fix.index].Dst = x86.Label(target)
	}
	entry, ok := ml.funcAt["main"]
	if !ok {
		return nil, fmt.Errorf("codegen: module has no main")
	}
	return &x86.Program{
		Instrs: ml.instrs,
		Entry:  entry,
		FuncAt: ml.funcAt,
		Rodata: ml.rodata,
	}, nil
}

func checkNoCriticalPhiEdges(f *ir.Function) error {
	predCount := make(map[*ir.Block]int)
	for _, b := range f.Blocks {
		for _, s := range b.Succs() {
			predCount[s]++
		}
	}
	for _, b := range f.Blocks {
		succs := b.Succs()
		if len(succs) < 2 {
			continue
		}
		for _, s := range succs {
			if predCount[s] >= 2 && len(s.Instrs) > 0 && s.Instrs[0].Op == ir.OpPhi {
				return fmt.Errorf("codegen: critical edge %s->%s with phi (run ir.SplitCriticalEdges)", b.Name, s.Name)
			}
		}
	}
	return nil
}

func (ml *moduleLowerer) globalAddr(g *ir.Global) uint64 { return ml.layout.Addr[g] }

// floatConst interns a double literal in the constant pool and returns
// its absolute address.
func (ml *moduleLowerer) floatConst(f float64) uint64 {
	bits := math.Float64bits(f)
	if off, ok := ml.floatOff[bits]; ok {
		return x86.RodataBase + off
	}
	off := uint64(len(ml.rodata))
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], bits)
	ml.rodata = append(ml.rodata, buf[:]...)
	ml.floatOff[bits] = off
	return x86.RodataBase + off
}

func (ml *moduleLowerer) lowerFunc(f *ir.Function) error {
	f.Renumber()
	cls := classify(f, ml.opts)
	l := &fnLowerer{
		mod:         ml,
		fn:          f,
		cls:         cls,
		opts:        ml.opts,
		labelOf:     make(map[*ir.Block]int, len(f.Blocks)),
		callTargets: make(map[int]string),
		slotOff:     make(map[ir.Value]int64),
		allocaOff:   make(map[*ir.Instr]int64),
		calleeUsed:  make(map[x86.Reg]bool),
		remaining:   make(map[ir.Value]int, len(cls.useCount)),
	}
	for v, n := range cls.useCount {
		l.remaining[v] = n
	}
	// Build allocator pools excluding this function's global registers,
	// and record callee-saved global registers for the prologue.
	taken := make(map[x86.Reg]bool)
	for _, gr := range cls.globalReg {
		taken[gr] = true
		if gr.IsCalleeSaved() {
			l.calleeUsed[gr] = true
		}
	}
	for _, r := range gprPool {
		if !taken[r] {
			l.gpool = append(l.gpool, r)
		}
	}
	takenX := make(map[x86.XReg]bool)
	for _, gx := range cls.globalXmm {
		takenX[gx] = true
	}
	for _, x := range xmmPool {
		if !takenX[x] {
			l.xpool = append(l.xpool, x)
		}
	}
	l.resetBlock()

	// Allocas get fixed frame offsets below the spill slots; slots are
	// assigned lazily, so allocas are planned relative to a moving floor.
	// To keep both stable, allocas are planned first with a placeholder
	// region that starts after all slots: we pre-assign slots for every
	// slot-class value and parameter now.
	for _, p := range f.Params {
		l.slotFor(p)
	}
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.HasResult() && cls.class[in] == classSlot {
				l.slotFor(in)
			}
		}
	}
	// Reserve alloca space.
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op != ir.OpAlloca {
				continue
			}
			size := in.AllocTy.Size()
			align := in.AllocTy.Align()
			if align < 8 {
				align = 8
			}
			l.frameBytes = (l.frameBytes + int64(size) + int64(align) - 1) / int64(align) * int64(align)
			l.allocaOff[in] = l.frameBytes
		}
	}

	// Labels for every block plus the shared epilogue.
	for _, b := range f.Blocks {
		l.labelOf[b] = l.newLabel()
	}
	l.epilogueLbl = l.newLabel()

	for i, b := range f.Blocks {
		var next *ir.Block
		if i+1 < len(f.Blocks) {
			next = f.Blocks[i+1]
		}
		if err := l.lowerBlock(b, next); err != nil {
			return err
		}
	}

	// Epilogue.
	l.defineLabel(l.epilogueLbl)
	saved := l.savedRegs()
	for i := len(saved) - 1; i >= 0; i-- {
		l.emit(x86.Instr{Op: x86.POP, Dst: x86.R(saved[i])})
	}
	l.emit(x86.Instr{Op: x86.MOV, Dst: x86.R(x86.RSP), Src: x86.R(x86.RBP), Size: 8})
	l.emit(x86.Instr{Op: x86.POP, Dst: x86.R(x86.RBP)})
	l.emit(x86.Instr{Op: x86.RET})

	// Prologue (built last: frame size and callee-saved usage are now
	// known), then stitch.
	var pro []x86.Instr
	pro = append(pro,
		x86.Instr{Op: x86.PUSH, Dst: x86.R(x86.RBP), Fn: f.Name},
		x86.Instr{Op: x86.MOV, Dst: x86.R(x86.RBP), Src: x86.R(x86.RSP), Size: 8},
	)
	frame := (l.frameBytes + 15) / 16 * 16
	if frame > 0 {
		pro = append(pro, x86.Instr{Op: x86.SUB, Dst: x86.R(x86.RSP), Src: x86.Imm(frame), Size: 8})
	}
	for _, r := range saved {
		pro = append(pro, x86.Instr{Op: x86.PUSH, Dst: x86.R(r)})
	}
	// Move incoming arguments into their homes: a global register when
	// assigned, otherwise a stack slot.
	ii, fi := 0, 0
	for _, p := range f.Params {
		if p.Ty.IsFloat() {
			if fi >= len(fltArgRegs) {
				return fmt.Errorf("too many float parameters")
			}
			dst := l.slotOperand(p)
			if gx, ok := cls.globalXmm[ir.Value(p)]; ok {
				dst = x86.X(gx)
			}
			pro = append(pro, x86.Instr{Op: x86.MOVSD, Dst: dst, Src: x86.X(fltArgRegs[fi]), Comment: "arg " + p.Name})
			fi++
		} else {
			if ii >= len(intArgRegs) {
				return fmt.Errorf("too many integer parameters")
			}
			dst := l.slotOperand(p)
			if gr, ok := cls.globalReg[ir.Value(p)]; ok {
				dst = x86.R(gr)
			}
			pro = append(pro, x86.Instr{Op: x86.MOV, Dst: dst, Src: x86.R(intArgRegs[ii]), Size: 8, Comment: "arg " + p.Name})
			ii++
		}
	}

	base := len(ml.instrs)
	shift := len(pro)
	ml.funcAt[f.Name] = base
	ml.instrs = append(ml.instrs, pro...)
	// Fix label operands and record call fixups with global indices.
	for bi := range l.body {
		in := &l.body[bi]
		if name, isCall := l.callTargets[bi]; isCall {
			ml.callFixups = append(ml.callFixups, callFixup{index: base + shift + bi, name: name})
		} else if in.Dst.Kind == x86.OpLabel {
			in.Dst.Label = base + shift + l.labelPos[in.Dst.Label]
		}
		ml.instrs = append(ml.instrs, *in)
	}
	return nil
}

// savedRegs lists the callee-saved registers the function used, in a
// stable order.
func (l *fnLowerer) savedRegs() []x86.Reg {
	var out []x86.Reg
	for _, r := range []x86.Reg{x86.RBX, x86.R12, x86.R13, x86.R14, x86.R15} {
		if l.calleeUsed[r] {
			out = append(out, r)
		}
	}
	return out
}

func (l *fnLowerer) lowerBlock(b *ir.Block, next *ir.Block) error {
	l.resetBlock()
	l.defineLabel(l.labelOf[b])
	for _, in := range b.Instrs {
		if in.Op.IsTerminator() {
			if err := l.emitPhiMoves(b, in); err != nil {
				return err
			}
			return l.lowerTerminator(b, in, next)
		}
		if err := l.lowerInstr(in); err != nil {
			return err
		}
	}
	return fmt.Errorf("block %s has no terminator", b.Name)
}

// emitPhiMoves stores this block's incoming values into the phi homes
// (global register or stack slot) of the successor — the value-merge data
// movement of paper Table I row 2. Sources that are themselves phi
// targets of the same edge (swap patterns) are staged through temporaries
// first; everything else moves directly, keeping register pressure flat.
func (l *fnLowerer) emitPhiMoves(b *ir.Block, term *ir.Instr) error {
	defer l.endInstr()
	for _, succ := range term.Blocks {
		nPhi := 0
		for nPhi < len(succ.Instrs) && succ.Instrs[nPhi].Op == ir.OpPhi {
			nPhi++
		}
		if nPhi == 0 {
			continue
		}
		if len(term.Blocks) != 1 {
			return fmt.Errorf("critical edge with phi from %s", b.Name)
		}
		targets := make(map[*ir.Instr]bool, nPhi)
		for _, phi := range succ.Instrs[:nPhi] {
			targets[phi] = true
		}
		type staged struct {
			dst     x86.Operand
			gpr     x86.Reg
			xmm     x86.XReg
			isFloat bool
		}
		var stagedMoves []staged
		for _, phi := range succ.Instrs[:nPhi] {
			var incoming ir.Value
			for i, pb := range phi.Blocks {
				if pb == b {
					incoming = phi.Args[i]
					break
				}
			}
			if incoming == nil {
				return fmt.Errorf("phi in %s lacks edge from %s", succ.Name, b.Name)
			}
			isFloat := phi.Ty.IsFloat()
			var dst x86.Operand
			if isFloat {
				if gx, ok := l.cls.globalXmm[ir.Value(phi)]; ok {
					dst = x86.X(gx)
				} else {
					dst = l.slotOperand(phi)
				}
			} else {
				if gr, ok := l.cls.globalReg[ir.Value(phi)]; ok {
					dst = x86.R(gr)
				} else {
					dst = l.slotOperand(phi)
				}
			}
			res := l.resolve(incoming)
			if ri, ok := res.(*ir.Instr); ok && l.coalesced[ri] {
				// Already computed directly into the phi's register.
				l.consume(ri)
				continue
			}
			if cst, ok := res.(*ir.Const); ok && !isFloat {
				l.emit(x86.Instr{Op: x86.MOV, Dst: dst, Src: x86.Imm(int64(cst.Val)), Size: 8, Comment: "phi"})
				continue
			}
			hazard := false
			if ri, ok := res.(*ir.Instr); ok && targets[ri] {
				hazard = true
			}
			if isFloat {
				tSnap := len(l.tempsX)
				x, err := l.useXMM(incoming)
				if err != nil {
					return err
				}
				if hazard {
					tmp, err := l.allocTempXMM()
					if err != nil {
						return err
					}
					l.emit(x86.Instr{Op: x86.MOVSD, Dst: x86.X(tmp), Src: x86.X(x), Comment: "phi.stage"})
					stagedMoves = append(stagedMoves, staged{dst: dst, xmm: tmp, isFloat: true})
					continue
				}
				l.emit(x86.Instr{Op: x86.MOVSD, Dst: dst, Src: x86.X(x), Comment: "phi"})
				l.releaseTempsXmmSince(tSnap)
			} else {
				tSnap := len(l.temps)
				r, err := l.useGPR(incoming)
				if err != nil {
					return err
				}
				if hazard {
					tmp, err := l.allocTempGPR()
					if err != nil {
						return err
					}
					l.emit(x86.Instr{Op: x86.MOV, Dst: x86.R(tmp), Src: x86.R(r), Size: 8, Comment: "phi.stage"})
					stagedMoves = append(stagedMoves, staged{dst: dst, gpr: tmp})
					continue
				}
				l.emit(x86.Instr{Op: x86.MOV, Dst: dst, Src: x86.R(r), Size: 8, Comment: "phi"})
				l.releaseTempsSince(tSnap)
			}
		}
		for _, mv := range stagedMoves {
			if mv.isFloat {
				l.emit(x86.Instr{Op: x86.MOVSD, Dst: mv.dst, Src: x86.X(mv.xmm), Comment: "phi"})
			} else {
				l.emit(x86.Instr{Op: x86.MOV, Dst: mv.dst, Src: x86.R(mv.gpr), Size: 8, Comment: "phi"})
			}
		}
	}
	return nil
}

// releaseTempsSince frees temp GPRs acquired after the snapshot index so
// long move sequences do not accumulate register pressure.
func (l *fnLowerer) releaseTempsSince(snap int) {
	for _, r := range l.temps[snap:] {
		delete(l.regOwner, r)
		delete(l.pinned, r)
	}
	l.temps = l.temps[:snap]
}

// releaseTempsXmmSince frees temp XMM registers acquired after snap.
func (l *fnLowerer) releaseTempsXmmSince(snap int) {
	for _, x := range l.tempsX[snap:] {
		delete(l.xmmOwner, x)
		delete(l.pinnedX, x)
	}
	l.tempsX = l.tempsX[:snap]
}

func (l *fnLowerer) lowerTerminator(b *ir.Block, term *ir.Instr, next *ir.Block) error {
	defer l.endInstr()
	switch term.Op {
	case ir.OpBr:
		target := term.Blocks[0]
		if target != next {
			l.emit(x86.Instr{Op: x86.JMP, Dst: x86.Label(l.labelOf[target])})
		}
		return nil

	case ir.OpRet:
		if len(term.Args) == 1 {
			if term.Args[0].Type().IsFloat() {
				src, err := l.floatSrcOperand(term.Args[0])
				if err != nil {
					return err
				}
				l.emit(x86.Instr{Op: x86.MOVSD, Dst: x86.X(x86.XMM0), Src: src})
			} else {
				src, err := l.intSrcOperand(term.Args[0])
				if err != nil {
					return err
				}
				l.emit(x86.Instr{Op: x86.MOV, Dst: x86.R(x86.RAX), Src: src, Size: 8})
			}
		}
		l.emit(x86.Instr{Op: x86.JMP, Dst: x86.Label(l.epilogueLbl)})
		return nil

	case ir.OpCondBr:
		thenBlk, elseBlk := term.Blocks[0], term.Blocks[1]
		var jcc x86.Opcode
		cond := l.resolve(term.Args[0])
		if ci, ok := cond.(*ir.Instr); ok && l.cls.foldedCmp[ci] == term {
			// Fused compare+branch: CMP/UCOMISD immediately followed by
			// the Jcc reading its flags.
			op, err := l.emitCompare(ci)
			if err != nil {
				return err
			}
			l.consume(ci)
			jcc = op
		} else {
			r, err := l.useGPR(term.Args[0])
			if err != nil {
				return err
			}
			l.emit(x86.Instr{Op: x86.TEST, Dst: x86.R(r), Src: x86.R(r), Size: 1})
			jcc = x86.JNE
		}
		switch {
		case elseBlk == next:
			l.emit(x86.Instr{Op: jcc, Dst: x86.Label(l.labelOf[thenBlk])})
		case thenBlk == next:
			l.emit(x86.Instr{Op: invertJcc[jcc], Dst: x86.Label(l.labelOf[elseBlk])})
		default:
			l.emit(x86.Instr{Op: jcc, Dst: x86.Label(l.labelOf[thenBlk])})
			l.emit(x86.Instr{Op: x86.JMP, Dst: x86.Label(l.labelOf[elseBlk])})
		}
		return nil
	}
	return fmt.Errorf("unhandled terminator %s", term.Op)
}

// lowerCall marshals arguments per the SysV-style convention (integers in
// RDI/RSI/RDX/RCX/R8/R9, doubles in XMM0-7), emits the call, and collects
// the result from RAX/XMM0. No locally-allocated value survives a call
// (the classifier demotes call-crossing values to stack slots).
func (l *fnLowerer) lowerCall(in *ir.Instr) error {
	var isFloatArg func(i int) bool
	var retFloat bool
	var argClasses []byte
	if in.Callee != nil {
		isFloatArg = func(i int) bool { return in.Callee.Sig.Params[i].IsFloat() }
		retFloat = in.Callee.Sig.Return.IsFloat()
	} else {
		sig, ok := rt.Sigs[in.Builtin]
		if !ok {
			return fmt.Errorf("unknown builtin %s", in.Builtin)
		}
		isFloatArg = func(i int) bool { return sig.IsFloatParam(i) }
		retFloat = sig.ReturnsFloat()
	}

	// Phase 1: materialize arguments into registers.
	type argLoc struct {
		gpr     x86.Reg
		xmm     x86.XReg
		isFloat bool
	}
	locs := make([]argLoc, len(in.Args))
	nInt, nFlt := 0, 0
	for i, a := range in.Args {
		if isFloatArg(i) {
			x, err := l.useXMM(a)
			if err != nil {
				return err
			}
			l.pinnedX[x] = true
			locs[i] = argLoc{xmm: x, isFloat: true}
			argClasses = append(argClasses, 'd')
			nFlt++
		} else {
			r, err := l.useGPR(a)
			if err != nil {
				return err
			}
			l.pinned[r] = true
			locs[i] = argLoc{gpr: r}
			argClasses = append(argClasses, 'i')
			nInt++
		}
	}
	if nInt > len(intArgRegs) || nFlt > len(fltArgRegs) {
		return fmt.Errorf("call has too many arguments (%d int, %d float)", nInt, nFlt)
	}

	// Phase 2: parallel move into the argument registers.
	type gmove struct{ src, dst x86.Reg }
	type xmove struct {
		src, dst x86.XReg
	}
	var gmoves []gmove
	var xmoves []xmove
	ii, fi := 0, 0
	for i := range in.Args {
		if locs[i].isFloat {
			if locs[i].xmm != fltArgRegs[fi] {
				xmoves = append(xmoves, xmove{src: locs[i].xmm, dst: fltArgRegs[fi]})
			}
			fi++
		} else {
			if locs[i].gpr != intArgRegs[ii] {
				gmoves = append(gmoves, gmove{src: locs[i].gpr, dst: intArgRegs[ii]})
			}
			ii++
		}
	}
	// Resolve GPR moves with cycle breaking through R11.
	for len(gmoves) > 0 {
		progress := false
		for i, mv := range gmoves {
			conflict := false
			for j, other := range gmoves {
				if j != i && other.src == mv.dst {
					conflict = true
					break
				}
			}
			if !conflict {
				l.emit(x86.Instr{Op: x86.MOV, Dst: x86.R(mv.dst), Src: x86.R(mv.src), Size: 8, Comment: "arg"})
				gmoves = append(gmoves[:i], gmoves[i+1:]...)
				progress = true
				break
			}
		}
		if !progress {
			// Cycle: stash one source in R11.
			mv := gmoves[0]
			l.emit(x86.Instr{Op: x86.MOV, Dst: x86.R(x86.R11), Src: x86.R(mv.src), Size: 8, Comment: "arg.cycle"})
			for i := range gmoves {
				if gmoves[i].src == mv.src {
					gmoves[i].src = x86.R11
				}
			}
		}
	}
	for len(xmoves) > 0 {
		progress := false
		for i, mv := range xmoves {
			conflict := false
			for j, other := range xmoves {
				if j != i && other.src == mv.dst {
					conflict = true
					break
				}
			}
			if !conflict {
				l.emit(x86.Instr{Op: x86.MOVSD, Dst: x86.X(mv.dst), Src: x86.X(mv.src), Comment: "arg"})
				xmoves = append(xmoves[:i], xmoves[i+1:]...)
				progress = true
				break
			}
		}
		if !progress {
			mv := xmoves[0]
			l.emit(x86.Instr{Op: x86.MOVSD, Dst: x86.X(x86.XMM15), Src: x86.X(mv.src), Comment: "arg.cycle"})
			for i := range xmoves {
				if xmoves[i].src == mv.src {
					xmoves[i].src = x86.XMM15
				}
			}
		}
	}

	// Emit the call; registers do not survive it.
	if in.Callee != nil {
		idx := l.emit(x86.Instr{Op: x86.CALL, Dst: x86.Label(0), Comment: "call " + in.Callee.Name})
		l.callTargets[idx] = in.Callee.Name
	} else {
		l.emit(x86.Instr{Op: x86.CALL, Builtin: in.Builtin, ArgClasses: string(argClasses), RetFloat: retFloat})
	}
	l.resetBlockRegs()

	if !in.HasResult() {
		return nil
	}
	if retFloat {
		dst, err := l.defXmm(in)
		if err != nil {
			return err
		}
		l.emit(x86.Instr{Op: x86.MOVSD, Dst: x86.X(dst), Src: x86.X(x86.XMM0), Comment: "ret val"})
		l.finishXmm(in, dst)
		return nil
	}
	dst, err := l.defInt(in)
	if err != nil {
		return err
	}
	l.emit(x86.Instr{Op: x86.MOV, Dst: x86.R(dst), Src: x86.R(x86.RAX), Size: 8, Comment: "ret val"})
	l.finishInt(in, dst)
	return nil
}

// resetBlockRegs invalidates register bindings (used after calls, where
// caller-saved state is dead and, by construction, no local value lives).
func (l *fnLowerer) resetBlockRegs() {
	l.regOwner = map[x86.Reg]*ir.Instr{}
	l.xmmOwner = map[x86.XReg]*ir.Instr{}
	l.valReg = map[*ir.Instr]x86.Reg{}
	l.valXmm = map[*ir.Instr]x86.XReg{}
	l.spilled = map[*ir.Instr]bool{}
	l.pinned = map[x86.Reg]bool{}
	l.pinnedX = map[x86.XReg]bool{}
	l.temps = l.temps[:0]
	l.tempsX = l.tempsX[:0]
}

// Package codegen lowers IR modules to the synthetic x86-like ISA. It is
// the study's stand-in for the LLVM x86 backend, and it deliberately
// reproduces every IR↔assembly correspondence the paper's Table I calls
// out:
//
//   - getelementptr either folds into a [base+index*scale+disp] addressing
//     mode of the consuming load/store or lowers to LEA/IMUL/ADD address
//     arithmetic;
//   - phi nodes become stack slots with data-movement instructions at the
//     predecessors (register spilling);
//   - calls produce push/pop frame setup and argument-register moves that
//     have no IR counterpart;
//   - compare-and-branch pairs fuse into CMP+Jcc reading RFLAGS;
//   - most IR casts become plain data transfers (MOV/MOVZX/MOVSX); only
//     int<->float conversions survive as convert-category instructions.
package codegen

import (
	"sort"

	"hlfi/internal/ir"
	"hlfi/internal/x86"
)

// valClass says how a value-producing instruction is realized.
type valClass int

const (
	// classLocal values live in a register within their defining block.
	classLocal valClass = iota + 1
	// classSlot values live in a stack slot [rbp-off] (cross-block
	// values, phis, and values live across calls).
	classSlot
	// classFolded instructions emit no code; each user rematerializes
	// them (foldable GEPs, loads folded into ALU memory operands,
	// compares folded into the terminating branch).
	classFolded
	// classAlias instructions are pure renames (bitcast); operand
	// resolution looks through them.
	classAlias
	// classFrame marks allocas: the value is a frame address.
	classFrame
	// classGReg values live in a dedicated global (function-lifetime)
	// register: callee-saved GPRs, or free XMM registers in functions
	// that make no user calls. This is what keeps hot loop-carried
	// values (phis, induction variables) out of memory, as a real
	// register allocator would.
	classGReg
)

// classification is the per-function lowering plan.
type classification struct {
	class map[*ir.Instr]valClass
	// uses counts total materialized reads of a value (folded users
	// charge their operand reads to their own users).
	useCount map[ir.Value]int
	// foldedCmp maps a folded icmp/fcmp to the condbr consuming it.
	foldedCmp map[*ir.Instr]*ir.Instr
	// globalReg/globalXmm assign function-lifetime registers to the
	// hottest cross-block values and parameters.
	globalReg map[ir.Value]x86.Reg
	globalXmm map[ir.Value]x86.XReg
	// coalesce maps a block-local value whose only use is a phi living in
	// a global register to that phi: the backend tries to compute the
	// value directly into the phi's register, eliding the phi move (the
	// copy coalescing every real register allocator performs).
	coalesce map[*ir.Instr]*ir.Instr
}

// Options control the folding behaviour; the ablation benchmarks toggle
// them to quantify each discrepancy source from the paper's §VII.
type Options struct {
	// FoldGEP folds address computations into addressing modes.
	FoldGEP bool
	// FoldLoad folds single-use loads into ALU memory operands.
	FoldLoad bool
	// FuseCmpBranch fuses compare+branch into CMP+Jcc.
	FuseCmpBranch bool
}

// DefaultOptions is the realistic compiler configuration.
func DefaultOptions() Options {
	return Options{FoldGEP: true, FoldLoad: true, FuseCmpBranch: true}
}

type instrPos struct {
	block *ir.Block
	index int
}

// classify decides slot/local/folded for every value in f. The function
// must have critical edges split and be renumbered.
func classify(f *ir.Function, opts Options) *classification {
	c := &classification{
		class:     make(map[*ir.Instr]valClass),
		useCount:  make(map[ir.Value]int),
		foldedCmp: make(map[*ir.Instr]*ir.Instr),
		globalReg: make(map[ir.Value]x86.Reg),
		globalXmm: make(map[ir.Value]x86.XReg),
		coalesce:  make(map[*ir.Instr]*ir.Instr),
	}
	pos := make(map[*ir.Instr]instrPos)
	for _, b := range f.Blocks {
		for i, in := range b.Instrs {
			pos[in] = instrPos{block: b, index: i}
		}
	}
	uses := ir.ComputeUses(f)

	// usePositions: where a value is read, attributing phi reads to the
	// end of the incoming block and looking through bitcast aliases
	// (which emit no code — their users read the underlying value).
	var usePositions func(v *ir.Instr) []instrPos
	usePositions = func(v *ir.Instr) []instrPos {
		var out []instrPos
		for _, u := range uses.Uses(v) {
			switch {
			case u.Op == ir.OpPhi:
				for i, arg := range u.Args {
					if arg == ir.Value(v) {
						pb := u.Blocks[i]
						out = append(out, instrPos{block: pb, index: len(pb.Instrs)})
					}
				}
			case u.Op == ir.OpBitcast:
				out = append(out, usePositions(u)...)
			default:
				out = append(out, pos[u])
			}
		}
		return out
	}

	// Pass 1: basic classes.
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if !in.HasResult() {
				continue
			}
			switch {
			case in.Op == ir.OpAlloca:
				c.class[in] = classFrame
				continue
			case in.Op == ir.OpPhi:
				c.class[in] = classSlot
				continue
			case in.Op == ir.OpBitcast:
				c.class[in] = classAlias
				continue
			}
			cls := classLocal
			for _, up := range usePositions(in) {
				if up.block != b {
					cls = classSlot
					break
				}
			}
			c.class[in] = cls
		}
	}

	// Pass 2: folding decisions (locals only).
	for _, b := range f.Blocks {
		barrier := barrierPositions(b)
		for i, in := range b.Instrs {
			if c.class[in] != classLocal {
				continue
			}
			users := uses.Uses(in)
			switch {
			case in.Op == ir.OpGEP && opts.FoldGEP && gepFoldable(in, c, users, b):
				c.class[in] = classFolded
			case in.Op.IsCmp() && opts.FuseCmpBranch && len(users) == 1 &&
				users[0].Op == ir.OpCondBr && users[0].Parent == b:
				c.class[in] = classFolded
				c.foldedCmp[in] = users[0]
			case in.Op == ir.OpLoad && opts.FoldLoad && len(users) == 1 && users[0].Parent == b &&
				loadFoldableInto(users[0]) &&
				noBarrierBetween(barrier, i, pos[users[0]].index):
				c.class[in] = classFolded
			}
		}
	}
	// A compare folded into its branch reads its operands at the
	// terminator; a load folded into such a compare would be re-read at
	// the terminator too, past possible stores. Unfold those loads.
	for _, b := range f.Blocks {
		barrier := barrierPositions(b)
		for i, in := range b.Instrs {
			if in.Op != ir.OpLoad || c.class[in] != classFolded {
				continue
			}
			u := uses.Uses(in)[0]
			if c.foldedCmp[u] != nil && !noBarrierBetween(barrier, i, len(b.Instrs)-1) {
				c.class[in] = classLocal
			}
		}
	}

	// Pass 3: effective use positions (folded users extend their
	// operands' lifetimes) and call-crossing demotion to slots.
	effLastUse := func(v *ir.Instr) instrPos {
		last := pos[v]
		var walk func(in *ir.Instr, seen map[*ir.Instr]bool)
		walk = func(in *ir.Instr, seen map[*ir.Instr]bool) {
			if seen[in] {
				return
			}
			seen[in] = true
			for _, up := range usePositions(in) {
				if up.block == last.block && up.index > last.index {
					last.index = up.index
				}
			}
			for _, u := range uses.Uses(in) {
				if c.class[u] == classFolded || c.class[u] == classAlias {
					walk(u, seen)
				}
				if cb := c.foldedCmp[in]; cb != nil {
					// handled by usePositions of the cmp's user below
					_ = cb
				}
			}
			// A folded compare is read at its consuming branch.
			if cb := c.foldedCmp[in]; cb != nil {
				if p := pos[cb]; p.block == last.block && p.index > last.index {
					last.index = p.index
				}
			}
		}
		walk(v, make(map[*ir.Instr]bool))
		return last
	}

	changed := true
	for changed {
		changed = false
		for _, b := range f.Blocks {
			callPos := callPositions(b)
			if len(callPos) == 0 {
				continue
			}
			for i, in := range b.Instrs {
				if c.class[in] != classLocal {
					continue
				}
				last := effLastUse(in)
				for _, cp := range callPos {
					if cp > i && cp < last.index {
						c.class[in] = classSlot
						changed = true
						break
					}
				}
			}
		}
		if !changed {
			break
		}
	}

	// Folded/alias values whose base inputs became slots are fine — the
	// materializer reloads them. But a folded value cannot itself be a
	// slot; keep classes consistent (folded wins over slot demotion is
	// impossible since folded was never classLocal at pass 3).

	// Pass 3.5: promote the hottest slot-class values and parameters into
	// global registers.
	c.assignGlobalRegs(f, usePositions)

	// Pass 4: materialized-read counts. A folded or aliased instruction
	// is rematerialized once per materialization of each of its users, so
	// multiplicities compose along folded/alias chains.
	memo := make(map[*ir.Instr]int)
	var mult func(in *ir.Instr) int
	mult = func(in *ir.Instr) int {
		switch c.class[in] {
		case classFolded, classAlias:
		default:
			return 1
		}
		if m, ok := memo[in]; ok {
			return m
		}
		memo[in] = 1 // cycle guard; SSA use chains are acyclic anyway
		m := 0
		for _, u := range uses.Uses(in) {
			m += mult(u)
		}
		if m == 0 {
			m = 1
		}
		memo[in] = m
		return m
	}
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			m := mult(in)
			for _, a := range in.Args {
				c.useCount[a] += m
			}
		}
	}

	// Pass 5: phi-copy coalescing candidates. A block-local value whose
	// only use is a global-register phi of the block's single successor
	// can be computed directly into that register, provided the phi's
	// previous value is dead by then (checked dynamically at lowering).
	for _, b := range f.Blocks {
		t := b.Terminator()
		if t == nil || len(t.Blocks) != 1 {
			continue
		}
		succ := t.Blocks[0]
		for _, phi := range succ.Instrs {
			if phi.Op != ir.OpPhi {
				break
			}
			_, hasG := c.globalReg[ir.Value(phi)]
			_, hasX := c.globalXmm[ir.Value(phi)]
			if !hasG && !hasX {
				continue
			}
			for i, pb := range phi.Blocks {
				if pb != b {
					continue
				}
				in, ok := phi.Args[i].(*ir.Instr)
				if !ok || in.Parent != b || c.class[in] != classLocal {
					continue
				}
				if len(uses.Uses(in)) == 1 && uses.Uses(in)[0] == phi {
					c.coalesce[in] = phi
				}
			}
		}
	}
	return c
}

// barrierPositions returns indices of stores and calls in b (instructions
// that can change memory, invalidating load folding across them).
func barrierPositions(b *ir.Block) []int {
	var out []int
	for i, in := range b.Instrs {
		if in.Op == ir.OpStore || in.Op == ir.OpCall {
			out = append(out, i)
		}
	}
	return out
}

func callPositions(b *ir.Block) []int {
	var out []int
	for i, in := range b.Instrs {
		if in.Op == ir.OpCall {
			out = append(out, i)
		}
	}
	return out
}

func noBarrierBetween(barriers []int, from, to int) bool {
	for _, p := range barriers {
		if p > from && p < to {
			return false
		}
	}
	return true
}

// loadFoldableInto reports whether a single-use load can become the memory
// operand of u.
func loadFoldableInto(u *ir.Instr) bool {
	switch {
	case u.Op == ir.OpAdd, u.Op == ir.OpSub, u.Op == ir.OpMul,
		u.Op == ir.OpAnd, u.Op == ir.OpOr, u.Op == ir.OpXor:
		return true
	case u.Op == ir.OpICmp:
		return true
	case u.Op == ir.OpFAdd, u.Op == ir.OpFSub, u.Op == ir.OpFMul, u.Op == ir.OpFDiv,
		u.Op == ir.OpFCmp:
		return true
	case u.Op == ir.OpSExt, u.Op == ir.OpZExt, u.Op == ir.OpSIToFP:
		return true
	default:
		return false
	}
}

// gepFoldable decides whether a GEP can disappear into the addressing
// modes of its users: every user must be a load or store (with the GEP as
// the address) in the same block, and the address must fit the
// [base + index*scale + disp] form.
func gepFoldable(in *ir.Instr, c *classification, users []*ir.Instr, b *ir.Block) bool {
	if len(users) == 0 {
		return false
	}
	for _, u := range users {
		switch u.Op {
		case ir.OpLoad:
			if u.Parent != b {
				return false
			}
		case ir.OpStore:
			// Only as the pointer operand, never as the stored value.
			if u.Parent != b || u.Args[1] != ir.Value(in) || u.Args[0] == ir.Value(in) {
				return false
			}
		default:
			return false
		}
	}
	_, ok := addressPlan(in)
	return ok
}

// addrPlan is a GEP flattened to the x86 addressing form.
type addrPlan struct {
	base  ir.Value // pointer base (nil means absolute)
	index ir.Value // nil if no variable index
	scale uint64
	disp  int64
}

// addressPlan flattens a GEP into base+index*scale+disp if possible:
// constant indices accumulate into disp; at most one variable index with a
// hardware scale (1, 2, 4, 8) is allowed.
func addressPlan(in *ir.Instr) (addrPlan, bool) {
	plan := addrPlan{base: in.Args[0], scale: 1}
	cur := in.Args[0].Type().Elem
	for i, idx := range in.Args[1:] {
		var stride uint64
		var structOff int64
		isStruct := false
		if i == 0 {
			stride = cur.Size()
		} else {
			switch cur.Kind {
			case ir.KindArray:
				cur = cur.Elem
				stride = cur.Size()
			case ir.KindStruct:
				cst, ok := idx.(*ir.Const)
				if !ok {
					return plan, false
				}
				fi := int(cst.Int())
				structOff = int64(cur.FieldOffset(fi))
				cur = cur.Fields[fi]
				isStruct = true
			default:
				return plan, false
			}
		}
		if isStruct {
			plan.disp += structOff
			continue
		}
		if cst, ok := idx.(*ir.Const); ok {
			plan.disp += cst.Int() * int64(stride)
			continue
		}
		// Variable index.
		if plan.index != nil {
			return plan, false
		}
		switch stride {
		case 1, 2, 4, 8:
			plan.index = idx
			plan.scale = stride
		default:
			return plan, false
		}
	}
	return plan, true
}

// Global register files available for cross-block values. Callee-saved
// GPRs survive calls (callees preserve them); XMM registers have no
// callee-saved subset in the SysV convention, so float values get global
// registers only in functions that make no user-function calls. Runtime
// builtins are treated as register-preserving instructions (they model
// hardware operations like SQRTSD plus a small kernel surface).
var (
	globalGPRs = []x86.Reg{x86.RBX, x86.R12, x86.R13, x86.R14, x86.R15}
	globalXMMs = []x86.XReg{x86.XMM8, x86.XMM9, x86.XMM10, x86.XMM11, x86.XMM12, x86.XMM13}
)

// assignGlobalRegs ranks slot-class values and parameters by estimated
// dynamic access frequency (static accesses weighted by loop depth) and
// assigns the hottest to global registers.
func (c *classification) assignGlobalRegs(f *ir.Function, usePositions func(*ir.Instr) []instrPos) {
	depth := ir.LoopDepths(f)
	hasUserCalls := false
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpCall && in.Callee != nil {
				hasUserCalls = true
			}
		}
	}
	w := func(b *ir.Block) float64 {
		d := depth[b]
		if d > 8 {
			d = 8
		}
		weight := 1.0
		for i := 0; i < d; i++ {
			weight *= 4
		}
		return weight
	}

	type cand struct {
		v       ir.Value
		isFloat bool
		weight  float64
	}
	var cands []cand
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if c.class[in] != classSlot {
				continue
			}
			k := in.Ty.Kind
			if k != ir.KindInt && k != ir.KindPtr && k != ir.KindFloat {
				continue
			}
			weight := w(b)
			for _, up := range usePositions(in) {
				weight += w(up.block)
			}
			cands = append(cands, cand{v: in, isFloat: k == ir.KindFloat, weight: weight})
		}
	}
	uses := ir.ComputeUses(f)
	for _, p := range f.Params {
		weight := 0.0
		for _, u := range uses.Uses(p) {
			weight += w(u.Parent)
		}
		if weight > 0 {
			cands = append(cands, cand{v: p, isFloat: p.Ty.IsFloat(), weight: weight})
		}
	}
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].weight > cands[j].weight })

	gprFile := globalGPRs
	if !hasUserCalls {
		// Call-free functions can claim caller-saved registers too —
		// nothing will clobber them.
		gprFile = append(append([]x86.Reg{}, globalGPRs...), x86.R10, x86.R9)
	}
	nextG, nextX := 0, 0
	for _, cd := range cands {
		if cd.isFloat {
			if hasUserCalls || nextX >= len(globalXMMs) {
				continue
			}
			c.globalXmm[cd.v] = globalXMMs[nextX]
			nextX++
		} else {
			if nextG >= len(gprFile) {
				continue
			}
			c.globalReg[cd.v] = gprFile[nextG]
			nextG++
		}
		if in, ok := cd.v.(*ir.Instr); ok {
			c.class[in] = classGReg
		}
	}
}

package codegen

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"hlfi/internal/interp"
	"hlfi/internal/machine"
	"hlfi/internal/minic"
)

// TestRegisterPressureSpill generates an expression with dozens of
// simultaneously-live values, forcing the local allocator through its
// spill path, and checks semantics differentially.
func TestRegisterPressureSpill(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("int vals[40];\nint main() {\n")
	sb.WriteString("    for (int i = 0; i < 40; i++) vals[i] = i * 3 + 1;\n")
	// One expression reading 32 array cells: every load is live until
	// the final fold.
	sb.WriteString("    long r = (long)(")
	for i := 0; i < 32; i++ {
		if i > 0 {
			sb.WriteString(" + ")
		}
		fmt.Fprintf(&sb, "vals[%d] * vals[%d]", i, 39-i)
	}
	sb.WriteString(");\n")
	sb.WriteString("    print_long(r); print_str(\"\\n\");\n    return 0;\n}\n")

	mod, err := minic.Compile("stress", sb.String())
	if err != nil {
		t.Fatal(err)
	}
	prep, err := interp.Prepare(mod)
	if err != nil {
		t.Fatal(err)
	}
	var irOut bytes.Buffer
	if _, err := interp.NewRunner(prep, &irOut).Run(); err != nil {
		t.Fatal(err)
	}
	prog, err := Lower(mod, prep.Layout, DefaultOptions())
	if err != nil {
		t.Fatalf("high-pressure lowering failed: %v", err)
	}
	var asmOut bytes.Buffer
	if _, err := machine.New(prog, prep.Layout.Image, prep.Layout.Base, &asmOut).Run(); err != nil {
		t.Fatal(err)
	}
	if irOut.String() != asmOut.String() {
		t.Fatalf("pressure divergence: %q vs %q", irOut.String(), asmOut.String())
	}
}

// TestFloatPressureSpill does the same for the XMM file.
func TestFloatPressureSpill(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("double vals[32];\nint main() {\n")
	sb.WriteString("    for (int i = 0; i < 32; i++) vals[i] = (double)i * 0.5 + 1.0;\n")
	sb.WriteString("    double r = ")
	for i := 0; i < 24; i++ {
		if i > 0 {
			sb.WriteString(" + ")
		}
		fmt.Fprintf(&sb, "vals[%d] * vals[%d]", i, 31-i)
	}
	sb.WriteString(";\n    print_double(r); print_str(\"\\n\");\n    return 0;\n}\n")

	mod, err := minic.Compile("fstress", sb.String())
	if err != nil {
		t.Fatal(err)
	}
	prep, err := interp.Prepare(mod)
	if err != nil {
		t.Fatal(err)
	}
	var irOut bytes.Buffer
	if _, err := interp.NewRunner(prep, &irOut).Run(); err != nil {
		t.Fatal(err)
	}
	prog, err := Lower(mod, prep.Layout, DefaultOptions())
	if err != nil {
		t.Fatalf("XMM-pressure lowering failed: %v", err)
	}
	var asmOut bytes.Buffer
	if _, err := machine.New(prog, prep.Layout.Image, prep.Layout.Base, &asmOut).Run(); err != nil {
		t.Fatal(err)
	}
	if irOut.String() != asmOut.String() {
		t.Fatalf("XMM pressure divergence: %q vs %q", irOut.String(), asmOut.String())
	}
}

// TestDeepCallChain exercises frames, callee-saved registers and the
// return-address stack across deep recursion at both levels.
func TestDeepCallChain(t *testing.T) {
	src := `
int collatzLen(long n) {
    if (n == 1) return 1;
    if (n % 2 == 0) return 1 + collatzLen(n / 2);
    return 1 + collatzLen(3 * n + 1);
}
int main() {
    int best = 0;
    int arg = 0;
    for (int i = 1; i <= 60; i++) {
        int l = collatzLen((long)i);
        if (l > best) { best = l; arg = i; }
    }
    print_int(best); print_str(" ");
    print_int(arg); print_str("\n");
    return 0;
}
`
	mod, err := minic.Compile("collatz", src)
	if err != nil {
		t.Fatal(err)
	}
	prep, err := interp.Prepare(mod)
	if err != nil {
		t.Fatal(err)
	}
	var irOut bytes.Buffer
	if _, err := interp.NewRunner(prep, &irOut).Run(); err != nil {
		t.Fatal(err)
	}
	prog, err := Lower(mod, prep.Layout, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var asmOut bytes.Buffer
	if _, err := machine.New(prog, prep.Layout.Image, prep.Layout.Base, &asmOut).Run(); err != nil {
		t.Fatal(err)
	}
	if irOut.String() != asmOut.String() {
		t.Fatalf("collatz divergence: %q vs %q", irOut.String(), asmOut.String())
	}
	if !strings.HasPrefix(irOut.String(), "113 54") {
		t.Fatalf("collatz answer (54 has the longest chain under 60): %q", irOut.String())
	}
}

// TestSixIntArgsAndEightFloatArgs pins the calling-convention limits.
func TestArgLimits(t *testing.T) {
	ok := `
double mix(int a, int b, int c, int d, int e, int f,
           double x1, double x2, double x3, double x4,
           double x5, double x6, double x7, double x8) {
    return (double)(a + b + c + d + e + f) + x1 + x2 + x3 + x4 + x5 + x6 + x7 + x8;
}
int main() {
    double r = mix(1, 2, 3, 4, 5, 6, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5);
    print_double(r); print_str("\n");
    return 0;
}
`
	out, _ := runBoth(t, ok)
	if out != "25\n" {
		t.Fatalf("mixed args: %q", out)
	}

	tooMany := `
int f(int a, int b, int c, int d, int e, int f0, int g) { return g; }
int main() { return f(1,2,3,4,5,6,7); }
`
	mod, err := minic.Compile("toomany", tooMany)
	if err != nil {
		t.Fatal(err)
	}
	prep, err := interp.Prepare(mod)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Lower(mod, prep.Layout, DefaultOptions()); err == nil {
		t.Fatal("7 integer args must be rejected by the backend")
	}
}

package codegen

import (
	"fmt"
	"math"

	"hlfi/internal/ir"
	"hlfi/internal/x86"
)

// Register pools. RAX and RDX are reserved for division and returns; R11
// is the assembler temporary; RSP/RBP hold the stack and frame pointers.
// Callee-saved registers sit at the end of the pool so they are touched
// (and therefore pushed/popped) only under pressure.
var gprPool = []x86.Reg{
	x86.RCX, x86.RSI, x86.RDI, x86.R8, x86.R9, x86.R10,
	x86.RBX, x86.R12, x86.R13, x86.R14, x86.R15,
}

// XMM0-7 carry float arguments; the allocator prefers the upper half.
// XMM15 is the float assembler temporary.
// intArgRegs and fltArgRegs alias the shared calling-convention order.
var (
	intArgRegs = x86.IntArgRegs
	fltArgRegs = x86.FloatArgRegs
)

var xmmPool = []x86.XReg{
	x86.XMM8, x86.XMM9, x86.XMM10, x86.XMM11, x86.XMM12, x86.XMM13, x86.XMM14,
	x86.XMM1, x86.XMM2, x86.XMM3, x86.XMM4, x86.XMM5, x86.XMM6, x86.XMM7,
}

// fnLowerer lowers one function.
type fnLowerer struct {
	mod  *moduleLowerer
	fn   *ir.Function
	cls  *classification
	opts Options

	body        []x86.Instr
	labelOf     map[*ir.Block]int
	labelPos    []int          // label id -> body index
	callTargets map[int]string // body index -> callee name
	epilogueLbl int

	slotOff    map[ir.Value]int64 // rbp-relative: addr = rbp - off
	allocaOff  map[*ir.Instr]int64
	frameBytes int64
	calleeUsed map[x86.Reg]bool

	remaining map[ir.Value]int

	regOwner map[x86.Reg]*ir.Instr
	xmmOwner map[x86.XReg]*ir.Instr
	valReg   map[*ir.Instr]x86.Reg
	valXmm   map[*ir.Instr]x86.XReg
	spilled  map[*ir.Instr]bool

	pinned  map[x86.Reg]bool
	pinnedX map[x86.XReg]bool
	temps   []x86.Reg
	tempsX  []x86.XReg
	frees   []*ir.Instr
	// coalesced marks values computed directly into their phi's global
	// register this block.
	coalesced map[*ir.Instr]bool

	// Per-function allocator pools (package pools minus the registers
	// assigned as global registers by the classifier).
	gpool []x86.Reg
	xpool []x86.XReg
}

// isGlobalGPR reports whether r is one of this function's global
// registers.
func (l *fnLowerer) isGlobalGPR(r x86.Reg) bool {
	for _, gr := range l.cls.globalReg {
		if gr == r {
			return true
		}
	}
	return false
}

func (l *fnLowerer) emit(in x86.Instr) int {
	l.body = append(l.body, in)
	return len(l.body) - 1
}

// newLabel creates an unresolved label id.
func (l *fnLowerer) newLabel() int {
	l.labelPos = append(l.labelPos, -1)
	return len(l.labelPos) - 1
}

func (l *fnLowerer) defineLabel(id int) { l.labelPos[id] = len(l.body) }

// slotFor assigns (or returns) the stack slot of a value.
func (l *fnLowerer) slotFor(v ir.Value) int64 {
	if off, ok := l.slotOff[v]; ok {
		return off
	}
	l.frameBytes += 8
	l.slotOff[v] = l.frameBytes
	return l.frameBytes
}

func (l *fnLowerer) slotOperand(v ir.Value) x86.Operand {
	return x86.Mem(x86.RBP, x86.RegNone, 1, -l.slotFor(v))
}

// resolve follows value aliases (bitcasts).
func (l *fnLowerer) resolve(v ir.Value) ir.Value {
	for {
		in, ok := v.(*ir.Instr)
		if !ok || l.cls.class[in] != classAlias {
			return v
		}
		v = in.Args[0]
	}
}

// consume decrements a value's remaining-read counter; local registers
// are freed at end-of-instruction when it reaches zero.
func (l *fnLowerer) consume(v ir.Value) {
	in, ok := v.(*ir.Instr)
	if !ok {
		return
	}
	l.remaining[in]--
	if l.remaining[in] <= 0 && l.cls.class[in] == classLocal {
		l.frees = append(l.frees, in)
	}
}

// endInstr releases temps and dead bindings after one IR instruction.
func (l *fnLowerer) endInstr() {
	for _, in := range l.frees {
		if r, ok := l.valReg[in]; ok {
			delete(l.valReg, in)
			delete(l.regOwner, r)
		}
		if x, ok := l.valXmm[in]; ok {
			delete(l.valXmm, in)
			delete(l.xmmOwner, x)
		}
		delete(l.spilled, in)
	}
	l.frees = l.frees[:0]
	for _, r := range l.temps {
		delete(l.regOwner, r)
	}
	for _, x := range l.tempsX {
		delete(l.xmmOwner, x)
		delete(l.pinnedX, x)
	}
	l.temps = l.temps[:0]
	l.tempsX = l.tempsX[:0]
	l.pinned = map[x86.Reg]bool{}
	l.pinnedX = map[x86.XReg]bool{}
}

// resetBlock clears all register state at a block boundary (no local
// value lives across blocks by construction).
func (l *fnLowerer) resetBlock() {
	l.regOwner = map[x86.Reg]*ir.Instr{}
	l.xmmOwner = map[x86.XReg]*ir.Instr{}
	l.valReg = map[*ir.Instr]x86.Reg{}
	l.valXmm = map[*ir.Instr]x86.XReg{}
	l.spilled = map[*ir.Instr]bool{}
	l.pinned = map[x86.Reg]bool{}
	l.pinnedX = map[x86.XReg]bool{}
	l.temps = l.temps[:0]
	l.tempsX = l.tempsX[:0]
	l.frees = l.frees[:0]
	l.coalesced = map[*ir.Instr]bool{}
}

// allocGPR grabs a free pool register, spilling an unpinned victim's
// value to its slot when the pool is exhausted.
func (l *fnLowerer) allocGPR() (x86.Reg, error) {
	for _, r := range l.gpool {
		if _, busy := l.regOwner[r]; !busy && !l.pinned[r] {
			l.regOwner[r] = nil
			l.pinned[r] = true
			if r.IsCalleeSaved() {
				l.calleeUsed[r] = true
			}
			return r, nil
		}
	}
	for _, r := range l.gpool {
		owner := l.regOwner[r]
		if owner == nil || l.pinned[r] {
			continue
		}
		// Spill the owner to its slot.
		l.emit(x86.Instr{Op: x86.MOV, Dst: l.slotOperand(owner), Src: x86.R(r), Size: 8})
		l.spilled[owner] = true
		delete(l.valReg, owner)
		l.regOwner[r] = nil
		l.pinned[r] = true
		return r, nil
	}
	return 0, fmt.Errorf("codegen: out of integer registers in @%s", l.fn.Name)
}

func (l *fnLowerer) allocTempGPR() (x86.Reg, error) {
	r, err := l.allocGPR()
	if err != nil {
		return 0, err
	}
	l.temps = append(l.temps, r)
	return r, nil
}

func (l *fnLowerer) allocXMM() (x86.XReg, error) {
	for _, x := range l.xpool {
		if _, busy := l.xmmOwner[x]; !busy && !l.pinnedX[x] {
			l.xmmOwner[x] = nil
			l.pinnedX[x] = true
			return x, nil
		}
	}
	for _, x := range l.xpool {
		owner := l.xmmOwner[x]
		if owner == nil || l.pinnedX[x] {
			continue
		}
		l.emit(x86.Instr{Op: x86.MOVSD, Dst: l.slotOperand(owner), Src: x86.X(x)})
		l.spilled[owner] = true
		delete(l.valXmm, owner)
		l.xmmOwner[x] = nil
		l.pinnedX[x] = true
		return x, nil
	}
	return 0, fmt.Errorf("codegen: out of float registers in @%s", l.fn.Name)
}

func (l *fnLowerer) allocTempXMM() (x86.XReg, error) {
	x, err := l.allocXMM()
	if err != nil {
		return 0, err
	}
	l.tempsX = append(l.tempsX, x)
	return x, nil
}

// bindReg records that in's value now lives in r.
func (l *fnLowerer) bindReg(in *ir.Instr, r x86.Reg) {
	l.valReg[in] = r
	l.regOwner[r] = in
	// Remove from temps if present: the register now belongs to a value.
	for i, t := range l.temps {
		if t == r {
			l.temps = append(l.temps[:i], l.temps[i+1:]...)
			break
		}
	}
}

func (l *fnLowerer) bindXmm(in *ir.Instr, x x86.XReg) {
	l.valXmm[in] = x
	l.xmmOwner[x] = in
	for i, t := range l.tempsX {
		if t == x {
			l.tempsX = append(l.tempsX[:i], l.tempsX[i+1:]...)
			break
		}
	}
}

// useGPR materializes v into a general-purpose register and pins it for
// the current IR instruction.
func (l *fnLowerer) useGPR(v ir.Value) (x86.Reg, error) {
	v = l.resolve(v)
	switch t := v.(type) {
	case *ir.Const:
		r, err := l.allocTempGPR()
		if err != nil {
			return 0, err
		}
		l.emit(x86.Instr{Op: x86.MOV, Dst: x86.R(r), Src: x86.Imm(int64(t.Val)), Size: 8})
		return r, nil
	case *ir.Global:
		r, err := l.allocTempGPR()
		if err != nil {
			return 0, err
		}
		l.emit(x86.Instr{Op: x86.MOV, Dst: x86.R(r), Src: x86.Imm(int64(l.mod.globalAddr(t))), Size: 8})
		return r, nil
	case *ir.Param:
		if gr, ok := l.cls.globalReg[t]; ok {
			l.pinned[gr] = true
			return gr, nil
		}
		r, err := l.allocTempGPR()
		if err != nil {
			return 0, err
		}
		l.emit(x86.Instr{Op: x86.MOV, Dst: x86.R(r), Src: l.slotOperand(t), Size: 8})
		return r, nil
	case *ir.Instr:
		switch l.cls.class[t] {
		case classGReg:
			gr := l.cls.globalReg[t]
			l.pinned[gr] = true
			l.consume(t)
			return gr, nil
		case classLocal:
			if r, ok := l.valReg[t]; ok {
				l.pinned[r] = true
				l.consume(t)
				return r, nil
			}
			if l.spilled[t] {
				r, err := l.allocGPR()
				if err != nil {
					return 0, err
				}
				l.emit(x86.Instr{Op: x86.MOV, Dst: x86.R(r), Src: l.slotOperand(t), Size: 8})
				l.bindReg(t, r)
				delete(l.spilled, t)
				l.consume(t)
				return r, nil
			}
			return 0, fmt.Errorf("codegen: local %%%d has no location in @%s", t.ID, l.fn.Name)
		case classSlot:
			if r, ok := l.valReg[t]; ok { // cached from the defining store
				l.pinned[r] = true
				l.consume(t)
				return r, nil
			}
			r, err := l.allocTempGPR()
			if err != nil {
				return 0, err
			}
			l.emit(x86.Instr{Op: x86.MOV, Dst: x86.R(r), Src: l.slotOperand(t), Size: 8})
			l.consume(t)
			return r, nil
		case classFrame:
			r, err := l.allocTempGPR()
			if err != nil {
				return 0, err
			}
			l.emit(x86.Instr{Op: x86.LEA, Dst: x86.R(r), Src: x86.Mem(x86.RBP, x86.RegNone, 1, -l.allocaOff[t])})
			l.consume(t)
			return r, nil
		case classFolded:
			switch t.Op {
			case ir.OpGEP:
				mop, err := l.foldedAddr(t)
				if err != nil {
					return 0, err
				}
				r, err := l.allocTempGPR()
				if err != nil {
					return 0, err
				}
				l.emit(x86.Instr{Op: x86.LEA, Dst: x86.R(r), Src: mop})
				l.consume(t)
				return r, nil
			case ir.OpLoad:
				mop, err := l.memOperand(t.Args[0])
				if err != nil {
					return 0, err
				}
				r, err := l.allocTempGPR()
				if err != nil {
					return 0, err
				}
				l.emitLoadInt(r, mop, t.Ty.Size())
				l.consume(t)
				return r, nil
			}
		}
		return 0, fmt.Errorf("codegen: cannot materialize %%%d (class %d)", t.ID, l.cls.class[t])
	}
	return 0, fmt.Errorf("codegen: cannot materialize operand %T", v)
}

// emitLoadInt loads an integer of the given size, zero-extending narrow
// widths to keep the canonical value form.
func (l *fnLowerer) emitLoadInt(dst x86.Reg, mop x86.Operand, size uint64) {
	if size < 8 {
		l.emit(x86.Instr{Op: x86.MOVZX, Dst: x86.R(dst), Src: mop, Size: uint8(size)})
	} else {
		l.emit(x86.Instr{Op: x86.MOV, Dst: x86.R(dst), Src: mop, Size: 8})
	}
}

// useXMM materializes a double value into an XMM register.
func (l *fnLowerer) useXMM(v ir.Value) (x86.XReg, error) {
	v = l.resolve(v)
	switch t := v.(type) {
	case *ir.Const:
		x, err := l.allocTempXMM()
		if err != nil {
			return 0, err
		}
		addr := l.mod.floatConst(math.Float64frombits(t.Val))
		l.emit(x86.Instr{Op: x86.MOVSD, Dst: x86.X(x), Src: x86.Abs(int64(addr))})
		return x, nil
	case *ir.Param:
		if gx, ok := l.cls.globalXmm[t]; ok {
			l.pinnedX[gx] = true
			return gx, nil
		}
		x, err := l.allocTempXMM()
		if err != nil {
			return 0, err
		}
		l.emit(x86.Instr{Op: x86.MOVSD, Dst: x86.X(x), Src: l.slotOperand(t)})
		return x, nil
	case *ir.Instr:
		switch l.cls.class[t] {
		case classGReg:
			gx := l.cls.globalXmm[t]
			l.pinnedX[gx] = true
			l.consume(t)
			return gx, nil
		case classLocal:
			if x, ok := l.valXmm[t]; ok {
				l.pinnedX[x] = true
				l.consume(t)
				return x, nil
			}
			if l.spilled[t] {
				x, err := l.allocXMM()
				if err != nil {
					return 0, err
				}
				l.emit(x86.Instr{Op: x86.MOVSD, Dst: x86.X(x), Src: l.slotOperand(t)})
				l.bindXmm(t, x)
				delete(l.spilled, t)
				l.consume(t)
				return x, nil
			}
			return 0, fmt.Errorf("codegen: float local %%%d has no location", t.ID)
		case classSlot:
			if x, ok := l.valXmm[t]; ok {
				l.pinnedX[x] = true
				l.consume(t)
				return x, nil
			}
			x, err := l.allocTempXMM()
			if err != nil {
				return 0, err
			}
			l.emit(x86.Instr{Op: x86.MOVSD, Dst: x86.X(x), Src: l.slotOperand(t)})
			l.consume(t)
			return x, nil
		case classFolded:
			if t.Op == ir.OpLoad {
				mop, err := l.memOperand(t.Args[0])
				if err != nil {
					return 0, err
				}
				x, err := l.allocTempXMM()
				if err != nil {
					return 0, err
				}
				l.emit(x86.Instr{Op: x86.MOVSD, Dst: x86.X(x), Src: mop})
				l.consume(t)
				return x, nil
			}
		}
		return 0, fmt.Errorf("codegen: cannot materialize float %%%d", t.ID)
	}
	return 0, fmt.Errorf("codegen: cannot materialize float operand %T", v)
}

// intSrcOperand returns the cheapest source operand for an integer value:
// an immediate for constants, the register for live locals, a stack-slot
// or folded-load memory operand otherwise.
func (l *fnLowerer) intSrcOperand(v ir.Value) (x86.Operand, error) {
	v = l.resolve(v)
	switch t := v.(type) {
	case *ir.Const:
		return x86.Imm(int64(t.Val)), nil
	case *ir.Param:
		if gr, ok := l.cls.globalReg[t]; ok {
			l.pinned[gr] = true
			return x86.R(gr), nil
		}
		l.slotFor(t)
		return l.slotOperand(t), nil
	case *ir.Instr:
		switch l.cls.class[t] {
		case classGReg:
			gr := l.cls.globalReg[t]
			l.pinned[gr] = true
			l.consume(t)
			return x86.R(gr), nil
		case classLocal:
			if r, ok := l.valReg[t]; ok {
				l.pinned[r] = true
				l.consume(t)
				return x86.R(r), nil
			}
		case classSlot:
			if r, ok := l.valReg[t]; ok {
				l.pinned[r] = true
				l.consume(t)
				return x86.R(r), nil
			}
			l.consume(t)
			return l.slotOperand(t), nil
		case classFolded:
			// A folded load reads memory at the consumer's operand size,
			// which equals the load's type size.
			if t.Op == ir.OpLoad {
				mop, err := l.memOperand(t.Args[0])
				if err != nil {
					return x86.Operand{}, err
				}
				l.consume(t)
				return mop, nil
			}
		}
	}
	// Fall back to a register.
	r, err := l.useGPR(v)
	if err != nil {
		return x86.Operand{}, err
	}
	return x86.R(r), nil
}

// floatSrcOperand is the float analogue of intSrcOperand.
func (l *fnLowerer) floatSrcOperand(v ir.Value) (x86.Operand, error) {
	v = l.resolve(v)
	switch t := v.(type) {
	case *ir.Const:
		addr := l.mod.floatConst(math.Float64frombits(t.Val))
		return x86.Abs(int64(addr)), nil
	case *ir.Param:
		if gx, ok := l.cls.globalXmm[t]; ok {
			l.pinnedX[gx] = true
			return x86.X(gx), nil
		}
		l.slotFor(t)
		return l.slotOperand(t), nil
	case *ir.Instr:
		switch l.cls.class[t] {
		case classGReg:
			gx := l.cls.globalXmm[t]
			l.pinnedX[gx] = true
			l.consume(t)
			return x86.X(gx), nil
		case classLocal:
			if x, ok := l.valXmm[t]; ok {
				l.pinnedX[x] = true
				l.consume(t)
				return x86.X(x), nil
			}
		case classSlot:
			if x, ok := l.valXmm[t]; ok {
				l.pinnedX[x] = true
				l.consume(t)
				return x86.X(x), nil
			}
			l.consume(t)
			return l.slotOperand(t), nil
		case classFolded:
			if t.Op == ir.OpLoad {
				mop, err := l.memOperand(t.Args[0])
				if err != nil {
					return x86.Operand{}, err
				}
				l.consume(t)
				return mop, nil
			}
		}
	}
	x, err := l.useXMM(v)
	if err != nil {
		return x86.Operand{}, err
	}
	return x86.X(x), nil
}

// memOperand builds the addressing-mode operand for a pointer value,
// folding frame addresses, global addresses, and foldable GEPs.
func (l *fnLowerer) memOperand(ptr ir.Value) (x86.Operand, error) {
	ptr = l.resolve(ptr)
	switch t := ptr.(type) {
	case *ir.Global:
		return x86.Abs(int64(l.mod.globalAddr(t))), nil
	case *ir.Const:
		return x86.Abs(int64(t.Val)), nil
	case *ir.Instr:
		switch l.cls.class[t] {
		case classFrame:
			l.consume(t)
			return x86.Mem(x86.RBP, x86.RegNone, 1, -l.allocaOff[t]), nil
		case classFolded:
			if t.Op == ir.OpGEP {
				mop, err := l.foldedAddr(t)
				if err != nil {
					return x86.Operand{}, err
				}
				l.consume(t)
				return mop, nil
			}
		}
	}
	r, err := l.useGPR(ptr)
	if err != nil {
		return x86.Operand{}, err
	}
	return x86.Mem(r, x86.RegNone, 1, 0), nil
}

// foldedAddr builds the [base + index*scale + disp] operand of a foldable
// GEP.
func (l *fnLowerer) foldedAddr(gep *ir.Instr) (x86.Operand, error) {
	plan, ok := addressPlan(gep)
	if !ok {
		return x86.Operand{}, fmt.Errorf("codegen: GEP %%%d not foldable after all", gep.ID)
	}
	return l.planOperand(plan)
}

// defInt picks the destination register for an integer result. When the
// value is a coalescing candidate and its phi's previous value is already
// dead, the phi's global register is used directly and the phi move is
// elided.
func (l *fnLowerer) defInt(in *ir.Instr) (x86.Reg, error) {
	if phi, ok := l.cls.coalesce[in]; ok {
		if g, isG := l.cls.globalReg[ir.Value(phi)]; isG && l.remaining[phi] <= 0 {
			l.pinned[g] = true
			l.coalesced[in] = true
			return g, nil
		}
	}
	return l.allocGPR()
}

// finishInt records an integer result: locals bind to the register; slot
// values are stored to their stack slot.
func (l *fnLowerer) finishInt(in *ir.Instr, r x86.Reg) {
	if l.coalesced[in] {
		// The value sits in its phi's global register; nothing to store
		// and nothing to bind (its only reader is the elided phi move).
		return
	}
	switch l.cls.class[in] {
	case classGReg:
		l.emit(x86.Instr{Op: x86.MOV, Dst: x86.R(l.cls.globalReg[in]), Src: x86.R(r), Size: 8})
		l.temps = append(l.temps, r)
	case classSlot:
		// Write-through: the slot is the home, but the register stays
		// bound as a cache until the block ends or pressure evicts it.
		l.emit(x86.Instr{Op: x86.MOV, Dst: l.slotOperand(in), Src: x86.R(r), Size: 8})
		l.bindReg(in, r)
		if l.remaining[in] <= 0 {
			l.frees = append(l.frees, in)
		}
	default:
		l.bindReg(in, r)
		if l.remaining[in] <= 0 {
			l.frees = append(l.frees, in)
		}
	}
}

func (l *fnLowerer) defXmm(in *ir.Instr) (x86.XReg, error) {
	if phi, ok := l.cls.coalesce[in]; ok {
		if g, isG := l.cls.globalXmm[ir.Value(phi)]; isG && l.remaining[phi] <= 0 {
			l.pinnedX[g] = true
			l.coalesced[in] = true
			return g, nil
		}
	}
	return l.allocXMM()
}

func (l *fnLowerer) finishXmm(in *ir.Instr, x x86.XReg) {
	if l.coalesced[in] {
		return
	}
	switch l.cls.class[in] {
	case classGReg:
		l.emit(x86.Instr{Op: x86.MOVSD, Dst: x86.X(l.cls.globalXmm[in]), Src: x86.X(x)})
		l.tempsX = append(l.tempsX, x)
	case classSlot:
		l.emit(x86.Instr{Op: x86.MOVSD, Dst: l.slotOperand(in), Src: x86.X(x)})
		l.bindXmm(in, x)
		if l.remaining[in] <= 0 {
			l.frees = append(l.frees, in)
		}
	default:
		l.bindXmm(in, x)
		if l.remaining[in] <= 0 {
			l.frees = append(l.frees, in)
		}
	}
}

package codegen

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"hlfi/internal/interp"
	"hlfi/internal/machine"
	"hlfi/internal/minic"
)

// progGen generates random (but always terminating and well-defined)
// minic programs. Differentially executing them at the IR level and the
// machine level is the deepest invariant in the repository: the two
// fault-injection substrates must agree exactly on fault-free semantics.
type progGen struct {
	rng *rand.Rand
	sb  strings.Builder
}

func (g *progGen) intLit() string {
	return fmt.Sprintf("%d", g.rng.Intn(2001)-1000)
}

// intExpr builds an expression over int variables a, b and array cells.
func (g *progGen) intExpr(depth int) string {
	if depth <= 0 {
		switch g.rng.Intn(4) {
		case 0:
			return g.intLit()
		case 1:
			return "a"
		case 2:
			return "b"
		default:
			return fmt.Sprintf("arr[%d]", g.rng.Intn(8))
		}
	}
	l := g.intExpr(depth - 1)
	r := g.intExpr(depth - 1)
	switch g.rng.Intn(12) {
	case 0:
		return fmt.Sprintf("(%s + %s)", l, r)
	case 1:
		return fmt.Sprintf("(%s - %s)", l, r)
	case 2:
		return fmt.Sprintf("(%s * %s)", l, r)
	case 3:
		// Division by a nonzero literal only: both levels trap on /0 and
		// on INT_MIN/-1, but trapping programs are not useful here.
		return fmt.Sprintf("(%s / %d)", l, g.rng.Intn(9)+1)
	case 4:
		return fmt.Sprintf("(%s %% %d)", l, g.rng.Intn(9)+1)
	case 5:
		return fmt.Sprintf("(%s & %s)", l, r)
	case 6:
		return fmt.Sprintf("(%s | %s)", l, r)
	case 7:
		return fmt.Sprintf("(%s ^ %s)", l, r)
	case 8:
		return fmt.Sprintf("(%s << %d)", l, g.rng.Intn(12))
	case 9:
		return fmt.Sprintf("(%s >> %d)", l, g.rng.Intn(12))
	case 10:
		return fmt.Sprintf("(%s < %s ? %s : %s)", l, r, g.intExpr(0), g.intExpr(0))
	default:
		return fmt.Sprintf("(%s == %s)", l, r)
	}
}

func (g *progGen) boolExpr() string {
	l, r := g.intExpr(1), g.intExpr(1)
	ops := []string{"<", "<=", ">", ">=", "==", "!="}
	cmp := fmt.Sprintf("%s %s %s", l, ops[g.rng.Intn(len(ops))], r)
	switch g.rng.Intn(3) {
	case 0:
		return cmp
	case 1:
		return fmt.Sprintf("(%s) && (%s != 0)", cmp, g.intExpr(0))
	default:
		return fmt.Sprintf("(%s) || (%s > 2)", cmp, g.intExpr(0))
	}
}

func (g *progGen) dblExpr(depth int) string {
	if depth <= 0 {
		switch g.rng.Intn(3) {
		case 0:
			return fmt.Sprintf("%d.%d", g.rng.Intn(50), g.rng.Intn(100))
		case 1:
			return "x"
		default:
			return "(double)a"
		}
	}
	l := g.dblExpr(depth - 1)
	r := g.dblExpr(depth - 1)
	switch g.rng.Intn(4) {
	case 0:
		return fmt.Sprintf("(%s + %s)", l, r)
	case 1:
		return fmt.Sprintf("(%s - %s)", l, r)
	case 2:
		return fmt.Sprintf("(%s * 0.5 + %s)", l, r)
	default:
		return fmt.Sprintf("(%s / 4.0)", l)
	}
}

func (g *progGen) generate() string {
	g.sb.Reset()
	w := func(format string, args ...interface{}) { fmt.Fprintf(&g.sb, format, args...) }
	w("int arr[8] = {%d, %d, %d, %d, %d};\n",
		g.rng.Intn(100), g.rng.Intn(100), g.rng.Intn(100), g.rng.Intn(100), g.rng.Intn(100))
	w("int helper(int v) { return v * %d + %d; }\n", g.rng.Intn(7)+1, g.rng.Intn(20))
	w("int main() {\n")
	w("    int a = %s;\n    int b = %s;\n    long acc = 0;\n    double x = %s;\n",
		g.intLit(), g.intLit(), g.dblExpr(1))
	iters := g.rng.Intn(8) + 2
	w("    for (int i = 0; i < %d; i++) {\n", iters)
	for s := 0; s < g.rng.Intn(4)+1; s++ {
		switch g.rng.Intn(5) {
		case 0:
			w("        a = %s;\n", g.intExpr(2))
		case 1:
			w("        b = helper(%s);\n", g.intExpr(1))
		case 2:
			w("        if (%s) { b = %s; } else { a = %s; }\n",
				g.boolExpr(), g.intExpr(1), g.intExpr(1))
		case 3:
			w("        arr[i %% 8] = %s;\n", g.intExpr(1))
		default:
			w("        x = %s;\n", g.dblExpr(2))
		}
	}
	w("        acc += a + b;\n")
	w("    }\n")
	w("    print_int(a); print_str(\" \");\n")
	w("    print_int(b); print_str(\" \");\n")
	w("    print_long(acc); print_str(\" \");\n")
	w("    print_double(x); print_str(\" \");\n")
	w("    for (int i = 0; i < 8; i++) { print_int(arr[i]); print_str(\",\"); }\n")
	w("    print_str(\"\\n\");\n")
	w("    return (int)(acc & 127);\n")
	w("}\n")
	return g.sb.String()
}

// TestDifferentialRandomPrograms is the toolchain's property test: for
// hundreds of random programs, the IR interpreter and the machine
// simulator must produce byte-identical output and exit codes.
func TestDifferentialRandomPrograms(t *testing.T) {
	count := 300
	if testing.Short() {
		count = 40
	}
	for seed := 0; seed < count; seed++ {
		g := &progGen{rng: rand.New(rand.NewSource(int64(seed)))}
		src := g.generate()
		mod, err := minic.Compile("rand", src)
		if err != nil {
			t.Fatalf("seed %d: compile: %v\n%s", seed, err, src)
		}
		prep, err := interp.Prepare(mod)
		if err != nil {
			t.Fatalf("seed %d: prepare: %v", seed, err)
		}
		var irOut bytes.Buffer
		irRC, err := interp.NewRunner(prep, &irOut).Run()
		if err != nil {
			t.Fatalf("seed %d: IR run: %v\n%s", seed, err, src)
		}
		prog, err := Lower(mod, prep.Layout, DefaultOptions())
		if err != nil {
			t.Fatalf("seed %d: lower: %v\n%s", seed, err, src)
		}
		var asmOut bytes.Buffer
		m := machine.New(prog, prep.Layout.Image, prep.Layout.Base, &asmOut)
		asmRC, err := m.Run()
		if err != nil {
			t.Fatalf("seed %d: machine: %v\nprogram:\n%s\nasm:\n%s",
				seed, err, src, prog.Disassemble())
		}
		if irOut.String() != asmOut.String() || irRC != asmRC {
			t.Fatalf("seed %d: DIVERGENCE\nIR : %q (rc=%d)\nASM: %q (rc=%d)\nprogram:\n%s",
				seed, irOut.String(), irRC, asmOut.String(), asmRC, src)
		}
	}
}

// TestDifferentialUnoptimized runs the same property against unoptimized
// IR (the ablation configuration).
func TestDifferentialUnoptimized(t *testing.T) {
	count := 60
	if testing.Short() {
		count = 10
	}
	for seed := 1000; seed < 1000+count; seed++ {
		g := &progGen{rng: rand.New(rand.NewSource(int64(seed)))}
		src := g.generate()
		mod, err := minic.CompileUnoptimized("rand", src)
		if err != nil {
			t.Fatalf("seed %d: compile: %v", seed, err)
		}
		prep, err := interp.Prepare(mod)
		if err != nil {
			t.Fatalf("seed %d: prepare: %v", seed, err)
		}
		var irOut bytes.Buffer
		irRC, err := interp.NewRunner(prep, &irOut).Run()
		if err != nil {
			t.Fatalf("seed %d: IR run: %v\n%s", seed, err, src)
		}
		prog, err := Lower(mod, prep.Layout, DefaultOptions())
		if err != nil {
			t.Fatalf("seed %d: lower: %v", seed, err)
		}
		var asmOut bytes.Buffer
		asmRC, err := machine.New(prog, prep.Layout.Image, prep.Layout.Base, &asmOut).Run()
		if err != nil {
			t.Fatalf("seed %d: machine: %v\n%s", seed, err, src)
		}
		if irOut.String() != asmOut.String() || irRC != asmRC {
			t.Fatalf("seed %d: DIVERGENCE (unoptimized)\nIR : %q\nASM: %q\n%s",
				seed, irOut.String(), asmOut.String(), src)
		}
	}
}

// TestDifferentialAblationConfigs runs the random-program property
// against every folding configuration: correctness must not depend on
// which optimizations are enabled.
func TestDifferentialAblationConfigs(t *testing.T) {
	if testing.Short() {
		t.Skip("slow matrix")
	}
	configs := []Options{
		{FoldGEP: false, FoldLoad: false, FuseCmpBranch: false},
		{FoldGEP: true, FoldLoad: false, FuseCmpBranch: false},
		{FoldGEP: false, FoldLoad: true, FuseCmpBranch: true},
		{FoldGEP: true, FoldLoad: true, FuseCmpBranch: false},
	}
	for ci, opts := range configs {
		for seed := 0; seed < 25; seed++ {
			g := &progGen{rng: rand.New(rand.NewSource(int64(5000 + seed)))}
			src := g.generate()
			mod, err := minic.Compile("abl", src)
			if err != nil {
				t.Fatalf("cfg %d seed %d: %v", ci, seed, err)
			}
			prep, err := interp.Prepare(mod)
			if err != nil {
				t.Fatal(err)
			}
			var irOut bytes.Buffer
			irRC, err := interp.NewRunner(prep, &irOut).Run()
			if err != nil {
				t.Fatalf("cfg %d seed %d IR: %v", ci, seed, err)
			}
			prog, err := Lower(mod, prep.Layout, opts)
			if err != nil {
				t.Fatalf("cfg %d seed %d lower: %v", ci, seed, err)
			}
			var asmOut bytes.Buffer
			asmRC, err := machine.New(prog, prep.Layout.Image, prep.Layout.Base, &asmOut).Run()
			if err != nil {
				t.Fatalf("cfg %d seed %d machine: %v\n%s", ci, seed, err, src)
			}
			if irOut.String() != asmOut.String() || irRC != asmRC {
				t.Fatalf("cfg %+v seed %d diverges:\nIR %q\nASM %q\n%s",
					opts, seed, irOut.String(), asmOut.String(), src)
			}
		}
	}
}

package codegen

import (
	"fmt"

	"hlfi/internal/ir"
	"hlfi/internal/x86"
)

var intALUOps = map[ir.Op]x86.Opcode{
	ir.OpAdd: x86.ADD, ir.OpSub: x86.SUB, ir.OpMul: x86.IMUL,
	ir.OpAnd: x86.AND, ir.OpOr: x86.OR, ir.OpXor: x86.XOR,
	ir.OpShl: x86.SHL, ir.OpLShr: x86.SHR, ir.OpAShr: x86.SAR,
}

var sseALUOps = map[ir.Op]x86.Opcode{
	ir.OpFAdd: x86.ADDSD, ir.OpFSub: x86.SUBSD,
	ir.OpFMul: x86.MULSD, ir.OpFDiv: x86.DIVSD,
}

// signedJcc maps predicates to jumps after an integer CMP.
var signedJcc = map[ir.Pred]x86.Opcode{
	ir.PredEQ: x86.JE, ir.PredNE: x86.JNE,
	ir.PredLT: x86.JL, ir.PredLE: x86.JLE, ir.PredGT: x86.JG, ir.PredGE: x86.JGE,
	ir.PredULT: x86.JB, ir.PredULE: x86.JBE, ir.PredUGT: x86.JA, ir.PredUGE: x86.JAE,
}

// unsignedJcc maps predicates to jumps after UCOMISD.
var unsignedJcc = map[ir.Pred]x86.Opcode{
	ir.PredEQ: x86.JE, ir.PredNE: x86.JNE,
	ir.PredLT: x86.JB, ir.PredLE: x86.JBE, ir.PredGT: x86.JA, ir.PredGE: x86.JAE,
}

var jccToSet = map[x86.Opcode]x86.Opcode{
	x86.JE: x86.SETE, x86.JNE: x86.SETNE,
	x86.JL: x86.SETL, x86.JLE: x86.SETLE, x86.JG: x86.SETG, x86.JGE: x86.SETGE,
	x86.JB: x86.SETB, x86.JBE: x86.SETBE, x86.JA: x86.SETA, x86.JAE: x86.SETAE,
}

var invertJcc = map[x86.Opcode]x86.Opcode{
	x86.JE: x86.JNE, x86.JNE: x86.JE,
	x86.JL: x86.JGE, x86.JGE: x86.JL, x86.JLE: x86.JG, x86.JG: x86.JLE,
	x86.JB: x86.JAE, x86.JAE: x86.JB, x86.JBE: x86.JA, x86.JA: x86.JBE,
}

// lowerInstr lowers one non-terminator IR instruction.
func (l *fnLowerer) lowerInstr(in *ir.Instr) error {
	defer l.endInstr()
	switch {
	case in.Op == ir.OpSDiv || in.Op == ir.OpSRem:
		return l.lowerDiv(in)
	case in.Op == ir.OpUDiv || in.Op == ir.OpURem:
		return fmt.Errorf("codegen: unsigned division not supported")
	case in.Op.IsIntArith():
		return l.lowerIntALU(in)
	case in.Op.IsFloatArith():
		return l.lowerFloatALU(in)
	case in.Op.IsCmp():
		return l.lowerCmpValue(in)
	case in.Op.IsCast():
		return l.lowerCast(in)
	}
	switch in.Op {
	case ir.OpAlloca, ir.OpPhi:
		return nil // frame plan / slot stores at predecessors
	case ir.OpGEP:
		return l.lowerGEP(in)
	case ir.OpLoad:
		return l.lowerLoad(in)
	case ir.OpStore:
		return l.lowerStore(in)
	case ir.OpCall:
		return l.lowerCall(in)
	default:
		return fmt.Errorf("codegen: unhandled op %s", in.Op)
	}
}

// commutative reports whether operands of op may swap.
func commutative(op ir.Op) bool {
	switch op {
	case ir.OpAdd, ir.OpMul, ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpFAdd, ir.OpFMul:
		return true
	default:
		return false
	}
}

// inRegisterAlready reports whether v already sits in a register (local
// binding or global register), so using it as the two-address destination
// side avoids a reload.
func (l *fnLowerer) inRegisterAlready(v ir.Value) bool {
	v = l.resolve(v)
	switch t := v.(type) {
	case *ir.Param:
		_, ok := l.cls.globalReg[ir.Value(t)]
		if !ok {
			_, ok = l.cls.globalXmm[ir.Value(t)]
		}
		return ok
	case *ir.Instr:
		switch l.cls.class[t] {
		case classGReg:
			return true
		case classLocal:
			if _, ok := l.valReg[t]; ok {
				return true
			}
			_, ok := l.valXmm[t]
			return ok
		}
	}
	return false
}

func (l *fnLowerer) lowerIntALU(in *ir.Instr) error {
	if l.cls.class[in] == classFolded {
		return nil
	}
	size := uint8(in.Ty.Size())
	a0, a1 := in.Args[0], in.Args[1]
	if commutative(in.Op) && !l.inRegisterAlready(a0) && l.inRegisterAlready(a1) {
		a0, a1 = a1, a0
	}
	lhs, err := l.useGPR(a0)
	if err != nil {
		return err
	}
	rhs, err := l.intSrcOperand(a1)
	if err != nil {
		return err
	}
	// Reuse the LHS register when this was its last read (two-address
	// form); otherwise copy first.
	var dst x86.Reg
	if l.regFreeable(lhs) {
		dst = l.claimFreed(lhs)
	} else {
		dst, err = l.defInt(in)
		if err != nil {
			return err
		}
		if dst != lhs {
			l.emit(x86.Instr{Op: x86.MOV, Dst: x86.R(dst), Src: x86.R(lhs), Size: 8})
		}
	}
	l.emit(x86.Instr{Op: intALUOps[in.Op], Dst: x86.R(dst), Src: rhs, Size: size, Comment: in.Op.String()})
	l.finishInt(in, dst)
	return nil
}

// regFreeable reports whether r can be claimed as the destination: it is
// a one-shot temporary of the current instruction, or it belongs to a
// value whose reads are exhausted (pending free).
func (l *fnLowerer) regFreeable(r x86.Reg) bool {
	owner := l.regOwner[r]
	if owner == nil {
		for _, tr := range l.temps {
			if tr == r {
				return true
			}
		}
		return false
	}
	for _, f := range l.frees {
		if f == owner {
			return true
		}
	}
	return false
}

// claimFreed detaches r from its dying owner (or from the temp list) and
// returns it as the current destination.
func (l *fnLowerer) claimFreed(r x86.Reg) x86.Reg {
	if owner := l.regOwner[r]; owner != nil {
		delete(l.valReg, owner)
	}
	for i, tr := range l.temps {
		if tr == r {
			l.temps = append(l.temps[:i], l.temps[i+1:]...)
			break
		}
	}
	delete(l.regOwner, r)
	l.regOwner[r] = nil
	l.pinned[r] = true
	if r.IsCalleeSaved() {
		l.calleeUsed[r] = true
	}
	return r
}

func (l *fnLowerer) xmmFreeable(x x86.XReg) bool {
	owner := l.xmmOwner[x]
	if owner == nil {
		for _, tx := range l.tempsX {
			if tx == x {
				return true
			}
		}
		return false
	}
	for _, f := range l.frees {
		if f == owner {
			return true
		}
	}
	return false
}

func (l *fnLowerer) claimFreedXmm(x x86.XReg) x86.XReg {
	if owner := l.xmmOwner[x]; owner != nil {
		delete(l.valXmm, owner)
	}
	for i, tx := range l.tempsX {
		if tx == x {
			l.tempsX = append(l.tempsX[:i], l.tempsX[i+1:]...)
			break
		}
	}
	delete(l.xmmOwner, x)
	l.xmmOwner[x] = nil
	l.pinnedX[x] = true
	return x
}

func (l *fnLowerer) lowerFloatALU(in *ir.Instr) error {
	if l.cls.class[in] == classFolded {
		return nil
	}
	a0, a1 := in.Args[0], in.Args[1]
	if commutative(in.Op) && !l.inRegisterAlready(a0) && l.inRegisterAlready(a1) {
		a0, a1 = a1, a0
	}
	lhs, err := l.useXMM(a0)
	if err != nil {
		return err
	}
	rhs, err := l.floatSrcOperand(a1)
	if err != nil {
		return err
	}
	var dst x86.XReg
	if l.xmmFreeable(lhs) {
		dst = l.claimFreedXmm(lhs)
	} else {
		dst, err = l.defXmm(in)
		if err != nil {
			return err
		}
		if dst != lhs {
			l.emit(x86.Instr{Op: x86.MOVSD, Dst: x86.X(dst), Src: x86.X(lhs)})
		}
	}
	l.emit(x86.Instr{Op: sseALUOps[in.Op], Dst: x86.X(dst), Src: rhs, Comment: in.Op.String()})
	l.finishXmm(in, dst)
	return nil
}

func (l *fnLowerer) lowerDiv(in *ir.Instr) error {
	size := in.Ty.Size()
	// Widen both operands into RAX / R11 with sign extension, then use
	// the 64-bit divide; narrow results are re-canonicalized by the MOV.
	lhs, err := l.useGPR(in.Args[0])
	if err != nil {
		return err
	}
	if size < 8 {
		l.emit(x86.Instr{Op: x86.MOVSX, Dst: x86.R(x86.RAX), Src: x86.R(lhs), Size: uint8(size)})
	} else {
		l.emit(x86.Instr{Op: x86.MOV, Dst: x86.R(x86.RAX), Src: x86.R(lhs), Size: 8})
	}
	rhs, err := l.useGPR(in.Args[1])
	if err != nil {
		return err
	}
	if size < 8 {
		l.emit(x86.Instr{Op: x86.MOVSX, Dst: x86.R(x86.R11), Src: x86.R(rhs), Size: uint8(size)})
	} else {
		l.emit(x86.Instr{Op: x86.MOV, Dst: x86.R(x86.R11), Src: x86.R(rhs), Size: 8})
	}
	l.emit(x86.Instr{Op: x86.CQO, Dst: x86.R(x86.RDX)})
	l.emit(x86.Instr{Op: x86.IDIV, Dst: x86.R(x86.RAX), Src: x86.R(x86.R11), Size: 8, Comment: in.Op.String()})
	resultReg := x86.RAX
	if in.Op == ir.OpSRem {
		resultReg = x86.RDX
	}
	dst, err := l.defInt(in)
	if err != nil {
		return err
	}
	l.emit(x86.Instr{Op: x86.MOV, Dst: x86.R(dst), Src: x86.R(resultReg), Size: uint8(size)})
	l.finishInt(in, dst)
	return nil
}

// emitCompare emits CMP/UCOMISD for an icmp/fcmp and returns the Jcc
// opcode that tests the predicate.
func (l *fnLowerer) emitCompare(in *ir.Instr) (x86.Opcode, error) {
	if in.Op == ir.OpFCmp {
		lhs, err := l.useXMM(in.Args[0])
		if err != nil {
			return 0, err
		}
		rhs, err := l.floatSrcOperand(in.Args[1])
		if err != nil {
			return 0, err
		}
		l.emit(x86.Instr{Op: x86.UCOMISD, Dst: x86.X(lhs), Src: rhs})
		return unsignedJcc[in.Pred], nil
	}
	size := uint8(in.Args[0].Type().Size())
	lhs, err := l.useGPR(in.Args[0])
	if err != nil {
		return 0, err
	}
	rhs, err := l.intSrcOperand(in.Args[1])
	if err != nil {
		return 0, err
	}
	pred := in.Pred
	if in.Args[0].Type().IsPtr() {
		switch pred {
		case ir.PredLT:
			pred = ir.PredULT
		case ir.PredLE:
			pred = ir.PredULE
		case ir.PredGT:
			pred = ir.PredUGT
		case ir.PredGE:
			pred = ir.PredUGE
		}
	}
	l.emit(x86.Instr{Op: x86.CMP, Dst: x86.R(lhs), Src: rhs, Size: size})
	return signedJcc[pred], nil
}

// lowerCmpValue lowers an icmp/fcmp used as a value: CMP + SETcc.
func (l *fnLowerer) lowerCmpValue(in *ir.Instr) error {
	if l.cls.class[in] == classFolded {
		return nil // fused into the terminating branch
	}
	jcc, err := l.emitCompare(in)
	if err != nil {
		return err
	}
	dst, err := l.defInt(in)
	if err != nil {
		return err
	}
	l.emit(x86.Instr{Op: jccToSet[jcc], Dst: x86.R(dst), Size: 1})
	l.finishInt(in, dst)
	return nil
}

func (l *fnLowerer) lowerCast(in *ir.Instr) error {
	if l.cls.class[in] == classAlias {
		return nil
	}
	srcTy := in.Args[0].Type()
	switch in.Op {
	case ir.OpTrunc:
		src, err := l.useGPR(in.Args[0])
		if err != nil {
			return err
		}
		dst, err := l.defInt(in)
		if err != nil {
			return err
		}
		l.emit(x86.Instr{Op: x86.MOV, Dst: x86.R(dst), Src: x86.R(src), Size: uint8(in.Ty.Size()), Comment: "trunc"})
		l.finishInt(in, dst)
		return nil

	case ir.OpZExt:
		// Values are canonical (zero-extended) already; a plain register
		// move realizes the zext, like mov r32,r32 on real hardware.
		if src := l.resolve(in.Args[0]); isFoldedLoad(l, src) {
			fl := src.(*ir.Instr)
			mop, err := l.memOperand(fl.Args[0])
			if err != nil {
				return err
			}
			l.consume(fl)
			dst, err := l.defInt(in)
			if err != nil {
				return err
			}
			l.emit(x86.Instr{Op: x86.MOVZX, Dst: x86.R(dst), Src: mop, Size: uint8(fl.Ty.Size()), Comment: "zext"})
			l.finishInt(in, dst)
			return nil
		}
		src, err := l.useGPR(in.Args[0])
		if err != nil {
			return err
		}
		dst, err := l.defInt(in)
		if err != nil {
			return err
		}
		l.emit(x86.Instr{Op: x86.MOV, Dst: x86.R(dst), Src: x86.R(src), Size: 8, Comment: "zext"})
		l.finishInt(in, dst)
		return nil

	case ir.OpSExt:
		var dst x86.Reg
		var err error
		if src := l.resolve(in.Args[0]); isFoldedLoad(l, src) {
			fl := src.(*ir.Instr)
			mop, merr := l.memOperand(fl.Args[0])
			if merr != nil {
				return merr
			}
			l.consume(fl)
			dst, err = l.defInt(in)
			if err != nil {
				return err
			}
			l.emit(x86.Instr{Op: x86.MOVSX, Dst: x86.R(dst), Src: mop, Size: uint8(fl.Ty.Size()), Comment: "sext"})
		} else {
			src, serr := l.useGPR(in.Args[0])
			if serr != nil {
				return serr
			}
			dst, err = l.defInt(in)
			if err != nil {
				return err
			}
			l.emit(x86.Instr{Op: x86.MOVSX, Dst: x86.R(dst), Src: x86.R(src), Size: uint8(srcTy.Size()), Comment: "sext"})
		}
		if in.Ty.Size() < 8 {
			// Re-canonicalize to the (narrower) destination width.
			l.emit(x86.Instr{Op: x86.MOV, Dst: x86.R(dst), Src: x86.R(dst), Size: uint8(in.Ty.Size())})
		}
		l.finishInt(in, dst)
		return nil

	case ir.OpFPToSI:
		src, err := l.floatSrcOperand(in.Args[0])
		if err != nil {
			return err
		}
		dst, err := l.defInt(in)
		if err != nil {
			return err
		}
		l.emit(x86.Instr{Op: x86.CVTTSD2SI, Dst: x86.R(dst), Src: src, Size: uint8(in.Ty.Size())})
		l.finishInt(in, dst)
		return nil

	case ir.OpSIToFP:
		var srcOp x86.Operand
		size := uint8(srcTy.Size())
		if src := l.resolve(in.Args[0]); isFoldedLoad(l, src) {
			fl := src.(*ir.Instr)
			mop, err := l.memOperand(fl.Args[0])
			if err != nil {
				return err
			}
			l.consume(fl)
			srcOp = mop
			size = uint8(fl.Ty.Size())
		} else {
			r, err := l.useGPR(in.Args[0])
			if err != nil {
				return err
			}
			srcOp = x86.R(r)
		}
		dst, err := l.defXmm(in)
		if err != nil {
			return err
		}
		l.emit(x86.Instr{Op: x86.CVTSI2SD, Dst: x86.X(dst), Src: srcOp, Size: size})
		l.finishXmm(in, dst)
		return nil

	case ir.OpPtrToInt, ir.OpIntToPtr:
		src, err := l.useGPR(in.Args[0])
		if err != nil {
			return err
		}
		dst, err := l.defInt(in)
		if err != nil {
			return err
		}
		size := uint8(8)
		if in.Ty.IsInt() && in.Ty.Size() < 8 {
			size = uint8(in.Ty.Size())
		}
		l.emit(x86.Instr{Op: x86.MOV, Dst: x86.R(dst), Src: x86.R(src), Size: size, Comment: in.Op.String()})
		l.finishInt(in, dst)
		return nil
	}
	return fmt.Errorf("codegen: unhandled cast %s", in.Op)
}

// leaPair returns m in {3,5,9} such that stride = m * k with k in
// {2,4,8}, or 0 when no LEA-pair decomposition exists.
func leaPair(stride uint64) uint64 {
	for _, m := range []uint64{3, 5, 9} {
		if stride%m == 0 {
			k := stride / m
			if k == 2 || k == 4 || k == 8 {
				return m
			}
		}
	}
	return 0
}

func isFoldedLoad(l *fnLowerer, v ir.Value) bool {
	in, ok := v.(*ir.Instr)
	return ok && in.Op == ir.OpLoad && l.cls.class[in] == classFolded
}

func (l *fnLowerer) lowerGEP(in *ir.Instr) error {
	if l.cls.class[in] == classFolded {
		return nil
	}
	// Single-LEA form when the address fits base+index*scale+disp.
	if plan, ok := addressPlan(in); ok {
		mop, err := l.planOperand(plan)
		if err != nil {
			return err
		}
		dst, err := l.defInt(in)
		if err != nil {
			return err
		}
		l.emit(x86.Instr{Op: x86.LEA, Dst: x86.R(dst), Src: mop, Comment: "gep"})
		l.finishInt(in, dst)
		return nil
	}
	// General form: explicit address arithmetic (the paper's "set of add
	// and multiply instructions that computes the address").
	base, err := l.useGPR(in.Args[0])
	if err != nil {
		return err
	}
	var dst x86.Reg
	if l.regFreeable(base) {
		dst = l.claimFreed(base)
	} else {
		dst, err = l.defInt(in)
		if err != nil {
			return err
		}
		l.emit(x86.Instr{Op: x86.MOV, Dst: x86.R(dst), Src: x86.R(base), Size: 8})
	}
	cur := in.Args[0].Type().Elem
	disp := int64(0)
	for i, idx := range in.Args[1:] {
		var stride uint64
		if i == 0 {
			stride = cur.Size()
		} else {
			switch cur.Kind {
			case ir.KindArray:
				cur = cur.Elem
				stride = cur.Size()
			case ir.KindStruct:
				cst, ok := idx.(*ir.Const)
				if !ok {
					return fmt.Errorf("codegen: dynamic struct index")
				}
				fi := int(cst.Int())
				disp += int64(cur.FieldOffset(fi))
				cur = cur.Fields[fi]
				continue
			default:
				return fmt.Errorf("codegen: gep into %s", cur)
			}
		}
		if cst, ok := idx.(*ir.Const); ok {
			disp += cst.Int() * int64(stride)
			continue
		}
		iv, err := l.useGPR(idx)
		if err != nil {
			return err
		}
		switch {
		case stride == 1 || stride == 2 || stride == 4 || stride == 8:
			l.emit(x86.Instr{Op: x86.LEA, Dst: x86.R(dst), Src: x86.Mem(dst, iv, uint8(stride), 0), Comment: "gep.idx"})
		case stride == 3 || stride == 5 || stride == 9:
			// lea t, [idx + idx*(stride-1)]; add into the address.
			l.emit(x86.Instr{Op: x86.LEA, Dst: x86.R(x86.R11), Src: x86.Mem(iv, iv, uint8(stride-1), 0), Comment: "gep.scale"})
			l.emit(x86.Instr{Op: x86.ADD, Dst: x86.R(dst), Src: x86.R(x86.R11), Size: 8})
		case leaPair(stride) != 0:
			// stride = m*k with m in {3,5,9}, k in {2,4,8}:
			// lea t, [idx + idx*(m-1)]; lea dst, [dst + t*k].
			m := leaPair(stride)
			k := stride / m
			l.emit(x86.Instr{Op: x86.LEA, Dst: x86.R(x86.R11), Src: x86.Mem(iv, iv, uint8(m-1), 0), Comment: "gep.scale"})
			l.emit(x86.Instr{Op: x86.LEA, Dst: x86.R(dst), Src: x86.Mem(dst, x86.R11, uint8(k), 0), Comment: "gep.idx"})
		default:
			l.emit(x86.Instr{Op: x86.MOV, Dst: x86.R(x86.R11), Src: x86.R(iv), Size: 8})
			l.emit(x86.Instr{Op: x86.IMUL, Dst: x86.R(x86.R11), Src: x86.Imm(int64(stride)), Size: 8, Comment: "gep.scale"})
			l.emit(x86.Instr{Op: x86.ADD, Dst: x86.R(dst), Src: x86.R(x86.R11), Size: 8})
		}
	}
	if disp != 0 {
		l.emit(x86.Instr{Op: x86.ADD, Dst: x86.R(dst), Src: x86.Imm(disp), Size: 8, Comment: "gep.disp"})
	}
	l.finishInt(in, dst)
	return nil
}

// planOperand turns an addrPlan into a memory operand (for LEA or
// load/store folding).
func (l *fnLowerer) planOperand(plan addrPlan) (x86.Operand, error) {
	var op x86.Operand
	base := l.resolve(plan.base)
	switch bt := base.(type) {
	case *ir.Global:
		op = x86.Abs(int64(l.mod.globalAddr(bt)) + plan.disp)
	case *ir.Instr:
		if l.cls.class[bt] == classFrame {
			l.consume(bt)
			op = x86.Mem(x86.RBP, x86.RegNone, 1, -l.allocaOff[bt]+plan.disp)
			break
		}
		r, err := l.useGPR(bt)
		if err != nil {
			return op, err
		}
		op = x86.Mem(r, x86.RegNone, 1, plan.disp)
	default:
		r, err := l.useGPR(base)
		if err != nil {
			return op, err
		}
		op = x86.Mem(r, x86.RegNone, 1, plan.disp)
	}
	if plan.index != nil {
		idxReg, err := l.useGPR(plan.index)
		if err != nil {
			return op, err
		}
		op.Index = idxReg
		op.Scale = uint8(plan.scale)
	}
	return op, nil
}

func (l *fnLowerer) lowerLoad(in *ir.Instr) error {
	if l.cls.class[in] == classFolded {
		return nil
	}
	mop, err := l.memOperand(in.Args[0])
	if err != nil {
		return err
	}
	if in.Ty.IsFloat() {
		dst, err := l.defXmm(in)
		if err != nil {
			return err
		}
		l.emit(x86.Instr{Op: x86.MOVSD, Dst: x86.X(dst), Src: mop, Comment: "load"})
		l.finishXmm(in, dst)
		return nil
	}
	dst, err := l.defInt(in)
	if err != nil {
		return err
	}
	l.emitLoadInt(dst, mop, in.Ty.Size())
	l.finishInt(in, dst)
	return nil
}

func (l *fnLowerer) lowerStore(in *ir.Instr) error {
	valTy := in.Args[0].Type()
	mop, err := l.memOperand(in.Args[1])
	if err != nil {
		return err
	}
	if valTy.IsFloat() {
		src, err := l.useXMM(in.Args[0])
		if err != nil {
			return err
		}
		l.emit(x86.Instr{Op: x86.MOVSD, Dst: mop, Src: x86.X(src), Comment: "store"})
		return nil
	}
	size := uint8(valTy.Size())
	if cst, ok := l.resolve(in.Args[0]).(*ir.Const); ok {
		l.emit(x86.Instr{Op: x86.MOV, Dst: mop, Src: x86.Imm(int64(cst.Val)), Size: size, Comment: "store"})
		return nil
	}
	src, err := l.useGPR(in.Args[0])
	if err != nil {
		return err
	}
	l.emit(x86.Instr{Op: x86.MOV, Dst: mop, Src: x86.R(src), Size: size, Comment: "store"})
	return nil
}

package codegen

import (
	"bytes"
	"testing"

	"hlfi/internal/interp"
	"hlfi/internal/machine"
	"hlfi/internal/minic"
)

// runBoth compiles src, runs it at the IR level and at the machine level,
// and requires identical outputs and exit codes — the precondition for
// any LLFI-vs-PINFI comparison.
func runBoth(t *testing.T, src string) (string, int64) {
	t.Helper()
	mod, err := minic.Compile("diff", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	prep, err := interp.Prepare(mod)
	if err != nil {
		t.Fatalf("prepare: %v", err)
	}
	var irOut bytes.Buffer
	r := interp.NewRunner(prep, &irOut)
	irRC, err := r.Run()
	if err != nil {
		t.Fatalf("IR run: %v\nIR:\n%s", err, mod)
	}

	prog, err := Lower(mod, prep.Layout, DefaultOptions())
	if err != nil {
		t.Fatalf("lower: %v\nIR:\n%s", err, mod)
	}
	var asmOut bytes.Buffer
	m := machine.New(prog, prep.Layout.Image, prep.Layout.Base, &asmOut)
	asmRC, err := m.Run()
	if err != nil {
		t.Fatalf("machine run: %v\nIR:\n%s\nASM:\n%s", err, mod, prog.Disassemble())
	}
	if irOut.String() != asmOut.String() {
		t.Fatalf("output mismatch:\nIR : %q\nASM: %q\nASM listing:\n%s", irOut.String(), asmOut.String(), prog.Disassemble())
	}
	if irRC != asmRC {
		t.Fatalf("exit mismatch: IR %d vs ASM %d", irRC, asmRC)
	}
	return irOut.String(), irRC
}

func TestDiffFib(t *testing.T) {
	out, rc := runBoth(t, `
int fib(int n) {
    if (n < 2) return n;
    return fib(n - 1) + fib(n - 2);
}
int main() {
    print_int(fib(12));
    print_str("\n");
    return 0;
}
`)
	if out != "144\n" || rc != 0 {
		t.Fatalf("got %q rc=%d", out, rc)
	}
}

func TestDiffArraysStructsPointers(t *testing.T) {
	out, _ := runBoth(t, `
struct point { int x; int y; };
int grid[4][4];
struct point pts[3];
int sumgrid() {
    int s = 0;
    for (int i = 0; i < 4; i++)
        for (int j = 0; j < 4; j++)
            s += grid[i][j];
    return s;
}
int main() {
    for (int i = 0; i < 4; i++)
        for (int j = 0; j < 4; j++)
            grid[i][j] = i * 4 + j;
    for (int k = 0; k < 3; k++) {
        pts[k].x = k;
        pts[k].y = k * k;
    }
    struct point *p = &pts[2];
    int *cell = &grid[1][2];
    print_int(sumgrid()); print_str(" ");
    print_int(p->y); print_str(" ");
    print_int(*cell); print_str("\n");
    return 0;
}
`)
	if out != "120 4 6\n" {
		t.Fatalf("got %q", out)
	}
}

func TestDiffFloatsMallocLogic(t *testing.T) {
	out, rc := runBoth(t, `
double avg(double *a, int n) {
    double s = 0.0;
    for (int i = 0; i < n; i++) s += a[i];
    return s / n;
}
int main() {
    double *a = (double*)malloc(8L * 10);
    for (int i = 0; i < 10; i++) a[i] = i * 1.5;
    print_double(avg(a, 10)); print_str("\n");
    long big = 1000000000;
    big = big * 4;
    print_long(big); print_str("\n");
    int x = 5;
    if (x > 3 && x < 10 || x == 0) print_str("yes\n");
    char buf[8] = "hi";
    print_str(buf); print_str("\n");
    print_double(sqrt(2.0)); print_str("\n");
    free(a);
    return x > 4 ? 7 : 9;
}
`)
	if out != "6.75\n4000000000\nyes\nhi\n1.41421\n" || rc != 7 {
		t.Fatalf("got %q rc=%d", out, rc)
	}
}

func TestDiffDivisionAndChars(t *testing.T) {
	out, _ := runBoth(t, `
int main() {
    int a = -17;
    int b = 5;
    print_int(a / b); print_str(" ");
    print_int(a % b); print_str(" ");
    long la = 1234567891234L;
    print_long(la / 7); print_str(" ");
    char c = 'A';
    c = c + 2;
    print_char(c);
    print_str("\n");
    int sh = 3;
    print_int(1 << sh); print_str(" ");
    print_int(-16 >> 2); print_str(" ");
    print_int(~5 & 255); print_str("\n");
    return 0;
}
`)
	want := "-3 -2 176366841604 C\n8 -4 250\n"
	if out != want {
		t.Fatalf("got %q want %q", out, want)
	}
}

func TestDiffLinkedList(t *testing.T) {
	out, _ := runBoth(t, `
struct node { int val; struct node *next; };
int main() {
    struct node *head = 0;
    for (int i = 0; i < 10; i++) {
        struct node *n = (struct node*)malloc(sizeof(struct node));
        n->val = i * i;
        n->next = head;
        head = n;
    }
    int sum = 0;
    int count = 0;
    struct node *p = head;
    while (p) {
        sum += p->val;
        count++;
        p = p->next;
    }
    print_int(sum); print_str(" ");
    print_int(count); print_str("\n");
    return 0;
}
`)
	if out != "285 10\n" {
		t.Fatalf("got %q", out)
	}
}

func TestDiffWhileDoBreakContinue(t *testing.T) {
	out, _ := runBoth(t, `
int main() {
    int i = 0;
    int s = 0;
    do {
        i++;
        if (i % 3 == 0) continue;
        if (i > 12) break;
        s += i;
    } while (i < 100);
    print_int(s); print_str(" ");
    print_int(i); print_str("\n");
    double d = 1.0;
    int n = 0;
    while (d < 100.0) { d = d * 1.5; n++; }
    print_int(n); print_str(" ");
    print_double(d); print_str("\n");
    return 0;
}
`)
	if out != "48 13\n12 129.746\n" {
		t.Fatalf("got %q", out)
	}
}

func TestDiffNestedAggregates(t *testing.T) {
	out, _ := runBoth(t, `
struct inner { int a[3]; double w; };
struct outer { struct inner rows[2]; int tag; };
struct outer grid[2];
int main() {
    for (int g = 0; g < 2; g++) {
        for (int r = 0; r < 2; r++) {
            for (int k = 0; k < 3; k++) grid[g].rows[r].a[k] = g * 100 + r * 10 + k;
            grid[g].rows[r].w = (double)(g + r) * 0.5;
        }
        grid[g].tag = g + 1;
    }
    long s = 0;
    double wsum = 0.0;
    for (int g = 0; g < 2; g++) {
        struct outer *p = &grid[g];
        for (int r = 0; r < 2; r++) {
            for (int k = 0; k < 3; k++) s += p->rows[r].a[k];
            wsum += p->rows[r].w;
        }
        s += p->tag;
    }
    print_long(s); print_str(" ");
    print_double(wsum); print_str("\n");
    return 0;
}
`)
	if out != "675 2\n" {
		t.Fatalf("nested aggregates: %q", out)
	}
}

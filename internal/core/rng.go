package core

import "math/rand"

// This file is the single source of per-attempt randomness for every
// campaign execution path. The study supports two stream disciplines:
//
//   - sequential: one stream seeded with the campaign seed, shared by
//     all attempts in draw order (the committed study outputs);
//   - per-attempt: an independent stream derived per attempt index
//     (RunParallel — deterministic for any worker count, but a
//     different sample than the sequential stream).
//
// Both Run and RunParallel derive their streams exclusively through
// attemptStreams, so a new execution path (shard workers, future
// backends) cannot drift from either discipline without failing the
// cross-path oracle in rng_test.go.

// attemptStreams hands out the RNG for each injection attempt of one
// campaign cell under a fixed discipline.
type attemptStreams struct {
	seed int64
	// seq is the shared stream of the sequential discipline; nil selects
	// per-attempt derivation.
	seq *rand.Rand
}

// sequentialStreams returns the sequential discipline: one stream
// seeded with the campaign seed. Callers must request attempts in
// order, each exactly once.
func sequentialStreams(seed int64) *attemptStreams {
	return &attemptStreams{seed: seed, seq: rand.New(rand.NewSource(seed))}
}

// perAttemptStreams returns the per-attempt discipline: an independent
// stream per attempt index, safe to request from concurrent workers in
// any order.
func perAttemptStreams(seed int64) *attemptStreams {
	return &attemptStreams{seed: seed}
}

// stream returns the RNG for attempt k. The sequential discipline
// ignores k and returns the shared stream; the per-attempt discipline
// derives stream k from scratch.
func (s *attemptStreams) stream(k int) *rand.Rand {
	if s.seq != nil {
		return s.seq
	}
	return rand.New(rand.NewSource(attemptSeed(s.seed, k)))
}

// sequential reports the discipline (mirrored into SimFault records so
// a reproducing seed is interpreted correctly).
func (s *attemptStreams) sequential() bool { return s.seq != nil }

// reproSeed is the seed that reproduces attempt k: the attempt's own
// seed under per-attempt derivation, the campaign seed (replay the
// stream up to k) under the sequential discipline.
func (s *attemptStreams) reproSeed(k int) int64 {
	if s.seq != nil {
		return s.seed
	}
	return attemptSeed(s.seed, k)
}

// attemptSeed mixes the campaign seed with the attempt index
// (SplitMix64-style finalizer) so per-attempt streams are independent.
func attemptSeed(seed int64, k int) int64 {
	z := uint64(seed) + uint64(k+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z & 0x7FFFFFFFFFFFFFFF)
}

package core

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hlfi/internal/fault"
	"hlfi/internal/obs"
)

// compiledOracleCats mirrors the shard oracle's choice: CatCast has no
// candidates in the integer-only tinySrc, so the oracle covers soft
// skips alongside completed cells.
var compiledOracleCats = []fault.Category{fault.CatAll, fault.CatArith, fault.CatCast}

// checkpointBody returns a checkpoint file's record lines without the
// header. The header deliberately differs between compiled-on and
// compiled-off runs (it pins the engine config); every line after it
// must not. Lines are sorted because the durability path writes in
// completion order, which the parallel scheduler is free to permute.
func checkpointBody(t *testing.T, path string) []string {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(raw), "\n"), "\n")
	if len(lines) < 1 || !strings.Contains(lines[0], `"type":"study"`) {
		t.Fatalf("checkpoint %s: missing header line", path)
	}
	body := lines[1:]
	sortStrings(body)
	return body
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// TestCompiledDifferentialOracle is the study-level correctness gate for
// the compiled execution engines: the same study — both levels, cells
// with and without candidates — must produce identical per-cell outcome
// vectors, rendered report bytes, and checkpoint record bytes whether
// the compiled engines are on or off, sequentially and under the
// parallel scheduler. The oracle also proves it is not vacuous: the
// compiled runs must actually execute attempts on the compiled engines.
func TestCompiledDifferentialOracle(t *testing.T) {
	p, err := BuildProgram("tiny.c", tinySrc)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	run := func(name string, compiled *CompiledConfig, om *obs.Metrics, parallel int) (*Study, []string) {
		path := filepath.Join(dir, name+".jsonl")
		w, err := NewCheckpointWriterShape(path, CheckpointShape{
			N: 6, Seed: 9, Replay: "off", Compiled: compiled.Signature()})
		if err != nil {
			t.Fatal(err)
		}
		st, err := RunStudy(StudyConfig{Programs: []*Program{p}, N: 6, Seed: 9,
			Categories: compiledOracleCats, Checkpoint: w,
			Compiled: compiled, Obs: om, Parallel: parallel})
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		return st, checkpointBody(t, path)
	}

	baseline, baseBody := run("interp", nil, nil, 1)
	golden := renderAll(baseline)

	for _, parallel := range []int{1, 3} {
		t.Run(fmt.Sprintf("parallel=%d", parallel), func(t *testing.T) {
			om := obs.New()
			st, body := run(fmt.Sprintf("compiled-p%d", parallel), &CompiledConfig{}, om, parallel)
			if om.CompiledAttempts.Value() == 0 {
				t.Fatal("compiled run executed no attempts on the compiled engines (vacuous oracle)")
			}
			if om.CompiledFallbacks.Value() != 0 {
				t.Errorf("compiled run fell back to the interpreter %d times", om.CompiledFallbacks.Value())
			}
			if report := renderAll(st); report != golden {
				t.Errorf("compiled report differs from interpreter run:\n--- interp ---\n%s\n--- compiled ---\n%s",
					golden, report)
			}
			if len(st.Cells) != len(baseline.Cells) {
				t.Fatalf("compiled study has %d cells, interpreter %d", len(st.Cells), len(baseline.Cells))
			}
			for key, want := range baseline.Cells {
				if got := st.Cells[key]; got == nil || *got != *want {
					t.Errorf("cell %v diverged:\ninterp   %+v\ncompiled %+v", key, want, got)
				}
			}
			if len(body) != len(baseBody) {
				t.Fatalf("checkpoint has %d records, interpreter run %d", len(body), len(baseBody))
			}
			for i := range body {
				if body[i] != baseBody[i] {
					t.Errorf("checkpoint record diverged:\ninterp   %s\ncompiled %s", baseBody[i], body[i])
				}
			}
		})
	}
}

// TestCompiledShardMergeOracle runs the shard workers with the compiled
// engines on and requires the merged report to match the interpreter-run
// single-process study byte for byte: the engines must be invisible
// through the whole shard-and-merge pipeline, headers included.
func TestCompiledShardMergeOracle(t *testing.T) {
	p, err := BuildProgram("tiny.c", tinySrc)
	if err != nil {
		t.Fatal(err)
	}
	single, err := RunStudy(StudyConfig{Programs: []*Program{p}, N: 6, Seed: 9,
		Categories: compiledOracleCats})
	if err != nil {
		t.Fatal(err)
	}
	golden := renderAll(single)

	dir := t.TempDir()
	compiled := &CompiledConfig{}
	var paths []string
	for i := 0; i < 3; i++ {
		spec := ShardSpec{Index: i, Count: 3}
		path := filepath.Join(dir, fmt.Sprintf("shard-%d-of-3.jsonl", i))
		w, err := NewCheckpointWriterShape(path, CheckpointShape{
			N: 6, Seed: 9, Replay: "off", Compiled: compiled.Signature(), Shard: spec.String()})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := RunStudy(StudyConfig{Programs: []*Program{p}, N: 6, Seed: 9,
			Categories: compiledOracleCats, Checkpoint: w, Shard: &spec,
			Compiled: compiled}); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		paths = append(paths, path)
	}

	merged, err := MergeShardCheckpoints(paths)
	if err != nil {
		t.Fatal(err)
	}
	if merged.Shape.Compiled != "on" {
		t.Fatalf("merged shape pins compiled=%q, want \"on\"", merged.Shape.Compiled)
	}
	if err := merged.VerifyComplete(CanonicalCells([]*Program{p}, compiledOracleCats)); err != nil {
		t.Fatal(err)
	}
	st, err := RunStudy(StudyConfig{Programs: []*Program{p}, N: 6, Seed: 9,
		Categories: compiledOracleCats, Resume: merged.State})
	if err != nil {
		t.Fatal(err)
	}
	if report := renderAll(st); report != golden {
		t.Errorf("compiled shard-merge report differs from interpreter single-process run:\n--- interp ---\n%s\n--- merged ---\n%s",
			golden, report)
	}
}

// TestCompiledCheckpointPinning covers the refusal paths: a checkpoint
// written with the compiled engines on cannot resume with them off (or
// vice versa), and a shard merge refuses a mixed set.
func TestCompiledCheckpointPinning(t *testing.T) {
	dir := t.TempDir()
	write := func(name, compiled, shard string) string {
		path := filepath.Join(dir, name)
		w, err := NewCheckpointWriterShape(path, CheckpointShape{
			N: 4, Seed: 7, Replay: "off", Compiled: compiled, Shard: shard})
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		return path
	}

	on := write("on.jsonl", "on", "")
	if _, err := LoadCheckpointShape(on, CheckpointShape{N: 4, Seed: 7, Replay: "off", Compiled: "off"}); err == nil {
		t.Error("resume with compiled=off accepted a compiled=on checkpoint")
	}
	if _, err := LoadCheckpointShape(on, CheckpointShape{N: 4, Seed: 7, Replay: "off", Compiled: "on"}); err != nil {
		t.Errorf("matching resume refused: %v", err)
	}
	// Headers from before the compiled engines existed carry no field and
	// must load as "off".
	legacy := write("legacy.jsonl", "", "")
	if _, err := LoadCheckpointShape(legacy, CheckpointShape{N: 4, Seed: 7, Replay: "off", Compiled: "off"}); err != nil {
		t.Errorf("legacy header did not normalize to compiled=off: %v", err)
	}

	s0 := write("shard-0.jsonl", "on", "0/2")
	s1 := write("shard-1.jsonl", "off", "1/2")
	if _, err := MergeShardCheckpoints([]string{s0, s1}); err == nil {
		t.Error("merge accepted shards with mixed compiled configs")
	} else if !strings.Contains(err.Error(), "compiled") {
		t.Errorf("mixed-config merge error does not name the compiled field: %v", err)
	}
}

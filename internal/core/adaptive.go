package core

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"hlfi/internal/adaptive"
	"hlfi/internal/fault"
	"hlfi/internal/obs/trace"
	"hlfi/internal/sched"
	"hlfi/internal/telemetry"
)

// AdaptiveCounts is a value-type snapshot of a cell's outcome counts at
// its round-1 boundary, persisted on extended records so any process
// holding the checkpoint can recompute the identical reallocation plan.
type AdaptiveCounts struct {
	Benign       int
	SDC          int
	Crash        int
	Hang         int
	NotActivated int
	Attempts     int
	SimFaults    int
}

// AdaptiveCell records how the early-stopping engine treated one cell.
// All fields are value types: CellResult must stay ==-comparable for
// the differential oracles.
type AdaptiveCell struct {
	// Target is the activated-injection target the record ran under
	// (0 marks a fixed-n record; the study base N for round-1 records;
	// base+grant for round-2 extensions).
	Target int
	// Converged reports that the stopping rule fired before the target.
	Converged bool
	// Extended marks a round-2 record; Round1 then holds the counts at
	// the round-1 boundary the reallocation plan was computed from.
	Extended bool
	Round1   AdaptiveCounts
}

// adaptiveCounts views the result's running tally as the stopping
// rule's input.
func (c *CellResult) adaptiveCounts() adaptive.Counts {
	return adaptive.Counts{
		Benign: c.Benign, SDC: c.SDC, Crash: c.Crash, Hang: c.Hang,
		NotActivated: c.NotActivated, SimFaults: c.SimFaults,
	}
}

// Round1State returns the cell's round-1 stop state — the pure input to
// the reallocation plan. For an extended record it is the persisted
// round-1 snapshot (which by construction had not converged); for a
// round-1 record it is the record itself.
func (c *CellResult) Round1State() (adaptive.Counts, bool) {
	if c.Adaptive.Extended {
		r := c.Adaptive.Round1
		return adaptive.Counts{
			Benign: r.Benign, SDC: r.SDC, Crash: r.Crash, Hang: r.Hang,
			NotActivated: r.NotActivated, SimFaults: r.SimFaults,
		}, false
	}
	return c.adaptiveCounts(), c.Adaptive.Converged
}

// campaignAdaptive is the per-run early-stopping state of one campaign
// loop (nil when the engine is off: the zero-cost default).
type campaignAdaptive struct {
	cfg       *adaptive.Config
	base      int // round-1 activation budget (== N for round-1 runs)
	maxR1     int // round-1 attempt ceiling (base * MaxAttemptsFactor)
	extension bool
	captured  bool
}

// adaptiveState primes the early-stopping state for one campaign run
// and stamps the result's adaptive target.
func (c *Campaign) adaptiveState(res *CellResult, maxFactor int) *campaignAdaptive {
	if c.Adaptive == nil {
		return nil
	}
	base := c.AdaptiveBase
	if base <= 0 || base > c.N {
		base = c.N
	}
	res.Adaptive.Target = c.N
	return &campaignAdaptive{
		cfg:       c.Adaptive,
		base:      base,
		maxR1:     base * maxFactor,
		extension: base < c.N,
		captured:  base == c.N,
	}
}

// note evaluates the stopping rule after one accounted attempt and
// reports whether the cell is done. Both campaign loops call it after
// every attempt — activated, non-activated, or contained sim fault —
// so the decision sequence is exactly adaptive.Config.StopAt over the
// cell's attempt records.
//
// For extension runs it first snapshots the round-1 counts the moment
// the replayed prefix crosses the round-1 boundary (the activation
// target or the round-1 attempt ceiling, whichever the original run hit
// first). The prefix is identical to the round-1 run — seeded streams
// are position-pure and the rule is prefix-pure, so a rule that did not
// stop round 1 cannot stop inside the replayed prefix either.
func (a *campaignAdaptive) note(res *CellResult) bool {
	if a == nil {
		return false
	}
	if !a.captured && (res.Activated() >= a.base || res.Attempts >= a.maxR1) {
		a.captured = true
		res.Adaptive.Extended = true
		res.Adaptive.Round1 = AdaptiveCounts{
			Benign: res.Benign, SDC: res.SDC, Crash: res.Crash, Hang: res.Hang,
			NotActivated: res.NotActivated, Attempts: res.Attempts, SimFaults: res.SimFaults,
		}
	}
	if a.cfg.ShouldStop(res.adaptiveCounts()) {
		res.Adaptive.Converged = true
		return true
	}
	return false
}

// adaptiveSuffix annotates a progress line with the cell's adaptive
// outcome ("" for fixed-n records, so fixed-n lines are unchanged).
func adaptiveSuffix(res *CellResult) string {
	a := res.Adaptive
	if a.Target == 0 {
		return ""
	}
	switch {
	case a.Extended && a.Converged:
		return fmt.Sprintf(" [adaptive: extended to %d, converged at %d]", a.Target, res.Activated())
	case a.Extended:
		return fmt.Sprintf(" [adaptive: extended to %d]", a.Target)
	case a.Converged:
		return fmt.Sprintf(" [adaptive: converged at %d/%d]", res.Activated(), a.Target)
	default:
		return fmt.Sprintf(" [adaptive: ran to target %d]", a.Target)
	}
}

// adaptiveStates builds the canonical-order round-1 stop states the
// reallocation plan is computed from. Skipped cells (nil results) are
// absent: neither donors nor recipients.
func adaptiveStates(specs []cellSpec, results []*CellResult) []adaptive.CellState {
	states := make([]adaptive.CellState, len(specs))
	for i, res := range results {
		if res == nil {
			continue
		}
		counts, converged := res.Round1State()
		states[i] = adaptive.CellState{Counts: counts, Converged: converged, Present: true}
	}
	return states
}

// runAdaptiveRound2 computes the stratified reallocation plan from the
// round-1 states and re-runs every cell whose planned target exceeds
// its current record. Extensions restart the cell's seeded streams from
// scratch at the higher target, so the extended record equals the one a
// fresh fixed-target run would produce — which is why a resumed, merged,
// or fleet-run study reaches the identical final state.
//
// Returns (hard, abort): hard is a cell failure that fails the study
// with the canonical first error; abort is the caller's context
// cancellation, to be reported through the same study_abort path as
// round 1.
func runAdaptiveRound2(ctx context.Context, cfg StudyConfig, specs []cellSpec, results []*CellResult, parallel, perCell int, root trace.Span) (hard, abort error) {
	states := adaptiveStates(specs, results)
	plan := cfg.Adaptive.Reallocate(cfg.N, states)
	converged := 0
	for _, s := range states {
		if s.Present && s.Converged {
			converged++
		}
	}
	type ext struct {
		idx    int
		target int
	}
	var exts []ext
	recipients := 0
	for i, g := range plan.Grants {
		if g <= 0 || results[i] == nil {
			continue
		}
		recipients++
		t := plan.BaseN + g
		if results[i].Adaptive.Target == t {
			continue // resumed extension record already at the planned target
		}
		exts = append(exts, ext{idx: i, target: t})
	}
	emit(cfg.Events, telemetry.Event{
		Type:                   telemetry.EventAdaptivePlan,
		AdaptiveSaved:          plan.Saved,
		AdaptiveGranted:        plan.Granted,
		AdaptiveLeftover:       plan.Leftover,
		AdaptiveConvergedCells: converged,
		AdaptiveExtendedCells:  recipients,
	})
	if cfg.Obs != nil {
		cfg.Obs.AdaptiveConverged.Add(uint64(converged))
		cfg.Obs.AdaptiveExtended.Add(uint64(recipients))
		cfg.Obs.AdaptiveSaved.Add(uint64(plan.Saved))
		cfg.Obs.AdaptiveGranted.Add(uint64(plan.Granted))
	}
	if len(exts) == 0 {
		return nil, nil
	}

	prior := make([]*CellResult, len(exts))
	extMetrics := make([]CellMetrics, len(exts))
	extErrs := make([]error, len(exts))
	warehoused := make([]bool, len(exts))
	var (
		mu      sync.Mutex
		done    = make([]bool, len(exts))
		emitted int
	)
	finish := func(j int) {
		mu.Lock()
		defer mu.Unlock()
		done[j] = true
		for emitted < len(exts) && done[emitted] {
			e := exts[emitted]
			noteExtension(cfg, specs[e.idx], prior[emitted], results[e.idx],
				extMetrics[emitted], extErrs[emitted], warehoused[emitted])
			emitted++
		}
	}

	tasks := make([]sched.Task, len(exts))
	for j := range exts {
		j := j
		e := exts[j]
		s := specs[e.idx]
		key := s.key()
		prior[j] = results[e.idx]
		// Warehouse resolution at the extension identity (target,
		// BaseN): the plan is a pure function of the round-1 states, so
		// a warm run recomputes the identical targets and every
		// extension record is a lookup away. Hits are checkpointed like
		// executed extensions (last-record-wins supersede).
		if cfg.Warehouse != nil {
			if wres, _, ok := cfg.Warehouse.Lookup(key, e.target, plan.BaseN); ok && wres != nil {
				warehoused[j] = true
				tasks[j] = func(context.Context) error {
					defer finish(j)
					results[e.idx] = wres
					if cerr := cfg.Checkpoint.Cell(key, wres); cerr != nil {
						extErrs[j] = cerr
						return cerr
					}
					return nil
				}
				continue
			}
		}
		tasks[j] = func(context.Context) error {
			defer finish(j)
			var espan trace.Span
			if cfg.Trace != nil {
				espan = cfg.Trace.StartChild(trace.KindExtension, s.lane(), root)
				espan.Grant = e.target
			}
			c := &Campaign{
				Prog:          s.prog,
				Level:         s.level,
				Category:      s.cat,
				N:             e.target,
				Seed:          cellSeed(cfg.Seed, s.prog.Name, s.level, s.cat),
				Metrics:       &extMetrics[j],
				SimFaultLimit: cfg.SimFaultLimit,
				Deadline:      cfg.CellDeadline,
				Replay:        cfg.Replay,
				Compiled:      cfg.Compiled,
				Obs:           cfg.Obs,
				Adaptive:      cfg.Adaptive,
				AdaptiveBase:  plan.BaseN,
				// Traced attempts were already released with the round-1
				// record; re-tracing the replayed prefix would duplicate
				// them (tracing never changes outcomes, so dropping it
				// keeps the extension byte-identical).
			}
			if testCampaignHook != nil {
				testCampaignHook(c)
			}
			var res *CellResult
			var err error
			if perCell > 1 {
				res, err = c.RunParallel(perCell)
			} else {
				res, err = c.Run()
			}
			if cfg.Obs != nil {
				cfg.Obs.CellSeconds.Observe((extMetrics[j].ScanTime + extMetrics[j].RunTime).Seconds())
			}
			if cfg.Trace != nil {
				emitPhaseSpans(cfg.Trace, espan, s.lane(), extMetrics[j])
				switch {
				case err == nil:
					espan.Outcome = "done"
				case isSoftSkip(err):
					espan.Outcome, espan.Err = "abandoned", err.Error()
				default:
					espan.Outcome, espan.Err = "failure", err.Error()
				}
				espan.Finish()
			}
			if err != nil {
				extErrs[j] = err
				if isSoftSkip(err) {
					// Degrade to the round-1 record (already checkpointed):
					// an extension tripping the watchdog must not lose a
					// cell the study has already measured once.
					return nil
				}
				return err
			}
			results[e.idx] = res
			// The extended record supersedes the round-1 one in the
			// checkpoint; the loader is last-record-wins, and the higher
			// target marks it as already-extended on resume.
			if cerr := cfg.Checkpoint.Cell(key, res); cerr != nil {
				extErrs[j] = cerr
				return cerr
			}
			if cfg.Warehouse != nil {
				cfg.Warehouse.StoreCell(key, e.target, plan.BaseN, res)
			}
			return nil
		}
	}
	var observer sched.Observer
	if cfg.Obs != nil {
		observer = gaugeObserver{g: cfg.Obs.CellsInFlight}
	}
	if err := sched.RunObserved(ctx, parallel, tasks, observer); err != nil {
		for j, cerr := range extErrs {
			if cerr != nil && !isSoftSkip(cerr) {
				return fmt.Errorf("cell %v: %w", specs[exts[j].idx].key(), cerr), nil
			}
		}
		return nil, err
	}
	return nil, nil
}

// noteExtension releases one extension's progress line and telemetry
// (through the round-2 reorder buffer, so order is deterministic).
// The cell_extend event carries DELTA counts over the round-1 record:
// cell_done totals plus cell_extend totals equal the final study
// totals, keeping the telemetry aggregator additive.
func noteExtension(cfg StudyConfig, s cellSpec, prior, res *CellResult, m CellMetrics, err error, warehoused bool) {
	switch {
	case res != nil && warehoused && err == nil:
		if cfg.Progress != nil {
			cfg.Progress(fmt.Sprintf("%-10s %-5s %-10s activated=%d crash=%.1f%% sdc=%.1f%% (warehouse)%s",
				s.prog.Name, s.level, s.cat, res.Activated(),
				100*res.CrashRate().Rate(), 100*res.SDCRate().Rate(), adaptiveSuffix(res)))
		}
		emit(cfg.Events, telemetry.Event{
			Type:      telemetry.EventWarehouseHit,
			Benchmark: s.prog.Name, Level: s.level.String(), Category: s.cat.String(),
			Attempts: res.Attempts, Activated: res.Activated(),
			Benign: res.Benign, SDC: res.SDC, Crash: res.Crash, Hang: res.Hang,
			NotActivated: res.NotActivated, SimFaults: res.SimFaults,
			AdaptiveTarget:    res.Adaptive.Target,
			AdaptiveConverged: res.Adaptive.Converged,
		})
	case err != nil && isSoftSkip(err):
		if cfg.Progress != nil {
			cfg.Progress(fmt.Sprintf("%-10s %-5s %-10s adaptive extension abandoned (%v); keeping round-1 record",
				s.prog.Name, s.level, s.cat, err))
		}
		emit(cfg.Events, telemetry.Event{
			Type:      telemetry.EventCellExtend,
			Benchmark: s.prog.Name, Level: s.level.String(), Category: s.cat.String(),
			Err: err.Error(),
		})
	case err != nil:
		// Hard error: the study is about to fail with the canonical
		// first error; nothing to release.
	case res != nil:
		if cfg.Progress != nil {
			cfg.Progress(fmt.Sprintf("%-10s %-5s %-10s activated=%d crash=%.1f%% sdc=%.1f%%%s",
				s.prog.Name, s.level, s.cat, res.Activated(),
				100*res.CrashRate().Rate(), 100*res.SDCRate().Rate(), adaptiveSuffix(res)))
		}
		// The replayed round-1 prefix re-contains the same panics the
		// round-1 record already released; only the extension window's
		// are new.
		for _, sf := range m.SimFaults {
			if sf.Attempt < prior.Attempts {
				continue
			}
			emit(cfg.Events, telemetry.Event{
				Type:      telemetry.EventSimFault,
				Benchmark: sf.Prog, Level: sf.Level.String(), Category: sf.Category.String(),
				Attempt: sf.Attempt, AttemptSeed: sf.Seed, Sequential: sf.Sequential,
				Panic: sf.Panic,
			})
		}
		emit(cfg.Events, telemetry.Event{
			Type:      telemetry.EventCellExtend,
			Benchmark: s.prog.Name, Level: s.level.String(), Category: s.cat.String(),
			DurationMS: telemetry.Ms(m.ScanTime + m.RunTime),
			ScanMS:     telemetry.Ms(m.ScanTime),
			Workers:    m.Workers,
			Attempts:   res.Attempts - prior.Attempts,
			Activated:  res.Activated() - prior.Activated(),
			Benign:     res.Benign - prior.Benign, SDC: res.SDC - prior.SDC,
			Crash: res.Crash - prior.Crash, Hang: res.Hang - prior.Hang,
			NotActivated:      res.NotActivated - prior.NotActivated,
			SimFaults:         res.SimFaults - prior.SimFaults,
			AdaptiveTarget:    res.Adaptive.Target,
			AdaptiveConverged: res.Adaptive.Converged,
		})
	}
}

// adaptiveCellRow is one row of the accuracy-vs-cost section.
type adaptiveCellRow struct {
	key CellKey
	res *CellResult
}

// adaptiveRows collects the study's adaptive records in canonical
// report order (benchmark, level, category).
func (st *Study) adaptiveRows() []adaptiveCellRow {
	var rows []adaptiveCellRow
	for _, p := range st.Programs {
		for _, level := range []fault.Level{fault.LevelIR, fault.LevelASM} {
			for _, cat := range fault.Categories {
				key := CellKey{Prog: p.Name, Level: level, Category: cat}
				if res := st.Cells[key]; res != nil && res.Adaptive.Target > 0 {
					rows = append(rows, adaptiveCellRow{key: key, res: res})
				}
			}
		}
	}
	return rows
}

// RenderAdaptive renders the accuracy-vs-cost section of an adaptive
// study: per-cell targets, achieved half-widths, and the budget ledger
// against the fixed-n baseline. Returns "" for fixed-n studies, so
// every existing render is byte-identical with the engine off.
func (st *Study) RenderAdaptive() string {
	if st.Adaptive == nil {
		return ""
	}
	rows := st.adaptiveRows()
	var b strings.Builder
	fmt.Fprintf(&b, "Adaptive sampling (%s; baseline n=%d per cell):\n", st.Adaptive.Signature(), st.N)
	if len(rows) == 0 {
		fmt.Fprintf(&b, "  (no adaptive cells recorded)\n")
		return b.String()
	}
	fmt.Fprintf(&b, "  %-10s %-5s %-10s %7s %10s %9s %11s  %s\n",
		"benchmark", "tool", "category", "target", "activated", "attempts", "half-width", "status")
	var (
		spent, attempts, saved, granted int
		convergedCells, extendedCells   int
	)
	for _, row := range rows {
		res := row.res
		a := res.Adaptive
		status := "at-target"
		switch {
		case a.Extended && a.Converged:
			status = "extended+converged"
		case a.Extended:
			status = "extended"
		case a.Converged:
			status = "converged"
		case res.Activated() < a.Target:
			status = "budget-exhausted"
		}
		if a.Converged && !a.Extended {
			convergedCells++
			saved += st.N - res.Activated()
		}
		if a.Extended {
			extendedCells++
			granted += a.Target - st.N
		}
		spent += res.Activated()
		attempts += res.Attempts
		fmt.Fprintf(&b, "  %-10s %-5s %-10s %7d %10d %9d %11s  %s\n",
			row.key.Prog, row.key.Level, row.key.Category,
			a.Target, res.Activated(), res.Attempts,
			strconv.FormatFloat(res.adaptiveCounts().MaxHalfWidth(), 'f', 4, 64), status)
	}
	baseline := st.N * len(rows)
	savingsPct := 0.0
	if baseline > 0 {
		savingsPct = 100 * float64(baseline-spent) / float64(baseline)
	}
	fmt.Fprintf(&b, "  budget: activated %d of %d baseline (%.1f%% saved), %d attempts total\n",
		spent, baseline, savingsPct, attempts)
	fmt.Fprintf(&b, "  cells : %d converged early (saved %d), %d extended (+%d granted)\n",
		convergedCells, saved, extendedCells, granted)
	return b.String()
}

// AdaptiveJSON is the accuracy-vs-cost section of the -json render.
type AdaptiveJSON struct {
	Eps               float64            `json:"eps"`
	MinN              int                `json:"min"`
	Check             int                `json:"check"`
	BaselineActivated int                `json:"baselineActivated"`
	SpentActivated    int                `json:"spentActivated"`
	SavedActivated    int                `json:"savedActivated"`
	GrantedActivated  int                `json:"grantedActivated"`
	SavingsPct        float64            `json:"savingsPct"`
	Cells             []AdaptiveCellJSON `json:"cells"`
}

// AdaptiveCellJSON is one cell of the adaptive JSON section.
type AdaptiveCellJSON struct {
	Benchmark    string  `json:"benchmark"`
	Tool         string  `json:"tool"`
	Category     string  `json:"category"`
	Target       int     `json:"target"`
	Activated    int     `json:"activated"`
	Attempts     int     `json:"attempts"`
	Converged    bool    `json:"converged"`
	Extended     bool    `json:"extended"`
	MaxHalfWidth float64 `json:"maxHalfWidth"`
}

// adaptiveJSON builds the JSON section (nil for fixed-n studies, which
// keeps fixed-n -json output byte-identical), scoped to the same
// category set as the surrounding experiment's cells — the budget
// totals then describe exactly the cells the JSON shows.
func (st *Study) adaptiveJSON(cats []fault.Category) *AdaptiveJSON {
	if st.Adaptive == nil {
		return nil
	}
	inScope := make(map[fault.Category]bool, len(cats))
	for _, c := range cats {
		inScope[c] = true
	}
	rows := st.adaptiveRows()
	out := &AdaptiveJSON{
		Eps:   st.Adaptive.Eps,
		MinN:  st.Adaptive.MinN,
		Check: st.Adaptive.Check,
		Cells: make([]AdaptiveCellJSON, 0, len(rows)),
	}
	for _, row := range rows {
		if !inScope[row.key.Category] {
			continue
		}
		res := row.res
		a := res.Adaptive
		out.BaselineActivated += st.N
		out.SpentActivated += res.Activated()
		if a.Converged && !a.Extended {
			out.SavedActivated += st.N - res.Activated()
		}
		if a.Extended {
			out.GrantedActivated += a.Target - st.N
		}
		out.Cells = append(out.Cells, AdaptiveCellJSON{
			Benchmark: row.key.Prog, Tool: row.key.Level.String(), Category: row.key.Category.String(),
			Target: a.Target, Activated: res.Activated(), Attempts: res.Attempts,
			Converged: a.Converged, Extended: a.Extended,
			MaxHalfWidth: res.adaptiveCounts().MaxHalfWidth(),
		})
	}
	sort.Slice(out.Cells, func(i, j int) bool {
		a, b := out.Cells[i], out.Cells[j]
		if a.Benchmark != b.Benchmark {
			return a.Benchmark < b.Benchmark
		}
		if a.Tool != b.Tool {
			return a.Tool < b.Tool
		}
		return a.Category < b.Category
	})
	if out.BaselineActivated > 0 {
		out.SavingsPct = 100 * float64(out.BaselineActivated-out.SpentActivated) / float64(out.BaselineActivated)
	}
	return out
}

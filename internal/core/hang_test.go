package core_test

import (
	"math/rand"
	"testing"

	"hlfi/internal/core"
	"hlfi/internal/fault"
	"hlfi/internal/llfi"
)

// TestHangClassification end-to-end: a program whose loop bound lives in
// a variable is hang-prone when that comparison chain is corrupted. The
// campaign must observe hangs (the paper's timeout mechanism) at both
// levels.
func TestHangClassification(t *testing.T) {
	// Only the final evaluation of the loop comparison can hang the
	// program (overshooting an != bound), so keep the iteration count
	// small enough that campaigns hit it.
	src := `
int LIMIT = 20;
int main() {
    long s = 0;
    int i = 0;
    while (i != LIMIT) {   /* != bound: an overshoot loops ~forever */
        s = s * 3 + i;
        s ^= s >> 5;
        i++;
    }
    print_long(s); print_str("\n");
    return 0;
}
`
	prog, err := core.BuildProgram("hangy", src)
	if err != nil {
		t.Fatal(err)
	}
	for _, level := range []fault.Level{fault.LevelIR, fault.LevelASM} {
		c := &core.Campaign{Prog: prog, Level: level, Category: fault.CatCmp, N: 200, Seed: 3}
		res, err := c.Run()
		if err != nil {
			t.Fatal(err)
		}
		if res.Hang == 0 {
			t.Errorf("%s: corrupting the loop comparison never hung (crash=%d sdc=%d benign=%d)",
				level, res.Crash, res.SDC, res.Benign)
		}
		t.Logf("%s: hang=%d crash=%d sdc=%d benign=%d", level, res.Hang, res.Crash, res.SDC, res.Benign)
	}
}

// TestNotActivatedExcluded: the campaign keeps drawing until N activated
// faults; the not-activated count is tracked separately.
func TestNotActivatedExcluded(t *testing.T) {
	src := `
int main() {
    long s = 1;
    for (int i = 0; i < 64; i++) {
        s = s * 3 + i;
    }
    print_long(s); print_str("\n");
    return 0;
}
`
	prog, err := core.BuildProgram("act", src)
	if err != nil {
		t.Fatal(err)
	}
	c := &core.Campaign{Prog: prog, Level: fault.LevelASM, Category: fault.CatAll, N: 80, Seed: 9}
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Activated() != 80 {
		t.Fatalf("activated %d != 80", res.Activated())
	}
	if res.Attempts != res.Activated()+res.NotActivated {
		t.Fatalf("accounting: attempts=%d activated=%d notactivated=%d",
			res.Attempts, res.Activated(), res.NotActivated)
	}
}

// TestLLFICandidatesAlwaysActivatedInStraightLine: with def-use filtering
// and a straight-line consumer chain, IR injections essentially always
// activate — the design rationale of paper §IV.
func TestLLFIDefUseActivation(t *testing.T) {
	src := `
int main() {
    long s = 1;
    for (int i = 1; i < 40; i++) {
        s = s + i * i;
    }
    print_long(s); print_str("\n");
    return 0;
}
`
	prog, err := core.BuildProgram("defuse", src)
	if err != nil {
		t.Fatal(err)
	}
	inj, err := llfi.New(prog.Prep, fault.CatArith)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	notActivated := 0
	for i := 0; i < 150; i++ {
		if inj.InjectOne(rng).Outcome == fault.OutcomeNotActivated {
			notActivated++
		}
	}
	if notActivated > 15 { // <10%: uses may sit on untaken paths
		t.Fatalf("too many non-activated IR faults: %d/150", notActivated)
	}
}

package core_test

import (
	"fmt"

	"hlfi/internal/core"
	"hlfi/internal/fault"
)

// ExampleCampaign runs a small deterministic IR-level campaign against an
// inline program.
func ExampleCampaign() {
	prog, err := core.BuildProgram("example", `
int main() {
    long s = 0;
    for (int i = 1; i <= 20; i++) s += i * i;
    print_long(s);
    print_str("\n");
    return 0;
}
`)
	if err != nil {
		panic(err)
	}
	cell, err := (&core.Campaign{
		Prog:     prog,
		Level:    fault.LevelIR,
		Category: fault.CatAll,
		N:        50,
		Seed:     1,
	}).Run()
	if err != nil {
		panic(err)
	}
	fmt.Printf("activated=%d total=%d\n", cell.Activated(), cell.Crash+cell.SDC+cell.Hang+cell.Benign)
	// Output:
	// activated=50 total=50
}

package core

import (
	"encoding/json"
	"io"
	"sort"

	"hlfi/internal/fault"
)

// StudyJSON is the machine-readable form of a study, for plotting
// pipelines and regression tracking.
type StudyJSON struct {
	N     int        `json:"n"`
	Seed  int64      `json:"seed"`
	Cells []CellJSON `json:"cells"`
}

// CellJSON serializes one campaign cell.
type CellJSON struct {
	Benchmark string  `json:"benchmark"`
	Tool      string  `json:"tool"`
	Category  string  `json:"category"`
	Activated int     `json:"activated"`
	Crash     int     `json:"crash"`
	SDC       int     `json:"sdc"`
	Hang      int     `json:"hang"`
	Benign    int     `json:"benign"`
	CrashRate float64 `json:"crashRate"`
	SDCRate   float64 `json:"sdcRate"`
	SDCCI95   float64 `json:"sdcCi95"`
	// DynCandidates is the Table IV entry for this cell.
	DynCandidates uint64 `json:"dynCandidates"`
	NotActivated  int    `json:"notActivated"`
}

// WriteJSON serializes the study (cells in a stable order).
func (st *Study) WriteJSON(w io.Writer) error {
	out := StudyJSON{N: st.N, Seed: st.Seed}
	for _, p := range st.Programs {
		for _, level := range []fault.Level{fault.LevelIR, fault.LevelASM} {
			for _, cat := range fault.Categories {
				key := CellKey{Prog: p.Name, Level: level, Category: cat}
				c := st.Cells[key]
				if c == nil {
					continue
				}
				out.Cells = append(out.Cells, CellJSON{
					Benchmark:     p.Name,
					Tool:          level.String(),
					Category:      cat.String(),
					Activated:     c.Activated(),
					Crash:         c.Crash,
					SDC:           c.SDC,
					Hang:          c.Hang,
					Benign:        c.Benign,
					CrashRate:     c.CrashRate().Rate(),
					SDCRate:       c.SDCRate().Rate(),
					SDCCI95:       c.SDCRate().WaldCI(),
					DynCandidates: st.Dyn[key],
					NotActivated:  c.NotActivated,
				})
			}
		}
	}
	sort.SliceStable(out.Cells, func(i, j int) bool {
		a, b := out.Cells[i], out.Cells[j]
		if a.Benchmark != b.Benchmark {
			return a.Benchmark < b.Benchmark
		}
		if a.Tool != b.Tool {
			return a.Tool < b.Tool
		}
		return a.Category < b.Category
	})
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

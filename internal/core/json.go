package core

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"hlfi/internal/fault"
)

// StudyJSON is the machine-readable form of a study, for plotting
// pipelines and regression tracking.
type StudyJSON struct {
	// Experiment names the artifact this JSON is scoped to
	// (fig3|fig4|table5|all).
	Experiment string     `json:"experiment"`
	N          int        `json:"n"`
	Seed       int64      `json:"seed"`
	Cells      []CellJSON `json:"cells"`
	// Adaptive is the accuracy-vs-cost section of an adaptive study
	// (absent for fixed-n studies, keeping their JSON byte-identical).
	Adaptive *AdaptiveJSON `json:"adaptive,omitempty"`
}

// CellJSON serializes one campaign cell.
type CellJSON struct {
	Benchmark string  `json:"benchmark"`
	Tool      string  `json:"tool"`
	Category  string  `json:"category"`
	Activated int     `json:"activated"`
	Crash     int     `json:"crash"`
	SDC       int     `json:"sdc"`
	Hang      int     `json:"hang"`
	Benign    int     `json:"benign"`
	CrashRate float64 `json:"crashRate"`
	SDCRate   float64 `json:"sdcRate"`
	SDCCI95   float64 `json:"sdcCi95"`
	// DynCandidates is the Table IV entry for this cell.
	DynCandidates uint64 `json:"dynCandidates"`
	NotActivated  int    `json:"notActivated"`
}

// WriteJSON serializes the full study (cells in a stable order); it is
// WriteExperimentJSON scoped to "all".
func (st *Study) WriteJSON(w io.Writer) error {
	return st.WriteExperimentJSON(w, "all")
}

// WriteExperimentJSON serializes the study scoped to one experiment's
// cells: fig3 covers only the "all"-category cells (its aggregate
// breakdown uses nothing else), while fig4, table5, and all cover the
// full category cross-product. Experiments without a JSON form (table2,
// table4, calibration) are rejected.
func (st *Study) WriteExperimentJSON(w io.Writer, experiment string) error {
	var cats []fault.Category
	switch experiment {
	case "fig3":
		cats = []fault.Category{fault.CatAll}
	case "fig4", "table5", "all":
		cats = fault.Categories
	default:
		return fmt.Errorf("experiment %q has no JSON form (want fig3|fig4|table5|all)", experiment)
	}
	out := StudyJSON{Experiment: experiment, N: st.N, Seed: st.Seed, Adaptive: st.adaptiveJSON(cats)}
	for _, p := range st.Programs {
		for _, level := range []fault.Level{fault.LevelIR, fault.LevelASM} {
			for _, cat := range cats {
				key := CellKey{Prog: p.Name, Level: level, Category: cat}
				c := st.Cells[key]
				if c == nil {
					continue
				}
				out.Cells = append(out.Cells, CellJSON{
					Benchmark:     p.Name,
					Tool:          level.String(),
					Category:      cat.String(),
					Activated:     c.Activated(),
					Crash:         c.Crash,
					SDC:           c.SDC,
					Hang:          c.Hang,
					Benign:        c.Benign,
					CrashRate:     c.CrashRate().Rate(),
					SDCRate:       c.SDCRate().Rate(),
					SDCCI95:       c.SDCRate().WaldCI(),
					DynCandidates: st.Dyn[key],
					NotActivated:  c.NotActivated,
				})
			}
		}
	}
	sort.SliceStable(out.Cells, func(i, j int) bool {
		a, b := out.Cells[i], out.Cells[j]
		if a.Benchmark != b.Benchmark {
			return a.Benchmark < b.Benchmark
		}
		if a.Tool != b.Tool {
			return a.Tool < b.Tool
		}
		return a.Category < b.Category
	})
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

package core

import (
	"fmt"
	"strings"

	"hlfi/internal/fault"
	"hlfi/internal/llfi"
	"hlfi/internal/stats"
)

// CalibrationStudy evaluates the paper's §VII proposal: do the three
// discrepancy-resolution heuristics (GEP-as-arithmetic, address-cast
// exclusion, assembly-mapped-loads-only) move LLFI's crash rates toward
// PINFI's? For each benchmark and category it runs three campaigns:
// plain LLFI, calibrated LLFI, and PINFI.
type CalibrationStudy struct {
	Programs []*Program
	N        int

	// Plain, Calibrated, Pinfi index cells by CellKey (level is implied).
	Plain      map[CellKey]*CellResult
	Calibrated map[CellKey]*CellResult
	Pinfi      map[CellKey]*CellResult
}

// RunCalibrationStudy runs the three-way comparison over the given
// categories (defaults to all, arithmetic, cast, load — the categories
// the heuristics touch).
func RunCalibrationStudy(progs []*Program, n int, seed int64, progress func(string)) (*CalibrationStudy, error) {
	cats := []fault.Category{fault.CatAll, fault.CatArith, fault.CatCast, fault.CatLoad}
	cal := llfi.FullCalibration()
	st := &CalibrationStudy{
		Programs:   progs,
		N:          n,
		Plain:      make(map[CellKey]*CellResult),
		Calibrated: make(map[CellKey]*CellResult),
		Pinfi:      make(map[CellKey]*CellResult),
	}
	for _, p := range progs {
		for _, cat := range cats {
			key := CellKey{Prog: p.Name, Level: fault.LevelIR, Category: cat}
			run := func(level fault.Level, c *llfi.Calibration, salt int64) (*CellResult, error) {
				camp := &Campaign{
					Prog: p, Level: level, Category: cat, N: n,
					Seed:        cellSeed(seed+salt, p.Name, level, cat),
					Calibration: c,
				}
				res, err := camp.Run()
				if err != nil && strings.Contains(err.Error(), "no dynamic") {
					return nil, nil // empty cell, skip
				}
				return res, err
			}
			plain, err := run(fault.LevelIR, nil, 0)
			if err != nil {
				return nil, fmt.Errorf("plain %v: %w", key, err)
			}
			calRes, err := run(fault.LevelIR, &cal, 1)
			if err != nil {
				return nil, fmt.Errorf("calibrated %v: %w", key, err)
			}
			pf, err := run(fault.LevelASM, nil, 2)
			if err != nil {
				return nil, fmt.Errorf("pinfi %v: %w", key, err)
			}
			if plain != nil {
				st.Plain[key] = plain
			}
			if calRes != nil {
				st.Calibrated[key] = calRes
			}
			if pf != nil {
				st.Pinfi[key] = pf
			}
			if progress != nil && plain != nil && calRes != nil && pf != nil {
				progress(fmt.Sprintf("%-10s %-10s crash: plain=%.0f%% calibrated=%.0f%% pinfi=%.0f%%",
					p.Name, cat, 100*plain.CrashRate().Rate(),
					100*calRes.CrashRate().Rate(), 100*pf.CrashRate().Rate()))
			}
		}
	}
	return st, nil
}

// Render prints the three-way crash comparison and the aggregate
// improvement.
func (st *CalibrationStudy) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Calibration experiment (paper §VII future work): crash %% by injector\n")
	fmt.Fprintf(&sb, "%-12s %-10s %10s %12s %10s %18s\n",
		"benchmark", "category", "LLFI", "LLFI(cal.)", "PINFI", "|gap| plain->cal")
	var plainGaps, calGaps []float64
	for _, p := range st.Programs {
		for _, cat := range []fault.Category{fault.CatAll, fault.CatArith, fault.CatCast, fault.CatLoad} {
			key := CellKey{Prog: p.Name, Level: fault.LevelIR, Category: cat}
			plain, calRes, pf := st.Plain[key], st.Calibrated[key], st.Pinfi[key]
			if plain == nil || calRes == nil || pf == nil {
				continue
			}
			pg := abs(pct(plain.CrashRate()) - pct(pf.CrashRate()))
			cg := abs(pct(calRes.CrashRate()) - pct(pf.CrashRate()))
			plainGaps = append(plainGaps, pg)
			calGaps = append(calGaps, cg)
			fmt.Fprintf(&sb, "%-12s %-10s %9.1f%% %11.1f%% %9.1f%% %8.1f -> %5.1f\n",
				p.Name, cat,
				pct(plain.CrashRate()), pct(calRes.CrashRate()), pct(pf.CrashRate()),
				pg, cg)
		}
	}
	fmt.Fprintf(&sb, "\nmean |crash gap to PINFI|: plain %.1f points, calibrated %.1f points\n",
		stats.Mean(plainGaps), stats.Mean(calGaps))
	return sb.String()
}

// MeanGaps returns the aggregate crash-gap means (plain, calibrated) for
// assertions in tests and benches.
func (st *CalibrationStudy) MeanGaps() (plain, calibrated float64) {
	var plainGaps, calGaps []float64
	for key, p := range st.Plain {
		c, pf := st.Calibrated[key], st.Pinfi[key]
		if c == nil || pf == nil {
			continue
		}
		plainGaps = append(plainGaps, abs(pct(p.CrashRate())-pct(pf.CrashRate())))
		calGaps = append(calGaps, abs(pct(c.CrashRate())-pct(pf.CrashRate())))
	}
	return stats.Mean(plainGaps), stats.Mean(calGaps)
}

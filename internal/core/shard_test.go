package core

import (
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"hlfi/internal/fault"
)

func TestParseShardSpec(t *testing.T) {
	good := map[string]ShardSpec{
		"0/1": {Index: 0, Count: 1},
		"0/3": {Index: 0, Count: 3},
		"2/3": {Index: 2, Count: 3},
	}
	for in, want := range good {
		got, err := ParseShardSpec(in)
		if err != nil || got != want {
			t.Errorf("ParseShardSpec(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	for _, in := range []string{"", "3", "a/3", "0/b", "3/3", "-1/3", "0/0", "0/-2"} {
		if _, err := ParseShardSpec(in); err == nil {
			t.Errorf("ParseShardSpec(%q) accepted", in)
		}
	}
}

// TestShardOwnershipPartition: for any count, the shards partition the
// canonical index space — every index owned exactly once.
func TestShardOwnershipPartition(t *testing.T) {
	for count := 1; count <= 5; count++ {
		for i := 0; i < 40; i++ {
			owners := 0
			for idx := 0; idx < count; idx++ {
				if (ShardSpec{Index: idx, Count: count}).Owns(i) {
					owners++
				}
			}
			if owners != 1 {
				t.Fatalf("cell %d owned by %d of %d shards", i, owners, count)
			}
		}
	}
}

// writeShardFile writes a checkpoint with the given header shape and no
// cell records (header validation does not depend on content).
func writeShardFile(t *testing.T, dir, name string, shape CheckpointShape) string {
	t.Helper()
	path := filepath.Join(dir, name)
	w, err := NewCheckpointWriterShape(path, shape)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestMergeHeaderMismatch: shard checkpoints disagreeing on any pinned
// study-shape field are rejected with a typed *HeaderMismatchError that
// names the offending file and field.
func TestMergeHeaderMismatch(t *testing.T) {
	base := CheckpointShape{N: 10, Seed: 5, Replay: "off", Shard: "0/2"}
	cases := []struct {
		name  string
		other CheckpointShape
		field string
	}{
		{"n", CheckpointShape{N: 20, Seed: 5, Replay: "off", Shard: "1/2"}, "n"},
		{"seed", CheckpointShape{N: 10, Seed: 6, Replay: "off", Shard: "1/2"}, "seed"},
		{"replay", CheckpointShape{N: 10, Seed: 5, Replay: "stride=64", Shard: "1/2"}, "replay"},
		{"shard-count", CheckpointShape{N: 10, Seed: 5, Replay: "off", Shard: "1/3"}, "shard-count"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			ref := writeShardFile(t, dir, "a.jsonl", base)
			bad := writeShardFile(t, dir, "b.jsonl", tc.other)
			_, err := MergeShardCheckpoints([]string{ref, bad})
			var hm *HeaderMismatchError
			if !errors.As(err, &hm) {
				t.Fatalf("got %v, want *HeaderMismatchError", err)
			}
			if hm.File != bad || hm.Reference != ref || hm.Field != tc.field {
				t.Errorf("mismatch = %+v, want file=%s reference=%s field=%s", hm, bad, ref, tc.field)
			}
			if !strings.Contains(err.Error(), filepath.Base(bad)) {
				t.Errorf("error does not name the offending file: %v", err)
			}
		})
	}
}

// TestMergeRejectsUnshardedAndDuplicates: only shard-tagged checkpoints
// merge, and two files claiming one shard index are rejected.
func TestMergeRejectsUnshardedAndDuplicates(t *testing.T) {
	dir := t.TempDir()
	plain := writeShardFile(t, dir, "plain.jsonl", CheckpointShape{N: 10, Seed: 5, Replay: "off"})
	if _, err := MergeShardCheckpoints([]string{plain}); err == nil ||
		!strings.Contains(err.Error(), "no shard header") {
		t.Errorf("unsharded checkpoint accepted for merge: %v", err)
	}

	a := writeShardFile(t, dir, "a.jsonl", CheckpointShape{N: 10, Seed: 5, Replay: "off", Shard: "0/2"})
	b := writeShardFile(t, dir, "b.jsonl", CheckpointShape{N: 10, Seed: 5, Replay: "off", Shard: "0/2"})
	_, err := MergeShardCheckpoints([]string{a, b})
	var dup *DuplicateShardError
	if !errors.As(err, &dup) {
		t.Fatalf("got %v, want *DuplicateShardError", err)
	}
	if dup.Index != 0 || dup.Prior != a || dup.File != b {
		t.Errorf("duplicate = %+v, want index 0, prior %s, file %s", dup, a, b)
	}
}

// TestMergeMissingShards: a partial file set fails with exactly the
// absent shard indices enumerated.
func TestMergeMissingShards(t *testing.T) {
	dir := t.TempDir()
	have := []string{
		writeShardFile(t, dir, "s1.jsonl", CheckpointShape{N: 10, Seed: 5, Replay: "off", Shard: "1/4"}),
		writeShardFile(t, dir, "s3.jsonl", CheckpointShape{N: 10, Seed: 5, Replay: "off", Shard: "3/4"}),
	}
	_, err := MergeShardCheckpoints(have)
	var miss *MissingShardsError
	if !errors.As(err, &miss) {
		t.Fatalf("got %v, want *MissingShardsError", err)
	}
	if miss.Count != 4 || len(miss.Missing) != 2 || miss.Missing[0] != 0 || miss.Missing[1] != 2 {
		t.Errorf("missing = %+v, want count 4, missing [0 2]", miss)
	}
	for _, idx := range []string{"0", "2"} {
		if !strings.Contains(err.Error(), idx) {
			t.Errorf("error does not enumerate missing shard %s: %v", idx, err)
		}
	}
}

// TestMergeIncompleteShard: a complete shard file set whose worker died
// mid-run (cells missing from its checkpoint) passes the merge but
// fails VerifyComplete, attributing every unaccounted cell to the shard
// that owns it.
func TestMergeIncompleteShard(t *testing.T) {
	p, err := BuildProgram("tiny.c", tinySrc)
	if err != nil {
		t.Fatal(err)
	}
	cats := []fault.Category{fault.CatAll, fault.CatArith}
	cells := CanonicalCells([]*Program{p}, cats)

	dir := t.TempDir()
	var paths []string
	for i := 0; i < 2; i++ {
		spec := ShardSpec{Index: i, Count: 2}
		path := filepath.Join(dir, fmt.Sprintf("shard-%d.jsonl", i))
		w, err := NewCheckpointWriterShape(path, CheckpointShape{N: 5, Seed: 7, Replay: "off", Shard: spec.String()})
		if err != nil {
			t.Fatal(err)
		}
		cfg := StudyConfig{Programs: []*Program{p}, N: 5, Seed: 7,
			Categories: cats, Checkpoint: w, Shard: &spec}
		if _, err := RunStudy(cfg); err != nil {
			t.Fatal(err)
		}
		w.Close()
		paths = append(paths, path)
	}

	merged, err := MergeShardCheckpoints(paths)
	if err != nil {
		t.Fatal(err)
	}
	if err := merged.VerifyComplete(cells); err != nil {
		t.Fatalf("complete shard set reported incomplete: %v", err)
	}

	// Simulate shard 1 dying mid-run: remove one of its cells from the
	// merged state. Shard 1 owns the odd canonical indices.
	victim := cells[1]
	if merged.State.Cells[victim] == nil {
		t.Fatalf("expected cell %v in merged state", victim)
	}
	delete(merged.State.Cells, victim)
	err = merged.VerifyComplete(cells)
	var inc *IncompleteShardsError
	if !errors.As(err, &inc) {
		t.Fatalf("got %v, want *IncompleteShardsError", err)
	}
	if len(inc.Shards) != 1 {
		t.Fatalf("incomplete shards = %+v, want exactly shard 1", inc.Shards)
	}
	s := inc.Shards[0]
	if s.Index != 1 || s.File != paths[1] || len(s.Missing) != 1 || s.Missing[0] != victim {
		t.Errorf("incomplete = %+v, want index 1, file %s, missing [%v]", s, paths[1], victim)
	}
}

package core_test

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"

	"hlfi/internal/bench"
	"hlfi/internal/core"
	"hlfi/internal/fault"
	"hlfi/internal/obs"
	"hlfi/internal/telemetry"
)

// TestObservabilityDifferentialOracle is the zero-cost gate for the
// observability layer: a study run with live metrics and attempt tracing
// armed must produce byte-identical rendered reports AND byte-identical
// checkpoint files compared to the same study with observability off,
// sequentially and under the parallel scheduler. The tracers consume no
// randomness and the metrics registry sits entirely off the result path,
// so any divergence here is a bug in the instrumentation.
func TestObservabilityDifferentialOracle(t *testing.T) {
	progs := buildSome(t, "quantumm", "mcfm")
	dir := t.TempDir()

	run := func(name string, om *obs.Metrics, trace, parallel int) (*core.Study, []byte) {
		path := filepath.Join(dir, name+".ckpt")
		ckpt, err := core.NewCheckpointWriter(path, 10, 3, (*core.ReplayConfig)(nil).Signature())
		if err != nil {
			t.Fatal(err)
		}
		st, err := core.RunStudy(core.StudyConfig{
			Programs: progs, N: 10, Seed: 3,
			Parallel: parallel, Checkpoint: ckpt,
			Obs: om, TraceAttempts: trace,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := ckpt.Close(); err != nil {
			t.Fatal(err)
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return st, raw
	}

	baseline, baseCkpt := run("baseline", nil, 0, 1)

	om := obs.New()
	observed, obsCkpt := run("observed", om, 4, 1)
	sameStudy(t, "observed-sequential", baseline, observed)
	if string(obsCkpt) != string(baseCkpt) {
		t.Error("checkpoint bytes diverged with observability enabled (sequential)")
	}

	// Parallel checkpoints record cells at completion time by design
	// (durability never waits for a slow earlier cell), so their line
	// order is scheduling-dependent; the content must still match the
	// sequential baseline line-for-line once order is factored out.
	pom := obs.New()
	pobserved, pobsCkpt := run("observed-parallel", pom, 4, 3)
	sameStudy(t, "observed-parallel", baseline, pobserved)
	if got, want := sortedLines(pobsCkpt), sortedLines(baseCkpt); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("checkpoint content diverged with observability enabled (parallel):\n  want %q\n  got  %q", want, got)
	}

	// The registry must have actually observed the run it rode along on.
	for _, m := range []*obs.Metrics{om, pom} {
		if m.Attempts.Value() == 0 {
			t.Error("attempts counter never incremented")
		}
		if m.TraceAttempts.Value() == 0 {
			t.Error("trace-attempts counter never incremented")
		}
		if m.CellsDone.Value() != uint64(len(baseline.Cells)) {
			t.Errorf("cells-done gauge = %d, want %d", m.CellsDone.Value(), len(baseline.Cells))
		}
		if m.CellsInFlight.Value() != 0 {
			t.Errorf("cells-in-flight gauge = %d after the study, want 0", m.CellsInFlight.Value())
		}
	}
}

// TestTracingAddsOnlyTraceEvents checks the event-stream contract of
// -trace-attempts: the sequence of non-trace events is unchanged, and
// every attempt_trace event is well-formed — it starts at the injection
// site, ends on an outcome edge, and names an outcome consistent with
// the cell's accounting.
func TestTracingAddsOnlyTraceEvents(t *testing.T) {
	progs := buildSome(t, "quantumm")
	run := func(trace int) *captureRecorder {
		cap := &captureRecorder{}
		_, err := core.RunStudy(core.StudyConfig{
			Programs: progs, N: 8, Seed: 7, Events: cap,
			Categories:    []fault.Category{fault.CatAll},
			TraceAttempts: trace,
		})
		if err != nil {
			t.Fatal(err)
		}
		return cap
	}

	plain, traced := run(0), run(5)
	if got, want := types(traced.events, false), types(plain.events, true); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("non-trace event sequence changed:\n  without tracing: %v\n  with tracing:    %v", want, got)
	}

	var seen int
	for _, e := range traced.events {
		if e.Type != telemetry.EventAttemptTrace {
			continue
		}
		seen++
		if len(e.Spans) == 0 {
			t.Fatalf("attempt_trace %d has no spans", e.Attempt)
		}
		if e.Spans[0].Kind != "inject" {
			t.Errorf("trace %d starts with %q, want inject", e.Attempt, e.Spans[0].Kind)
		}
		last := e.Spans[len(e.Spans)-1]
		if last.Kind != "outcome" || last.Site != e.Outcome {
			t.Errorf("trace %d ends with %q/%q, want outcome/%q", e.Attempt, last.Kind, last.Site, e.Outcome)
		}
	}
	if seen == 0 {
		t.Fatal("tracing armed but no attempt_trace events recorded")
	}
	if plainTraces := types(plain.events, false); len(plainTraces) != len(types(plain.events, true)) {
		t.Error("attempt_trace events recorded with tracing disabled")
	}
}

// TestStudyAbortFlushesEventStream is the regression test for the
// abort-path durability fix: an aborting study must flush its telemetry
// sinks immediately before emitting study_abort (so the buffered tail of
// the stream survives a process that exits right after) and once more
// after it (so the abort marker itself does).
func TestStudyAbortFlushesEventStream(t *testing.T) {
	p, err := core.BuildProgram("tiny.c", `
int main() {
    int s = 0;
    for (int i = 0; i < 8; i++) s += i * i;
    print_int(s);
    print_str("\n");
    return 0;
}
`)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	log := &flushLog{}
	_, err = core.RunStudyContext(ctx, core.StudyConfig{
		Programs:   []*core.Program{p},
		N:          5,
		Seed:       2,
		Categories: []fault.Category{fault.CatAll},
		Events:     log,
	})
	if !errors.Is(err, core.ErrAborted) {
		t.Fatalf("cancelled study returned %v, want ErrAborted", err)
	}
	abortAt := -1
	for i, op := range log.ops {
		if op == "record:"+telemetry.EventStudyAbort {
			abortAt = i
		}
	}
	if abortAt < 0 {
		t.Fatal("no study_abort recorded")
	}
	if abortAt == 0 || log.ops[abortAt-1] != "flush" {
		t.Errorf("no flush immediately before study_abort; ops = %v", log.ops)
	}
	if abortAt == len(log.ops)-1 || log.ops[abortAt+1] != "flush" {
		t.Errorf("no flush after study_abort; ops = %v", log.ops)
	}
}

// TestSnapshotCacheGaugePostEviction drives a shared snapshot cache over
// budget across two (program, level) entries and checks the usage gauges
// publish the post-eviction footprint — the surviving entry's bytes
// alone, in both the ReplayStats gauge and the live metrics registry.
func TestSnapshotCacheGaugePostEviction(t *testing.T) {
	p := buildSome(t, "quantumm")[0]
	runCell := func(level fault.Level, rc *core.ReplayConfig) {
		c := &core.Campaign{
			Prog: p, Level: level, Category: fault.CatAll,
			N: 5, Seed: 9, Replay: rc,
		}
		if _, err := c.Run(); err != nil {
			t.Fatal(err)
		}
	}
	footprint := func(level fault.Level) uint64 {
		stats := &telemetry.ReplayStats{}
		runCell(level, &core.ReplayConfig{MemBudget: 1, Stats: stats})
		return stats.CacheBytes()
	}
	asmOnly := footprint(fault.LevelASM)

	stats := &telemetry.ReplayStats{}
	om := obs.New()
	shared := &core.ReplayConfig{MemBudget: 1, Stats: stats, Obs: om}
	runCell(fault.LevelIR, shared)
	irBytes := stats.CacheBytes()
	runCell(fault.LevelASM, shared)

	if stats.Evictions() == 0 {
		t.Fatal("over-budget cache never evicted")
	}
	if got := stats.CacheBytes(); got != asmOnly {
		t.Errorf("post-eviction gauge = %d bytes, want the surviving entry's %d (pre-eviction footprint was %d+%d)",
			got, asmOnly, irBytes, asmOnly)
	}
	if got := uint64(om.SnapshotCacheBytes.Value()); got != asmOnly {
		t.Errorf("obs cache-bytes gauge = %d, want %d", got, asmOnly)
	}
	if om.SnapshotEvictions.Value() != stats.Evictions() {
		t.Errorf("obs evictions = %d, stats evictions = %d", om.SnapshotEvictions.Value(), stats.Evictions())
	}
}

func buildSome(t *testing.T, names ...string) []*core.Program {
	t.Helper()
	var progs []*core.Program
	for _, name := range names {
		p, err := bench.Build(name)
		if err != nil {
			t.Fatal(err)
		}
		progs = append(progs, p)
	}
	return progs
}

func sortedLines(raw []byte) []string {
	lines := strings.Split(strings.TrimRight(string(raw), "\n"), "\n")
	sort.Strings(lines)
	return lines
}

// types lists the event-type sequence; withTraces=false drops
// attempt_trace events first.
func types(events []telemetry.Event, withTraces bool) []string {
	var out []string
	for _, e := range events {
		if !withTraces && e.Type == telemetry.EventAttemptTrace {
			continue
		}
		out = append(out, e.Type)
	}
	return out
}

// flushLog records the interleaving of Record and Flush calls.
type flushLog struct {
	mu  sync.Mutex
	ops []string
}

func (l *flushLog) Record(e telemetry.Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.ops = append(l.ops, "record:"+e.Type)
}

func (l *flushLog) Flush() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.ops = append(l.ops, "flush")
	return nil
}

package core

import (
	"fmt"
	"strings"

	"hlfi/internal/fault"
	"hlfi/internal/stats"
)

// RenderFigure3 renders the aggregate outcome breakdown (crash/SDC/benign
// per benchmark, both tools, category "all") — the paper's Figure 3 as a
// text table.
func (st *Study) RenderFigure3() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 3: aggregate fault injection results ('all' category), %% of activated faults\n")
	fmt.Fprintf(&sb, "%-12s %8s %8s %8s %8s | %8s %8s %8s %8s\n",
		"benchmark", "LL.crash", "LL.sdc", "LL.ben", "LL.hang", "PF.crash", "PF.sdc", "PF.ben", "PF.hang")
	var llC, llS, llB, pfC, pfS, pfB []float64
	for _, p := range st.Programs {
		ll := st.Cell(p.Name, fault.LevelIR, fault.CatAll)
		pf := st.Cell(p.Name, fault.LevelASM, fault.CatAll)
		if ll == nil || pf == nil {
			continue
		}
		fmt.Fprintf(&sb, "%-12s %7.1f%% %7.1f%% %7.1f%% %7.1f%% | %7.1f%% %7.1f%% %7.1f%% %7.1f%%\n",
			p.Name,
			pct(ll.CrashRate()), pct(ll.SDCRate()), pct(ll.BenignRate()), pct(ll.HangRate()),
			pct(pf.CrashRate()), pct(pf.SDCRate()), pct(pf.BenignRate()), pct(pf.HangRate()))
		llC = append(llC, pct(ll.CrashRate()))
		llS = append(llS, pct(ll.SDCRate()))
		llB = append(llB, pct(ll.BenignRate()))
		pfC = append(pfC, pct(pf.CrashRate()))
		pfS = append(pfS, pct(pf.SDCRate()))
		pfB = append(pfB, pct(pf.BenignRate()))
	}
	fmt.Fprintf(&sb, "%-12s %7.1f%% %7.1f%% %7.1f%% %8s | %7.1f%% %7.1f%% %7.1f%% %8s\n",
		"average",
		stats.Mean(llC), stats.Mean(llS), stats.Mean(llB), "",
		stats.Mean(pfC), stats.Mean(pfS), stats.Mean(pfB), "")
	return sb.String()
}

// RenderTableIV renders the dynamic candidate-instruction counts per
// category for both tools, with each category's share of the "all" count
// — the paper's Table IV.
func (st *Study) RenderTableIV() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table IV: dynamic (runtime) injection-candidate instructions\n")
	fmt.Fprintf(&sb, "%-12s %-6s %14s %16s %14s %14s %16s\n",
		"benchmark", "tool", "all", "arithmetic", "cast", "cmp", "load")
	for _, p := range st.Programs {
		for _, level := range []fault.Level{fault.LevelIR, fault.LevelASM} {
			all := st.DynCandidates(p.Name, level, fault.CatAll)
			row := make([]string, 0, 4)
			for _, cat := range []fault.Category{fault.CatArith, fault.CatCast, fault.CatCmp, fault.CatLoad} {
				n := st.DynCandidates(p.Name, level, cat)
				share := 0.0
				if all > 0 {
					share = 100 * float64(n) / float64(all)
				}
				row = append(row, fmt.Sprintf("%d (%.0f%%)", n, share))
			}
			fmt.Fprintf(&sb, "%-12s %-6s %14d %16s %14s %14s %16s\n",
				p.Name, level, all, row[0], row[1], row[2], row[3])
		}
	}
	return sb.String()
}

// RenderFigure4 renders SDC percentages with 95% confidence intervals per
// category — the paper's Figure 4 (a)–(e).
func (st *Study) RenderFigure4() string {
	var sb strings.Builder
	sub := map[fault.Category]string{
		fault.CatArith: "(a) arithmetic instructions",
		fault.CatCast:  "(b) cast instructions",
		fault.CatCmp:   "(c) cmp instructions",
		fault.CatLoad:  "(d) load instructions",
		fault.CatAll:   "(e) all instructions",
	}
	order := []fault.Category{fault.CatArith, fault.CatCast, fault.CatCmp, fault.CatLoad, fault.CatAll}
	fmt.Fprintf(&sb, "Figure 4: SDC percentage among activated faults (±95%% CI)\n")
	for _, cat := range order {
		fmt.Fprintf(&sb, "\n%s\n", sub[cat])
		fmt.Fprintf(&sb, "%-12s %18s %18s %10s\n", "benchmark", "LLFI", "PINFI", "CIs overlap")
		for _, p := range st.Programs {
			ll := st.Cell(p.Name, fault.LevelIR, cat)
			pf := st.Cell(p.Name, fault.LevelASM, cat)
			if ll == nil || pf == nil {
				continue
			}
			a, b := ll.SDCRate(), pf.SDCRate()
			fmt.Fprintf(&sb, "%-12s %9.1f%% ±%4.1f%% %9.1f%% ±%4.1f%% %10v\n",
				p.Name,
				100*a.Rate(), 100*a.WaldCI(),
				100*b.Rate(), 100*b.WaldCI(),
				stats.Overlaps(a, b))
		}
	}
	return sb.String()
}

// RenderTableV renders crash percentages per category for both tools —
// the paper's Table V.
func (st *Study) RenderTableV() string {
	var sb strings.Builder
	order := []fault.Category{fault.CatAll, fault.CatArith, fault.CatCast, fault.CatCmp, fault.CatLoad}
	fmt.Fprintf(&sb, "Table V: crash percentage among activated faults\n")
	fmt.Fprintf(&sb, "%-12s", "benchmark")
	for _, cat := range order {
		fmt.Fprintf(&sb, " | %-6s LLFI PINFI", cat.String()[:min(6, len(cat.String()))])
	}
	sb.WriteString("\n")
	for _, p := range st.Programs {
		fmt.Fprintf(&sb, "%-12s", p.Name)
		for _, cat := range order {
			ll := st.Cell(p.Name, fault.LevelIR, cat)
			pf := st.Cell(p.Name, fault.LevelASM, cat)
			if ll == nil || pf == nil {
				fmt.Fprintf(&sb, " | %-6s    -     -", "")
				continue
			}
			fmt.Fprintf(&sb, " | %-6s %3.0f%%  %3.0f%%", "",
				pct(ll.CrashRate()), pct(pf.CrashRate()))
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// RenderSummary prints the headline comparison: SDC agreement vs crash
// divergence between the two injectors (the paper's core finding).
func (st *Study) RenderSummary() string {
	var sb strings.Builder
	var sdcDiffs, crashDiffs []float64
	agree, total := 0, 0
	for _, p := range st.Programs {
		for _, cat := range fault.Categories {
			ll := st.Cell(p.Name, fault.LevelIR, cat)
			pf := st.Cell(p.Name, fault.LevelASM, cat)
			if ll == nil || pf == nil {
				continue
			}
			sdcDiffs = append(sdcDiffs, abs(pct(ll.SDCRate())-pct(pf.SDCRate())))
			crashDiffs = append(crashDiffs, abs(pct(ll.CrashRate())-pct(pf.CrashRate())))
			if stats.Overlaps(ll.SDCRate(), pf.SDCRate()) {
				agree++
			}
			total++
		}
	}
	fmt.Fprintf(&sb, "Summary (n=%d per cell):\n", st.N)
	fmt.Fprintf(&sb, "  mean |LLFI-PINFI| SDC difference   : %5.1f points\n", stats.Mean(sdcDiffs))
	fmt.Fprintf(&sb, "  mean |LLFI-PINFI| crash difference : %5.1f points\n", stats.Mean(crashDiffs))
	fmt.Fprintf(&sb, "  max  |LLFI-PINFI| crash difference : %5.1f points\n", maxOf(crashDiffs))
	fmt.Fprintf(&sb, "  SDC 95%%-CI overlap                 : %d/%d cells\n", agree, total)
	return sb.String()
}

func pct(p stats.Proportion) float64 { return 100 * p.Rate() }

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func maxOf(xs []float64) float64 {
	m := 0.0
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

package core

import (
	"context"
	"errors"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"hlfi/internal/fault"
	"hlfi/internal/telemetry"
)

// syntheticProg is enough Program for campaigns whose injector is
// overridden: only the name is consulted.
func syntheticProg() *Program { return &Program{Name: "synthetic"} }

// panicOnAttempts builds an injector override whose draw panics on the
// given zero-based call indices (sequential-stream accounting) and
// otherwise alternates benign/SDC.
func panicOnAttempts(panics ...int) func() (func(*rand.Rand) fault.Outcome, uint64, error) {
	bad := map[int]bool{}
	for _, a := range panics {
		bad[a] = true
	}
	return func() (func(*rand.Rand) fault.Outcome, uint64, error) {
		calls := 0 // fresh stream per injector construction (one per campaign)
		return func(*rand.Rand) fault.Outcome {
			k := calls
			calls++
			if bad[k] {
				panic("synthetic simulator fault")
			}
			if k%2 == 0 {
				return fault.OutcomeBenign
			}
			return fault.OutcomeSDC
		}, 42, nil
	}
}

func TestPanicContainmentSequential(t *testing.T) {
	var metrics CellMetrics
	c := &Campaign{
		Prog: syntheticProg(), Level: fault.LevelIR, Category: fault.CatAll,
		N: 10, Seed: 99, SimFaultLimit: -1, Metrics: &metrics,
		injectorOverride: panicOnAttempts(2, 5),
	}
	res, err := c.Run()
	if err != nil {
		t.Fatalf("tolerant run failed: %v", err)
	}
	if res.Activated() != 10 {
		t.Errorf("activated = %d, want 10", res.Activated())
	}
	if res.SimFaults != 2 {
		t.Errorf("SimFaults = %d, want 2", res.SimFaults)
	}
	if res.Attempts != 12 {
		t.Errorf("attempts = %d, want 12 (10 activated + 2 contained panics)", res.Attempts)
	}
	if len(metrics.SimFaults) != 2 {
		t.Fatalf("metrics recorded %d sim faults, want 2", len(metrics.SimFaults))
	}
	sf := metrics.SimFaults[0]
	if sf.Attempt != 2 || sf.Seed != 99 || !sf.Sequential {
		t.Errorf("first sim fault = %+v, want attempt 2, seed 99, sequential", sf)
	}
	if !strings.Contains(sf.Panic, "synthetic simulator fault") {
		t.Errorf("panic value not captured: %q", sf.Panic)
	}
	if sf.Stack == "" {
		t.Error("stack not captured")
	}
}

func TestPanicFailFast(t *testing.T) {
	c := &Campaign{
		Prog: syntheticProg(), Level: fault.LevelASM, Category: fault.CatArith,
		N: 10, Seed: 7, // SimFaultLimit zero value: fail-fast
		injectorOverride: panicOnAttempts(3),
	}
	_, err := c.Run()
	if err == nil {
		t.Fatal("fail-fast run succeeded despite panic")
	}
	if !errors.Is(err, ErrSimFault) {
		t.Fatalf("error %v does not match ErrSimFault", err)
	}
	var sfe *SimFaultError
	if !errors.As(err, &sfe) {
		t.Fatalf("error %v is not a *SimFaultError", err)
	}
	if sfe.Fault.Attempt != 3 || sfe.Fault.Seed != 7 || !sfe.Fault.Sequential {
		t.Errorf("reproducing record = %+v, want attempt 3, seed 7, sequential", sfe.Fault)
	}
}

func TestPanicToleranceLimit(t *testing.T) {
	c := &Campaign{
		Prog: syntheticProg(), Level: fault.LevelIR, Category: fault.CatAll,
		N: 10, Seed: 1, SimFaultLimit: 1,
		injectorOverride: panicOnAttempts(0, 1),
	}
	_, err := c.Run()
	var sfe *SimFaultError
	if !errors.As(err, &sfe) {
		t.Fatalf("limit-1 run with 2 panics returned %v, want *SimFaultError", err)
	}
	if sfe.Limit != 1 || sfe.Fault.Attempt != 1 {
		t.Errorf("got limit %d attempt %d, want the second panic to exhaust limit 1",
			sfe.Limit, sfe.Fault.Attempt)
	}
}

func TestPanicContainmentParallel(t *testing.T) {
	const seed, target = 31, 5
	// The parallel draw sees only its per-attempt rng, so key the panic
	// off the attempt seed's first draw — deterministic per index.
	sentinel := rand.New(rand.NewSource(attemptSeed(seed, target))).Int63()
	override := func() (func(*rand.Rand) fault.Outcome, uint64, error) {
		return func(rng *rand.Rand) fault.Outcome {
			if rng.Int63() == sentinel {
				panic("parallel simulator fault")
			}
			return fault.OutcomeSDC
		}, 42, nil
	}
	var metrics CellMetrics
	c := &Campaign{
		Prog: syntheticProg(), Level: fault.LevelASM, Category: fault.CatAll,
		N: 20, Seed: seed, SimFaultLimit: -1, Metrics: &metrics,
		injectorOverride: override,
	}
	res, err := c.RunParallel(4)
	if err != nil {
		t.Fatalf("tolerant parallel run failed: %v", err)
	}
	if res.Activated() != 20 || res.SimFaults != 1 {
		t.Errorf("activated=%d simFaults=%d, want 20 and 1", res.Activated(), res.SimFaults)
	}
	if len(metrics.SimFaults) != 1 {
		t.Fatalf("metrics recorded %d sim faults, want 1", len(metrics.SimFaults))
	}
	sf := metrics.SimFaults[0]
	if sf.Attempt != target || sf.Seed != attemptSeed(seed, target) || sf.Sequential {
		t.Errorf("sim fault = %+v, want attempt %d with its own attempt seed", sf, target)
	}

	// Fail-fast surfaces the same reproducing seed as a typed error.
	c2 := &Campaign{
		Prog: syntheticProg(), Level: fault.LevelASM, Category: fault.CatAll,
		N: 20, Seed: seed, injectorOverride: override,
	}
	_, err = c2.RunParallel(4)
	var sfe *SimFaultError
	if !errors.As(err, &sfe) {
		t.Fatalf("fail-fast parallel run returned %v, want *SimFaultError", err)
	}
	if sfe.Fault.Seed != attemptSeed(seed, target) {
		t.Errorf("reproducing seed %d, want %d", sfe.Fault.Seed, attemptSeed(seed, target))
	}
}

func TestNotActivatedTyped(t *testing.T) {
	override := func() (func(*rand.Rand) fault.Outcome, uint64, error) {
		return func(*rand.Rand) fault.Outcome { return fault.OutcomeNotActivated }, 42, nil
	}
	c := &Campaign{
		Prog: syntheticProg(), Level: fault.LevelIR, Category: fault.CatCast,
		N: 5, Seed: 3, injectorOverride: override,
	}
	_, err := c.Run()
	if !errors.Is(err, ErrNotActivated) {
		t.Errorf("budget exhaustion returned %v, want ErrNotActivated", err)
	}
	c2 := &Campaign{
		Prog: syntheticProg(), Level: fault.LevelIR, Category: fault.CatCast,
		N: 5, Seed: 3, injectorOverride: override,
	}
	_, err = c2.RunParallel(3)
	if !errors.Is(err, ErrNotActivated) {
		t.Errorf("parallel budget exhaustion returned %v, want ErrNotActivated", err)
	}
}

func TestWatchdogDeadline(t *testing.T) {
	slow := func() (func(*rand.Rand) fault.Outcome, uint64, error) {
		return func(*rand.Rand) fault.Outcome {
			time.Sleep(5 * time.Millisecond)
			return fault.OutcomeBenign
		}, 42, nil
	}
	c := &Campaign{
		Prog: syntheticProg(), Level: fault.LevelIR, Category: fault.CatAll,
		N: 1000, Seed: 1, Deadline: 15 * time.Millisecond,
		injectorOverride: slow,
	}
	_, err := c.Run()
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("slow cell returned %v, want ErrDeadline", err)
	}
	var de *DeadlineError
	if !errors.As(err, &de) {
		t.Fatalf("error %v is not a *DeadlineError", err)
	}
	if de.Attempts == 0 || de.Elapsed < c.Deadline {
		t.Errorf("deadline record = %+v, want progress before expiry", de)
	}
	c2 := &Campaign{
		Prog: syntheticProg(), Level: fault.LevelIR, Category: fault.CatAll,
		N: 100000, Seed: 1, Deadline: 15 * time.Millisecond,
		injectorOverride: slow,
	}
	if _, err := c2.RunParallel(2); !errors.Is(err, ErrDeadline) {
		t.Errorf("slow parallel cell returned %v, want ErrDeadline", err)
	}
}

// hookInjector installs an injector override on campaigns matching the
// (level, category) pair; other cells run their real injectors.
func hookInjector(t *testing.T, level fault.Level, cat fault.Category,
	inj func() (func(*rand.Rand) fault.Outcome, uint64, error)) {
	t.Helper()
	testCampaignHook = func(c *Campaign) {
		if c.Level == level && c.Category == cat {
			c.injectorOverride = inj
		}
	}
	t.Cleanup(func() { testCampaignHook = nil })
}

const tinySrc = `
int main() {
    int s = 0;
    for (int i = 0; i < 8; i++) s += i * i;
    print_int(s);
    print_str("\n");
    return 0;
}
`

type eventCapture struct {
	mu     sync.Mutex
	events []telemetry.Event
}

func (c *eventCapture) Record(e telemetry.Event) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.events = append(c.events, e)
}

func (c *eventCapture) ofType(typ string) []telemetry.Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []telemetry.Event
	for _, e := range c.events {
		if e.Type == typ {
			out = append(out, e)
		}
	}
	return out
}

// TestStudySimFaultContainment: an injected simulator panic in one cell
// never terminates the study in tolerant mode; the other cells' results
// are unchanged and the panic surfaces as a sim_fault event.
func TestStudySimFaultContainment(t *testing.T) {
	p, err := BuildProgram("tiny.c", tinySrc)
	if err != nil {
		t.Fatal(err)
	}
	cfg := StudyConfig{
		Programs:   []*Program{p},
		N:          10,
		Seed:       5,
		Categories: []fault.Category{fault.CatAll},
	}
	clean, err := RunStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}

	hookInjector(t, fault.LevelIR, fault.CatAll, panicOnAttempts(1))
	var cap eventCapture
	cfg.SimFaultLimit = -1
	cfg.Events = &cap
	faulty, err := RunStudy(cfg)
	if err != nil {
		t.Fatalf("tolerant study failed: %v", err)
	}

	asmKey := CellKey{Prog: p.Name, Level: fault.LevelASM, Category: fault.CatAll}
	if got, want := faulty.Cells[asmKey], clean.Cells[asmKey]; got == nil || *got != *want {
		t.Errorf("unhooked cell changed:\nclean  %+v\nfaulty %+v", want, got)
	}
	irKey := CellKey{Prog: p.Name, Level: fault.LevelIR, Category: fault.CatAll}
	ir := faulty.Cells[irKey]
	if ir == nil || ir.SimFaults != 1 || ir.Activated() != 10 {
		t.Errorf("hooked cell = %+v, want 10 activated with 1 contained panic", ir)
	}
	sfEvents := cap.ofType(telemetry.EventSimFault)
	if len(sfEvents) != 1 {
		t.Fatalf("got %d sim_fault events, want 1", len(sfEvents))
	}
	e := sfEvents[0]
	if e.Attempt != 1 || e.AttemptSeed == 0 || e.Panic == "" || !e.Sequential {
		t.Errorf("sim_fault event = %+v, want attempt 1 with seed and panic value", e)
	}

	// Fail-fast mode surfaces the typed error with the reproducing seed.
	cfg.SimFaultLimit = 0
	cfg.Events = nil
	_, err = RunStudy(cfg)
	var sfe *SimFaultError
	if !errors.As(err, &sfe) {
		t.Fatalf("fail-fast study returned %v, want *SimFaultError", err)
	}
	if sfe.Fault.Seed == 0 {
		t.Error("fail-fast error lacks a reproducing seed")
	}
}

// TestStudyDeadlineDegradedSkip: an over-deadline cell is dropped with a
// cell_deadline event; the study completes without it.
func TestStudyDeadlineDegradedSkip(t *testing.T) {
	p, err := BuildProgram("tiny.c", tinySrc)
	if err != nil {
		t.Fatal(err)
	}
	hookInjector(t, fault.LevelIR, fault.CatAll, func() (func(*rand.Rand) fault.Outcome, uint64, error) {
		return func(*rand.Rand) fault.Outcome {
			time.Sleep(25 * time.Millisecond)
			return fault.OutcomeBenign
		}, 42, nil
	})
	var cap eventCapture
	st, err := RunStudy(StudyConfig{
		Programs:     []*Program{p},
		N:            10, // the hooked IR cell needs 250ms of draws: over deadline
		Seed:         5,
		Categories:   []fault.Category{fault.CatAll},
		CellDeadline: 100 * time.Millisecond,
		Events:       &cap,
	})
	if err != nil {
		t.Fatalf("study with one degraded cell failed: %v", err)
	}
	if st.Cells[CellKey{Prog: p.Name, Level: fault.LevelIR, Category: fault.CatAll}] != nil {
		t.Error("over-deadline cell present in results")
	}
	if len(cap.ofType(telemetry.EventCellDeadline)) == 0 {
		t.Error("no cell_deadline event emitted")
	}
}

// TestStudyNotActivatedSoftSkip: budget exhaustion skips the cell (with
// a cell_skip event) instead of failing the study.
func TestStudyNotActivatedSoftSkip(t *testing.T) {
	p, err := BuildProgram("tiny.c", tinySrc)
	if err != nil {
		t.Fatal(err)
	}
	hookInjector(t, fault.LevelIR, fault.CatAll, func() (func(*rand.Rand) fault.Outcome, uint64, error) {
		return func(*rand.Rand) fault.Outcome { return fault.OutcomeNotActivated }, 42, nil
	})
	var cap eventCapture
	st, err := RunStudy(StudyConfig{
		Programs:   []*Program{p},
		N:          10,
		Seed:       5,
		Categories: []fault.Category{fault.CatAll},
		Events:     &cap,
	})
	if err != nil {
		t.Fatalf("study with never-activating cell failed: %v", err)
	}
	if st.Cells[CellKey{Prog: p.Name, Level: fault.LevelIR, Category: fault.CatAll}] != nil {
		t.Error("never-activating cell present in results")
	}
	skips := cap.ofType(telemetry.EventCellSkip)
	if len(skips) != 1 || !strings.Contains(skips[0].Err, "no activated faults") {
		t.Errorf("cell_skip events = %+v, want one carrying ErrNotActivated", skips)
	}
}

// TestStudyCancellation: a cancelled context aborts the study
// cooperatively — partial results come back alongside ErrAborted and the
// stream ends in study_abort.
func TestStudyCancellation(t *testing.T) {
	p, err := BuildProgram("tiny.c", tinySrc)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before any cell runs: everything is "queued"
	var cap eventCapture
	st, err := RunStudyContext(ctx, StudyConfig{
		Programs:   []*Program{p},
		N:          10,
		Seed:       5,
		Categories: []fault.Category{fault.CatAll},
		Events:     &cap,
	})
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("cancelled study returned %v, want ErrAborted", err)
	}
	if st == nil {
		t.Fatal("cancelled study returned no partial results")
	}
	if len(cap.ofType(telemetry.EventStudyAbort)) != 1 {
		t.Error("no study_abort event emitted")
	}
	if len(cap.ofType(telemetry.EventStudyDone)) != 0 {
		t.Error("study_done emitted for an aborted study")
	}
}

package core_test

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"hlfi/internal/cli"
	"hlfi/internal/core"
	"hlfi/internal/obs/trace"
)

// TestTraceDifferentialOracle is the zero-cost gate for the campaign
// flight recorder: a study run with the span recorder armed must
// produce a byte-identical rendered report AND a byte-identical
// checkpoint file compared to the same study untraced, sequentially and
// under the parallel scheduler. The recorder consumes no randomness and
// writes nothing to the result path, so any divergence is an
// instrumentation bug.
func TestTraceDifferentialOracle(t *testing.T) {
	progs := buildSome(t, "quantumm")
	dir := t.TempDir()

	run := func(name string, tracer *trace.Recorder, parallel int) (string, []byte) {
		path := filepath.Join(dir, name+".ckpt")
		ckpt, err := core.NewCheckpointWriter(path, 8, 5, (*core.ReplayConfig)(nil).Signature())
		if err != nil {
			t.Fatal(err)
		}
		st, err := core.RunStudy(core.StudyConfig{
			Programs: progs, N: 8, Seed: 5,
			Parallel: parallel, Checkpoint: ckpt, Trace: tracer,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := ckpt.Close(); err != nil {
			t.Fatal(err)
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		cli.RenderExperiment(&buf, st, "all")
		return buf.String(), raw
	}

	golden, goldenCkpt := run("untraced", nil, 1)

	tracer, err := trace.New(trace.Options{Head: trace.Header{N: 8, Seed: 5}})
	if err != nil {
		t.Fatal(err)
	}
	traced, tracedCkpt := run("traced", tracer, 1)
	if traced != golden {
		t.Errorf("report diverged with tracing armed (sequential):\n--- untraced ---\n%s\n--- traced ---\n%s", golden, traced)
	}
	if string(tracedCkpt) != string(goldenCkpt) {
		t.Error("checkpoint bytes diverged with tracing armed (sequential)")
	}

	// Parallel checkpoints append at completion time by design, so only
	// line order may differ from the sequential baseline.
	ptracer, err := trace.New(trace.Options{Head: trace.Header{N: 8, Seed: 5}})
	if err != nil {
		t.Fatal(err)
	}
	ptraced, ptracedCkpt := run("traced-parallel", ptracer, 4)
	if ptraced != golden {
		t.Errorf("report diverged with tracing armed (parallel):\n--- untraced ---\n%s\n--- traced ---\n%s", golden, ptraced)
	}
	if got, want := sortedLines(ptracedCkpt), sortedLines(goldenCkpt); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("checkpoint content diverged with tracing armed (parallel):\n  want %q\n  got  %q", want, got)
	}

	// The recorders must have ridden along: a finished campaign root and
	// one cell span (with its scan and run phases) per campaign cell.
	for label, r := range map[string]*trace.Recorder{"sequential": tracer, "parallel": ptracer} {
		counts := map[string]int{}
		for _, s := range r.Snapshot() {
			counts[s.Kind]++
			if s.End == 0 {
				t.Errorf("%s: unfinished span %+v", label, s)
			}
		}
		cells := counts[trace.KindCell]
		if cells == 0 {
			t.Fatalf("%s: no cell spans recorded; kinds: %v", label, counts)
		}
		if counts[trace.KindCampaign] != 1 {
			t.Errorf("%s: campaign roots = %d, want 1", label, counts[trace.KindCampaign])
		}
		if counts[trace.KindScan] != cells || counts[trace.KindRun] != cells {
			t.Errorf("%s: scan=%d run=%d spans, want %d of each (one per cell)",
				label, counts[trace.KindScan], counts[trace.KindRun], cells)
		}
	}
}

package core_test

import (
	"math/rand"
	"testing"

	"hlfi/internal/core"
	"hlfi/internal/fault"
	"hlfi/internal/ir"
	"hlfi/internal/llfi"
	"hlfi/internal/machine"
	"hlfi/internal/pinfi"
)

// TestCompareFaultsAgreeAcrossLevels exploits the 1:1 compare mapping:
// flipping the k-th dynamic execution of the loop compare at the IR level
// (the i1 result) and at the assembly level (a dependent flag bit) invert
// the same branch decision, so the corrupted outputs must be identical
// for every k. This is the deepest cross-level alignment check in the
// suite: it validates that both injectors see the *same* program at the
// same dynamic instant.
func TestCompareFaultsAgreeAcrossLevels(t *testing.T) {
	src := `
int N = 12;
int main() {
    long acc = 0;
    for (int i = 0; i < N; i++) {
        acc = acc * 7 + i;
        print_long(acc);
        print_str(",");
    }
    print_str("\n");
    return 0;
}
`
	prog, err := core.BuildProgram("xlevel", src)
	if err != nil {
		t.Fatal(err)
	}

	// IR side: the loop's single icmp.
	var icmp *ir.Instr
	for _, f := range prog.Prep.Mod.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op == ir.OpICmp {
					if icmp != nil {
						t.Fatal("program must have exactly one compare")
					}
					icmp = in
				}
			}
		}
	}
	if icmp == nil {
		t.Fatal("no compare found")
	}
	irCands := make([]bool, prog.Prep.SeqTotal)
	irCands[icmp.Seq] = true
	irInj, err := llfi.NewWithCandidates(prog.Prep, irCands)
	if err != nil {
		t.Fatal(err)
	}

	// ASM side: the fused CMP (flag setter before a Jcc) — there must be
	// exactly one, matching the lone IR compare.
	dep := machine.DependentFlagMasks(prog.Asm)
	nCmp := 0
	for i := range prog.Asm.Instrs {
		if dep[i] != 0 {
			nCmp++
		}
	}
	if nCmp != 1 {
		t.Fatalf("expected exactly one fused compare at the assembly level, found %d", nCmp)
	}
	asmInj, err := pinfi.New(prog.Asm, prog.Prep.Layout.Image, prog.Prep.Layout.Base, fault.CatCmp)
	if err != nil {
		t.Fatal(err)
	}

	if irInj.DynTotal != asmInj.DynTotal {
		t.Fatalf("dynamic compare counts differ: IR %d vs ASM %d", irInj.DynTotal, asmInj.DynTotal)
	}

	for k := uint64(0); k < irInj.DynTotal; k++ {
		irRes := irInj.InjectAt(k, rand.New(rand.NewSource(int64(k))))
		asmRes := asmInj.InjectAt(k, rand.New(rand.NewSource(int64(k))))
		if string(irRes.Output) != string(asmRes.Output) {
			t.Fatalf("instance %d: corrupted outputs diverge\nIR : %q (%v)\nASM: %q (%v)",
				k, irRes.Output, irRes.Outcome, asmRes.Output, asmRes.Outcome)
		}
		if irRes.Outcome != asmRes.Outcome {
			t.Fatalf("instance %d: outcomes diverge: %v vs %v", k, irRes.Outcome, asmRes.Outcome)
		}
	}
}

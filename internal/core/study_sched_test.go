package core_test

import (
	"strings"
	"sync"
	"testing"

	"hlfi/internal/bench"
	"hlfi/internal/core"
	"hlfi/internal/telemetry"
)

// captureRecorder collects the raw event stream.
type captureRecorder struct {
	mu     sync.Mutex
	events []telemetry.Event
}

func (c *captureRecorder) Record(e telemetry.Event) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.events = append(c.events, e)
}

func buildTwo(t *testing.T) []*core.Program {
	t.Helper()
	var progs []*core.Program
	for _, name := range []string{"bzip2m", "quantumm"} {
		p, err := bench.Build(name)
		if err != nil {
			t.Fatal(err)
		}
		progs = append(progs, p)
	}
	return progs
}

func renderAll(st *core.Study) string {
	return st.RenderFigure3() + st.RenderTableIV() + st.RenderFigure4() +
		st.RenderTableV() + st.RenderSummary()
}

// TestStudySchedulerDeterminism: running whole cells concurrently must
// not change a single byte of the rendered study, nor any cell result,
// nor the order of progress lines.
func TestStudySchedulerDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("scheduled pilot study is slow")
	}
	progs := buildTwo(t)
	run := func(parallel int) (*core.Study, []string) {
		var lines []string
		var mu sync.Mutex
		st, err := core.RunStudy(core.StudyConfig{
			Programs: progs,
			N:        25,
			Seed:     7,
			Parallel: parallel,
			Progress: func(s string) {
				mu.Lock()
				lines = append(lines, s)
				mu.Unlock()
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return st, lines
	}
	serial, serialLines := run(1)
	sched4, schedLines := run(4)

	if len(serial.Cells) == 0 || len(serial.Cells) != len(sched4.Cells) {
		t.Fatalf("cell counts differ: %d vs %d", len(serial.Cells), len(sched4.Cells))
	}
	for key, want := range serial.Cells {
		got := sched4.Cells[key]
		if got == nil || *got != *want {
			t.Errorf("cell %v differs under scheduling:\nserial %+v\nsched  %+v", key, want, got)
		}
	}
	if a, b := renderAll(serial), renderAll(sched4); a != b {
		t.Fatalf("rendered study not byte-identical under scheduling:\n--- serial ---\n%s\n--- scheduled ---\n%s", a, b)
	}
	if strings.Join(serialLines, "\n") != strings.Join(schedLines, "\n") {
		t.Fatalf("progress order depends on scheduling:\n%v\nvs\n%v", serialLines, schedLines)
	}
}

// TestStudyTelemetryStream: the event stream has the canonical shape —
// one study_start, one cell event per cell in canonical cell order, one
// study_done with matching totals — even under concurrent scheduling.
func TestStudyTelemetryStream(t *testing.T) {
	p, err := bench.Build("quantumm")
	if err != nil {
		t.Fatal(err)
	}
	rec := &captureRecorder{}
	agg := telemetry.NewAggregator()
	st, err := core.RunStudy(core.StudyConfig{
		Programs: []*core.Program{p},
		N:        10,
		Seed:     3,
		Parallel: 4,
		Events:   telemetry.Multi(rec, agg),
	})
	if err != nil {
		t.Fatal(err)
	}
	ev := rec.events
	if len(ev) < 3 {
		t.Fatalf("got %d events, want study_start + cells + study_done", len(ev))
	}
	if ev[0].Type != telemetry.EventStudyStart || ev[len(ev)-1].Type != telemetry.EventStudyDone {
		t.Fatalf("stream not bracketed by study events: first=%s last=%s", ev[0].Type, ev[len(ev)-1].Type)
	}
	if ev[0].Parallel < 1 || ev[0].Cells != 10 {
		t.Fatalf("study_start misconfigured: %+v", ev[0])
	}

	var wantAttempts, wantActivated, cellEvents int
	for _, e := range ev[1 : len(ev)-1] {
		switch e.Type {
		case telemetry.EventCellDone:
			cellEvents++
			wantAttempts += e.Attempts
			wantActivated += e.Activated
			if e.DurationMS < e.ScanMS || e.Attempts < e.Activated {
				t.Errorf("inconsistent cell event: %+v", e)
			}
		case telemetry.EventCellSkip:
			cellEvents++
		default:
			t.Errorf("unexpected mid-stream event %q", e.Type)
		}
	}
	if cellEvents != 10 {
		t.Fatalf("got %d cell events, want one per cell (10)", cellEvents)
	}
	done := ev[len(ev)-1]
	if done.Cells != len(st.Cells) || done.Attempts != wantAttempts || done.Activated != wantActivated {
		t.Fatalf("study_done totals mismatch: %+v (want cells=%d attempts=%d activated=%d)",
			done, len(st.Cells), wantAttempts, wantActivated)
	}
	if tp := agg.Throughput(); tp <= 0 {
		t.Fatalf("aggregator throughput = %f, want > 0", tp)
	}
	if sum := agg.RenderTelemetry(); !strings.Contains(sum, "quantumm") {
		t.Fatalf("telemetry summary missing cells:\n%s", sum)
	}
}

// TestStudyTelemetryOrderCanonical: cell events arrive in canonical cell
// order (program, level, category) regardless of completion order.
func TestStudyTelemetryOrderCanonical(t *testing.T) {
	p, err := bench.Build("quantumm")
	if err != nil {
		t.Fatal(err)
	}
	order := func(parallel int) []string {
		rec := &captureRecorder{}
		if _, err := core.RunStudy(core.StudyConfig{
			Programs: []*core.Program{p}, N: 8, Seed: 5, Parallel: parallel, Events: rec,
		}); err != nil {
			t.Fatal(err)
		}
		var ids []string
		for _, e := range rec.events {
			if e.Type == telemetry.EventCellDone || e.Type == telemetry.EventCellSkip {
				ids = append(ids, e.Benchmark+"/"+e.Level+"/"+e.Category)
			}
		}
		return ids
	}
	serial, scheduled := order(1), order(6)
	if strings.Join(serial, ",") != strings.Join(scheduled, ",") {
		t.Fatalf("telemetry order depends on scheduling:\n%v\nvs\n%v", serial, scheduled)
	}
}

// TestStudyComposedParallelismDeterminism: with attempt-level workers
// requested (per-attempt seeding), varying the cell-level parallelism
// must not change results — even when the goroutine budget forces the
// scheduler to clamp. Regression test: the clamp once reduced per-cell
// workers from 2 to 1, silently switching cells back to the sequential
// sample.
func TestStudyComposedParallelismDeterminism(t *testing.T) {
	p, err := bench.Build("quantumm")
	if err != nil {
		t.Fatal(err)
	}
	run := func(parallel int) *core.Study {
		st, err := core.RunStudy(core.StudyConfig{
			Programs: []*core.Program{p}, N: 8, Seed: 9, Parallel: parallel, Workers: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	a, b := run(2), run(3)
	if renderAll(a) != renderAll(b) {
		t.Fatalf("cell-level parallelism changed the per-attempt sample:\n%s\nvs\n%s",
			renderAll(a), renderAll(b))
	}
}

// TestStudySchedulerFirstError: a hard cell error cancels the study and
// the canonical first failing cell is reported, deterministically.
func TestStudySchedulerFirstError(t *testing.T) {
	p, err := bench.Build("quantumm")
	if err != nil {
		t.Fatal(err)
	}
	for _, parallel := range []int{1, 4} {
		_, err := core.RunStudy(core.StudyConfig{
			Programs: []*core.Program{p}, N: -1, Seed: 1, Parallel: parallel,
		})
		if err == nil {
			t.Fatalf("parallel=%d: invalid N accepted", parallel)
		}
		if !strings.Contains(err.Error(), "cell {quantumm LLFI all}") {
			t.Fatalf("parallel=%d: error does not name the canonical first cell: %v", parallel, err)
		}
	}
}

package core

import (
	"fmt"
	"sync"
	"time"
)

// RunParallel executes the campaign across the given number of workers.
// Unlike Run (which draws every injection from one sequential random
// stream, matching the committed study outputs), RunParallel derives an
// independent random stream per attempt index, so the result is
// deterministic for a fixed seed regardless of worker count — but it is
// a *different* deterministic sample than Run's.
//
// Injection runs are embarrassingly parallel: each executes a fresh
// simulator against shared read-only program state.
func (c *Campaign) RunParallel(workers int) (*CellResult, error) {
	if c.N <= 0 {
		return nil, fmt.Errorf("campaign: N must be positive")
	}
	if workers <= 1 {
		return c.Run()
	}
	maxFactor := c.MaxAttemptsFactor
	if maxFactor <= 0 {
		maxFactor = 10
	}
	maxAttempts := c.N * maxFactor

	scanStart := time.Now()
	streams := perAttemptStreams(c.Seed)
	attempt, dyn, err := c.attemptFunc(streams)
	if err != nil {
		return nil, wrapNoCandidates(err)
	}
	scan := time.Since(scanStart)

	res := &CellResult{Prog: c.Prog.Name, Level: c.Level, Category: c.Category, DynCandidates: dyn}
	ad := c.adaptiveState(res, maxFactor)
	// Each goroutine writes only its own index, so attempt results (and
	// the traces riding inside them) need no locking; the counting loop
	// reads them after wg.Wait.
	outcomes := make([]attemptResult, maxAttempts)

	// Contained panics are recorded per attempt index and replayed into
	// the result in prefix order, so the policy decision (which sim
	// fault exhausts the limit) is deterministic regardless of worker
	// scheduling. A zero Outcome in a counted slot marks a sim fault.
	var (
		faultMu sync.Mutex
		perIdx  = map[int]SimFault{}
	)
	var faults []SimFault
	var traces []AttemptTrace

	// Waves of parallel attempts; counting the deterministic per-index
	// outcomes in prefix order keeps the activated-N stopping rule exact.
	const wave = 64
	loopStart := time.Now()
	next := 0
	counted := 0
	stopped := false
	for !stopped && res.Activated() < c.N && counted < maxAttempts {
		if c.deadlineExceeded(loopStart) {
			c.noteMetrics(scan, time.Since(loopStart), workers, faults, traces)
			return nil, c.deadlineError(res, time.Since(loopStart))
		}
		hi := next + wave
		if hi > maxAttempts {
			hi = maxAttempts
		}
		var wg sync.WaitGroup
		sem := make(chan struct{}, workers)
		for k := next; k < hi; k++ {
			k := k
			wg.Add(1)
			sem <- struct{}{}
			go func() {
				defer wg.Done()
				defer func() { <-sem }()
				var start time.Time
				if c.Obs != nil {
					start = time.Now()
				}
				ar, sf := c.safeAttempt(attempt, streams, k)
				// Live metrics count work actually performed, so attempts
				// past the stopping prefix still register (the instruments
				// are atomic; values are never part of study results).
				c.noteAttempt(start, ar.outcome, sf != nil)
				if sf != nil {
					faultMu.Lock()
					perIdx[k] = *sf
					faultMu.Unlock()
				}
				outcomes[k] = ar
			}()
		}
		wg.Wait()
		next = hi
		// Attempts computed past an adaptive stop are discarded unseen,
		// exactly like over-drawn attempts past the activation target: the
		// counted prefix — and with it the stopping decision — is identical
		// to the sequential per-attempt discipline's.
		for !stopped && counted < next && res.Activated() < c.N {
			k := counted
			res.Attempts++
			counted++
			if outcomes[k].outcome == 0 {
				sf := perIdx[k]
				res.SimFaults++
				faults = append(faults, sf)
				if !tolerates(c.SimFaultLimit, res.SimFaults) {
					c.noteMetrics(scan, time.Since(loopStart), workers, faults, traces)
					return nil, &SimFaultError{Fault: sf, Limit: c.SimFaultLimit}
				}
				stopped = ad.note(res)
				continue
			}
			// Only counted attempts contribute traces, in attempt order, so
			// the trace set is deterministic regardless of scheduling.
			if len(outcomes[k].spans) > 0 {
				traces = append(traces, AttemptTrace{
					Attempt: k, Trigger: outcomes[k].trigger,
					Outcome: outcomes[k].outcome, Spans: outcomes[k].spans,
				})
				if c.Obs != nil {
					c.Obs.TraceAttempts.Inc()
					c.Obs.TraceSpans.Add(uint64(len(outcomes[k].spans)))
				}
			}
			res.add(outcomes[k].outcome)
			stopped = ad.note(res)
		}
	}
	c.noteMetrics(scan, time.Since(loopStart), workers, faults, traces)
	if res.Activated() == 0 {
		return nil, fmt.Errorf("campaign %s/%s/%s: %w in %d attempts",
			c.Prog.Name, c.Level, c.Category, ErrNotActivated, res.Attempts)
	}
	return res, nil
}

// safeAttempt runs one per-attempt-seeded injection behind a recovery
// boundary. Today an attempt goroutine's panic kills the whole process;
// here it becomes a SimFault carrying the attempt's own seed, which
// reproduces the panic deterministically.
func (c *Campaign) safeAttempt(attempt func(k int) attemptResult, streams *attemptStreams, k int) (ar attemptResult, sf *SimFault) {
	defer func() {
		if r := recover(); r != nil {
			f := c.simFault(k, streams.reproSeed(k), streams.sequential(), r)
			sf = &f
			ar = attemptResult{}
		}
	}()
	return attempt(k), nil
}

// attemptFunc builds the per-attempt closure over the given stream
// discipline (RunParallel passes per-attempt streams so concurrent
// workers stay independent) and reports the dynamic candidate count.
// Attempts below TraceAttempts run traced.
func (c *Campaign) attemptFunc(streams *attemptStreams) (func(k int) attemptResult, uint64, error) {
	draw, dyn, err := c.injector()
	if err != nil {
		return nil, 0, err
	}
	return func(k int) attemptResult {
		return draw(streams.stream(k), k < c.TraceAttempts)
	}, dyn, nil
}

package core

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"hlfi/internal/fault"
)

// RunParallel executes the campaign across the given number of workers.
// Unlike Run (which draws every injection from one sequential random
// stream, matching the committed study outputs), RunParallel derives an
// independent random stream per attempt index, so the result is
// deterministic for a fixed seed regardless of worker count — but it is
// a *different* deterministic sample than Run's.
//
// Injection runs are embarrassingly parallel: each executes a fresh
// simulator against shared read-only program state.
func (c *Campaign) RunParallel(workers int) (*CellResult, error) {
	if c.N <= 0 {
		return nil, fmt.Errorf("campaign: N must be positive")
	}
	if workers <= 1 {
		return c.Run()
	}
	maxFactor := c.MaxAttemptsFactor
	if maxFactor <= 0 {
		maxFactor = 10
	}
	maxAttempts := c.N * maxFactor

	scanStart := time.Now()
	attempt, dyn, err := c.attemptFunc()
	if err != nil {
		return nil, wrapNoCandidates(err)
	}
	scan := time.Since(scanStart)

	res := &CellResult{Prog: c.Prog.Name, Level: c.Level, Category: c.Category, DynCandidates: dyn}
	outcomes := make([]fault.Outcome, maxAttempts)

	// Waves of parallel attempts; counting the deterministic per-index
	// outcomes in prefix order keeps the activated-N stopping rule exact.
	const wave = 64
	loopStart := time.Now()
	next := 0
	counted := 0
	for res.Activated() < c.N && counted < maxAttempts {
		hi := next + wave
		if hi > maxAttempts {
			hi = maxAttempts
		}
		var wg sync.WaitGroup
		sem := make(chan struct{}, workers)
		for k := next; k < hi; k++ {
			k := k
			wg.Add(1)
			sem <- struct{}{}
			go func() {
				defer wg.Done()
				defer func() { <-sem }()
				outcomes[k] = attempt(k)
			}()
		}
		wg.Wait()
		next = hi
		for counted < next && res.Activated() < c.N {
			res.add(outcomes[counted])
			res.Attempts++
			counted++
		}
	}
	c.noteMetrics(scan, time.Since(loopStart), workers)
	if res.Activated() == 0 {
		return nil, fmt.Errorf("campaign %s/%s/%s: no activated faults in %d attempts",
			c.Prog.Name, c.Level, c.Category, res.Attempts)
	}
	return res, nil
}

// attemptFunc builds the per-attempt closure (an independent random
// stream per attempt index) and reports the dynamic candidate count.
func (c *Campaign) attemptFunc() (func(k int) fault.Outcome, uint64, error) {
	draw, dyn, err := c.injector()
	if err != nil {
		return nil, 0, err
	}
	return func(k int) fault.Outcome {
		rng := rand.New(rand.NewSource(attemptSeed(c.Seed, k)))
		return draw(rng)
	}, dyn, nil
}

// attemptSeed mixes the campaign seed with the attempt index
// (SplitMix64-style finalizer) so per-attempt streams are independent.
func attemptSeed(seed int64, k int) int64 {
	z := uint64(seed) + uint64(k+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z & 0x7FFFFFFFFFFFFFFF)
}

// Shard-and-merge campaign execution. A study's canonical cell list is
// deterministic (programs in build order x levels x categories), and
// every cell derives its seed independently via cellSeed, so the study
// partitions cleanly: shard i of N owns the canonical cells with
// index%N == i and can run in its own process, writing a shard-tagged
// checkpoint. MergeShardCheckpoints validates the shard headers for
// mutual consistency and completeness and reassembles one
// CheckpointState; resuming a study from it re-runs nothing and renders
// a report byte-identical to the single-process run.
package core

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"hlfi/internal/fault"
)

// ShardSpec selects the deterministic subset of canonical study cells
// owned by one worker: cells whose canonical index i satisfies
// i%Count == Index.
type ShardSpec struct {
	Index int
	Count int
}

// ParseShardSpec parses the "i/N" flag form (e.g. "0/3").
func ParseShardSpec(s string) (ShardSpec, error) {
	i := strings.IndexByte(s, '/')
	if i < 0 {
		return ShardSpec{}, fmt.Errorf("shard spec %q: want \"index/count\" (e.g. 0/3)", s)
	}
	idx, err := strconv.Atoi(s[:i])
	if err != nil {
		return ShardSpec{}, fmt.Errorf("shard spec %q: bad index: %v", s, err)
	}
	count, err := strconv.Atoi(s[i+1:])
	if err != nil {
		return ShardSpec{}, fmt.Errorf("shard spec %q: bad count: %v", s, err)
	}
	spec := ShardSpec{Index: idx, Count: count}
	if err := spec.Validate(); err != nil {
		return ShardSpec{}, err
	}
	return spec, nil
}

// Validate checks 0 <= Index < Count.
func (s ShardSpec) Validate() error {
	if s.Count < 1 {
		return fmt.Errorf("shard spec %s: count must be >= 1", s)
	}
	if s.Index < 0 || s.Index >= s.Count {
		return fmt.Errorf("shard spec %s: index out of range [0,%d)", s, s.Count)
	}
	return nil
}

// Owns reports whether the shard owns canonical cell index i.
func (s ShardSpec) Owns(i int) bool { return i%s.Count == s.Index }

func (s ShardSpec) String() string { return fmt.Sprintf("%d/%d", s.Index, s.Count) }

// CanonicalCells returns the study's cell keys in canonical order — the
// order RunStudy schedules and releases them, and the order shard
// ownership is computed over. cats defaults to all five categories,
// matching StudyConfig.
func CanonicalCells(programs []*Program, cats []fault.Category) []CellKey {
	specs := studySpecs(programs, cats)
	keys := make([]CellKey, len(specs))
	for i, s := range specs {
		keys[i] = s.key()
	}
	return keys
}

// HeaderMismatchError reports a shard checkpoint whose header disagrees
// with the merge reference file on a pinned study-shape field.
type HeaderMismatchError struct {
	File      string // the offending checkpoint
	Reference string // the file whose header set the expectation
	Field     string // "n" | "seed" | "replay" | "shard-count" | "shard"
	Want, Got string
}

func (e *HeaderMismatchError) Error() string {
	return fmt.Sprintf("shard checkpoint %s: header %s = %s, but %s was written with %s = %s; these files are not shards of one study",
		e.File, e.Field, e.Got, e.Reference, e.Field, e.Want)
}

// DuplicateShardError reports two checkpoints claiming the same shard
// index — either two distinct files that both carry it, or one physical
// file reaching the merge twice (overlapping glob patterns, a symlink,
// or a hard link), flagged by SameFile. The same-file case is reported
// rather than silently deduplicated: a merge list that aliases one file
// usually means the operator's pattern set is not covering the shard
// space they think it is.
type DuplicateShardError struct {
	File     string
	Prior    string
	Index    int
	SameFile bool
}

func (e *DuplicateShardError) Error() string {
	if e.SameFile {
		return fmt.Sprintf("merge path %s is the same file as %s (overlapping patterns, a symlink, or a hard link supply shard index %d twice); fix the -merge pattern set so each shard checkpoint is named once",
			e.File, e.Prior, e.Index)
	}
	return fmt.Sprintf("shard checkpoint %s claims shard index %d, already supplied by %s",
		e.File, e.Index, e.Prior)
}

// MissingShardsError reports a merge whose file set covers only part of
// the shard space. Missing enumerates exactly the absent shard indices,
// in ascending order, so a supervisor (or operator) can restart only
// those workers.
type MissingShardsError struct {
	Count   int
	Missing []int
}

func (e *MissingShardsError) Error() string {
	idx := make([]string, len(e.Missing))
	for i, m := range e.Missing {
		idx[i] = strconv.Itoa(m)
	}
	return fmt.Sprintf("merge of %d-shard study is missing shard(s) %s; re-run those workers (with -resume on their checkpoints) and merge again",
		e.Count, strings.Join(idx, ", "))
}

// IncompleteShard describes one shard whose checkpoint is present but
// does not account for every cell the shard owns (its worker died
// mid-run).
type IncompleteShard struct {
	Index   int
	File    string
	Missing []CellKey
}

// IncompleteShardsError reports shards with partial checkpoints after a
// merge's completeness check.
type IncompleteShardsError struct {
	Shards []IncompleteShard
}

func (e *IncompleteShardsError) Error() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d shard checkpoint(s) incomplete:", len(e.Shards))
	for _, s := range e.Shards {
		fmt.Fprintf(&sb, " shard %d (%s) missing %d cell(s);", s.Index, s.File, len(s.Missing))
	}
	sb.WriteString(" resume those shard workers (-shard i/N -resume <file>) and merge again")
	return sb.String()
}

// MergedShards is the validated union of one study's shard checkpoints.
type MergedShards struct {
	// Shape is the shared study shape (Shard cleared: the union is the
	// whole study).
	Shape CheckpointShape
	// Count is the shard count all headers agreed on.
	Count int
	// Files maps shard index to the checkpoint that supplied it.
	Files []string
	// State is the combined resume state covering every shard's cells
	// and skips.
	State *CheckpointState
}

// MergeShardCheckpoints loads the given shard checkpoints, validates
// their headers for mutual consistency (same n, seed, replay signature,
// and shard count; distinct shard indices; every index present), and
// reassembles one CheckpointState. Cells need no reordering here: the
// resume scheduler restores them into canonical study order, so the
// merged report is byte-identical to the single-process run.
//
// Errors are typed: *HeaderMismatchError names the offending file and
// field, *DuplicateShardError a doubly-supplied index, and
// *MissingShardsError enumerates exactly the absent shard indices.
func MergeShardCheckpoints(paths []string) (*MergedShards, error) {
	if len(paths) == 0 {
		return nil, errors.New("merge: no shard checkpoints given")
	}
	paths = append([]string(nil), paths...)
	sort.Strings(paths)

	merged := &MergedShards{State: &CheckpointState{
		Cells: make(map[CellKey]*CellResult),
		Skips: make(map[CellKey]CheckpointSkip),
	}}
	// Same-file detection by inode identity, not path string: two merge
	// patterns can reach one checkpoint under different names (symlink,
	// hard link, ./-prefixed duplicate), which would otherwise read as
	// a doubly-claimed shard index with a confusing pair of "different"
	// paths — or worse, as two well-formed shards of a study that is in
	// fact missing one.
	type mergeSource struct {
		info  os.FileInfo
		path  string
		index int
	}
	var sources []mergeSource
	reference := ""
	for _, path := range paths {
		fi, err := os.Stat(path)
		if err != nil {
			return nil, err
		}
		for _, src := range sources {
			if os.SameFile(src.info, fi) {
				return nil, &DuplicateShardError{File: path, Prior: src.path, Index: src.index, SameFile: true}
			}
		}
		st, hdr, err := readCheckpoint(path)
		if err != nil {
			return nil, err
		}
		spec, err := ParseShardSpec(hdr.Shard)
		if err != nil {
			if hdr.Shard == "" {
				return nil, fmt.Errorf("checkpoint %s carries no shard header; only shard-tagged checkpoints (-shard i/N) can be merged", path)
			}
			return nil, fmt.Errorf("checkpoint %s: %v", path, err)
		}
		if reference == "" {
			reference = path
			merged.Count = spec.Count
			merged.Shape = CheckpointShape{N: hdr.N, Seed: hdr.Seed,
				Replay: normalizeReplay(hdr.Replay), Compiled: normalizeCompiled(hdr.Compiled),
				Adaptive: normalizeAdaptive(hdr.Adaptive)}
			merged.Files = make([]string, spec.Count)
		}
		if err := checkHeader(path, reference, hdr, spec, merged); err != nil {
			return nil, err
		}
		if prior := merged.Files[spec.Index]; prior != "" {
			return nil, &DuplicateShardError{File: path, Prior: prior, Index: spec.Index}
		}
		merged.Files[spec.Index] = path
		sources = append(sources, mergeSource{info: fi, path: path, index: spec.Index})
		for key, res := range st.Cells {
			merged.State.Cells[key] = res
		}
		for key, skip := range st.Skips {
			merged.State.Skips[key] = skip
		}
	}
	var missing []int
	for i, f := range merged.Files {
		if f == "" {
			missing = append(missing, i)
		}
	}
	if len(missing) > 0 {
		return nil, &MissingShardsError{Count: merged.Count, Missing: missing}
	}
	merged.State.N, merged.State.Seed = merged.Shape.N, merged.Shape.Seed
	return merged, nil
}

// checkHeader validates one shard header against the merge reference.
func checkHeader(path, reference string, hdr CheckpointShape, spec ShardSpec, merged *MergedShards) error {
	mismatch := func(field, want, got string) error {
		return &HeaderMismatchError{File: path, Reference: reference, Field: field, Want: want, Got: got}
	}
	if hdr.N != merged.Shape.N {
		return mismatch("n", strconv.Itoa(merged.Shape.N), strconv.Itoa(hdr.N))
	}
	if hdr.Seed != merged.Shape.Seed {
		return mismatch("seed", strconv.FormatInt(merged.Shape.Seed, 10), strconv.FormatInt(hdr.Seed, 10))
	}
	if got := normalizeReplay(hdr.Replay); got != merged.Shape.Replay {
		return mismatch("replay", merged.Shape.Replay, got)
	}
	if got := normalizeCompiled(hdr.Compiled); got != merged.Shape.Compiled {
		return mismatch("compiled", merged.Shape.Compiled, got)
	}
	if got := normalizeAdaptive(hdr.Adaptive); got != merged.Shape.Adaptive {
		return mismatch("adaptive", merged.Shape.Adaptive, got)
	}
	if spec.Count != merged.Count {
		return mismatch("shard-count", strconv.Itoa(merged.Count), strconv.Itoa(spec.Count))
	}
	return nil
}

// VerifyComplete checks that every canonical cell is accounted for (as
// a completed cell or a recorded soft skip) by the shard that owns it.
// cells must be the canonical cell list of the same study the shards
// ran (CanonicalCells over the same programs and categories). A worker
// killed mid-run leaves a valid but partial checkpoint; the returned
// *IncompleteShardsError names each such shard, its file, and the exact
// cells still owed, so -resume can restart only those workers.
func (m *MergedShards) VerifyComplete(cells []CellKey) error {
	byShard := make(map[int][]CellKey)
	for i, key := range cells {
		if m.State.Cells[key] == nil {
			if _, skipped := m.State.Skips[key]; !skipped {
				owner := i % m.Count
				byShard[owner] = append(byShard[owner], key)
			}
		}
	}
	if len(byShard) == 0 {
		return nil
	}
	err := &IncompleteShardsError{}
	for i := 0; i < m.Count; i++ {
		if missing := byShard[i]; len(missing) > 0 {
			err.Shards = append(err.Shards, IncompleteShard{Index: i, File: m.Files[i], Missing: missing})
		}
	}
	return err
}

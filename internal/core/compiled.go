package core

import (
	"sync"

	"hlfi/internal/compile/irc"
	"hlfi/internal/compile/mc"
	"hlfi/internal/fault"
	"hlfi/internal/llfi"
	"hlfi/internal/obs"
	"hlfi/internal/pinfi"
)

// CompiledConfig enables the compiled execution engines — the
// compile-to-closure IR engine (internal/compile/irc) and the
// pre-decoded machine-dispatch engine (internal/compile/mc) — for a
// study's injection attempts. One config is shared by every cell: the
// program cache behind it is keyed by (program, level), like the
// snapshot cache, so each program is compiled once and shared by all
// five categories and any number of concurrent cells.
//
// The engines are observationally invisible: outcomes, activation
// status, output bytes, RNG streams, and checkpoint/merge bytes are
// identical to the interpreters under the same seeds. A program the
// compilers cannot lower falls back to the interpreter silently (the
// fallback is byte-identical by definition); the Obs fallback counter
// is the only trace.
type CompiledConfig struct {
	// Obs, when non-nil, counts compile fallbacks into the live metrics
	// registry. Purely observational.
	Obs *obs.Metrics

	once  sync.Once
	cache *compiledCache
}

// Signature renders the compiled-engine configuration for checkpoint
// headers, so -resume and shard merge can refuse to mix runs with
// different engine configs. A nil config (compiled off) renders as
// "off".
func (cc *CompiledConfig) Signature() string {
	if cc == nil {
		return "off"
	}
	return "on"
}

func (cc *CompiledConfig) ensure() *compiledCache {
	cc.once.Do(func() {
		cc.cache = &compiledCache{
			entries: make(map[snapKey]*compEntry),
			obs:     cc.Obs,
		}
	})
	return cc.cache
}

// armIR wires the compiled IR engine into a freshly built IR injector.
// Called from the campaign's injector construction (inside ScanTime).
// Compile failure is not an error: the injector simply stays on the
// interpreter.
func (cc *CompiledConfig) armIR(p *Program, inj *llfi.Injector) {
	if cp := cc.ensure().irProgram(p); cp != nil {
		inj.UseCompiled(cp)
	}
}

// armASM wires the pre-decoded machine engine into a freshly built
// assembly injector.
func (cc *CompiledConfig) armASM(p *Program, inj *pinfi.Injector) {
	if cp := cc.ensure().asmProgram(p); cp != nil {
		inj.UseCompiled(cp)
	}
}

// compEntry is one (program, level) cache slot. ready is closed once
// the payload is final; a nil payload means the program did not compile
// and attempts fall back to the interpreter. Compiled programs are
// immutable, so any number of cells share them concurrently.
type compEntry struct {
	ready chan struct{}
	ir    *irc.Program
	asm   *mc.Program
}

// compiledCache compiles programs lazily, once per (program, level).
// The compiler runs on the first requesting goroutine; concurrent
// requesters block on the entry's ready channel. Compiled programs are
// small (closures over the static instruction stream), so unlike the
// snapshot cache there is no memory budget or eviction.
type compiledCache struct {
	mu      sync.Mutex
	entries map[snapKey]*compEntry
	obs     *obs.Metrics
}

// lookup returns (entry, true) to wait on, or a fresh unready entry the
// caller must fill, already registered under k.
func (cc *compiledCache) lookup(k snapKey) (*compEntry, bool) {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if e, ok := cc.entries[k]; ok {
		return e, true
	}
	e := &compEntry{ready: make(chan struct{})}
	cc.entries[k] = e
	return e, false
}

func (cc *compiledCache) irProgram(p *Program) *irc.Program {
	k := snapKey{prog: p.Name, level: fault.LevelIR}
	e, hit := cc.lookup(k)
	if hit {
		<-e.ready
		return e.ir
	}
	cp, err := irc.Compile(p.Prep)
	if err == nil {
		e.ir = cp
	} else if cc.obs != nil {
		cc.obs.CompiledFallbacks.Inc()
	}
	close(e.ready)
	return e.ir
}

func (cc *compiledCache) asmProgram(p *Program) *mc.Program {
	k := snapKey{prog: p.Name, level: fault.LevelASM}
	e, hit := cc.lookup(k)
	if hit {
		<-e.ready
		return e.asm
	}
	cp, err := mc.Compile(p.Asm, p.Prep.Layout.Image, p.Prep.Layout.Base)
	if err == nil {
		e.asm = cp
	} else if cc.obs != nil {
		cc.obs.CompiledFallbacks.Inc()
	}
	close(e.ready)
	return e.asm
}

package core

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"hlfi/internal/adaptive"
	"hlfi/internal/fault"
	"hlfi/internal/telemetry"
)

// The adaptive oracle fixture: tiny.c at this shape produces three
// early-converged cells and one extension, so every test below
// exercises both halves of the engine (the stopping rule and the
// reallocation round). CatCast has no candidates and soft-skips,
// covering the absent-cell path of the planner.
const (
	adaptiveOracleN    = 40
	adaptiveOracleSeed = 9
)

func adaptiveOracleConfig() *adaptive.Config {
	return &adaptive.Config{Eps: 0.1, MinN: 16, Check: 8}
}

// renderAdaptiveAll is renderAll plus the adaptive accuracy-vs-cost
// section, the full rendered surface of an adaptive study.
func renderAdaptiveAll(st *Study) string {
	return renderAll(st) + st.RenderAdaptive()
}

func runAdaptiveOracle(t *testing.T, mutate func(*StudyConfig)) *Study {
	t.Helper()
	p, err := BuildProgram("tiny.c", tinySrc)
	if err != nil {
		t.Fatal(err)
	}
	cfg := StudyConfig{Programs: []*Program{p}, N: adaptiveOracleN, Seed: adaptiveOracleSeed,
		Categories: shardOracleCats, Adaptive: adaptiveOracleConfig()}
	if mutate != nil {
		mutate(&cfg)
	}
	st, err := RunStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// requireAdaptiveShape guards the fixture: the oracle must actually
// converge some cells early and extend at least one, or the tests
// downstream prove nothing.
func requireAdaptiveShape(t *testing.T, st *Study) {
	t.Helper()
	converged, extended := 0, 0
	for _, c := range st.Cells {
		if c.Adaptive.Target == 0 {
			t.Fatalf("cell %s/%s/%s carries no adaptive target in an adaptive study", c.Prog, c.Level, c.Category)
		}
		if c.Adaptive.Converged && !c.Adaptive.Extended {
			converged++
		}
		if c.Adaptive.Extended {
			extended++
			if c.Adaptive.Target <= adaptiveOracleN {
				t.Fatalf("extended cell target %d not above baseline %d", c.Adaptive.Target, adaptiveOracleN)
			}
			if c.Adaptive.Round1.Attempts == 0 {
				t.Fatal("extended cell carries no round-1 snapshot")
			}
		}
	}
	if converged == 0 || extended == 0 {
		t.Fatalf("oracle fixture degenerate: %d converged, %d extended (want both nonzero; retune the config)", converged, extended)
	}
}

// TestAdaptiveStopDeterminismCore: the per-cell stop points and the full
// rendered report of an adaptive study are identical across the
// sequential scheduler and cell-level parallelism — the stopping
// decision is a function of the attempt-record prefix, never of
// scheduling.
func TestAdaptiveStopDeterminismCore(t *testing.T) {
	single := runAdaptiveOracle(t, nil)
	requireAdaptiveShape(t, single)
	golden := renderAdaptiveAll(single)

	for _, parallel := range []int{2, 4} {
		t.Run(fmt.Sprintf("parallel=%d", parallel), func(t *testing.T) {
			st := runAdaptiveOracle(t, func(cfg *StudyConfig) { cfg.Parallel = parallel })
			for key, want := range single.Cells {
				got := st.Cells[key]
				if got == nil || *got != *want {
					t.Errorf("cell %v differs under parallel=%d:\nseq %+v\npar %+v", key, parallel, want, got)
				}
			}
			if report := renderAdaptiveAll(st); report != golden {
				t.Errorf("parallel=%d report differs from sequential:\n--- seq ---\n%s\n--- par ---\n%s", parallel, golden, report)
			}
		})
	}
}

// TestAdaptiveShardMergeIdentical: shard workers run round 1 only;
// merging their checkpoints and rendering recomputes the identical
// reallocation plan from the persisted round-1 records, runs only the
// extension campaigns, and reproduces the single-process adaptive study
// byte for byte.
func TestAdaptiveShardMergeIdentical(t *testing.T) {
	p, err := BuildProgram("tiny.c", tinySrc)
	if err != nil {
		t.Fatal(err)
	}
	single := runAdaptiveOracle(t, nil)
	requireAdaptiveShape(t, single)
	golden := renderAdaptiveAll(single)

	acfg := adaptiveOracleConfig()
	dir := t.TempDir()
	var paths []string
	for i := 0; i < 3; i++ {
		spec := ShardSpec{Index: i, Count: 3}
		path := filepath.Join(dir, fmt.Sprintf("shard-%d-of-3.jsonl", i))
		w, err := NewCheckpointWriterShape(path, CheckpointShape{
			N: adaptiveOracleN, Seed: adaptiveOracleSeed, Replay: "off",
			Adaptive: acfg.Signature(), Shard: spec.String()})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := RunStudy(StudyConfig{Programs: []*Program{p},
			N: adaptiveOracleN, Seed: adaptiveOracleSeed, Categories: shardOracleCats,
			Adaptive: acfg, Checkpoint: w, Shard: &spec}); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		paths = append(paths, path)
	}

	merged, err := MergeShardCheckpoints(paths)
	if err != nil {
		t.Fatal(err)
	}
	if got := merged.Shape.Adaptive; got != acfg.Signature() {
		t.Fatalf("merged shape adaptive = %q, want %q", got, acfg.Signature())
	}
	// Shard workers must not have extended anything: round 2 needs the
	// complete round-1 state no single shard can see.
	for key, res := range merged.State.Cells {
		if res.Adaptive.Extended {
			t.Fatalf("shard cell %v was extended by a shard worker", key)
		}
	}
	if err := merged.VerifyComplete(CanonicalCells([]*Program{p}, shardOracleCats)); err != nil {
		t.Fatal(err)
	}

	ran := 0
	testCampaignHook = func(*Campaign) { ran++ }
	defer func() { testCampaignHook = nil }()
	st, err := RunStudy(StudyConfig{Programs: []*Program{p},
		N: adaptiveOracleN, Seed: adaptiveOracleSeed, Categories: shardOracleCats,
		Adaptive: acfg, Resume: merged.State})
	if err != nil {
		t.Fatal(err)
	}
	extensions := 0
	for _, c := range single.Cells {
		if c.Adaptive.Extended {
			extensions++
		}
	}
	if ran != extensions {
		t.Errorf("merge render ran %d campaigns, want exactly the %d extension(s)", ran, extensions)
	}
	for key, want := range single.Cells {
		got := st.Cells[key]
		if got == nil || *got != *want {
			t.Errorf("cell %v differs after shard merge:\nsingle %+v\nmerged %+v", key, want, got)
		}
	}
	if report := renderAdaptiveAll(st); report != golden {
		t.Errorf("merged adaptive report differs from single-process run:\n--- single ---\n%s\n--- merged ---\n%s", golden, report)
	}
}

// TestAdaptiveResumeTruncatedIdentical: an adaptive study resumed from a
// truncated checkpoint — missing both a round-1 record and the extended
// record — recomputes exactly the missing cells and renders byte-
// identically to the uninterrupted adaptive run.
func TestAdaptiveResumeTruncatedIdentical(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.jsonl")
	acfg := adaptiveOracleConfig()
	shape := CheckpointShape{N: adaptiveOracleN, Seed: adaptiveOracleSeed,
		Replay: "off", Adaptive: acfg.Signature()}
	w, err := NewCheckpointWriterShape(path, shape)
	if err != nil {
		t.Fatal(err)
	}
	full := runAdaptiveOracle(t, func(cfg *StudyConfig) { cfg.Checkpoint = w })
	requireAdaptiveShape(t, full)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	golden := renderAdaptiveAll(full)

	state, err := LoadCheckpointShape(path, shape)
	if err != nil {
		t.Fatal(err)
	}
	// The loader restores the adaptive payloads. Drop the extended cell
	// and one converged cell to simulate an interruption.
	var extKey, convKey *CellKey
	for key, res := range state.Cells {
		key := key
		switch {
		case res.Adaptive.Extended && extKey == nil:
			if res.Adaptive.Round1 != full.Cells[key].Adaptive.Round1 {
				t.Fatalf("round-1 snapshot did not round-trip for %v", key)
			}
			extKey = &key
		case res.Adaptive.Converged && convKey == nil:
			convKey = &key
		}
	}
	if extKey == nil || convKey == nil {
		t.Fatalf("checkpoint lacks an extended or converged record (ext=%v conv=%v)", extKey, convKey)
	}
	delete(state.Cells, *extKey)
	delete(state.Cells, *convKey)

	ran := 0
	testCampaignHook = func(*Campaign) { ran++ }
	defer func() { testCampaignHook = nil }()
	var cap eventCapture
	resumed := runAdaptiveOracle(t, func(cfg *StudyConfig) {
		cfg.Resume = state
		cfg.Events = &cap
	})
	// The dropped converged cell re-runs in round 1; the dropped extended
	// cell re-runs round 1 and then its extension: three campaigns.
	if ran != 3 {
		t.Errorf("resume ran %d campaigns, want 3 (dropped round-1 cell, dropped cell's round 1, and its extension)", ran)
	}
	for key, want := range full.Cells {
		got := resumed.Cells[key]
		if got == nil || *got != *want {
			t.Errorf("cell %v differs after truncated resume:\nfull    %+v\nresumed %+v", key, want, got)
		}
	}
	if report := renderAdaptiveAll(resumed); report != golden {
		t.Errorf("resumed adaptive report differs:\n--- full ---\n%s\n--- resumed ---\n%s", golden, report)
	}
	if got := len(cap.ofType(telemetry.EventAdaptivePlan)); got != 1 {
		t.Errorf("got %d adaptive_plan events, want 1", got)
	}
	if got := len(cap.ofType(telemetry.EventCellExtend)); got != 1 {
		t.Errorf("got %d cell_extend events, want 1", got)
	}
}

// TestLoadCheckpointShapeAdaptiveMismatch: a checkpoint written under
// one adaptive config refuses to resume under another — in both
// directions — with an error naming the file and the adaptive field,
// exactly like the replay and compiled signature pins.
func TestLoadCheckpointShapeAdaptiveMismatch(t *testing.T) {
	dir := t.TempDir()
	acfg := adaptiveOracleConfig()

	write := func(name string, shape CheckpointShape) string {
		t.Helper()
		path := filepath.Join(dir, name)
		w, err := NewCheckpointWriterShape(path, shape)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		return path
	}

	adaptivePath := write("adaptive.jsonl", CheckpointShape{N: 10, Seed: 5, Adaptive: acfg.Signature()})
	fixedPath := write("fixed.jsonl", CheckpointShape{N: 10, Seed: 5})

	cases := []struct {
		name, path string
		shape      CheckpointShape
	}{
		{"adaptive checkpoint, fixed-n resume", adaptivePath, CheckpointShape{N: 10, Seed: 5}},
		{"fixed-n checkpoint, adaptive resume", fixedPath, CheckpointShape{N: 10, Seed: 5, Adaptive: acfg.Signature()}},
		{"adaptive checkpoint, different adaptive config", adaptivePath, CheckpointShape{N: 10, Seed: 5, Adaptive: "eps=0.2,min=8,check=4"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := LoadCheckpointShape(tc.path, tc.shape)
			if err == nil {
				t.Fatal("mismatched adaptive signature accepted")
			}
			msg := err.Error()
			if !strings.Contains(msg, tc.path) {
				t.Errorf("error does not name the file %s: %v", tc.path, err)
			}
			if !strings.Contains(msg, "adaptive sampling") {
				t.Errorf("error does not name the adaptive field: %v", err)
			}
		})
	}

	// Matching signatures still load.
	if _, err := LoadCheckpointShape(adaptivePath, CheckpointShape{N: 10, Seed: 5, Adaptive: acfg.Signature()}); err != nil {
		t.Errorf("matching adaptive signature refused: %v", err)
	}
}

// TestAdaptiveRenderAndJSON: the adaptive study renders the accuracy-
// vs-cost section and serializes the adaptive JSON block; a fixed-n
// study renders neither, keeping its output byte-identical to before
// the engine existed.
func TestAdaptiveRenderAndJSON(t *testing.T) {
	st := runAdaptiveOracle(t, nil)
	section := st.RenderAdaptive()
	if section == "" {
		t.Fatal("adaptive study renders no adaptive section")
	}
	for _, want := range []string{"Adaptive sampling", "converged", "extended", "budget:", "half-width"} {
		if !strings.Contains(section, want) {
			t.Errorf("adaptive section lacks %q:\n%s", want, section)
		}
	}
	aj := st.adaptiveJSON(fault.Categories)
	if aj == nil {
		t.Fatal("adaptive study serializes no adaptive JSON")
	}
	if aj.Eps != 0.1 || aj.MinN != 16 || aj.Check != 8 {
		t.Errorf("adaptive JSON config = %v/%v/%v, want 0.1/16/8", aj.Eps, aj.MinN, aj.Check)
	}
	if len(aj.Cells) != len(st.Cells) {
		t.Errorf("adaptive JSON has %d cells, study has %d", len(aj.Cells), len(st.Cells))
	}
	if aj.SavedActivated == 0 || aj.GrantedActivated == 0 {
		t.Errorf("adaptive JSON shows no savings/grants: %+v", aj)
	}

	// Experiment scoping: a fig3-scoped JSON carries only the
	// category-"all" rows, with the budget totals recomputed over them.
	scoped := st.adaptiveJSON([]fault.Category{fault.CatAll})
	if len(scoped.Cells) >= len(aj.Cells) {
		t.Fatalf("scoped adaptive JSON has %d cells, full has %d (want a strict subset)", len(scoped.Cells), len(aj.Cells))
	}
	for _, c := range scoped.Cells {
		if c.Category != fault.CatAll.String() {
			t.Errorf("scoped adaptive JSON leaks category %q", c.Category)
		}
	}

	fixed := runTinyStudy(t, nil)
	if got := fixed.RenderAdaptive(); got != "" {
		t.Errorf("fixed-n study renders an adaptive section:\n%s", got)
	}
	if fixed.adaptiveJSON(fault.Categories) != nil {
		t.Error("fixed-n study serializes an adaptive JSON block")
	}
}

package core

import (
	"errors"
	"fmt"
	"runtime/debug"
	"time"

	"hlfi/internal/fault"
)

// This file holds the campaign fault-tolerance layer: attempt-level
// panic containment and the per-cell wall-clock watchdog. The study
// injects faults into simulated subjects; this layer makes the study
// runner itself survive the same failure classes — an unanticipated
// simulator panic must not discard hours of completed cells, and one
// pathological cell must not stall the pool.

// ErrSimFault matches campaign errors caused by a contained simulator
// panic (use errors.As with *SimFaultError for the reproducing seed).
var ErrSimFault = errors.New("simulator fault")

// ErrDeadline matches campaign errors caused by the per-cell wall-clock
// watchdog. RunStudy treats it as a soft skip: the cell is marked
// degraded-and-skipped instead of stalling the pool.
var ErrDeadline = errors.New("cell deadline exceeded")

// SimFault records one contained simulator panic. It is counted
// separately from the paper's four outcomes (a sim fault says the
// simulator is broken, not the subject), and carries everything needed
// to reproduce the panic deterministically.
type SimFault struct {
	Prog     string
	Level    fault.Level
	Category fault.Category
	// Attempt is the zero-based attempt index within the cell.
	Attempt int
	// Seed reproduces the panic: for the per-attempt streams of
	// RunParallel it is the attempt's own seed; for the sequential
	// stream of Run it is the campaign seed (replay the stream up to
	// Attempt).
	Seed int64
	// Sequential tells which of the two Seed interpretations applies.
	Sequential bool
	// Panic is the stringified panic value; Stack the (truncated)
	// goroutine stack at recovery.
	Panic string
	Stack string
}

func (f SimFault) String() string {
	return fmt.Sprintf("%s/%s/%s attempt %d (seed %d): %s",
		f.Prog, f.Level, f.Category, f.Attempt, f.Seed, f.Panic)
}

// SimFaultError is the typed error surfaced when a cell's sim-fault
// policy is exhausted (fail-fast, or more than Limit contained panics).
type SimFaultError struct {
	Fault SimFault
	// Limit is the cell's tolerance when it was exceeded (0 = fail-fast).
	Limit int
}

func (e *SimFaultError) Error() string {
	if e.Limit <= 0 {
		return fmt.Sprintf("%v: %s", ErrSimFault, e.Fault)
	}
	return fmt.Sprintf("%v (limit %d exceeded): %s", ErrSimFault, e.Limit, e.Fault)
}

// Unwrap makes errors.Is(err, ErrSimFault) hold.
func (e *SimFaultError) Unwrap() error { return ErrSimFault }

// DeadlineError is the typed error surfaced when a cell exceeds its
// wall-clock deadline.
type DeadlineError struct {
	Prog      string
	Level     fault.Level
	Category  fault.Category
	Deadline  time.Duration
	Elapsed   time.Duration
	Attempts  int
	Activated int
}

func (e *DeadlineError) Error() string {
	return fmt.Sprintf("%v: %s/%s/%s after %v (deadline %v, %d activated in %d attempts)",
		ErrDeadline, e.Prog, e.Level, e.Category,
		e.Elapsed.Round(time.Millisecond), e.Deadline, e.Activated, e.Attempts)
}

// Unwrap makes errors.Is(err, ErrDeadline) hold.
func (e *DeadlineError) Unwrap() error { return ErrDeadline }

// maxStack bounds the stack capture attached to a SimFault record.
const maxStack = 4096

// simFault builds the record for one recovered panic.
func (c *Campaign) simFault(attempt int, seed int64, sequential bool, panicValue any) SimFault {
	stack := debug.Stack()
	if len(stack) > maxStack {
		stack = stack[:maxStack]
	}
	return SimFault{
		Prog:       c.Prog.Name,
		Level:      c.Level,
		Category:   c.Category,
		Attempt:    attempt,
		Seed:       seed,
		Sequential: sequential,
		Panic:      fmt.Sprint(panicValue),
		Stack:      string(stack),
	}
}

// tolerates reports whether the policy allows `count` sim faults in one
// cell: SimFaultLimit < 0 tolerates any number, 0 none (fail-fast), and
// K > 0 up to K.
func tolerates(limit, count int) bool {
	return limit < 0 || count <= limit
}

// deadlineExceeded checks the per-cell watchdog. The deadline
// complements the instruction-budget hang detection inside the
// simulators: that bounds a single attempt, this bounds the whole cell.
func (c *Campaign) deadlineExceeded(start time.Time) bool {
	return c.Deadline > 0 && time.Since(start) > c.Deadline
}

func (c *Campaign) deadlineError(res *CellResult, elapsed time.Duration) error {
	return &DeadlineError{
		Prog: c.Prog.Name, Level: c.Level, Category: c.Category,
		Deadline: c.Deadline, Elapsed: elapsed,
		Attempts: res.Attempts, Activated: res.Activated(),
	}
}

// Package core implements the paper's experimental methodology: it builds
// programs for both execution levels, runs seeded fault-injection
// campaigns with LLFI (IR level) and PINFI (assembly level), classifies
// outcomes, and regenerates every table and figure of the evaluation
// (Figure 3, Table IV, Figure 4, Table V).
package core

import (
	"bytes"
	"fmt"

	"hlfi/internal/codegen"
	"hlfi/internal/interp"
	"hlfi/internal/machine"
	"hlfi/internal/minic"
	"hlfi/internal/x86"
)

// Program is a benchmark compiled for both levels, with verified
// fault-free equivalence between them.
type Program struct {
	Name   string
	Source string

	Prep *interp.Prepared
	Asm  *x86.Program

	GoldenOutput []byte
	GoldenExit   int64
	// Golden dynamic instruction counts at each level.
	IRInstrs  uint64
	AsmInstrs uint64
}

// BuildProgram compiles a minic source for both execution levels and
// verifies that the fault-free runs agree bit-for-bit. Any disagreement
// is a toolchain bug, not a valid experiment, so it is an error.
func BuildProgram(name, source string) (*Program, error) {
	return buildProgram(name, source, codegen.DefaultOptions())
}

// BuildProgramWithOptions exposes the backend folding switches for the
// ablation benchmarks.
func BuildProgramWithOptions(name, source string, opts codegen.Options) (*Program, error) {
	return buildProgram(name, source, opts)
}

func buildProgram(name, source string, opts codegen.Options) (*Program, error) {
	mod, err := minic.Compile(name, source)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	prep, err := interp.Prepare(mod)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	asm, err := codegen.Lower(mod, prep.Layout, opts)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}

	var irOut bytes.Buffer
	r := interp.NewRunner(prep, &irOut)
	irRC, err := r.Run()
	if err != nil {
		return nil, fmt.Errorf("%s: IR golden run: %w", name, err)
	}
	var asmOut bytes.Buffer
	m := machine.New(asm, prep.Layout.Image, prep.Layout.Base, &asmOut)
	asmRC, err := m.Run()
	if err != nil {
		return nil, fmt.Errorf("%s: machine golden run: %w", name, err)
	}
	if !bytes.Equal(irOut.Bytes(), asmOut.Bytes()) || irRC != asmRC {
		return nil, fmt.Errorf("%s: golden runs diverge between levels (IR %d bytes rc=%d, ASM %d bytes rc=%d)",
			name, irOut.Len(), irRC, asmOut.Len(), asmRC)
	}
	return &Program{
		Name:         name,
		Source:       source,
		Prep:         prep,
		Asm:          asm,
		GoldenOutput: irOut.Bytes(),
		GoldenExit:   irRC,
		IRInstrs:     r.Executed(),
		AsmInstrs:    m.Executed(),
	}, nil
}

package core

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestCheckpointTruncatedTyped is the satellite truncation matrix: the
// debris of a writer killed before its first fsync — a zero-byte file,
// or a file holding only the torn header line — loads as a typed
// *CheckpointTruncatedError naming the file, while a file with complete
// records but no header stays the distinct "missing study header"
// corruption error.
func TestCheckpointTruncatedTyped(t *testing.T) {
	cases := []struct {
		name    string
		content string
	}{
		{"zero-byte", ""},
		{"torn header, no newline", `{"type":"study","n":10,"se`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "ck.jsonl")
			if err := os.WriteFile(path, []byte(tc.content), 0o644); err != nil {
				t.Fatal(err)
			}
			_, err := LoadCheckpoint(path, 10, 5, "off")
			var te *CheckpointTruncatedError
			if !errors.As(err, &te) {
				t.Fatalf("got %v, want *CheckpointTruncatedError", err)
			}
			if te.Path != path {
				t.Errorf("error names %q, want %q", te.Path, path)
			}
			if te.Size != int64(len(tc.content)) {
				t.Errorf("error reports %d bytes, want %d", te.Size, len(tc.content))
			}
			if !strings.Contains(err.Error(), path) || !strings.Contains(err.Error(), "truncated") {
				t.Errorf("message does not explain the truncation: %v", err)
			}
		})
	}

	// A header-less file whose records ARE complete is not benign debris:
	// the header line was lost, not torn mid-write. That stays the
	// untyped corruption error so nobody "deletes and starts fresh" over
	// a file that still holds synced results.
	t.Run("complete records, missing header", func(t *testing.T) {
		full := filepath.Join(t.TempDir(), "full.jsonl")
		w, err := NewCheckpointWriter(full, 10, 5, "off")
		if err != nil {
			t.Fatal(err)
		}
		runTinyStudy(t, func(cfg *StudyConfig) { cfg.Checkpoint = w })
		w.Close()
		data, err := os.ReadFile(full)
		if err != nil {
			t.Fatal(err)
		}
		lines := strings.SplitN(string(data), "\n", 2)
		if len(lines) != 2 || lines[1] == "" {
			t.Fatal("expected a header line followed by cell records")
		}
		headless := filepath.Join(t.TempDir(), "headless.jsonl")
		if err := os.WriteFile(headless, []byte(lines[1]), 0o644); err != nil {
			t.Fatal(err)
		}
		_, err = LoadCheckpoint(headless, 10, 5, "off")
		var te *CheckpointTruncatedError
		if errors.As(err, &te) {
			t.Fatalf("missing-header corruption reported as benign truncation: %v", err)
		}
		if err == nil || !strings.Contains(err.Error(), "missing study header") {
			t.Errorf("got %v, want the missing-header corruption error", err)
		}
	})

	// The merge path surfaces the same typed error for a truncated shard.
	t.Run("truncated shard in a merge", func(t *testing.T) {
		dir := t.TempDir()
		a := writeShardFile(t, dir, "a.jsonl", CheckpointShape{N: 10, Seed: 5, Replay: "off", Shard: "0/2"})
		empty := filepath.Join(dir, "b.jsonl")
		if err := os.WriteFile(empty, nil, 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := MergeShardCheckpoints([]string{a, empty})
		var te *CheckpointTruncatedError
		if !errors.As(err, &te) {
			t.Fatalf("got %v, want *CheckpointTruncatedError", err)
		}
		if te.Path != empty {
			t.Errorf("error names %q, want the truncated shard %q", te.Path, empty)
		}
	})
}

// TestMergeSameFileDuplicate: one physical checkpoint reaching the merge
// twice — a literal repeat or a symlink alias — is a typed
// *DuplicateShardError with SameFile set, naming both paths, instead of
// a silent dedup or a confusing duplicate-index message.
func TestMergeSameFileDuplicate(t *testing.T) {
	dir := t.TempDir()
	a := writeShardFile(t, dir, "a.jsonl", CheckpointShape{N: 10, Seed: 5, Replay: "off", Shard: "0/2"})
	b := writeShardFile(t, dir, "b.jsonl", CheckpointShape{N: 10, Seed: 5, Replay: "off", Shard: "1/2"})

	t.Run("literal repeat", func(t *testing.T) {
		_, err := MergeShardCheckpoints([]string{a, b, a})
		var dup *DuplicateShardError
		if !errors.As(err, &dup) {
			t.Fatalf("got %v, want *DuplicateShardError", err)
		}
		if !dup.SameFile {
			t.Error("repeat of one path not flagged as SameFile")
		}
		if dup.File != a || dup.Prior != a || dup.Index != 0 {
			t.Errorf("duplicate = %+v, want %s aliasing itself at index 0", dup, a)
		}
		if !strings.Contains(err.Error(), "same file") {
			t.Errorf("message does not say the paths alias one file: %v", err)
		}
	})

	t.Run("symlink alias", func(t *testing.T) {
		link := filepath.Join(dir, "link.jsonl")
		if err := os.Symlink(a, link); err != nil {
			t.Skipf("symlinks unavailable: %v", err)
		}
		_, err := MergeShardCheckpoints([]string{a, b, link})
		var dup *DuplicateShardError
		if !errors.As(err, &dup) {
			t.Fatalf("got %v, want *DuplicateShardError", err)
		}
		if !dup.SameFile {
			t.Error("symlink alias not flagged as SameFile")
		}
		if dup.File != link || dup.Prior != a {
			t.Errorf("duplicate = %+v, want link %s aliasing %s", dup, link, a)
		}
		if !strings.Contains(err.Error(), link) || !strings.Contains(err.Error(), a) {
			t.Errorf("message does not name both aliases: %v", err)
		}
	})
}

package core

import (
	"path/filepath"
	"sync"
	"testing"

	"hlfi/internal/fault"
	"hlfi/internal/telemetry"
)

// fakeWarehouse is a map-backed CellStore: the scheduler-side contract
// (lookup before execution, store after, skips replayed) tested without
// the storage layer. The real store's own behavior is covered in
// internal/warehouse.
type fakeWarehouse struct {
	mu      sync.Mutex
	cells   map[fakeWhKey]*CellResult
	skips   map[fakeWhKey]CheckpointSkip
	lookups int
	stores  int
}

type fakeWhKey struct {
	key          CellKey
	target, base int
}

func newFakeWarehouse() *fakeWarehouse {
	return &fakeWarehouse{
		cells: make(map[fakeWhKey]*CellResult),
		skips: make(map[fakeWhKey]CheckpointSkip),
	}
}

func (f *fakeWarehouse) Lookup(key CellKey, target, base int) (*CellResult, *CheckpointSkip, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.lookups++
	k := fakeWhKey{key, target, base}
	if res, ok := f.cells[k]; ok {
		cp := *res
		return &cp, nil, true
	}
	if skip, ok := f.skips[k]; ok {
		return nil, &skip, true
	}
	return nil, nil, false
}

func (f *fakeWarehouse) StoreCell(key CellKey, target, base int, res *CellResult) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.stores++
	cp := *res
	f.cells[fakeWhKey{key, target, base}] = &cp
}

func (f *fakeWarehouse) StoreSkip(key CellKey, target, base int, skip CheckpointSkip) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.skips[fakeWhKey{key, target, base}] = skip
}

// TestStudyWarehouseWarmRun is the scheduler half of the warehouse
// differential oracle: a cold run populates the store, and the warm run
// resolves every cell from it — zero campaigns executed, identical
// results, warehouse_hit telemetry, and the hits still appended to the
// warm run's own checkpoint so -resume and the fleet render see them.
func TestStudyWarehouseWarmRun(t *testing.T) {
	wh := newFakeWarehouse()
	cold := runTinyStudy(t, func(cfg *StudyConfig) { cfg.Warehouse = wh })
	if wh.stores != len(cold.Cells) {
		t.Fatalf("cold run stored %d cells, want %d", wh.stores, len(cold.Cells))
	}

	ran := 0
	testCampaignHook = func(*Campaign) { ran++ }
	t.Cleanup(func() { testCampaignHook = nil })

	path := filepath.Join(t.TempDir(), "warm.jsonl")
	w, err := NewCheckpointWriter(path, 10, 5, "off")
	if err != nil {
		t.Fatal(err)
	}
	var cap eventCapture
	warm := runTinyStudy(t, func(cfg *StudyConfig) {
		cfg.Warehouse = wh
		cfg.Checkpoint = w
		cfg.Events = &cap
	})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	if ran != 0 {
		t.Errorf("warm run executed %d campaigns, want 0 (every cell warehoused)", ran)
	}
	if len(warm.Cells) != len(cold.Cells) {
		t.Fatalf("warm run has %d cells, cold has %d", len(warm.Cells), len(cold.Cells))
	}
	for key, want := range cold.Cells {
		if got := warm.Cells[key]; got == nil || *got != *want {
			t.Errorf("cell %v differs on the warm run:\ncold %+v\nwarm %+v", key, want, got)
		}
	}
	// Dyn counts come from profiling (one golden run per program/level),
	// not from injections, so the warm run still recomputes them.
	for key, want := range cold.Dyn {
		if got := warm.Dyn[key]; got != want {
			t.Errorf("Dyn[%v] = %d on the warm run, want %d", key, got, want)
		}
	}
	if got := len(cap.ofType(telemetry.EventWarehouseHit)); got != len(cold.Cells) {
		t.Errorf("got %d warehouse_hit events, want %d", got, len(cold.Cells))
	}
	if got := len(cap.ofType(telemetry.EventCellDone)); got != 0 {
		t.Errorf("got %d cell_done events on the warm run, want 0", got)
	}

	// The warm run's checkpoint is self-contained: resuming from it
	// needs neither the warehouse nor any execution.
	state, err := LoadCheckpoint(path, 10, 5, "off")
	if err != nil {
		t.Fatal(err)
	}
	if len(state.Cells) != len(cold.Cells) {
		t.Errorf("warm checkpoint holds %d cells, want %d", len(state.Cells), len(cold.Cells))
	}
}

// TestStudyWarehouseWarmRunParallel: warehoused resolution composes with
// the cell-parallel scheduler — same oracle at Parallel=4.
func TestStudyWarehouseWarmRunParallel(t *testing.T) {
	wh := newFakeWarehouse()
	cold := runTinyStudy(t, func(cfg *StudyConfig) { cfg.Warehouse = wh })

	ran := 0
	testCampaignHook = func(*Campaign) { ran++ }
	t.Cleanup(func() { testCampaignHook = nil })

	warm := runTinyStudy(t, func(cfg *StudyConfig) {
		cfg.Warehouse = wh
		cfg.Parallel = 4
	})
	if ran != 0 {
		t.Errorf("parallel warm run executed %d campaigns, want 0", ran)
	}
	for key, want := range cold.Cells {
		if got := warm.Cells[key]; got == nil || *got != *want {
			t.Errorf("cell %v differs on the parallel warm run:\ncold %+v\nwarm %+v", key, want, got)
		}
	}
}

// TestStudyWarehouseSkipReplay: a cached deterministic skip resolves the
// cell without a campaign, exactly like a checkpointed skip.
func TestStudyWarehouseSkipReplay(t *testing.T) {
	wh := newFakeWarehouse()
	cold := runTinyStudy(t, nil)

	skipped := CellKey{Prog: "tiny.c", Level: fault.LevelASM, Category: fault.CatArith}
	wh.skips[fakeWhKey{skipped, 10, 10}] = CheckpointSkip{
		Kind: SkipNoCandidates, Err: "no arithmetic candidates",
	}

	ran := 0
	testCampaignHook = func(*Campaign) { ran++ }
	t.Cleanup(func() { testCampaignHook = nil })

	warm := runTinyStudy(t, func(cfg *StudyConfig) { cfg.Warehouse = wh })
	if ran != len(cold.Cells)-1 {
		t.Errorf("ran %d campaigns, want %d (one cell skip-warehoused)", ran, len(cold.Cells)-1)
	}
	if warm.Cells[skipped] != nil {
		t.Error("a warehoused skip still produced a cell result")
	}
	if len(warm.Cells) != len(cold.Cells)-1 {
		t.Errorf("warm run has %d cells, want %d", len(warm.Cells), len(cold.Cells)-1)
	}
}

package core_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"hlfi/internal/core"
	"hlfi/internal/fault"
)

// fakeStudy builds a study by hand (no campaigns) with one benchmark,
// both levels, all five categories.
func fakeStudy() *core.Study {
	st := &core.Study{
		Programs: []*core.Program{{Name: "toy"}},
		N:        10,
		Seed:     4,
		Cells:    map[core.CellKey]*core.CellResult{},
		Dyn:      map[core.CellKey]uint64{},
	}
	for _, level := range []fault.Level{fault.LevelIR, fault.LevelASM} {
		for _, cat := range fault.Categories {
			key := core.CellKey{Prog: "toy", Level: level, Category: cat}
			st.Cells[key] = &core.CellResult{
				Prog: "toy", Level: level, Category: cat,
				Benign: 5, SDC: 3, Crash: 2, Attempts: 11,
			}
			st.Dyn[key] = 100
		}
	}
	return st
}

func decodeStudy(t *testing.T, st *core.Study, experiment string) core.StudyJSON {
	t.Helper()
	var buf bytes.Buffer
	if err := st.WriteExperimentJSON(&buf, experiment); err != nil {
		t.Fatal(err)
	}
	var out core.StudyJSON
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestWriteExperimentJSONScoping: -json output is scoped to the
// requested experiment instead of always dumping the full study.
func TestWriteExperimentJSONScoping(t *testing.T) {
	st := fakeStudy()

	fig3 := decodeStudy(t, st, "fig3")
	if fig3.Experiment != "fig3" {
		t.Errorf("experiment tag = %q, want fig3", fig3.Experiment)
	}
	if len(fig3.Cells) != 2 {
		t.Fatalf("fig3 JSON has %d cells, want 2 (category 'all' only)", len(fig3.Cells))
	}
	for _, c := range fig3.Cells {
		if c.Category != "all" {
			t.Errorf("fig3 JSON leaked category %q", c.Category)
		}
	}

	for _, exp := range []string{"fig4", "table5", "all"} {
		full := decodeStudy(t, st, exp)
		if full.Experiment != exp {
			t.Errorf("experiment tag = %q, want %q", full.Experiment, exp)
		}
		if len(full.Cells) != 2*len(fault.Categories) {
			t.Errorf("%s JSON has %d cells, want %d", exp, len(full.Cells), 2*len(fault.Categories))
		}
	}

	// WriteJSON stays the unscoped full form.
	var buf bytes.Buffer
	if err := st.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var legacy core.StudyJSON
	if err := json.Unmarshal(buf.Bytes(), &legacy); err != nil {
		t.Fatal(err)
	}
	if legacy.Experiment != "all" || len(legacy.Cells) != 2*len(fault.Categories) {
		t.Fatalf("WriteJSON changed shape: %+v", legacy)
	}

	// Experiments without a JSON form are rejected.
	for _, exp := range []string{"table2", "table4", "calibration", "nope"} {
		if err := st.WriteExperimentJSON(&buf, exp); err == nil {
			t.Errorf("experiment %q accepted for JSON output", exp)
		}
	}
}

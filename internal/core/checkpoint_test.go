package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hlfi/internal/fault"
	"hlfi/internal/telemetry"
)

// runTinyStudy runs the two-cell study over tinySrc with the given extra
// config applied.
func runTinyStudy(t *testing.T, mutate func(*StudyConfig)) *Study {
	t.Helper()
	p, err := BuildProgram("tiny.c", tinySrc)
	if err != nil {
		t.Fatal(err)
	}
	cfg := StudyConfig{
		Programs:   []*Program{p},
		N:          10,
		Seed:       5,
		Categories: []fault.Category{fault.CatAll, fault.CatArith},
	}
	if mutate != nil {
		mutate(&cfg)
	}
	st, err := RunStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestCheckpointRoundTrip: a study checkpoints every completed cell; the
// loader restores records equal to the in-memory results.
func TestCheckpointRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.jsonl")
	w, err := NewCheckpointWriter(path, 10, 5, "off")
	if err != nil {
		t.Fatal(err)
	}
	st := runTinyStudy(t, func(cfg *StudyConfig) { cfg.Checkpoint = w })
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	state, err := LoadCheckpoint(path, 10, 5, "off")
	if err != nil {
		t.Fatal(err)
	}
	if len(state.Cells) != len(st.Cells) {
		t.Fatalf("checkpoint holds %d cells, study has %d", len(state.Cells), len(st.Cells))
	}
	for key, want := range st.Cells {
		got := state.Cells[key]
		if got == nil || *got != *want {
			t.Errorf("cell %v does not round-trip:\nstudy      %+v\ncheckpoint %+v", key, want, got)
		}
	}

	// Header validation refuses a mismatched study shape.
	if _, err := LoadCheckpoint(path, 20, 5, "off"); err == nil || !strings.Contains(err.Error(), "refusing to resume") {
		t.Errorf("mismatched -n accepted: %v", err)
	}
	if _, err := LoadCheckpoint(path, 10, 6, "off"); err == nil {
		t.Error("mismatched -seed accepted")
	}
}

// TestCheckpointResumeIdentical: a study resumed from a partial
// checkpoint equals the uninterrupted study cell for cell, and the
// resumed cells are never recomputed.
func TestCheckpointResumeIdentical(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.jsonl")
	w, err := NewCheckpointWriter(path, 10, 5, "off")
	if err != nil {
		t.Fatal(err)
	}
	full := runTinyStudy(t, func(cfg *StudyConfig) { cfg.Checkpoint = w })
	w.Close()

	state, err := LoadCheckpoint(path, 10, 5, "off")
	if err != nil {
		t.Fatal(err)
	}
	// Drop one cell to simulate an interruption mid-study.
	dropped := CellKey{Prog: "tiny.c", Level: fault.LevelASM, Category: fault.CatArith}
	if state.Cells[dropped] == nil {
		t.Fatalf("expected cell %v in checkpoint", dropped)
	}
	delete(state.Cells, dropped)

	ran := 0
	testCampaignHook = func(c *Campaign) { ran++ }
	t.Cleanup(func() { testCampaignHook = nil })

	var cap eventCapture
	resumed := runTinyStudy(t, func(cfg *StudyConfig) {
		cfg.Resume = state
		cfg.Events = &cap
	})
	if ran != 1 {
		t.Errorf("resumed study ran %d campaigns, want only the dropped cell", ran)
	}
	if len(resumed.Cells) != len(full.Cells) {
		t.Fatalf("resumed study has %d cells, want %d", len(resumed.Cells), len(full.Cells))
	}
	for key, want := range full.Cells {
		got := resumed.Cells[key]
		if got == nil || *got != *want {
			t.Errorf("cell %v differs after resume:\nfull    %+v\nresumed %+v", key, want, got)
		}
	}
	if got := len(cap.ofType(telemetry.EventCellResume)); got != len(full.Cells)-1 {
		t.Errorf("got %d cell_resume events, want %d", got, len(full.Cells)-1)
	}
	if got := len(cap.ofType(telemetry.EventCellDone)); got != 1 {
		t.Errorf("got %d cell_done events, want 1 (the recomputed cell)", got)
	}
	// Dyn counts (Table IV) are recomputed by profiling on resume and
	// must agree with the uninterrupted run.
	for key, want := range full.Dyn {
		if got := resumed.Dyn[key]; got != want {
			t.Errorf("Dyn[%v] = %d after resume, want %d", key, got, want)
		}
	}
}

// TestCheckpointSkipRecords: soft-skipped cells are recorded and honored
// on resume without re-running.
func TestCheckpointSkipRecords(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.jsonl")
	w, err := NewCheckpointWriter(path, 10, 5, "off")
	if err != nil {
		t.Fatal(err)
	}
	// Make the IR/all cell exhaust its activation budget: soft skip.
	hookInjector(t, fault.LevelIR, fault.CatAll, func() (func(*rand.Rand) fault.Outcome, uint64, error) {
		return func(*rand.Rand) fault.Outcome { return fault.OutcomeNotActivated }, 42, nil
	})
	runTinyStudy(t, func(cfg *StudyConfig) { cfg.Checkpoint = w })
	w.Close()

	state, err := LoadCheckpoint(path, 10, 5, "off")
	if err != nil {
		t.Fatal(err)
	}
	skipKey := CellKey{Prog: "tiny.c", Level: fault.LevelIR, Category: fault.CatAll}
	skip, ok := state.Skips[skipKey]
	if !ok || skip.Kind != SkipNotActivated {
		t.Fatalf("skip record = %+v (present=%v), want kind %q", skip, ok, SkipNotActivated)
	}

	// Resume honors the skip: no campaign runs for it, and it replays as
	// a cell_skip event.
	testCampaignHook = nil
	ran := 0
	testCampaignHook = func(c *Campaign) {
		if c.Level == skipKey.Level && c.Category == skipKey.Category {
			ran++
		}
	}
	var cap eventCapture
	st := runTinyStudy(t, func(cfg *StudyConfig) {
		cfg.Resume = state
		cfg.Events = &cap
	})
	if ran != 0 {
		t.Error("resumed study re-ran a checkpointed skip")
	}
	if st.Cells[skipKey] != nil {
		t.Error("skipped cell present in resumed results")
	}
	if len(cap.ofType(telemetry.EventCellSkip)) != 1 {
		t.Errorf("got %d cell_skip events on resume, want 1", len(cap.ofType(telemetry.EventCellSkip)))
	}
}

// failingFile is a checkpointFile whose writes start failing after
// `okWrites` successful ones (or whose Sync always fails when failSync
// is set), for exercising the checkpoint writer's error path.
type failingFile struct {
	okWrites int
	failSync bool
	writes   int
}

func (f *failingFile) Write(p []byte) (int, error) {
	f.writes++
	if !f.failSync && f.writes > f.okWrites {
		return 0, errors.New("disk full")
	}
	return len(p), nil
}

func (f *failingFile) Sync() error {
	if f.failSync && f.writes > f.okWrites {
		return errors.New("fsync: I/O error")
	}
	return nil
}

func (f *failingFile) Close() error { return nil }

// TestCheckpointWriterFailure: a failed write (or fsync) of a cell
// record surfaces as a typed *CheckpointWriteError, the writer goes
// sticky (no further bytes reach the file), and a checkpointed study
// hitting it aborts as a hard error instead of finishing with a
// silently truncated checkpoint.
func TestCheckpointWriterFailure(t *testing.T) {
	for _, mode := range []string{"write", "fsync"} {
		t.Run(mode, func(t *testing.T) {
			ff := &failingFile{okWrites: 1, failSync: mode == "fsync"}
			w := &CheckpointWriter{path: "fake.jsonl", f: ff, enc: json.NewEncoder(ff)}
			key := CellKey{Prog: "tiny.c", Level: fault.LevelIR, Category: fault.CatAll}
			res := &CellResult{Prog: "tiny.c", Level: fault.LevelIR, Category: fault.CatAll, Benign: 1, Attempts: 1}

			if err := w.Cell(key, res); err != nil { // first append: within okWrites
				t.Fatalf("first append failed early: %v", err)
			}
			err := w.Cell(key, res)
			var werr *CheckpointWriteError
			if !errors.As(err, &werr) {
				t.Fatalf("second append error = %v, want *CheckpointWriteError", err)
			}
			if werr.Path != "fake.jsonl" {
				t.Errorf("error names path %q, want fake.jsonl", werr.Path)
			}

			// Sticky: the writer refuses further appends without touching
			// the file again.
			writesBefore := ff.writes
			if err := w.Skip(key, ErrNoCandidates); !errors.As(err, &werr) {
				t.Fatalf("append after failure = %v, want the sticky *CheckpointWriteError", err)
			}
			if ff.writes != writesBefore {
				t.Errorf("sticky writer still wrote to the file (%d -> %d writes)", writesBefore, ff.writes)
			}
		})
	}

	// End to end: a study whose checkpoint writer fails mid-run aborts
	// with the typed error instead of completing.
	ff := &failingFile{okWrites: 2}
	w := &CheckpointWriter{path: "fake.jsonl", f: ff, enc: json.NewEncoder(ff)}
	p, err := BuildProgram("tiny.c", tinySrc)
	if err != nil {
		t.Fatal(err)
	}
	_, err = RunStudy(StudyConfig{
		Programs:   []*Program{p},
		N:          10,
		Seed:       5,
		Categories: []fault.Category{fault.CatAll, fault.CatArith},
		Checkpoint: w,
	})
	var werr *CheckpointWriteError
	if !errors.As(err, &werr) {
		t.Fatalf("study with failing checkpoint writer returned %v, want *CheckpointWriteError", err)
	}
}

// TestCheckpointTornTail: a SIGKILL mid-append leaves one torn final
// line with no trailing newline; the loader drops that tail (the cell
// re-runs) instead of refusing the whole checkpoint. Corruption
// anywhere else still fails the load.
func TestCheckpointTornTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ck.jsonl")
	w, err := NewCheckpointWriter(path, 10, 5, "off")
	if err != nil {
		t.Fatal(err)
	}
	full := runTinyStudy(t, func(cfg *StudyConfig) { cfg.Checkpoint = w })
	w.Close()

	// Append a torn record: a prefix of a valid cell line, no newline.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(f, `{"type":"cell","benchmark":"tiny.c","level":"LL`)
	f.Close()

	state, err := LoadCheckpoint(path, 10, 5, "off")
	if err != nil {
		t.Fatalf("torn-tail checkpoint refused: %v", err)
	}
	if len(state.Cells) != len(full.Cells) {
		t.Errorf("torn-tail load restored %d cells, want %d", len(state.Cells), len(full.Cells))
	}

	// The same junk mid-file (followed by valid content) is corruption.
	bad := filepath.Join(dir, "bad.jsonl")
	data, _ := os.ReadFile(path)
	data = append(data, '\n')
	data = append(data, []byte(`{"type":"study","version":1,"n":10,"seed":5}`+"\n")...)
	if err := os.WriteFile(bad, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(bad, 10, 5, "off"); err == nil {
		t.Error("mid-file corruption accepted")
	}
}

// TestCheckpointAppendResume: a resumed run appending to the same file
// leaves a checkpoint that restores the full study.
func TestCheckpointAppendResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.jsonl")
	w, err := NewCheckpointWriter(path, 10, 5, "off")
	if err != nil {
		t.Fatal(err)
	}
	full := runTinyStudy(t, func(cfg *StudyConfig) { cfg.Checkpoint = w })
	w.Close()

	state, err := LoadCheckpoint(path, 10, 5, "off")
	if err != nil {
		t.Fatal(err)
	}
	dropped := CellKey{Prog: "tiny.c", Level: fault.LevelIR, Category: fault.CatArith}
	delete(state.Cells, dropped)

	w2, err := OpenCheckpointAppend(path)
	if err != nil {
		t.Fatal(err)
	}
	runTinyStudy(t, func(cfg *StudyConfig) {
		cfg.Resume = state
		cfg.Checkpoint = w2
	})
	w2.Close()

	// The file now carries the original cells plus the recomputed one
	// appended (a duplicate line for the dropped cell is fine: last
	// record wins). A fresh load restores the complete study.
	state2, err := LoadCheckpoint(path, 10, 5, "off")
	if err != nil {
		t.Fatal(err)
	}
	if len(state2.Cells) != len(full.Cells) {
		t.Fatalf("appended checkpoint restores %d cells, want %d", len(state2.Cells), len(full.Cells))
	}
	for key, want := range full.Cells {
		got := state2.Cells[key]
		if got == nil || *got != *want {
			t.Errorf("cell %v wrong after append-resume: %+v vs %+v", key, want, got)
		}
	}
}

package core

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hlfi/internal/fault"
)

// shardOracleCats includes CatCast, which has no candidates in the
// integer-only tinySrc: the oracle therefore exercises merging of
// soft-skip records alongside completed cells.
var shardOracleCats = []fault.Category{fault.CatAll, fault.CatArith, fault.CatCast}

// renderAll concatenates every campaign-derived report, so "byte
// identical" below covers the full rendered surface.
func renderAll(st *Study) string {
	return st.RenderFigure3() + st.RenderTableIV() + st.RenderFigure4() + st.RenderTableV() + st.RenderSummary()
}

// runShards runs one shard worker per index into dir and returns the
// checkpoint paths, mirroring what N ficompare -shard processes write.
func runShards(t *testing.T, p *Program, count, parallel int, dir string) []string {
	t.Helper()
	var paths []string
	for i := 0; i < count; i++ {
		spec := ShardSpec{Index: i, Count: count}
		path := filepath.Join(dir, fmt.Sprintf("shard-%d-of-%d.jsonl", i, count))
		w, err := NewCheckpointWriterShape(path, CheckpointShape{N: 6, Seed: 9, Replay: "off", Shard: spec.String()})
		if err != nil {
			t.Fatal(err)
		}
		cfg := StudyConfig{Programs: []*Program{p}, N: 6, Seed: 9,
			Categories: shardOracleCats, Checkpoint: w, Shard: &spec, Parallel: parallel}
		if _, err := RunStudy(cfg); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		paths = append(paths, path)
	}
	return paths
}

// mergeAndRender merges the shard checkpoints and renders the study by
// resuming from the combined state — the exact path ficompare -merge
// takes. It asserts that no campaign re-runs during the merge render.
func mergeAndRender(t *testing.T, p *Program, paths []string) (*Study, string) {
	t.Helper()
	merged, err := MergeShardCheckpoints(paths)
	if err != nil {
		t.Fatal(err)
	}
	if merged.Shape.N != 6 || merged.Shape.Seed != 9 {
		t.Fatalf("merged shape = %+v, want n=6 seed=9", merged.Shape)
	}
	if err := merged.VerifyComplete(CanonicalCells([]*Program{p}, shardOracleCats)); err != nil {
		t.Fatal(err)
	}

	ran := 0
	testCampaignHook = func(*Campaign) { ran++ }
	defer func() { testCampaignHook = nil }()
	st, err := RunStudy(StudyConfig{Programs: []*Program{p}, N: 6, Seed: 9,
		Categories: shardOracleCats, Resume: merged.State})
	if err != nil {
		t.Fatal(err)
	}
	if ran != 0 {
		t.Fatalf("merge render re-ran %d campaigns, want 0 (every cell restores)", ran)
	}
	return st, renderAll(st)
}

// TestShardMergeDifferentialOracle: for shard counts 2, 3, and 4 —
// sequential and with cell-level parallelism — merging the shard
// checkpoints and rendering reproduces the single-process study byte
// for byte. This is the correctness contract of the whole shard-and-
// merge design: sharding must be invisible in the output.
func TestShardMergeDifferentialOracle(t *testing.T) {
	p, err := BuildProgram("tiny.c", tinySrc)
	if err != nil {
		t.Fatal(err)
	}
	single, err := RunStudy(StudyConfig{Programs: []*Program{p}, N: 6, Seed: 9,
		Categories: shardOracleCats})
	if err != nil {
		t.Fatal(err)
	}
	golden := renderAll(single)

	for _, count := range []int{2, 3, 4} {
		for _, parallel := range []int{1, 2} {
			t.Run(fmt.Sprintf("shards=%d/parallel=%d", count, parallel), func(t *testing.T) {
				paths := runShards(t, p, count, parallel, t.TempDir())
				st, report := mergeAndRender(t, p, paths)
				if report != golden {
					t.Errorf("merged %d-shard report differs from single-process run:\n--- single ---\n%s\n--- merged ---\n%s",
						count, golden, report)
				}
				if len(st.Cells) != len(single.Cells) {
					t.Errorf("merged study has %d cells, single-process %d", len(st.Cells), len(single.Cells))
				}
				for key, want := range single.Cells {
					if got := st.Cells[key]; got == nil || *got != *want {
						t.Errorf("cell %v differs after merge:\nsingle %+v\nmerged %+v", key, want, got)
					}
				}
				for key, want := range single.Dyn {
					if got := st.Dyn[key]; got != want {
						t.Errorf("Dyn[%v] = %d after merge, want %d", key, got, want)
					}
				}
			})
		}
	}
}

// TestShardKillResumeMerge: a shard worker killed mid-run leaves a
// partial checkpoint; the merge names exactly that shard and its owed
// cells, and append-resuming only that shard completes the set — the
// final merged report still matches the single-process run.
func TestShardKillResumeMerge(t *testing.T) {
	p, err := BuildProgram("tiny.c", tinySrc)
	if err != nil {
		t.Fatal(err)
	}
	single, err := RunStudy(StudyConfig{Programs: []*Program{p}, N: 6, Seed: 9,
		Categories: shardOracleCats})
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	paths := runShards(t, p, 3, 1, dir)

	// Emulate shard 1 dying after its first record: truncate its
	// checkpoint to the header plus the first cell/skip line — exactly
	// the file a killed worker leaves behind (every line is fsynced as
	// written, so a crash cuts the file at a line boundary).
	_, hdr1, err := readCheckpoint(paths[1])
	if err != nil {
		t.Fatal(err)
	}
	cells := CanonicalCells([]*Program{p}, shardOracleCats)
	raw, err := os.ReadFile(paths[1])
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(raw), "\n")
	if len(lines) < 3 {
		t.Fatalf("shard 1 checkpoint has %d lines, want header plus at least 2 records", len(lines))
	}
	if err := os.WriteFile(paths[1], []byte(lines[0]+lines[1]), 0o644); err != nil {
		t.Fatal(err)
	}

	// The merge itself succeeds (all headers present and consistent) but
	// completeness fails, attributing the owed cells to shard 1 alone.
	merged, err := MergeShardCheckpoints(paths)
	if err != nil {
		t.Fatal(err)
	}
	verr := merged.VerifyComplete(cells)
	inc, ok := verr.(*IncompleteShardsError)
	if !ok {
		t.Fatalf("got %v, want *IncompleteShardsError", verr)
	}
	if len(inc.Shards) != 1 || inc.Shards[0].Index != 1 || inc.Shards[0].File != paths[1] {
		t.Fatalf("incomplete = %+v, want only shard 1 (%s)", inc.Shards, paths[1])
	}

	// Resume only the dead shard, appending into its checkpoint — the
	// supervisor's restart path. Only the owed cells re-run.
	state, err := LoadCheckpointShape(paths[1], hdr1)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := OpenCheckpointAppend(paths[1])
	if err != nil {
		t.Fatal(err)
	}
	spec := ShardSpec{Index: 1, Count: 3}
	ran := 0
	testCampaignHook = func(*Campaign) { ran++ }
	defer func() { testCampaignHook = nil }()
	if _, err := RunStudy(StudyConfig{Programs: []*Program{p}, N: 6, Seed: 9,
		Categories: shardOracleCats, Shard: &spec, Resume: state, Checkpoint: w2}); err != nil {
		t.Fatal(err)
	}
	w2.Close()
	testCampaignHook = nil
	if ran == 0 {
		t.Fatal("shard resume ran no campaigns; expected it to finish the owed cells")
	}

	_, report := mergeAndRender(t, p, paths)
	if golden := renderAll(single); report != golden {
		t.Errorf("report after kill+resume+merge differs from single-process run:\n--- single ---\n%s\n--- merged ---\n%s",
			golden, report)
	}
}

package core

import (
	"testing"

	"hlfi/internal/obs/trace"
)

// TestTraceOffHotPathZeroAlloc is the benchmark guard for the zero-cost
// promise: with tracing off (a nil recorder), the entire instrumentation
// seam a cell passes through — root span, cell span, phase emission,
// annotation, finish — must allocate nothing. The attempt loop itself
// carries no trace code at all; this pins the per-cell seam so a future
// change cannot quietly put allocations on the campaign path.
func TestTraceOffHotPathZeroAlloc(t *testing.T) {
	var r *trace.Recorder
	root := r.Start(trace.KindCampaign, "study")
	m := CellMetrics{ScanTime: 1, RunTime: 2}
	allocs := testing.AllocsPerRun(200, func() {
		cspan := r.StartChild(trace.KindCell, "quantumm/LLFI/all", root)
		emitPhaseSpans(r, cspan, "quantumm/LLFI/all", m)
		cspan.Outcome = "done"
		cspan.Finish()
		espan := r.StartChild(trace.KindExtension, "quantumm/LLFI/all", root)
		espan.Grant = 16
		espan.Finish()
	})
	if allocs != 0 {
		t.Fatalf("trace-off cell seam allocates %.0f objects per cell, want 0", allocs)
	}
}

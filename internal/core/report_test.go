package core

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"hlfi/internal/fault"
)

// syntheticStudy builds a study with hand-filled cells so the renderers
// can be tested without running campaigns.
func syntheticStudy() *Study {
	progs := []*Program{{Name: "alpha"}, {Name: "beta"}}
	st := &Study{
		Programs: progs,
		N:        100,
		Cells:    make(map[CellKey]*CellResult),
		Dyn:      make(map[CellKey]uint64),
	}
	fill := func(prog string, level fault.Level, cat fault.Category, crash, sdc, benign int) {
		st.Cells[CellKey{prog, level, cat}] = &CellResult{
			Prog: prog, Level: level, Category: cat,
			Crash: crash, SDC: sdc, Benign: benign,
			Attempts: crash + sdc + benign,
		}
		st.Dyn[CellKey{prog, level, cat}] = uint64(1000 * (int(cat)*7 + int(level)))
	}
	for _, p := range progs {
		for _, lv := range []fault.Level{fault.LevelIR, fault.LevelASM} {
			for _, cat := range fault.Categories {
				fill(p.Name, lv, cat, 30, 10, 60)
			}
		}
	}
	// Introduce one big crash divergence for the summary.
	st.Cells[CellKey{"alpha", fault.LevelIR, fault.CatArith}].Crash = 70
	st.Cells[CellKey{"alpha", fault.LevelIR, fault.CatArith}].Benign = 20
	return st
}

func TestRenderers(t *testing.T) {
	st := syntheticStudy()
	fig3 := st.RenderFigure3()
	for _, want := range []string{"alpha", "beta", "average", "30.0%", "10.0%"} {
		if !strings.Contains(fig3, want) {
			t.Errorf("Figure 3 missing %q:\n%s", want, fig3)
		}
	}
	t4 := st.RenderTableIV()
	for _, want := range []string{"LLFI", "PINFI", "arithmetic", "cast", "cmp", "load"} {
		if !strings.Contains(t4, want) {
			t.Errorf("Table IV missing %q:\n%s", want, t4)
		}
	}
	fig4 := st.RenderFigure4()
	for _, want := range []string{"(a) arithmetic", "(e) all", "±", "CIs overlap"} {
		if !strings.Contains(fig4, want) {
			t.Errorf("Figure 4 missing %q", want)
		}
	}
	t5 := st.RenderTableV()
	if !strings.Contains(t5, "crash percentage") || !strings.Contains(t5, "70%") {
		t.Errorf("Table V missing content:\n%s", t5)
	}
	sum := st.RenderSummary()
	if !strings.Contains(sum, "crash difference") || !strings.Contains(sum, "40.0 points") {
		t.Errorf("summary should report the 40-point crash divergence:\n%s", sum)
	}
}

func TestCellResultAccounting(t *testing.T) {
	c := &CellResult{Crash: 10, SDC: 5, Benign: 80, Hang: 5, NotActivated: 17}
	if c.Activated() != 100 {
		t.Fatalf("activated = %d", c.Activated())
	}
	if c.CrashRate().Rate() != 0.10 || c.SDCRate().Rate() != 0.05 ||
		c.BenignRate().Rate() != 0.80 || c.HangRate().Rate() != 0.05 {
		t.Fatal("rates must be fractions of activated faults only")
	}
}

func TestCellSeedStability(t *testing.T) {
	a := cellSeed(1, "bzip2m", fault.LevelIR, fault.CatAll)
	b := cellSeed(1, "bzip2m", fault.LevelIR, fault.CatAll)
	if a != b {
		t.Fatal("cell seeds must be stable")
	}
	if a == cellSeed(1, "bzip2m", fault.LevelASM, fault.CatAll) {
		t.Fatal("levels must get different seeds")
	}
	if a == cellSeed(2, "bzip2m", fault.LevelIR, fault.CatAll) {
		t.Fatal("base seed must matter")
	}
}

func TestBuildProgramRejectsBadSource(t *testing.T) {
	if _, err := BuildProgram("bad", "int main( {"); err == nil {
		t.Fatal("syntax error accepted")
	}
	if _, err := BuildProgram("nomain", "int f() { return 1; }"); err == nil {
		t.Fatal("missing main accepted")
	}
	// A program that crashes on its golden run is not a valid experiment.
	if _, err := BuildProgram("crasher", `int main() { int *p = 0; return *p; }`); err == nil {
		t.Fatal("crashing golden run accepted")
	}
}

func TestWriteJSON(t *testing.T) {
	st := syntheticStudy()
	var buf bytes.Buffer
	if err := st.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded StudyJSON
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if decoded.N != 100 || len(decoded.Cells) != 20 {
		t.Fatalf("decoded: n=%d cells=%d", decoded.N, len(decoded.Cells))
	}
	c := decoded.Cells[0]
	if c.Benchmark != "alpha" || c.Activated != 100 {
		t.Fatalf("first cell: %+v", c)
	}
	if c.CrashRate < 0 || c.CrashRate > 1 || c.SDCCI95 <= 0 {
		t.Fatalf("rates: %+v", c)
	}
}

package core_test

import (
	"testing"

	"hlfi/internal/bench"
	"hlfi/internal/core"
	"hlfi/internal/fault"
)

// TestParallelDeterminism: worker count must not change the result.
func TestParallelDeterminism(t *testing.T) {
	p, err := bench.Build("quantumm")
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int) *core.CellResult {
		c := &core.Campaign{Prog: p, Level: fault.LevelASM, Category: fault.CatAll, N: 60, Seed: 13}
		res, err := c.RunParallel(workers)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a := run(2)
	b := run(8)
	if *a != *b {
		t.Fatalf("parallel results depend on worker count:\n%+v\n%+v", a, b)
	}
	// And the IR level, with shared Prepared state across goroutines.
	c := &core.Campaign{Prog: p, Level: fault.LevelIR, Category: fault.CatArith, N: 40, Seed: 5}
	r1, err := c.RunParallel(4)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := c.RunParallel(3)
	if err != nil {
		t.Fatal(err)
	}
	if *r1 != *r2 {
		t.Fatalf("IR parallel mismatch: %+v vs %+v", r1, r2)
	}
}

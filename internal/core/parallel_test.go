package core_test

import (
	"testing"

	"hlfi/internal/bench"
	"hlfi/internal/core"
	"hlfi/internal/fault"
)

// TestParallelDeterminism: worker count must not change the result.
func TestParallelDeterminism(t *testing.T) {
	p, err := bench.Build("quantumm")
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int) *core.CellResult {
		c := &core.Campaign{Prog: p, Level: fault.LevelASM, Category: fault.CatAll, N: 60, Seed: 13}
		res, err := c.RunParallel(workers)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a := run(2)
	b := run(8)
	if *a != *b {
		t.Fatalf("parallel results depend on worker count:\n%+v\n%+v", a, b)
	}
	// And the IR level, with shared Prepared state across goroutines.
	c := &core.Campaign{Prog: p, Level: fault.LevelIR, Category: fault.CatArith, N: 40, Seed: 5}
	r1, err := c.RunParallel(4)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := c.RunParallel(3)
	if err != nil {
		t.Fatal(err)
	}
	if *r1 != *r2 {
		t.Fatalf("IR parallel mismatch: %+v vs %+v", r1, r2)
	}
}

// TestParallelMoreWorkersThanWave: worker counts beyond the internal
// dispatch wave (64 attempts) must still give the same result.
func TestParallelMoreWorkersThanWave(t *testing.T) {
	p, err := bench.Build("quantumm")
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int) *core.CellResult {
		c := &core.Campaign{Prog: p, Level: fault.LevelASM, Category: fault.CatAll, N: 30, Seed: 21}
		res, err := c.RunParallel(workers)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	few, many := run(2), run(128)
	if *few != *many {
		t.Fatalf("worker count beyond the wave changed the result:\n%+v\n%+v", few, many)
	}
}

// TestParallelMaxAttemptsExhaustion: when the attempt budget runs out
// with some faults activated, RunParallel must return the partial cell
// (no error), keep the accounting consistent, and stay deterministic
// across worker counts. mcfm/PINFI/all at this seed is known to draw
// non-activated faults, so N attempts cannot all activate.
func TestParallelMaxAttemptsExhaustion(t *testing.T) {
	p, err := bench.Build("mcfm")
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int) *core.CellResult {
		c := &core.Campaign{Prog: p, Level: fault.LevelASM, Category: fault.CatAll,
			N: 120, Seed: 11, MaxAttemptsFactor: 1}
		res, err := c.RunParallel(workers)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	res := run(4)
	if res.Attempts != 120 {
		t.Fatalf("attempts = %d, want the exhausted budget 120", res.Attempts)
	}
	if res.NotActivated == 0 {
		t.Fatal("probe cell no longer draws non-activated faults; pick another seed")
	}
	if got := res.Activated(); got != 120-res.NotActivated || got >= 120 || got == 0 {
		t.Fatalf("partial activation accounting broken: activated=%d notActivated=%d attempts=%d",
			got, res.NotActivated, res.Attempts)
	}
	if other := run(8); *other != *res {
		t.Fatalf("exhausted cell depends on worker count:\n%+v\n%+v", res, other)
	}
}

// TestParallelSingleWorkerFallback: RunParallel with workers <= 1 must be
// the exact sequential campaign — same stream, same sample, same result
// as Run().
func TestParallelSingleWorkerFallback(t *testing.T) {
	p, err := bench.Build("quantumm")
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 0, -3} {
		c := &core.Campaign{Prog: p, Level: fault.LevelIR, Category: fault.CatAll, N: 30, Seed: 77}
		par, err := c.RunParallel(workers)
		if err != nil {
			t.Fatal(err)
		}
		seq, err := (&core.Campaign{Prog: p, Level: fault.LevelIR, Category: fault.CatAll, N: 30, Seed: 77}).Run()
		if err != nil {
			t.Fatal(err)
		}
		if *par != *seq {
			t.Fatalf("RunParallel(%d) diverged from Run():\n%+v\n%+v", workers, par, seq)
		}
	}
	// And the fallback still fills the timing metrics with Workers=1.
	var m core.CellMetrics
	c := &core.Campaign{Prog: p, Level: fault.LevelIR, Category: fault.CatAll, N: 10, Seed: 77, Metrics: &m}
	if _, err := c.RunParallel(1); err != nil {
		t.Fatal(err)
	}
	if m.Workers != 1 || m.RunTime <= 0 {
		t.Fatalf("fallback metrics not recorded: %+v", m)
	}
}

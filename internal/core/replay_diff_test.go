package core_test

import (
	"testing"

	"hlfi/internal/bench"
	"hlfi/internal/core"
	"hlfi/internal/fault"
	"hlfi/internal/telemetry"
)

// fullReport concatenates every rendered artifact so byte-identity of
// the whole evaluation can be asserted in one comparison.
func fullReport(st *core.Study) string {
	return st.RenderFigure3() + st.RenderTableIV() + st.RenderFigure4() +
		st.RenderTableV() + st.RenderSummary()
}

func sameStudy(t *testing.T, name string, want, got *core.Study) {
	t.Helper()
	if len(want.Cells) != len(got.Cells) {
		t.Fatalf("%s: cell count %d != %d", name, len(got.Cells), len(want.Cells))
	}
	for key, w := range want.Cells {
		g := got.Cells[key]
		if g == nil {
			t.Fatalf("%s: missing cell %v", name, key)
		}
		if *w != *g {
			t.Errorf("%s: cell %v diverged:\n  want %+v\n  got  %+v", name, key, *w, *g)
		}
	}
	for key, w := range want.Dyn {
		if g := got.Dyn[key]; g != w {
			t.Errorf("%s: dyn %v: %d != %d", name, key, g, w)
		}
	}
	if wr, gr := fullReport(want), fullReport(got); wr != gr {
		t.Errorf("%s: rendered reports are not byte-identical", name)
	}
}

// TestReplayDifferentialOracle is the study-level correctness gate for
// the fast-forward replay engine: the full example study — every
// benchmark, both levels, all five categories — must produce identical
// per-cell outcome vectors, activation counts, and rendered report
// bytes whether snapshots are on or off, sequentially and under the
// parallel scheduler.
func TestReplayDifferentialOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("differential oracle runs the full example study three times")
	}
	progs, err := bench.BuildAll()
	if err != nil {
		t.Fatal(err)
	}
	run := func(replay *core.ReplayConfig, parallel int) *core.Study {
		st, err := core.RunStudy(core.StudyConfig{
			Programs: progs, N: 12, Seed: 3,
			Parallel: parallel, Replay: replay,
		})
		if err != nil {
			t.Fatal(err)
		}
		return st
	}

	baseline := run(nil, 1)

	stats := &telemetry.ReplayStats{}
	sameStudy(t, "sequential", baseline, run(&core.ReplayConfig{Stats: stats}, 1))
	if stats.Hits() == 0 {
		t.Error("sequential replay run never hit a snapshot")
	}

	pstats := &telemetry.ReplayStats{}
	sameStudy(t, "parallel", baseline, run(&core.ReplayConfig{Stats: pstats}, 4))
	if pstats.Hits() == 0 {
		t.Error("parallel replay run never hit a snapshot")
	}
}

// TestReplayTinyBudgetStillExact drives the cache's thinning and LRU
// eviction paths with a budget far below one entry and checks the
// results still match replay-off exactly: the budget may cost speed,
// never correctness.
func TestReplayTinyBudgetStillExact(t *testing.T) {
	p, err := bench.Build("quantumm")
	if err != nil {
		t.Fatal(err)
	}
	run := func(replay *core.ReplayConfig) *core.CellResult {
		c := &core.Campaign{
			Prog: p, Level: fault.LevelIR, Category: fault.CatAll,
			N: 20, Seed: 11, Replay: replay,
		}
		res, err := c.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	want := run(nil)

	stats := &telemetry.ReplayStats{}
	got := run(&core.ReplayConfig{MemBudget: 1, Stats: stats})
	if *want != *got {
		t.Fatalf("tiny-budget replay diverged:\n  want %+v\n  got  %+v", *want, *got)
	}
	if stats.Hits()+stats.Misses() == 0 {
		t.Error("replay stats recorded no attempts")
	}
}

// Checkpoint/resume for campaign studies. A checkpoint is a JSONL file:
// one header line identifying the study shape, then one line per
// completed (or skipped) cell, appended and fsynced as cells finish. A
// resumed study loads the file, skips every recorded cell, and — because
// each cell derives its seed independently via cellSeed — produces
// output byte-identical to an uninterrupted run.
//
// Schema (one JSON object per line):
//
//	{"type":"study","version":1,"n":1000,"seed":1}
//	{"type":"cell","benchmark":"bzip2m","level":"LLFI","category":"all",
//	 "result":{"benign":...,"sdc":...,"crash":...,"hang":...,
//	           "notActivated":...,"attempts":...,"simFaults":...,
//	           "dynCandidates":...}}
//	{"type":"skip","benchmark":"mcfm","level":"PINFI","category":"cast",
//	 "kind":"no-candidates","err":"..."}
//
// Lines are written in completion order (not canonical cell order — the
// durability path is deliberately decoupled from the reorder buffer that
// keeps progress and telemetry canonical), and the loader is
// order-independent: for duplicate cells the last record wins.
package core

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"

	"hlfi/internal/fault"
)

// checkpointVersion guards the on-disk schema.
const checkpointVersion = 1

// Skip kinds recorded in checkpoint skip lines.
const (
	SkipNoCandidates = "no-candidates"
	SkipNotActivated = "not-activated"
	SkipDeadline     = "deadline"
	// SkipFleet marks a cell degraded by the fleet coordinator after its
	// retry budget ran out (every lease expired or failed): the fleet
	// analogue of the wall-clock deadline path.
	SkipFleet = "fleet-failed"
)

// CheckpointWriteError is the typed failure of a checkpoint append: the
// write or fsync of one cell record did not reach stable storage. The
// writer goes sticky after the first such failure — no further records
// are appended, so the file keeps a valid, fully-fsynced prefix instead
// of an interleaved corrupt tail. The study treats it as a hard error
// (silently continuing would hand a later -resume a checkpoint it must
// not trust); a fleet coordinator instead fails the affected lease so
// the cell is requeued.
type CheckpointWriteError struct {
	Path string
	Err  error
}

func (e *CheckpointWriteError) Error() string {
	return fmt.Sprintf("checkpoint %s: write failed, aborting (the file retains a valid prefix of fully-synced records): %v", e.Path, e.Err)
}

func (e *CheckpointWriteError) Unwrap() error { return e.Err }

// CheckpointTruncatedError is the typed failure of loading a checkpoint
// that was cut off before its study header reached stable storage: a
// zero-byte file (crash between create and the first fsynced line) or a
// file whose only content is the torn header line itself. Both are the
// benign debris of a killed writer, not corruption — but they carry no
// study shape, so neither -resume nor -merge can use them. Callers can
// errors.As on this type to offer "delete it and start fresh" instead
// of surfacing a bare io.EOF or JSON parse error.
type CheckpointTruncatedError struct {
	Path string
	Size int64
}

func (e *CheckpointTruncatedError) Error() string {
	return fmt.Sprintf("checkpoint %s: truncated before the study header was written (%d bytes, no complete record): the writer was killed before its first fsync; delete the file and start a fresh run", e.Path, e.Size)
}

type checkpointLine struct {
	Type string `json:"type"` // "study" | "cell" | "skip"

	// Header fields (type "study"). Replay records the snapshot-replay
	// configuration the study ran under ("off", or "stride=N;budget=M");
	// files from before replay existed carry no field, which loads as
	// "off". Compiled records the compiled-engine configuration the same
	// way ("off" or "on"; pre-compiled files load as "off"). Although
	// neither ever changes results, the header still pins them: a config
	// mismatch on resume would make the combined run's provenance
	// unverifiable by re-execution with one flag set. Shard ("i/N") marks
	// the checkpoint of one shard worker owning the canonical cells with
	// index%N == i; unsharded studies carry no field.
	Version  int    `json:"version,omitempty"`
	N        int    `json:"n,omitempty"`
	Seed     int64  `json:"seed,omitempty"`
	Replay   string `json:"replay,omitempty"`
	Compiled string `json:"compiled,omitempty"`
	Shard    string `json:"shard,omitempty"`
	// Adaptive records the early-stopping configuration the study ran
	// under (adaptive.Config.Signature: "off" or "eps=…,min=…,check=…").
	// Unlike replay/compiled it DOES change results — adaptive records
	// carry per-cell stop points no fixed-n run produces — so mixing
	// configs across resume or merge is refused like any other shape
	// mismatch. Pre-adaptive files carry no field and load as "off".
	Adaptive string `json:"adaptive,omitempty"`

	// Cell identity (types "cell" and "skip").
	Benchmark string `json:"benchmark,omitempty"`
	Level     string `json:"level,omitempty"`
	Category  string `json:"category,omitempty"`

	// Completed-cell payload (type "cell").
	Result *checkpointResult `json:"result,omitempty"`

	// Skip payload (type "skip").
	Kind string `json:"kind,omitempty"`
	Err  string `json:"err,omitempty"`
}

// checkpointResult is CellResult without the identity triple (carried on
// the line) and in stable lower-case JSON.
type checkpointResult struct {
	Benign        int    `json:"benign"`
	SDC           int    `json:"sdc"`
	Crash         int    `json:"crash"`
	Hang          int    `json:"hang"`
	NotActivated  int    `json:"notActivated"`
	Attempts      int    `json:"attempts"`
	SimFaults     int    `json:"simFaults,omitempty"`
	DynCandidates uint64 `json:"dynCandidates"`

	// Adaptive-sampling fields (absent on fixed-n records). Target is
	// the activated target the record ran under; Round1 snapshots the
	// counts at the round-1 boundary of an extended record, so any
	// process resuming from the checkpoint recomputes the identical
	// reallocation plan without re-running the cell.
	Target    int               `json:"target,omitempty"`
	Converged bool              `json:"converged,omitempty"`
	Round1    *checkpointRound1 `json:"round1,omitempty"`
}

// checkpointRound1 is the persisted round-1 boundary snapshot of an
// extended cell record.
type checkpointRound1 struct {
	Benign       int `json:"benign"`
	SDC          int `json:"sdc"`
	Crash        int `json:"crash"`
	Hang         int `json:"hang"`
	NotActivated int `json:"notActivated"`
	Attempts     int `json:"attempts"`
	SimFaults    int `json:"simFaults,omitempty"`
}

// CheckpointSkip records one cell skipped for a soft reason.
type CheckpointSkip struct {
	Kind string
	Err  string
}

// skipError reconstructs the skip's error so replaying the record
// through CheckpointWriter.Skip (and SkipKindOf) yields the identical
// kind and message — a warehouse-resolved skip must checkpoint exactly
// like the original run's.
func (s CheckpointSkip) skipError() error {
	var sentinel error
	switch s.Kind {
	case SkipNoCandidates:
		sentinel = ErrNoCandidates
	case SkipNotActivated:
		sentinel = ErrNotActivated
	case SkipDeadline:
		sentinel = ErrDeadline
	default:
		return errors.New(s.Err)
	}
	return &replayedSkipError{msg: s.Err, sentinel: sentinel}
}

// replayedSkipError carries a recorded skip message while unwrapping to
// the sentinel its kind maps back to.
type replayedSkipError struct {
	msg      string
	sentinel error
}

func (e *replayedSkipError) Error() string { return e.msg }
func (e *replayedSkipError) Unwrap() error { return e.sentinel }

// CheckpointState is the loaded content of a checkpoint file: completed
// cells to restore and soft-skipped cells to skip again without
// re-running.
type CheckpointState struct {
	N     int
	Seed  int64
	Shard string // "i/N" for a shard worker's checkpoint, "" otherwise
	Cells map[CellKey]*CellResult
	Skips map[CellKey]CheckpointSkip
}

// CheckpointShape is the study identity a checkpoint header pins: the
// per-cell injection count, the study seed, the snapshot-replay and
// compiled-engine signatures, and (for shard workers) the shard spec.
type CheckpointShape struct {
	N        int
	Seed     int64
	Replay   string
	Compiled string // CompiledConfig.Signature ("off" or "on")
	Adaptive string // adaptive.Config.Signature ("off" or "eps=…,min=…,check=…")
	Shard    string // "i/N", or "" for an unsharded study
}

// LoadCheckpoint reads a checkpoint and validates that it belongs to an
// unsharded study with the given N, seed, and replay signature
// (ReplayConfig.Signature; nil config = "off") — resuming into a
// different study shape would silently produce results no uninterrupted
// run could, and a replay-config switch mid-study would be
// unverifiable.
func LoadCheckpoint(path string, n int, seed int64, replay string) (*CheckpointState, error) {
	return LoadCheckpointShape(path, CheckpointShape{N: n, Seed: seed, Replay: replay})
}

// LoadCheckpointShape reads a checkpoint and validates its header
// against the expected study shape, including the shard spec: a shard
// worker can only resume its own shard's checkpoint, and an unsharded
// study refuses a shard-tagged file (merge it instead).
func LoadCheckpointShape(path string, shape CheckpointShape) (*CheckpointState, error) {
	st, hdr, err := readCheckpoint(path)
	if err != nil {
		return nil, err
	}
	if hdr.N != shape.N || hdr.Seed != shape.Seed {
		return nil, fmt.Errorf("checkpoint %s was written by -n %d -seed %d; refusing to resume a -n %d -seed %d study",
			path, hdr.N, hdr.Seed, shape.N, shape.Seed)
	}
	if got := normalizeReplay(hdr.Replay); got != normalizeReplay(shape.Replay) {
		return nil, fmt.Errorf("checkpoint %s was written with snapshot replay %q; refusing to resume with replay %q (match the original -snapshot-* flags, or start a fresh checkpoint)",
			path, got, normalizeReplay(shape.Replay))
	}
	if got := normalizeCompiled(hdr.Compiled); got != normalizeCompiled(shape.Compiled) {
		return nil, fmt.Errorf("checkpoint %s was written with compiled engines %q; refusing to resume with compiled engines %q (match the original -compiled/-no-compiled flag, or start a fresh checkpoint)",
			path, got, normalizeCompiled(shape.Compiled))
	}
	if got := normalizeAdaptive(hdr.Adaptive); got != normalizeAdaptive(shape.Adaptive) {
		return nil, fmt.Errorf("checkpoint %s was written with adaptive sampling %q; refusing to resume with adaptive sampling %q (adaptive stop points change results — match the original -adaptive flag, or start a fresh checkpoint)",
			path, got, normalizeAdaptive(shape.Adaptive))
	}
	if hdr.Shard != shape.Shard {
		switch {
		case shape.Shard == "":
			return nil, fmt.Errorf("checkpoint %s belongs to shard %s; refusing to resume it as an unsharded study (use -merge, or resume with -shard %s)",
				path, hdr.Shard, hdr.Shard)
		case hdr.Shard == "":
			return nil, fmt.Errorf("checkpoint %s belongs to an unsharded study; refusing to resume it as shard %s",
				path, shape.Shard)
		default:
			return nil, fmt.Errorf("checkpoint %s belongs to shard %s; refusing to resume it as shard %s",
				path, hdr.Shard, shape.Shard)
		}
	}
	return st, nil
}

// readCheckpoint parses a checkpoint file without shape expectations,
// returning the restored state and the header shape it was written
// under. Callers validate the shape (LoadCheckpointShape for resume,
// MergeShardCheckpoints for merge).
//
// Every complete record ends in a newline before it is fsynced, so a
// process killed mid-append can leave at most one torn line, and only
// at the very end of the file with no trailing newline. That tail is
// dropped (the cell it described simply re-runs); a malformed line
// anywhere else is real corruption and still fails the load.
func readCheckpoint(path string) (*CheckpointState, CheckpointShape, error) {
	var hdr CheckpointShape
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, hdr, err
	}
	tornTail := len(data) > 0 && data[len(data)-1] != '\n'

	st := &CheckpointState{
		Cells: make(map[CellKey]*CellResult),
		Skips: make(map[CellKey]CheckpointSkip),
	}
	lines := bytes.Split(data, []byte{'\n'})
	sawHeader := false
	for lineNo, raw := range lines {
		if len(raw) == 0 {
			continue
		}
		var line checkpointLine
		if err := json.Unmarshal(raw, &line); err != nil {
			if tornTail && lineNo == len(lines)-1 {
				break // torn final record of a killed writer: ignore
			}
			return nil, hdr, fmt.Errorf("checkpoint %s:%d: %w", path, lineNo+1, err)
		}
		switch line.Type {
		case "study":
			if line.Version != checkpointVersion {
				return nil, hdr, fmt.Errorf("checkpoint %s: version %d (supported: %d)",
					path, line.Version, checkpointVersion)
			}
			hdr = CheckpointShape{N: line.N, Seed: line.Seed, Replay: line.Replay,
				Compiled: line.Compiled, Adaptive: line.Adaptive, Shard: line.Shard}
			st.N, st.Seed, st.Shard = line.N, line.Seed, line.Shard
			sawHeader = true
		case "cell":
			key, err := line.key()
			if err != nil {
				return nil, hdr, fmt.Errorf("checkpoint %s:%d: %w", path, lineNo+1, err)
			}
			if line.Result == nil {
				return nil, hdr, fmt.Errorf("checkpoint %s:%d: cell line without result", path, lineNo+1)
			}
			r := line.Result
			res := &CellResult{
				Prog: key.Prog, Level: key.Level, Category: key.Category,
				Benign: r.Benign, SDC: r.SDC, Crash: r.Crash, Hang: r.Hang,
				NotActivated: r.NotActivated, Attempts: r.Attempts,
				SimFaults: r.SimFaults, DynCandidates: r.DynCandidates,
			}
			if r.Target > 0 {
				res.Adaptive.Target = r.Target
				res.Adaptive.Converged = r.Converged
				if r.Round1 != nil {
					res.Adaptive.Extended = true
					res.Adaptive.Round1 = AdaptiveCounts{
						Benign: r.Round1.Benign, SDC: r.Round1.SDC,
						Crash: r.Round1.Crash, Hang: r.Round1.Hang,
						NotActivated: r.Round1.NotActivated,
						Attempts:     r.Round1.Attempts, SimFaults: r.Round1.SimFaults,
					}
				}
			}
			st.Cells[key] = res
			delete(st.Skips, key)
		case "skip":
			key, err := line.key()
			if err != nil {
				return nil, hdr, fmt.Errorf("checkpoint %s:%d: %w", path, lineNo+1, err)
			}
			st.Skips[key] = CheckpointSkip{Kind: line.Kind, Err: line.Err}
			delete(st.Cells, key)
		default:
			return nil, hdr, fmt.Errorf("checkpoint %s:%d: unknown record type %q", path, lineNo+1, line.Type)
		}
	}
	if !sawHeader {
		// A file with complete records but no header is real corruption
		// (or not a checkpoint at all); an empty file or one holding
		// only the torn header line is the debris of a writer killed
		// before its first fsync, reported as a typed truncation.
		for lineNo, raw := range lines {
			if len(raw) == 0 || (tornTail && lineNo == len(lines)-1) {
				continue
			}
			return nil, hdr, fmt.Errorf("checkpoint %s: missing study header line", path)
		}
		return nil, hdr, &CheckpointTruncatedError{Path: path, Size: int64(len(data))}
	}
	return st, hdr, nil
}

func (l *checkpointLine) key() (CellKey, error) {
	level, err := fault.ParseLevel(l.Level)
	if err != nil {
		return CellKey{}, err
	}
	cat, err := fault.ParseCategory(l.Category)
	if err != nil {
		return CellKey{}, err
	}
	return CellKey{Prog: l.Benchmark, Level: level, Category: cat}, nil
}

// checkpointFile is the durability surface a CheckpointWriter appends
// through. *os.File is the production implementation; tests substitute
// a failing fake to exercise the write-error path.
type checkpointFile interface {
	io.Writer
	Sync() error
	Close() error
}

// CheckpointWriter appends cell records to a checkpoint file as they
// complete, syncing after every line so a SIGKILL loses at most the
// in-flight cell. Safe for concurrent use by the cell scheduler.
//
// The writer is fail-stop: the first write or fsync error is recorded
// as a *CheckpointWriteError and every later append returns it without
// touching the file, so a failed record can never be followed by more
// bytes that would interleave with its partial tail.
type CheckpointWriter struct {
	mu   sync.Mutex
	path string
	f    checkpointFile
	enc  *json.Encoder
	werr error // sticky first write failure
}

// NewCheckpointWriter creates (or truncates) an unsharded checkpoint
// file and writes the study header. replay is the snapshot-replay
// signature (ReplayConfig.Signature; nil config = "off").
func NewCheckpointWriter(path string, n int, seed int64, replay string) (*CheckpointWriter, error) {
	return NewCheckpointWriterShape(path, CheckpointShape{N: n, Seed: seed, Replay: replay})
}

// NewCheckpointWriterShape creates (or truncates) a checkpoint file and
// writes the full study-shape header, including the shard spec for
// shard workers.
func NewCheckpointWriterShape(path string, shape CheckpointShape) (*CheckpointWriter, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	w := &CheckpointWriter{path: path, f: f, enc: json.NewEncoder(f)}
	if err := w.append(checkpointLine{Type: "study", Version: checkpointVersion,
		N: shape.N, Seed: shape.Seed, Replay: normalizeReplay(shape.Replay),
		Compiled: normalizeCompiled(shape.Compiled),
		Adaptive: normalizeAdaptive(shape.Adaptive), Shard: shape.Shard}); err != nil {
		f.Close()
		return nil, err
	}
	return w, nil
}

// normalizeReplay maps the pre-replay headers' empty field (and an empty
// argument) onto the explicit "off" signature.
func normalizeReplay(sig string) string {
	if sig == "" {
		return "off"
	}
	return sig
}

// normalizeCompiled does the same for the compiled-engine signature:
// headers written before the compiled engines existed carry no field and
// load as "off".
func normalizeCompiled(sig string) string {
	if sig == "" {
		return "off"
	}
	return sig
}

// normalizeAdaptive does the same for the adaptive-sampling signature:
// headers written before the early-stopping engine existed carry no
// field and load as "off".
func normalizeAdaptive(sig string) string {
	if sig == "" {
		return "off"
	}
	return sig
}

// OpenCheckpointAppend reopens an existing checkpoint (already carrying
// a header) so a resumed study keeps checkpointing into the same file.
func OpenCheckpointAppend(path string) (*CheckpointWriter, error) {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &CheckpointWriter{path: path, f: f, enc: json.NewEncoder(f)}, nil
}

func (w *CheckpointWriter) append(line checkpointLine) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.werr != nil {
		return w.werr
	}
	if err := w.enc.Encode(line); err != nil {
		w.werr = &CheckpointWriteError{Path: w.path, Err: err}
		return w.werr
	}
	if err := w.f.Sync(); err != nil {
		w.werr = &CheckpointWriteError{Path: w.path, Err: err}
		return w.werr
	}
	return nil
}

// Cell appends one completed cell. A failure surfaces as a typed
// *CheckpointWriteError that the study treats as a hard error: a
// checkpoint the operator believes is accumulating durable state but
// silently is not would betray the next -resume.
func (w *CheckpointWriter) Cell(key CellKey, res *CellResult) error {
	if w == nil {
		return nil
	}
	cr := &checkpointResult{
		Benign: res.Benign, SDC: res.SDC, Crash: res.Crash, Hang: res.Hang,
		NotActivated: res.NotActivated, Attempts: res.Attempts,
		SimFaults: res.SimFaults, DynCandidates: res.DynCandidates,
	}
	if a := res.Adaptive; a.Target > 0 {
		cr.Target = a.Target
		cr.Converged = a.Converged
		if a.Extended {
			cr.Round1 = &checkpointRound1{
				Benign: a.Round1.Benign, SDC: a.Round1.SDC,
				Crash: a.Round1.Crash, Hang: a.Round1.Hang,
				NotActivated: a.Round1.NotActivated,
				Attempts:     a.Round1.Attempts, SimFaults: a.Round1.SimFaults,
			}
		}
	}
	return w.append(checkpointLine{
		Type:      "cell",
		Benchmark: key.Prog,
		Level:     key.Level.String(),
		Category:  key.Category.String(),
		Result:    cr,
	})
}

// Skip appends one soft-skipped cell so a resumed study skips it without
// re-running (keeping resumed output byte-identical).
func (w *CheckpointWriter) Skip(key CellKey, err error) error {
	if w == nil {
		return nil
	}
	return w.append(checkpointLine{
		Type:      "skip",
		Benchmark: key.Prog,
		Level:     key.Level.String(),
		Category:  key.Category.String(),
		Kind:      SkipKindOf(err),
		Err:       err.Error(),
	})
}

// SkipKindOf classifies a soft-skip error for checkpoint and fleet
// completion records, so the same cell skipped by any execution path
// (local study, shard worker, fleet worker) carries the same kind.
func SkipKindOf(err error) string {
	switch {
	case errors.Is(err, ErrNoCandidates):
		return SkipNoCandidates
	case errors.Is(err, ErrNotActivated):
		return SkipNotActivated
	case errors.Is(err, ErrDeadline):
		return SkipDeadline
	default:
		return "error"
	}
}

// Close closes the underlying file.
func (w *CheckpointWriter) Close() error {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.f.Close()
}

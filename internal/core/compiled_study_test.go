package core_test

import (
	"testing"

	"hlfi/internal/bench"
	"hlfi/internal/core"
	"hlfi/internal/obs"
)

// TestCompiledStudyOracle is the full-workload counterpart of
// TestCompiledDifferentialOracle: the complete example study — every
// benchmark, both levels, all five categories — must produce identical
// per-cell outcome vectors, activation counts, and rendered report
// bytes whether the compiled engines are on or off, sequentially and
// under the parallel scheduler.
func TestCompiledStudyOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("compiled study oracle runs the full example study three times")
	}
	progs, err := bench.BuildAll()
	if err != nil {
		t.Fatal(err)
	}
	run := func(compiled *core.CompiledConfig, om *obs.Metrics, parallel int) *core.Study {
		st, err := core.RunStudy(core.StudyConfig{
			Programs: progs, N: 12, Seed: 3,
			Parallel: parallel, Compiled: compiled, Obs: om,
		})
		if err != nil {
			t.Fatal(err)
		}
		return st
	}

	baseline := run(nil, nil, 1)

	om := obs.New()
	sameStudy(t, "sequential", baseline, run(&core.CompiledConfig{}, om, 1))
	if om.CompiledAttempts.Value() == 0 {
		t.Error("sequential compiled run executed no attempts on the compiled engines")
	}
	if om.CompiledFallbacks.Value() != 0 {
		t.Errorf("sequential compiled run fell back %d times", om.CompiledFallbacks.Value())
	}

	pom := obs.New()
	sameStudy(t, "parallel", baseline, run(&core.CompiledConfig{}, pom, 4))
	if pom.CompiledAttempts.Value() == 0 {
		t.Error("parallel compiled run executed no attempts on the compiled engines")
	}
}

package core

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"hlfi/internal/adaptive"
	"hlfi/internal/fault"
	"hlfi/internal/llfi"
	"hlfi/internal/obs"
	"hlfi/internal/pinfi"
	"hlfi/internal/stats"
	"hlfi/internal/telemetry"
)

// ErrNoCandidates is returned when a (program, level, category) cell has
// no dynamic injection opportunities (e.g. an all-integer program has no
// convert instructions at the assembly level, matching the near-zero cast
// counts the paper reports for bzip2 and mcf).
var ErrNoCandidates = errors.New("no dynamic injection candidates")

// ErrNotActivated is returned when the attempt budget runs out before a
// single fault activates. Like ErrNoCandidates it is a soft condition —
// the scheduler and checkpoint layer treat it as a skipped cell, not a
// hard study failure.
var ErrNotActivated = errors.New("no activated faults")

// Campaign configures one (program, level, category) fault-injection cell
// of the study.
type Campaign struct {
	Prog     *Program
	Level    fault.Level
	Category fault.Category
	// N is the number of *activated* injections to collect (the paper
	// collects 1000 per cell).
	N int
	// Seed makes the campaign deterministic.
	Seed int64
	// MaxAttemptsFactor bounds re-draws of non-activated faults.
	MaxAttemptsFactor int
	// Calibration, when non-nil and Level is LevelIR, applies the paper's
	// §VII discrepancy-resolution heuristics to the candidate set.
	Calibration *llfi.Calibration
	// Replay, when non-nil, arms golden-run snapshot fast-forward replay
	// for every injection attempt. Shared across cells: the snapshot
	// cache behind it is keyed by (program, level). Results are
	// byte-identical with or without it.
	Replay *ReplayConfig
	// Compiled, when non-nil, runs untraced injection attempts on the
	// compiled execution engines instead of the interpreters. Shared
	// across cells like Replay: the compiled-program cache behind it is
	// keyed by (program, level). Results are byte-identical with or
	// without it; programs the compilers cannot lower silently stay on
	// the interpreter.
	Compiled *CompiledConfig
	// Metrics, when non-nil, is filled with per-cell timing telemetry by
	// Run and RunParallel. It is kept out of CellResult so results stay
	// comparable across runs (timing never is).
	Metrics *CellMetrics
	// SimFaultLimit is the panic-containment policy: a simulator panic
	// during an injection attempt is recovered into a SimFault record
	// instead of crashing the process. 0 (the default) is fail-fast —
	// the first contained panic fails the cell with a *SimFaultError;
	// K > 0 tolerates up to K sim faults per cell; a negative limit
	// tolerates any number.
	SimFaultLimit int
	// Deadline, when positive, is the per-cell wall-clock watchdog: a
	// campaign still running after this long fails with a
	// *DeadlineError. It complements the instruction-budget hang
	// detection inside the simulators, which bounds single attempts.
	Deadline time.Duration
	// Obs, when non-nil, receives live campaign metrics: attempt and
	// outcome counters, attempt-latency histograms, and (via the
	// injectors) replay accounting. Purely observational — attempts,
	// outcomes, and random streams are identical with or without it.
	Obs *obs.Metrics
	// Adaptive, when non-nil, arms the group-sequential early-stopping
	// rule: the cell ends as soon as every outcome-rate Wilson 95%
	// half-width is <= Eps (at the configured cadence and minimum-n
	// floor), even if fewer than N faults have activated. The decision
	// is a pure function of the attempt-record prefix, so adaptive cells
	// stay deterministic and relocatable across shards and fleet leases.
	Adaptive *adaptive.Config
	// AdaptiveBase, when positive and smaller than N, marks this run as
	// a round-2 extension: N is the reallocated target, AdaptiveBase the
	// study's round-1 budget. The run replays the identical attempt
	// prefix (seeded streams are position-pure) and snapshots the
	// round-1 counts when it crosses the boundary, so a resumed or
	// merged study can recompute the same reallocation plan from the
	// extended record alone.
	AdaptiveBase int
	// TraceAttempts, when positive, arms fault-propagation tracing for
	// the first TraceAttempts attempts of the cell. Traced attempts are
	// byte-identical to untraced ones (the tracer consumes no
	// randomness); their propagation skeletons land in
	// CellMetrics.Traces.
	TraceAttempts int
	// injectorOverride, when non-nil, replaces the level-derived
	// injector (test hook for fault-tolerance coverage).
	injectorOverride func() (func(*rand.Rand) fault.Outcome, uint64, error)
}

// attemptResult is one injection attempt's outcome plus the optional
// propagation trace.
type attemptResult struct {
	outcome fault.Outcome
	trigger uint64
	spans   []telemetry.TraceSpan
}

// AttemptTrace is the recorded fault-propagation skeleton of one traced
// attempt: the corrupted dynamic candidate index, the outcome, and the
// inject/load/store/branch/outcome spans.
type AttemptTrace struct {
	Attempt int
	Trigger uint64
	Outcome fault.Outcome
	Spans   []telemetry.TraceSpan
}

// CellMetrics is the per-cell timing record behind the campaign
// telemetry stream.
type CellMetrics struct {
	// ScanTime covers injector construction: the golden profiling run
	// plus the candidate scan.
	ScanTime time.Duration
	// RunTime covers the injection loop.
	RunTime time.Duration
	// Workers is the attempt-level worker count used (1 = the sequential
	// random stream).
	Workers int
	// SimFaults holds the contained-panic records of the cell, in
	// attempt order. Like timing it is kept out of CellResult (which
	// only counts them) so results stay comparable across runs.
	SimFaults []SimFault
	// Traces holds the propagation skeletons of traced attempts
	// (Campaign.TraceAttempts), in attempt order. Like SimFaults it is
	// kept out of CellResult so results stay comparable across runs.
	Traces []AttemptTrace
}

func (c *Campaign) noteMetrics(scan, run time.Duration, workers int, faults []SimFault, traces []AttemptTrace) {
	if c.Metrics != nil {
		*c.Metrics = CellMetrics{ScanTime: scan, RunTime: run, Workers: workers, SimFaults: faults, Traces: traces}
	}
}

// noteAttempt feeds one finished attempt into the live metrics.
func (c *Campaign) noteAttempt(start time.Time, o fault.Outcome, simFault bool) {
	m := c.Obs
	if m == nil {
		return
	}
	m.Attempts.Inc()
	m.AttemptSeconds.Observe(time.Since(start).Seconds())
	if simFault {
		m.SimFaults.Inc()
		return
	}
	m.Outcome(o.String()).Inc()
	if o != fault.OutcomeNotActivated {
		m.Activated.Inc()
	}
}

// CellResult aggregates one campaign cell.
type CellResult struct {
	Prog     string
	Level    fault.Level
	Category fault.Category

	Benign       int
	SDC          int
	Crash        int
	Hang         int
	NotActivated int
	Attempts     int
	// SimFaults counts attempts whose simulator panicked and was
	// contained. They consume attempt budget but are excluded from the
	// paper's outcome taxonomy (and so from Activated).
	SimFaults int

	// DynCandidates is the dynamic injection-opportunity count for the
	// cell (the rows of Table IV).
	DynCandidates uint64

	// Adaptive records how the early-stopping engine treated the cell
	// (zero value for fixed-n runs). Value types only: CellResult must
	// stay ==-comparable for the differential oracles.
	Adaptive AdaptiveCell
}

// Activated is the number of runs counted in the outcome percentages.
func (c *CellResult) Activated() int { return c.Benign + c.SDC + c.Crash + c.Hang }

// SDCRate returns the SDC proportion among activated faults.
func (c *CellResult) SDCRate() stats.Proportion {
	return stats.Proportion{Successes: c.SDC, Trials: c.Activated()}
}

// CrashRate returns the crash proportion among activated faults.
func (c *CellResult) CrashRate() stats.Proportion {
	return stats.Proportion{Successes: c.Crash, Trials: c.Activated()}
}

// BenignRate returns the benign proportion among activated faults.
func (c *CellResult) BenignRate() stats.Proportion {
	return stats.Proportion{Successes: c.Benign, Trials: c.Activated()}
}

// HangRate returns the hang proportion among activated faults.
func (c *CellResult) HangRate() stats.Proportion {
	return stats.Proportion{Successes: c.Hang, Trials: c.Activated()}
}

func (c *CellResult) add(o fault.Outcome) {
	switch o {
	case fault.OutcomeBenign:
		c.Benign++
	case fault.OutcomeSDC:
		c.SDC++
	case fault.OutcomeCrash:
		c.Crash++
	case fault.OutcomeHang:
		c.Hang++
	case fault.OutcomeNotActivated:
		c.NotActivated++
	}
}

// injector builds the level-appropriate injector and returns a draw
// function (one injection using the supplied rng, optionally traced)
// plus the dynamic candidate count. The construction cost — the golden
// profiling run and the candidate scan — is what CellMetrics.ScanTime
// measures.
func (c *Campaign) injector() (func(*rand.Rand, bool) attemptResult, uint64, error) {
	if c.injectorOverride != nil {
		draw, dyn, err := c.injectorOverride()
		if err != nil {
			return nil, 0, err
		}
		return func(rng *rand.Rand, _ bool) attemptResult {
			return attemptResult{outcome: draw(rng)}
		}, dyn, nil
	}
	switch c.Level {
	case fault.LevelIR:
		var inj *llfi.Injector
		var err error
		if c.Calibration != nil {
			inj, err = llfi.NewCalibrated(c.Prog.Prep, c.Category, *c.Calibration)
		} else {
			inj, err = llfi.New(c.Prog.Prep, c.Category)
		}
		if err != nil {
			return nil, 0, err
		}
		if c.Replay != nil {
			if err := c.Replay.armIR(c.Prog, inj); err != nil {
				return nil, 0, err
			}
		}
		if c.Compiled != nil {
			c.Compiled.armIR(c.Prog, inj)
		}
		inj.Obs = c.Obs
		return func(rng *rand.Rand, traced bool) attemptResult {
			var r *llfi.Result
			if traced {
				r = inj.InjectOneTraced(rng)
			} else {
				r = inj.InjectOne(rng)
			}
			return attemptResult{outcome: r.Outcome, trigger: r.Trigger, spans: r.Spans}
		}, inj.DynTotal, nil
	case fault.LevelASM:
		inj, err := pinfi.New(c.Prog.Asm, c.Prog.Prep.Layout.Image, c.Prog.Prep.Layout.Base, c.Category)
		if err != nil {
			return nil, 0, err
		}
		if c.Replay != nil {
			if err := c.Replay.armASM(c.Prog, inj); err != nil {
				return nil, 0, err
			}
		}
		if c.Compiled != nil {
			c.Compiled.armASM(c.Prog, inj)
		}
		inj.Obs = c.Obs
		return func(rng *rand.Rand, traced bool) attemptResult {
			var r *pinfi.Result
			if traced {
				r = inj.InjectOneTraced(rng)
			} else {
				r = inj.InjectOne(rng)
			}
			return attemptResult{outcome: r.Outcome, trigger: r.Trigger, spans: r.Spans}
		}, inj.DynTotal, nil
	default:
		return nil, 0, fmt.Errorf("campaign: unknown level %v", c.Level)
	}
}

// wrapNoCandidates maps the injector-level sentinel errors onto the
// campaign-level one.
func wrapNoCandidates(err error) error {
	if errors.Is(err, llfi.ErrNoCandidates) || errors.Is(err, pinfi.ErrNoCandidates) {
		return fmt.Errorf("%w: %v", ErrNoCandidates, err)
	}
	return err
}

// Run executes the campaign: it keeps injecting until N activated faults
// have been observed (non-activated draws are excluded and redrawn, per
// the paper's activated-fault accounting) or the attempt budget runs out.
// A panicking attempt is contained per SimFaultLimit; a cell running
// past Deadline fails with a *DeadlineError.
func (c *Campaign) Run() (*CellResult, error) {
	if c.N <= 0 {
		return nil, fmt.Errorf("campaign: N must be positive")
	}
	maxFactor := c.MaxAttemptsFactor
	if maxFactor <= 0 {
		maxFactor = 10
	}
	maxAttempts := c.N * maxFactor
	streams := sequentialStreams(c.Seed)
	res := &CellResult{Prog: c.Prog.Name, Level: c.Level, Category: c.Category}
	ad := c.adaptiveState(res, maxFactor)

	scanStart := time.Now()
	draw, dyn, err := c.injector()
	if err != nil {
		return nil, wrapNoCandidates(err)
	}
	scan := time.Since(scanStart)
	res.DynCandidates = dyn
	var faults []SimFault
	var traces []AttemptTrace
	loopStart := time.Now()
	for res.Activated() < c.N && res.Attempts < maxAttempts {
		if c.deadlineExceeded(loopStart) {
			c.noteMetrics(scan, time.Since(loopStart), 1, faults, traces)
			return nil, c.deadlineError(res, time.Since(loopStart))
		}
		attempt := res.Attempts
		res.Attempts++
		var start time.Time
		if c.Obs != nil {
			start = time.Now()
		}
		ar, sf := c.safeDraw(draw, streams, attempt, attempt < c.TraceAttempts)
		c.noteAttempt(start, ar.outcome, sf != nil)
		if sf != nil {
			res.SimFaults++
			faults = append(faults, *sf)
			if !tolerates(c.SimFaultLimit, res.SimFaults) {
				c.noteMetrics(scan, time.Since(loopStart), 1, faults, traces)
				return nil, &SimFaultError{Fault: *sf, Limit: c.SimFaultLimit}
			}
			if ad.note(res) {
				break
			}
			continue
		}
		if len(ar.spans) > 0 {
			traces = append(traces, AttemptTrace{
				Attempt: attempt, Trigger: ar.trigger, Outcome: ar.outcome, Spans: ar.spans,
			})
			if c.Obs != nil {
				c.Obs.TraceAttempts.Inc()
				c.Obs.TraceSpans.Add(uint64(len(ar.spans)))
			}
		}
		res.add(ar.outcome)
		if ad.note(res) {
			break
		}
	}
	c.noteMetrics(scan, time.Since(loopStart), 1, faults, traces)
	if res.Activated() == 0 {
		return nil, fmt.Errorf("campaign %s/%s/%s: %w in %d attempts",
			c.Prog.Name, c.Level, c.Category, ErrNotActivated, res.Attempts)
	}
	return res, nil
}

// safeDraw runs one injection attempt behind a recovery boundary: an
// unexpected simulator panic is converted into a SimFault record
// (carrying the stream discipline's reproducing seed) instead of
// taking down the process.
func (c *Campaign) safeDraw(draw func(*rand.Rand, bool) attemptResult, streams *attemptStreams, attempt int, traced bool) (ar attemptResult, sf *SimFault) {
	defer func() {
		if r := recover(); r != nil {
			f := c.simFault(attempt, streams.reproSeed(attempt), streams.sequential(), r)
			sf = &f
		}
	}()
	return draw(streams.stream(attempt), traced), nil
}

// DynCount reports a program's dynamic candidate count for a category at
// a level without running injections (profiling only) — the data of
// Table IV.
func DynCount(p *Program, level fault.Level, cat fault.Category) (uint64, error) {
	switch level {
	case fault.LevelIR:
		inj, err := llfi.New(p.Prep, cat)
		if err != nil {
			return 0, err
		}
		return inj.DynTotal, nil
	case fault.LevelASM:
		inj, err := pinfi.New(p.Asm, p.Prep.Layout.Image, p.Prep.Layout.Base, cat)
		if err != nil {
			return 0, err
		}
		return inj.DynTotal, nil
	default:
		return 0, fmt.Errorf("unknown level %v", level)
	}
}

package core

import (
	"strings"
	"testing"

	"hlfi/internal/codegen"
	"hlfi/internal/fault"
)

// calSrc is small but has every category the calibration touches: GEPs
// feeding loads (FoldGEP candidates), pointer-width casts used only as
// addresses, loads that survive to assembly, and plain arithmetic.
const calSrc = `
int table[16] = {3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3};
double scale = 1.5;

int main() {
    long sum = 0;
    double acc = 0.0;
    for (int i = 0; i < 16; i++) {
        int v = table[i];
        sum += v * (i + 1);
        acc = acc + (double)v * scale;
    }
    print_long(sum); print_str(" ");
    print_double(acc); print_str("\n");
    return (int)(sum % 31);
}`

func TestRunCalibrationStudy(t *testing.T) {
	p, err := BuildProgram("calprog", calSrc)
	if err != nil {
		t.Fatal(err)
	}
	var lines []string
	st, err := RunCalibrationStudy([]*Program{p}, 40, 7,
		func(s string) { lines = append(lines, s) })
	if err != nil {
		t.Fatal(err)
	}
	// Every category with candidates must have all three cells.
	for _, cat := range []fault.Category{fault.CatAll, fault.CatArith, fault.CatLoad} {
		key := CellKey{Prog: "calprog", Level: fault.LevelIR, Category: cat}
		if st.Plain[key] == nil || st.Calibrated[key] == nil || st.Pinfi[key] == nil {
			t.Errorf("missing cells for %v", cat)
			continue
		}
		if got := st.Plain[key].Activated(); got != 40 {
			t.Errorf("%v: plain total = %d, want 40", cat, got)
		}
	}
	if len(lines) == 0 {
		t.Error("progress callback never fired")
	}

	out := st.Render()
	for _, want := range []string{"Calibration experiment", "calprog", "mean |crash gap to PINFI|"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q:\n%s", want, out)
		}
	}

	plain, calibrated := st.MeanGaps()
	if plain < 0 || calibrated < 0 {
		t.Fatalf("gaps must be non-negative: %f %f", plain, calibrated)
	}
	// The render's aggregate line must agree with MeanGaps.
	if !strings.Contains(out, "plain") || !strings.Contains(out, "calibrated") {
		t.Errorf("render aggregate line malformed:\n%s", out)
	}
}

func TestDynCount(t *testing.T) {
	p, err := BuildProgram("dyncount", calSrc)
	if err != nil {
		t.Fatal(err)
	}
	for _, level := range []fault.Level{fault.LevelIR, fault.LevelASM} {
		all, err := DynCount(p, level, fault.CatAll)
		if err != nil {
			t.Fatalf("%v all: %v", level, err)
		}
		arith, err := DynCount(p, level, fault.CatArith)
		if err != nil {
			t.Fatalf("%v arith: %v", level, err)
		}
		if all == 0 || arith == 0 {
			t.Fatalf("%v: zero dynamic counts (all=%d arith=%d)", level, all, arith)
		}
		if arith >= all {
			t.Errorf("%v: arithmetic (%d) must be a strict subset of all (%d)", level, arith, all)
		}
	}
	// Casts exist at IR (the (double)v conversions) — Table IV's "cast
	// instructions vanish at assembly" claim is about CVT counts being
	// tiny, checked in the bench shape tests; here we only need IR > 0.
	irCast, err := DynCount(p, fault.LevelIR, fault.CatCast)
	if err != nil {
		t.Fatal(err)
	}
	if irCast == 0 {
		t.Error("IR cast count should be nonzero for this source")
	}
}

// TestBuildProgramWithOptions: the ablation entry point must produce a
// working program under every folding configuration, with golden-run
// equality still enforced.
func TestBuildProgramWithOptions(t *testing.T) {
	opts := codegen.Options{FoldGEP: false, FoldLoad: false, FuseCmpBranch: false}
	p, err := BuildProgramWithOptions("noopt", calSrc, opts)
	if err != nil {
		t.Fatal(err)
	}
	if p.AsmInstrs == 0 || p.IRInstrs == 0 {
		t.Fatal("golden instruction counts not recorded")
	}
	// Without folding, the assembly candidate pool for 'all' must be at
	// least as large as with full folding.
	folded, err := BuildProgram("opt", calSrc)
	if err != nil {
		t.Fatal(err)
	}
	nNo, err := DynCount(p, fault.LevelASM, fault.CatAll)
	if err != nil {
		t.Fatal(err)
	}
	nYes, err := DynCount(folded, fault.LevelASM, fault.CatAll)
	if err != nil {
		t.Fatal(err)
	}
	if nNo < nYes {
		t.Errorf("unfolded candidates (%d) < folded (%d)", nNo, nYes)
	}
}

package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"hlfi/internal/adaptive"
	"hlfi/internal/fault"
	"hlfi/internal/llfi"
	"hlfi/internal/obs"
	"hlfi/internal/obs/trace"
	"hlfi/internal/pinfi"
	"hlfi/internal/sched"
	"hlfi/internal/telemetry"
)

// CellKey identifies one campaign cell.
type CellKey struct {
	Prog     string
	Level    fault.Level
	Category fault.Category
}

// Study holds the full cross-product of campaign results — everything
// needed to regenerate the paper's Figure 3, Table IV, Figure 4, and
// Table V.
type Study struct {
	Programs []*Program
	N        int
	Seed     int64

	// Adaptive is the early-stopping config the study ran under (nil for
	// fixed-n studies); it gates the accuracy-vs-cost render sections.
	Adaptive *adaptive.Config

	Cells map[CellKey]*CellResult
	// Dyn holds dynamic candidate counts (Table IV), including cells
	// where no injections were run.
	Dyn map[CellKey]uint64
}

// StudyConfig configures RunStudy.
type StudyConfig struct {
	Programs []*Program
	// N activated injections per cell (paper: 1000).
	N int
	// Seed derives per-cell seeds deterministically.
	Seed int64
	// Categories defaults to all five.
	Categories []fault.Category
	// Progress, when non-nil, receives one line per completed cell, in
	// canonical cell order regardless of scheduling.
	Progress func(string)
	// Workers > 1 runs each cell's injections in parallel (per-attempt
	// seeding; deterministic for a fixed seed but a different sample than
	// the sequential stream).
	Workers int
	// Parallel > 1 runs whole campaign cells concurrently on a bounded
	// worker pool. Every cell keeps its own seeded random stream, so the
	// study result is identical to the serial path for any Parallel
	// value; with Workers <= 1 it is byte-identical to the committed
	// serial outputs. The (Parallel, Workers) pair is clamped so the
	// total goroutine count stays within sched.Budget().
	Parallel int
	// Events, when non-nil, receives the campaign telemetry stream.
	Events telemetry.Recorder
	// SimFaultLimit is the per-cell panic-containment policy (see
	// Campaign.SimFaultLimit): 0 fails a cell on its first contained
	// simulator panic, K > 0 tolerates up to K, negative tolerates all.
	SimFaultLimit int
	// CellDeadline, when positive, is the per-cell wall-clock watchdog:
	// a cell still running after this long is marked degraded-and-
	// skipped (with a cell_deadline event) instead of stalling the pool.
	CellDeadline time.Duration
	// Checkpoint, when non-nil, receives every completed or soft-skipped
	// cell as it finishes (durability path; append order is completion
	// order). A failed append is a hard study error (typed
	// *CheckpointWriteError): once durability is armed, silently losing
	// it would poison the next -resume.
	Checkpoint *CheckpointWriter
	// Resume, when non-nil, restores previously completed cells from a
	// loaded checkpoint: recorded cells are not re-run, and because every
	// cell derives its seed via cellSeed, the resumed study's output is
	// byte-identical to an uninterrupted run.
	Resume *CheckpointState
	// Replay, when non-nil, arms golden-run snapshot fast-forward replay
	// for every cell. The study's results, progress lines, and rendered
	// reports are byte-identical with or without it; only timing and the
	// replay telemetry differ.
	Replay *ReplayConfig
	// Compiled, when non-nil, runs untraced injection attempts on the
	// compiled execution engines instead of the interpreters, sharing one
	// compiled-program cache across every cell. The study's results,
	// progress lines, checkpoints, and rendered reports are byte-identical
	// with or without it; only timing and the compiled-engine telemetry
	// differ.
	Compiled *CompiledConfig
	// Obs, when non-nil, receives live study metrics (attempt counters,
	// outcome counters, cell progress gauges, latency histograms).
	// Purely observational: results, progress lines, telemetry events,
	// and checkpoints are byte-identical with or without it.
	Obs *obs.Metrics
	// Trace, when non-nil, records the study timeline: a campaign root
	// span, one cell span per executed cell with reconstructed scan/run
	// child spans, and extension spans for the adaptive round 2. Spans
	// consume no randomness and the attempt hot path is untouched, so
	// results, checkpoints, and reports are byte-identical with tracing
	// on or off; nil is the zero-cost disabled path.
	Trace *trace.Recorder
	// TraceAttempts, when positive, arms fault-propagation tracing for
	// the first TraceAttempts attempts of every cell; each traced
	// attempt is released as an attempt_trace telemetry event. Tracing
	// never changes outcomes or random streams.
	TraceAttempts int
	// Adaptive, when non-nil, arms the early-stopping engine: round 1
	// runs every cell under the group-sequential stopping rule, then the
	// activation budget saved by early-stopped cells is reallocated to
	// the widest unconverged cells and those are extended in a round 2.
	// Both rounds are pure functions of (seed, programs, N, adaptive
	// config): resumed, sharded, merged, and fleet-run adaptive studies
	// are byte-identical to the single-process run. Shard workers run
	// round 1 only (a shard cannot see the full round-1 state); the
	// -merge render computes the plan and runs the extensions.
	Adaptive *adaptive.Config
	// Shard, when non-nil, restricts the study to the canonical cells
	// this shard owns (index%Count == Index), preserving canonical order
	// within the subset. Because every cell derives its seed via
	// cellSeed, a shard worker is fully self-contained: merging the
	// shard checkpoints of a complete shard set reproduces the unsharded
	// study byte for byte. Profiling (Table IV's Dyn counts) still
	// covers every program — it is one golden run per (program, level),
	// cheap next to any shard's campaigns.
	Shard *ShardSpec
	// Warehouse, when non-nil, is the content-addressed result cache:
	// every cell is looked up before execution (a hit resolves the cell
	// without running a single injection, byte-identical to a cold run
	// by the warehouse differential oracle) and stored after. Unlike
	// Checkpoint, the warehouse is an accelerator, not the durability
	// path: its failures degrade to misses or dropped stores and never
	// abort the study. Warehouse-resolved cells are still appended to
	// the checkpoint, so -resume and the fleet render see them.
	Warehouse CellStore
}

// CellStore is the content-addressed result warehouse seen from the
// study scheduler (implemented by warehouse.StudyCache; an interface
// here so core does not depend on the storage layer). target and base
// are the cell record's (activated-target, adaptive-base) identity:
// (N, N) for fixed-n and adaptive round-1 records, (BaseN+grant, BaseN)
// for round-2 extensions. Implementations must be safe for concurrent
// use and fail-stop: a storage problem surfaces as a miss or a dropped
// store, never as a wrong or stale result.
type CellStore interface {
	// Lookup resolves one cell: a cached result, a cached deterministic
	// skip, or ok=false (miss).
	Lookup(key CellKey, target, base int) (res *CellResult, skip *CheckpointSkip, ok bool)
	// StoreCell persists one completed cell.
	StoreCell(key CellKey, target, base int, res *CellResult)
	// StoreSkip persists one soft-skipped cell; implementations only
	// persist kinds that are pure functions of the cell's inputs.
	StoreSkip(key CellKey, target, base int, skip CheckpointSkip)
}

// ErrAborted is returned (wrapping the context error) by RunStudyContext
// when the study is cancelled. The partial *Study holding every
// completed cell is still returned alongside it.
var ErrAborted = errors.New("study aborted")

// testCampaignHook, when non-nil, is applied to every campaign before it
// runs (test hook for fault-tolerance coverage).
var testCampaignHook func(*Campaign)

// CellSeed derives the deterministic seed of one campaign cell from the
// study seed. It is a pure function of the cell identity — never of the
// cell's position in any schedule — which is what makes every cell
// relocatable: a shard worker, a fleet worker, or a retry of either
// reproduces the exact record the single-process study would have.
func CellSeed(base int64, key CellKey) int64 {
	return cellSeed(base, key.Prog, key.Level, key.Category)
}

// cellSeed derives a stable per-cell seed.
func cellSeed(base int64, prog string, level fault.Level, cat fault.Category) int64 {
	h := uint64(base)
	for _, ch := range prog {
		h = h*131 + uint64(ch)
	}
	h = h*131 + uint64(level)
	h = h*131 + uint64(cat)
	return int64(h & 0x7fffffffffffffff)
}

// cellSpec is one scheduled unit of study work, in canonical order.
type cellSpec struct {
	prog  *Program
	level fault.Level
	cat   fault.Category
}

func (s cellSpec) key() CellKey {
	return CellKey{Prog: s.prog.Name, Level: s.level, Category: s.cat}
}

// lane is the cell's span (timeline lane) name.
func (s cellSpec) lane() string {
	return s.prog.Name + "/" + s.level.String() + "/" + s.cat.String()
}

// studySpecs builds the canonical cell list: programs in the given
// order x levels (IR, ASM) x categories. Shard ownership and the
// reorder buffer both index into this list, so its order is part of the
// determinism contract.
func studySpecs(programs []*Program, cats []fault.Category) []cellSpec {
	if len(cats) == 0 {
		cats = fault.Categories
	}
	var specs []cellSpec
	for _, p := range programs {
		for _, level := range []fault.Level{fault.LevelIR, fault.LevelASM} {
			for _, cat := range cats {
				specs = append(specs, cellSpec{prog: p, level: level, cat: cat})
			}
		}
	}
	return specs
}

// RunStudy runs every campaign cell of the study with a background
// context; see RunStudyContext.
func RunStudy(cfg StudyConfig) (*Study, error) {
	return RunStudyContext(context.Background(), cfg)
}

// RunStudyContext runs every campaign cell of the study. Cells are
// scheduled on a bounded worker pool when cfg.Parallel > 1 and merged
// back in canonical order, so scheduling never changes results, progress
// order, or telemetry order; the first hard error cancels outstanding
// cells. Soft conditions — no candidates, no activated faults, a cell
// over its wall-clock deadline — skip the cell and keep the study alive.
//
// Cancelling ctx stops the study cooperatively: cells already running
// finish (and are checkpointed), queued cells are skipped, a study_abort
// event is emitted, and the partial study is returned together with an
// error wrapping ErrAborted so callers can still render what completed.
func RunStudyContext(ctx context.Context, cfg StudyConfig) (*Study, error) {
	cats := cfg.Categories
	if len(cats) == 0 {
		cats = fault.Categories
	}
	st := &Study{
		Programs: cfg.Programs,
		N:        cfg.N,
		Seed:     cfg.Seed,
		Adaptive: cfg.Adaptive,
		Cells:    make(map[CellKey]*CellResult),
		Dyn:      make(map[CellKey]uint64),
	}
	// Profiling is one golden run per (program, level): cheap next to the
	// campaigns, so it stays serial and the scheduler sees only cells.
	for _, p := range cfg.Programs {
		if err := st.profileProgram(p); err != nil {
			return nil, err
		}
	}

	specs := studySpecs(cfg.Programs, cats)
	shard := ""
	if cfg.Shard != nil {
		if err := cfg.Shard.Validate(); err != nil {
			return nil, err
		}
		shard = cfg.Shard.String()
		owned := specs[:0]
		for i, s := range specs {
			if cfg.Shard.Owns(i) {
				owned = append(owned, s)
			}
		}
		specs = owned
	}

	parallel, perCell := sched.Split(cfg.Parallel, cfg.Workers, sched.Budget())
	emit(cfg.Events, telemetry.Event{
		Type: telemetry.EventStudyStart,
		N:    cfg.N, Seed: cfg.Seed, Cells: len(specs),
		Parallel: parallel, Workers: perCell, Shard: shard,
	})
	if cfg.Obs != nil {
		cfg.Obs.CellsPlanned.Set(int64(len(specs)))
		if shard != "" {
			cfg.Obs.SetShard(shard)
		}
		if cfg.Replay != nil {
			cfg.Replay.Obs = cfg.Obs
		}
		if cfg.Compiled != nil {
			cfg.Compiled.Obs = cfg.Obs
		}
	}
	start := time.Now()
	root := cfg.Trace.Start(trace.KindCampaign, "study")
	finishRoot := func(outcome string) {
		root.Outcome = outcome
		root.Finish()
	}

	results := make([]*CellResult, len(specs))
	metrics := make([]CellMetrics, len(specs))
	cellErrs := make([]error, len(specs))
	resumed := make([]bool, len(specs))
	resumedSkips := make([]*CheckpointSkip, len(specs))
	warehoused := make([]bool, len(specs))

	// Reorder buffer: progress lines and telemetry events are released
	// only for the completed prefix, so their order matches the serial
	// path no matter how cells are scheduled. Checkpoint writes happen
	// at completion instead (outside this buffer): durability must not
	// wait for a slow earlier cell, and the checkpoint loader is
	// order-independent.
	var (
		mu      sync.Mutex
		done    = make([]bool, len(specs))
		emitted int
	)
	finish := func(i int) {
		mu.Lock()
		defer mu.Unlock()
		done[i] = true
		for emitted < len(specs) && done[emitted] {
			noteCell(cfg, specs[emitted], results[emitted], metrics[emitted],
				cellErrs[emitted], resumed[emitted], resumedSkips[emitted], warehoused[emitted])
			emitted++
		}
	}

	tasks := make([]sched.Task, len(specs))
	for i := range specs {
		i := i
		s := specs[i]
		key := s.key()
		if cfg.Resume != nil {
			if res, ok := cfg.Resume.Cells[key]; ok {
				results[i], resumed[i] = res, true
				tasks[i] = func(context.Context) error {
					if cfg.Obs != nil {
						cfg.Obs.CellsResumed.Inc()
					}
					finish(i)
					return nil
				}
				continue
			}
			if skip, ok := cfg.Resume.Skips[key]; ok {
				skip := skip
				resumedSkips[i], resumed[i] = &skip, true
				tasks[i] = func(context.Context) error {
					if cfg.Obs != nil {
						cfg.Obs.CellsResumed.Inc()
					}
					finish(i)
					return nil
				}
				continue
			}
		}
		// Warehouse resolution: a content-addressed hit replaces the
		// cell's execution entirely. Unlike resume, the hit is appended
		// to this study's checkpoint — the warehouse record belongs to a
		// different file, and -resume (and the fleet render) must find
		// the cell in this one.
		if cfg.Warehouse != nil {
			if res, skip, ok := cfg.Warehouse.Lookup(key, cfg.N, cfg.N); ok {
				warehoused[i] = true
				if res != nil {
					results[i] = res
					tasks[i] = func(context.Context) error {
						defer finish(i)
						if cfg.Obs != nil {
							cfg.Obs.CellsDone.Inc()
						}
						if cerr := cfg.Checkpoint.Cell(key, res); cerr != nil {
							cellErrs[i] = cerr
							return cerr
						}
						return nil
					}
				} else {
					resumedSkips[i] = skip
					skipErr := skip.skipError()
					tasks[i] = func(context.Context) error {
						defer finish(i)
						if cfg.Obs != nil {
							cfg.Obs.CellsSkipped.Inc()
						}
						if cerr := cfg.Checkpoint.Skip(key, skipErr); cerr != nil {
							cellErrs[i] = cerr
							return cerr
						}
						return nil
					}
				}
				continue
			}
		}
		tasks[i] = func(context.Context) error {
			defer finish(i)
			var cspan trace.Span
			if cfg.Trace != nil {
				cspan = cfg.Trace.StartChild(trace.KindCell, s.lane(), root)
			}
			c := &Campaign{
				Prog:          s.prog,
				Level:         s.level,
				Category:      s.cat,
				N:             cfg.N,
				Seed:          cellSeed(cfg.Seed, s.prog.Name, s.level, s.cat),
				Metrics:       &metrics[i],
				SimFaultLimit: cfg.SimFaultLimit,
				Deadline:      cfg.CellDeadline,
				Replay:        cfg.Replay,
				Compiled:      cfg.Compiled,
				Obs:           cfg.Obs,
				TraceAttempts: cfg.TraceAttempts,
				Adaptive:      cfg.Adaptive,
				AdaptiveBase:  cfg.N,
			}
			if testCampaignHook != nil {
				testCampaignHook(c)
			}
			var res *CellResult
			var err error
			if perCell > 1 {
				res, err = c.RunParallel(perCell)
			} else {
				res, err = c.Run()
			}
			if cfg.Obs != nil {
				cfg.Obs.CellSeconds.Observe((metrics[i].ScanTime + metrics[i].RunTime).Seconds())
			}
			if cfg.Trace != nil {
				emitPhaseSpans(cfg.Trace, cspan, s.lane(), metrics[i])
				switch {
				case err == nil:
					cspan.Outcome = "done"
				case isSoftSkip(err):
					cspan.Outcome, cspan.Err = "skipped", err.Error()
				default:
					cspan.Outcome, cspan.Err = "failure", err.Error()
				}
				cspan.Finish()
			}
			if err != nil {
				cellErrs[i] = err
				if isSoftSkip(err) {
					if cfg.Obs != nil {
						cfg.Obs.CellsSkipped.Inc()
					}
					// A failed skip-record write is the same durability
					// break as a failed cell write: abort the study.
					if cerr := cfg.Checkpoint.Skip(key, err); cerr != nil {
						cellErrs[i] = cerr
						return cerr
					}
					if cfg.Warehouse != nil {
						cfg.Warehouse.StoreSkip(key, cfg.N, cfg.N,
							CheckpointSkip{Kind: SkipKindOf(err), Err: err.Error()})
					}
					return nil // soft skip: the study keeps going
				}
				return err // hard error: cancels the pool
			}
			results[i] = res
			if cfg.Obs != nil {
				cfg.Obs.CellsDone.Inc()
			}
			// Checkpoint durability is part of the contract once armed: a
			// failed append aborts the cell cleanly (typed
			// *CheckpointWriteError, sticky in the writer) rather than
			// letting the study finish while the file silently stops
			// accumulating the records a later -resume will trust.
			if cerr := cfg.Checkpoint.Cell(key, res); cerr != nil {
				cellErrs[i] = cerr
				return cerr
			}
			if cfg.Warehouse != nil {
				cfg.Warehouse.StoreCell(key, cfg.N, cfg.N, res)
			}
			return nil
		}
	}
	var observer sched.Observer
	if cfg.Obs != nil {
		observer = gaugeObserver{g: cfg.Obs.CellsInFlight}
	}
	if err := sched.RunObserved(ctx, parallel, tasks, observer); err != nil {
		// Report the first hard error in canonical cell order.
		for i, cerr := range cellErrs {
			if cerr != nil && !isSoftSkip(cerr) {
				finishRoot("failure")
				return nil, fmt.Errorf("cell %v: %w", specs[i].key(), cerr)
			}
		}
		// No task failed: the caller's context was cancelled. Harvest
		// everything that completed (the checkpoint already holds it),
		// announce the abort, and hand back the partial study. The event
		// stream is flushed before and after the abort event: an aborting
		// process is the one most likely to exit without closing its
		// sinks, so both the buffered tail and the abort marker itself
		// must reach stable storage here.
		attempts, activated := harvest(st, specs, results)
		_ = telemetry.Flush(cfg.Events)
		ev := telemetry.Event{
			Type:       telemetry.EventStudyAbort,
			Cells:      len(st.Cells),
			Attempts:   attempts,
			Activated:  activated,
			DurationMS: telemetry.Ms(time.Since(start)),
			Err:        err.Error(),
		}
		if cfg.Replay != nil {
			ev.ReplayFields(cfg.Replay.Stats)
		}
		emit(cfg.Events, ev)
		_ = telemetry.Flush(cfg.Events)
		finishRoot("aborted")
		return st, fmt.Errorf("%w: %v", ErrAborted, err)
	}

	// Round 2: stratified reallocation of the activation budget saved by
	// early-stopped cells. Only a process that can see the complete
	// round-1 state computes the plan — never a shard worker; the -merge
	// render (or the fleet coordinator) does it over the full cell set.
	if cfg.Adaptive != nil && cfg.Shard == nil {
		if hard, aerr := runAdaptiveRound2(ctx, cfg, specs, results, parallel, perCell, root); hard != nil {
			finishRoot("failure")
			return nil, hard
		} else if aerr != nil {
			// Cancelled mid-extension: same flush-and-announce path as a
			// round-1 abort; the partial study keeps every round-1 record
			// plus any extensions that finished.
			attempts, activated := harvest(st, specs, results)
			_ = telemetry.Flush(cfg.Events)
			ev := telemetry.Event{
				Type:       telemetry.EventStudyAbort,
				Cells:      len(st.Cells),
				Attempts:   attempts,
				Activated:  activated,
				DurationMS: telemetry.Ms(time.Since(start)),
				Err:        aerr.Error(),
			}
			if cfg.Replay != nil {
				ev.ReplayFields(cfg.Replay.Stats)
			}
			emit(cfg.Events, ev)
			_ = telemetry.Flush(cfg.Events)
			finishRoot("aborted")
			return st, fmt.Errorf("%w: %v", ErrAborted, aerr)
		}
	}

	attempts, activated := harvest(st, specs, results)
	ev := telemetry.Event{
		Type:       telemetry.EventStudyDone,
		Cells:      len(st.Cells),
		Attempts:   attempts,
		Activated:  activated,
		DurationMS: telemetry.Ms(time.Since(start)),
	}
	if cfg.Replay != nil {
		ev.ReplayFields(cfg.Replay.Stats)
	}
	emit(cfg.Events, ev)
	finishRoot("done")
	return st, nil
}

// emitPhaseSpans reconstructs one cell's scan and run child spans from
// its timing metrics, so the timeline separates injector construction
// from the injection loop without instrumenting the attempt hot path.
func emitPhaseSpans(r *trace.Recorder, parent trace.Span, lane string, m CellMetrics) {
	end := time.Now().UnixNano()
	runStart := end - int64(m.RunTime)
	scanStart := runStart - int64(m.ScanTime)
	r.Emit(trace.Record{Trace: parent.TraceID(), Parent: parent.ID(),
		Kind: trace.KindScan, Name: lane, Start: scanStart, End: runStart})
	r.Emit(trace.Record{Trace: parent.TraceID(), Parent: parent.ID(),
		Kind: trace.KindRun, Name: lane, Start: runStart, End: end})
}

// harvest moves completed cell results into the study and totals them.
func harvest(st *Study, specs []cellSpec, results []*CellResult) (attempts, activated int) {
	for i, s := range specs {
		if results[i] == nil {
			continue
		}
		st.Cells[s.key()] = results[i]
		attempts += results[i].Attempts
		activated += results[i].Activated()
	}
	return attempts, activated
}

// IsSoftSkip reports whether a campaign error skips the cell rather
// than failing the study: no candidates (the paper's own near-zero cast
// cells), an exhausted activation budget, or the wall-clock watchdog.
// Fleet workers use the same classification so a soft-skipped cell is
// reported as a skip record instead of failing its lease.
func IsSoftSkip(err error) bool {
	return errors.Is(err, ErrNoCandidates) ||
		errors.Is(err, ErrNotActivated) ||
		errors.Is(err, ErrDeadline)
}

// isSoftSkip is the internal alias of IsSoftSkip.
func isSoftSkip(err error) bool { return IsSoftSkip(err) }

// noteCell releases one cell's progress line and telemetry events.
func noteCell(cfg StudyConfig, s cellSpec, res *CellResult, m CellMetrics, err error, resumed bool, rskip *CheckpointSkip, warehoused bool) {
	switch {
	case res != nil && warehoused:
		if cfg.Progress != nil {
			cfg.Progress(fmt.Sprintf("%-10s %-5s %-10s activated=%d crash=%.1f%% sdc=%.1f%% (warehouse)%s",
				s.prog.Name, s.level, s.cat, res.Activated(),
				100*res.CrashRate().Rate(), 100*res.SDCRate().Rate(), adaptiveSuffix(res)))
		}
		emit(cfg.Events, telemetry.Event{
			Type:      telemetry.EventWarehouseHit,
			Benchmark: s.prog.Name, Level: s.level.String(), Category: s.cat.String(),
			Attempts: res.Attempts, Activated: res.Activated(),
			Benign: res.Benign, SDC: res.SDC, Crash: res.Crash, Hang: res.Hang,
			NotActivated: res.NotActivated, SimFaults: res.SimFaults,
			AdaptiveTarget:    res.Adaptive.Target,
			AdaptiveConverged: res.Adaptive.Converged,
		})
	case rskip != nil && warehoused:
		if cfg.Progress != nil {
			cfg.Progress(fmt.Sprintf("%-10s %-5s %-10s skipped (%s, warehouse)",
				s.prog.Name, s.level, s.cat, rskip.Kind))
		}
		emit(cfg.Events, telemetry.Event{
			Type:      telemetry.EventCellSkip,
			Benchmark: s.prog.Name, Level: s.level.String(), Category: s.cat.String(),
			Err: rskip.Err,
		})
	case res != nil && resumed:
		if cfg.Progress != nil {
			cfg.Progress(fmt.Sprintf("%-10s %-5s %-10s activated=%d crash=%.1f%% sdc=%.1f%% (resumed from checkpoint)%s",
				s.prog.Name, s.level, s.cat, res.Activated(),
				100*res.CrashRate().Rate(), 100*res.SDCRate().Rate(), adaptiveSuffix(res)))
		}
		emit(cfg.Events, telemetry.Event{
			Type:      telemetry.EventCellResume,
			Benchmark: s.prog.Name, Level: s.level.String(), Category: s.cat.String(),
			Attempts: res.Attempts, Activated: res.Activated(),
			Benign: res.Benign, SDC: res.SDC, Crash: res.Crash, Hang: res.Hang,
			NotActivated: res.NotActivated, SimFaults: res.SimFaults,
		})
	case res != nil:
		if cfg.Progress != nil {
			cfg.Progress(fmt.Sprintf("%-10s %-5s %-10s activated=%d crash=%.1f%% sdc=%.1f%%%s",
				s.prog.Name, s.level, s.cat, res.Activated(),
				100*res.CrashRate().Rate(), 100*res.SDCRate().Rate(), adaptiveSuffix(res)))
		}
		rate := 0.0
		if res.Attempts > 0 {
			rate = float64(res.Activated()) / float64(res.Attempts)
		}
		for _, sf := range m.SimFaults {
			emit(cfg.Events, telemetry.Event{
				Type:      telemetry.EventSimFault,
				Benchmark: sf.Prog, Level: sf.Level.String(), Category: sf.Category.String(),
				Attempt: sf.Attempt, AttemptSeed: sf.Seed, Sequential: sf.Sequential,
				Panic: sf.Panic,
			})
		}
		// Traced attempts are released here, through the same reorder
		// buffer as every other event, so attempt_trace order is
		// deterministic under any scheduling.
		for _, tr := range m.Traces {
			emit(cfg.Events, telemetry.Event{
				Type:      telemetry.EventAttemptTrace,
				Benchmark: s.prog.Name, Level: s.level.String(), Category: s.cat.String(),
				Attempt: tr.Attempt, Trigger: tr.Trigger,
				Outcome: tr.Outcome.String(), Spans: tr.Spans,
			})
		}
		emit(cfg.Events, telemetry.Event{
			Type:      telemetry.EventCellDone,
			Benchmark: s.prog.Name, Level: s.level.String(), Category: s.cat.String(),
			DurationMS: telemetry.Ms(m.ScanTime + m.RunTime),
			ScanMS:     telemetry.Ms(m.ScanTime),
			Workers:    m.Workers,
			Attempts:   res.Attempts, Activated: res.Activated(), ActivationRate: rate,
			Benign: res.Benign, SDC: res.SDC, Crash: res.Crash, Hang: res.Hang,
			NotActivated: res.NotActivated, SimFaults: res.SimFaults,
			AdaptiveTarget:    res.Adaptive.Target,
			AdaptiveConverged: res.Adaptive.Converged,
		})
	case rskip != nil:
		kind := rskip.Kind
		if cfg.Progress != nil {
			cfg.Progress(fmt.Sprintf("%-10s %-5s %-10s skipped (%s, resumed from checkpoint)",
				s.prog.Name, s.level, s.cat, kind))
		}
		evType := telemetry.EventCellSkip
		if kind == SkipDeadline {
			evType = telemetry.EventCellDeadline
		}
		emit(cfg.Events, telemetry.Event{
			Type:      evType,
			Benchmark: s.prog.Name, Level: s.level.String(), Category: s.cat.String(),
			Err: rskip.Err,
		})
	case err != nil && errors.Is(err, ErrDeadline):
		if cfg.Progress != nil {
			cfg.Progress(fmt.Sprintf("%-10s %-5s %-10s degraded (deadline exceeded, cell skipped)",
				s.prog.Name, s.level, s.cat))
		}
		emit(cfg.Events, telemetry.Event{
			Type:      telemetry.EventCellDeadline,
			Benchmark: s.prog.Name, Level: s.level.String(), Category: s.cat.String(),
			DurationMS: telemetry.Ms(m.ScanTime + m.RunTime),
			ScanMS:     telemetry.Ms(m.ScanTime),
			Workers:    m.Workers,
			Err:        err.Error(),
		})
	case err != nil && errors.Is(err, ErrNotActivated):
		if cfg.Progress != nil {
			cfg.Progress(fmt.Sprintf("%-10s %-5s %-10s skipped (no activated faults)",
				s.prog.Name, s.level, s.cat))
		}
		emit(cfg.Events, telemetry.Event{
			Type:      telemetry.EventCellSkip,
			Benchmark: s.prog.Name, Level: s.level.String(), Category: s.cat.String(),
			Err: err.Error(),
		})
	case err != nil && errors.Is(err, ErrNoCandidates):
		if cfg.Progress != nil {
			cfg.Progress(fmt.Sprintf("%-10s %-5s %-10s skipped (no candidates)",
				s.prog.Name, s.level, s.cat))
		}
		emit(cfg.Events, telemetry.Event{
			Type:      telemetry.EventCellSkip,
			Benchmark: s.prog.Name, Level: s.level.String(), Category: s.cat.String(),
			Err: err.Error(),
		})
	}
	// Hard errors and cancelled cells release nothing: the study is about
	// to fail with the canonical first error (or the abort path).
}

func emit(r telemetry.Recorder, e telemetry.Event) {
	if r != nil {
		r.Record(e)
	}
}

// gaugeObserver mirrors the scheduler's task lifecycle into the
// cells-in-flight gauge.
type gaugeObserver struct{ g *obs.Gauge }

func (o gaugeObserver) TaskStarted(int)  { o.g.Inc() }
func (o gaugeObserver) TaskFinished(int) { o.g.Dec() }

// profileProgram fills Dyn for every (level, category) of one program
// using a single profiling run per level.
func (st *Study) profileProgram(p *Program) error {
	irInj, err := llfi.New(p.Prep, fault.CatAll)
	if err != nil {
		return err
	}
	for _, cat := range fault.Categories {
		cand := llfi.Candidates(p.Prep, cat)
		st.Dyn[CellKey{Prog: p.Name, Level: fault.LevelIR, Category: cat}] =
			llfi.CountDynamic(irInj.Profile, cand)
	}
	asmInj, err := pinfi.New(p.Asm, p.Prep.Layout.Image, p.Prep.Layout.Base, fault.CatAll)
	if err != nil {
		return err
	}
	for _, cat := range fault.Categories {
		cand := pinfi.Candidates(p.Asm, cat)
		st.Dyn[CellKey{Prog: p.Name, Level: fault.LevelASM, Category: cat}] =
			pinfi.CountDynamic(asmInj.Profile, cand)
	}
	return nil
}

// Cell returns one campaign cell (nil if absent).
func (st *Study) Cell(prog string, level fault.Level, cat fault.Category) *CellResult {
	return st.Cells[CellKey{Prog: prog, Level: level, Category: cat}]
}

// DynCandidates returns a Table IV entry.
func (st *Study) DynCandidates(prog string, level fault.Level, cat fault.Category) uint64 {
	return st.Dyn[CellKey{Prog: prog, Level: level, Category: cat}]
}

package core

import (
	"errors"
	"fmt"

	"hlfi/internal/fault"
	"hlfi/internal/llfi"
	"hlfi/internal/pinfi"
)

// CellKey identifies one campaign cell.
type CellKey struct {
	Prog     string
	Level    fault.Level
	Category fault.Category
}

// Study holds the full cross-product of campaign results — everything
// needed to regenerate the paper's Figure 3, Table IV, Figure 4, and
// Table V.
type Study struct {
	Programs []*Program
	N        int
	Seed     int64

	Cells map[CellKey]*CellResult
	// Dyn holds dynamic candidate counts (Table IV), including cells
	// where no injections were run.
	Dyn map[CellKey]uint64
}

// StudyConfig configures RunStudy.
type StudyConfig struct {
	Programs []*Program
	// N activated injections per cell (paper: 1000).
	N int
	// Seed derives per-cell seeds deterministically.
	Seed int64
	// Categories defaults to all five.
	Categories []fault.Category
	// Progress, when non-nil, receives one line per completed cell.
	Progress func(string)
	// Workers > 1 runs each cell's injections in parallel (per-attempt
	// seeding; deterministic for a fixed seed but a different sample than
	// the sequential stream).
	Workers int
}

// cellSeed derives a stable per-cell seed.
func cellSeed(base int64, prog string, level fault.Level, cat fault.Category) int64 {
	h := uint64(base)
	for _, ch := range prog {
		h = h*131 + uint64(ch)
	}
	h = h*131 + uint64(level)
	h = h*131 + uint64(cat)
	return int64(h & 0x7fffffffffffffff)
}

// RunStudy runs every campaign cell of the study.
func RunStudy(cfg StudyConfig) (*Study, error) {
	cats := cfg.Categories
	if len(cats) == 0 {
		cats = fault.Categories
	}
	st := &Study{
		Programs: cfg.Programs,
		N:        cfg.N,
		Seed:     cfg.Seed,
		Cells:    make(map[CellKey]*CellResult),
		Dyn:      make(map[CellKey]uint64),
	}
	for _, p := range cfg.Programs {
		if err := st.profileProgram(p); err != nil {
			return nil, err
		}
		for _, level := range []fault.Level{fault.LevelIR, fault.LevelASM} {
			for _, cat := range cats {
				key := CellKey{Prog: p.Name, Level: level, Category: cat}
				c := &Campaign{
					Prog:     p,
					Level:    level,
					Category: cat,
					N:        cfg.N,
					Seed:     cellSeed(cfg.Seed, p.Name, level, cat),
				}
				var res *CellResult
				var err error
				if cfg.Workers > 1 {
					res, err = c.RunParallel(cfg.Workers)
				} else {
					res, err = c.Run()
				}
				if errors.Is(err, ErrNoCandidates) {
					if cfg.Progress != nil {
						cfg.Progress(fmt.Sprintf("%-10s %-5s %-10s skipped (no candidates)", p.Name, level, cat))
					}
					continue
				}
				if err != nil {
					return nil, fmt.Errorf("cell %v: %w", key, err)
				}
				st.Cells[key] = res
				if cfg.Progress != nil {
					cfg.Progress(fmt.Sprintf("%-10s %-5s %-10s activated=%d crash=%.1f%% sdc=%.1f%%",
						p.Name, level, cat, res.Activated(),
						100*res.CrashRate().Rate(), 100*res.SDCRate().Rate()))
				}
			}
		}
	}
	return st, nil
}

// profileProgram fills Dyn for every (level, category) of one program
// using a single profiling run per level.
func (st *Study) profileProgram(p *Program) error {
	irInj, err := llfi.New(p.Prep, fault.CatAll)
	if err != nil {
		return err
	}
	for _, cat := range fault.Categories {
		cand := llfi.Candidates(p.Prep, cat)
		st.Dyn[CellKey{Prog: p.Name, Level: fault.LevelIR, Category: cat}] =
			llfi.CountDynamic(irInj.Profile, cand)
	}
	asmInj, err := pinfi.New(p.Asm, p.Prep.Layout.Image, p.Prep.Layout.Base, fault.CatAll)
	if err != nil {
		return err
	}
	for _, cat := range fault.Categories {
		cand := pinfi.Candidates(p.Asm, cat)
		st.Dyn[CellKey{Prog: p.Name, Level: fault.LevelASM, Category: cat}] =
			pinfi.CountDynamic(asmInj.Profile, cand)
	}
	return nil
}

// Cell returns one campaign cell (nil if absent).
func (st *Study) Cell(prog string, level fault.Level, cat fault.Category) *CellResult {
	return st.Cells[CellKey{Prog: prog, Level: level, Category: cat}]
}

// DynCandidates returns a Table IV entry.
func (st *Study) DynCandidates(prog string, level fault.Level, cat fault.Category) uint64 {
	return st.Dyn[CellKey{Prog: prog, Level: level, Category: cat}]
}

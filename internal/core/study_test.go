package core_test

import (
	"testing"

	"hlfi/internal/bench"
	"hlfi/internal/core"
	"hlfi/internal/fault"
)

// TestPilotStudy runs a reduced study on two benchmarks and sanity-checks
// the experimental machinery: cells complete, activation accounting
// holds, determinism holds, and the renderers produce output.
func TestPilotStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("pilot study is slow")
	}
	var progs []*core.Program
	for _, name := range []string{"bzip2m", "quantumm"} {
		p, err := bench.Build(name)
		if err != nil {
			t.Fatal(err)
		}
		progs = append(progs, p)
	}
	st, err := core.RunStudy(core.StudyConfig{
		Programs: progs,
		N:        40,
		Seed:     7,
		Progress: func(s string) { t.Log(s) },
	})
	if err != nil {
		t.Fatal(err)
	}
	for key, cell := range st.Cells {
		if cell.Activated() != 40 {
			t.Errorf("%v: activated %d != 40 (attempts %d)", key, cell.Activated(), cell.Attempts)
		}
		if cell.Attempts < cell.Activated() {
			t.Errorf("%v: attempts %d < activated", key, cell.Attempts)
		}
	}
	t.Log("\n" + st.RenderFigure3())
	t.Log("\n" + st.RenderTableIV())
	t.Log("\n" + st.RenderTableV())
	t.Log("\n" + st.RenderSummary())
}

// TestCampaignDeterminism ensures identical seeds give identical cells.
func TestCampaignDeterminism(t *testing.T) {
	p, err := bench.Build("quantumm")
	if err != nil {
		t.Fatal(err)
	}
	run := func() *core.CellResult {
		c := &core.Campaign{Prog: p, Level: fault.LevelASM, Category: fault.CatAll, N: 25, Seed: 99}
		res, err := c.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if *a != *b {
		t.Fatalf("campaigns with same seed differ: %+v vs %+v", a, b)
	}
}

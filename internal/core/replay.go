package core

import (
	"fmt"
	"sync"

	"hlfi/internal/fault"
	"hlfi/internal/interp"
	"hlfi/internal/llfi"
	"hlfi/internal/machine"
	"hlfi/internal/obs"
	"hlfi/internal/pinfi"
	"hlfi/internal/telemetry"
)

// DefaultSnapshotBudget caps the snapshot cache's accounted footprint
// when ReplayConfig.MemBudget is zero.
const DefaultSnapshotBudget = 256 << 20 // 256 MiB

// Auto-stride shape: aim for about snapshotsPerRun snapshots per golden
// run, but never snapshot more often than minSnapshotStride retired
// instructions (tiny programs would otherwise pay more in capture than
// replay saves).
const (
	snapshotsPerRun   = 64
	minSnapshotStride = 512
)

// ReplayConfig enables golden-run snapshot fast-forward replay for a
// study. One config is shared by every cell: the snapshot cache behind
// it is keyed by (program, level) — snapshots are category-agnostic, so
// a single golden capture serves all five categories and the calibrated
// candidate sets. Safe for concurrent cells under Parallel > 1.
//
// Replay is observationally invisible: outcomes, activation status, and
// output bytes are identical to full re-execution under the same seeds.
type ReplayConfig struct {
	// Stride is the snapshot interval in dynamic instructions; 0 picks
	// an automatic per-program stride (goldenInstrs/64, floored at 512).
	Stride uint64
	// MemBudget caps the accounted snapshot bytes retained across all
	// programs; 0 means DefaultSnapshotBudget. When a build pushes the
	// cache over budget, least-recently-used entries are evicted; a
	// single entry larger than the whole budget is thinned (every other
	// snapshot dropped) until it fits or one snapshot remains.
	MemBudget uint64
	// Stats, when non-nil, receives hit/miss/cache accounting.
	Stats *telemetry.ReplayStats
	// Obs, when non-nil, mirrors the cache accounting into the live
	// metrics registry (cache bytes/snapshot gauges, eviction counter).
	Obs *obs.Metrics

	once  sync.Once
	cache *snapshotCache
}

// Signature renders the replay configuration for checkpoint headers, so
// -resume can refuse to mix runs with different replay configs. A nil
// config (replay off) renders as "off".
func (rc *ReplayConfig) Signature() string {
	if rc == nil {
		return "off"
	}
	return fmt.Sprintf("stride=%d;budget=%d", rc.Stride, rc.memBudget())
}

func (rc *ReplayConfig) memBudget() uint64 {
	if rc.MemBudget > 0 {
		return rc.MemBudget
	}
	return DefaultSnapshotBudget
}

func (rc *ReplayConfig) resolveStride(goldenInstrs uint64) uint64 {
	if rc.Stride > 0 {
		return rc.Stride
	}
	s := goldenInstrs / snapshotsPerRun
	if s < minSnapshotStride {
		s = minSnapshotStride
	}
	return s
}

func (rc *ReplayConfig) ensure() *snapshotCache {
	rc.once.Do(func() {
		rc.cache = &snapshotCache{
			budget:  rc.memBudget(),
			entries: make(map[snapKey]*snapEntry),
			stats:   rc.Stats,
			obs:     rc.Obs,
		}
	})
	return rc.cache
}

// arm wires snapshots into a freshly built IR injector. Called from the
// campaign's injector construction (inside ScanTime).
func (rc *ReplayConfig) armIR(p *Program, inj *llfi.Injector) error {
	stride := rc.resolveStride(inj.GoldenInstrs)
	snaps, err := rc.ensure().irSnaps(p, stride)
	if err != nil {
		return err
	}
	inj.UseSnapshots(snaps, rc.Stats)
	return nil
}

// armASM wires snapshots into a freshly built assembly injector.
func (rc *ReplayConfig) armASM(p *Program, inj *pinfi.Injector) error {
	stride := rc.resolveStride(inj.GoldenInstrs)
	snaps, err := rc.ensure().asmSnaps(p, stride)
	if err != nil {
		return err
	}
	inj.UseSnapshots(snaps, rc.Stats)
	return nil
}

type snapKey struct {
	prog  string
	level fault.Level
}

// snapEntry is one (program, level) cache slot. ready is closed once ir/
// asm/err are final; the slices and snapshots are immutable afterwards,
// so any number of cells may share them concurrently.
type snapEntry struct {
	ready   chan struct{}
	err     error
	ir      []*interp.Snapshot
	asm     []*machine.Snapshot
	bytes   uint64
	lastUse uint64
}

// snapshotCache builds golden-run snapshots lazily, once per
// (program, level), and holds them under an LRU memory budget. The
// builder runs on the first requesting goroutine; concurrent requesters
// block on the entry's ready channel. An evicted entry stays usable by
// cells that already hold it — eviction only drops the cache's
// reference so the next request rebuilds.
type snapshotCache struct {
	mu      sync.Mutex
	budget  uint64
	entries map[snapKey]*snapEntry
	tick    uint64
	stats   *telemetry.ReplayStats
	obs     *obs.Metrics
}

// lookup returns (entry, true) to wait on, or a fresh unready entry the
// caller must build, already registered under k.
func (sc *snapshotCache) lookup(k snapKey) (*snapEntry, bool) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	sc.tick++
	if e, ok := sc.entries[k]; ok {
		e.lastUse = sc.tick
		return e, true
	}
	e := &snapEntry{ready: make(chan struct{}), lastUse: sc.tick}
	sc.entries[k] = e
	return e, false
}

func (sc *snapshotCache) irSnaps(p *Program, stride uint64) ([]*interp.Snapshot, error) {
	k := snapKey{prog: p.Name, level: fault.LevelIR}
	e, hit := sc.lookup(k)
	if hit {
		<-e.ready
		return e.ir, e.err
	}
	snaps, err := llfi.CaptureSnapshots(p.Prep, stride)
	var b uint64
	if err == nil {
		// Thin an over-budget entry before publishing: dropping every
		// other snapshot halves the accounted bytes while keeping
		// fast-forward coverage of the whole run.
		for irBytes(snaps) > sc.budget && len(snaps) > 1 {
			snaps = thin(snaps)
		}
		b = irBytes(snaps)
	}
	sc.seal(k, e, func() {
		if err == nil {
			e.ir, e.bytes = snaps, b
		}
		e.err = err
	})
	return e.ir, e.err
}

func (sc *snapshotCache) asmSnaps(p *Program, stride uint64) ([]*machine.Snapshot, error) {
	k := snapKey{prog: p.Name, level: fault.LevelASM}
	e, hit := sc.lookup(k)
	if hit {
		<-e.ready
		return e.asm, e.err
	}
	snaps, err := pinfi.CaptureSnapshots(p.Asm, p.Prep.Layout.Image, p.Prep.Layout.Base, stride)
	var b uint64
	if err == nil {
		for asmBytes(snaps) > sc.budget && len(snaps) > 1 {
			snaps = thin(snaps)
		}
		b = asmBytes(snaps)
	}
	sc.seal(k, e, func() {
		if err == nil {
			e.asm, e.bytes = snaps, b
		}
		e.err = err
	})
	return e.asm, e.err
}

// seal finalizes a freshly built entry and enforces the memory budget in
// one critical section: publish fills the entry's payload fields, the
// ready channel is closed, least-recently-used ready entries other than
// the newcomer are evicted until the accounted total fits, and the
// post-eviction usage is published to the stats gauge. Filling the entry
// under sc.mu matters: concurrent builders of other keys scan every
// entry's payload while holding the lock (totalLocked,
// publishUsageLocked), and the gauge must never surface a pre-eviction
// footprint after an eviction pass.
func (sc *snapshotCache) seal(k snapKey, e *snapEntry, publish func()) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	publish()
	close(e.ready)
	for sc.totalLocked() > sc.budget {
		victim, vkey := sc.lruLocked(k)
		if victim == nil {
			break
		}
		delete(sc.entries, vkey)
		sc.stats.NoteEviction()
		if sc.obs != nil {
			sc.obs.SnapshotEvictions.Inc()
		}
	}
	sc.publishUsageLocked()
}

func (sc *snapshotCache) totalLocked() uint64 {
	var n uint64
	for _, e := range sc.entries {
		n += e.bytes
	}
	return n
}

// lruLocked picks the least-recently-used ready entry, excluding keep.
func (sc *snapshotCache) lruLocked(keep snapKey) (*snapEntry, snapKey) {
	var victim *snapEntry
	var vkey snapKey
	for k, e := range sc.entries {
		if k == keep {
			continue
		}
		select {
		case <-e.ready:
		default:
			continue // still building; its builder will call admit
		}
		if victim == nil || e.lastUse < victim.lastUse {
			victim, vkey = e, k
		}
	}
	return victim, vkey
}

func (sc *snapshotCache) publishUsageLocked() {
	var bytes, count uint64
	for _, e := range sc.entries {
		bytes += e.bytes
		count += uint64(len(e.ir) + len(e.asm))
	}
	sc.stats.SetCacheUsage(bytes, count)
	if sc.obs != nil {
		sc.obs.SnapshotCacheBytes.SetUint64(bytes)
		sc.obs.SnapshotCacheSnapshots.SetUint64(count)
	}
}

func irBytes(snaps []*interp.Snapshot) uint64 {
	var n uint64
	for _, s := range snaps {
		n += s.Bytes()
	}
	return n
}

func asmBytes(snaps []*machine.Snapshot) uint64 {
	var n uint64
	for _, s := range snaps {
		n += s.Bytes()
	}
	return n
}

// thin keeps every other snapshot, starting with the second (so the
// kept set stays spread over the run rather than clustered early).
func thin[S any](snaps []S) []S {
	out := snaps[:0:len(snaps)]
	for i := 1; i < len(snaps); i += 2 {
		out = append(out, snaps[i])
	}
	return out
}

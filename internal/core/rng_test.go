package core

import (
	"math/rand"
	"sync"
	"testing"

	"hlfi/internal/fault"
)

// TestStreamDisciplines pins the two RNG derivations to their committed
// definitions: the sequential discipline is exactly one
// rand.NewSource(seed) stream consumed in attempt order, and the
// per-attempt discipline is exactly rand.NewSource(attemptSeed(seed,k))
// per index. Any execution path that derives randomness through
// attemptStreams therefore reproduces the committed study outputs.
func TestStreamDisciplines(t *testing.T) {
	const seed = 12345

	seq := sequentialStreams(seed)
	want := rand.New(rand.NewSource(seed))
	for k := 0; k < 64; k++ {
		if got, w := seq.stream(k).Uint64(), want.Uint64(); got != w {
			t.Fatalf("sequential attempt %d drew %d, want %d (shared-stream discipline broken)", k, got, w)
		}
		if seq.reproSeed(k) != seed {
			t.Fatalf("sequential reproSeed(%d) = %d, want the campaign seed %d", k, seq.reproSeed(k), seed)
		}
	}
	if !seq.sequential() {
		t.Fatal("sequentialStreams not marked sequential")
	}

	per := perAttemptStreams(seed)
	if per.sequential() {
		t.Fatal("perAttemptStreams marked sequential")
	}
	// Out-of-order and repeated requests must not disturb per-attempt
	// streams (concurrent workers race on request order).
	for _, k := range []int{7, 0, 63, 7, 1} {
		wantStream := rand.New(rand.NewSource(attemptSeed(seed, k)))
		gotStream := per.stream(k)
		for i := 0; i < 8; i++ {
			if got, w := gotStream.Uint64(), wantStream.Uint64(); got != w {
				t.Fatalf("per-attempt stream %d draw %d = %d, want %d", k, i, got, w)
			}
		}
		if per.reproSeed(k) != attemptSeed(seed, k) {
			t.Fatalf("per-attempt reproSeed(%d) = %d, want attemptSeed", k, per.reproSeed(k))
		}
	}
}

// TestCrossPathRNGOracle is the cross-path oracle: Run and RunParallel
// must draw their attempt randomness exclusively through the shared
// derivation helper. A stub injector records the first value drawn per
// attempt; the recordings must match the values predicted from
// attemptStreams alone, so a new execution path (shard workers) reusing
// Run/RunParallel cannot drift from either discipline.
func TestCrossPathRNGOracle(t *testing.T) {
	p, err := BuildProgram("tiny.c", tinySrc)
	if err != nil {
		t.Fatal(err)
	}
	const seed = 77
	record := func(mu *sync.Mutex, draws *[]uint64) func() (func(*rand.Rand) fault.Outcome, uint64, error) {
		return func() (func(*rand.Rand) fault.Outcome, uint64, error) {
			return func(rng *rand.Rand) fault.Outcome {
				v := rng.Uint64()
				mu.Lock()
				*draws = append(*draws, v)
				mu.Unlock()
				return fault.OutcomeBenign
			}, 1, nil
		}
	}

	var mu sync.Mutex
	var seqDraws []uint64
	c := &Campaign{Prog: p, Level: fault.LevelIR, Category: fault.CatAll,
		N: 16, Seed: seed, injectorOverride: record(&mu, &seqDraws)}
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
	oracle := sequentialStreams(seed)
	for k, got := range seqDraws {
		if want := oracle.stream(k).Uint64(); got != want {
			t.Fatalf("Run attempt %d drew %d, want %d from the sequential discipline", k, got, want)
		}
	}

	var parDraws []uint64
	c2 := &Campaign{Prog: p, Level: fault.LevelIR, Category: fault.CatAll,
		N: 16, Seed: seed, injectorOverride: record(&mu, &parDraws)}
	if _, err := c2.RunParallel(4); err != nil {
		t.Fatal(err)
	}
	// Worker scheduling permutes draw order, so compare as a set against
	// the per-attempt prediction for the counted prefix.
	per := perAttemptStreams(seed)
	want := make(map[uint64]bool, len(parDraws))
	for k := 0; k < len(parDraws); k++ {
		want[per.stream(k).Uint64()] = true
	}
	for _, got := range parDraws {
		if !want[got] {
			t.Fatalf("RunParallel drew %d, not predicted by the per-attempt discipline", got)
		}
	}
}

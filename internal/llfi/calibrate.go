package llfi

import (
	"hlfi/internal/fault"
	"hlfi/internal/interp"
	"hlfi/internal/ir"
)

// Calibration implements the three discrepancy-resolution heuristics the
// paper proposes as future work in §VII. Each predicts, from the IR
// alone, how the backend will lower a construct, and adjusts the
// injection-candidate sets accordingly:
//
//  1. GEPAsArith — "treat a getelementptr instruction as an arithmetic
//     instruction" when it will lower to explicit address arithmetic
//     rather than folding into a memory operand's addressing mode.
//  2. SkipAddressCasts — exclude conversion casts that only feed address
//     computation (their corruption behaves like a pointer fault, which
//     assembly-level cast injection never produces).
//  3. AsmMappedLoadsOnly — "inject into only those instructions that have
//     a corresponding analogue at the assembly code level": exclude
//     loads that will fold into an ALU instruction's memory operand.
type Calibration struct {
	GEPAsArith         bool
	SkipAddressCasts   bool
	AsmMappedLoadsOnly bool
}

// FullCalibration enables all three heuristics.
func FullCalibration() Calibration {
	return Calibration{GEPAsArith: true, SkipAddressCasts: true, AsmMappedLoadsOnly: true}
}

// CandidatesCalibrated is Candidates with the §VII heuristics applied.
func CandidatesCalibrated(p *interp.Prepared, cat fault.Category, cal Calibration) []bool {
	out := make([]bool, p.SeqTotal)
	for _, f := range p.Mod.Funcs {
		uses := ir.ComputeUses(f)
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if !in.HasResult() || uses.NumUses(in) == 0 {
					continue
				}
				if inCategoryCalibrated(in, cat, cal, uses, b) {
					out[in.Seq] = true
				}
			}
		}
	}
	return out
}

func inCategoryCalibrated(in *ir.Instr, cat fault.Category, cal Calibration, uses *ir.UseInfo, b *ir.Block) bool {
	switch cat {
	case fault.CatAll:
		// The calibrated 'all' set drops IR instructions with no assembly
		// counterpart: foldable GEPs and foldable loads.
		if cal.GEPAsArith && in.Op == ir.OpGEP && predictGEPFolds(in, uses, b) {
			return false
		}
		if cal.AsmMappedLoadsOnly && in.Op == ir.OpLoad && predictLoadFolds(in, uses, b) {
			return false
		}
		if cal.SkipAddressCasts && in.Op.IsConvCast() && feedsOnlyAddresses(in, uses) {
			return false
		}
		return true
	case fault.CatArith:
		if in.Op.IsArith() {
			return true
		}
		// §VII-1: unfoldable GEPs become add/mul sequences at the
		// assembly level; count them as arithmetic.
		return cal.GEPAsArith && in.Op == ir.OpGEP && !predictGEPFolds(in, uses, b)
	case fault.CatCast:
		if !in.Op.IsConvCast() {
			return false
		}
		if cal.SkipAddressCasts && feedsOnlyAddresses(in, uses) {
			return false
		}
		return true
	case fault.CatCmp:
		return in.Op.IsCmp()
	case fault.CatLoad:
		if in.Op != ir.OpLoad {
			return false
		}
		if cal.AsmMappedLoadsOnly && predictLoadFolds(in, uses, b) {
			return false
		}
		return true
	default:
		return false
	}
}

// predictGEPFolds mirrors (without importing) the backend's folding rule:
// a GEP disappears into addressing modes when every use is a same-block
// load/store and the address fits [base + index*scale + disp].
func predictGEPFolds(in *ir.Instr, uses *ir.UseInfo, b *ir.Block) bool {
	us := uses.Uses(in)
	if len(us) == 0 {
		return false
	}
	for _, u := range us {
		switch u.Op {
		case ir.OpLoad:
			if u.Parent != b {
				return false
			}
		case ir.OpStore:
			if u.Parent != b || u.Args[1] != ir.Value(in) || u.Args[0] == ir.Value(in) {
				return false
			}
		default:
			return false
		}
	}
	// Addressability: constant struct steps plus at most one variable
	// index with a hardware scale.
	cur := in.Args[0].Type().Elem
	varIndexes := 0
	for i, idx := range in.Args[1:] {
		var stride uint64
		if i == 0 {
			stride = cur.Size()
		} else {
			switch cur.Kind {
			case ir.KindArray:
				cur = cur.Elem
				stride = cur.Size()
			case ir.KindStruct:
				cst, ok := idx.(*ir.Const)
				if !ok {
					return false
				}
				cur = cur.Fields[int(cst.Int())]
				continue
			default:
				return false
			}
		}
		if _, isConst := idx.(*ir.Const); isConst {
			continue
		}
		varIndexes++
		if varIndexes > 1 {
			return false
		}
		switch stride {
		case 1, 2, 4, 8:
		default:
			return false
		}
	}
	return true
}

// predictLoadFolds mirrors the backend's load-operand folding rule: a
// single-use load consumed by a same-block ALU/compare/conversion folds
// into that instruction's memory operand.
func predictLoadFolds(in *ir.Instr, uses *ir.UseInfo, b *ir.Block) bool {
	us := uses.Uses(in)
	if len(us) != 1 || us[0].Parent != b {
		return false
	}
	switch us[0].Op {
	case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpAnd, ir.OpOr, ir.OpXor,
		ir.OpICmp, ir.OpFAdd, ir.OpFSub, ir.OpFMul, ir.OpFDiv, ir.OpFCmp,
		ir.OpSExt, ir.OpZExt, ir.OpSIToFP:
		return true
	default:
		return false
	}
}

// feedsOnlyAddresses reports whether every transitive use of the value is
// address computation (GEP indices or pointer-typed casts) — the casts
// the paper observed crashing like pointer faults.
func feedsOnlyAddresses(in *ir.Instr, uses *ir.UseInfo) bool {
	seen := make(map[*ir.Instr]bool)
	var walk func(v *ir.Instr) bool
	walk = func(v *ir.Instr) bool {
		if seen[v] {
			return true
		}
		seen[v] = true
		us := uses.Uses(v)
		if len(us) == 0 {
			return false
		}
		for _, u := range us {
			switch {
			case u.Op == ir.OpGEP && u.Args[0] != ir.Value(v):
				// used as an index: address computation
			case u.Op == ir.OpIntToPtr:
				// becomes a pointer outright
			case u.Op.IsIntArith() || u.Op.IsConvCast():
				if !walk(u) {
					return false
				}
			default:
				return false
			}
		}
		return true
	}
	return walk(in)
}

// NewCalibrated builds an injector whose candidate set uses the §VII
// heuristics.
func NewCalibrated(p *interp.Prepared, cat fault.Category, cal Calibration) (*Injector, error) {
	inj, err := New(p, cat)
	if err != nil {
		return nil, err
	}
	cand := CandidatesCalibrated(p, cat, cal)
	inj.Candidates = cand
	inj.DynTotal = CountDynamic(inj.Profile, cand)
	if inj.DynTotal == 0 {
		return nil, ErrNoCandidates
	}
	return inj, nil
}

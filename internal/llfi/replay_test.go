package llfi_test

import (
	"bytes"
	"math/rand"
	"testing"

	"hlfi/internal/fault"
	"hlfi/internal/llfi"
	"hlfi/internal/telemetry"
)

// TestReplayMatchesFullRun is the injector-level determinism oracle:
// for every dynamic trigger, an attempt served from a snapshot must
// match a full re-execution bit for bit — outcome, activation, output,
// exit code, and the injected bit itself.
func TestReplayMatchesFullRun(t *testing.T) {
	p := prepare(t)
	for _, cat := range fault.Categories {
		full, err := llfi.New(p, cat)
		if err != nil {
			t.Fatal(err)
		}
		snap, err := llfi.New(p, cat)
		if err != nil {
			t.Fatal(err)
		}
		snaps, err := llfi.CaptureSnapshots(p, full.GoldenInstrs/8+1)
		if err != nil {
			t.Fatal(err)
		}
		if len(snaps) == 0 {
			t.Fatalf("%s: no snapshots captured", cat)
		}
		stats := &telemetry.ReplayStats{}
		snap.UseSnapshots(snaps, stats)

		for trigger := uint64(0); trigger < full.DynTotal; trigger++ {
			want := full.InjectAt(trigger, rand.New(rand.NewSource(int64(trigger))))
			got := snap.InjectAt(trigger, rand.New(rand.NewSource(int64(trigger))))
			if want.Outcome != got.Outcome {
				t.Fatalf("%s trigger %d: outcome %v != %v", cat, trigger, got.Outcome, want.Outcome)
			}
			if !bytes.Equal(want.Output, got.Output) {
				t.Fatalf("%s trigger %d: output %q != %q", cat, trigger, got.Output, want.Output)
			}
			if want.Exit != got.Exit {
				t.Fatalf("%s trigger %d: exit %d != %d", cat, trigger, got.Exit, want.Exit)
			}
			if (want.Err == nil) != (got.Err == nil) {
				t.Fatalf("%s trigger %d: err %v != %v", cat, trigger, got.Err, want.Err)
			}
			wi, gi := want.Injection, got.Injection
			if wi.Activated != gi.Activated || wi.Happened != gi.Happened ||
				wi.Bit != gi.Bit || wi.OrigVal != gi.OrigVal || wi.FaultyVal != gi.FaultyVal ||
				wi.InstrIndex != gi.InstrIndex {
				t.Fatalf("%s trigger %d: injection detail diverged: %+v != %+v", cat, trigger, gi, wi)
			}
		}
		if stats.Hits() == 0 {
			t.Errorf("%s: replay never hit a snapshot", cat)
		}
	}
}

package llfi

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"hlfi/internal/fault"
)

// LineStats accumulates injection outcomes attributed to one source line.
// This realizes the advantage the paper claims for high-level injectors:
// "the mapping from the fault injection results to the code is
// straightforward".
type LineStats struct {
	Line   int
	Crash  int
	SDC    int
	Hang   int
	Benign int
}

// Total is the number of activated injections attributed to the line.
func (l *LineStats) Total() int { return l.Crash + l.SDC + l.Hang + l.Benign }

// SDCRate is the fraction of the line's activated faults that corrupted
// output silently.
func (l *LineStats) SDCRate() float64 {
	if l.Total() == 0 {
		return 0
	}
	return float64(l.SDC) / float64(l.Total())
}

// CrashRate is the fraction that crashed.
func (l *LineStats) CrashRate() float64 {
	if l.Total() == 0 {
		return 0
	}
	return float64(l.Crash) / float64(l.Total())
}

// SourceProfile maps source lines to outcome statistics.
type SourceProfile struct {
	Lines map[int]*LineStats
	// Unattributed counts injections whose target carries no line info.
	Unattributed int
}

// ProfileByLine runs n activated injections and attributes each outcome
// to the source line of the corrupted instruction.
func (j *Injector) ProfileByLine(n int, rng *rand.Rand) *SourceProfile {
	prof := &SourceProfile{Lines: make(map[int]*LineStats)}
	collected := 0
	attempts := 0
	for collected < n && attempts < n*10 {
		attempts++
		res := j.InjectOne(rng)
		if res.Outcome == fault.OutcomeNotActivated {
			continue
		}
		collected++
		line := 0
		if res.Injection.Target != nil {
			line = res.Injection.Target.Line
		}
		if line == 0 {
			prof.Unattributed++
			continue
		}
		ls := prof.Lines[line]
		if ls == nil {
			ls = &LineStats{Line: line}
			prof.Lines[line] = ls
		}
		switch res.Outcome {
		case fault.OutcomeCrash:
			ls.Crash++
		case fault.OutcomeSDC:
			ls.SDC++
		case fault.OutcomeHang:
			ls.Hang++
		case fault.OutcomeBenign:
			ls.Benign++
		}
	}
	return prof
}

// TopSDC returns the k lines with the most SDC outcomes, most first.
func (p *SourceProfile) TopSDC(k int) []*LineStats {
	return p.top(k, func(l *LineStats) int { return l.SDC })
}

// TopCrash returns the k lines with the most crash outcomes.
func (p *SourceProfile) TopCrash(k int) []*LineStats {
	return p.top(k, func(l *LineStats) int { return l.Crash })
}

func (p *SourceProfile) top(k int, metric func(*LineStats) int) []*LineStats {
	out := make([]*LineStats, 0, len(p.Lines))
	for _, ls := range p.Lines {
		if metric(ls) > 0 {
			out = append(out, ls)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if metric(out[i]) != metric(out[j]) {
			return metric(out[i]) > metric(out[j])
		}
		return out[i].Line < out[j].Line
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// Render formats a susceptibility report against the program source.
func (p *SourceProfile) Render(source string, k int) string {
	lines := strings.Split(source, "\n")
	text := func(n int) string {
		if n-1 >= 0 && n-1 < len(lines) {
			return strings.TrimSpace(lines[n-1])
		}
		return ""
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "most SDC-prone source lines:\n")
	for _, ls := range p.TopSDC(k) {
		fmt.Fprintf(&sb, "  line %3d  sdc=%3d crash=%3d benign=%3d | %s\n",
			ls.Line, ls.SDC, ls.Crash, ls.Benign, text(ls.Line))
	}
	fmt.Fprintf(&sb, "most crash-prone source lines:\n")
	for _, ls := range p.TopCrash(k) {
		fmt.Fprintf(&sb, "  line %3d  crash=%3d sdc=%3d benign=%3d | %s\n",
			ls.Line, ls.Crash, ls.SDC, ls.Benign, text(ls.Line))
	}
	return sb.String()
}

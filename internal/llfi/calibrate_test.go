package llfi_test

import (
	"math/rand"
	"testing"

	"hlfi/internal/fault"
	"hlfi/internal/interp"
	"hlfi/internal/ir"
	"hlfi/internal/llfi"
	"hlfi/internal/minic"
)

func prepareSrc(t *testing.T, src string) *interp.Prepared {
	t.Helper()
	mod, err := minic.Compile("t", src)
	if err != nil {
		t.Fatal(err)
	}
	p, err := interp.Prepare(mod)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func countCands(cands []bool) int {
	n := 0
	for _, c := range cands {
		if c {
			n++
		}
	}
	return n
}

// TestCalibrationGEPAsArith: unfoldable GEPs join the arithmetic category
// (§VII-1); foldable ones stay out.
func TestCalibrationGEPAsArith(t *testing.T) {
	p := prepareSrc(t, `
struct wide { int a; int b; int c; int d; int e; int f; int g; };
struct wide ws[8];
int arr[8];
int *keep;
int main() {
    long s = 0;
    for (int i = 0; i < 8; i++) {
        s += arr[i];          /* foldable GEP: same-block load */
        s += ws[i].f;         /* stride 28: not a hardware scale */
        keep = &arr[i];       /* address escapes: unfoldable */
    }
    print_long(s);
    return 0;
}`)
	plain := llfi.Candidates(p, fault.CatArith)
	cal := llfi.CandidatesCalibrated(p, fault.CatArith, llfi.Calibration{GEPAsArith: true})
	if countCands(cal) <= countCands(plain) {
		t.Fatalf("calibrated arithmetic should gain GEPs: %d vs %d", countCands(cal), countCands(plain))
	}
	// Verify only GEPs were added, and not the foldable plain-array one.
	for _, f := range p.Mod.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if cal[in.Seq] && !plain[in.Seq] && in.Op != ir.OpGEP {
					t.Errorf("non-GEP %s entered calibrated arithmetic", in.Op)
				}
			}
		}
	}
}

// TestCalibrationAddressCasts: a sext feeding only GEP indices leaves the
// calibrated cast set; a value-producing conversion stays.
func TestCalibrationAddressCasts(t *testing.T) {
	p := prepareSrc(t, `
int arr[16];
double out;
int main() {
    int n = 0;
    for (int i = 0; i < 16; i++) {
        arr[i] = i;           /* sext i -> GEP index only */
        n += arr[i];
    }
    out = (double)n;          /* genuine value conversion */
    print_double(out);
    return 0;
}`)
	plain := llfi.Candidates(p, fault.CatCast)
	cal := llfi.CandidatesCalibrated(p, fault.CatCast, llfi.Calibration{SkipAddressCasts: true})
	if countCands(cal) >= countCands(plain) {
		t.Fatalf("calibrated cast set should shrink: %d vs %d", countCands(cal), countCands(plain))
	}
	// The sitofp must survive.
	survived := false
	for _, f := range p.Mod.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op == ir.OpSIToFP && cal[in.Seq] {
					survived = true
				}
			}
		}
	}
	if !survived {
		t.Fatal("value conversion wrongly excluded")
	}
}

// TestCalibrationMappedLoads: single-use same-block ALU-feeding loads
// leave the calibrated load set.
func TestCalibrationMappedLoads(t *testing.T) {
	p := prepareSrc(t, `
int arr[16];
int sink[16];
int main() {
    long s = 0;
    for (int i = 0; i < 16; i++) {
        s += arr[i];          /* load folds into the add */
        sink[i] = arr[i];     /* load feeds a store: stays a real load */
    }
    print_long(s);
    return 0;
}`)
	plain := llfi.Candidates(p, fault.CatLoad)
	cal := llfi.CandidatesCalibrated(p, fault.CatLoad, llfi.Calibration{AsmMappedLoadsOnly: true})
	if countCands(cal) >= countCands(plain) {
		t.Fatalf("calibrated load set should shrink: %d vs %d", countCands(cal), countCands(plain))
	}
	if countCands(cal) == 0 {
		t.Fatal("store-feeding load should survive calibration")
	}
}

// TestNewCalibratedRuns ensures the calibrated injector works end to end.
func TestNewCalibratedRuns(t *testing.T) {
	p := prepareSrc(t, testSrc)
	inj, err := llfi.NewCalibrated(p, fault.CatAll, llfi.FullCalibration())
	if err != nil {
		t.Fatal(err)
	}
	plain, err := llfi.New(p, fault.CatAll)
	if err != nil {
		t.Fatal(err)
	}
	if inj.DynTotal >= plain.DynTotal {
		t.Fatalf("calibrated 'all' should drop unmapped instructions: %d vs %d",
			inj.DynTotal, plain.DynTotal)
	}
}

// TestSourceLineProfile verifies line stamping survives the optimizer and
// that outcomes are attributed plausibly.
func TestSourceLineProfile(t *testing.T) {
	src := `int data[64];
int main() {
    long sum = 0;
    for (int i = 0; i < 64; i++) {
        data[i] = i * 3;
        sum += data[i];
    }
    print_long(sum);
    print_str("\n");
    return 0;
}
`
	p := prepareSrc(t, src)
	// Every candidate instruction should carry a source line.
	stamped, total := 0, 0
	for _, f := range p.Mod.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if !in.HasResult() {
					continue
				}
				total++
				if in.Line > 0 {
					stamped++
				}
			}
		}
	}
	// Phis synthesized by mem2reg legitimately carry no line; everything
	// the frontend emitted must.
	if total == 0 || stamped*4 < total*3 {
		t.Fatalf("only %d/%d instructions carry line info", stamped, total)
	}

	inj, err := llfi.New(p, fault.CatAll)
	if err != nil {
		t.Fatal(err)
	}
	prof := inj.ProfileByLine(150, rand.New(rand.NewSource(7)))
	attributed := 0
	for line, ls := range prof.Lines {
		if line < 1 || line > 12 {
			t.Errorf("line %d outside the source range", line)
		}
		attributed += ls.Total()
	}
	if attributed+prof.Unattributed != 150 {
		t.Fatalf("attribution accounting: %d + %d != 150", attributed, prof.Unattributed)
	}
	if len(prof.TopSDC(3)) == 0 && len(prof.TopCrash(3)) == 0 {
		t.Fatal("no lines profiled at all")
	}
	if out := prof.Render(src, 3); out == "" {
		t.Fatal("empty render")
	}
}

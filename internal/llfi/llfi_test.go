package llfi_test

import (
	"math/rand"
	"testing"

	"hlfi/internal/fault"
	"hlfi/internal/interp"
	"hlfi/internal/ir"
	"hlfi/internal/llfi"
	"hlfi/internal/minic"
)

const testSrc = `
int arr[8];
int main() {
    double acc = 0.0;
    for (int i = 0; i < 8; i++) {
        arr[i] = i * 3;
        acc = acc + (double)arr[i];
    }
    long sum = 0;
    for (int i = 0; i < 8; i++) sum += arr[i];
    print_long(sum); print_str(" ");
    print_double(acc); print_str("\n");
    return 0;
}
`

func prepare(t *testing.T) *interp.Prepared {
	t.Helper()
	mod, err := minic.Compile("t", testSrc)
	if err != nil {
		t.Fatal(err)
	}
	p, err := interp.Prepare(mod)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestSelectorCriteria checks the Table III selection rules at the IR
// level: category sets contain exactly the right opcodes, all candidates
// produce values, and all have uses (the def-use activation filter).
func TestSelectorCriteria(t *testing.T) {
	p := prepare(t)
	byCat := make(map[fault.Category][]bool)
	for _, cat := range fault.Categories {
		byCat[cat] = llfi.Candidates(p, cat)
	}
	for _, f := range p.Mod.Funcs {
		uses := ir.ComputeUses(f)
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if byCat[fault.CatAll][in.Seq] {
					if !in.HasResult() {
						t.Errorf("candidate %s has no result", in.Op)
					}
					if uses.NumUses(in) == 0 {
						t.Errorf("candidate %s has no uses (would never activate)", in.Op)
					}
				}
				if byCat[fault.CatArith][in.Seq] && !in.Op.IsArith() {
					t.Errorf("%s in arithmetic set", in.Op)
				}
				if byCat[fault.CatArith][in.Seq] && in.Op == ir.OpGEP {
					t.Error("GEP must not be in the arithmetic category (paper §V)")
				}
				if byCat[fault.CatCast][in.Seq] && !in.Op.IsConvCast() {
					t.Errorf("%s in cast set", in.Op)
				}
				if byCat[fault.CatCmp][in.Seq] && !in.Op.IsCmp() {
					t.Errorf("%s in cmp set", in.Op)
				}
				if byCat[fault.CatLoad][in.Seq] && in.Op != ir.OpLoad {
					t.Errorf("%s in load set", in.Op)
				}
				if in.Op == ir.OpStore && byCat[fault.CatAll][in.Seq] {
					t.Error("store selected (no destination register, paper §V)")
				}
				// Subcategories are subsets of 'all'.
				for _, cat := range []fault.Category{fault.CatArith, fault.CatCast, fault.CatCmp, fault.CatLoad} {
					if byCat[cat][in.Seq] && !byCat[fault.CatAll][in.Seq] {
						t.Errorf("%s in %s but not in all", in.Op, cat)
					}
				}
			}
		}
	}
}

func TestPointerCastsExcluded(t *testing.T) {
	mod, err := minic.Compile("t", `
int main() {
    int x = 5;
    int *p = &x;
    char *c = (char*)p;     /* bitcast: excluded */
    long addr = (long)p;    /* ptrtoint: excluded */
    int *q = (int*)addr;    /* inttoptr: excluded */
    return *q + (int)(*c);
}`)
	if err != nil {
		t.Fatal(err)
	}
	p, err := interp.Prepare(mod)
	if err != nil {
		t.Fatal(err)
	}
	cands := llfi.Candidates(p, fault.CatCast)
	for _, f := range p.Mod.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if cands[in.Seq] {
					switch in.Op {
					case ir.OpBitcast, ir.OpPtrToInt, ir.OpIntToPtr:
						t.Errorf("pointer cast %s selected in cast category (Table I row 5)", in.Op)
					}
				}
			}
		}
	}
}

func TestGoldenProfileAndCounts(t *testing.T) {
	p := prepare(t)
	inj, err := llfi.New(p, fault.CatAll)
	if err != nil {
		t.Fatal(err)
	}
	if inj.DynTotal == 0 || inj.GoldenInstrs == 0 {
		t.Fatal("empty profile")
	}
	if len(inj.GoldenOutput) == 0 {
		t.Fatal("no golden output")
	}
	// Category counts partition sensibly.
	sub := uint64(0)
	for _, cat := range []fault.Category{fault.CatArith, fault.CatCast, fault.CatCmp, fault.CatLoad} {
		n := llfi.CountDynamic(inj.Profile, llfi.Candidates(p, cat))
		sub += n
	}
	if sub > inj.DynTotal {
		t.Fatalf("subcategories (%d) exceed 'all' (%d)", sub, inj.DynTotal)
	}
}

func TestInjectAtDeterminism(t *testing.T) {
	p := prepare(t)
	inj, err := llfi.New(p, fault.CatArith)
	if err != nil {
		t.Fatal(err)
	}
	a := inj.InjectAt(3, rand.New(rand.NewSource(5)))
	b := inj.InjectAt(3, rand.New(rand.NewSource(5)))
	if a.Outcome != b.Outcome || string(a.Output) != string(b.Output) ||
		a.Injection.Bit != b.Injection.Bit {
		t.Fatalf("InjectAt not deterministic: %v vs %v", a.Outcome, b.Outcome)
	}
}

func TestEveryOutcomeReachable(t *testing.T) {
	p := prepare(t)
	inj, err := llfi.New(p, fault.CatAll)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	seen := map[fault.Outcome]bool{}
	for i := 0; i < 400; i++ {
		seen[inj.InjectOne(rng).Outcome] = true
	}
	for _, o := range []fault.Outcome{fault.OutcomeBenign, fault.OutcomeSDC, fault.OutcomeCrash} {
		if !seen[o] {
			t.Errorf("outcome %s never observed in 400 injections", o)
		}
	}
}

func TestNoCandidatesError(t *testing.T) {
	mod, err := minic.Compile("t", `
int main() { print_str("x\n"); return 0; }`)
	if err != nil {
		t.Fatal(err)
	}
	p, err := interp.Prepare(mod)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := llfi.New(p, fault.CatCast); err == nil {
		t.Fatal("expected ErrNoCandidates for castless program")
	}
}

// TestCustomSelector exercises the Figure 1 "custom selector" API: inject
// only into instructions on a chosen source line.
func TestCustomSelector(t *testing.T) {
	p := prepare(t)
	// Select one arithmetic op by shape: 64-bit adds only.
	cands := llfi.CandidatesFunc(p, func(in *ir.Instr) bool {
		return in.Op == ir.OpAdd && in.Ty == ir.I64
	})
	inj, err := llfi.NewWithCandidates(p, cands)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 40; i++ {
		res := inj.InjectOne(rng)
		if res.Injection.Target == nil {
			t.Fatal("no target recorded")
		}
		if res.Injection.Target.Op != ir.OpAdd || res.Injection.Target.Ty != ir.I64 {
			t.Fatalf("custom selector violated: hit %s %s",
				res.Injection.Target.Op, res.Injection.Target.Ty)
		}
	}
	// An unsatisfiable selector errors cleanly.
	empty := llfi.CandidatesFunc(p, func(in *ir.Instr) bool { return false })
	if _, err := llfi.NewWithCandidates(p, empty); err == nil {
		t.Fatal("empty candidate set accepted")
	}
}

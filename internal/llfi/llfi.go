// Package llfi implements the high-level fault injector of the study: an
// LLFI-style tool that profiles and corrupts programs at the IR level
// (paper §III). A campaign picks one dynamic execution of one candidate
// instruction uniformly at random and flips one random bit of its result.
package llfi

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"

	"hlfi/internal/compile/irc"
	"hlfi/internal/fault"
	"hlfi/internal/interp"
	"hlfi/internal/ir"
	"hlfi/internal/obs"
	"hlfi/internal/telemetry"
)

// HangFactor scales the golden instruction count into the hang-detection
// budget (the paper's "substantially longer than the golden run" timeout).
const HangFactor = 20

// ErrNoCandidates reports a category with no dynamic injection targets.
var ErrNoCandidates = errors.New("llfi: no dynamic candidates")

// Candidates marks the injectable IR instructions for a category, indexed
// by instruction Seq. Per the paper, candidates must produce a value and
// have at least one use (the def-use chain activation filter of §IV), and
// the cast category is restricted to int/fp conversion casts (Table I
// row 5).
func Candidates(p *interp.Prepared, cat fault.Category) []bool {
	out := make([]bool, p.SeqTotal)
	for _, f := range p.Mod.Funcs {
		uses := ir.ComputeUses(f)
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if !in.HasResult() || uses.NumUses(in) == 0 {
					continue
				}
				if inCategory(in, cat) {
					out[in.Seq] = true
				}
			}
		}
	}
	return out
}

func inCategory(in *ir.Instr, cat fault.Category) bool {
	switch cat {
	case fault.CatAll:
		return true
	case fault.CatArith:
		return in.Op.IsArith()
	case fault.CatCast:
		return in.Op.IsConvCast()
	case fault.CatCmp:
		return in.Op.IsCmp()
	case fault.CatLoad:
		return in.Op == ir.OpLoad
	default:
		return false
	}
}

// CandidatesFunc builds a candidate set from an arbitrary predicate — the
// "custom fault injection instruction and operand selector" of the
// paper's Figure 1, step 1. The def-use activation filter still applies:
// unusable results are never candidates.
func CandidatesFunc(p *interp.Prepared, keep func(*ir.Instr) bool) []bool {
	out := make([]bool, p.SeqTotal)
	for _, f := range p.Mod.Funcs {
		uses := ir.ComputeUses(f)
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if !in.HasResult() || uses.NumUses(in) == 0 {
					continue
				}
				if keep(in) {
					out[in.Seq] = true
				}
			}
		}
	}
	return out
}

// NewWithCandidates builds an injector over an explicit candidate set
// (e.g. from CandidatesFunc). The set must contain at least one
// dynamically executed instruction.
func NewWithCandidates(p *interp.Prepared, cands []bool) (*Injector, error) {
	inj, err := New(p, fault.CatAll)
	if err != nil {
		return nil, err
	}
	inj.Candidates = cands
	inj.DynTotal = CountDynamic(inj.Profile, cands)
	if inj.DynTotal == 0 {
		return nil, ErrNoCandidates
	}
	return inj, nil
}

// CountDynamic sums a profile over a candidate set: the number of dynamic
// injection opportunities (the N of paper §V).
func CountDynamic(profile []uint64, candidates []bool) uint64 {
	var n uint64
	for i, c := range candidates {
		if c {
			n += profile[i]
		}
	}
	return n
}

// Injector runs single-fault injection campaigns for one (program,
// category) pair at the IR level.
type Injector struct {
	Prep       *interp.Prepared
	Cat        fault.Category
	Candidates []bool
	// DynTotal is the dynamic candidate count from the profiling run.
	DynTotal uint64
	// GoldenOutput and GoldenExit are the fault-free results.
	GoldenOutput []byte
	GoldenExit   int64
	// GoldenInstrs sizes the hang budget.
	GoldenInstrs uint64
	// Profile holds per-instruction dynamic counts from the golden run.
	Profile []uint64

	// Replay state (UseSnapshots): golden-run snapshots in capture order
	// and, parallel to them, the candidate-execution count each one has
	// already passed — monotone, so the attempt loop can binary-search
	// for the latest snapshot at-or-before a trigger.
	snaps     []*interp.Snapshot
	snapCands []uint64
	stats     *telemetry.ReplayStats

	// Obs, when non-nil, receives replay-path metrics (hit/miss counts,
	// skipped/replayed instruction totals, restore-distance histogram).
	// Purely observational: it never influences an attempt.
	Obs *obs.Metrics

	// compiled (UseCompiled), when non-nil, runs untraced attempts on the
	// compile-to-closure engine instead of the interpreter. Traced
	// attempts always use the interpreter — the tracer is not compiled in.
	compiled *irc.Program
}

// UseCompiled arms the compile-to-closure engine for untraced attempts.
// The compiled program must be built from the injector's own Prepared
// module; outcomes stay byte-identical to the interpreter.
func (j *Injector) UseCompiled(cp *irc.Program) { j.compiled = cp }

// CaptureSnapshots runs the golden execution once more with a snapshot
// sink armed and returns the captured snapshots in execution order. The
// run is deterministic, so the snapshots are consistent with any
// injector built over the same prepared program.
func CaptureSnapshots(p *interp.Prepared, stride uint64) (snaps []*interp.Snapshot, err error) {
	defer func() {
		if r := recover(); r != nil {
			snaps, err = nil, fmt.Errorf("llfi snapshot run panic: %v", r)
		}
	}()
	var out bytes.Buffer
	r := interp.NewRunner(p, &out)
	r.Profile = make([]uint64, p.SeqTotal)
	r.SnapshotEvery = stride
	r.SnapshotSink = func(s *interp.Snapshot) { snaps = append(snaps, s) }
	if _, err := r.Run(); err != nil {
		return nil, fmt.Errorf("llfi snapshot run: %w", err)
	}
	return snaps, nil
}

// UseSnapshots arms fast-forward replay: subsequent InjectAt calls
// restore the latest snapshot at-or-before their trigger and replay only
// the residual tail. Outcomes, activation, and output stay byte-identical
// to full re-execution. stats (nil-safe) receives hit/miss accounting.
func (j *Injector) UseSnapshots(snaps []*interp.Snapshot, stats *telemetry.ReplayStats) {
	j.snaps = snaps
	j.stats = stats
	j.snapCands = make([]uint64, len(snaps))
	for i, s := range snaps {
		j.snapCands[i] = s.CandCount(j.Candidates)
	}
}

// snapBefore returns the index of the latest snapshot whose candidate
// baseline is at or below trigger, or -1.
func (j *Injector) snapBefore(trigger uint64) int {
	lo, hi := 0, len(j.snaps)
	for lo < hi {
		mid := (lo + hi) / 2
		if j.snapCands[mid] <= trigger {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo - 1
}

// New profiles the program once (the golden run) and prepares an injector
// for the category. An unexpected interpreter panic during the golden
// run is converted to an error rather than crashing the campaign.
func New(p *interp.Prepared, cat fault.Category) (inj *Injector, err error) {
	defer func() {
		if r := recover(); r != nil {
			inj, err = nil, fmt.Errorf("llfi golden run panic: %v", r)
		}
	}()
	var out bytes.Buffer
	r := interp.NewRunner(p, &out)
	profile := make([]uint64, p.SeqTotal)
	r.Profile = profile
	rc, err := r.Run()
	if err != nil {
		return nil, fmt.Errorf("llfi golden run: %w", err)
	}
	cand := Candidates(p, cat)
	inj = &Injector{
		Prep:         p,
		Cat:          cat,
		Candidates:   cand,
		DynTotal:     CountDynamic(profile, cand),
		GoldenOutput: out.Bytes(),
		GoldenExit:   rc,
		GoldenInstrs: r.Executed(),
		Profile:      profile,
	}
	if inj.DynTotal == 0 {
		return nil, fmt.Errorf("%w (%s in %s)", ErrNoCandidates, cat, p.Mod.Name)
	}
	return inj, nil
}

// Result is the outcome of one injected run.
type Result struct {
	Outcome   fault.Outcome
	Output    []byte
	Exit      int64
	Err       error
	Injection *interp.Injection

	// Trigger is the dynamic candidate index that was corrupted.
	Trigger uint64
	// Spans is the fault-propagation skeleton (traced attempts only):
	// inject site, first tainted load/store/branch, and the outcome edge.
	Spans []telemetry.TraceSpan
}

// InjectOne performs a single fault injection: a uniformly random dynamic
// candidate instance, one random bit of its result.
func (j *Injector) InjectOne(rng *rand.Rand) *Result {
	trigger := uint64(rng.Int63n(int64(j.DynTotal)))
	return j.injectAt(trigger, rng, false)
}

// InjectOneTraced is InjectOne with fault-propagation tracing armed. The
// tracer is purely observational — it consumes no randomness and the
// outcome is byte-identical to the untraced draw.
func (j *Injector) InjectOneTraced(rng *rand.Rand) *Result {
	trigger := uint64(rng.Int63n(int64(j.DynTotal)))
	return j.injectAt(trigger, rng, true)
}

// InjectAt injects at a specific dynamic candidate index (tests and
// deterministic replay). When snapshots are armed, the attempt restores
// the latest snapshot at-or-before the trigger and replays the residual
// tail; otherwise it re-executes from instruction zero. Both paths
// produce byte-identical results under the same rng.
func (j *Injector) InjectAt(trigger uint64, rng *rand.Rand) *Result {
	return j.injectAt(trigger, rng, false)
}

func (j *Injector) injectAt(trigger uint64, rng *rand.Rand, traced bool) *Result {
	injection := &interp.Injection{
		Candidates:   j.Candidates,
		TriggerIndex: trigger,
		Rng:          rng,
	}
	var tr *interp.Tracer
	if traced {
		tr = interp.NewTracer(0) // spans only, no event log
	}
	// Untraced attempts run on the compiled engine when armed; the
	// tracer is interpreter-only instrumentation, so traced attempts
	// stay on the interpreter (both are byte-identical).
	useCompiled := j.compiled != nil && !traced
	budget := j.GoldenInstrs*HangFactor + 1_000_000
	var out bytes.Buffer
	var rc int64
	var err error
	var executed uint64
	if i := j.snapBefore(trigger); i >= 0 {
		s := j.snaps[i]
		out.Write(j.GoldenOutput[:s.OutLen])
		if useCompiled {
			r := irc.NewRunnerFromSnapshot(j.compiled, s, &out)
			r.SetCandCount(j.snapCands[i])
			r.MaxInstrs = budget
			r.Inject = injection
			rc, err = r.Resume()
			executed = r.Executed()
		} else {
			r := interp.NewRunnerFromSnapshot(j.Prep, s, &out)
			r.SetCandCount(j.snapCands[i])
			r.MaxInstrs = budget
			r.Inject = injection
			r.Trace = tr
			rc, err = r.Resume()
			executed = r.Executed()
		}
		j.stats.Hit(s.Executed, executed-s.Executed)
		if o := j.Obs; o != nil {
			o.ReplayHits.Inc()
			o.InstrsSkipped.Add(s.Executed)
			o.InstrsReplayed.Add(executed - s.Executed)
			o.RestoreInstrs.Observe(float64(executed - s.Executed))
		}
	} else {
		if useCompiled {
			r := irc.NewRunner(j.compiled, &out)
			r.MaxInstrs = budget
			r.Inject = injection
			rc, err = r.Run()
			executed = r.Executed()
		} else {
			r := interp.NewRunner(j.Prep, &out)
			r.MaxInstrs = budget
			r.Inject = injection
			r.Trace = tr
			rc, err = r.Run()
			executed = r.Executed()
		}
		if j.snaps != nil {
			j.stats.Miss(executed)
			if o := j.Obs; o != nil {
				o.ReplayMisses.Inc()
				o.RestoreInstrs.Observe(float64(executed))
			}
		}
	}
	if useCompiled {
		if o := j.Obs; o != nil {
			o.CompiledAttempts.Inc()
		}
	}
	res := &Result{Output: out.Bytes(), Exit: rc, Err: err, Injection: injection, Trigger: trigger}
	res.Outcome = classify(j.GoldenOutput, j.GoldenExit, res, injection.Happened && injection.Activated)
	if tr != nil {
		for _, s := range tr.Spans {
			res.Spans = append(res.Spans, telemetry.TraceSpan{Kind: s.Kind, Site: s.Site, At: s.At})
		}
		res.Spans = append(res.Spans, telemetry.TraceSpan{
			Kind: "outcome", Site: res.Outcome.String(), At: executed,
		})
	}
	return res
}

func classify(goldenOut []byte, goldenExit int64, res *Result, activated bool) fault.Outcome {
	switch {
	case res.Err == interp.ErrHang:
		return fault.OutcomeHang
	case res.Err != nil:
		return fault.OutcomeCrash
	// A corrupted output always counts as an (activated) SDC, even if the
	// activation tracker somehow missed the read: the fault demonstrably
	// influenced execution.
	case !bytes.Equal(res.Output, goldenOut) || res.Exit != goldenExit:
		return fault.OutcomeSDC
	case !activated:
		return fault.OutcomeNotActivated
	default:
		return fault.OutcomeBenign
	}
}

package bench

func init() {
	register(Benchmark{
		Name:        "mcfm",
		Suite:       "SPEC (mcf)",
		Description: "Single-depot vehicle scheduling as min-cost flow via successive shortest paths (Bellman-Ford), with linked adjacency lists. Pointer-chasing heavy, like mcf.",
		Source:      mcfmSrc,
	})
}

const mcfmSrc = `
/* mcfm: min-cost flow by successive shortest paths on a vehicle
 * scheduling network: depot -> trips -> depot', with deadhead arcs
 * between compatible trips. */

int NTRIPS = 14;
int MAXN = 64;    /* nodes: 0 = source depot, 1..NTRIPS trips, NTRIPS+1 sink */
int MAXARCS = 1024;

struct arc {
    int to;
    int cap;
    int cost;
    int flow;
    int next;    /* next arc index out of the same node, -1 ends */
    int partner; /* reverse arc index */
};

struct arc arcs[1024];
int head[64];
int narcs = 0;

long rngState = 987654321;

int nextRand(int m) {
    rngState = rngState * 6364136223846793005L + 1442695040888963407L;
    long x = rngState >> 33;
    if (x < 0) x = -x;
    return (int)(x % m);
}

void addArcPair(int u, int v, int cap, int cost) {
    arcs[narcs].to = v;
    arcs[narcs].cap = cap;
    arcs[narcs].cost = cost;
    arcs[narcs].flow = 0;
    arcs[narcs].next = head[u];
    arcs[narcs].partner = narcs + 1;
    head[u] = narcs;
    narcs++;
    arcs[narcs].to = u;
    arcs[narcs].cap = 0;
    arcs[narcs].cost = -cost;
    arcs[narcs].flow = 0;
    arcs[narcs].next = head[v];
    arcs[narcs].partner = narcs - 1;
    head[v] = narcs;
    narcs++;
}

int tripStart[32];
int tripEnd[32];

void buildNetwork() {
    int source = 0;
    int sink = NTRIPS + 1;
    for (int i = 0; i < MAXN; i++) head[i] = -1;
    for (int t = 1; t <= NTRIPS; t++) {
        tripStart[t] = nextRand(400);
        tripEnd[t] = tripStart[t] + 20 + nextRand(60);
        /* pull a vehicle from the depot */
        addArcPair(source, t, 1, 80 + nextRand(40));
        /* return the vehicle to the depot */
        addArcPair(t, sink, 1, 80 + nextRand(40));
    }
    /* deadhead arcs between compatible trips */
    for (int a = 1; a <= NTRIPS; a++) {
        for (int b = 1; b <= NTRIPS; b++) {
            if (a != b && tripEnd[a] + 10 <= tripStart[b]) {
                addArcPair(a, b, 1, 5 + nextRand(20));
            }
        }
    }
}

int dist[64];
int parentArc[64];
int INF = 1000000000;

/* Bellman-Ford over the residual network. */
int shortestPath(int source, int sink, int n) {
    for (int i = 0; i < n; i++) {
        dist[i] = INF;
        parentArc[i] = -1;
    }
    dist[source] = 0;
    for (int round = 0; round < n; round++) {
        int changed = 0;
        for (int u = 0; u < n; u++) {
            if (dist[u] >= INF) continue;
            int ai = head[u];
            while (ai >= 0) {
                if (arcs[ai].cap - arcs[ai].flow > 0) {
                    int nd = dist[u] + arcs[ai].cost;
                    if (nd < dist[arcs[ai].to]) {
                        dist[arcs[ai].to] = nd;
                        parentArc[arcs[ai].to] = ai;
                        changed = 1;
                    }
                }
                ai = arcs[ai].next;
            }
        }
        if (!changed) break;
    }
    if (dist[sink] >= INF) return 0;
    return 1;
}

int main() {
    buildNetwork();
    int source = 0;
    int sink = NTRIPS + 1;
    int n = NTRIPS + 2;

    long totalCost = 0;
    int totalFlow = 0;
    int paths = 0;
    while (shortestPath(source, sink, n)) {
        /* find bottleneck */
        int bottleneck = INF;
        int v = sink;
        while (v != source) {
            int ai = parentArc[v];
            int residual = arcs[ai].cap - arcs[ai].flow;
            if (residual < bottleneck) bottleneck = residual;
            v = arcs[arcs[ai].partner].to;
        }
        /* augment */
        v = sink;
        while (v != source) {
            int ai = parentArc[v];
            arcs[ai].flow += bottleneck;
            arcs[arcs[ai].partner].flow -= bottleneck;
            totalCost += (long)(arcs[ai].cost * bottleneck);
            v = arcs[arcs[ai].partner].to;
        }
        totalFlow += bottleneck;
        paths++;
        if (paths > 100) break;
    }

    /* vehicles used = flow out of the depot */
    int vehicles = 0;
    int ai = head[source];
    while (ai >= 0) {
        vehicles += arcs[ai].flow;
        ai = arcs[ai].next;
    }

    print_str("mcfm flow="); print_int(totalFlow);
    print_str(" cost="); print_long(totalCost);
    print_str(" vehicles="); print_int(vehicles);
    print_str(" arcs="); print_int(narcs);
    print_str(" paths="); print_int(paths);
    double avgCost = (double)totalCost / (double)(vehicles > 0 ? vehicles : 1);
    print_str(" avg="); print_double(avgCost);
    print_str("\n");
    return 0;
}
`

package bench

func init() {
	register(Benchmark{
		Name:        "oceanm",
		Suite:       "SPLASH-2 (ocean)",
		Description: "Eddy/boundary-current ocean basin relaxation: red-black Gauss-Seidel over a 2D stream-function grid with wind forcing. Floating-point stencil heavy, like ocean.",
		Source:      oceanmSrc,
	})
}

const oceanmSrc = `
/* oceanm: red-black Gauss-Seidel relaxation of a wind-driven barotropic
 * stream function on a square basin. */

int N = 16;          /* grid dimension including boundary */
int ITERS = 20;

double psi[16][16];     /* stream function */
double forcing[16][16]; /* wind-stress curl */

double OMEGA = 1.25;    /* over-relaxation factor */

void initGrid() {
    for (int i = 0; i < N; i++) {
        for (int j = 0; j < N; j++) {
            psi[i][j] = 0.0;
            /* sinusoidal-ish wind forcing built from polynomials to stay
             * deterministic without tables */
            double x = (double)i / N;
            double y = (double)j / N;
            forcing[i][j] = 16.0 * x * (1.0 - x) * (0.5 - y);
        }
    }
    /* western boundary current: fixed inflow profile */
    for (int j = 0; j < N; j++) {
        double y = (double)j / N;
        psi[0][j] = 4.0 * y * (1.0 - y);
    }
}

/* one red-black sweep; returns the max update magnitude */
double sweep(int color) {
    double maxDelta = 0.0;
    for (int i = 1; i < N - 1; i++) {
        for (int j = 1; j < N - 1; j++) {
            if (((i + j) & 1) != color) continue;
            double neigh = psi[i-1][j] + psi[i+1][j] + psi[i][j-1] + psi[i][j+1];
            double target = 0.25 * (neigh - forcing[i][j]);
            double delta = target - psi[i][j];
            psi[i][j] = psi[i][j] + OMEGA * delta;
            double mag = fabs(delta);
            if (mag > maxDelta) maxDelta = mag;
        }
    }
    return maxDelta;
}

/* kinetic-energy-like diagnostic */
double energy() {
    double e = 0.0;
    for (int i = 1; i < N - 1; i++) {
        for (int j = 1; j < N - 1; j++) {
            double u = psi[i][j+1] - psi[i][j-1];
            double v = psi[i+1][j] - psi[i-1][j];
            e += u * u + v * v;
        }
    }
    return e;
}

int main() {
    initGrid();
    double resid = 0.0;
    int it = 0;
    while (it < ITERS) {
        double r1 = sweep(0);
        double r2 = sweep(1);
        resid = r1 > r2 ? r1 : r2;
        it++;
        if (resid < 0.0000001) break;
    }

    print_str("oceanm iters="); print_int(it);
    print_str(" resid="); print_double(resid);
    print_str(" energy="); print_double(energy());
    print_str(" center="); print_double(psi[8][8]);
    print_str(" west="); print_double(psi[1][8]);
    print_str("\n");
    return 0;
}
`

package bench

import (
	"bytes"
	"testing"

	"hlfi/internal/fault"
	"hlfi/internal/interp"
	"hlfi/internal/llfi"
	"hlfi/internal/machine"
	"hlfi/internal/pinfi"
)

// TestTableIVShape asserts the qualitative RQ1 findings of the paper's
// Table IV on our benchmarks:
//
//   - both tools see similar numbers of compare instructions (compare+
//     branch pairs map 1:1 between the levels);
//   - PINFI sees more arithmetic instructions than LLFI (address
//     computation is explicit arithmetic at the assembly level but lives
//     in getelementptr at the IR level);
//   - LLFI sees far more cast instructions than PINFI (the IR is strictly
//     typed; almost all casts lower to plain data movement).
func TestTableIVShape(t *testing.T) {
	if testing.Short() {
		t.Skip("profiles all six benchmarks")
	}
	arithGreater := 0
	total := 0
	for _, b := range All() {
		p, err := Build(b.Name)
		if err != nil {
			t.Fatal(err)
		}
		var o1, o2 bytes.Buffer
		m := machine.New(p.Asm, p.Prep.Layout.Image, p.Prep.Layout.Base, &o1)
		asmProf := make([]uint64, len(p.Asm.Instrs))
		m.Profile = asmProf
		if _, err := m.Run(); err != nil {
			t.Fatal(err)
		}
		r := interp.NewRunner(p.Prep, &o2)
		irProf := make([]uint64, p.Prep.SeqTotal)
		r.Profile = irProf
		if _, err := r.Run(); err != nil {
			t.Fatal(err)
		}
		count := func(level fault.Level, cat fault.Category) uint64 {
			if level == fault.LevelIR {
				return llfi.CountDynamic(irProf, llfi.Candidates(p.Prep, cat))
			}
			return pinfi.CountDynamic(asmProf, pinfi.Candidates(p.Asm, cat))
		}

		llCmp := count(fault.LevelIR, fault.CatCmp)
		pfCmp := count(fault.LevelASM, fault.CatCmp)
		if ratio := float64(llCmp) / float64(pfCmp); ratio < 0.9 || ratio > 1.1 {
			t.Errorf("%s: cmp counts diverge: LLFI=%d PINFI=%d", b.Name, llCmp, pfCmp)
		}

		// "LLFI has fewer instructions to inject than PINFI for most
		// programs" (RQ1): require it for a clear majority, and never a
		// large inversion.
		llArith := count(fault.LevelIR, fault.CatArith)
		pfArith := count(fault.LevelASM, fault.CatArith)
		total++
		if pfArith > llArith {
			arithGreater++
		}
		if float64(pfArith) < 0.9*float64(llArith) {
			t.Errorf("%s: PINFI arithmetic (%d) far below LLFI (%d)", b.Name, pfArith, llArith)
		}

		llCast := count(fault.LevelIR, fault.CatCast)
		pfCast := count(fault.LevelASM, fault.CatCast)
		if llCast <= 2*pfCast {
			t.Errorf("%s: LLFI casts (%d) should far exceed PINFI converts (%d)",
				b.Name, llCast, pfCast)
		}

		// Totals are within a factor of ~2.2 of each other: the levels see
		// comparable instruction streams of the same program.
		llAll := count(fault.LevelIR, fault.CatAll)
		pfAll := count(fault.LevelASM, fault.CatAll)
		ratio := float64(llAll) / float64(pfAll)
		if ratio < 0.45 || ratio > 2.2 {
			t.Errorf("%s: all-category counts implausible: LLFI=%d PINFI=%d", b.Name, llAll, pfAll)
		}
		t.Logf("%-10s all=%d/%d arith=%d/%d cast=%d/%d cmp=%d/%d load=%d/%d (LLFI/PINFI)",
			b.Name, llAll, pfAll, llArith, pfArith, llCast, pfCast, llCmp, pfCmp,
			count(fault.LevelIR, fault.CatLoad), count(fault.LevelASM, fault.CatLoad))
	}
	if arithGreater*3 < total*2 {
		t.Errorf("PINFI arithmetic exceeded LLFI in only %d/%d benchmarks", arithGreater, total)
	}
}

package bench

import (
	"strings"
	"testing"
)

// TestBuildAll compiles every benchmark for both levels; BuildProgram
// itself verifies that the fault-free runs agree between the IR
// interpreter and the machine simulator.
func TestBuildAll(t *testing.T) {
	progs, err := BuildAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(progs) != 6 {
		t.Fatalf("expected 6 benchmarks, got %d", len(progs))
	}
	for _, p := range progs {
		out := string(p.GoldenOutput)
		if !strings.HasPrefix(out, p.Name) {
			t.Errorf("%s: output does not start with the benchmark name: %q", p.Name, out)
		}
		if p.GoldenExit != 0 {
			t.Errorf("%s: golden exit %d", p.Name, p.GoldenExit)
		}
		t.Logf("%-10s IR=%8d instrs  ASM=%8d instrs  out=%s",
			p.Name, p.IRInstrs, p.AsmInstrs, strings.TrimSpace(out))
	}
}

func TestRegistry(t *testing.T) {
	all := All()
	if len(all) != 6 {
		t.Fatalf("registry has %d benchmarks", len(all))
	}
	for _, b := range all {
		if b.LoC() < 50 {
			t.Errorf("%s suspiciously small: %d LoC", b.Name, b.LoC())
		}
		if b.Suite == "" || b.Description == "" {
			t.Errorf("%s missing metadata", b.Name)
		}
		if _, err := ByName(b.Name); err != nil {
			t.Errorf("ByName(%s): %v", b.Name, err)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("ByName(nope) should fail")
	}
}

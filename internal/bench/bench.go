// Package bench holds the six benchmark workloads of the study. Each is
// a mini program written in minic that preserves the instruction-mix
// character of the paper's corresponding SPEC CPU2006 / SPLASH-2
// benchmark (Table II) at a scale the simulators can run thousands of
// times per campaign.
package bench

import (
	"fmt"
	"sort"
	"strings"

	"hlfi/internal/core"
)

// Benchmark describes one workload.
type Benchmark struct {
	Name string
	// Suite is the paper benchmark this one stands in for.
	Suite       string
	Description string
	Source      string
}

// LoC counts the non-blank source lines (for the Table II analogue).
func (b Benchmark) LoC() int {
	n := 0
	for _, line := range strings.Split(b.Source, "\n") {
		if strings.TrimSpace(line) != "" {
			n++
		}
	}
	return n
}

var registry = map[string]Benchmark{}

func register(b Benchmark) { registry[b.Name] = b }

// All returns every benchmark in the paper's presentation order.
func All() []Benchmark {
	order := []string{"bzip2m", "mcfm", "hmmerm", "quantumm", "oceanm", "raytracem"}
	out := make([]Benchmark, 0, len(order))
	for _, name := range order {
		if b, ok := registry[name]; ok {
			out = append(out, b)
		}
	}
	// Include any extras deterministically.
	var extra []string
	for name := range registry {
		found := false
		for _, o := range order {
			if o == name {
				found = true
				break
			}
		}
		if !found {
			extra = append(extra, name)
		}
	}
	sort.Strings(extra)
	for _, name := range extra {
		out = append(out, registry[name])
	}
	return out
}

// ByName looks up one benchmark.
func ByName(name string) (Benchmark, error) {
	b, ok := registry[name]
	if !ok {
		return Benchmark{}, fmt.Errorf("unknown benchmark %q", name)
	}
	return b, nil
}

// Build compiles one benchmark for both execution levels.
func Build(name string) (*core.Program, error) {
	b, err := ByName(name)
	if err != nil {
		return nil, err
	}
	return core.BuildProgram(b.Name, b.Source)
}

// BuildAll compiles every benchmark.
func BuildAll() ([]*core.Program, error) {
	var out []*core.Program
	for _, b := range All() {
		p, err := core.BuildProgram(b.Name, b.Source)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

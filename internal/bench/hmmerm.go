package bench

func init() {
	register(Benchmark{
		Name:        "hmmerm",
		Suite:       "SPEC (hmmer)",
		Description: "Profile-HMM Viterbi search of a database of sequences against a consensus model, integer log-odds scores. Load + integer-arithmetic heavy, like hmmer.",
		Source:      hmmermSrc,
	})
}

const hmmermSrc = `
/* hmmerm: Viterbi alignment of sequences against a profile HMM with
 * match/insert/delete states and integer log-odds scores. */

int M = 14;        /* model length (match states) */
int NSEQ = 3;      /* database size */
int SEQLEN = 44;   /* sequence length */
int NALPHA = 4;    /* alphabet (DNA) */

int matchScore[24][4];   /* match emission scores */
int insertScore[4];      /* insert emission scores */
int trMM[24];            /* transition scores */
int trMI[24];
int trMD[24];
int trIM[24];
int trII[24];
int trDM[24];
int trDD[24];

int seq[8][80];

/* rolling DP rows: [state-kind][model position] */
int vm[2][24];
int vi[2][24];
int vd[2][24];

int NEGINF = -100000000;

long rngState = 555555;

int nextRand(int m) {
    rngState = rngState * 6364136223846793005L + 1442695040888963407L;
    long x = rngState >> 33;
    if (x < 0) x = -x;
    return (int)(x % m);
}

void buildModel() {
    for (int k = 0; k <= M; k++) {
        for (int a = 0; a < NALPHA; a++) {
            matchScore[k][a] = nextRand(40) - 10;
        }
        trMM[k] = -1 - nextRand(3);
        trMI[k] = -8 - nextRand(6);
        trMD[k] = -9 - nextRand(6);
        trIM[k] = -3 - nextRand(4);
        trII[k] = -4 - nextRand(4);
        trDM[k] = -3 - nextRand(4);
        trDD[k] = -7 - nextRand(5);
    }
    for (int a = 0; a < NALPHA; a++) insertScore[a] = -2;
}

void buildSeqs() {
    for (int s = 0; s < NSEQ; s++) {
        for (int i = 0; i < SEQLEN; i++) {
            seq[s][i] = nextRand(NALPHA);
        }
    }
}

int max2(int a, int b) {
    return a > b ? a : b;
}

int max3(int a, int b, int c) {
    int m = a;
    if (b > m) m = b;
    if (c > m) m = c;
    return m;
}

/* Viterbi score of one sequence against the model. */
int viterbi(int s) {
    int cur = 0;
    int prev = 1;
    for (int k = 0; k <= M; k++) {
        vm[prev][k] = NEGINF;
        vi[prev][k] = NEGINF;
        vd[prev][k] = NEGINF;
    }
    vm[prev][0] = 0;
    int best = NEGINF;
    for (int i = 0; i < SEQLEN; i++) {
        int c = seq[s][i];
        vm[cur][0] = 0;    /* local alignment: free restart */
        vi[cur][0] = NEGINF;
        vd[cur][0] = NEGINF;
        for (int k = 1; k <= M; k++) {
            int mm = vm[prev][k-1] + trMM[k-1];
            int im = vi[prev][k-1] + trIM[k-1];
            int dm = vd[prev][k-1] + trDM[k-1];
            vm[cur][k] = max3(mm, im, dm) + matchScore[k][c];

            int mi = vm[prev][k] + trMI[k];
            int ii = vi[prev][k] + trII[k];
            vi[cur][k] = max2(mi, ii) + insertScore[c];

            int md = vm[cur][k-1] + trMD[k-1];
            int dd = vd[cur][k-1] + trDD[k-1];
            vd[cur][k] = max2(md, dd);

            if (vm[cur][k] > best) best = vm[cur][k];
        }
        int t = cur;
        cur = prev;
        prev = t;
    }
    return best;
}

int main() {
    buildModel();
    buildSeqs();

    long total = 0;
    int hits = 0;
    int bestScore = NEGINF;
    int bestSeq = -1;
    for (int s = 0; s < NSEQ; s++) {
        int sc = viterbi(s);
        total += sc;
        if (sc > 60) hits++;
        if (sc > bestScore) {
            bestScore = sc;
            bestSeq = s;
        }
    }

    print_str("hmmerm total="); print_long(total);
    print_str(" best="); print_int(bestScore);
    print_str(" bestseq="); print_int(bestSeq);
    print_str(" hits="); print_int(hits);
    double meanScore = (double)total / (double)NSEQ;
    print_str(" mean="); print_double(meanScore);
    print_str("\n");
    return 0;
}
`

package bench

func init() {
	register(Benchmark{
		Name:        "raytracem",
		Suite:       "SPLASH-2 (raytrace)",
		Description: "Recursive ray tracer: sphere scene with Lambertian shading, shadows and one reflection bounce, rendering to a checksummed framebuffer. FP + sqrt heavy, like raytrace.",
		Source:      raytracemSrc,
	})
}

const raytracemSrc = `
/* raytracem: renders a three-dimensional sphere scene by ray tracing. */

int W = 18;
int H = 13;
int NSPHERES = 5;

struct sphere {
    double cx; double cy; double cz;
    double radius;
    double r; double g; double b;   /* surface color */
    double refl;                    /* reflectivity 0..1 */
};

struct sphere scene[5];

double lightX = 5.0;
double lightY = 8.0;
double lightZ = -3.0;

int frame[18][13];

void buildScene() {
    scene[0].cx = 0.0;  scene[0].cy = -1002.0; scene[0].cz = 8.0;
    scene[0].radius = 1000.0;  /* floor */
    scene[0].r = 0.8; scene[0].g = 0.8; scene[0].b = 0.6; scene[0].refl = 0.1;

    scene[1].cx = -1.6; scene[1].cy = 0.0; scene[1].cz = 7.0;
    scene[1].radius = 1.4;
    scene[1].r = 0.9; scene[1].g = 0.2; scene[1].b = 0.2; scene[1].refl = 0.4;

    scene[2].cx = 1.7; scene[2].cy = -0.4; scene[2].cz = 6.0;
    scene[2].radius = 1.0;
    scene[2].r = 0.2; scene[2].g = 0.9; scene[2].b = 0.3; scene[2].refl = 0.3;

    scene[3].cx = 0.2; scene[3].cy = 1.2; scene[3].cz = 9.5;
    scene[3].radius = 1.2;
    scene[3].r = 0.3; scene[3].g = 0.3; scene[3].b = 0.95; scene[3].refl = 0.6;

    scene[4].cx = -0.4; scene[4].cy = -1.2; scene[4].cz = 4.5;
    scene[4].radius = 0.5;
    scene[4].r = 0.9; scene[4].g = 0.9; scene[4].b = 0.1; scene[4].refl = 0.2;
}

/* Ray-sphere intersection: returns distance or -1. */
double intersect(int s, double ox, double oy, double oz,
                 double dx, double dy, double dz) {
    double lx = scene[s].cx - ox;
    double ly = scene[s].cy - oy;
    double lz = scene[s].cz - oz;
    double tca = lx * dx + ly * dy + lz * dz;
    double d2 = lx * lx + ly * ly + lz * lz - tca * tca;
    double r2 = scene[s].radius * scene[s].radius;
    if (d2 > r2) return -1.0;
    double thc = sqrt(r2 - d2);
    double t0 = tca - thc;
    double t1 = tca + thc;
    if (t0 > 0.001) return t0;
    if (t1 > 0.001) return t1;
    return -1.0;
}

int nearestHit(double ox, double oy, double oz,
               double dx, double dy, double dz, double *tOut) {
    int hit = -1;
    double best = 1000000.0;
    for (int s = 0; s < NSPHERES; s++) {
        double t = intersect(s, ox, oy, oz, dx, dy, dz);
        if (t > 0.0 && t < best) {
            best = t;
            hit = s;
        }
    }
    *tOut = best;
    return hit;
}

double shadePoint(int s, double px, double py, double pz) {
    /* surface normal */
    double nx = (px - scene[s].cx) / scene[s].radius;
    double ny = (py - scene[s].cy) / scene[s].radius;
    double nz = (pz - scene[s].cz) / scene[s].radius;
    /* direction to light */
    double lx = lightX - px;
    double ly = lightY - py;
    double lz = lightZ - pz;
    double llen = sqrt(lx * lx + ly * ly + lz * lz);
    lx = lx / llen; ly = ly / llen; lz = lz / llen;
    double lambert = nx * lx + ny * ly + nz * lz;
    if (lambert < 0.0) lambert = 0.0;
    /* shadow ray */
    double tshadow = 0.0;
    int blocker = nearestHit(px + nx * 0.01, py + ny * 0.01, pz + nz * 0.01,
                             lx, ly, lz, &tshadow);
    if (blocker >= 0 && tshadow < llen) lambert = lambert * 0.2;
    return 0.15 + 0.85 * lambert;
}

/* Trace one ray with at most one reflection bounce; returns luminance. */
double trace(double ox, double oy, double oz,
             double dx, double dy, double dz, int depth) {
    double t = 0.0;
    int s = nearestHit(ox, oy, oz, dx, dy, dz, &t);
    if (s < 0) {
        /* sky gradient */
        return 0.25 + 0.25 * (dy > 0.0 ? dy : 0.0);
    }
    double px = ox + dx * t;
    double py = oy + dy * t;
    double pz = oz + dz * t;
    double shade = shadePoint(s, px, py, pz);
    double lum = shade * (0.3 * scene[s].r + 0.5 * scene[s].g + 0.2 * scene[s].b);
    if (depth > 0 && scene[s].refl > 0.0) {
        double nx = (px - scene[s].cx) / scene[s].radius;
        double ny = (py - scene[s].cy) / scene[s].radius;
        double nz = (pz - scene[s].cz) / scene[s].radius;
        double dot = dx * nx + dy * ny + dz * nz;
        double rx = dx - 2.0 * dot * nx;
        double ry = dy - 2.0 * dot * ny;
        double rz = dz - 2.0 * dot * nz;
        double rl = trace(px + nx * 0.01, py + ny * 0.01, pz + nz * 0.01,
                          rx, ry, rz, depth - 1);
        lum = lum * (1.0 - scene[s].refl) + rl * scene[s].refl;
    }
    return lum;
}

int main() {
    buildScene();
    long sum = 0;
    for (int x = 0; x < W; x++) {
        for (int y = 0; y < H; y++) {
            double sx = ((double)x / W - 0.5) * 2.4;
            double sy = (0.5 - (double)y / H) * 1.8;
            double dx = sx;
            double dy = sy;
            double dz = 2.0;
            double len = sqrt(dx * dx + dy * dy + dz * dz);
            dx = dx / len; dy = dy / len; dz = dz / len;
            double lum = trace(0.0, 0.5, 0.0, dx, dy, dz, 2);
            int pixel = (int)(lum * 255.0);
            if (pixel > 255) pixel = 255;
            if (pixel < 0) pixel = 0;
            frame[x][y] = pixel;
            sum += pixel;
        }
    }
    /* column profile samples + frame checksum */
    long h = 0;
    for (int x = 0; x < W; x++) {
        for (int y = 0; y < H; y++) {
            h = (h * 131 + frame[x][y]) & 0xFFFFFFFFFFFFL;
        }
    }
    print_str("raytracem sum="); print_long(sum);
    print_str(" hash="); print_long(h);
    print_str(" p00="); print_int(frame[0][0]);
    print_str(" mid="); print_int(frame[9][6]);
    print_str("\n");
    return 0;
}
`

package bench

func init() {
	register(Benchmark{
		Name:        "bzip2m",
		Suite:       "SPEC (bzip2)",
		Description: "Block compression: run-length encoding + move-to-front + run coding, with decompression and verification. Byte- and address-computation heavy, like bzip2.",
		Source:      bzip2mSrc,
	})
}

const bzip2mSrc = `
/* bzip2m: block compressor (RLE1 + move-to-front + zero-run coding). */

int INSIZE = 700;

char input[2048];
char rle[4096];
char mtf[4096];
char packed[4096];
char unpacked[4096];
char unmtf[4096];
char unrle[4096];

long rngState = 12345;

int nextRand(int m) {
    rngState = rngState * 6364136223846793005L + 1442695040888963407L;
    long x = rngState >> 33;
    if (x < 0) x = -x;
    return (int)(x % m);
}

/* Generate compressible input: runs of a small alphabet. */
void genInput(int n) {
    int i = 0;
    while (i < n) {
        char c = (char)('a' + nextRand(6));
        int run = 1 + nextRand(9);
        for (int k = 0; k < run && i < n; k++) {
            input[i] = c;
            i++;
        }
    }
}

/* RLE1: runs of 4+ identical bytes become 4 bytes + count byte. */
int rleEncode(char *src, int n, char *dst) {
    int o = 0;
    int i = 0;
    while (i < n) {
        char c = src[i];
        int run = 1;
        while (i + run < n && src[i + run] == c && run < 255) run++;
        if (run >= 4) {
            dst[o] = c; dst[o+1] = c; dst[o+2] = c; dst[o+3] = c;
            dst[o+4] = (char)(run - 4);
            o += 5;
        } else {
            for (int k = 0; k < run; k++) {
                dst[o] = c;
                o++;
            }
        }
        i += run;
    }
    return o;
}

int rleDecode(char *src, int n, char *dst) {
    int o = 0;
    int i = 0;
    while (i < n) {
        char c = src[i];
        if (i + 3 < n && src[i+1] == c && src[i+2] == c && src[i+3] == c) {
            int run = 4 + (src[i+4] & 255);
            for (int k = 0; k < run; k++) {
                dst[o] = c;
                o++;
            }
            i += 5;
        } else {
            dst[o] = c;
            o++;
            i++;
        }
    }
    return o;
}

int mtfTable[256];

void mtfInit() {
    for (int i = 0; i < 256; i++) mtfTable[i] = i;
}

/* Move-to-front transform: emit each byte's current rank. */
void mtfEncode(char *src, int n, char *dst) {
    mtfInit();
    for (int i = 0; i < n; i++) {
        int v = src[i] & 255;
        int j = 0;
        while (mtfTable[j] != v) j++;
        dst[i] = (char)j;
        while (j > 0) {
            mtfTable[j] = mtfTable[j-1];
            j--;
        }
        mtfTable[0] = v;
    }
}

void mtfDecode(char *src, int n, char *dst) {
    mtfInit();
    for (int i = 0; i < n; i++) {
        int j = src[i] & 255;
        int v = mtfTable[j];
        dst[i] = (char)v;
        while (j > 0) {
            mtfTable[j] = mtfTable[j-1];
            j--;
        }
        mtfTable[0] = v;
    }
}

/* Zero-run coder: MTF output is zero-heavy; code zero runs compactly. */
int packZeros(char *src, int n, char *dst) {
    int o = 0;
    int i = 0;
    while (i < n) {
        if (src[i] == 0) {
            int run = 1;
            while (i + run < n && src[i + run] == 0 && run < 200) run++;
            dst[o] = (char)255;
            dst[o+1] = (char)run;
            o += 2;
            i += run;
        } else {
            dst[o] = src[i];
            o++;
            i++;
        }
    }
    return o;
}

int unpackZeros(char *src, int n, char *dst) {
    int o = 0;
    int i = 0;
    while (i < n) {
        if ((src[i] & 255) == 255) {
            int run = src[i+1] & 255;
            for (int k = 0; k < run; k++) {
                dst[o] = 0;
                o++;
            }
            i += 2;
        } else {
            dst[o] = src[i];
            o++;
            i++;
        }
    }
    return o;
}

long checksum(char *buf, int n) {
    long h = 5381;
    for (int i = 0; i < n; i++) {
        h = h * 33 + (buf[i] & 255);
        h = h & 0xFFFFFFFFFFFFL;
    }
    return h;
}

int main() {
    genInput(INSIZE);
    long inSum = checksum(input, INSIZE);

    int rleLen = rleEncode(input, INSIZE, rle);
    mtfEncode(rle, rleLen, mtf);
    int packedLen = packZeros(mtf, rleLen, packed);

    int unpackedLen = unpackZeros(packed, packedLen, unpacked);
    mtfDecode(unpacked, unpackedLen, unmtf);
    int outLen = rleDecode(unmtf, unpackedLen, unrle);

    int ok = 1;
    if (outLen != INSIZE) ok = 0;
    for (int i = 0; i < INSIZE && ok; i++) {
        if (unrle[i] != input[i]) ok = 0;
    }

    print_str("bzip2m in="); print_long(inSum);
    print_str(" rle="); print_int(rleLen);
    print_str(" packed="); print_int(packedLen);
    print_str(" packsum="); print_long(checksum(packed, packedLen));
    print_str(" roundtrip="); print_int(ok);
    /* compression ratio: the benchmark's only floating-point code, like
     * bzip2's handful of fp conversion instructions */
    double ratio = (double)packedLen / (double)INSIZE;
    print_str(" ratio="); print_double(ratio);
    print_str("\n");
    return ok == 1 ? 0 : 1;
}
`

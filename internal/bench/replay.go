package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"time"

	"hlfi/internal/fault"
	"hlfi/internal/llfi"
	"hlfi/internal/telemetry"
)

// ReplayMeasurement records one attempt-level comparison of full
// re-execution against snapshot fast-forward replay. `make bench`
// serializes it to BENCH_replay.json.
type ReplayMeasurement struct {
	Benchmark          string  `json:"benchmark"`
	Level              string  `json:"level"`
	Category           string  `json:"category"`
	Attempts           int     `json:"attempts"`
	Stride             uint64  `json:"snapshot_stride"`
	Snapshots          int     `json:"snapshots"`
	GoldenInstrs       uint64  `json:"golden_instrs"`
	FullNsPerAttempt   float64 `json:"full_ns_per_attempt"`
	ReplayNsPerAttempt float64 `json:"replay_ns_per_attempt"`
	Speedup            float64 `json:"speedup"`
	SkippedInstrPct    float64 `json:"skipped_instr_pct"`
}

// MeasureReplay times n LLFI injection attempts on one benchmark twice
// — full re-execution from instruction zero versus fast-forward replay
// from golden-run snapshots — drawing identical seeded triggers in both
// arms so the two loops do exactly the same logical work. Each arm is
// run twice and the faster pass is kept, the usual guard against a
// one-off scheduling stall polluting the ratio.
func MeasureReplay(name string, n int, seed int64) (*ReplayMeasurement, error) {
	p, err := Build(name)
	if err != nil {
		return nil, err
	}
	full, err := llfi.New(p.Prep, fault.CatAll)
	if err != nil {
		return nil, err
	}
	replay, err := llfi.New(p.Prep, fault.CatAll)
	if err != nil {
		return nil, err
	}
	// Same auto-stride shape the study uses (see core.ReplayConfig).
	stride := full.GoldenInstrs / 64
	if stride < 512 {
		stride = 512
	}
	snaps, err := llfi.CaptureSnapshots(p.Prep, stride)
	if err != nil {
		return nil, err
	}
	stats := &telemetry.ReplayStats{}
	replay.UseSnapshots(snaps, stats)

	arm := func(inj *llfi.Injector) time.Duration {
		best := time.Duration(0)
		for pass := 0; pass < 2; pass++ {
			start := time.Now()
			for i := 0; i < n; i++ {
				rng := rand.New(rand.NewSource(seed + int64(i)))
				inj.InjectOne(rng)
			}
			if d := time.Since(start); pass == 0 || d < best {
				best = d
			}
		}
		return best
	}
	fullD := arm(full)
	replayD := arm(replay)

	m := &ReplayMeasurement{
		Benchmark:          name,
		Level:              fault.LevelIR.String(),
		Category:           fault.CatAll.String(),
		Attempts:           n,
		Stride:             stride,
		Snapshots:          len(snaps),
		GoldenInstrs:       full.GoldenInstrs,
		FullNsPerAttempt:   float64(fullD.Nanoseconds()) / float64(n),
		ReplayNsPerAttempt: float64(replayD.Nanoseconds()) / float64(n),
		Speedup:            float64(fullD) / float64(replayD),
	}
	if tot := stats.SkippedInstrs() + stats.ReplayedInstrs(); tot > 0 {
		m.SkippedInstrPct = 100 * float64(stats.SkippedInstrs()) / float64(tot)
	}
	return m, nil
}

// WriteJSON writes the measurement as indented JSON.
func (m *ReplayMeasurement) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}

// String renders a one-line summary for logs.
func (m *ReplayMeasurement) String() string {
	return fmt.Sprintf("%s/%s/%s: %d attempts, replay %.2fx faster (%.0f ns vs %.0f ns per attempt; %.1f%% of instructions skipped, %d snapshots at stride %d)",
		m.Benchmark, m.Level, m.Category, m.Attempts, m.Speedup,
		m.ReplayNsPerAttempt, m.FullNsPerAttempt, m.SkippedInstrPct, m.Snapshots, m.Stride)
}

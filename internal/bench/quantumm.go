package bench

func init() {
	register(Benchmark{
		Name:        "quantumm",
		Suite:       "SPEC (libquantum)",
		Description: "State-vector quantum computer simulation: Hadamard/CNOT/phase gates and a Grover-style iteration over an 8-qubit register. Data-movement heavy, like libquantum.",
		Source:      quantummSrc,
	})
}

const quantummSrc = `
/* quantumm: dense state-vector simulation of an 8-qubit register. */

int NQUBITS = 7;
int DIM = 128;   /* 2^NQUBITS */

double re[128];
double im[128];

double INVSQRT2 = 0.7071067811865476;

void initState() {
    for (int i = 0; i < DIM; i++) {
        re[i] = 0.0;
        im[i] = 0.0;
    }
    re[0] = 1.0;
}

/* Hadamard on qubit q. */
void hadamard(int q) {
    int mask = 1 << q;
    for (int i = 0; i < DIM; i++) {
        if ((i & mask) == 0) {
            int j = i | mask;
            double ar = re[i];
            double ai = im[i];
            double br = re[j];
            double bi = im[j];
            re[i] = (ar + br) * INVSQRT2;
            im[i] = (ai + bi) * INVSQRT2;
            re[j] = (ar - br) * INVSQRT2;
            im[j] = (ai - bi) * INVSQRT2;
        }
    }
}

/* Controlled NOT: flips target amplitude pairs when control bit set. */
void cnot(int control, int target) {
    int cm = 1 << control;
    int tm = 1 << target;
    for (int i = 0; i < DIM; i++) {
        if ((i & cm) != 0 && (i & tm) == 0) {
            int j = i | tm;
            double tr = re[i];
            double ti = im[i];
            re[i] = re[j];
            im[i] = im[j];
            re[j] = tr;
            im[j] = ti;
        }
    }
}

/* Phase flip of one basis state (oracle for Grover search). */
void oracle(int marked) {
    re[marked] = -re[marked];
    im[marked] = -im[marked];
}

/* Inversion about the mean (Grover diffusion). */
void diffusion() {
    double meanR = 0.0;
    double meanI = 0.0;
    for (int i = 0; i < DIM; i++) {
        meanR += re[i];
        meanI += im[i];
    }
    meanR = meanR / DIM;
    meanI = meanI / DIM;
    for (int i = 0; i < DIM; i++) {
        re[i] = 2.0 * meanR - re[i];
        im[i] = 2.0 * meanI - im[i];
    }
}

double probability(int state) {
    return re[state] * re[state] + im[state] * im[state];
}

double norm() {
    double s = 0.0;
    for (int i = 0; i < DIM; i++) s += probability(i);
    return s;
}

int main() {
    int marked = 101;  /* the state Grover should amplify */

    initState();
    /* uniform superposition */
    for (int q = 0; q < NQUBITS; q++) hadamard(q);

    /* entangle a few qubits like libquantum's gate batches */
    for (int q = 0; q + 1 < NQUBITS; q++) cnot(q, q + 1);
    for (int q = 0; q + 1 < NQUBITS; q++) cnot(q, q + 1);

    /* Grover iterations: about pi/4*sqrt(2^n) ~ 12 for n=8 */
    for (int it = 0; it < 8; it++) {
        oracle(marked);
        diffusion();
    }

    double pMarked = probability(marked);
    double n = norm();

    /* histogram of probability mass by leading 2 bits */
    double q0 = 0.0;
    double q1 = 0.0;
    double q2 = 0.0;
    double q3 = 0.0;
    for (int i = 0; i < DIM; i++) {
        double p = probability(i);
        int top = i >> 5;
        if (top == 0) q0 += p;
        if (top == 1) q1 += p;
        if (top == 2) q2 += p;
        if (top == 3) q3 += p;
    }

    print_str("quantumm p(marked)="); print_double(pMarked);
    print_str(" norm="); print_double(n);
    print_str(" q=["); print_double(q0);
    print_str(","); print_double(q1);
    print_str(","); print_double(q2);
    print_str(","); print_double(q3);
    print_str("]\n");
    return pMarked > 0.5 ? 0 : 1;
}
`

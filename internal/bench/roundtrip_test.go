package bench

import (
	"bytes"
	"strings"
	"testing"

	"hlfi/internal/interp"
	"hlfi/internal/ir"
	"hlfi/internal/minic"
)

// TestIRRoundTrip prints each benchmark's optimized IR, parses it back,
// and executes the parsed module: output must match the original golden
// run, and a second print must be byte-stable. This exercises the printer
// and parser against every IR construct the real workloads produce.
func TestIRRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles and runs all six benchmarks twice")
	}
	for _, b := range All() {
		mod, err := minic.Compile(b.Name, b.Source)
		if err != nil {
			t.Fatal(err)
		}
		text := mod.String()
		mod2, err := ir.Parse(text)
		if err != nil {
			t.Fatalf("%s: parse printed IR: %v", b.Name, err)
		}
		text2 := mod2.String()
		// Skip the "; module NAME" first line, which legitimately differs.
		if after(text) != after(text2) {
			t.Fatalf("%s: print->parse->print not stable", b.Name)
		}

		prep1, err := interp.Prepare(mod)
		if err != nil {
			t.Fatal(err)
		}
		prep2, err := interp.Prepare(mod2)
		if err != nil {
			t.Fatalf("%s: prepare parsed: %v", b.Name, err)
		}
		var out1, out2 bytes.Buffer
		rc1, err1 := interp.NewRunner(prep1, &out1).Run()
		rc2, err2 := interp.NewRunner(prep2, &out2).Run()
		if err1 != nil || err2 != nil {
			t.Fatalf("%s: run: %v / %v", b.Name, err1, err2)
		}
		if out1.String() != out2.String() || rc1 != rc2 {
			t.Fatalf("%s: parsed module behaves differently:\n%q\nvs\n%q",
				b.Name, out1.String(), out2.String())
		}
	}
}

func after(s string) string {
	idx := strings.Index(s, "\n")
	return s[idx:]
}

package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"time"

	"hlfi/internal/compile/irc"
	"hlfi/internal/compile/mc"
	"hlfi/internal/core"
	"hlfi/internal/fault"
	"hlfi/internal/llfi"
	"hlfi/internal/pinfi"
)

// CompiledArm is one level's interpreter-vs-compiled attempt timing.
type CompiledArm struct {
	InterpNsPerAttempt   float64 `json:"interp_ns_per_attempt"`
	CompiledNsPerAttempt float64 `json:"compiled_ns_per_attempt"`
	Speedup              float64 `json:"speedup"`
}

// CompiledMeasurement records the attempt-level and campaign-level
// comparison of the interpreters against the compiled execution engines.
// `make bench` serializes it to BENCH_compiled.json; CI gates on
// IR.Speedup (the BenchmarkInjectionAttempt shape).
type CompiledMeasurement struct {
	Benchmark string      `json:"benchmark"`
	Category  string      `json:"category"`
	Attempts  int         `json:"attempts"`
	IR        CompiledArm `json:"ir"`
	ASM       CompiledArm `json:"asm"`
	// Campaign wall-clock: one full cell (IR, CatAll) with the engines
	// off and on, including golden profiling and candidate scan.
	CampaignInterpMs   float64 `json:"campaign_interp_ms"`
	CampaignCompiledMs float64 `json:"campaign_compiled_ms"`
	CampaignSpeedup    float64 `json:"campaign_speedup"`
}

// bestOfTwo times n identical attempts twice and keeps the faster pass,
// the usual guard against a one-off scheduling stall polluting a ratio.
func bestOfTwo(n int, attempt func(i int)) time.Duration {
	best := time.Duration(0)
	for pass := 0; pass < 2; pass++ {
		start := time.Now()
		for i := 0; i < n; i++ {
			attempt(i)
		}
		if d := time.Since(start); pass == 0 || d < best {
			best = d
		}
	}
	return best
}

// MeasureCompiled times n injection attempts per level on one benchmark
// twice — on the interpreter and on the compiled engine — drawing
// identical seeded triggers in both arms, then runs one campaign cell
// each way for the wall-clock comparison. Snapshots stay off in the
// attempt arms so the ratio isolates the engine swap.
func MeasureCompiled(name string, n int, seed int64) (*CompiledMeasurement, error) {
	p, err := Build(name)
	if err != nil {
		return nil, err
	}

	m := &CompiledMeasurement{
		Benchmark: name,
		Category:  fault.CatAll.String(),
		Attempts:  n,
	}

	// IR level: interpreter vs compile-to-closure engine.
	irInterp, err := llfi.New(p.Prep, fault.CatAll)
	if err != nil {
		return nil, err
	}
	irComp, err := llfi.New(p.Prep, fault.CatAll)
	if err != nil {
		return nil, err
	}
	ircp, err := irc.Compile(p.Prep)
	if err != nil {
		return nil, fmt.Errorf("%s: irc compile: %w", name, err)
	}
	irComp.UseCompiled(ircp)
	attemptArm := func(inj *llfi.Injector) time.Duration {
		return bestOfTwo(n, func(i int) {
			rng := rand.New(rand.NewSource(seed + int64(i)))
			inj.InjectOne(rng)
		})
	}
	iD := attemptArm(irInterp)
	cD := attemptArm(irComp)
	m.IR = CompiledArm{
		InterpNsPerAttempt:   float64(iD.Nanoseconds()) / float64(n),
		CompiledNsPerAttempt: float64(cD.Nanoseconds()) / float64(n),
		Speedup:              float64(iD) / float64(cD),
	}

	// ASM level: simulator vs pre-decoded engine.
	asmInterp, err := pinfi.New(p.Asm, p.Prep.Layout.Image, p.Prep.Layout.Base, fault.CatAll)
	if err != nil {
		return nil, err
	}
	asmComp, err := pinfi.New(p.Asm, p.Prep.Layout.Image, p.Prep.Layout.Base, fault.CatAll)
	if err != nil {
		return nil, err
	}
	mccp, err := mc.Compile(p.Asm, p.Prep.Layout.Image, p.Prep.Layout.Base)
	if err != nil {
		return nil, fmt.Errorf("%s: mc compile: %w", name, err)
	}
	asmComp.UseCompiled(mccp)
	asmArm := func(inj *pinfi.Injector) time.Duration {
		return bestOfTwo(n, func(i int) {
			rng := rand.New(rand.NewSource(seed + int64(i)))
			inj.InjectOne(rng)
		})
	}
	aiD := asmArm(asmInterp)
	acD := asmArm(asmComp)
	m.ASM = CompiledArm{
		InterpNsPerAttempt:   float64(aiD.Nanoseconds()) / float64(n),
		CompiledNsPerAttempt: float64(acD.Nanoseconds()) / float64(n),
		Speedup:              float64(aiD) / float64(acD),
	}

	// Campaign wall-clock: one cell each way, engine compile included.
	campaign := func(compiled *core.CompiledConfig) (time.Duration, error) {
		start := time.Now()
		c := &core.Campaign{
			Prog: p, Level: fault.LevelIR, Category: fault.CatAll,
			N: n, Seed: seed, Compiled: compiled,
		}
		if _, err := c.Run(); err != nil {
			return 0, err
		}
		return time.Since(start), nil
	}
	offD, err := campaign(nil)
	if err != nil {
		return nil, err
	}
	onD, err := campaign(&core.CompiledConfig{})
	if err != nil {
		return nil, err
	}
	m.CampaignInterpMs = float64(offD.Nanoseconds()) / 1e6
	m.CampaignCompiledMs = float64(onD.Nanoseconds()) / 1e6
	m.CampaignSpeedup = float64(offD) / float64(onD)
	return m, nil
}

// WriteJSON writes the measurement as indented JSON.
func (m *CompiledMeasurement) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}

// String renders a one-line summary for logs.
func (m *CompiledMeasurement) String() string {
	return fmt.Sprintf("%s/%s: %d attempts, compiled %.2fx faster at IR (%.0f ns vs %.0f ns), %.2fx at ASM (%.0f ns vs %.0f ns); campaign %.2fx (%.0f ms vs %.0f ms)",
		m.Benchmark, m.Category, m.Attempts,
		m.IR.Speedup, m.IR.CompiledNsPerAttempt, m.IR.InterpNsPerAttempt,
		m.ASM.Speedup, m.ASM.CompiledNsPerAttempt, m.ASM.InterpNsPerAttempt,
		m.CampaignSpeedup, m.CampaignCompiledMs, m.CampaignInterpMs)
}

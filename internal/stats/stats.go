// Package stats provides the binomial-proportion statistics used to
// report fault-injection outcome rates with 95% confidence intervals
// (the error bars of the paper's Figure 4).
package stats

import "math"

// z95 is the two-sided 95% normal quantile.
const z95 = 1.959963984540054

// Proportion is an estimated rate with its sample size.
type Proportion struct {
	Successes int
	Trials    int
}

// Rate returns the point estimate (0 when there are no trials).
func (p Proportion) Rate() float64 {
	if p.Trials == 0 {
		return 0
	}
	return float64(p.Successes) / float64(p.Trials)
}

// WaldCI returns the normal-approximation 95% confidence half-width used
// by the paper's error bars.
func (p Proportion) WaldCI() float64 {
	if p.Trials == 0 {
		return 0
	}
	r := p.Rate()
	return z95 * math.Sqrt(r*(1-r)/float64(p.Trials))
}

// WilsonCI returns the Wilson-score 95% interval, which behaves well for
// rates near 0 or 1 (used for sanity checks on small cells).
func (p Proportion) WilsonCI() (lo, hi float64) {
	if p.Trials == 0 {
		return 0, 0
	}
	n := float64(p.Trials)
	r := p.Rate()
	z2 := z95 * z95
	den := 1 + z2/n
	center := (r + z2/(2*n)) / den
	half := z95 * math.Sqrt(r*(1-r)/n+z2/(4*n*n)) / den
	lo, hi = center-half, center+half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// Overlaps reports whether the Wald 95% intervals of two proportions
// overlap — the paper's "difference is within the measurement error
// threshold" criterion.
func Overlaps(a, b Proportion) bool {
	aLo, aHi := a.Rate()-a.WaldCI(), a.Rate()+a.WaldCI()
	bLo, bHi := b.Rate()-b.WaldCI(), b.Rate()+b.WaldCI()
	return aLo <= bHi && bLo <= aHi
}

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

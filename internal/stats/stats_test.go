package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRate(t *testing.T) {
	cases := []struct {
		p    Proportion
		want float64
	}{
		{Proportion{0, 0}, 0},
		{Proportion{0, 100}, 0},
		{Proportion{50, 100}, 0.5},
		{Proportion{100, 100}, 1},
	}
	for _, c := range cases {
		if got := c.p.Rate(); got != c.want {
			t.Errorf("Rate(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestWaldCIKnownValue(t *testing.T) {
	// p=0.5, n=1000: half-width = 1.96*sqrt(0.25/1000) ≈ 0.031.
	p := Proportion{500, 1000}
	ci := p.WaldCI()
	if math.Abs(ci-0.0310) > 0.0005 {
		t.Fatalf("WaldCI = %v, want ~0.031", ci)
	}
	// Degenerate proportions have zero Wald width.
	if (Proportion{0, 1000}).WaldCI() != 0 {
		t.Fatal("p=0 should give zero Wald width")
	}
	if (Proportion{0, 0}).WaldCI() != 0 {
		t.Fatal("no trials should give zero width")
	}
}

func TestWilsonCIBounds(t *testing.T) {
	lo, hi := Proportion{0, 50}.WilsonCI()
	if lo != 0 {
		t.Errorf("p=0 Wilson lo = %v", lo)
	}
	if hi <= 0 || hi > 0.15 {
		t.Errorf("p=0 n=50 Wilson hi = %v, want small positive", hi)
	}
	lo, hi = Proportion{50, 50}.WilsonCI()
	if hi != 1 || lo >= 1 || lo < 0.85 {
		t.Errorf("p=1 Wilson = [%v, %v]", lo, hi)
	}
	if lo, hi := (Proportion{0, 0}).WilsonCI(); lo != 0 || hi != 0 {
		t.Errorf("empty Wilson = [%v,%v]", lo, hi)
	}
}

// Property: Wilson intervals are within [0,1], contain the point estimate,
// and shrink as n grows.
func TestQuickWilson(t *testing.T) {
	f := func(s, n uint16) bool {
		trials := int(n%2000) + 1
		succ := int(s) % (trials + 1)
		p := Proportion{succ, trials}
		lo, hi := p.WilsonCI()
		if lo < 0 || hi > 1 || lo > hi {
			return false
		}
		r := p.Rate()
		if r < lo-1e-12 || r > hi+1e-12 {
			return false
		}
		// 4x the trials, same rate: narrower or equal interval.
		p4 := Proportion{succ * 4, trials * 4}
		lo4, hi4 := p4.WilsonCI()
		return hi4-lo4 <= hi-lo+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestOverlaps(t *testing.T) {
	a := Proportion{100, 1000} // 10% ± ~1.9%
	b := Proportion{115, 1000} // 11.5% ± ~2.0%
	if !Overlaps(a, b) {
		t.Error("close proportions should overlap")
	}
	c := Proportion{400, 1000} // 40%
	if Overlaps(a, c) {
		t.Error("distant proportions should not overlap")
	}
	if !Overlaps(a, a) {
		t.Error("identical proportions must overlap")
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("empty mean")
	}
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("mean = %v", got)
	}
}

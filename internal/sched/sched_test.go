package sched_test

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"hlfi/internal/sched"
)

// TestRunSerialOrder: one worker must execute tasks in index order.
func TestRunSerialOrder(t *testing.T) {
	var order []int
	tasks := make([]sched.Task, 10)
	for i := range tasks {
		i := i
		tasks[i] = func(context.Context) error {
			order = append(order, i)
			return nil
		}
	}
	if err := sched.Run(context.Background(), 1, tasks); err != nil {
		t.Fatal(err)
	}
	for i, got := range order {
		if got != i {
			t.Fatalf("serial order broken: %v", order)
		}
	}
	if len(order) != len(tasks) {
		t.Fatalf("ran %d of %d tasks", len(order), len(tasks))
	}
}

// TestRunBoundedConcurrency: never more than `workers` tasks in flight,
// and every task runs exactly once.
func TestRunBoundedConcurrency(t *testing.T) {
	const workers = 3
	var inFlight, peak, ran atomic.Int64
	tasks := make([]sched.Task, 50)
	for i := range tasks {
		tasks[i] = func(context.Context) error {
			n := inFlight.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			ran.Add(1)
			inFlight.Add(-1)
			return nil
		}
	}
	if err := sched.Run(context.Background(), workers, tasks); err != nil {
		t.Fatal(err)
	}
	if ran.Load() != int64(len(tasks)) {
		t.Fatalf("ran %d of %d tasks", ran.Load(), len(tasks))
	}
	if peak.Load() > workers {
		t.Fatalf("concurrency peaked at %d > %d workers", peak.Load(), workers)
	}
}

// TestRunCancelOnError: the first hard error skips all queued tasks and
// is reported back.
func TestRunCancelOnError(t *testing.T) {
	boom := errors.New("boom")
	var ran []int
	tasks := make([]sched.Task, 10)
	for i := range tasks {
		i := i
		tasks[i] = func(context.Context) error {
			ran = append(ran, i)
			if i == 3 {
				return boom
			}
			return nil
		}
	}
	err := sched.Run(context.Background(), 1, tasks)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if len(ran) != 4 {
		t.Fatalf("tasks after the failure still ran: %v", ran)
	}
}

// TestRunLowestIndexError: when several concurrent tasks fail, the
// reported error is the one with the lowest index among those recorded,
// regardless of completion order.
func TestRunLowestIndexError(t *testing.T) {
	var release sync.WaitGroup
	release.Add(1)
	errAt := func(i int) error { return errors.New(string(rune('a' + i))) }
	tasks := make([]sched.Task, 4)
	for i := range tasks {
		i := i
		tasks[i] = func(context.Context) error {
			release.Wait() // hold every task until all four are in flight
			return errAt(i)
		}
	}
	done := make(chan error, 1)
	go func() { done <- sched.Run(context.Background(), len(tasks), tasks) }()
	release.Done()
	if err := <-done; err == nil || err.Error() != "a" {
		t.Fatalf("err = %v, want the index-0 error %q", err, "a")
	}
}

// TestRunParentCancel: a cancelled parent context surfaces when no task
// errored.
func TestRunParentCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := sched.Run(ctx, 2, []sched.Task{func(context.Context) error { return nil }})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestSplit exercises the oversubscription clamp.
func TestSplit(t *testing.T) {
	cases := []struct {
		cells, perCell, budget int
		wantCells, wantPerCell int
	}{
		{1, 1, 8, 1, 1},   // serial stays serial
		{4, 1, 8, 4, 1},   // within budget, untouched
		{4, 2, 8, 4, 2},   // product exactly at budget
		{4, 8, 8, 4, 2},   // per-cell workers clamped first
		{16, 1, 8, 8, 1},  // cells alone clamped to budget
		{16, 16, 8, 4, 2}, // both clamped; perCell floors at 2, cells absorb
		{0, 0, 8, 1, 1},   // zero/negative normalize to 1
		{3, 3, 8, 3, 2},   // integer division rounds down
		{5, 1, 4, 4, 1},   // tiny budget
		{3, 2, 4, 2, 2},   // perCell>1 never drops to 1: cells shrink instead
		{1, 2, 1, 1, 2},   // discipline floor wins over a pathological budget
	}
	for _, c := range cases {
		gc, gp := sched.Split(c.cells, c.perCell, c.budget)
		if gc != c.wantCells || gp != c.wantPerCell {
			t.Errorf("Split(%d,%d,%d) = (%d,%d), want (%d,%d)",
				c.cells, c.perCell, c.budget, gc, gp, c.wantCells, c.wantPerCell)
		}
		// The seeding-discipline invariant: requested 1 stays 1, requested
		// >1 stays >1. Crossing the boundary would change the sample.
		if (c.perCell <= 1) != (gp == 1) {
			t.Errorf("Split(%d,%d,%d) crossed the seeding boundary: perCell %d -> %d",
				c.cells, c.perCell, c.budget, c.perCell, gp)
		}
	}
}

func TestBudget(t *testing.T) {
	if b := sched.Budget(); b < 4 {
		t.Fatalf("Budget() = %d, want >= 4", b)
	}
}

package sched

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

// countingObserver tracks start/finish pairing and the in-flight peak.
type countingObserver struct {
	mu       sync.Mutex
	started  []int
	finished []int
	inFlight int64
	peak     int64
}

func (o *countingObserver) TaskStarted(i int) {
	o.mu.Lock()
	o.started = append(o.started, i)
	o.mu.Unlock()
	n := atomic.AddInt64(&o.inFlight, 1)
	for {
		p := atomic.LoadInt64(&o.peak)
		if n <= p || atomic.CompareAndSwapInt64(&o.peak, p, n) {
			break
		}
	}
}

func (o *countingObserver) TaskFinished(i int) {
	atomic.AddInt64(&o.inFlight, -1)
	o.mu.Lock()
	o.finished = append(o.finished, i)
	o.mu.Unlock()
}

func TestRunObservedLifecycle(t *testing.T) {
	const n = 20
	obs := &countingObserver{}
	var ran int64
	tasks := make([]Task, n)
	for i := range tasks {
		tasks[i] = func(context.Context) error {
			atomic.AddInt64(&ran, 1)
			return nil
		}
	}
	if err := RunObserved(context.Background(), 4, tasks, obs); err != nil {
		t.Fatal(err)
	}
	if ran != n {
		t.Fatalf("ran %d tasks, want %d", ran, n)
	}
	if len(obs.started) != n || len(obs.finished) != n {
		t.Fatalf("observer saw %d starts / %d finishes, want %d each",
			len(obs.started), len(obs.finished), n)
	}
	if atomic.LoadInt64(&obs.inFlight) != 0 {
		t.Errorf("in-flight gauge did not return to zero: %d", obs.inFlight)
	}
	if obs.peak > 4 {
		t.Errorf("in-flight peak %d exceeds worker bound 4", obs.peak)
	}
	seen := map[int]bool{}
	for _, i := range obs.started {
		if seen[i] {
			t.Fatalf("task %d started twice", i)
		}
		seen[i] = true
	}
}

func TestRunObservedFinishFiresOnError(t *testing.T) {
	obs := &countingObserver{}
	boom := errors.New("boom")
	tasks := []Task{
		func(context.Context) error { return nil },
		func(context.Context) error { return boom },
	}
	if err := RunObserved(context.Background(), 1, tasks, obs); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if len(obs.finished) != 2 {
		t.Errorf("finished = %v, want both tasks (error included)", obs.finished)
	}
}

func TestRunObservedNilObserver(t *testing.T) {
	tasks := []Task{func(context.Context) error { return nil }}
	if err := RunObserved(context.Background(), 2, tasks, nil); err != nil {
		t.Fatal(err)
	}
}

// Package sched provides the bounded worker pool that runs whole
// campaign cells concurrently. Cells of a study are independent given
// their per-cell seeds, so the scheduler only has to bound concurrency,
// cancel on the first hard error, and let the caller merge results
// deterministically (tasks write into index-addressed slots; nothing
// here depends on completion order).
package sched

import (
	"context"
	"runtime"
	"sync"
)

// Task is one unit of schedulable work. The context is cancelled after
// any task in the same Run returns a non-nil error; long tasks may poll
// it, short ones (a campaign cell) can ignore it.
type Task func(ctx context.Context) error

// Observer receives task lifecycle notifications from RunObserved. The
// callbacks run on worker goroutines (implementations must be safe for
// concurrent use) and must not block: they exist for live progress
// gauges, not for control flow.
type Observer interface {
	// TaskStarted fires just before task i begins executing.
	TaskStarted(i int)
	// TaskFinished fires after task i returns, regardless of error.
	TaskFinished(i int)
}

// Run executes tasks over at most workers goroutines and waits for them.
// Tasks are dispatched in index order; with workers == 1 this degenerates
// to the exact serial loop. The first task error cancels the pool:
// running tasks finish, queued ones are skipped. The returned error is
// the recorded error with the lowest task index (deterministic regardless
// of scheduling), or the parent context's error if it was cancelled with
// no task error.
func Run(ctx context.Context, workers int, tasks []Task) error {
	return RunObserved(ctx, workers, tasks, nil)
}

// RunObserved is Run with an optional lifecycle observer (nil behaves
// exactly like Run). Observation never changes scheduling: dispatch
// order, cancellation, and the returned error are identical with or
// without it.
func RunObserved(ctx context.Context, workers int, tasks []Task, obs Observer) error {
	if len(tasks) == 0 {
		return ctx.Err()
	}
	if workers > len(tasks) {
		workers = len(tasks)
	}
	if workers < 1 {
		workers = 1
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		mu   sync.Mutex
		next int
		wg   sync.WaitGroup
	)
	errs := make([]error, len(tasks))
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= len(tasks) || ctx.Err() != nil {
					return
				}
				if obs != nil {
					obs.TaskStarted(i)
				}
				err := tasks[i](ctx)
				if obs != nil {
					obs.TaskFinished(i)
				}
				if err != nil {
					errs[i] = err
					cancel()
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return ctx.Err()
}

// Budget is the study-wide goroutine budget: enough to keep every
// processor busy with a little slack for cells blocked on their final
// merge, and never so small that a single-core box cannot interleave a
// handful of cells (goroutines are cheap; only running threads are
// bounded by GOMAXPROCS).
func Budget() int {
	b := 2 * runtime.GOMAXPROCS(0)
	if b < 4 {
		b = 4
	}
	return b
}

// Split clamps a (cells-in-flight, attempt-workers-per-cell) pair so the
// product — the total number of injection goroutines — stays within
// budget. Cell-level parallelism wins over attempt-level parallelism:
// cells are coarser units with no synchronization between them, so when
// the two compose past the budget the per-cell worker count is reduced
// first.
//
// The clamp must never change study results, so it preserves each side's
// seeding discipline: a requested perCell of 1 (the sequential stream)
// stays 1, and a requested perCell > 1 (per-attempt seeding, whose
// sample is identical for every worker count >= 2) is never reduced
// below 2 — crossing back to 1 would silently switch the cell to the
// sequential sample. On pathologically small budgets that floor wins
// over the budget.
func Split(cells, perCell, budget int) (clampedCells, clampedPerCell int) {
	if cells < 1 {
		cells = 1
	}
	if perCell < 1 {
		perCell = 1
	}
	if budget < 1 {
		budget = 1
	}
	if cells > budget {
		cells = budget
	}
	if cells*perCell > budget {
		clamped := budget / cells
		if perCell > 1 && clamped < 2 {
			clamped = 2
			cells = budget / clamped
			if cells < 1 {
				cells = 1
			}
		}
		perCell = clamped
	}
	return cells, perCell
}

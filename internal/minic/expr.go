package minic

import (
	"fmt"

	"hlfi/internal/interp"
	"hlfi/internal/ir"
)

var cmpPreds = map[string]ir.Pred{
	"==": ir.PredEQ, "!=": ir.PredNE,
	"<": ir.PredLT, "<=": ir.PredLE, ">": ir.PredGT, ">=": ir.PredGE,
}

var intBinOps = map[string]ir.Op{
	"+": ir.OpAdd, "-": ir.OpSub, "*": ir.OpMul, "/": ir.OpSDiv, "%": ir.OpSRem,
	"&": ir.OpAnd, "|": ir.OpOr, "^": ir.OpXor, "<<": ir.OpShl, ">>": ir.OpAShr,
}

var floatBinOps = map[string]ir.Op{
	"+": ir.OpFAdd, "-": ir.OpFSub, "*": ir.OpFMul, "/": ir.OpFDiv,
}

// rvalue lowers e to a value. Array-typed expressions decay to a pointer
// to their first element; void calls yield (nil, Void).
func (c *compiler) rvalue(e Expr) (ir.Value, *ir.Type, error) {
	switch x := e.(type) {
	case *IntLit:
		if x.IsLong {
			return ir.ConstInt(ir.I64, x.Val), ir.I64, nil
		}
		return ir.ConstInt(ir.I32, x.Val), ir.I32, nil

	case *FloatLit:
		return ir.ConstFloat(x.Val), ir.F64, nil

	case *StrLit:
		g := c.internString(x.Val)
		p := c.b.GEP(ir.PointerTo(ir.I8), g, ir.ConstInt(ir.I64, 0), ir.ConstInt(ir.I64, 0))
		return p, p.Ty, nil

	case *Ident:
		bind := c.lookup(x.Name)
		if bind == nil {
			return nil, nil, c.errf(e, "undeclared identifier %s", x.Name)
		}
		return c.loadOrDecay(bind.ptr, bind.ty, e)

	case *Unary:
		return c.unary(x)

	case *Postfix:
		ptr, ty, err := c.lvalue(x.X)
		if err != nil {
			return nil, nil, err
		}
		old := c.b.Load(ptr)
		nv, err := c.stepValue(e, old, ty, x.Op == "++")
		if err != nil {
			return nil, nil, err
		}
		c.b.Store(nv, ptr)
		return old, ty, nil

	case *Binary:
		return c.binary(x)

	case *Assign:
		return c.assign(x)

	case *Cond:
		return c.condExpr(x)

	case *Call:
		return c.call(x)

	case *Index:
		ptr, ty, err := c.indexAddr(x)
		if err != nil {
			return nil, nil, err
		}
		return c.loadOrDecay(ptr, ty, e)

	case *Member:
		ptr, ty, err := c.memberAddr(x)
		if err != nil {
			return nil, nil, err
		}
		return c.loadOrDecay(ptr, ty, e)

	case *CastExpr:
		ty, err := c.resolveType(x.Type)
		if err != nil {
			return nil, nil, err
		}
		v, vt, err := c.rvalue(x.X)
		if err != nil {
			return nil, nil, err
		}
		cv, err := c.convertExplicit(e, v, vt, ty)
		if err != nil {
			return nil, nil, err
		}
		return cv, ty, nil

	case *SizeofExpr:
		ty, err := c.resolveType(x.Type)
		if err != nil {
			return nil, nil, err
		}
		return ir.ConstInt(ir.I64, int64(ty.Size())), ir.I64, nil
	}
	return nil, nil, c.errf(e, "unsupported expression")
}

// loadOrDecay turns an address into an rvalue: arrays decay, structs stay
// addresses (only usable via member access), scalars load.
func (c *compiler) loadOrDecay(ptr ir.Value, ty *ir.Type, e Expr) (ir.Value, *ir.Type, error) {
	switch ty.Kind {
	case ir.KindArray:
		p := c.b.GEP(ir.PointerTo(ty.Elem), ptr, ir.ConstInt(ir.I64, 0), ir.ConstInt(ir.I64, 0))
		return p, p.Ty, nil
	case ir.KindStruct:
		return nil, nil, c.errf(e, "struct value used directly (take a pointer or access a field)")
	default:
		ld := c.b.Load(ptr)
		return ld, ty, nil
	}
}

// lvalue lowers e to an address (a pointer to the storage of e).
func (c *compiler) lvalue(e Expr) (ir.Value, *ir.Type, error) {
	switch x := e.(type) {
	case *Ident:
		bind := c.lookup(x.Name)
		if bind == nil {
			return nil, nil, c.errf(e, "undeclared identifier %s", x.Name)
		}
		return bind.ptr, bind.ty, nil
	case *Unary:
		if x.Op == "*" {
			v, ty, err := c.rvalue(x.X)
			if err != nil {
				return nil, nil, err
			}
			if !ty.IsPtr() {
				return nil, nil, c.errf(e, "dereference of non-pointer %s", ty)
			}
			return v, ty.Elem, nil
		}
	case *Index:
		return c.indexAddr(x)
	case *Member:
		return c.memberAddr(x)
	}
	return nil, nil, c.errf(e, "expression is not assignable")
}

// isPureChain reports whether e is pure storage navigation (no side
// effects other than index subexpressions, which this path evaluates
// exactly once). For such bases, arrays are indexed in place with a
// single getelementptr, the way production C compilers lower a[i].
func (c *compiler) isPureChain(e Expr) bool {
	switch x := e.(type) {
	case *Ident:
		return true
	case *Member:
		return c.isPureChain(x.X)
	case *Index:
		return c.isPureChain(x.X)
	default:
		return false
	}
}

func (c *compiler) indexAddr(x *Index) (ir.Value, *ir.Type, error) {
	if c.isPureChain(x.X) {
		ptr, ty, err := c.lvalue(x.X)
		if err != nil {
			return nil, nil, err
		}
		idx, it, err := c.rvalue(x.I)
		if err != nil {
			return nil, nil, err
		}
		idx, err = c.convert(x.I, idx, it, ir.I64)
		if err != nil {
			return nil, nil, err
		}
		switch {
		case ty.Kind == ir.KindArray:
			p := c.b.GEP(ir.PointerTo(ty.Elem), ptr, ir.ConstInt(ir.I64, 0), idx)
			return p, ty.Elem, nil
		case ty.IsPtr():
			base := c.b.Load(ptr)
			p := c.b.GEP(ty, base, idx)
			return p, ty.Elem, nil
		default:
			return nil, nil, c.errf(x, "indexing non-pointer %s", ty)
		}
	}
	base, ty, err := c.rvalue(x.X) // arrays decay here
	if err != nil {
		return nil, nil, err
	}
	if !ty.IsPtr() {
		return nil, nil, c.errf(x, "indexing non-pointer %s", ty)
	}
	idx, it, err := c.rvalue(x.I)
	if err != nil {
		return nil, nil, err
	}
	idx, err = c.convert(x.I, idx, it, ir.I64)
	if err != nil {
		return nil, nil, err
	}
	p := c.b.GEP(ty, base, idx)
	return p, ty.Elem, nil
}

func (c *compiler) memberAddr(x *Member) (ir.Value, *ir.Type, error) {
	var base ir.Value
	var sty *ir.Type
	if x.Arrow {
		v, ty, err := c.rvalue(x.X)
		if err != nil {
			return nil, nil, err
		}
		if !ty.IsPtr() || ty.Elem.Kind != ir.KindStruct {
			return nil, nil, c.errf(x, "-> on non-struct-pointer %s", ty)
		}
		base, sty = v, ty.Elem
	} else {
		ptr, ty, err := c.lvalue(x.X)
		if err != nil {
			return nil, nil, err
		}
		if ty.Kind != ir.KindStruct {
			return nil, nil, c.errf(x, ". on non-struct %s", ty)
		}
		base, sty = ptr, ty
	}
	idxMap, ok := c.fields[sty.TagName]
	if !ok {
		return nil, nil, c.errf(x, "unknown struct %s", sty.TagName)
	}
	fi, ok := idxMap[x.Name]
	if !ok {
		return nil, nil, c.errf(x, "struct %s has no field %s", sty.TagName, x.Name)
	}
	ft := sty.Fields[fi]
	p := c.b.GEP(ir.PointerTo(ft), base, ir.ConstInt(ir.I64, 0), ir.ConstInt(ir.I32, int64(fi)))
	return p, ft, nil
}

func (c *compiler) unary(x *Unary) (ir.Value, *ir.Type, error) {
	switch x.Op {
	case "-":
		v, ty, err := c.rvalue(x.X)
		if err != nil {
			return nil, nil, err
		}
		if ty.IsFloat() {
			r := c.b.Binary(ir.OpFSub, ir.ConstFloat(0), v)
			return r, ir.F64, nil
		}
		if !ty.IsInt() {
			return nil, nil, c.errf(x, "negation of %s", ty)
		}
		v, ty, err = c.promoteInt(x.X, v, ty)
		if err != nil {
			return nil, nil, err
		}
		r := c.b.Binary(ir.OpSub, ir.ConstInt(ty, 0), v)
		return r, ty, nil

	case "~":
		v, ty, err := c.rvalue(x.X)
		if err != nil {
			return nil, nil, err
		}
		if !ty.IsInt() {
			return nil, nil, c.errf(x, "~ on %s", ty)
		}
		v, ty, err = c.promoteInt(x.X, v, ty)
		if err != nil {
			return nil, nil, err
		}
		r := c.b.Binary(ir.OpXor, v, ir.ConstInt(ty, -1))
		return r, ty, nil

	case "!":
		v, ty, err := c.rvalue(x.X)
		if err != nil {
			return nil, nil, err
		}
		t, err := c.truthyI1(x, v, ty)
		if err != nil {
			return nil, nil, err
		}
		// !x is 1 when x is falsy.
		inv := c.b.ICmp(ir.PredEQ, t, ir.ConstInt(ir.I1, 0))
		z := c.b.Cast(ir.OpZExt, inv, ir.I32)
		return z, ir.I32, nil

	case "*":
		v, ty, err := c.rvalue(x.X)
		if err != nil {
			return nil, nil, err
		}
		if !ty.IsPtr() {
			return nil, nil, c.errf(x, "dereference of non-pointer %s", ty)
		}
		return c.loadOrDecay(v, ty.Elem, x)

	case "&":
		ptr, ty, err := c.lvalue(x.X)
		if err != nil {
			return nil, nil, err
		}
		// The address of a T-typed slot has type T*.
		_ = ty
		return ptr, ptr.Type(), nil

	case "++", "--":
		ptr, ty, err := c.lvalue(x.X)
		if err != nil {
			return nil, nil, err
		}
		old := c.b.Load(ptr)
		nv, err := c.stepValue(x, old, ty, x.Op == "++")
		if err != nil {
			return nil, nil, err
		}
		c.b.Store(nv, ptr)
		return nv, ty, nil
	}
	return nil, nil, c.errf(x, "unsupported unary %s", x.Op)
}

// stepValue computes v±1 respecting pointer arithmetic.
func (c *compiler) stepValue(e Expr, v ir.Value, ty *ir.Type, up bool) (ir.Value, error) {
	switch {
	case ty.IsPtr():
		d := int64(1)
		if !up {
			d = -1
		}
		return c.b.GEP(ty, v, ir.ConstInt(ir.I64, d)), nil
	case ty.IsFloat():
		op := ir.OpFAdd
		if !up {
			op = ir.OpFSub
		}
		return c.b.Binary(op, v, ir.ConstFloat(1)), nil
	case ty.IsInt():
		op := ir.OpAdd
		if !up {
			op = ir.OpSub
		}
		return c.b.Binary(op, v, ir.ConstInt(ty, 1)), nil
	}
	return nil, c.errf(e, "cannot increment %s", ty)
}

func (c *compiler) binary(x *Binary) (ir.Value, *ir.Type, error) {
	switch x.Op {
	case "&&", "||":
		return c.logical(x)
	}
	if p, ok := cmpPreds[x.Op]; ok {
		t, err := c.compareI1(x, p)
		if err != nil {
			return nil, nil, err
		}
		z := c.b.Cast(ir.OpZExt, t, ir.I32)
		return z, ir.I32, nil
	}

	lv, lt, err := c.rvalue(x.L)
	if err != nil {
		return nil, nil, err
	}
	rv, rt, err := c.rvalue(x.R)
	if err != nil {
		return nil, nil, err
	}

	// Pointer arithmetic.
	if lt.IsPtr() || rt.IsPtr() {
		return c.pointerArith(x, lv, lt, rv, rt)
	}
	if lt.Kind == ir.KindVoid || rt.Kind == ir.KindVoid {
		return nil, nil, c.errf(x, "void value in expression")
	}

	// Shifts keep the promoted left type.
	if x.Op == "<<" || x.Op == ">>" {
		if !lt.IsInt() || !rt.IsInt() {
			return nil, nil, c.errf(x, "shift on non-integers")
		}
		lv, lt, err = c.promoteInt(x.L, lv, lt)
		if err != nil {
			return nil, nil, err
		}
		rv, err = c.convert(x.R, rv, rt, lt)
		if err != nil {
			return nil, nil, err
		}
		r := c.b.Binary(intBinOps[x.Op], lv, rv)
		return r, lt, nil
	}

	common := arithCommonType(lt, rt)
	lv, err = c.convert(x.L, lv, lt, common)
	if err != nil {
		return nil, nil, err
	}
	rv, err = c.convert(x.R, rv, rt, common)
	if err != nil {
		return nil, nil, err
	}
	if common.IsFloat() {
		op, ok := floatBinOps[x.Op]
		if !ok {
			return nil, nil, c.errf(x, "operator %s not defined on double (use fmod for %%)", x.Op)
		}
		r := c.b.Binary(op, lv, rv)
		return r, common, nil
	}
	op, ok := intBinOps[x.Op]
	if !ok {
		return nil, nil, c.errf(x, "unsupported operator %s", x.Op)
	}
	r := c.b.Binary(op, lv, rv)
	return r, common, nil
}

func (c *compiler) pointerArith(x *Binary, lv ir.Value, lt *ir.Type, rv ir.Value, rt *ir.Type) (ir.Value, *ir.Type, error) {
	switch x.Op {
	case "+":
		if lt.IsPtr() && rt.IsInt() {
			idx, err := c.convert(x.R, rv, rt, ir.I64)
			if err != nil {
				return nil, nil, err
			}
			p := c.b.GEP(lt, lv, idx)
			return p, lt, nil
		}
		if rt.IsPtr() && lt.IsInt() {
			idx, err := c.convert(x.L, lv, lt, ir.I64)
			if err != nil {
				return nil, nil, err
			}
			p := c.b.GEP(rt, rv, idx)
			return p, rt, nil
		}
	case "-":
		if lt.IsPtr() && rt.IsInt() {
			idx, err := c.convert(x.R, rv, rt, ir.I64)
			if err != nil {
				return nil, nil, err
			}
			neg := c.b.Binary(ir.OpSub, ir.ConstInt(ir.I64, 0), idx)
			p := c.b.GEP(lt, lv, neg)
			return p, lt, nil
		}
		if lt.IsPtr() && rt.IsPtr() {
			li := c.b.Cast(ir.OpPtrToInt, lv, ir.I64)
			ri := c.b.Cast(ir.OpPtrToInt, rv, ir.I64)
			diff := c.b.Binary(ir.OpSub, li, ri)
			esz := lt.Elem.Size()
			if esz > 1 {
				q := c.b.Binary(ir.OpSDiv, diff, ir.ConstInt(ir.I64, int64(esz)))
				return q, ir.I64, nil
			}
			return diff, ir.I64, nil
		}
	}
	return nil, nil, c.errf(x, "invalid pointer arithmetic %s %s %s", lt, x.Op, rt)
}

// compareI1 lowers a comparison to an i1.
func (c *compiler) compareI1(x *Binary, p ir.Pred) (*ir.Instr, error) {
	lv, lt, err := c.rvalue(x.L)
	if err != nil {
		return nil, err
	}
	rv, rt, err := c.rvalue(x.R)
	if err != nil {
		return nil, err
	}
	switch {
	case lt.IsPtr() || rt.IsPtr():
		// Null constants and pointer-pointer comparisons.
		if lt.IsPtr() && rt.IsInt() {
			rv, err = c.convertExplicit(x.R, rv, rt, lt)
			rt = lt
		} else if rt.IsPtr() && lt.IsInt() {
			lv, err = c.convertExplicit(x.L, lv, lt, rt)
			lt = rt
		} else if !lt.Equal(rt) {
			rv = c.b.Cast(ir.OpBitcast, rv, lt)
			rt = lt
		}
		if err != nil {
			return nil, err
		}
		return c.b.ICmp(unsignedPred(p), lv, rv), nil
	default:
		common := arithCommonType(lt, rt)
		lv, err = c.convert(x.L, lv, lt, common)
		if err != nil {
			return nil, err
		}
		rv, err = c.convert(x.R, rv, rt, common)
		if err != nil {
			return nil, err
		}
		if common.IsFloat() {
			return c.b.FCmp(p, lv, rv), nil
		}
		return c.b.ICmp(p, lv, rv), nil
	}
}

func unsignedPred(p ir.Pred) ir.Pred {
	switch p {
	case ir.PredLT:
		return ir.PredULT
	case ir.PredLE:
		return ir.PredULE
	case ir.PredGT:
		return ir.PredUGT
	case ir.PredGE:
		return ir.PredUGE
	default:
		return p
	}
}

// logical lowers && and || as values (0/1 of type int) with short-circuit
// evaluation.
func (c *compiler) logical(x *Binary) (ir.Value, *ir.Type, error) {
	rhsBlk := c.newBlock("logic.rhs")
	endBlk := c.newBlock("logic.end")

	lv, lt, err := c.rvalue(x.L)
	if err != nil {
		return nil, nil, err
	}
	lc, err := c.truthyI1(x.L, lv, lt)
	if err != nil {
		return nil, nil, err
	}
	shortVal := int64(0)
	if x.Op == "&&" {
		c.b.CondBr(lc, rhsBlk, endBlk)
	} else {
		shortVal = 1
		c.b.CondBr(lc, endBlk, rhsBlk)
	}
	shortBlk := c.b.Block()

	c.b.SetBlock(rhsBlk)
	rv, rt, err := c.rvalue(x.R)
	if err != nil {
		return nil, nil, err
	}
	rc, err := c.truthyI1(x.R, rv, rt)
	if err != nil {
		return nil, nil, err
	}
	rz := c.b.Cast(ir.OpZExt, rc, ir.I32)
	rhsEnd := c.b.Block()
	c.b.Br(endBlk)

	c.b.SetBlock(endBlk)
	phi := c.b.Phi(ir.I32)
	ir.AddIncoming(phi, ir.ConstInt(ir.I32, shortVal), shortBlk)
	ir.AddIncoming(phi, rz, rhsEnd)
	return phi, ir.I32, nil
}

// condExpr lowers c ? a : b.
func (c *compiler) condExpr(x *Cond) (ir.Value, *ir.Type, error) {
	aBlk := c.newBlock("cond.a")
	bBlk := c.newBlock("cond.b")
	endBlk := c.newBlock("cond.end")
	if err := c.condBranch(x.C, aBlk, bBlk); err != nil {
		return nil, nil, err
	}
	c.b.SetBlock(aBlk)
	av, at, err := c.rvalue(x.A)
	if err != nil {
		return nil, nil, err
	}
	aEnd := c.b.Block()

	c.b.SetBlock(bBlk)
	bv, bt, err := c.rvalue(x.B)
	if err != nil {
		return nil, nil, err
	}
	bEnd := c.b.Block()

	var common *ir.Type
	switch {
	case at.IsPtr() && bt.IsPtr():
		common = at
	case at.IsPtr() || bt.IsPtr():
		return nil, nil, c.errf(x, "?: mixes pointer and non-pointer")
	default:
		common = arithCommonType(at, bt)
	}

	c.b.SetBlock(aEnd)
	av, err = c.convertMixed(x.A, av, at, common)
	if err != nil {
		return nil, nil, err
	}
	c.b.Br(endBlk)
	aEnd = c.b.Block()

	c.b.SetBlock(bEnd)
	bv, err = c.convertMixed(x.B, bv, bt, common)
	if err != nil {
		return nil, nil, err
	}
	c.b.Br(endBlk)
	bEnd = c.b.Block()

	c.b.SetBlock(endBlk)
	phi := c.b.Phi(common)
	ir.AddIncoming(phi, av, aEnd)
	ir.AddIncoming(phi, bv, bEnd)
	return phi, common, nil
}

// convertMixed allows pointer bitcasts in addition to numeric conversions
// (used by ?: merging).
func (c *compiler) convertMixed(e Expr, v ir.Value, from, to *ir.Type) (ir.Value, error) {
	if from.IsPtr() && to.IsPtr() && !from.Equal(to) {
		return c.b.Cast(ir.OpBitcast, v, to), nil
	}
	return c.convert(e, v, from, to)
}

func (c *compiler) assign(x *Assign) (ir.Value, *ir.Type, error) {
	ptr, ty, err := c.lvalue(x.L)
	if err != nil {
		return nil, nil, err
	}
	if ty.Kind == ir.KindArray || ty.Kind == ir.KindStruct {
		return nil, nil, c.errf(x, "cannot assign aggregate %s", ty)
	}
	if x.Op == "" {
		rv, rt, err := c.rvalue(x.R)
		if err != nil {
			return nil, nil, err
		}
		rv, err = c.convertAssign(x.R, rv, rt, ty)
		if err != nil {
			return nil, nil, err
		}
		c.b.Store(rv, ptr)
		return rv, ty, nil
	}
	// Compound assignment: load, compute, store.
	old := c.b.Load(ptr)
	rv, rt, err := c.rvalue(x.R)
	if err != nil {
		return nil, nil, err
	}
	var nv ir.Value
	switch {
	case ty.IsPtr():
		if x.Op != "+" && x.Op != "-" {
			return nil, nil, c.errf(x, "pointer %s= unsupported", x.Op)
		}
		idx, err := c.convert(x.R, rv, rt, ir.I64)
		if err != nil {
			return nil, nil, err
		}
		if x.Op == "-" {
			idx = c.b.Binary(ir.OpSub, ir.ConstInt(ir.I64, 0), idx)
		}
		nv = c.b.GEP(ty, old, idx)
	case ty.IsFloat():
		op, ok := floatBinOps[x.Op]
		if !ok {
			return nil, nil, c.errf(x, "double %s= unsupported", x.Op)
		}
		rv, err = c.convert(x.R, rv, rt, ir.F64)
		if err != nil {
			return nil, nil, err
		}
		nv = c.b.Binary(op, old, rv)
	default:
		op, ok := intBinOps[x.Op]
		if !ok {
			return nil, nil, c.errf(x, "%s= unsupported", x.Op)
		}
		// Compute in the promoted common type, then narrow back.
		lv, lt, err := c.promoteInt(x.L, old, ty)
		if err != nil {
			return nil, nil, err
		}
		var common *ir.Type
		if x.Op == "<<" || x.Op == ">>" {
			common = lt
		} else if rt.IsFloat() {
			common = ir.F64
		} else {
			common = arithCommonType(lt, rt)
		}
		if common.IsFloat() {
			fop, ok := floatBinOps[x.Op]
			if !ok {
				return nil, nil, c.errf(x, "double %s= unsupported", x.Op)
			}
			lv, err = c.convert(x.L, lv, lt, ir.F64)
			if err != nil {
				return nil, nil, err
			}
			rv, err = c.convert(x.R, rv, rt, ir.F64)
			if err != nil {
				return nil, nil, err
			}
			f := c.b.Binary(fop, lv, rv)
			nv, err = c.convertAssign(x, f, ir.F64, ty)
			if err != nil {
				return nil, nil, err
			}
		} else {
			lv, err = c.convert(x.L, lv, lt, common)
			if err != nil {
				return nil, nil, err
			}
			rv, err = c.convert(x.R, rv, rt, common)
			if err != nil {
				return nil, nil, err
			}
			r := c.b.Binary(op, lv, rv)
			nv, err = c.convertAssign(x, r, common, ty)
			if err != nil {
				return nil, nil, err
			}
		}
	}
	c.b.Store(nv, ptr)
	return nv, ty, nil
}

func (c *compiler) call(x *Call) (ir.Value, *ir.Type, error) {
	if sig, ok := interp.Builtins[x.Name]; ok {
		return c.callBuiltin(x, sig)
	}
	fn := c.mod.Func(x.Name)
	if fn == nil {
		return nil, nil, c.errf(x, "call to undeclared function %s", x.Name)
	}
	if len(x.Args) != len(fn.Sig.Params) {
		return nil, nil, c.errf(x, "%s expects %d arguments, got %d", x.Name, len(fn.Sig.Params), len(x.Args))
	}
	args := make([]ir.Value, len(x.Args))
	for i, a := range x.Args {
		v, vt, err := c.rvalue(a)
		if err != nil {
			return nil, nil, err
		}
		v, err = c.convertAssign(a, v, vt, fn.Sig.Params[i])
		if err != nil {
			return nil, nil, err
		}
		args[i] = v
	}
	callIn := c.b.Call(fn, args...)
	if fn.Sig.Return.Kind == ir.KindVoid {
		return nil, ir.Void, nil
	}
	return callIn, fn.Sig.Return, nil
}

func builtinType(ch byte) *ir.Type {
	switch ch {
	case 'i':
		return ir.I32
	case 'l':
		return ir.I64
	case 'd':
		return ir.F64
	case 'p':
		return ir.PointerTo(ir.I8)
	default:
		return ir.Void
	}
}

func (c *compiler) callBuiltin(x *Call, sig interp.BuiltinSig) (ir.Value, *ir.Type, error) {
	if len(x.Args) != len(sig.Params) {
		return nil, nil, c.errf(x, "%s expects %d arguments, got %d", x.Name, len(sig.Params), len(x.Args))
	}
	args := make([]ir.Value, len(x.Args))
	for i, a := range x.Args {
		want := builtinType(sig.Params[i])
		v, vt, err := c.rvalue(a)
		if err != nil {
			return nil, nil, err
		}
		v, err = c.convertAssign(a, v, vt, want)
		if err != nil {
			return nil, nil, err
		}
		args[i] = v
	}
	ret := builtinType(sig.Ret)
	callIn := c.b.CallBuiltin(x.Name, ret, args...)
	if ret.Kind == ir.KindVoid {
		return nil, ir.Void, nil
	}
	return callIn, ret, nil
}

// truthyI1 converts a value to an i1 "is nonzero" flag.
func (c *compiler) truthyI1(e Expr, v ir.Value, ty *ir.Type) (ir.Value, error) {
	switch {
	case ty == nil || ty.Kind == ir.KindVoid:
		return nil, c.errf(e, "void value used as condition")
	case ty.IsFloat():
		return c.b.FCmp(ir.PredNE, v, ir.ConstFloat(0)), nil
	case ty.IsPtr():
		return c.b.ICmp(ir.PredNE, v, ir.ConstNull(ty)), nil
	case ty.IsInt():
		return c.b.ICmp(ir.PredNE, v, ir.ConstInt(ty, 0)), nil
	}
	return nil, c.errf(e, "%s used as condition", ty)
}

// promoteInt applies C integer promotion (everything below int widens to
// int).
func (c *compiler) promoteInt(e Expr, v ir.Value, ty *ir.Type) (ir.Value, *ir.Type, error) {
	if !ty.IsInt() {
		return nil, nil, c.errf(e, "integer expected, found %s", ty)
	}
	if ty.Bits >= 32 {
		return v, ty, nil
	}
	nv, err := c.convert(e, v, ty, ir.I32)
	if err != nil {
		return nil, nil, err
	}
	return nv, ir.I32, nil
}

// arithCommonType implements the usual arithmetic conversions.
func arithCommonType(a, b *ir.Type) *ir.Type {
	if a.IsFloat() || b.IsFloat() {
		return ir.F64
	}
	bits := 32
	if a.IsInt() && a.Bits > bits {
		bits = a.Bits
	}
	if b.IsInt() && b.Bits > bits {
		bits = b.Bits
	}
	return ir.IntType(bits)
}

// convert performs implicit conversions between arithmetic types and
// identical pointers.
func (c *compiler) convert(e Expr, v ir.Value, from, to *ir.Type) (ir.Value, error) {
	if from.Equal(to) {
		return v, nil
	}
	switch {
	case from.IsInt() && to.IsInt():
		if from.Bits > to.Bits {
			return c.b.Cast(ir.OpTrunc, v, to), nil
		}
		return c.b.Cast(ir.OpSExt, v, to), nil
	case from.IsInt() && to.IsFloat():
		return c.b.Cast(ir.OpSIToFP, v, to), nil
	case from.IsFloat() && to.IsInt():
		return c.b.Cast(ir.OpFPToSI, v, to), nil
	case from.IsFloat() && to.IsFloat():
		return v, nil
	}
	return nil, c.errf(e, "cannot convert %s to %s", from, to)
}

// convertAssign is convert plus the assignment-specific allowances:
// null-pointer constants and pointer bitcasts to/from char*.
func (c *compiler) convertAssign(e Expr, v ir.Value, from, to *ir.Type) (ir.Value, error) {
	if from.Equal(to) {
		return v, nil
	}
	if to.IsPtr() {
		if cst, ok := v.(*ir.Const); ok && from.IsInt() && cst.Val == 0 {
			return ir.ConstNull(to), nil
		}
		if from.IsPtr() {
			return c.b.Cast(ir.OpBitcast, v, to), nil
		}
	}
	return c.convert(e, v, from, to)
}

// convertExplicit implements C-style casts, adding ptr<->int and
// arbitrary pointer conversions.
func (c *compiler) convertExplicit(e Expr, v ir.Value, from, to *ir.Type) (ir.Value, error) {
	if from.Equal(to) {
		return v, nil
	}
	switch {
	case from.IsPtr() && to.IsPtr():
		return c.b.Cast(ir.OpBitcast, v, to), nil
	case from.IsPtr() && to.IsInt():
		return c.b.Cast(ir.OpPtrToInt, v, to), nil
	case from.IsInt() && to.IsPtr():
		if cst, ok := v.(*ir.Const); ok && cst.Val == 0 {
			return ir.ConstNull(to), nil
		}
		wide := v
		if from.Bits < 64 {
			wide = c.b.Cast(ir.OpSExt, v, ir.I64)
		}
		return c.b.Cast(ir.OpIntToPtr, wide, to), nil
	default:
		return c.convert(e, v, from, to)
	}
}

func (c *compiler) internString(s string) *ir.Global {
	if g, ok := c.strLits[s]; ok {
		return g
	}
	img := make([]byte, len(s)+1)
	copy(img, s)
	g := &ir.Global{
		Name: fmt.Sprintf(".str%d", len(c.strLits)),
		Elem: ir.ArrayOf(len(s)+1, ir.I8),
		Init: img,
	}
	c.mod.AddGlobal(g)
	c.strLits[s] = g
	return g
}

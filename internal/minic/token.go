// Package minic compiles a small C subset to the IR, playing the role of
// the clang/LLVM front-end in the paper's toolchain. The language is rich
// enough to express the six benchmark workloads: char/int/long/double,
// pointers, arrays, structs, the usual operators with short-circuit
// logic, control flow, and calls into the runtime builtins.
package minic

import (
	"fmt"
	"strconv"
)

// TokKind classifies tokens.
type TokKind int

// Token kinds.
const (
	TokEOF TokKind = iota + 1
	TokIdent
	TokIntLit
	TokFloatLit
	TokCharLit
	TokStrLit
	TokKeyword
	TokPunct
)

// Token is one lexeme with its source position.
type Token struct {
	Kind TokKind
	Text string
	// Literal payloads.
	Int   int64
	Float float64
	Str   string
	Long  bool // integer literal carried an L suffix

	Line, Col int
}

func (t Token) String() string {
	switch t.Kind {
	case TokEOF:
		return "end of file"
	case TokStrLit:
		return fmt.Sprintf("%q", t.Str)
	default:
		return fmt.Sprintf("%q", t.Text)
	}
}

// Pos renders the token position.
func (t Token) Pos() string { return fmt.Sprintf("%d:%d", t.Line, t.Col) }

var keywords = map[string]bool{
	"void": true, "char": true, "int": true, "long": true, "double": true,
	"struct": true, "if": true, "else": true, "while": true, "for": true,
	"do": true, "return": true, "break": true, "continue": true,
	"sizeof": true, "unsigned": true,
}

// Error is a positioned compile error.
type Error struct {
	Line, Col int
	Msg       string
}

func (e *Error) Error() string { return fmt.Sprintf("%d:%d: %s", e.Line, e.Col, e.Msg) }

func errAt(line, col int, format string, args ...interface{}) error {
	return &Error{Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
}

// Lexer turns source text into tokens.
type Lexer struct {
	src       string
	pos       int
	line, col int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer { return &Lexer{src: src, line: 1, col: 1} }

func (l *Lexer) peekByte() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *Lexer) peekByte2() byte {
	if l.pos+1 >= len(l.src) {
		return 0
	}
	return l.src[l.pos+1]
}

func (l *Lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *Lexer) skipSpaceAndComments() error {
	for l.pos < len(l.src) {
		c := l.peekByte()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.peekByte2() == '/':
			for l.pos < len(l.src) && l.peekByte() != '\n' {
				l.advance()
			}
		case c == '/' && l.peekByte2() == '*':
			startLine, startCol := l.line, l.col
			l.advance()
			l.advance()
			for {
				if l.pos >= len(l.src) {
					return errAt(startLine, startCol, "unterminated comment")
				}
				if l.peekByte() == '*' && l.peekByte2() == '/' {
					l.advance()
					l.advance()
					break
				}
				l.advance()
			}
		default:
			return nil
		}
	}
	return nil
}

// multi-character punctuators, longest first.
var puncts = []string{
	"<<=", ">>=", "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=",
	"&&", "||", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
	"+", "-", "*", "/", "%", "=", "<", ">", "!", "~", "&", "|", "^",
	"(", ")", "{", "}", "[", "]", ";", ",", ".", "?", ":",
}

// Next returns the next token.
func (l *Lexer) Next() (Token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	line, col := l.line, l.col
	if l.pos >= len(l.src) {
		return Token{Kind: TokEOF, Line: line, Col: col}, nil
	}
	c := l.peekByte()
	switch {
	case isIdentStart(c):
		start := l.pos
		for l.pos < len(l.src) && isIdentPart(l.peekByte()) {
			l.advance()
		}
		text := l.src[start:l.pos]
		kind := TokIdent
		if keywords[text] {
			kind = TokKeyword
		}
		return Token{Kind: kind, Text: text, Line: line, Col: col}, nil
	case c >= '0' && c <= '9':
		return l.lexNumber(line, col)
	case c == '\'':
		return l.lexChar(line, col)
	case c == '"':
		return l.lexString(line, col)
	}
	for _, p := range puncts {
		if len(l.src)-l.pos >= len(p) && l.src[l.pos:l.pos+len(p)] == p {
			for range p {
				l.advance()
			}
			return Token{Kind: TokPunct, Text: p, Line: line, Col: col}, nil
		}
	}
	return Token{}, errAt(line, col, "unexpected character %q", string(c))
}

func (l *Lexer) lexNumber(line, col int) (Token, error) {
	start := l.pos
	isFloat := false
	if l.peekByte() == '0' && (l.peekByte2() == 'x' || l.peekByte2() == 'X') {
		l.advance()
		l.advance()
		for l.pos < len(l.src) && isHexDigit(l.peekByte()) {
			l.advance()
		}
		text := l.src[start:l.pos]
		v, err := strconv.ParseInt(text, 0, 64)
		if err != nil {
			return Token{}, errAt(line, col, "bad hex literal %q", text)
		}
		long := false
		if l.peekByte() == 'L' || l.peekByte() == 'l' {
			l.advance()
			long = true
		}
		return Token{Kind: TokIntLit, Text: text, Int: v, Long: long, Line: line, Col: col}, nil
	}
	for l.pos < len(l.src) && l.peekByte() >= '0' && l.peekByte() <= '9' {
		l.advance()
	}
	if l.pos < len(l.src) && l.peekByte() == '.' {
		isFloat = true
		l.advance()
		for l.pos < len(l.src) && l.peekByte() >= '0' && l.peekByte() <= '9' {
			l.advance()
		}
	}
	if l.pos < len(l.src) && (l.peekByte() == 'e' || l.peekByte() == 'E') {
		isFloat = true
		l.advance()
		if l.peekByte() == '+' || l.peekByte() == '-' {
			l.advance()
		}
		for l.pos < len(l.src) && l.peekByte() >= '0' && l.peekByte() <= '9' {
			l.advance()
		}
	}
	text := l.src[start:l.pos]
	if isFloat {
		f, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return Token{}, errAt(line, col, "bad float literal %q", text)
		}
		return Token{Kind: TokFloatLit, Text: text, Float: f, Line: line, Col: col}, nil
	}
	v, err := strconv.ParseInt(text, 10, 64)
	if err != nil {
		return Token{}, errAt(line, col, "bad int literal %q", text)
	}
	long := false
	if l.peekByte() == 'L' || l.peekByte() == 'l' {
		l.advance()
		long = true
	}
	return Token{Kind: TokIntLit, Text: text, Int: v, Long: long, Line: line, Col: col}, nil
}

func (l *Lexer) lexChar(line, col int) (Token, error) {
	l.advance() // '
	if l.pos >= len(l.src) {
		return Token{}, errAt(line, col, "unterminated char literal")
	}
	var v byte
	c := l.advance()
	if c == '\\' {
		e, err := l.escape(line, col)
		if err != nil {
			return Token{}, err
		}
		v = e
	} else {
		v = c
	}
	if l.pos >= len(l.src) || l.advance() != '\'' {
		return Token{}, errAt(line, col, "unterminated char literal")
	}
	return Token{Kind: TokCharLit, Text: string(v), Int: int64(v), Line: line, Col: col}, nil
}

func (l *Lexer) lexString(line, col int) (Token, error) {
	l.advance() // "
	var buf []byte
	for {
		if l.pos >= len(l.src) {
			return Token{}, errAt(line, col, "unterminated string literal")
		}
		c := l.advance()
		if c == '"' {
			break
		}
		if c == '\\' {
			e, err := l.escape(line, col)
			if err != nil {
				return Token{}, err
			}
			buf = append(buf, e)
			continue
		}
		buf = append(buf, c)
	}
	return Token{Kind: TokStrLit, Str: string(buf), Line: line, Col: col}, nil
}

func (l *Lexer) escape(line, col int) (byte, error) {
	if l.pos >= len(l.src) {
		return 0, errAt(line, col, "unterminated escape")
	}
	c := l.advance()
	switch c {
	case 'n':
		return '\n', nil
	case 't':
		return '\t', nil
	case 'r':
		return '\r', nil
	case '0':
		return 0, nil
	case '\\', '\'', '"':
		return c, nil
	default:
		return 0, errAt(line, col, "unknown escape \\%c", c)
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool { return isIdentStart(c) || (c >= '0' && c <= '9') }

func isHexDigit(c byte) bool {
	return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}

// LexAll tokenizes the whole input (testing helper).
func LexAll(src string) ([]Token, error) {
	l := NewLexer(src)
	var toks []Token
	for {
		t, err := l.Next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == TokEOF {
			return toks, nil
		}
	}
}

package minic

import (
	"hlfi/internal/ir"
)

// stmt lowers one statement. If the current block already ended (return,
// break, continue), subsequent statements go into a fresh unreachable
// block that RemoveUnreachable later discards.
func (c *compiler) stmt(s Stmt) error {
	if c.b.Block().Terminator() != nil {
		c.b.SetBlock(c.newBlock("dead"))
	}
	if ln := stmtLine(s); ln > 0 {
		c.b.Line = ln
	}
	switch st := s.(type) {
	case *BlockStmt:
		c.pushScope()
		defer c.popScope()
		for _, item := range st.Items {
			if err := c.stmt(item); err != nil {
				return err
			}
		}
		return nil

	case *DeclStmt:
		for _, vd := range st.Decls {
			if err := c.localDecl(vd); err != nil {
				return err
			}
		}
		return nil

	case *ExprStmt:
		_, _, err := c.rvalue(st.X)
		return err

	case *IfStmt:
		thenBlk := c.newBlock("then")
		endBlk := c.newBlock("endif")
		elseBlk := endBlk
		if st.Else != nil {
			elseBlk = c.newBlock("else")
		}
		if err := c.condBranch(st.Cond, thenBlk, elseBlk); err != nil {
			return err
		}
		c.b.SetBlock(thenBlk)
		if err := c.stmt(st.Then); err != nil {
			return err
		}
		if c.b.Block().Terminator() == nil {
			c.b.Br(endBlk)
		}
		if st.Else != nil {
			c.b.SetBlock(elseBlk)
			if err := c.stmt(st.Else); err != nil {
				return err
			}
			if c.b.Block().Terminator() == nil {
				c.b.Br(endBlk)
			}
		}
		c.b.SetBlock(endBlk)
		return nil

	case *WhileStmt:
		condBlk := c.newBlock("while.cond")
		bodyBlk := c.newBlock("while.body")
		endBlk := c.newBlock("while.end")
		if st.DoWhile {
			c.b.Br(bodyBlk)
		} else {
			c.b.Br(condBlk)
		}
		c.b.SetBlock(condBlk)
		if err := c.condBranch(st.Cond, bodyBlk, endBlk); err != nil {
			return err
		}
		c.breaks = append(c.breaks, endBlk)
		c.conts = append(c.conts, condBlk)
		c.b.SetBlock(bodyBlk)
		err := c.stmt(st.Body)
		c.breaks = c.breaks[:len(c.breaks)-1]
		c.conts = c.conts[:len(c.conts)-1]
		if err != nil {
			return err
		}
		if c.b.Block().Terminator() == nil {
			c.b.Br(condBlk)
		}
		c.b.SetBlock(endBlk)
		return nil

	case *ForStmt:
		c.pushScope()
		defer c.popScope()
		if st.Init != nil {
			if err := c.stmt(st.Init); err != nil {
				return err
			}
		}
		condBlk := c.newBlock("for.cond")
		bodyBlk := c.newBlock("for.body")
		postBlk := c.newBlock("for.post")
		endBlk := c.newBlock("for.end")
		c.b.Br(condBlk)
		c.b.SetBlock(condBlk)
		if st.Cond != nil {
			if err := c.condBranch(st.Cond, bodyBlk, endBlk); err != nil {
				return err
			}
		} else {
			c.b.Br(bodyBlk)
		}
		c.breaks = append(c.breaks, endBlk)
		c.conts = append(c.conts, postBlk)
		c.b.SetBlock(bodyBlk)
		err := c.stmt(st.Body)
		c.breaks = c.breaks[:len(c.breaks)-1]
		c.conts = c.conts[:len(c.conts)-1]
		if err != nil {
			return err
		}
		if c.b.Block().Terminator() == nil {
			c.b.Br(postBlk)
		}
		c.b.SetBlock(postBlk)
		if st.Post != nil {
			if _, _, err := c.rvalue(st.Post); err != nil {
				return err
			}
		}
		c.b.Br(condBlk)
		c.b.SetBlock(endBlk)
		return nil

	case *ReturnStmt:
		ret := c.fn.Sig.Return
		if st.X == nil {
			if ret.Kind != ir.KindVoid {
				return errAt(st.Tok.Line, st.Tok.Col, "return without value in non-void function")
			}
			c.b.Ret(nil)
			return nil
		}
		if ret.Kind == ir.KindVoid {
			return errAt(st.Tok.Line, st.Tok.Col, "return with value in void function")
		}
		v, ty, err := c.rvalue(st.X)
		if err != nil {
			return err
		}
		v, err = c.convert(st.X, v, ty, ret)
		if err != nil {
			return err
		}
		c.b.Ret(v)
		return nil

	case *BreakStmt:
		if len(c.breaks) == 0 {
			return errAt(st.Tok.Line, st.Tok.Col, "break outside loop")
		}
		c.b.Br(c.breaks[len(c.breaks)-1])
		return nil

	case *ContinueStmt:
		if len(c.conts) == 0 {
			return errAt(st.Tok.Line, st.Tok.Col, "continue outside loop")
		}
		c.b.Br(c.conts[len(c.conts)-1])
		return nil
	}
	return errAt(0, 0, "unhandled statement")
}

func (c *compiler) localDecl(vd *VarDecl) error {
	ty, err := c.resolveType(vd.Type)
	if err != nil {
		return err
	}
	if ty.Kind == ir.KindVoid {
		return errAt(vd.Tok.Line, vd.Tok.Col, "variable %s has void type", vd.Name)
	}
	if _, exists := c.scopes[len(c.scopes)-1][vd.Name]; exists {
		return errAt(vd.Tok.Line, vd.Tok.Col, "variable %s redeclared in scope", vd.Name)
	}
	slot := c.b.Alloca(ty)
	c.scopes[len(c.scopes)-1][vd.Name] = &binding{ptr: slot, ty: ty}

	switch {
	case vd.HasStr:
		if ty.Kind != ir.KindArray || ty.Elem != ir.I8 {
			return errAt(vd.Tok.Line, vd.Tok.Col, "string initializer on non-char-array")
		}
		if len(vd.InitStr)+1 > ty.Len {
			return errAt(vd.Tok.Line, vd.Tok.Col, "string initializer too long")
		}
		for i := 0; i <= len(vd.InitStr); i++ {
			var ch byte
			if i < len(vd.InitStr) {
				ch = vd.InitStr[i]
			}
			dst := c.b.GEP(ir.PointerTo(ir.I8), slot, ir.ConstInt(ir.I64, 0), ir.ConstInt(ir.I64, int64(i)))
			c.b.Store(ir.ConstInt(ir.I8, int64(ch)), dst)
		}
	case vd.InitList != nil:
		if ty.Kind != ir.KindArray {
			return errAt(vd.Tok.Line, vd.Tok.Col, "brace initializer on non-array")
		}
		if len(vd.InitList) > ty.Len {
			return errAt(vd.Tok.Line, vd.Tok.Col, "too many initializers")
		}
		for i, e := range vd.InitList {
			v, vt, err := c.rvalue(e)
			if err != nil {
				return err
			}
			v, err = c.convertAssign(e, v, vt, ty.Elem)
			if err != nil {
				return err
			}
			dst := c.b.GEP(ir.PointerTo(ty.Elem), slot, ir.ConstInt(ir.I64, 0), ir.ConstInt(ir.I64, int64(i)))
			c.b.Store(v, dst)
		}
	case vd.Init != nil:
		v, vt, err := c.rvalue(vd.Init)
		if err != nil {
			return err
		}
		v, err = c.convertAssign(vd.Init, v, vt, ty)
		if err != nil {
			return err
		}
		c.b.Store(v, slot)
	}
	return nil
}

// condBranch lowers a boolean context with short-circuit control flow.
func (c *compiler) condBranch(e Expr, thenBlk, elseBlk *ir.Block) error {
	switch x := e.(type) {
	case *Binary:
		switch x.Op {
		case "&&":
			mid := c.newBlock("and.rhs")
			if err := c.condBranch(x.L, mid, elseBlk); err != nil {
				return err
			}
			c.b.SetBlock(mid)
			return c.condBranch(x.R, thenBlk, elseBlk)
		case "||":
			mid := c.newBlock("or.rhs")
			if err := c.condBranch(x.L, thenBlk, mid); err != nil {
				return err
			}
			c.b.SetBlock(mid)
			return c.condBranch(x.R, thenBlk, elseBlk)
		}
		// Direct comparison: branch on the i1 without materializing an int.
		if p, isCmp := cmpPreds[x.Op]; isCmp {
			cond, err := c.compareI1(x, p)
			if err != nil {
				return err
			}
			c.b.CondBr(cond, thenBlk, elseBlk)
			return nil
		}
	case *Unary:
		if x.Op == "!" {
			return c.condBranch(x.X, elseBlk, thenBlk)
		}
	}
	v, ty, err := c.rvalue(e)
	if err != nil {
		return err
	}
	cond, err := c.truthyI1(e, v, ty)
	if err != nil {
		return err
	}
	c.b.CondBr(cond, thenBlk, elseBlk)
	return nil
}

// stmtLine extracts the source line a statement starts on.
func stmtLine(s Stmt) int {
	switch st := s.(type) {
	case *BlockStmt:
		return st.Tok.Line
	case *DeclStmt:
		if len(st.Decls) > 0 {
			return st.Decls[0].Tok.Line
		}
	case *ExprStmt:
		return pos(st.X).Line
	case *IfStmt:
		return st.Tok.Line
	case *WhileStmt:
		return st.Tok.Line
	case *ForStmt:
		return st.Tok.Line
	case *ReturnStmt:
		return st.Tok.Line
	case *BreakStmt:
		return st.Tok.Line
	case *ContinueStmt:
		return st.Tok.Line
	}
	return 0
}

package minic

import (
	"bytes"
	"fmt"
	"math/rand"
	"strconv"
	"testing"

	"hlfi/internal/interp"
)

// TestIntSemanticsOracle checks C int32 operator semantics against native
// Go arithmetic as the oracle, with operands routed through globals so
// constant folding cannot shortcut the computation.
func TestIntSemanticsOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	type binCase struct {
		op   string
		eval func(a, b int32) (int32, bool) // ok=false: skip (would trap)
	}
	cases := []binCase{
		{"+", func(a, b int32) (int32, bool) { return a + b, true }},
		{"-", func(a, b int32) (int32, bool) { return a - b, true }},
		{"*", func(a, b int32) (int32, bool) { return a * b, true }},
		{"/", func(a, b int32) (int32, bool) {
			if b == 0 || (a == -2147483648 && b == -1) {
				return 0, false
			}
			return a / b, true
		}},
		{"%", func(a, b int32) (int32, bool) {
			if b == 0 || (a == -2147483648 && b == -1) {
				return 0, false
			}
			return a % b, true
		}},
		{"&", func(a, b int32) (int32, bool) { return a & b, true }},
		{"|", func(a, b int32) (int32, bool) { return a | b, true }},
		{"^", func(a, b int32) (int32, bool) { return a ^ b, true }},
	}
	for trial := 0; trial < 60; trial++ {
		a := int32(rng.Uint32())
		b := int32(rng.Uint32())
		c := cases[rng.Intn(len(cases))]
		want, ok := c.eval(a, b)
		if !ok {
			continue
		}
		src := fmt.Sprintf(`
int ga = %d;
int gb = %d;
int main() { print_int(ga %s gb); return 0; }
`, a, b, c.op)
		got := runOracle(t, src)
		if got != strconv.FormatInt(int64(want), 10) {
			t.Fatalf("%d %s %d: got %s want %d", a, c.op, b, got, want)
		}
	}
	// Shifts with in-range counts.
	for trial := 0; trial < 30; trial++ {
		a := int32(rng.Uint32())
		sh := rng.Intn(31)
		src := fmt.Sprintf(`
int ga = %d;
int sh = %d;
int main() { print_int(ga << sh); print_str(" "); print_int(ga >> sh); return 0; }
`, a, sh)
		got := runOracle(t, src)
		want := fmt.Sprintf("%d %d", a<<uint(sh), a>>uint(sh))
		if got != want {
			t.Fatalf("shift %d by %d: got %s want %s", a, sh, got, want)
		}
	}
}

// TestComparisonOracle checks all comparison operators on signed edges.
func TestComparisonOracle(t *testing.T) {
	vals := []int32{-2147483648, -1, 0, 1, 2147483647}
	ops := map[string]func(a, b int32) bool{
		"<":  func(a, b int32) bool { return a < b },
		"<=": func(a, b int32) bool { return a <= b },
		">":  func(a, b int32) bool { return a > b },
		">=": func(a, b int32) bool { return a >= b },
		"==": func(a, b int32) bool { return a == b },
		"!=": func(a, b int32) bool { return a != b },
	}
	for op, eval := range ops {
		for _, a := range vals {
			for _, b := range vals {
				src := fmt.Sprintf(`
int ga = %d;
int gb = %d;
int main() { print_int(ga %s gb); return 0; }
`, a, b, op)
				want := "0"
				if eval(a, b) {
					want = "1"
				}
				if got := runOracle(t, src); got != want {
					t.Fatalf("%d %s %d: got %s want %s", a, op, b, got, want)
				}
			}
		}
	}
}

func runOracle(t *testing.T, src string) string {
	t.Helper()
	mod, err := Compile("oracle", src)
	if err != nil {
		t.Fatalf("compile: %v\n%s", err, src)
	}
	p, err := interp.Prepare(mod)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if _, err := interp.NewRunner(p, &out).Run(); err != nil {
		t.Fatalf("run: %v\n%s", err, src)
	}
	return out.String()
}

// TestPointerSemantics covers pointer arithmetic identities.
func TestPointerSemantics(t *testing.T) {
	out := runOracle(t, `
int arr[10];
int main() {
    for (int i = 0; i < 10; i++) arr[i] = 100 + i;
    int *p = &arr[2];
    int *q = p + 5;
    print_int(*q); print_str(" ");           /* arr[7] = 107 */
    print_long(q - p); print_str(" ");       /* 5 elements */
    print_int(q > p); print_str(" ");        /* 1 */
    q--;
    print_int(*q); print_str(" ");           /* arr[6] = 106 */
    p += 3;
    print_int(*p); print_str(" ");           /* arr[5] = 105 */
    print_int(p == &arr[5]); print_str("\n");
    return 0;
}`)
	if out != "107 5 1 106 105 1\n" {
		t.Fatalf("pointer semantics: %q", out)
	}
}

// TestIncDecSemantics covers pre/post increment in expression context.
func TestIncDecSemantics(t *testing.T) {
	out := runOracle(t, `
int main() {
    int i = 5;
    print_int(i++); print_str(" ");
    print_int(i); print_str(" ");
    print_int(++i); print_str(" ");
    print_int(i--); print_str(" ");
    print_int(--i); print_str("\n");
    return 0;
}`)
	if out != "5 6 7 7 5\n" {
		t.Fatalf("inc/dec: %q", out)
	}
}

// TestShortCircuitSideEffects: the right operand must not evaluate when
// the left decides.
func TestShortCircuitSideEffects(t *testing.T) {
	out := runOracle(t, `
int calls = 0;
int bump() { calls++; return 1; }
int main() {
    int a = 0 && bump();
    int b = 1 || bump();
    int c = 1 && bump();
    int d = 0 || bump();
    print_int(calls); print_str(" ");
    print_int(a); print_int(b); print_int(c); print_int(d);
    print_str("\n");
    return 0;
}`)
	if out != "2 0111\n" {
		t.Fatalf("short circuit: %q", out)
	}
}

// TestCompoundAssignOnNarrowTypes: char arithmetic must wrap at 8 bits
// through compound assignment.
func TestCompoundAssignOnNarrowTypes(t *testing.T) {
	out := runOracle(t, `
int main() {
    char c = 100;
    c += 50;           /* 150 -> -106 as signed char */
    print_int(c); print_str(" ");
    c <<= 1;
    print_int(c); print_str("\n");
    return 0;
}`)
	if out != "-106 44\n" { // -106<<1 = -212 -> 0x2C = 44
		t.Fatalf("narrow compound: %q", out)
	}
}

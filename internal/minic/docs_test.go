package minic

import "testing"

// TestLanguageReferenceExamples keeps docs/minic.md honest: every feature
// the reference claims must compile, and every documented limit must be
// rejected.
func TestLanguageReferenceExamples(t *testing.T) {
	features := map[string]string{
		"declarations": `
int g = 42;
double pi = 3.14159;
int table[4] = {1, 2, 3};
char msg[16] = "hello";
struct node { int v; struct node *next; };
int helper(int x);
int helper(int x) { return x*2; }
int main() { return helper(g) + table[0] + (int)msg[0]; }
`,
		"operators": `
int main() {
    int a = 10; int b = 3;
    int r = a + b - a * b / (b | 1) % 7;
    r = (a & b) ^ (~a << 2) ^ (a >> 1);
    r += (a == b) + (a != b) + (a < b) + (a >= b);
    r = a > 5 && b < 5 || !r;
    r = r ? a++ : --b;
    a += 1; a -= 1; a *= 2; a /= 2; a %= 9;
    a &= 7; a |= 8; a ^= 3; a <<= 1; a >>= 1;
    long big = 5000000000L;
    int hexed = 0x1F;
    return r + a + b + hexed + (int)(big % 97);
}
`,
		"pointers": `
int arr[10];
struct p { int x; };
int main() {
    int *q = &arr[2];
    *q = 5;
    q = q + 3;
    long diff = q - &arr[0];
    struct p s;
    struct p *sp = &s;
    sp->x = 1;
    s.x += 2;
    char *m = (char*)malloc(8L);
    free(m);
    return (int)diff + s.x + q[0] + sizeof(struct p);
}
`,
		"control": `
int main() {
    int s = 0;
    for (int i = 0; i < 10; i++) {
        if (i == 3) continue;
        if (i == 8) break;
        s += i;
    }
    int j = 0;
    while (j < 4) j++;
    do { j--; } while (j > 0);
    return s + j;
}
`,
		"builtins": `
int main() {
    print_int(1); print_long(2L); print_double(0.5);
    print_char('x'); print_str("ok\n");
    double d = sqrt(4.0) + fabs(-1.0) + floor(1.5) + ceil(1.5)
             + exp(0.0) + log(1.0) + sin(0.0) + cos(0.0)
             + pow(2.0, 3.0) + fmod(5.0, 3.0);
    return (int)d;
}
`,
	}
	for name, src := range features {
		if _, err := Compile(name, src); err != nil {
			t.Errorf("documented feature %q fails to compile: %v", name, err)
		}
	}

	limits := map[string]string{
		"unsigned":      `unsigned int x; int main() { return 0; }`,
		"seven-args":    `int f(int a,int b,int c,int d,int e,int f0,int g){return 0;} int main(){return 0;}`, // rejected at lowering
		"struct-param":  `struct s { int a; }; int f(struct s v) { return v.a; } int main() { return 0; }`,
		"variadic":      `int f(int a, ...) { return a; } int main() { return 0; }`,
		"goto":          `int main() { goto out; out: return 0; }`,
		"switch":        `int main() { switch (1) { } return 0; }`,
		"dynamic-array": `int main() { int n = 3; int a[n]; return 0; }`,
		"nonconst-init": `int g = 1 + f(); int main() { return g; }`,
	}
	for name, src := range limits {
		if name == "seven-args" {
			continue // accepted by the frontend; the backend enforces it (tested in codegen)
		}
		if _, err := Compile(name, src); err == nil {
			t.Errorf("documented limit %q was accepted", name)
		}
	}
}

package minic

import (
	"bytes"
	"testing"

	"hlfi/internal/interp"
)

// runMain compiles src and executes main, returning output and exit value.
func runMain(t *testing.T, src string) (string, int64) {
	t.Helper()
	mod, err := Compile("test", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	prog, err := interp.Prepare(mod)
	if err != nil {
		t.Fatalf("prepare: %v", err)
	}
	var out bytes.Buffer
	r := interp.NewRunner(prog, &out)
	rc, err := r.Run()
	if err != nil {
		t.Fatalf("run: %v\nIR:\n%s", err, mod)
	}
	return out.String(), rc
}

func TestSmokeFib(t *testing.T) {
	src := `
int fib(int n) {
    if (n < 2) return n;
    return fib(n - 1) + fib(n - 2);
}
int main() {
    print_int(fib(10));
    print_str("\n");
    return 0;
}
`
	out, rc := runMain(t, src)
	if rc != 0 {
		t.Fatalf("exit %d", rc)
	}
	if out != "55\n" {
		t.Fatalf("output %q, want %q", out, "55\n")
	}
}

func TestSmokeArraysStructsPointers(t *testing.T) {
	src := `
struct point { int x; int y; };
int grid[4][4];
struct point pts[3];

int sumgrid() {
    int s = 0;
    for (int i = 0; i < 4; i++)
        for (int j = 0; j < 4; j++)
            s += grid[i][j];
    return s;
}

int main() {
    for (int i = 0; i < 4; i++)
        for (int j = 0; j < 4; j++)
            grid[i][j] = i * 4 + j;
    for (int k = 0; k < 3; k++) {
        pts[k].x = k;
        pts[k].y = k * k;
    }
    struct point *p = &pts[2];
    int *cell = &grid[1][2];
    print_int(sumgrid()); print_str(" ");
    print_int(p->y); print_str(" ");
    print_int(*cell); print_str("\n");
    return 0;
}
`
	out, _ := runMain(t, src)
	want := "120 4 6\n"
	if out != want {
		t.Fatalf("output %q, want %q", out, want)
	}
}

func TestSmokeMallocDoubleLogic(t *testing.T) {
	src := `
double avg(double *a, int n) {
    double s = 0.0;
    for (int i = 0; i < n; i++) s += a[i];
    return s / n;
}
int main() {
    double *a = (double*)malloc(8L * 10);
    for (int i = 0; i < 10; i++) a[i] = i * 1.5;
    print_double(avg(a, 10)); print_str("\n");
    long big = 1000000000;
    big = big * 4;
    print_long(big); print_str("\n");
    int x = 5;
    if (x > 3 && x < 10 || x == 0) print_str("yes\n");
    char buf[8] = "hi";
    print_str(buf); print_str("\n");
    print_double(sqrt(2.0)); print_str("\n");
    free(a);
    return x > 4 ? 7 : 9;
}
`
	out, rc := runMain(t, src)
	want := "6.75\n4000000000\nyes\nhi\n1.41421\n"
	if out != want {
		t.Fatalf("output %q, want %q", out, want)
	}
	if rc != 7 {
		t.Fatalf("exit %d, want 7", rc)
	}
}

package minic

// The AST mirrors a conventional C grammar subset. Every node carries the
// token that introduced it for error positions.

// File is a parsed translation unit.
type File struct {
	Structs []*StructDecl
	Globals []*VarDecl
	Funcs   []*FuncDecl
}

// TypeExpr is a syntactic type: a base name plus pointer/array derivations.
type TypeExpr struct {
	Tok Token
	// Base is one of "void", "char", "int", "long", "double", or a struct
	// tag (IsStruct true).
	Base     string
	IsStruct bool
	Stars    int   // pointer depth applied after array dims
	Dims     []int // array dimensions, outermost first
}

// StructDecl declares a struct type.
type StructDecl struct {
	Tok    Token
	Tag    string
	Fields []*FieldDecl
}

// FieldDecl is one struct field.
type FieldDecl struct {
	Tok  Token
	Name string
	Type *TypeExpr
}

// VarDecl declares a global or local variable.
type VarDecl struct {
	Tok  Token
	Name string
	Type *TypeExpr
	Init Expr // optional scalar initializer
	// InitList is an optional brace initializer for arrays.
	InitList []Expr
	// InitStr is an optional string initializer for char arrays.
	InitStr string
	HasStr  bool
}

// FuncDecl defines a function.
type FuncDecl struct {
	Tok    Token
	Name   string
	Ret    *TypeExpr
	Params []*ParamDecl
	Body   *BlockStmt // nil for a prototype
}

// ParamDecl is one function parameter.
type ParamDecl struct {
	Tok  Token
	Name string
	Type *TypeExpr
}

// Stmt is a statement node.
type Stmt interface{ stmtNode() }

// BlockStmt is { ... }.
type BlockStmt struct {
	Tok   Token
	Items []Stmt
}

// DeclStmt wraps local variable declarations.
type DeclStmt struct{ Decls []*VarDecl }

// ExprStmt is an expression evaluated for effect.
type ExprStmt struct{ X Expr }

// IfStmt is if/else.
type IfStmt struct {
	Tok  Token
	Cond Expr
	Then Stmt
	Else Stmt // optional
}

// WhileStmt is while (cond) body; DoWhile marks do { } while(cond).
type WhileStmt struct {
	Tok     Token
	Cond    Expr
	Body    Stmt
	DoWhile bool
}

// ForStmt is for (init; cond; post) body.
type ForStmt struct {
	Tok  Token
	Init Stmt // DeclStmt or ExprStmt or nil
	Cond Expr // optional
	Post Expr // optional
	Body Stmt
}

// ReturnStmt returns from the function.
type ReturnStmt struct {
	Tok Token
	X   Expr // optional
}

// BreakStmt exits the innermost loop.
type BreakStmt struct{ Tok Token }

// ContinueStmt continues the innermost loop.
type ContinueStmt struct{ Tok Token }

func (*BlockStmt) stmtNode()    {}
func (*DeclStmt) stmtNode()     {}
func (*ExprStmt) stmtNode()     {}
func (*IfStmt) stmtNode()       {}
func (*WhileStmt) stmtNode()    {}
func (*ForStmt) stmtNode()      {}
func (*ReturnStmt) stmtNode()   {}
func (*BreakStmt) stmtNode()    {}
func (*ContinueStmt) stmtNode() {}

// Expr is an expression node.
type Expr interface{ exprNode() }

// IntLit is an integer (or char) literal.
type IntLit struct {
	Tok    Token
	Val    int64
	IsLong bool // literals > int32 range become long
}

// FloatLit is a double literal.
type FloatLit struct {
	Tok Token
	Val float64
}

// StrLit is a string literal (decays to char*).
type StrLit struct {
	Tok Token
	Val string
}

// Ident references a variable or function name.
type Ident struct {
	Tok  Token
	Name string
}

// Unary is -x, !x, ~x, *x, &x, and pre-inc/dec (Op "++"/"--", Prefix).
type Unary struct {
	Tok Token
	Op  string
	X   Expr
}

// Postfix is x++ / x--.
type Postfix struct {
	Tok Token
	Op  string
	X   Expr
}

// Binary is a binary operator (arith, compare, logic with short-circuit).
type Binary struct {
	Tok  Token
	Op   string
	L, R Expr
}

// Assign is L op= R (Op "" for plain =).
type Assign struct {
	Tok  Token
	Op   string // "", "+", "-", "*", "/", "%", "&", "|", "^", "<<", ">>"
	L, R Expr
}

// Cond is c ? a : b.
type Cond struct {
	Tok     Token
	C, A, B Expr
}

// Call invokes a function or builtin.
type Call struct {
	Tok  Token
	Name string
	Args []Expr
}

// Index is a[i].
type Index struct {
	Tok  Token
	X, I Expr
}

// Member is x.f (Arrow false) or x->f (Arrow true).
type Member struct {
	Tok   Token
	X     Expr
	Name  string
	Arrow bool
}

// CastExpr is (type)x.
type CastExpr struct {
	Tok  Token
	Type *TypeExpr
	X    Expr
}

// SizeofExpr is sizeof(type).
type SizeofExpr struct {
	Tok  Token
	Type *TypeExpr
}

func (*IntLit) exprNode()     {}
func (*FloatLit) exprNode()   {}
func (*StrLit) exprNode()     {}
func (*Ident) exprNode()      {}
func (*Unary) exprNode()      {}
func (*Postfix) exprNode()    {}
func (*Binary) exprNode()     {}
func (*Assign) exprNode()     {}
func (*Cond) exprNode()       {}
func (*Call) exprNode()       {}
func (*Index) exprNode()      {}
func (*Member) exprNode()     {}
func (*CastExpr) exprNode()   {}
func (*SizeofExpr) exprNode() {}
